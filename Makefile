GO ?= go

.PHONY: build test test-race vet bench bench-all bench-history fuzz-smoke ci

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Race-hardened verification: full build, the whole test suite under the race
# detector with shuffled test order, and vet. This is the gate for changes to
# the parallel solver and the experiment fan-out.
test-race:
	$(GO) build ./...
	$(GO) test -race -shuffle=on ./...
	$(GO) vet ./...

vet:
	$(GO) vet ./...

# The solver/pipeline/profiling/simulator/server/store benchmarks that rewrite
# BENCH_milp.json, BENCH_bound.json, BENCH_pipeline.json, BENCH_profile.json,
# BENCH_sim.json, BENCH_serve.json, BENCH_taskgraph.json and BENCH_store.json:
# serial MILP (warm vs cold inline), parallel MILP, the analytic dual bound
# (branch-and-bound nodes with the Li–Yao–Yuan bound on vs off), the
# artifact-store replay, recorded-vs-per-mode profile collection, the
# compiled simulator kernel vs the reference interpreter, the optimization
# server under concurrent load (cold store vs warm), the multi-core
# task-graph solve with serial-vs-parallel schedule execution, and the
# sharded-store scenario matrix (binary vs JSON warm reads, zero-copy mmap
# vs copying reads, replay over a live mapping, batched vs plain puts, pooled
# replay allocations). bench-all runs everything.
bench:
	$(GO) test -run '^$$' -bench '^(BenchmarkMILPSerial|BenchmarkMILPParallel|BenchmarkMILPAnalyticBound|BenchmarkPipelineColdVsWarm|BenchmarkProfileCollect|BenchmarkSimCompiledKernel|BenchmarkServeLatency|BenchmarkServeThroughput|BenchmarkTaskGraphSolve|BenchmarkStoreScenarioMatrix)$$' -benchmem .

bench-all:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing pass over every artifact and request decoder. Each target
# gets a few seconds of coverage-guided input on top of its checked-in
# corpus; any crasher it finds becomes a regression seed under testdata/fuzz.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzLoad$$' -fuzztime=10s ./internal/schedfile
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeRecording$$' -fuzztime=10s ./internal/schedfile
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeRecordingBinary$$' -fuzztime=10s ./internal/schedfile
	$(GO) test -run '^$$' -fuzz '^FuzzLoadGraphSpec$$' -fuzztime=10s ./internal/schedfile
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime=10s ./internal/profile
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeRequest$$' -fuzztime=10s ./internal/serve

# The PR gate: vet, full build, the whole test suite, the race detector over
# the packages with real concurrency (pipeline singleflight and concurrent
# store Puts over the shard-directory cache and buffer pools, experiment
# fan-out including the multi-core machine pool, parallel branch-and-bound,
# concurrent replay of shared recordings, the multi-core scheduler-simulator
# and HEFT placement, and the optimization server's flight table and worker
# pool), and the perf-record gate: no committed BENCH_*.json may claim a
# speedup below its floor (1.0 by default) or allocations above a committed
# allocs_ceiling — see internal/tools/benchcheck for the schema. benchcheck
# -history additionally tracks the gated metrics across runs in
# BENCH_history.jsonl (see the history target).
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/pipeline ./internal/exp ./internal/milp ./internal/lp ./internal/sim ./internal/profile ./internal/serve ./internal/core ./internal/schedfile ./internal/workloads ./internal/analytic
	$(GO) run ./internal/tools/benchcheck

# benchcheck in history mode: the usual floor/ceiling gate plus a comparison
# of every gated metric against the previous BENCH_history.jsonl entry (10%
# slack); a passing run appends the new entry as the next baseline.
bench-history:
	$(GO) run ./internal/tools/benchcheck -history
