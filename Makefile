GO ?= go

.PHONY: build test test-race vet bench bench-all ci

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Race-hardened verification: full build, the whole test suite under the race
# detector with shuffled test order, and vet. This is the gate for changes to
# the parallel solver and the experiment fan-out.
test-race:
	$(GO) build ./...
	$(GO) test -race -shuffle=on ./...
	$(GO) vet ./...

vet:
	$(GO) vet ./...

# The solver/pipeline/profiling/simulator benchmarks that rewrite
# BENCH_milp.json, BENCH_pipeline.json, BENCH_profile.json and BENCH_sim.json:
# serial MILP (warm vs cold inline), parallel MILP, the artifact-store replay,
# recorded-vs-per-mode profile collection, and the compiled simulator kernel
# vs the reference interpreter. bench-all runs everything.
bench:
	$(GO) test -run '^$$' -bench '^(BenchmarkMILPSerial|BenchmarkMILPParallel|BenchmarkPipelineColdVsWarm|BenchmarkProfileCollect|BenchmarkSimCompiledKernel)$$' -benchmem .

bench-all:
	$(GO) test -bench=. -benchmem ./...

# The PR gate: vet, full build, the whole test suite, the race detector over
# the packages with real concurrency (pipeline singleflight, experiment
# fan-out, parallel branch-and-bound, concurrent replay of shared recordings),
# and the perf-record gate (no committed BENCH_*.json may claim a speedup
# below 1.0).
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/pipeline ./internal/exp ./internal/milp ./internal/lp ./internal/sim ./internal/profile
	$(GO) run ./internal/tools/benchcheck
