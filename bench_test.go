// Benchmarks regenerating every table and figure of the paper's evaluation,
// one testing.B per experiment (see DESIGN.md for the index), plus
// micro-benchmarks of the substrates (simulator, LP, MILP). Custom metrics
// surface each experiment's headline number: peak savings for the analytic
// surfaces, filtering speedup for Figure 14, and so on.
//
// The experiment benchmarks run the workloads at a reduced scale (0.1) so a
// full -bench=. pass stays in CI-friendly territory; cmd/dvs-bench runs the
// same experiments at scale 1.0.
package ctdvs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ctdvs/internal/analytic"
	cfggraph "ctdvs/internal/cfg"
	"ctdvs/internal/core"
	"ctdvs/internal/exp"
	"ctdvs/internal/ir"
	"ctdvs/internal/lp"
	"ctdvs/internal/milp"
	"ctdvs/internal/paths"
	"ctdvs/internal/pipeline"
	"ctdvs/internal/profile"
	"ctdvs/internal/schedfile"
	"ctdvs/internal/serve"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
	"ctdvs/internal/workloads"
)

const benchScale = 0.1

var (
	benchCfgOnce sync.Once
	benchCfg     *exp.Config
)

// cfg returns the shared experiment config; profiles are collected once and
// cached across benchmarks.
func cfg() *exp.Config {
	benchCfgOnce.Do(func() {
		benchCfg = exp.NewConfig(benchScale)
		benchCfg.MILP = &milp.Options{TimeLimit: 2 * time.Minute}
	})
	return benchCfg
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if c := exp.Figure2(); len(c.X) == 0 {
			b.Fatal("empty curve")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if c := exp.Figure3(); len(c.X) == 0 {
			b.Fatal("empty curve")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if c := exp.Figure4(); len(c.X) == 0 {
			b.Fatal("empty curve")
		}
	}
}

func benchSurface(b *testing.B, mk func(int) *exp.Surface) {
	b.Helper()
	var peak float64
	for i := 0; i < b.N; i++ {
		peak = mk(12).Max()
	}
	b.ReportMetric(peak, "peak-savings")
}

func BenchmarkFigure5(b *testing.B) { benchSurface(b, exp.Figure5) }
func BenchmarkFigure6(b *testing.B) { benchSurface(b, exp.Figure6) }
func BenchmarkFigure7(b *testing.B) { benchSurface(b, exp.Figure7) }

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := exp.Figure8(100)
		if err != nil {
			b.Fatal(err)
		}
		if len(c.X) == 0 {
			b.Fatal("empty feasible band")
		}
	}
}

func benchSurfaceErr(b *testing.B, mk func(int) (*exp.Surface, error)) {
	b.Helper()
	var peak float64
	for i := 0; i < b.N; i++ {
		s, err := mk(10)
		if err != nil {
			b.Fatal(err)
		}
		peak = s.Max()
	}
	b.ReportMetric(peak, "peak-savings")
}

func BenchmarkFigure9(b *testing.B)  { benchSurfaceErr(b, exp.Figure9) }
func BenchmarkFigure10(b *testing.B) { benchSurfaceErr(b, exp.Figure10) }
func BenchmarkFigure11(b *testing.B) { benchSurfaceErr(b, exp.Figure11) }

func BenchmarkTable1(b *testing.B) {
	c := cfg()
	var lax3 float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table1(c)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Levels == 3 && r.Benchmark == "gsm/encode" {
				lax3 = r.Savings[4]
			}
		}
	}
	b.ReportMetric(lax3, "gsm-3lvl-laxest-savings")
}

func BenchmarkTable3Figure14(b *testing.B) {
	c := cfg()
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table3Figure14(c)
		if err != nil {
			b.Fatal(err)
		}
		speedup = 0
		for _, r := range rows {
			speedup += r.Speedup()
		}
		speedup /= float64(len(rows))
	}
	b.ReportMetric(speedup, "mean-filter-speedup")
}

func BenchmarkTable4(b *testing.B) {
	c := cfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table4(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5Figures17And18(b *testing.B) {
	c := cfg()
	var switches int64
	for i := 0; i < b.N; i++ {
		rows, err := exp.DeadlineSweep(c)
		if err != nil {
			b.Fatal(err)
		}
		switches = 0
		for _, r := range rows {
			for _, n := range r.Transitions {
				switches += n
			}
		}
	}
	b.ReportMetric(float64(switches), "total-transitions")
}

func BenchmarkTable6(b *testing.B) {
	c := cfg()
	var lax3 float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table6(c)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Levels == 3 && r.Benchmark == "gsm/encode" {
				lax3 = r.Savings[4]
			}
		}
	}
	b.ReportMetric(lax3, "gsm-3lvl-laxest-savings")
}

func BenchmarkTable7(b *testing.B) {
	c := cfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table7(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure15(b *testing.B) {
	c := cfg()
	var drop float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure15(c)
		if err != nil {
			b.Fatal(err)
		}
		drop = 0
		for _, r := range rows {
			drop += r.NormEnergy[0] - r.NormEnergy[len(r.NormEnergy)-1]
		}
		drop /= float64(len(rows))
	}
	b.ReportMetric(drop, "mean-energy-drop")
}

func BenchmarkFigure19(b *testing.B) {
	c := cfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure19(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTransitionCost(b *testing.B) {
	c := cfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationNoTransitionCost(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBlockEdge(b *testing.B) {
	c := cfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationBlockBased(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHeuristic(b *testing.B) {
	c := cfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationHeuristic(c); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkSimulatorMpeg(b *testing.B) {
	spec := workloads.MpegDecode(benchScale)
	m := sim.MustNew(sim.DefaultConfig())
	mode := volt.XScale3().Mode(2)
	b.ResetTimer()
	var cycles float64
	for i := 0; i < b.N; i++ {
		res, err := m.Run(spec.Program, spec.Inputs[0], mode)
		if err != nil {
			b.Fatal(err)
		}
		cycles = float64(res.Params.NCache + res.Params.NOverlap + res.Params.NDependent)
	}
	b.ReportMetric(cycles/b.Elapsed().Seconds()*float64(b.N)/1e6, "Mcycles/s")
}

// profileBenchRecord is the schema of BENCH_profile.json.
type profileBenchRecord struct {
	Benchmark    string  `json:"benchmark"`
	Levels       int     `json:"levels"`
	PerModeNsOp  float64 `json:"per_mode_ns_per_op"`
	RecordedNsOp float64 `json:"recorded_ns_per_op"`
	Speedup      float64 `json:"speedup_recorded_vs_per_mode"`
	BitIdentical bool    `json:"bit_identical"`
}

// BenchmarkProfileCollect measures what record-once/replay-per-mode buys: the
// timed loop runs profile.Collect (one instrumented simulation plus a batched
// replay for the other modes) over the 7-level mode set, against an inline
// per-mode baseline (7 full simulations). The two profiles are checked
// bit-identical via the canonical codec, and the record lands in
// BENCH_profile.json.
func BenchmarkProfileCollect(b *testing.B) {
	spec := workloads.Gsm(benchScale)
	const levels = 7
	ms, err := volt.Levels(levels)
	if err != nil {
		b.Fatal(err)
	}
	m := sim.MustNew(sim.DefaultConfig())

	pmStart := time.Now()
	baseline, err := profile.CollectPerMode(m, spec.Program, spec.Inputs[0], ms)
	if err != nil {
		b.Fatal(err)
	}
	pmNs := float64(time.Since(pmStart).Nanoseconds())

	b.ResetTimer()
	var pr *profile.Profile
	for i := 0; i < b.N; i++ {
		if pr, err = profile.Collect(m, spec.Program, spec.Inputs[0], ms); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()

	wantEnc, err := profile.Encode(baseline)
	if err != nil {
		b.Fatal(err)
	}
	gotEnc, err := profile.Encode(pr)
	if err != nil {
		b.Fatal(err)
	}
	if string(wantEnc) != string(gotEnc) {
		b.Fatal("replayed profile is not bit-identical to the per-mode profile")
	}
	recNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	rec := profileBenchRecord{
		Benchmark:    spec.Name,
		Levels:       levels,
		PerModeNsOp:  pmNs,
		RecordedNsOp: recNs,
		Speedup:      pmNs / recNs,
		BitIdentical: true,
	}
	b.ReportMetric(rec.Speedup, "speedup-vs-per-mode")
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_profile.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkLPSolve(b *testing.B) {
	// An assignment-shaped LP of the DVS formulation's structure.
	build := func() *lp.Problem {
		p := lp.NewProblem()
		var budget []lp.Term
		for g := 0; g < 150; g++ {
			row := make([]lp.Term, 3)
			for m := 0; m < 3; m++ {
				v := p.AddVariable(float64((g*7+m*13)%17)+1, 0, 1)
				row[m] = lp.Term{Var: v, Coef: 1}
				budget = append(budget, lp.Term{Var: v, Coef: float64(m + 1)})
			}
			p.MustAddConstraint(row, lp.EQ, 1)
		}
		p.MustAddConstraint(budget, lp.LE, 320)
		return p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := build().Solve(nil)
		if err != nil || sol.Status != lp.Optimal {
			b.Fatalf("solve failed: %v %v", err, sol)
		}
	}
}

func BenchmarkMILPOptimize(b *testing.B) {
	m := sim.MustNew(sim.DefaultConfig())
	spec := workloads.Epic(benchScale)
	pr, err := profile.Collect(m, spec.Program, spec.Inputs[0], volt.XScale3())
	if err != nil {
		b.Fatal(err)
	}
	n := pr.Modes.Len()
	dl := (pr.TotalTimeUS[n-1] + pr.TotalTimeUS[0]) / 2
	b.ResetTimer()
	var nodes float64
	for i := 0; i < b.N; i++ {
		res, err := core.OptimizeSingle(pr, dl, nil)
		if err != nil {
			b.Fatal(err)
		}
		nodes = float64(res.Solver.Nodes)
	}
	b.ReportMetric(nodes, "bb-nodes")
}

func BenchmarkDVSExecution(b *testing.B) {
	m := sim.MustNew(sim.DefaultConfig())
	spec := workloads.Gsm(benchScale)
	pr, err := profile.Collect(m, spec.Program, spec.Inputs[0], volt.XScale3())
	if err != nil {
		b.Fatal(err)
	}
	n := pr.Modes.Len()
	dl := (pr.TotalTimeUS[n-1] + pr.TotalTimeUS[0]) / 2
	res, err := core.OptimizeSingle(pr, dl, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.RunDVS(spec.Program, spec.Inputs[0], res.Schedule); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyticDiscreteLP(b *testing.B) {
	ms, err := volt.Levels(13)
	if err != nil {
		b.Fatal(err)
	}
	p := analytic.Params{
		NOverlap:   4e6,
		NDependent: 5.8e6,
		NCache:     3e5,
		TInvariant: 8000,
		DeadlineUS: 16000,
	}
	b.ResetTimer()
	var energy float64
	for i := 0; i < b.N; i++ {
		sol, err := analytic.OptimizeDiscrete(p, ms)
		if err != nil {
			b.Fatal(err)
		}
		energy = sol.EnergyVC
	}
	b.ReportMetric(energy/1e6, "MV2cycles")
}

func BenchmarkAnalyticContinuous(b *testing.B) {
	p := analytic.Params{
		NOverlap:   4e6,
		NDependent: 5.8e6,
		NCache:     3e5,
		TInvariant: 8000,
		DeadlineUS: 16000,
	}
	vr := analytic.DefaultVRange()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analytic.OptimizeContinuous(p, vr); err != nil {
			b.Fatal(err)
		}
	}
}

var benchWorkloadSink *ir.Program

// BenchmarkWorkloadConstruction measures building the six-benchmark suite.
func BenchmarkWorkloadConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range workloads.All(benchScale) {
			benchWorkloadSink = s.Program
		}
	}
}

func BenchmarkRuntimeVsCompileTime(b *testing.B) {
	c := cfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RuntimeVsCompileTime(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLeakage(b *testing.B) {
	c := cfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationLeakage(c, exp.DefaultLeakageSweep()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPathFilter(b *testing.B) {
	c := cfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationPathFilter(c, 0.98); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlacementStats(b *testing.B) {
	c := cfg()
	var silent int
	for i := 0; i < b.N; i++ {
		rows, err := exp.PlacementStats(c)
		if err != nil {
			b.Fatal(err)
		}
		silent = 0
		for _, r := range rows {
			silent += r.Silent
		}
	}
	b.ReportMetric(float64(silent), "silent-mode-sets")
}

// --- compiled-kernel benchmarks ---

// simBenchRecord is the schema of BENCH_sim.json.
type simBenchRecord struct {
	Benchmark         string  `json:"benchmark"`
	Scale             float64 `json:"scale"`
	ReferenceRunNs    float64 `json:"reference_run_ns_per_op"`
	CompiledRunNs     float64 `json:"compiled_run_ns_per_op"`
	RunSpeedup        float64 `json:"speedup_compiled_vs_reference_run"`
	ReferenceRecordNs float64 `json:"reference_record_ns_per_op"`
	CompiledRecordNs  float64 `json:"compiled_record_ns_per_op"`
	RecordSpeedup     float64 `json:"speedup_compiled_vs_reference_record"`
	BitIdentical      bool    `json:"bit_identical"`
}

// timeIters returns the mean wall nanoseconds of n invocations of fn.
func timeIters(n int, fn func()) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

// BenchmarkSimCompiledKernel measures what compiling blocks to static cost
// tables buys on a full-scale workload: Machine.Run and Machine.Record on
// mpeg/decode at scale 1.0, compiled kernel vs the preserved reference
// interpreter (Config.ReferenceSim). Results and recordings are checked
// bit-identical before any timing is trusted; the timed loop is the compiled
// Run, the other three phases are measured inline, and the record lands in
// BENCH_sim.json.
func BenchmarkSimCompiledKernel(b *testing.B) {
	spec := workloads.MpegDecode(1.0)
	in := spec.Inputs[0]
	mode := volt.XScale3().Mode(2)
	comp := sim.MustNew(sim.DefaultConfig())
	refCfg := sim.DefaultConfig()
	refCfg.ReferenceSim = true
	ref := sim.MustNew(refCfg)

	// Bit-identity gates the timing; these runs double as warm-up. A
	// recording embeds its machine config, which differs only in the
	// ReferenceSim flag, so the flag is normalized before comparing.
	wantRes, err := ref.Run(spec.Program, in, mode)
	if err != nil {
		b.Fatal(err)
	}
	gotRes, err := comp.Run(spec.Program, in, mode)
	if err != nil {
		b.Fatal(err)
	}
	if !reflect.DeepEqual(wantRes, gotRes) {
		b.Fatal("compiled Run result differs from the reference interpreter")
	}
	wantRec, wantRecRes, err := ref.Record(spec.Program, in, mode)
	if err != nil {
		b.Fatal(err)
	}
	gotRec, gotRecRes, err := comp.Record(spec.Program, in, mode)
	if err != nil {
		b.Fatal(err)
	}
	wantRec.Config.ReferenceSim = false
	if !reflect.DeepEqual(wantRecRes, gotRecRes) || !reflect.DeepEqual(wantRec, gotRec) {
		b.Fatal("compiled Record differs from the reference interpreter")
	}

	const inlineIters = 3
	refRunNs := timeIters(inlineIters, func() {
		if _, err := ref.Run(spec.Program, in, mode); err != nil {
			b.Fatal(err)
		}
	})
	refRecNs := timeIters(inlineIters, func() {
		if _, _, err := ref.Record(spec.Program, in, mode); err != nil {
			b.Fatal(err)
		}
	})
	compRecNs := timeIters(inlineIters, func() {
		if _, _, err := comp.Record(spec.Program, in, mode); err != nil {
			b.Fatal(err)
		}
	})

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.Run(spec.Program, in, mode); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	compRunNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)

	rec := simBenchRecord{
		Benchmark:         spec.Name,
		Scale:             1.0,
		ReferenceRunNs:    refRunNs,
		CompiledRunNs:     compRunNs,
		RunSpeedup:        refRunNs / compRunNs,
		ReferenceRecordNs: refRecNs,
		CompiledRecordNs:  compRecNs,
		RecordSpeedup:     refRecNs / compRecNs,
		BitIdentical:      true,
	}
	b.ReportMetric(rec.RunSpeedup, "run-speedup-vs-reference")
	b.ReportMetric(rec.RecordSpeedup, "record-speedup-vs-reference")
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sim.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// --- parallel solver benchmarks ---
//
// BenchmarkMILPSerial and BenchmarkMILPParallel solve the same unfiltered
// (FilterTail < 0) mpeg/decode MILP with one worker and with max(4,
// GOMAXPROCS) workers. The serial benchmark measures a cold (warm starts
// disabled) baseline inline and reports the warm-vs-cold speedup; the
// parallel run measures a warm serial baseline inline, checks the objectives
// agree bit-for-bit across all three configurations, and writes the full
// record — both speedups plus the warm-start statistics — to
// BENCH_milp.json. Small search trees (like this one) stay under the
// solver's open-node threshold, so the parallel configuration auto-serializes
// and runs the serial algorithm verbatim instead of paying worker-pool
// overhead for no concurrency; the record reports that via auto_serialized.

// milpBenchRecord is the schema of BENCH_milp.json.
type milpBenchRecord struct {
	Benchmark  string `json:"benchmark"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	// Cold/serial/parallel wall times: cold is serial with warm starts
	// disabled, serial and parallel warm-start (the default).
	ColdSerialNsOp float64 `json:"cold_serial_ns_per_op"`
	SerialNsOp     float64 `json:"serial_ns_per_op"`
	ParallelNsOp   float64 `json:"parallel_ns_per_op"`
	WarmSpeedup    float64 `json:"speedup_warm_vs_cold"`
	Speedup        float64 `json:"speedup_vs_serial"`
	// AutoSerialized reports that the open-node threshold kept the worker
	// pool unspawned: the "parallel" solve ran the serial algorithm verbatim
	// (see milp.Options.ParallelThreshold).
	AutoSerialized bool    `json:"auto_serialized"`
	ObjectiveUJ    float64 `json:"objective_uj"`
	Nodes          int     `json:"bb_nodes"`
	// Warm-start statistics of the parallel run (see milp.Result).
	WarmSolves    int     `json:"warm_solves"`
	ColdSolves    int     `json:"cold_solves"`
	WarmFallbacks int     `json:"warm_fallbacks"`
	WarmHitRate   float64 `json:"warm_hit_rate"`
	LPPivots      int     `json:"lp_pivots"`
	PivotsPerNode float64 `json:"pivots_per_node"`
	LPTimeNs      float64 `json:"lp_time_ns"`
}

// milpBenchProfile collects the mpeg/decode profile and mid-range deadline
// shared by the MILP solver benchmarks.
func milpBenchProfile(b testing.TB) (*profile.Profile, float64) {
	b.Helper()
	m := sim.MustNew(sim.DefaultConfig())
	spec := workloads.MpegDecode(benchScale)
	pr, err := profile.Collect(m, spec.Program, spec.Inputs[0], volt.XScale3())
	if err != nil {
		b.Fatal(err)
	}
	n := pr.Modes.Len()
	return pr, (pr.TotalTimeUS[n-1] + pr.TotalTimeUS[0]) / 2
}

// solveMpegUnfiltered runs the full-edge-set optimization at the given
// branch-and-bound worker count, optionally with warm starts disabled.
func solveMpegUnfiltered(b testing.TB, pr *profile.Profile, dl float64, workers int, coldOnly bool) *core.Result {
	b.Helper()
	res, err := core.OptimizeSingle(pr, dl, &core.Options{
		FilterTail: -1,
		MILP: &milp.Options{
			TimeLimit:        2 * time.Minute,
			Workers:          workers,
			DisableWarmStart: coldOnly,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func BenchmarkMILPSerial(b *testing.B) {
	pr, dl := milpBenchProfile(b)

	coldStart := time.Now()
	cold := solveMpegUnfiltered(b, pr, dl, 1, true)
	coldNs := float64(time.Since(coldStart).Nanoseconds())

	b.ResetTimer()
	var warm *core.Result
	for i := 0; i < b.N; i++ {
		warm = solveMpegUnfiltered(b, pr, dl, 1, false)
	}
	b.StopTimer()

	if cold.PredictedEnergyUJ != warm.PredictedEnergyUJ {
		b.Fatalf("objective diverged: cold %v vs warm %v",
			cold.PredictedEnergyUJ, warm.PredictedEnergyUJ)
	}
	warmNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(float64(warm.Solver.Nodes), "bb-nodes")
	b.ReportMetric(coldNs/warmNs, "speedup-warm-vs-cold")
	b.ReportMetric(warm.Solver.WarmHitRate(), "warm-hit-rate")
	b.ReportMetric(warm.Solver.PivotsPerNode(), "pivots-per-node")
}

func BenchmarkMILPParallel(b *testing.B) {
	pr, dl := milpBenchProfile(b)
	workers := 4
	if n := runtime.GOMAXPROCS(0); n > workers {
		workers = n
	}

	coldStart := time.Now()
	cold := solveMpegUnfiltered(b, pr, dl, 1, true)
	coldNs := float64(time.Since(coldStart).Nanoseconds())

	// The serial baseline is averaged over several solves (after an untimed
	// warm-up) so it reflects the same steady state — GC cycles included —
	// as the timed parallel loop; a one-shot measurement lands below the
	// steady-state mean and skews the ratio.
	solveMpegUnfiltered(b, pr, dl, 1, false)
	var serial *core.Result
	serialNs := timeIters(8, func() {
		serial = solveMpegUnfiltered(b, pr, dl, 1, false)
	})

	b.ResetTimer()
	var par *core.Result
	for i := 0; i < b.N; i++ {
		par = solveMpegUnfiltered(b, pr, dl, workers, false)
	}
	b.StopTimer()

	// Warm starts and parallelism must change the work only, never the
	// answer: all three configurations land on the identical objective.
	if cold.PredictedEnergyUJ != serial.PredictedEnergyUJ {
		b.Fatalf("objective diverged: cold %v vs warm serial %v",
			cold.PredictedEnergyUJ, serial.PredictedEnergyUJ)
	}
	if d := math.Abs(serial.PredictedEnergyUJ - par.PredictedEnergyUJ); d > 1e-9 {
		b.Fatalf("objective diverged: serial %v vs parallel %v (Δ=%g)",
			serial.PredictedEnergyUJ, par.PredictedEnergyUJ, d)
	}
	if par.Solver.AutoSerialized &&
		(par.PredictedEnergyUJ != serial.PredictedEnergyUJ || par.Solver.Nodes != serial.Solver.Nodes) {
		b.Fatalf("auto-serialized solve diverged from serial: %v/%d vs %v/%d",
			par.PredictedEnergyUJ, par.Solver.Nodes, serial.PredictedEnergyUJ, serial.Solver.Nodes)
	}
	parNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	rec := milpBenchRecord{
		Benchmark:      "mpeg/decode",
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Workers:        workers,
		ColdSerialNsOp: coldNs,
		SerialNsOp:     serialNs,
		ParallelNsOp:   parNs,
		WarmSpeedup:    coldNs / serialNs,
		Speedup:        serialNs / parNs,
		AutoSerialized: par.Solver.AutoSerialized,
		ObjectiveUJ:    par.PredictedEnergyUJ,
		Nodes:          par.Solver.Nodes,
		WarmSolves:     par.Solver.WarmSolves,
		ColdSolves:     par.Solver.ColdSolves,
		WarmFallbacks:  par.Solver.WarmFallbacks,
		WarmHitRate:    par.Solver.WarmHitRate(),
		LPPivots:       par.Solver.LPPivots,
		PivotsPerNode:  par.Solver.PivotsPerNode(),
		LPTimeNs:       float64(par.Solver.LPTime.Nanoseconds()),
	}
	b.ReportMetric(serialNs/parNs, "raw-parallel-ratio")
	if rec.AutoSerialized {
		// Below the open-node threshold the parallel configuration executes
		// the exact serial node sequence (asserted above), so the measured
		// ratio is scheduling noise between two runs of the same code; the
		// record keeps both raw wall times and states the structural fact —
		// a speedup of exactly 1 — instead of the noise.
		rec.Speedup = 1.0
	}
	b.ReportMetric(rec.Speedup, "speedup-vs-serial")
	b.ReportMetric(rec.WarmSpeedup, "speedup-warm-vs-cold")
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_milp.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// --- analytic dual-bound benchmark ---
//
// BenchmarkMILPAnalyticBound solves the unfiltered mpeg/decode MILP with the
// Li–Yao–Yuan analytic dual bound enabled (the default) and disabled
// (milp.Options.DisableAnalyticBound), at the mid-range benchmark deadline
// and at a tight deadline where child pruning fires hardest. The bound is a
// relaxation, so it may only change the work, never the answer: the record
// asserts bit-identical objectives and strictly fewer committed
// branch-and-bound nodes with the bound on, and writes node and wall-time
// ratios to BENCH_bound.json (benchcheck gates the node speedups against
// their floors).

// boundBenchRecord is the schema of BENCH_bound.json.
type boundBenchRecord struct {
	Benchmark    string  `json:"benchmark"`
	Scale        float64 `json:"scale"`
	ObjectiveUJ  float64 `json:"objective_uj"`
	BitIdentical bool    `json:"bit_identical"`
	// Mid-range deadline (the BenchmarkMILPSerial operating point).
	DeadlineUS        float64 `json:"deadline_us"`
	NodesOff          int     `json:"bb_nodes_bound_off"`
	NodesOn           int     `json:"bb_nodes_bound_on"`
	AnalyticPrunes    int     `json:"analytic_prunes"`
	NodesSpeedup      float64 `json:"speedup_nodes_bound_on_vs_off"`
	NodesSpeedupFloor float64 `json:"speedup_nodes_bound_on_vs_off_floor"`
	OffNsOp           float64 `json:"bound_off_ns_per_op"`
	OnNsOp            float64 `json:"bound_on_ns_per_op"`
	WallRatio         float64 `json:"wall_ratio_off_vs_on"`
	// Tight deadline (15% of the slack span above the fastest schedule),
	// where most children die against the incumbent before any LP solve.
	TightDeadlineUS        float64 `json:"tight_deadline_us"`
	TightNodesOff          int     `json:"tight_bb_nodes_bound_off"`
	TightNodesOn           int     `json:"tight_bb_nodes_bound_on"`
	TightAnalyticPrunes    int     `json:"tight_analytic_prunes"`
	TightNodesSpeedup      float64 `json:"speedup_nodes_tight_bound_on_vs_off"`
	TightNodesSpeedupFloor float64 `json:"speedup_nodes_tight_bound_on_vs_off_floor"`
}

// solveMpegBounded runs the unfiltered warm serial solve with the analytic
// dual bound switched on or off.
func solveMpegBounded(b testing.TB, pr *profile.Profile, dl float64, disable bool) *core.Result {
	b.Helper()
	res, err := core.OptimizeSingle(pr, dl, &core.Options{
		FilterTail: -1,
		MILP: &milp.Options{
			TimeLimit:            2 * time.Minute,
			Workers:              1,
			DisableAnalyticBound: disable,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func BenchmarkMILPAnalyticBound(b *testing.B) {
	pr, dl := milpBenchProfile(b)

	// Off baseline, averaged after an untimed warm-up like the parallel
	// benchmark's serial baseline.
	solveMpegBounded(b, pr, dl, true)
	var off *core.Result
	offNs := timeIters(8, func() {
		off = solveMpegBounded(b, pr, dl, true)
	})

	b.ResetTimer()
	var on *core.Result
	for i := 0; i < b.N; i++ {
		on = solveMpegBounded(b, pr, dl, false)
	}
	b.StopTimer()
	onNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)

	if off.PredictedEnergyUJ != on.PredictedEnergyUJ {
		b.Fatalf("objective diverged: bound off %v vs on %v",
			off.PredictedEnergyUJ, on.PredictedEnergyUJ)
	}
	if on.Solver.Nodes >= off.Solver.Nodes {
		b.Fatalf("analytic bound did not shrink the tree: %d nodes on vs %d off",
			on.Solver.Nodes, off.Solver.Nodes)
	}

	// Tight deadline: nodes only, one solve per configuration.
	n := pr.Modes.Len()
	fast, slow := pr.TotalTimeUS[n-1], pr.TotalTimeUS[0]
	if fast > slow {
		fast, slow = slow, fast
	}
	dlTight := fast + 0.15*(slow-fast)
	tOff := solveMpegBounded(b, pr, dlTight, true)
	tOn := solveMpegBounded(b, pr, dlTight, false)
	if tOff.PredictedEnergyUJ != tOn.PredictedEnergyUJ {
		b.Fatalf("tight objective diverged: bound off %v vs on %v",
			tOff.PredictedEnergyUJ, tOn.PredictedEnergyUJ)
	}
	if tOn.Solver.Nodes >= tOff.Solver.Nodes {
		b.Fatalf("analytic bound did not shrink the tight tree: %d nodes on vs %d off",
			tOn.Solver.Nodes, tOff.Solver.Nodes)
	}

	rec := boundBenchRecord{
		Benchmark:    "mpeg/decode",
		Scale:        benchScale,
		ObjectiveUJ:  on.PredictedEnergyUJ,
		BitIdentical: true,

		DeadlineUS:     dl,
		NodesOff:       off.Solver.Nodes,
		NodesOn:        on.Solver.Nodes,
		AnalyticPrunes: on.Solver.AnalyticPrunes,
		NodesSpeedup:   float64(off.Solver.Nodes) / float64(on.Solver.Nodes),
		// The solve is deterministic at fixed scale, so the measured node
		// ratios are exact; the floors sit just under them to catch any
		// regression of the bound's strength.
		NodesSpeedupFloor: 1.05,
		OffNsOp:           offNs,
		OnNsOp:            onNs,
		WallRatio:         offNs / onNs,

		TightDeadlineUS:        dlTight,
		TightNodesOff:          tOff.Solver.Nodes,
		TightNodesOn:           tOn.Solver.Nodes,
		TightAnalyticPrunes:    tOn.Solver.AnalyticPrunes,
		TightNodesSpeedup:      float64(tOff.Solver.Nodes) / float64(tOn.Solver.Nodes),
		TightNodesSpeedupFloor: 1.05,
	}
	b.ReportMetric(rec.NodesSpeedup, "nodes-speedup")
	b.ReportMetric(float64(rec.AnalyticPrunes), "analytic-prunes")
	b.ReportMetric(rec.WallRatio, "wall-ratio-off-vs-on")
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_bound.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkExpPipeline runs the deadline-sweep pipeline (profile collection,
// 6×5 optimize+measure cells) end to end on a fresh config with the full
// experiment fan-out, the workload cmd/dvs-bench -workers parallelizes.
func BenchmarkExpPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := exp.NewConfig(benchScale)
		c.MILP = &milp.Options{TimeLimit: 2 * time.Minute}
		c.Workers = 0 // GOMAXPROCS-wide fan-out
		if _, err := exp.DeadlineSweep(c); err != nil {
			b.Fatal(err)
		}
	}
}

// pipelineBenchRecord is the schema of BENCH_pipeline.json.
type pipelineBenchRecord struct {
	Experiment string  `json:"experiment"`
	Scale      float64 `json:"scale"`
	ColdNsOp   float64 `json:"cold_ns_per_op"`
	WarmNsOp   float64 `json:"warm_ns_per_op"`
	Speedup    float64 `json:"speedup_cold_vs_warm"`
	AllHits    bool    `json:"warm_all_hits"`
	DiskHits   int     `json:"warm_disk_hits"`
}

// sweepWithStore runs the deadline sweep on a fresh config backed by the
// given artifact store, returning the config for manifest inspection.
func sweepWithStore(b *testing.B, store *pipeline.Store) *exp.Config {
	b.Helper()
	c := exp.NewConfig(benchScale)
	c.MILP = &milp.Options{TimeLimit: 2 * time.Minute}
	c.Pipeline = pipeline.NewRunner(store)
	if _, err := exp.DeadlineSweep(c); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkPipelineColdVsWarm measures what the artifact store buys: one cold
// deadline sweep populates a store, then each timed iteration replays the
// sweep from a process-fresh config over the same store — zero profile
// collections, zero MILP solves. The cold/warm record lands in
// BENCH_pipeline.json.
func BenchmarkPipelineColdVsWarm(b *testing.B) {
	dir, err := os.MkdirTemp("", "ctdvs-bench-cache")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := pipeline.Open(dir)
	if err != nil {
		b.Fatal(err)
	}

	coldStart := time.Now()
	sweepWithStore(b, store)
	coldNs := float64(time.Since(coldStart).Nanoseconds())

	b.ResetTimer()
	var warm *exp.Config
	for i := 0; i < b.N; i++ {
		warm = sweepWithStore(b, store)
	}
	b.StopTimer()

	man := warm.Pipeline.Manifest()
	if !man.AllHits() {
		b.Fatal("warm sweep recomputed stages")
	}
	disk := 0
	for _, s := range man.Stats() {
		disk += s.DiskHits
	}
	warmNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	rec := pipelineBenchRecord{
		Experiment: "deadline-sweep",
		Scale:      benchScale,
		ColdNsOp:   coldNs,
		WarmNsOp:   warmNs,
		Speedup:    coldNs / warmNs,
		AllHits:    true,
		DiskHits:   disk,
	}
	b.ReportMetric(rec.Speedup, "speedup-cold-vs-warm")
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pipeline.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// --- serving benchmarks ---

// serveBenchRecord is the schema of BENCH_serve.json.
type serveBenchRecord struct {
	Benchmark string  `json:"benchmark"`
	Scale     float64 `json:"scale"`
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests_per_pass"`
	// Cold: fresh artifact store, every unique problem solved for real.
	// Warm: a process-fresh server over the same store answers from
	// artifacts alone (asserted via the run manifest).
	ColdP50MS  float64 `json:"cold_p50_ms"`
	ColdP99MS  float64 `json:"cold_p99_ms"`
	ColdReqPS  float64 `json:"cold_req_per_s"`
	WarmP50MS  float64 `json:"warm_p50_ms"`
	WarmP99MS  float64 `json:"warm_p99_ms"`
	WarmReqPS  float64 `json:"warm_req_per_s"`
	Speedup    float64 `json:"speedup_warm_vs_cold"`
	WarmAllHit bool    `json:"warm_all_hits"`
}

const (
	serveBenchClients  = 8
	serveBenchRequests = 40
	serveBenchmark     = "gsm/encode"
)

// serveBenchBodies builds one pass of request bodies: serveBenchRequests
// requests cycling the five paper deadlines, so the server sees five unique
// problems plus heavy request-level duplication — both the solver path and
// the single-flight/cache path carry real load.
func serveBenchBodies() []string {
	bodies := make([]string, serveBenchRequests)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(`{"bench":%q,"deadline":%d}`, serveBenchmark, 1+i%5)
	}
	return bodies
}

// serveBenchServer starts a test-scale server over dir's artifact store.
func serveBenchServer(b *testing.B, dir string) (*exp.Config, *httptest.Server) {
	b.Helper()
	store, err := pipeline.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	c := exp.NewConfig(benchScale)
	c.Pipeline = pipeline.NewRunner(store)
	ts := httptest.NewServer(serve.New(c, serve.Options{
		Workers:    runtime.GOMAXPROCS(0),
		QueueDepth: serveBenchRequests,
	}).Handler())
	return c, ts
}

type servePass struct {
	P50MS, P99MS, ReqPS float64
}

// serveBenchPass fires the bodies at the server from `clients` concurrent
// connections and returns latency percentiles and throughput.
func serveBenchPass(b *testing.B, url string, bodies []string, clients int) servePass {
	b.Helper()
	latencies := make([]float64, len(bodies))
	var next int64 = -1
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(bodies) {
					return
				}
				t0 := time.Now()
				resp, err := http.Post(url+"/optimize", "application/json", strings.NewReader(bodies[i]))
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Errorf("request %d: HTTP %d", i, resp.StatusCode)
					return
				}
				latencies[i] = float64(time.Since(t0).Microseconds()) / 1e3
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		i := int(p*float64(len(latencies))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return latencies[i]
	}
	return servePass{P50MS: pct(0.50), P99MS: pct(0.99), ReqPS: float64(len(bodies)) / elapsed}
}

// BenchmarkServeLatency measures request latency under concurrent load, cold
// (fresh store: five real solves) against warm (process-fresh server over
// the populated store: artifacts only), and writes the p50/p99/throughput
// record to BENCH_serve.json.
func BenchmarkServeLatency(b *testing.B) {
	dir, err := os.MkdirTemp("", "ctdvs-serve-bench")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	bodies := serveBenchBodies()

	coldCfg, coldTS := serveBenchServer(b, dir)
	cold := serveBenchPass(b, coldTS.URL, bodies, serveBenchClients)
	coldTS.Close()
	if got := coldCfg.Pipeline.Manifest().Stats()[pipeline.StageSolve].Misses; got != 5 {
		b.Fatalf("cold pass solve misses = %d, want 5 (one per deadline)", got)
	}

	b.ResetTimer()
	var warm servePass
	var warmCfg *exp.Config
	for i := 0; i < b.N; i++ {
		warmCfg, warmTS := serveBenchServer(b, dir)
		warm = serveBenchPass(b, warmTS.URL, bodies, serveBenchClients)
		warmTS.Close()
		if !warmCfg.Pipeline.Manifest().AllHits() {
			b.Fatal("warm pass recomputed stages")
		}
	}
	_ = warmCfg
	b.StopTimer()

	rec := serveBenchRecord{
		Benchmark:  serveBenchmark,
		Scale:      benchScale,
		Clients:    serveBenchClients,
		Requests:   serveBenchRequests,
		ColdP50MS:  cold.P50MS,
		ColdP99MS:  cold.P99MS,
		ColdReqPS:  cold.ReqPS,
		WarmP50MS:  warm.P50MS,
		WarmP99MS:  warm.P99MS,
		WarmReqPS:  warm.ReqPS,
		Speedup:    warm.ReqPS / cold.ReqPS,
		WarmAllHit: true,
	}
	b.ReportMetric(warm.P50MS, "warm-p50-ms")
	b.ReportMetric(warm.P99MS, "warm-p99-ms")
	b.ReportMetric(rec.Speedup, "speedup-warm-vs-cold")
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serve.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkServeThroughput measures sustained warm throughput: the store is
// populated once untimed, then each timed iteration is a full pass of
// concurrent requests against a process-fresh server.
func BenchmarkServeThroughput(b *testing.B) {
	dir, err := os.MkdirTemp("", "ctdvs-serve-bench")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	bodies := serveBenchBodies()

	_, coldTS := serveBenchServer(b, dir)
	serveBenchPass(b, coldTS.URL, bodies, serveBenchClients)
	coldTS.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ts := serveBenchServer(b, dir)
		serveBenchPass(b, ts.URL, bodies, serveBenchClients)
		ts.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*serveBenchRequests)/b.Elapsed().Seconds(), "req/s")
}

// --- task-graph benchmarks ---

// taskGraphBenchRecord is the schema of BENCH_taskgraph.json.
type taskGraphBenchRecord struct {
	Graph      string  `json:"graph"`
	Scale      float64 `json:"scale"`
	Tasks      int     `json:"tasks"`
	Cores      int     `json:"cores"`
	Workers    int     `json:"workers"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	// SolveNsOp is one full graph solve: HEFT list placement plus the
	// per-task mode MILP under precedence and deadline rows.
	SolveNsOp float64 `json:"solve_ns_per_op"`
	// Serial/parallel execution of the solved schedule on pooled machines.
	SerialSimNsOp   float64 `json:"serial_sim_ns_per_op"`
	ParallelSimNsOp float64 `json:"parallel_sim_ns_per_op"`
	SimSpeedup      float64 `json:"speedup_parallel_vs_serial_sim"`
	// SingleProcSerialized reports that GOMAXPROCS was 1: the worker
	// goroutines time-slice one processor, so the parallel execution does
	// the serial run's exact work with no concurrency to win from (the runs
	// are asserted bit-identical). The record keeps both raw wall times and
	// states the structural speedup — exactly 1 — instead of scheduling
	// noise, mirroring BENCH_milp.json's auto_serialized convention.
	SingleProcSerialized bool    `json:"single_proc_serialized"`
	BitIdentical         bool    `json:"bit_identical"`
	StaticEnergyUJ       float64 `json:"static_energy_uj"`
	MakespanUS           float64 `json:"makespan_us"`
	BBNodes              int     `json:"bb_nodes"`
}

// benchMachinePool is a grow-on-demand machine pool for the parallel graph
// simulation benchmark (the exp layer has its own; this one keeps the
// benchmark self-contained at the sim API).
type benchMachinePool struct {
	mu   sync.Mutex
	free []*sim.Machine
}

func (p *benchMachinePool) Acquire() *sim.Machine {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free = p.free[:n-1]
		return m
	}
	return sim.MustNew(sim.DefaultConfig())
}

func (p *benchMachinePool) Release(m *sim.Machine) {
	p.mu.Lock()
	p.free = append(p.free, m)
	p.mu.Unlock()
}

// BenchmarkTaskGraphSolve measures the multi-core task-graph path: the timed
// loop is the graph solve (placement + mode MILP) on a wide fork-join DAG;
// serial and parallel executions of the solved schedule are measured inline,
// checked bit-identical, and the record — gated by benchcheck on the
// parallel-vs-serial simulation speedup — lands in BENCH_taskgraph.json.
func BenchmarkTaskGraphSolve(b *testing.B) {
	c := exp.NewConfig(benchScale)
	gs := workloads.ForkJoin(8, 4)
	gw, err := c.BuildGraph(gs, 3, 0)
	if err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	var res *core.GraphResult
	for i := 0; i < b.N; i++ {
		res, err = core.OptimizeGraph(gw.Graph, gw.Profiles, gw.Cores, gw.DeadlineUS, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	solveNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)

	pool := &benchMachinePool{}
	workers := gw.Cores
	serialRes, err := sim.SimulateGraph(pool, gw.Graph, res.Schedule, 1)
	if err != nil {
		b.Fatal(err)
	}
	parRes, err := sim.SimulateGraph(pool, gw.Graph, res.Schedule, workers)
	if err != nil {
		b.Fatal(err)
	}
	if !reflect.DeepEqual(serialRes, parRes) {
		b.Fatal("parallel graph simulation differs from serial")
	}

	const simIters = 5
	serialNs := timeIters(simIters, func() {
		if _, err := sim.SimulateGraph(pool, gw.Graph, res.Schedule, 1); err != nil {
			b.Fatal(err)
		}
	})
	parNs := timeIters(simIters, func() {
		if _, err := sim.SimulateGraph(pool, gw.Graph, res.Schedule, workers); err != nil {
			b.Fatal(err)
		}
	})

	rec := taskGraphBenchRecord{
		Graph:           gs.Name,
		Scale:           benchScale,
		Tasks:           len(gw.Graph.Tasks),
		Cores:           gw.Cores,
		Workers:         workers,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		SolveNsOp:       solveNs,
		SerialSimNsOp:   serialNs,
		ParallelSimNsOp: parNs,
		SimSpeedup:      serialNs / parNs,
		BitIdentical:    true,
		StaticEnergyUJ:  serialRes.EnergyUJ,
		MakespanUS:      serialRes.MakespanUS,
		BBNodes:         res.Solver.Nodes,
	}
	b.ReportMetric(rec.SimSpeedup, "raw-parallel-sim-ratio")
	if rec.GOMAXPROCS == 1 {
		rec.SingleProcSerialized = true
		rec.SimSpeedup = 1.0
	}
	b.ReportMetric(rec.SimSpeedup, "parallel-sim-speedup")
	b.ReportMetric(float64(rec.BBNodes), "bb-nodes")
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_taskgraph.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// --- artifact store benchmarks ---

// storeBenchRecord is the schema of BENCH_store.json. The allocs_per_op /
// allocs_ceiling and speedup / speedup_floor field pairs are benchcheck's
// conventions (see internal/tools/benchcheck): the measured value is gated
// against the committed claim on every CI run.
type storeBenchRecord struct {
	Experiment   string  `json:"experiment"`
	Scale        float64 `json:"scale"`
	Workloads    int     `json:"workloads"`
	Deadlines    int     `json:"deadlines"`
	Capacitances int     `json:"capacitances"`
	Cells        int     `json:"cells"`
	// Warm matrix reads: Store.Get plus recording decode, one cell per op,
	// cycling the whole workload × deadline × capacitance matrix.
	BinNsOp       float64 `json:"binary_warm_read_ns_per_op"`
	BinBytesOp    float64 `json:"binary_warm_read_bytes_per_op"`
	BinAllocsOp   float64 `json:"binary_warm_read_allocs_per_op"`
	BinAllocsCeil float64 `json:"binary_warm_read_allocs_ceiling"`
	JSONNsOp      float64 `json:"json_warm_read_ns_per_op"`
	JSONBytesOp   float64 `json:"json_warm_read_bytes_per_op"`
	JSONAllocsOp  float64 `json:"json_warm_read_allocs_per_op"`
	Speedup       float64 `json:"speedup_binary_vs_json"`
	SpeedupFloor  float64 `json:"speedup_binary_vs_json_floor"`
	// Zero-copy mapped reads over the identical cells: Store.ReadMapped hands
	// the decoder a page-cache-backed mapping, borrow-mode decode aliases the
	// trace and bitstream words in place instead of copying them, Release
	// unmaps. Gated against the copying binary path above.
	MmapNsOp         float64 `json:"mmap_read_ns_per_op"`
	MmapBytesOp      float64 `json:"mmap_read_bytes_per_op"`
	MmapAllocsOp     float64 `json:"mmap_read_allocs_per_op"`
	MmapAllocsCeil   float64 `json:"mmap_read_allocs_ceiling"`
	MmapSpeedup      float64 `json:"speedup_mmap_vs_copy"`
	MmapSpeedupFloor float64 `json:"speedup_mmap_vs_copy_floor"`
	// Full warm cell path, read through replay: the legacy shape (JSON read,
	// then sparse count maps derived per replayed result, the seed's hot
	// path) against the lean shape (binary read, pooled dense replay).
	LegacyPathNsOp     float64 `json:"legacy_path_ns_per_op"`
	LegacyPathAllocsOp float64 `json:"legacy_path_allocs_per_op"`
	LeanPathNsOp       float64 `json:"lean_path_ns_per_op"`
	LeanPathAllocsOp   float64 `json:"lean_path_allocs_per_op"`
	AllocsRatio        float64 `json:"allocs_speedup_legacy_vs_lean"`
	AllocsRatioFloor   float64 `json:"allocs_speedup_legacy_vs_lean_floor"`
	// Replay of one bound gsm/encode recording across the 7-level mode set
	// (the pooled-scratch path every warm sweep takes after a store read).
	ReplayNsOp       float64 `json:"replay_ns_per_op"`
	ReplayAllocsOp   float64 `json:"replay_allocs_per_op"`
	ReplayAllocsCeil float64 `json:"replay_allocs_ceiling"`
	// The same 7-mode replay over a borrow-decoded recording whose trace still
	// lives in the mapping: zero-copy reads must not trade their savings for
	// replay-time allocations, so the mapped replay shares the copying
	// ceiling.
	MappedReplayNsOp       float64 `json:"mapped_replay_ns_per_op"`
	MappedReplayAllocsOp   float64 `json:"mapped_replay_allocs_per_op"`
	MappedReplayAllocsCeil float64 `json:"mapped_replay_allocs_ceiling"`
	// Put cost, plain vs coalesced (final Flush included). The batcher pays
	// per-batch shard fsyncs the plain path skips entirely, so these are cost
	// observations for the record, deliberately not a gated speedup.
	PlainPutNsOp   float64 `json:"put_ns_per_op"`
	BatchedPutNsOp float64 `json:"batched_put_ns_per_op"`
	BitIdentical   bool    `json:"bit_identical"`
}

// The committed perf claims of BENCH_store.json (benchcheck enforces them):
// binary warm reads beat JSON by ≥1.3x wall time, the lean read+replay path
// allocates ≥5x less than the legacy (JSON + sparse count maps) shape,
// binary decode stays under a fixed allocation budget per artifact, and
// replaying a recording across a whole mode set allocates only its escaping
// results.
const (
	storeBenchSpeedupFloor     = 1.3
	storeBenchAllocsRatioFloor = 5.0
	storeBenchBinAllocsCeil    = 64
	storeBenchReplayAllocsCeil = 16
	// Mapped reads beat copying binary reads by ≥1.3x: no read(2) of the
	// payload, no decode-time copies of the word runs, and most trace pages
	// are never even faulted until a replay touches them.
	storeBenchMmapSpeedupFloor = 1.3
	// A mapped read allocates only decoder scaffolding (reader, recording,
	// identity strings) — never payload-sized buffers.
	storeBenchMmapAllocsCeil = 32
)

// BenchmarkStoreScenarioMatrix measures the artifact store on a fleet-scale
// shape: a generated scenario matrix of workload × deadline × capacitance
// cells (every paper workload, hundreds of cells) is written to two stores —
// one binary-preferring, one JSON — and the timed loop is the warm read+decode
// of matrix cells from the binary store. The JSON store is measured inline on
// the identical cells, decodes are checked value-identical across formats,
// replay allocations are measured on a decoded recording, and the record
// lands in BENCH_store.json.
func BenchmarkStoreScenarioMatrix(b *testing.B) {
	const (
		nDeadlines = 8
		nCaps      = 6
	)
	specs := workloads.All(benchScale)
	simCfg := sim.DefaultConfig()
	m := sim.MustNew(simCfg)
	mode := volt.XScale3().Mode(2)
	replayModes, err := volt.Levels(7)
	if err != nil {
		b.Fatal(err)
	}

	// One recording per workload; every (deadline, capacitance) cell of that
	// workload stores the same payload under its own content address, which
	// is exactly the sharing a real sweep's recording stage exhibits.
	type workloadArt struct{ jdata, bdata []byte }
	arts := make([]workloadArt, len(specs))
	for w, spec := range specs {
		rec, _, err := m.Record(spec.Program, spec.Inputs[0], mode)
		if err != nil {
			b.Fatal(err)
		}
		jdata, err := schedfile.EncodeRecording(rec)
		if err != nil {
			b.Fatal(err)
		}
		bdata, err := schedfile.EncodeRecordingBinary(rec)
		if err != nil {
			b.Fatal(err)
		}
		fromJSON, err := schedfile.DecodeRecording(jdata, spec.Program, spec.Inputs[0], simCfg)
		if err != nil {
			b.Fatal(err)
		}
		fromBin, err := schedfile.DecodeRecordingBinary(bdata, spec.Program, spec.Inputs[0], simCfg)
		if err != nil {
			b.Fatal(err)
		}
		if !reflect.DeepEqual(fromJSON, fromBin) {
			b.Fatalf("%s: binary and JSON recording decodes disagree", spec.Name)
		}
		fromMapped, err := schedfile.DecodeRecordingBinaryMapped(bdata, spec.Program, spec.Inputs[0], simCfg)
		if err != nil {
			b.Fatal(err)
		}
		if !reflect.DeepEqual(fromBin, fromMapped) {
			b.Fatalf("%s: borrow-mode and copying binary decodes disagree", spec.Name)
		}
		arts[w] = workloadArt{jdata: jdata, bdata: bdata}
	}

	binDir, err := os.MkdirTemp("", "ctdvs-store-bench-bin")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(binDir)
	jsonDir, err := os.MkdirTemp("", "ctdvs-store-bench-json")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(jsonDir)
	binStore, err := pipeline.Open(binDir)
	if err != nil {
		b.Fatal(err)
	}
	jsonStore, err := pipeline.OpenWithFormat(jsonDir, pipeline.FormatJSON)
	if err != nil {
		b.Fatal(err)
	}

	// The matrix: deadline-major so consecutive cells cycle workloads.
	type cell struct {
		key pipeline.Key
		w   int
	}
	cells := make([]cell, 0, nDeadlines*nCaps*len(specs))
	for d := 0; d < nDeadlines; d++ {
		for c := 0; c < nCaps; c++ {
			dl := 1000 * float64(d+1)
			capF := 1e-5 * float64(c+1)
			for w, spec := range specs {
				key := pipeline.NewKey(pipeline.StageRecording).
					Str("bench", spec.Name).
					Str("input", spec.Inputs[0].Name).
					Float("deadline_us", dl).
					Float("capacitance_f", capF).
					Sum()
				if err := binStore.Put(pipeline.StageRecording, key, arts[w].bdata, pipeline.FormatBinary); err != nil {
					b.Fatal(err)
				}
				if err := jsonStore.Put(pipeline.StageRecording, key, arts[w].jdata, pipeline.FormatJSON); err != nil {
					b.Fatal(err)
				}
				cells = append(cells, cell{key: key, w: w})
			}
		}
	}

	// readCell is one warm op: store read plus format-routed decode.
	readCell := func(tb *testing.B, store *pipeline.Store, i int) *sim.Recording {
		c := cells[i%len(cells)]
		spec := specs[c.w]
		data, format, ok, err := store.Get(pipeline.StageRecording, c.key)
		if err != nil || !ok {
			tb.Fatalf("cell %d: ok=%v err=%v", i, ok, err)
		}
		var rec *sim.Recording
		if format == pipeline.FormatBinary {
			rec, err = schedfile.DecodeRecordingBinary(data, spec.Program, spec.Inputs[0], simCfg)
		} else {
			rec, err = schedfile.DecodeRecording(data, spec.Program, spec.Inputs[0], simCfg)
		}
		if err != nil {
			tb.Fatal(err)
		}
		return rec
	}

	// readCellMapped is the zero-copy variant of one warm op: mmap the
	// artifact, decode it in borrow mode (aliasing the mapping), unmap. The
	// decoded recording dies with the mapping, exactly the shape of a warm
	// read that turns out to be a cache hit nobody replays.
	readCellMapped := func(tb *testing.B, i int) {
		c := cells[i%len(cells)]
		spec := specs[c.w]
		m, format, ok, err := binStore.ReadMapped(pipeline.StageRecording, c.key)
		if err != nil || !ok || format != pipeline.FormatBinary {
			tb.Fatalf("cell %d: mapped read ok=%v f=%v err=%v", i, ok, format, err)
		}
		if _, err := schedfile.DecodeRecordingBinaryMapped(m.Bytes(), spec.Program, spec.Inputs[0], simCfg); err != nil {
			tb.Fatal(err)
		}
		if err := m.Release(); err != nil {
			tb.Fatal(err)
		}
	}

	// measure times a fixed-iteration loop and reads allocation deltas from
	// runtime.MemStats (testing.Benchmark cannot run inside a benchmark — it
	// would deadlock on the global benchmark lock). Each caller warms the
	// path first so the numbers are steady-state.
	type opStats struct{ nsOp, bytesOp, allocsOp float64 }
	measure := func(iters int, fn func(i int)) opStats {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn(i)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		n := float64(iters)
		return opStats{
			nsOp:     float64(elapsed.Nanoseconds()) / n,
			bytesOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
			allocsOp: float64(m1.Mallocs-m0.Mallocs) / n,
		}
	}

	// Inline measurements: the JSON baseline over the identical cells, the
	// binary path's allocation profile, and the post-read replay path (one
	// gsm/encode recording, bound once, replayed across all 7 modes per op).
	matrixIters := 2 * len(cells)
	for i := 0; i < len(cells); i++ {
		readCell(b, jsonStore, i) // warm-up
	}
	jsonRes := measure(matrixIters, func(i int) { readCell(b, jsonStore, i) })
	for i := 0; i < len(cells); i++ {
		readCell(b, binStore, i)
	}
	binRes := measure(matrixIters, func(i int) { readCell(b, binStore, i) })
	for i := 0; i < len(cells); i++ {
		readCellMapped(b, i)
	}
	mmapRes := measure(matrixIters, func(i int) { readCellMapped(b, i) })

	var gsmIdx int
	for w, spec := range specs {
		if spec.Name == "gsm/encode" {
			gsmIdx = w
		}
	}
	replayRec := readCell(b, binStore, gsmIdx)
	if err := replayRec.Bind(specs[gsmIdx].Program); err != nil {
		b.Fatal(err)
	}
	modes := replayModes.Modes()
	replay := func(int) {
		if _, err := replayRec.ReplayAll(modes); err != nil {
			b.Fatal(err)
		}
	}
	replay(0) // warm-up (layout cache, scratch pool)
	replayRes := measure(200, replay)

	// The same replay over a live mapping: borrow-mode decode, then 7-mode
	// replays whose trace reads fault straight into the page cache. Results
	// must be bit-identical to the copying recording's replays.
	gsmCell := cells[gsmIdx]
	gsmSpec := specs[gsmCell.w]
	mapping, mf, ok, err := binStore.ReadMapped(pipeline.StageRecording, gsmCell.key)
	if err != nil || !ok || mf != pipeline.FormatBinary {
		b.Fatalf("mapped replay read: ok=%v f=%v err=%v", ok, mf, err)
	}
	defer mapping.Release()
	mappedRec, err := schedfile.DecodeRecordingBinaryMapped(mapping.Bytes(), gsmSpec.Program, gsmSpec.Inputs[0], simCfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := mappedRec.Bind(gsmSpec.Program); err != nil {
		b.Fatal(err)
	}
	wantReplay, err := replayRec.ReplayAll(modes)
	if err != nil {
		b.Fatal(err)
	}
	gotReplay, err := mappedRec.ReplayAll(modes) // doubles as warm-up
	if err != nil {
		b.Fatal(err)
	}
	if !reflect.DeepEqual(wantReplay, gotReplay) {
		b.Fatal("replay over the mapped recording differs from the copying path")
	}
	mappedReplayRes := measure(200, func(int) {
		if _, err := mappedRec.ReplayAll(modes); err != nil {
			b.Fatal(err)
		}
	})

	// Put cost, plain vs coalesced: fresh stores, unique keys, the workload-0
	// binary payload. The batched pass ends with a Flush so every shard fsync
	// its batches pay is inside the measurement.
	const nPuts = 256
	putPayload := arts[0].bdata
	putKey := func(tag string, i int) pipeline.Key {
		return pipeline.NewKey(pipeline.StageRecording).Str("put", fmt.Sprintf("%s-%d", tag, i)).Sum()
	}
	mkPutStore := func(batched bool) (*pipeline.Store, func()) {
		dir, err := os.MkdirTemp("", "ctdvs-store-bench-put")
		if err != nil {
			b.Fatal(err)
		}
		st, err := pipeline.Open(dir)
		if err != nil {
			os.RemoveAll(dir)
			b.Fatal(err)
		}
		if batched {
			st.EnableWriteBatching(pipeline.BatchConfig{})
		}
		return st, func() { os.RemoveAll(dir) }
	}
	plainStore, cleanPlain := mkPutStore(false)
	defer cleanPlain()
	plainPutRes := measure(nPuts, func(i int) {
		if err := plainStore.Put(pipeline.StageRecording, putKey("plain", i), putPayload, pipeline.FormatBinary); err != nil {
			b.Fatal(err)
		}
	})
	batchStore, cleanBatch := mkPutStore(true)
	defer cleanBatch()
	batchPutRes := measure(nPuts, func(i int) {
		if err := batchStore.Put(pipeline.StageRecording, putKey("batch", i), putPayload, pipeline.FormatBinary); err != nil {
			b.Fatal(err)
		}
		if i == nPuts-1 {
			if err := batchStore.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Full warm cell path, read through replay. The legacy shape is what the
	// warm path cost before dense counts and the binary codec: a JSON store
	// read, then sparse edge/path count maps derived for every replayed
	// result (Result.CountMaps, now the maps' only source). The lean shape
	// is the current hot path: binary read, pooled dense replay.
	leanOp := func(i int) {
		rec := readCell(b, binStore, i)
		spec := specs[cells[i%len(cells)].w]
		if err := rec.Bind(spec.Program); err != nil {
			b.Fatal(err)
		}
		if _, err := rec.ReplayAll(modes); err != nil {
			b.Fatal(err)
		}
	}
	legacyOp := func(i int) {
		rec := readCell(b, jsonStore, i)
		spec := specs[cells[i%len(cells)].w]
		if err := rec.Bind(spec.Program); err != nil {
			b.Fatal(err)
		}
		results, err := rec.ReplayAll(modes)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			if _, _, err := res.CountMaps(spec.Program); err != nil {
				b.Fatal(err)
			}
		}
	}
	leanOp(0)
	leanRes := measure(len(cells), leanOp)
	legacyOp(0)
	legacyRes := measure(len(cells), legacyOp)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		readCell(b, binStore, i)
	}
	b.StopTimer()
	binNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)

	rec := storeBenchRecord{
		Experiment:         "scenario-matrix",
		Scale:              benchScale,
		Workloads:          len(specs),
		Deadlines:          nDeadlines,
		Capacitances:       nCaps,
		Cells:              len(cells),
		BinNsOp:            binNs,
		BinBytesOp:         binRes.bytesOp,
		BinAllocsOp:        binRes.allocsOp,
		BinAllocsCeil:      storeBenchBinAllocsCeil,
		JSONNsOp:           jsonRes.nsOp,
		JSONBytesOp:        jsonRes.bytesOp,
		JSONAllocsOp:       jsonRes.allocsOp,
		Speedup:            jsonRes.nsOp / binNs,
		SpeedupFloor:       storeBenchSpeedupFloor,
		MmapNsOp:           mmapRes.nsOp,
		MmapBytesOp:        mmapRes.bytesOp,
		MmapAllocsOp:       mmapRes.allocsOp,
		MmapAllocsCeil:     storeBenchMmapAllocsCeil,
		MmapSpeedup:        binRes.nsOp / mmapRes.nsOp,
		MmapSpeedupFloor:   storeBenchMmapSpeedupFloor,
		LegacyPathNsOp:     legacyRes.nsOp,
		LegacyPathAllocsOp: legacyRes.allocsOp,
		LeanPathNsOp:       leanRes.nsOp,
		LeanPathAllocsOp:   leanRes.allocsOp,
		AllocsRatio:        legacyRes.allocsOp / leanRes.allocsOp,
		AllocsRatioFloor:   storeBenchAllocsRatioFloor,
		ReplayNsOp:         replayRes.nsOp,
		ReplayAllocsOp:     replayRes.allocsOp,
		ReplayAllocsCeil:   storeBenchReplayAllocsCeil,

		MappedReplayNsOp:       mappedReplayRes.nsOp,
		MappedReplayAllocsOp:   mappedReplayRes.allocsOp,
		MappedReplayAllocsCeil: storeBenchReplayAllocsCeil,
		PlainPutNsOp:           plainPutRes.nsOp,
		BatchedPutNsOp:         batchPutRes.nsOp,
		BitIdentical:           true,
	}
	b.ReportMetric(rec.Speedup, "speedup-binary-vs-json")
	b.ReportMetric(rec.MmapSpeedup, "speedup-mmap-vs-copy")
	b.ReportMetric(rec.AllocsRatio, "allocs-speedup-legacy-vs-lean")
	b.ReportMetric(rec.ReplayAllocsOp, "replay-allocs/op")
	b.ReportMetric(rec.MappedReplayAllocsOp, "mapped-replay-allocs/op")
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_store.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPathProfiling(b *testing.B) {
	spec := workloads.Gsm(benchScale)
	g, err := cfggraph.FromProgram(spec.Program)
	if err != nil {
		b.Fatal(err)
	}
	numbering, err := paths.New(g)
	if err != nil {
		b.Fatal(err)
	}
	m := sim.MustNew(sim.DefaultConfig())
	mode := volt.XScale3().Mode(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := numbering.NewTracer()
		m.EdgeHook = tr.Edge
		if _, err := m.Run(spec.Program, spec.Inputs[0], mode); err != nil {
			b.Fatal(err)
		}
		m.EdgeHook = nil
		tr.Finish()
	}
}
