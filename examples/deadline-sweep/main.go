// Deadline sweep: how the optimal energy, the mode mix and the number of
// dynamic mode switches change as the deadline relaxes — the usage pattern
// behind the paper's Figure 17 and Table 5, on the synthetic gsm/encode
// benchmark.
//
// Run with:
//
//	go run ./examples/deadline-sweep [-bench gsm/encode] [-scale 0.1] [-steps 9]
package main

import (
	"flag"
	"fmt"
	"log"

	"ctdvs/internal/core"
	"ctdvs/internal/profile"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
	"ctdvs/internal/workloads"
)

func main() {
	bench := flag.String("bench", "gsm/encode", "benchmark to sweep")
	scale := flag.Float64("scale", 0.1, "workload scale")
	steps := flag.Int("steps", 9, "number of deadlines between fastest and slowest runtimes")
	flag.Parse()

	var spec *workloads.Spec
	for _, s := range workloads.All(*scale) {
		if s.Name == *bench {
			spec = s
		}
	}
	if spec == nil {
		log.Fatalf("unknown benchmark %q", *bench)
	}

	machine := sim.MustNew(sim.DefaultConfig())
	prof, err := profile.Collect(machine, spec.Program, spec.Inputs[0], volt.XScale3())
	if err != nil {
		log.Fatal(err)
	}
	n := prof.Modes.Len()
	tFast, tSlow := prof.TotalTimeUS[n-1], prof.TotalTimeUS[0]
	reg := volt.DefaultRegulator()

	fmt.Printf("%s at scale %g: fastest %.1f µs, slowest %.1f µs\n\n", spec.Name, *scale, tFast, tSlow)
	fmt.Printf("%-12s %-12s %-12s %-10s %-10s %s\n",
		"deadline(µs)", "energy(µJ)", "vs single", "switches", "slack(µs)", "baseline mode")

	for i := 0; i <= *steps; i++ {
		dl := tFast + (tSlow-tFast)*float64(i)/float64(*steps)
		if i == 0 {
			dl *= 1.001 // strictly feasible at the fastest mode
		}
		res, err := core.OptimizeSingle(prof, dl, &core.Options{Regulator: reg})
		if err != nil {
			log.Fatalf("deadline %.1f: %v", dl, err)
		}
		ev, err := core.Evaluate(machine, prof, res.Schedule, dl)
		if err != nil {
			log.Fatal(err)
		}
		mode, baseE, ok := prof.BestSingleMode(dl)
		norm := 0.0
		modeName := "none"
		if ok {
			norm = ev.Run.EnergyUJ / baseE
			modeName = prof.Modes.Mode(mode).String()
		}
		fmt.Printf("%-12.1f %-12.1f %-12.3f %-10d %-10.1f %s\n",
			dl, ev.Run.EnergyUJ, norm, ev.Run.Transitions, ev.SlackUS, modeName)
	}
}
