// Task graphs: optimize a DAG of benchmark tasks across multiple cores with
// per-core DVS, then squeeze the remaining slack at run time. The flow is the
// multi-core generalization of the paper's single-program MILP: a list
// scheduler places tasks on cores, the MILP picks one voltage mode per task
// under precedence and deadline constraints, and a slack-reclaiming governor
// (in the style of Aupy et al.) re-decides modes at dispatch time as actual
// finish times come in — never later or hungrier than the static schedule.
//
// Run with:
//
//	go run ./examples/task-graph [-graph fork-join-4w] [-cores 4] [-scale 0.05]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ctdvs/internal/exp"
	"ctdvs/internal/workloads"
)

func main() {
	name := flag.String("graph", "fork-join-4w", "corpus graph (see workloads.Graphs)")
	cores := flag.Int("cores", 0, "override the graph's core count (0 = its own)")
	scale := flag.Float64("scale", 0.05, "workload scale")
	flag.Parse()

	gs, ok := workloads.Graph(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown graph %q; corpus:\n", *name)
		for _, g := range workloads.Graphs() {
			fmt.Fprintf(os.Stderr, "  %-14s %d tasks on %d cores\n", g.Name, len(g.Tasks), g.Cores)
		}
		os.Exit(1)
	}
	if *cores > 0 {
		override := *gs
		override.Cores = *cores
		gs = &override
	}

	cfg := exp.NewConfig(*scale)
	gw, err := cfg.BuildGraph(gs, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d tasks on %d cores at scale %g\n", gs.Name, len(gw.Graph.Tasks), gw.Cores, *scale)
	fmt.Printf("makespan span: %.1f µs (all-fastest) .. %.1f µs (all-slowest)\n", gw.FastUS, gw.SlowUS)
	fmt.Printf("deadline: %.1f µs (fraction %.2f of the span)\n\n", gw.DeadlineUS, gs.DeadlineFrac)

	// Compile time: HEFT-style list placement, then one MILP mode decision
	// per task under precedence, release and deadline rows.
	res, err := cfg.OptimizeGraph(gw, nil)
	if err != nil {
		log.Fatal(err)
	}
	static, err := cfg.SimulateGraph(gw, res.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %5s %-14s %11s %11s %11s\n", "task", "core", "mode", "start µs", "finish µs", "energy µJ")
	for _, run := range static.Runs {
		fmt.Printf("%-18s %5d %-14s %11.1f %11.1f %11.1f\n",
			run.Name, run.Core, res.Schedule.Modes.Mode(run.Mode).String(),
			run.StartUS, run.FinishUS, run.EnergyUJ)
	}

	// Run time: the governor re-picks each task's mode at dispatch, spending
	// slack other tasks left behind, with a transition-cost reserve that
	// guarantees the static finish times (and so the deadline) are never
	// exceeded. Falls back to the static schedule wholesale if reclaiming
	// would not pay.
	governed, _, _, err := cfg.ReclaimGraph(gw, res.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	grun, err := cfg.SimulateGraph(gw, governed)
	if err != nil {
		log.Fatal(err)
	}

	nm := gw.Profiles[0].Modes.Len()
	fastE := 0.0
	for _, pr := range gw.Profiles {
		fastE += pr.TotalEnergyUJ[nm-1]
	}
	fmt.Printf("\n%-22s %12s %12s %8s\n", "schedule", "energy (µJ)", "makespan", "meets")
	rows := []struct {
		name string
		e, t float64
	}{
		{"all-fastest baseline", fastE, gw.FastUS},
		{"static MILP", static.EnergyUJ, static.MakespanUS},
		{"slack-reclaim governor", grun.EnergyUJ, grun.MakespanUS},
	}
	for _, r := range rows {
		fmt.Printf("%-22s %12.1f %12.1f %8v\n", r.name, r.e, r.t, r.t <= gw.DeadlineUS*(1+1e-9))
	}
	fmt.Printf("\nstatic saves %.1f%% vs all-fastest; the governor reclaims %.2f%% more\n",
		100*(1-static.EnergyUJ/fastE), 100*(1-grun.EnergyUJ/static.EnergyUJ))
}
