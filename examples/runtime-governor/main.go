// Runtime governor: compare compile-time MILP scheduling against three
// run-time interval policies on the same benchmark and deadline —
// utilization-driven (PAST-style), miss-rate-driven (Marculescu-style), and
// deadline-aware pacing (PACE-style). The first two lack deadline knowledge
// and overspend; the pacer time-multiplexes modes and can beat the static
// schedule on loop-dominated code (see EXPERIMENTS.md for why).
//
// Run with:
//
//	go run ./examples/runtime-governor [-bench gsm/encode] [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"log"

	"ctdvs/internal/core"
	"ctdvs/internal/profile"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
	"ctdvs/internal/workloads"
)

func main() {
	bench := flag.String("bench", "gsm/encode", "benchmark")
	scale := flag.Float64("scale", 0.1, "workload scale")
	flag.Parse()

	var spec *workloads.Spec
	for _, s := range workloads.All(*scale) {
		if s.Name == *bench {
			spec = s
		}
	}
	if spec == nil {
		log.Fatalf("unknown benchmark %q", *bench)
	}

	machine := sim.MustNew(sim.DefaultConfig())
	ms := volt.XScale3()
	reg := volt.DefaultRegulator()
	prof, err := profile.Collect(machine, spec.Program, spec.Inputs[0], ms)
	if err != nil {
		log.Fatal(err)
	}
	n := ms.Len()
	deadline := spec.Deadline(4, prof.TotalTimeUS[n-1], prof.TotalTimeUS[0])
	total := prof.Params.NCache + prof.Params.NOverlap + prof.Params.NDependent
	fmt.Printf("%s at scale %g: deadline %.1f µs (D4), %d total cycles\n\n",
		spec.Name, *scale, deadline, total)

	type strat struct {
		name string
		run  func() (*sim.Result, error)
	}
	strategies := []strat{
		{"compile-time MILP", func() (*sim.Result, error) {
			res, err := core.OptimizeSingle(prof, deadline, &core.Options{Regulator: reg})
			if err != nil {
				return nil, err
			}
			return machine.RunDVS(spec.Program, spec.Inputs[0], res.Schedule)
		}},
		{"utilization governor", func() (*sim.Result, error) {
			return machine.RunGoverned(spec.Program, spec.Inputs[0], ms, reg, n-1, 500,
				&sim.UtilizationGovernor{Modes: ms, Low: 0.6, High: 0.9})
		}},
		{"miss-rate governor", func() (*sim.Result, error) {
			return machine.RunGoverned(spec.Program, spec.Inputs[0], ms, reg, n-1, 500,
				&sim.MissRateGovernor{Modes: ms, LowMissesPerUS: 0.5, HighMissesPerUS: 3})
		}},
		{"deadline pacer", func() (*sim.Result, error) {
			return machine.RunGoverned(spec.Program, spec.Inputs[0], ms, reg, n-1, 500,
				&sim.DeadlineGovernor{Modes: ms, TotalCycles: total, DeadlineUS: deadline, Margin: 1.1})
		}},
	}

	fmt.Printf("%-22s %12s %12s %10s %8s\n", "strategy", "time (µs)", "energy (µJ)", "switches", "meets")
	for _, s := range strategies {
		res, err := s.run()
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		fmt.Printf("%-22s %12.1f %12.1f %10d %8v\n",
			s.name, res.TimeUS, res.EnergyUJ, res.Transitions, res.TimeUS <= deadline*1.02)
	}
}
