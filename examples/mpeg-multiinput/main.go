// MPEG multi-input: the paper's Figure 19 experiment as a library user would
// run it. mpeg/decode has four input bitstreams in two categories (with and
// without B-frames). A schedule optimized from one category's profile can
// mispredict the other category's runtime; the multi-category formulation —
// minimizing the weighted average energy subject to both categories'
// deadlines — is robust across all four inputs.
//
// Run with:
//
//	go run ./examples/mpeg-multiinput [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"log"

	"ctdvs/internal/core"
	"ctdvs/internal/ir"
	"ctdvs/internal/profile"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
	"ctdvs/internal/workloads"
)

func main() {
	scale := flag.Float64("scale", 0.1, "workload scale")
	flag.Parse()

	spec := workloads.MpegDecode(*scale)
	machine := sim.MustNew(sim.DefaultConfig())
	modes := volt.XScale3()
	reg := volt.DefaultRegulator()

	// Profile every input. The deadline is a property of the application —
	// one wall-clock target shared by every optimization — derived from the
	// default (flwr) profile's Deadline-4 position.
	type prof struct {
		in ir.Input
		pr *profile.Profile
	}
	profs := map[string]*prof{}
	for _, in := range spec.Inputs {
		pr, err := profile.Collect(machine, spec.Program, in, modes)
		if err != nil {
			log.Fatal(err)
		}
		profs[in.Name] = &prof{in: in, pr: pr}
		n := pr.Modes.Len()
		fmt.Printf("profiled %-10s: %8.1f µs at 800 MHz, %8.1f µs at 200 MHz\n",
			in.Name, pr.TotalTimeUS[n-1], pr.TotalTimeUS[0])
	}
	flwr, bbc := profs["flwr.m2v"], profs["bbc.m2v"]
	n := flwr.pr.Modes.Len()
	deadline := spec.Deadline(4, flwr.pr.TotalTimeUS[n-1], flwr.pr.TotalTimeUS[0])
	fmt.Printf("\ncommon application deadline: %.1f µs\n", deadline)

	// Three schedules: optimized from the flwr profile (B-frames), from the
	// bbc profile (no B-frames), and for the weighted average of both
	// categories — all against the same deadline.
	optFor := func(p *prof) *core.Result {
		res, err := core.OptimizeSingle(p.pr, deadline, &core.Options{Regulator: reg})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	flwrSched := optFor(flwr)
	bbcSched := optFor(bbc)
	avgSched, err := core.Optimize([]core.Category{
		{Profile: flwr.pr, Weight: 0.5, DeadlineUS: deadline},
		{Profile: bbc.pr, Weight: 0.5, DeadlineUS: deadline},
	}, &core.Options{Regulator: reg})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-10s %14s %14s %14s %14s\n", "run input", "self (µs)", "opt-flwr (µs)", "opt-bbc (µs)", "opt-avg (µs)")
	for _, in := range spec.Inputs {
		p := profs[in.Name]
		self := optFor(p)
		row := []float64{}
		for _, sched := range []*core.Result{self, flwrSched, bbcSched, avgSched} {
			run, err := machine.RunDVS(spec.Program, in, sched.Schedule)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, run.TimeUS)
		}
		fmt.Printf("%-10s %14.1f %14.1f %14.1f %14.1f\n", in.Name, row[0], row[1], row[2], row[3])
	}
	fmt.Println("\nNote how the bbc-profiled schedule can misjudge inputs with B-frames")
	fmt.Println("(the profile never saw that code execute), while the averaged")
	fmt.Println("optimization tracks the self-profiled runtimes.")
}
