// Quickstart: the full compile-time DVS pipeline on a small program.
//
// It builds a two-phase program in the mini-IR (a memory-bound loop followed
// by a compute-bound loop), profiles it on the simulator at the XScale-like
// 200/600/800 MHz modes, asks the MILP optimizer for the minimum-energy
// mode-set placement under a mid-range deadline, and measures the result
// against the best single-frequency baseline.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ctdvs/internal/core"
	"ctdvs/internal/ir"
	"ctdvs/internal/profile"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

func main() {
	// 1. Describe a program: a memory-bound phase (streaming loads with a
	// short dependent tail) and a compute-bound phase.
	b := ir.NewBuilder("quickstart")
	mem := b.RandomStream(64 << 20) // 64 MB working set: every load misses
	memPhase := b.Block("memory-bound")
	cpuPhase := b.Block("compute-bound")
	exit := b.Block("exit")

	memPhase.Load(mem).Compute(30).DependentCompute(5)
	b.LoopBranch(memPhase, memPhase, cpuPhase, 4000)

	cpuPhase.Compute(120)
	b.LoopBranch(cpuPhase, cpuPhase, exit, 4000)

	exit.Compute(1)
	exit.Exit()
	prog := b.MustFinish()

	// 2. Profile it at every DVS mode.
	machine := sim.MustNew(sim.DefaultConfig())
	input := ir.Input{Name: "default", Seed: 42}
	prof, err := profile.Collect(machine, prog, input, volt.XScale3())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %q: %s\n", prog.Name, sim.FormatParams(prof.Params))
	for i, m := range prof.Modes.Modes() {
		fmt.Printf("  fixed %v: %8.1f µs, %8.1f µJ\n", m, prof.TotalTimeUS[i], prof.TotalEnergyUJ[i])
	}

	// 3. Pick a deadline halfway between the fastest and slowest runs and
	// optimize.
	deadline := (prof.TotalTimeUS[2] + prof.TotalTimeUS[0]) / 2
	res, err := core.OptimizeSingle(prof, deadline, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeadline %.1f µs → MILP over %d/%d independent edges, solved in %v\n",
		deadline, res.IndependentEdges, res.TotalEdges, res.Solver.SolveTime)
	for e, m := range res.Schedule.Assignment {
		fmt.Printf("  edge %-9v → %v\n", e, prof.Modes.Mode(m))
	}

	// 4. Execute the schedule and compare with the best single mode.
	ev, err := core.Evaluate(machine, prof, res.Schedule, deadline)
	if err != nil {
		log.Fatal(err)
	}
	savings, err := core.SavingsVsBestSingle(machine, prof, res.Schedule, deadline, volt.DefaultRegulator())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmeasured: %.1f µs (deadline met: %v), %.1f µJ, %d mode switches\n",
		ev.Run.TimeUS, ev.MeetsDeadline, ev.Run.EnergyUJ, ev.Run.Transitions)
	fmt.Printf("energy saved vs best single frequency: %.1f%%\n", savings*100)
}
