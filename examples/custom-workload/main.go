// Custom workload: writing your own program in the mini-IR and comparing
// three scheduling strategies — the exact MILP, the memory-bound-region
// heuristic (Hsu–Kremer style), and the best single frequency — under the
// same deadline.
//
// The program models a batched packet-processing pipeline: for each batch of
// packets it parses headers (cache-friendly), walks a routing table (random
// DRAM accesses — memory-bound), and computes checksums (pure compute).
// Batching matters: mode switches cost 12 µs / 1.2 µJ at the default
// regulator, so per-packet switching can never pay off, but per-phase
// switching can — exactly the granularity trade-off the paper's MILP
// navigates.
//
// Run with:
//
//	go run ./examples/custom-workload
package main

import (
	"fmt"
	"log"

	"ctdvs/internal/core"
	"ctdvs/internal/ir"
	"ctdvs/internal/profile"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

func buildPipeline() *ir.Program {
	const (
		batches        = 24
		packetsPerLoop = 800
	)
	b := ir.NewBuilder("packet-pipeline")
	headers := b.SequentialStream(32 << 10) // packet headers: L1-resident
	table := b.RandomStream(128 << 20)      // routing table: always misses

	batch := b.Block("batch-head")
	parse := b.Block("parse")
	lookup := b.Block("lookup")
	checksum := b.Block("checksum")
	batchEnd := b.Block("batch-end")
	exit := b.Block("exit")

	batch.Compute(50)
	batch.Jump(parse)

	// Phase 1: parse all headers in the batch (cache-friendly compute).
	parse.Load(headers).Load(headers).Compute(40)
	b.LoopBranch(parse, parse, lookup, packetsPerLoop)

	// Phase 2: random table walk — the miss latency dominates, so this
	// phase can run slowly for free.
	lookup.Load(table).Compute(25).DependentCompute(8)
	b.LoopBranch(lookup, lookup, checksum, packetsPerLoop)

	// Phase 3: checksum — pure computation, wants the fast mode.
	checksum.Compute(90)
	b.LoopBranch(checksum, checksum, batchEnd, packetsPerLoop)

	batchEnd.Compute(20)
	b.LoopBranch(batchEnd, batch, exit, batches)

	exit.Compute(1)
	exit.Exit()
	return b.MustFinish()
}

func main() {
	prog := buildPipeline()
	machine := sim.MustNew(sim.DefaultConfig())
	input := ir.Input{Name: "trace", Seed: 9}
	prof, err := profile.Collect(machine, prog, input, volt.XScale3())
	if err != nil {
		log.Fatal(err)
	}
	n := prof.Modes.Len()
	deadline := prof.TotalTimeUS[n-1] + 0.35*(prof.TotalTimeUS[0]-prof.TotalTimeUS[n-1])
	reg := volt.DefaultRegulator()

	fmt.Printf("%s: %s\n", prog.Name, sim.FormatParams(prof.Params))
	fmt.Printf("fastest %.1f µs, slowest %.1f µs, deadline %.1f µs\n\n",
		prof.TotalTimeUS[n-1], prof.TotalTimeUS[0], deadline)

	type strat struct {
		name  string
		sched *sim.Schedule
	}
	var strategies []strat

	milpRes, err := core.OptimizeSingle(prof, deadline, &core.Options{Regulator: reg})
	if err != nil {
		log.Fatal(err)
	}
	strategies = append(strategies, strat{"MILP (edge-grained)", milpRes.Schedule})

	heur, err := core.HeuristicMemoryBound(prof, deadline, reg)
	if err != nil {
		log.Fatal(err)
	}
	strategies = append(strategies, strat{"memory-bound heuristic", heur})

	mode, _, ok := prof.BestSingleMode(deadline)
	if !ok {
		log.Fatal("no single mode meets the deadline")
	}
	strategies = append(strategies, strat{
		fmt.Sprintf("best single mode (%v)", prof.Modes.Mode(mode)),
		core.SingleModeSchedule(prof, mode, reg),
	})

	fmt.Printf("%-26s %12s %12s %10s %8s\n", "strategy", "time (µs)", "energy (µJ)", "switches", "meets")
	for _, s := range strategies {
		run, err := machine.RunDVS(prog, input, s.sched)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %12.1f %12.1f %10d %8v\n",
			s.name, run.TimeUS, run.EnergyUJ, run.Transitions, run.TimeUS <= deadline*1.001)
	}
}
