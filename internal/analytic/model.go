// Package analytic implements the paper's Section 3 analytical model for the
// maximum energy savings obtainable from compile-time intra-program DVS.
//
// A program (or program region) is summarized by four parameters measured by
// profiling (paper Section 3.2, Table 7):
//
//   - NOverlap: computation cycles that may run concurrently with memory;
//   - NDependent: computation cycles that must wait for memory;
//   - NCache: cycles of cache-hit memory operations;
//   - TInvariant: absolute service time of cache misses (frequency-invariant,
//     since memory is asynchronous with the CPU).
//
// Execution is modelled as an overlapped region followed by the dependent
// computation; at a single frequency f the execution time is
//
//	T(f) = max(tinvariant + NCache/f, NOverlap/f) + NDependent/f
//
// and the CPU's active (ungated) cycle count in the overlapped region is
// max(NOverlap, NCache) — the paper charges NOverlap·v² in its
// computation-dominated and memory-dominated cases and NCache·v² in its
// memory-dominated-with-slack case; the max unifies the three. Energies are
// reported in the paper's normalized unit, volts² × cycles.
//
// The package provides the continuous-voltage optimum (paper Section 3.3,
// Figures 2–7), the discrete-voltage optimum (Section 3.4, Figures 8–11)
// computed exactly as a small linear program over per-mode cycle
// allocations — the optimization the paper's neighbour-frequency
// construction solves by hand — plus that hand construction itself
// (EminOfY, Figure 8), and the single-frequency baselines that savings
// ratios are normalized against.
package analytic

import (
	"fmt"
	"math"

	"ctdvs/internal/volt"
)

// Params are the analytic-model inputs: the four program parameters plus the
// deadline. Cycle counts are in CPU cycles, times in microseconds.
type Params struct {
	NOverlap   float64
	NDependent float64
	NCache     float64
	TInvariant float64
	DeadlineUS float64
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.NOverlap < 0 || p.NDependent < 0 || p.NCache < 0 || p.TInvariant < 0 {
		return fmt.Errorf("analytic: negative parameter: %+v", p)
	}
	if p.DeadlineUS <= 0 {
		return fmt.Errorf("analytic: deadline must be positive, got %v", p.DeadlineUS)
	}
	return nil
}

// R1 returns the active cycle count of the overlapped region,
// max(NOverlap, NCache).
func (p Params) R1() float64 { return math.Max(p.NOverlap, p.NCache) }

// ExecTimeUS returns the single-frequency execution time T(f) in µs for
// f in MHz.
func (p Params) ExecTimeUS(f float64) float64 {
	return math.Max(p.TInvariant+p.NCache/f, p.NOverlap/f) + p.NDependent/f
}

// FInvariant returns the paper's f_invariant: the frequency at which
// executing NOverlap − NCache computation cycles exactly fills the cache-miss
// service time. Below it the program is computation-dominated. Zero when
// NCache ≥ NOverlap or TInvariant is zero-slack.
func (p Params) FInvariant() float64 {
	if p.NOverlap <= p.NCache || p.TInvariant <= 0 {
		return 0
	}
	return (p.NOverlap - p.NCache) / p.TInvariant
}

// FIdeal returns the paper's f_ideal, the single frequency that exactly
// meets the deadline ignoring memory invariance:
// (NOverlap+NDependent)/deadline for the computation-dominated analysis.
func (p Params) FIdeal() float64 {
	return (p.NOverlap + p.NDependent) / p.DeadlineUS
}

// Case classifies which of the paper's three regimes the parameters fall in
// at the continuous optimum.
type Case int

// Model regimes (paper Figures 1a, 1b, 1c).
const (
	// ComputeDominated: a single voltage is optimal (Figure 2).
	ComputeDominated Case = iota
	// MemoryDominated: two voltages are optimal (Figure 3).
	MemoryDominated
	// MemorySlack: cache-hit memory operations outlast the overlapped
	// computation; a single voltage is optimal (Figure 4).
	MemorySlack
)

// String names the case.
func (c Case) String() string {
	switch c {
	case ComputeDominated:
		return "computation-dominated"
	case MemoryDominated:
		return "memory-dominated"
	case MemorySlack:
		return "memory-dominated-with-slack"
	}
	return fmt.Sprintf("Case(%d)", int(c))
}

// VRange is a continuously scalable voltage range with its frequency law.
type VRange struct {
	Lo, Hi  float64 // volts
	Scaling volt.Scaling
}

// DefaultVRange returns the repository-standard continuous range
// [0.7 V, 1.65 V] under the default scaling law.
func DefaultVRange() VRange {
	return VRange{Lo: 0.7, Hi: 1.65, Scaling: volt.DefaultScaling()}
}

// FLo returns the frequency at the low end of the range.
func (vr VRange) FLo() float64 { return vr.Scaling.Freq(vr.Lo) }

// FHi returns the frequency at the high end of the range.
func (vr VRange) FHi() float64 { return vr.Scaling.Freq(vr.Hi) }

// ErrDeadlineInfeasible reports that even the fastest available setting
// cannot meet the deadline.
type ErrDeadlineInfeasible struct {
	NeedUS float64 // execution time at the fastest setting
	HaveUS float64 // the deadline
}

func (e *ErrDeadlineInfeasible) Error() string {
	return fmt.Sprintf("analytic: deadline %v µs infeasible: fastest setting needs %v µs", e.HaveUS, e.NeedUS)
}
