package analytic

import (
	"math"
)

// ContinuousSolution is the optimum of the continuously-scalable-voltage
// model (paper Section 3.3).
type ContinuousSolution struct {
	// EnergyVC is the minimum energy in volts²·cycles.
	EnergyVC float64
	// V1/F1 drive the overlapped region; V2/F2 drive the dependent
	// computation. For single-voltage optima V1 == V2.
	V1, F1 float64
	V2, F2 float64
	// Case classifies the regime at the optimum.
	Case Case
}

// BaselineContinuous returns the best single (continuously chosen) voltage
// that meets the deadline — the lowest feasible frequency — and its energy.
// This is the normalization baseline for continuous savings ratios.
func BaselineContinuous(p Params, vr VRange) (v, f, energyVC float64, err error) {
	if e := p.Validate(); e != nil {
		return 0, 0, 0, e
	}
	fLo, fHi := vr.FLo(), vr.FHi()
	if t := p.ExecTimeUS(fHi); t > p.DeadlineUS {
		return 0, 0, 0, &ErrDeadlineInfeasible{NeedUS: t, HaveUS: p.DeadlineUS}
	}
	f = fLo
	if p.ExecTimeUS(fLo) > p.DeadlineUS {
		// Bisect the monotone-decreasing T(f) for T = deadline.
		lo, hi := fLo, fHi
		for i := 0; i < 200; i++ {
			mid := (lo + hi) / 2
			if p.ExecTimeUS(mid) > p.DeadlineUS {
				lo = mid
			} else {
				hi = mid
			}
		}
		f = hi
	}
	v = vr.Scaling.Voltage(f)
	return v, f, (p.R1() + p.NDependent) * v * v, nil
}

// OptimizeContinuous finds the minimum-energy voltage assignment when
// voltage scales continuously over vr. At most two voltages are needed: one
// for the overlapped region and one for the dependent computation (paper
// Section 3.3). The optimum is located by a dense scan over the overlapped
// region's frequency followed by golden-section refinement; the dependent
// frequency follows from the deadline constraint.
func OptimizeContinuous(p Params, vr VRange) (*ContinuousSolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	fLo, fHi := vr.FLo(), vr.FHi()
	if t := p.ExecTimeUS(fHi); t > p.DeadlineUS {
		return nil, &ErrDeadlineInfeasible{NeedUS: t, HaveUS: p.DeadlineUS}
	}

	energyAt := func(f1 float64) (float64, float64) { // returns (E, f2)
		e1, t1 := regionOne(p, vr, f1)
		if math.IsInf(t1, 1) {
			return math.Inf(1), 0
		}
		rem := p.DeadlineUS - t1
		if p.NDependent == 0 {
			if rem < 0 {
				return math.Inf(1), 0
			}
			return e1, f1
		}
		if rem <= 0 {
			return math.Inf(1), 0
		}
		f2 := p.NDependent / rem
		if f2 > fHi*(1+1e-12) {
			return math.Inf(1), 0
		}
		if f2 < fLo {
			f2 = fLo // extra slack: idle (gated) after finishing early
		}
		v2 := vr.Scaling.Voltage(f2)
		return e1 + p.NDependent*v2*v2, f2
	}

	// Dense scan then golden-section refinement around the best point.
	const gridN = 2048
	bestF1, bestE := fHi, math.Inf(1)
	for i := 0; i <= gridN; i++ {
		f1 := fLo + (fHi-fLo)*float64(i)/gridN
		if e, _ := energyAt(f1); e < bestE {
			bestE, bestF1 = e, f1
		}
	}
	if math.IsInf(bestE, 1) {
		// Numerical corner: fall back to the fastest setting, which is
		// feasible by the check above.
		bestF1 = fHi
	}
	span := (fHi - fLo) / gridN
	lo := math.Max(fLo, bestF1-8*span)
	hi := math.Min(fHi, bestF1+8*span)
	const phi = 0.6180339887498949
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	for i := 0; i < 120; i++ {
		ec, _ := energyAt(c)
		ed, _ := energyAt(d)
		if ec < ed {
			b, d = d, c
			c = b - phi*(b-a)
		} else {
			a, c = c, d
			d = a + phi*(b-a)
		}
	}
	f1 := (a + b) / 2
	e, f2 := energyAt(f1)
	if e > bestE {
		f1 = bestF1
		e, f2 = energyAt(f1)
	}

	sol := &ContinuousSolution{
		EnergyVC: e,
		V1:       vr.Scaling.Voltage(f1),
		F1:       f1,
		V2:       vr.Scaling.Voltage(f2),
		F2:       f2,
		Case:     classify(p, f1),
	}
	return sol, nil
}

// regionOne returns the overlapped region's energy and wall time at
// frequency f1.
func regionOne(p Params, vr VRange, f1 float64) (energyVC, timeUS float64) {
	if f1 <= 0 {
		return math.Inf(1), math.Inf(1)
	}
	r1 := p.R1()
	v1 := vr.Scaling.Voltage(f1)
	t1 := math.Max(p.TInvariant+p.NCache/f1, p.NOverlap/f1)
	return r1 * v1 * v1, t1
}

// classify labels the regime the optimum landed in. An optimum pinned on the
// f_invariant boundary counts as memory-dominated: that is the regime whose
// constraint is active there (paper Section 3.3.1).
func classify(p Params, f1 float64) Case {
	if p.NCache >= p.NOverlap {
		return MemorySlack
	}
	if f1 < p.FInvariant()*(1-1e-6) {
		return ComputeDominated
	}
	return MemoryDominated
}

// SavingsContinuous returns the paper's energy-saving ratio for the
// continuous case: 1 − E_opt/E_baseline, where the baseline is the best
// single voltage meeting the deadline. The ratio is non-negative (the
// baseline is a feasible point of the optimization) and zero when a single
// voltage is already optimal.
func SavingsContinuous(p Params, vr VRange) (float64, error) {
	_, _, base, err := BaselineContinuous(p, vr)
	if err != nil {
		return 0, err
	}
	sol, err := OptimizeContinuous(p, vr)
	if err != nil {
		return 0, err
	}
	if base <= 0 {
		return 0, nil
	}
	s := 1 - sol.EnergyVC/base
	if s < 0 {
		// The optimizer can only undershoot the baseline by numerical
		// tolerance; clamp to the model's guarantee.
		s = 0
	}
	return s, nil
}

// EnergyVsV1 evaluates the total energy as a function of the overlapped
// region's voltage v1, with v2 chosen optimally for the remaining deadline
// (paper Figures 2, 3, 4). Points where the deadline cannot be met are
// +Inf.
func EnergyVsV1(p Params, vr VRange, v1s []float64) []float64 {
	out := make([]float64, len(v1s))
	fLo, fHi := vr.FLo(), vr.FHi()
	for i, v1 := range v1s {
		f1 := vr.Scaling.Freq(v1)
		if f1 < fLo || f1 > fHi*(1+1e-9) {
			out[i] = math.Inf(1)
			continue
		}
		e1, t1 := regionOne(p, vr, f1)
		rem := p.DeadlineUS - t1
		if p.NDependent == 0 {
			if rem < 0 {
				out[i] = math.Inf(1)
			} else {
				out[i] = e1
			}
			continue
		}
		if rem <= 0 {
			out[i] = math.Inf(1)
			continue
		}
		f2 := p.NDependent / rem
		if f2 > fHi*(1+1e-9) {
			out[i] = math.Inf(1)
			continue
		}
		if f2 < fLo {
			f2 = fLo
		}
		v2 := vr.Scaling.Voltage(f2)
		out[i] = e1 + p.NDependent*v2*v2
	}
	return out
}
