package analytic

import (
	"math"
	"math/rand"
	"testing"

	"ctdvs/internal/volt"
)

// memDominated is an instance in the paper's two-voltage regime:
// finvariant < fideal with NCache < NOverlap, feasible within the
// XScale-like frequency span. finvariant = 3.7e6/8000 ≈ 462 MHz,
// fideal = 9.8e6/16000 ≈ 612 MHz.
func memDominated() Params {
	return Params{
		NOverlap:   4e6,
		NDependent: 5.8e6,
		NCache:     3e5,
		TInvariant: 8000,
		DeadlineUS: 16000,
	}
}

// computeDominated has negligible memory time.
func computeDominated() Params {
	return Params{
		NOverlap:   4e6,
		NDependent: 5.8e6,
		NCache:     3e5,
		TInvariant: 1,
		DeadlineUS: 20000,
	}
}

// memSlack has cache-hit cycles exceeding overlap computation.
func memSlack() Params {
	return Params{
		NOverlap:   2e5,
		NDependent: 5e6,
		NCache:     2e6,
		TInvariant: 2000,
		DeadlineUS: 20000,
	}
}

func TestValidate(t *testing.T) {
	t.Parallel()
	if err := (Params{NOverlap: -1, DeadlineUS: 1}).Validate(); err == nil {
		t.Error("negative parameter accepted")
	}
	if err := (Params{DeadlineUS: 0}).Validate(); err == nil {
		t.Error("zero deadline accepted")
	}
	if err := memDominated().Validate(); err != nil {
		t.Error(err)
	}
}

func TestDerivedQuantities(t *testing.T) {
	t.Parallel()
	p := memDominated()
	if got := p.R1(); got != 4e6 {
		t.Errorf("R1 = %v", got)
	}
	want := (4e6 - 3e5) / 8000
	if got := p.FInvariant(); math.Abs(got-want) > 1e-9 {
		t.Errorf("FInvariant = %v, want %v", got, want)
	}
	if got := (Params{NOverlap: 1, NCache: 2, TInvariant: 5, DeadlineUS: 1}).FInvariant(); got != 0 {
		t.Errorf("FInvariant with NCache>NOverlap = %v, want 0", got)
	}
	// Single-frequency time at 800 MHz.
	p2 := memDominated()
	got := p2.ExecTimeUS(800)
	want = math.Max(8000+3e5/800, 4e6/800) + 5.8e6/800
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ExecTimeUS = %v, want %v", got, want)
	}
}

func TestBaselineContinuousMeetsDeadlineExactly(t *testing.T) {
	t.Parallel()
	vr := DefaultVRange()
	p := memDominated()
	v, f, e, err := BaselineContinuous(p, vr)
	if err != nil {
		t.Fatal(err)
	}
	if f > vr.FLo()*(1+1e-9) {
		// Deadline-binding case: T(f) == deadline.
		if dt := p.ExecTimeUS(f); math.Abs(dt-p.DeadlineUS) > 1e-6*p.DeadlineUS {
			t.Errorf("baseline time %v != deadline %v", dt, p.DeadlineUS)
		}
	}
	if e <= 0 || v < vr.Lo || v > vr.Hi {
		t.Errorf("baseline v=%v e=%v", v, e)
	}
}

func TestBaselineInfeasible(t *testing.T) {
	t.Parallel()
	p := memDominated()
	p.DeadlineUS = 1 // impossible
	if _, _, _, err := BaselineContinuous(p, DefaultVRange()); err == nil {
		t.Error("infeasible deadline accepted")
	}
	if _, err := OptimizeContinuous(p, DefaultVRange()); err == nil {
		t.Error("infeasible deadline accepted by optimizer")
	}
	if _, err := OptimizeDiscrete(p, volt.XScale3()); err == nil {
		t.Error("infeasible deadline accepted by discrete optimizer")
	}
	if _, _, ok := BaselineDiscrete(p, volt.XScale3()); ok {
		t.Error("infeasible deadline accepted by discrete baseline")
	}
}

func TestContinuousComputeDominatedSingleVoltage(t *testing.T) {
	t.Parallel()
	sol, err := OptimizeContinuous(computeDominated(), DefaultVRange())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Case != ComputeDominated {
		t.Errorf("case = %v", sol.Case)
	}
	if math.Abs(sol.V1-sol.V2) > 0.02 {
		t.Errorf("expected single voltage, got v1=%v v2=%v", sol.V1, sol.V2)
	}
	s, err := SavingsContinuous(computeDominated(), DefaultVRange())
	if err != nil {
		t.Fatal(err)
	}
	if s > 0.01 {
		t.Errorf("compute-dominated savings = %v, want ≈0", s)
	}
}

func TestContinuousMemorySlackSingleVoltage(t *testing.T) {
	t.Parallel()
	sol, err := OptimizeContinuous(memSlack(), DefaultVRange())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Case != MemorySlack {
		t.Errorf("case = %v", sol.Case)
	}
	if math.Abs(sol.V1-sol.V2) > 0.02 {
		t.Errorf("expected single voltage, got v1=%v v2=%v", sol.V1, sol.V2)
	}
}

func TestContinuousMemoryDominatedTwoVoltages(t *testing.T) {
	t.Parallel()
	p := memDominated()
	sol, err := OptimizeContinuous(p, DefaultVRange())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Case != MemoryDominated {
		t.Errorf("case = %v", sol.Case)
	}
	// Paper Figure 3: the overlapped region runs slower than the dependent
	// computation ("low-frequency operation while the overlapped computation
	// is hidden by the memory latency, followed by high-frequency hurry-up").
	if sol.V1 >= sol.V2 {
		t.Errorf("expected v1 < v2, got v1=%v v2=%v", sol.V1, sol.V2)
	}
	s, err := SavingsContinuous(p, DefaultVRange())
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0.01 {
		t.Errorf("memory-dominated savings = %v, want > 0", s)
	}
}

func TestContinuousOptimumBeatsOrMatchesBaseline(t *testing.T) {
	t.Parallel()
	vr := DefaultVRange()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		p := Params{
			NOverlap:   rng.Float64() * 2e7,
			NDependent: rng.Float64() * 5e7,
			NCache:     rng.Float64() * 1e7,
			TInvariant: rng.Float64() * 5000,
		}
		// Deadline between the fastest and ~slowest single-frequency times.
		tFast := p.ExecTimeUS(vr.FHi())
		tSlow := p.ExecTimeUS(vr.FLo())
		p.DeadlineUS = tFast + rng.Float64()*(tSlow*1.2-tFast)
		if p.DeadlineUS <= 0 {
			continue
		}
		_, _, base, err := BaselineContinuous(p, vr)
		if err != nil {
			continue
		}
		sol, err := OptimizeContinuous(p, vr)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.EnergyVC > base*(1+1e-6) {
			t.Fatalf("trial %d: optimum %v worse than baseline %v (p=%+v)",
				trial, sol.EnergyVC, base, p)
		}
		// The returned schedule must meet the deadline.
		t1 := math.Max(p.TInvariant+p.NCache/sol.F1, p.NOverlap/sol.F1)
		total := t1 + p.NDependent/sol.F2
		if total > p.DeadlineUS*(1+1e-6) {
			t.Fatalf("trial %d: schedule misses deadline: %v > %v", trial, total, p.DeadlineUS)
		}
	}
}

func TestDiscreteSolutionConstraints(t *testing.T) {
	t.Parallel()
	p := memDominated()
	ms := volt.XScale3()
	sol, err := OptimizeDiscrete(p, ms)
	if err != nil {
		t.Fatal(err)
	}
	sumX, sumXC, sumY := 0.0, 0.0, 0.0
	tX, tXC, tY := 0.0, 0.0, 0.0
	for m := 0; m < ms.Len(); m++ {
		if sol.X[m] < -1 || sol.XC[m] < -1 || sol.Y[m] < -1 {
			t.Fatalf("negative allocation at mode %d: %+v", m, sol)
		}
		if sol.XC[m] > sol.X[m]+1 {
			t.Errorf("cache allocation exceeds active at mode %d", m)
		}
		f := ms.Mode(m).F
		sumX += sol.X[m]
		sumXC += sol.XC[m]
		sumY += sol.Y[m]
		tX += sol.X[m] / f
		tXC += sol.XC[m] / f
		tY += sol.Y[m] / f
	}
	rel := func(a, b float64) float64 { return math.Abs(a-b) / math.Max(b, 1) }
	if rel(sumX, p.R1()) > 1e-6 {
		t.Errorf("ΣX = %v, want %v", sumX, p.R1())
	}
	if rel(sumXC, p.NCache) > 1e-6 {
		t.Errorf("ΣXC = %v, want %v", sumXC, p.NCache)
	}
	if rel(sumY, p.NDependent) > 1e-6 {
		t.Errorf("ΣY = %v, want %v", sumY, p.NDependent)
	}
	if sol.T1US < tX-1e-6 || sol.T1US < p.TInvariant+tXC-1e-6 {
		t.Errorf("T1 %v violates region-1 lower bounds (%v, %v)", sol.T1US, tX, p.TInvariant+tXC)
	}
	if sol.T1US+tY > p.DeadlineUS*(1+1e-9)+1e-6 {
		t.Errorf("deadline violated: %v > %v", sol.T1US+tY, p.DeadlineUS)
	}
}

func TestDiscreteNeverBeatsContinuous(t *testing.T) {
	t.Parallel()
	// The continuous range spans the discrete voltages, so the continuous
	// optimum is a lower bound for the discrete one.
	vr := DefaultVRange()
	ms, _ := volt.Levels(7)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		p := Params{
			NOverlap:   rng.Float64() * 2e7,
			NDependent: rng.Float64() * 5e7,
			NCache:     rng.Float64() * 1e7,
			TInvariant: rng.Float64() * 5000,
		}
		tFast := p.ExecTimeUS(ms.Max().F)
		tSlow := p.ExecTimeUS(ms.Min().F)
		p.DeadlineUS = tFast + rng.Float64()*(tSlow*1.1-tFast)
		if p.DeadlineUS <= 0 {
			continue
		}
		dsol, err := OptimizeDiscrete(p, ms)
		if err != nil {
			continue
		}
		csol, err := OptimizeContinuous(p, vr)
		if err != nil {
			continue
		}
		// The discrete LP may place the cache stream on its own frequency
		// pair (the paper's y-sweep construction has the same freedom),
		// while the continuous analysis ties the whole overlapped region to
		// one voltage — so the discrete optimum can undercut the two-voltage
		// continuous solution by a small margin, but never substantially.
		if dsol.EnergyVC < csol.EnergyVC*(1-0.05) {
			t.Fatalf("trial %d: discrete %v far below continuous %v (p=%+v)",
				trial, dsol.EnergyVC, csol.EnergyVC, p)
		}
	}
}

func TestDiscreteVersusBruteForceTwoModes(t *testing.T) {
	t.Parallel()
	// With two modes, brute-force the allocation fractions on a fine grid
	// and compare with the LP optimum.
	ms := volt.MustModeSet([]volt.Mode{{V: 0.7, F: 200}, {V: 1.65, F: 800}})
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		p := Params{
			NOverlap:   1e5 + rng.Float64()*5e6,
			NDependent: 1e5 + rng.Float64()*1e7,
			NCache:     rng.Float64() * 3e6,
			TInvariant: rng.Float64() * 3000,
		}
		tFast := p.ExecTimeUS(800)
		tSlow := p.ExecTimeUS(200)
		p.DeadlineUS = tFast + (0.1+0.8*rng.Float64())*(tSlow-tFast)
		sol, err := OptimizeDiscrete(p, ms)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		r1 := p.R1()
		best := math.Inf(1)
		const grid = 200
		for i := 0; i <= grid; i++ {
			alpha := float64(i) / grid // fraction of region-1 cycles at slow mode
			x0, x1 := r1*alpha, r1*(1-alpha)
			// Cache sub-allocation: prefer matching the active split but
			// scan it too (cache cycles within active cycles per mode).
			for k := 0; k <= 10; k++ {
				c0 := math.Min(p.NCache*float64(k)/10, x0)
				c1 := p.NCache - c0
				if c1 > x1+1e-9 || c1 < 0 {
					continue
				}
				t1 := math.Max(x0/200+x1/800, p.TInvariant+c0/200+c1/800)
				rem := p.DeadlineUS - t1
				if rem <= 0 {
					continue
				}
				for j := 0; j <= grid; j++ {
					beta := float64(j) / grid
					y0, y1 := p.NDependent*beta, p.NDependent*(1-beta)
					if y0/200+y1/800 > rem*(1+1e-12) {
						continue
					}
					e := (x0+y0)*0.49 + (x1+y1)*(1.65*1.65)
					if e < best {
						best = e
					}
				}
			}
		}
		if sol.EnergyVC > best*(1+1e-3) {
			t.Fatalf("trial %d: LP %v worse than brute force %v (p=%+v)",
				trial, sol.EnergyVC, best, p)
		}
		if sol.EnergyVC < best*(1-0.05) && best != math.Inf(1) {
			// The LP may legitimately be better than the coarse grid, but a
			// large gap would indicate a modelling discrepancy.
			t.Logf("trial %d: LP %v notably below grid %v", trial, sol.EnergyVC, best)
		}
	}
}

func TestEminOfYUpperBoundsLP(t *testing.T) {
	t.Parallel()
	// The paper's hand construction is a feasible point of the exact model,
	// so its minimum over y can never beat the LP optimum; for
	// memory-dominated instances it should land close.
	p := memDominated()
	ms, _ := volt.Levels(7)
	sol, err := OptimizeDiscrete(p, ms)
	if err != nil {
		t.Fatal(err)
	}
	bestY := math.Inf(1)
	for i := 1; i < 400; i++ {
		y := (p.DeadlineUS - p.TInvariant) * float64(i) / 400
		if e := EminOfY(p, ms, y); e < bestY {
			bestY = e
		}
	}
	if math.IsInf(bestY, 1) {
		t.Fatal("construction infeasible for all y")
	}
	if bestY < sol.EnergyVC*(1-1e-6) {
		t.Errorf("construction %v beats exact optimum %v", bestY, sol.EnergyVC)
	}
	if bestY > sol.EnergyVC*1.25 {
		t.Errorf("construction %v far above optimum %v", bestY, sol.EnergyVC)
	}
}

func TestEminOfYInfeasiblePoints(t *testing.T) {
	t.Parallel()
	p := memDominated()
	ms := volt.XScale3()
	if e := EminOfY(p, ms, -1); !math.IsInf(e, 1) {
		t.Error("negative y accepted")
	}
	if e := EminOfY(p, ms, p.DeadlineUS); !math.IsInf(e, 1) {
		t.Error("y beyond deadline accepted")
	}
	// Tiny y needs f beyond the fastest mode.
	if e := EminOfY(p, ms, 1e-9); !math.IsInf(e, 1) {
		t.Error("impossible cache frequency accepted")
	}
}

func TestSavingsDiscreteNonNegativeAndBounded(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(47))
	ms3 := volt.XScale3()
	for trial := 0; trial < 100; trial++ {
		p := Params{
			NOverlap:   rng.Float64() * 2e7,
			NDependent: rng.Float64() * 5e7,
			NCache:     rng.Float64() * 1e7,
			TInvariant: rng.Float64() * 5000,
		}
		tFast := p.ExecTimeUS(ms3.Max().F)
		tSlow := p.ExecTimeUS(ms3.Min().F)
		p.DeadlineUS = tFast + rng.Float64()*(tSlow*1.2-tFast)
		s, err := SavingsDiscrete(p, ms3)
		if err != nil {
			continue
		}
		if s < 0 || s >= 1 {
			t.Fatalf("trial %d: savings %v out of [0,1) (p=%+v)", trial, s, p)
		}
	}
}

func TestMoreLevelsShrinkHeadroom(t *testing.T) {
	t.Parallel()
	// The paper's headline: with many levels, a single setting is already
	// near-optimal, so intra-program DVS saves less (Table 1's Deadline 1
	// column: 0.62 → 0.23 → 0.11 as levels grow). Reproduce the effect with
	// a Deadline-1-style deadline: slightly above the fastest run, so the
	// 3-level baseline is forced to 800 MHz while the 13-level set has an
	// intermediate mode that already fits.
	p := Params{
		NOverlap:   6e6,
		NDependent: 6e6,
		NCache:     1e5,
		TInvariant: 100,
	}
	ms3 := volt.XScale3()
	ms13, _ := volt.Levels(13)
	p.DeadlineUS = p.ExecTimeUS(800) * 1.10
	s3, err := SavingsDiscrete(p, ms3)
	if err != nil {
		t.Fatal(err)
	}
	s13, err := SavingsDiscrete(p, ms13)
	if err != nil {
		t.Fatal(err)
	}
	if s13 >= s3 {
		t.Errorf("savings with 13 levels (%v) not below 3 levels (%v)", s13, s3)
	}
}

func TestEnergyVsV1Shapes(t *testing.T) {
	t.Parallel()
	vr := DefaultVRange()
	grid := make([]float64, 60)
	for i := range grid {
		grid[i] = vr.Lo + (vr.Hi-vr.Lo)*float64(i)/float64(len(grid)-1)
	}
	// Memory-dominated: curve has an interior minimum strictly better than
	// the endpoints.
	es := EnergyVsV1(memDominated(), vr, grid)
	minI, minE := -1, math.Inf(1)
	for i, e := range es {
		if e < minE {
			minI, minE = i, e
		}
	}
	if minI <= 0 || minI >= len(grid)-1 {
		t.Errorf("memory-dominated minimum at boundary index %d", minI)
	}
	// The infeasible low-voltage end must be +Inf.
	stressed := memDominated()
	stressed.DeadlineUS = stressed.ExecTimeUS(vr.FHi()) * 1.05
	es2 := EnergyVsV1(stressed, vr, grid)
	if !math.IsInf(es2[0], 1) {
		t.Errorf("tight-deadline low-voltage point should be infeasible, got %v", es2[0])
	}
}

func TestCaseString(t *testing.T) {
	t.Parallel()
	if ComputeDominated.String() == "" || MemoryDominated.String() == "" || MemorySlack.String() == "" {
		t.Error("empty case names")
	}
}
