package analytic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ctdvs/internal/volt"
)

// relClose reports a ≈ b within relative tolerance tol.
func relClose(a, b, tol float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return true
	}
	return math.Abs(a-b) <= tol*scale
}

func TestLYYValidation(t *testing.T) {
	vr := DefaultVRange()
	cases := []struct {
		name string
		jobs []Job
	}{
		{"empty", nil},
		{"negative cycles", []Job{{ReleaseUS: 0, DeadlineUS: 10, Cycles: -1}}},
		{"nan cycles", []Job{{ReleaseUS: 0, DeadlineUS: 10, Cycles: math.NaN()}}},
		{"empty window", []Job{{ReleaseUS: 10, DeadlineUS: 10, Cycles: 1}}},
		{"inverted window", []Job{{ReleaseUS: 10, DeadlineUS: 5, Cycles: 1}}},
		{"negative release", []Job{{ReleaseUS: -1, DeadlineUS: 5, Cycles: 1}}},
	}
	for _, tc := range cases {
		if _, err := OptimizeContinuousExact(tc.jobs, vr); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
		if _, err := AggregateClosedForm(tc.jobs, vr); err == nil {
			t.Errorf("%s: AggregateClosedForm: want error", tc.name)
		}
	}
}

func TestLYYInfeasibleDeadline(t *testing.T) {
	vr := DefaultVRange()
	// Demand more cycles than the fastest frequency can retire in the window.
	jobs := []Job{{ReleaseUS: 0, DeadlineUS: 10, Cycles: vr.FHi() * 20}}
	_, err := OptimizeContinuousExact(jobs, vr)
	var inf *ErrDeadlineInfeasible
	if !errors.As(err, &inf) {
		t.Fatalf("err = %v, want ErrDeadlineInfeasible", err)
	}
	if inf.NeedUS <= inf.HaveUS {
		t.Errorf("NeedUS %v should exceed HaveUS %v", inf.NeedUS, inf.HaveUS)
	}
}

// TestLYYSingleJobMatchesClosedForm checks the degenerate instance against
// the §3 closed form: one job with the whole window is the pure
// computation-dominated case.
func TestLYYSingleJobMatchesClosedForm(t *testing.T) {
	vr := DefaultVRange()
	for _, cycles := range []float64{1e4, 3e6, 8e6} {
		jobs := []Job{{ReleaseUS: 0, DeadlineUS: 10000, Cycles: cycles}}
		exact, err := OptimizeContinuousExact(jobs, vr)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := OptimizeContinuous(Params{NDependent: cycles, DeadlineUS: 10000}, vr)
		if err != nil {
			t.Fatal(err)
		}
		if !relClose(exact.EnergyVC, ref.EnergyVC, 1e-9) {
			t.Errorf("cycles %g: exact %v != closed form %v", cycles, exact.EnergyVC, ref.EnergyVC)
		}
		if len(exact.Intervals) != 1 || len(exact.Intervals[0].Jobs) != 1 {
			t.Errorf("cycles %g: intervals %+v, want one interval with one job", cycles, exact.Intervals)
		}
	}
}

// randParams draws a §3 parameter set wide enough to hit all three regimes
// and both feasible and infeasible deadlines.
func randParams(rng *rand.Rand) Params {
	return Params{
		NOverlap:   rng.Float64() * 6e6,
		NDependent: rng.Float64() * 8e6,
		NCache:     rng.Float64() * 2e6,
		TInvariant: rng.Float64() * 12000,
		DeadlineUS: 2000 + rng.Float64()*28000,
	}
}

// TestLYYMatchesClosedFormWithoutInvariance: with TInvariant = 0 the
// two-phase encoding is exact — both jobs share the full window, one
// critical interval covers everything, and the closed form collapses to the
// same single-frequency optimum.
func TestLYYMatchesClosedFormWithoutInvariance(t *testing.T) {
	vr := DefaultVRange()
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 300; i++ {
		p := randParams(rng)
		p.TInvariant = 0
		ref, refErr := OptimizeContinuous(p, vr)
		exact, exactErr := OptimizeContinuousExact(TwoPhaseJobs(p), vr)
		if (refErr == nil) != (exactErr == nil) {
			t.Fatalf("p=%+v: feasibility disagrees: closed form %v, exact %v", p, refErr, exactErr)
		}
		if refErr != nil {
			continue
		}
		if !relClose(exact.EnergyVC, ref.EnergyVC, 1e-6) {
			t.Errorf("p=%+v: exact %v != closed form %v", p, exact.EnergyVC, ref.EnergyVC)
		}
	}
}

// TestLYYRigorChain is the ladder invariant across randomized instances:
//
//	aggregate closed form ≤ exact continuous ≤ §3 continuous ≤ §3 discrete
//
// (the two-phase encoding relaxes the §3 timing, the continuous range
// relaxes the mode set). Feasibility propagates the other way: an
// infeasible relaxation makes everything above it infeasible.
//
// The discrete rung is asserted for mode sets generated on the alpha-power
// curve (volt.Uniform — which Levels uses for 7 and 13). The paper's
// 3-level XScale-like table is excluded on principle: it rounds 179 MHz up
// to 200 MHz at 0.70 V, placing its bottom mode above the physical curve,
// so at lax deadlines a table schedule can undercut the continuous-law
// optimum.
func TestLYYRigorChain(t *testing.T) {
	vr := DefaultVRange()
	rng := rand.New(rand.NewSource(43))
	const slack = 1e-6
	uniform3, err := volt.Uniform(3, vr.Lo, vr.Hi, vr.Scaling)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i := 0; i < 300; i++ {
		p := randParams(rng)
		jobs := TwoPhaseJobs(p)
		exact, exactErr := OptimizeContinuousExact(jobs, vr)
		cont, contErr := OptimizeContinuous(p, vr)

		if exactErr != nil {
			// The relaxation is infeasible, so the §3 model must be too.
			if contErr == nil {
				t.Fatalf("p=%+v: exact infeasible (%v) but closed form solvable", p, exactErr)
			}
			continue
		}
		agg, err := AggregateClosedForm(jobs, vr)
		if err != nil {
			t.Fatalf("p=%+v: aggregate: %v", p, err)
		}
		if agg.EnergyVC > exact.EnergyVC*(1+slack) {
			t.Errorf("p=%+v: aggregate %v > exact %v", p, agg.EnergyVC, exact.EnergyVC)
		}
		if contErr == nil && exact.EnergyVC > cont.EnergyVC*(1+slack) {
			t.Errorf("p=%+v: exact %v > closed form %v", p, exact.EnergyVC, cont.EnergyVC)
		}
		sets := map[string]*volt.ModeSet{"uniform3": uniform3}
		for _, levels := range []int{7, 13} {
			ms, err := volt.Levels(levels)
			if err != nil {
				t.Fatal(err)
			}
			sets[fmt.Sprintf("levels%d", levels)] = ms
		}
		for name, ms := range sets {
			if _, _, ok := BaselineDiscrete(p, ms); !ok {
				continue // infeasible even at the fastest mode
			}
			dsol, err := OptimizeDiscrete(p, ms)
			if err != nil {
				t.Fatalf("p=%+v %s: %v", p, name, err)
			}
			if exact.EnergyVC > dsol.EnergyVC*(1+slack) {
				t.Errorf("p=%+v %s: exact %v > discrete %v", p, name, exact.EnergyVC, dsol.EnergyVC)
			}
			// Every feasible single-mode schedule sits above the exact
			// continuous optimum too.
			for m := 0; m < ms.Len(); m++ {
				mode := ms.Mode(m)
				if p.ExecTimeUS(mode.F) > p.DeadlineUS {
					continue
				}
				e := (p.R1() + p.NDependent) * mode.V * mode.V
				if exact.EnergyVC > e*(1+slack) {
					t.Errorf("p=%+v %s mode %v: exact %v > single-mode %v", p, name, mode, exact.EnergyVC, e)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no feasible discrete instance checked — widen randParams")
	}
}

// randJobs draws a multi-region instance with overlapping windows.
func randJobs(rng *rand.Rand) []Job {
	n := 1 + rng.Intn(8)
	jobs := make([]Job, n)
	for i := range jobs {
		r := rng.Float64() * 20000
		w := 500 + rng.Float64()*15000
		jobs[i] = Job{ReleaseUS: r, DeadlineUS: r + w, Cycles: rng.Float64() * 4e6}
	}
	return jobs
}

// TestLYYMultiRegionProperties checks the structural invariants of the exact
// solution on randomized multi-job instances: clamped frequencies, energy
// accounting, non-increasing interval intensities, upper and lower bounds,
// and deadline monotonicity.
func TestLYYMultiRegionProperties(t *testing.T) {
	vr := DefaultVRange()
	rng := rand.New(rand.NewSource(47))
	feasible := 0
	for i := 0; i < 400; i++ {
		jobs := randJobs(rng)
		sol, err := OptimizeContinuousExact(jobs, vr)
		if err != nil {
			var inf *ErrDeadlineInfeasible
			if !errors.As(err, &inf) {
				t.Fatalf("jobs=%+v: %v", jobs, err)
			}
			continue
		}
		feasible++

		var total, fastest float64
		for j, job := range jobs {
			f, v := sol.FreqMHz[j], sol.VoltV[j]
			if f < vr.FLo()*(1-1e-9) || f > vr.FHi()*(1+1e-9) {
				t.Fatalf("job %d frequency %v outside [%v, %v]", j, f, vr.FLo(), vr.FHi())
			}
			if !relClose(v, vr.Scaling.Voltage(f), 1e-9) {
				t.Fatalf("job %d voltage %v does not match frequency %v", j, v, f)
			}
			total += job.Cycles * v * v
			fastest += job.Cycles * vr.Hi * vr.Hi
		}
		if !relClose(total, sol.EnergyVC, 1e-9) {
			t.Fatalf("energy %v != per-job sum %v", sol.EnergyVC, total)
		}
		// Running everything at the top of the range is always feasible
		// for a feasible instance, so it upper-bounds the optimum.
		if sol.EnergyVC > fastest*(1+1e-9) {
			t.Fatalf("optimum %v above all-fastest energy %v", sol.EnergyVC, fastest)
		}
		agg, err := AggregateClosedForm(jobs, vr)
		if err != nil {
			t.Fatal(err)
		}
		if agg.EnergyVC > sol.EnergyVC*(1+1e-6) {
			t.Fatalf("aggregate bound %v above exact %v", agg.EnergyVC, sol.EnergyVC)
		}
		for k := 1; k < len(sol.Intervals); k++ {
			if sol.Intervals[k].FreqMHz > sol.Intervals[k-1].FreqMHz*(1+1e-9) {
				t.Fatalf("interval intensities not non-increasing: %+v", sol.Intervals)
			}
		}

		// Doubling every window can only add slack.
		wide := make([]Job, len(jobs))
		for j, job := range jobs {
			wide[j] = Job{ReleaseUS: job.ReleaseUS, DeadlineUS: job.ReleaseUS + 2*(job.DeadlineUS-job.ReleaseUS), Cycles: job.Cycles}
		}
		wsol, err := OptimizeContinuousExact(wide, vr)
		if err != nil {
			t.Fatalf("widened instance infeasible: %v", err)
		}
		if wsol.EnergyVC > sol.EnergyVC*(1+1e-9) {
			t.Fatalf("widened windows raised energy: %v > %v", wsol.EnergyVC, sol.EnergyVC)
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible instance drawn — widen randJobs")
	}
}

// TestLYYDeterministic: identical inputs produce bit-identical solutions.
func TestLYYDeterministic(t *testing.T) {
	vr := DefaultVRange()
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 50; i++ {
		jobs := randJobs(rng)
		a, errA := OptimizeContinuousExact(jobs, vr)
		b, errB := OptimizeContinuousExact(jobs, vr)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("feasibility flapped: %v vs %v", errA, errB)
		}
		if errA != nil {
			continue
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("solutions differ between runs:\n%+v\n%+v", a, b)
		}
	}
}
