package analytic

import "math"

// This file implements the paper's Section 3.3 first-order optimality
// conditions in closed form, as a cross-check on the numeric optimizer in
// continuous.go. For the two-voltage optimization
//
//	minimize    E(v1, v2) = N1·v1² + N2·v2²
//	subject to  N1'·τ(v1) + N2·τ(v2) = T
//
// where τ(v) = v/f(v) = v²·(v − vt)^{−a}/k is the per-cycle execution time,
// N1 the cycle count charged energy at v1, N1' the cycle count whose *time*
// appears in the binding deadline constraint (NOverlap when computation
// dominates the overlapped region, NCache when the memory stream does), and
// N2 = NDependent, the Lagrange conditions give
//
//	2·N1·v1 = λ·N1'·τ'(v1)
//	2·N2·v2 = λ·N2·τ'(v2)
//
// whose ratio is the stationarity condition
//
//	(N1/N1') · v1/τ'(v1)  =  v2/τ'(v2)
//
// with τ'(v) = v·(v − vt)^{−a−1}·(2(v − vt) − a·v)/k (the k cancels). When
// N1 == N1' the map v ↦ v/τ'(v) is strictly monotone on the operating range,
// forcing v1 == v2 — the paper's single-voltage result for the
// computation-dominated and memory-slack cases. In the memory-dominated case
// N1/N1' = NOverlap/NCache > 1 pushes v1 below v2: slow overlapped region,
// hurry-up dependent computation, exactly the paper's Figure 3 narrative.
//
// timeSlope returns d(v/f(v))/dv · k — the derivative of the per-cycle
// execution time (scaled by the constant k, which cancels in ratios):
// g(v) = v²·(v−vt)^{−a}, g'(v) = v·(v−vt)^{−a−1}·(2(v−vt) − a·v).
func timeSlope(sc VRange, v float64) float64 {
	vt := sc.Scaling.Vt
	a := sc.Scaling.A
	return v * math.Pow(v-vt, -a-1) * (2*(v-vt) - a*v)
}

// StationarityResidual evaluates the first-order condition for the
// two-voltage optimum of the memory-dominated (or computation-dominated)
// case: at an interior optimum,
//
//	N1·v1 / g'(v1) = N2·v2 / g'(v2)
//
// where N1 is the cycle count charged at v1 (the overlapped region's active
// cycles), N1' the cycle count whose *time* scales with v1 inside the
// deadline constraint, and N2 = NDependent. When the overlapped region's
// energy and time cycles coincide (N1 == N1', the computation-dominated and
// memory-slack cases) the condition reduces to the marginal-energy-per-
// marginal-time balance that forces v1 == v2 — the paper's single-voltage
// result. The residual returned is normalized to be dimensionless:
//
//	r = (N1·v1·g'(v2) − (N1·N2/N1')·... )
//
// Concretely: r = (N1/N1')·v1/g'(v1) − (N2/N2)·v2/g'(v2), scaled by the
// larger term; zero at stationarity.
func StationarityResidual(p Params, vr VRange, v1, v2 float64) float64 {
	n1 := p.R1()                     // energy cycles at v1
	n1t := timeCyclesAtV1(p, vr, v1) // time cycles at v1 in the binding constraint
	n2 := p.NDependent
	if n2 <= 0 || n1 <= 0 || n1t <= 0 {
		return 0
	}
	lhs := n1 / n1t * v1 / timeSlope(vr, v1)
	rhs := v2 / timeSlope(vr, v2)
	scale := math.Max(math.Abs(lhs), math.Abs(rhs))
	if scale == 0 {
		return 0
	}
	return (lhs - rhs) / scale
}

// timeCyclesAtV1 returns the cycle count whose execution time the deadline
// constraint charges at v1: NOverlap when computation dominates the
// overlapped region's duration, NCache when the memory stream does (the two
// branches of the paper's max(·,·)).
func timeCyclesAtV1(p Params, vr VRange, v1 float64) float64 {
	f1 := vr.Scaling.Freq(v1)
	if f1 <= 0 {
		return p.NOverlap
	}
	if p.NOverlap/f1 >= p.TInvariant+p.NCache/f1 {
		return p.NOverlap
	}
	return p.NCache
}
