package analytic

import (
	"math"
	"testing"

	"ctdvs/internal/volt"
)

// Degenerate parameter corners: the model must stay well-defined when any
// of the four program parameters vanishes.

func TestPureComputeNoSavings(t *testing.T) {
	t.Parallel()
	// No memory at all: a single frequency is optimal and savings are zero
	// in both the continuous and discrete models.
	p := Params{NOverlap: 5e6, NDependent: 3e6, DeadlineUS: 20000}
	vr := DefaultVRange()
	s, err := SavingsContinuous(p, vr)
	if err != nil {
		t.Fatal(err)
	}
	if s > 1e-6 {
		t.Errorf("continuous savings %v for pure compute", s)
	}
	sol, err := OptimizeContinuous(p, vr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.V1-sol.V2) > 0.02 {
		t.Errorf("pure compute wants one voltage, got %v/%v", sol.V1, sol.V2)
	}
}

func TestNoDependentComputation(t *testing.T) {
	t.Parallel()
	p := Params{NOverlap: 5e6, NCache: 1e6, TInvariant: 4000, DeadlineUS: 40000}
	vr := DefaultVRange()
	if _, err := OptimizeContinuous(p, vr); err != nil {
		t.Fatalf("continuous: %v", err)
	}
	ms := volt.XScale3()
	sol, err := OptimizeDiscrete(p, ms)
	if err != nil {
		t.Fatalf("discrete: %v", err)
	}
	sumY := 0.0
	for _, y := range sol.Y {
		sumY += y
	}
	if sumY > 1 {
		t.Errorf("dependent allocation %v with NDependent=0", sumY)
	}
}

func TestNoOverlapComputation(t *testing.T) {
	t.Parallel()
	// Only cache traffic and dependent computation: R1 = NCache.
	p := Params{NCache: 2e6, NDependent: 4e6, TInvariant: 3000, DeadlineUS: 40000}
	ms := volt.XScale3()
	sol, err := OptimizeDiscrete(p, ms)
	if err != nil {
		t.Fatal(err)
	}
	sumX := 0.0
	for _, x := range sol.X {
		sumX += x
	}
	if math.Abs(sumX-2e6) > 1 {
		t.Errorf("region-1 allocation %v, want NCache", sumX)
	}
}

func TestZeroMemoryEntirely(t *testing.T) {
	t.Parallel()
	// NCache = 0 and TInvariant = 0: discrete LP must still solve.
	p := Params{NOverlap: 1e6, NDependent: 1e6, DeadlineUS: 10000}
	ms, _ := volt.Levels(7)
	sol, err := OptimizeDiscrete(p, ms)
	if err != nil {
		t.Fatal(err)
	}
	if sol.EnergyVC <= 0 {
		t.Errorf("energy %v", sol.EnergyVC)
	}
	// With zero cache cycles the XC allocation is empty.
	for m, xc := range sol.XC {
		if xc > 1 {
			t.Errorf("cache allocation %v at mode %d with NCache=0", xc, m)
		}
	}
}

func TestTinyProgram(t *testing.T) {
	t.Parallel()
	// A program of a few hundred cycles must not trip scaling/conditioning.
	p := Params{NOverlap: 300, NDependent: 200, NCache: 50, TInvariant: 0.5, DeadlineUS: 10}
	ms := volt.XScale3()
	if _, err := OptimizeDiscrete(p, ms); err != nil {
		t.Fatal(err)
	}
	s, err := SavingsDiscrete(p, ms)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0 || s >= 1 {
		t.Errorf("savings %v", s)
	}
}

func TestEnergyVsV1NoDependent(t *testing.T) {
	t.Parallel()
	p := Params{NOverlap: 5e6, NCache: 1e6, TInvariant: 4000, DeadlineUS: 40000}
	vr := DefaultVRange()
	es := EnergyVsV1(p, vr, []float64{0.8, 1.2, 1.65})
	for i, e := range es {
		if math.IsNaN(e) {
			t.Errorf("point %d is NaN", i)
		}
	}
}
