package analytic

import (
	"fmt"
	"math"

	"ctdvs/internal/lp"
	"ctdvs/internal/volt"
)

// DiscreteSolution is the optimum of the discrete-voltage model (paper
// Section 3.4): an exact per-mode cycle allocation for the overlapped region
// and the dependent computation.
type DiscreteSolution struct {
	// EnergyVC is the minimum energy in volts²·cycles.
	EnergyVC float64
	// X[m] is the number of active overlapped-region cycles run at mode m;
	// XC[m] is the sub-allocation of cache-hit memory cycles within them;
	// Y[m] is the number of dependent-computation cycles at mode m.
	X, XC, Y []float64
	// T1US is the overlapped region's wall-clock duration.
	T1US float64
	// ModesUsed counts modes with a non-negligible cycle share; the paper
	// shows at most two are needed per single-frequency regime and four in
	// the memory-dominated regime.
	ModesUsed int
}

// OptimizeDiscrete computes the exact minimum-energy schedule when voltages
// come from the discrete set ms and computation may be partitioned across
// modes at arbitrarily fine grain (paper assumption 5). The paper solves
// this optimization by hand with neighbour-frequency constructions and a
// numeric sweep (Section 3.4); here it is solved exactly as a small linear
// program:
//
//	minimize   Σ_m v_m²·(x_m + y_m)
//	subject to Σ_m x_m        = max(NOverlap, NCache)   (overlap work)
//	           Σ_m xc_m       = NCache                  (cache stream)
//	           xc_m ≤ x_m                               (cache ⊆ active)
//	           Σ_m y_m        = NDependent              (dependent work)
//	           T1 ≥ Σ_m x_m/f_m                         (region-1 wall time)
//	           T1 ≥ tinv + Σ_m xc_m/f_m                 (memory stream)
//	           T1 + Σ_m y_m/f_m ≤ deadline
//
// Cycle variables are scaled to megacycles and times to seconds inside the
// LP for conditioning.
func OptimizeDiscrete(p Params, ms *volt.ModeSet) (*DiscreteSolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if ms == nil || ms.Len() == 0 {
		return nil, fmt.Errorf("analytic: empty mode set")
	}
	fMax := ms.Max().F
	if t := p.ExecTimeUS(fMax); t > p.DeadlineUS {
		return nil, &ErrDeadlineInfeasible{NeedUS: t, HaveUS: p.DeadlineUS}
	}

	const mc = 1e6 // cycles per megacycle; times become seconds (Mc/MHz = s)
	n := ms.Len()
	r1 := p.R1() / mc
	nc := p.NCache / mc
	nd := p.NDependent / mc
	tinv := p.TInvariant / 1e6
	dl := p.DeadlineUS / 1e6

	prob := lp.NewProblem()
	x := make([]int, n)
	xc := make([]int, n)
	y := make([]int, n)
	inf := math.Inf(1)
	for m := 0; m < n; m++ {
		v := ms.Mode(m).V
		x[m] = prob.AddVariable(v*v, 0, inf)
		xc[m] = prob.AddVariable(0, 0, inf)
		y[m] = prob.AddVariable(v*v, 0, inf)
	}
	t1 := prob.AddVariable(0, 0, inf)

	sum := func(vars []int, coef func(m int) float64) []lp.Term {
		ts := make([]lp.Term, len(vars))
		for m, v := range vars {
			ts[m] = lp.Term{Var: v, Coef: coef(m)}
		}
		return ts
	}
	one := func(int) float64 { return 1 }
	invF := func(m int) float64 { return 1 / ms.Mode(m).F }

	prob.MustAddConstraint(sum(x, one), lp.EQ, r1)
	prob.MustAddConstraint(sum(xc, one), lp.EQ, nc)
	for m := 0; m < n; m++ {
		prob.MustAddConstraint([]lp.Term{{Var: xc[m], Coef: 1}, {Var: x[m], Coef: -1}}, lp.LE, 0)
	}
	prob.MustAddConstraint(sum(y, one), lp.EQ, nd)
	prob.MustAddConstraint(append(sum(x, func(m int) float64 { return -1 / ms.Mode(m).F }),
		lp.Term{Var: t1, Coef: 1}), lp.GE, 0)
	prob.MustAddConstraint(append(sum(xc, func(m int) float64 { return -1 / ms.Mode(m).F }),
		lp.Term{Var: t1, Coef: 1}), lp.GE, tinv)
	prob.MustAddConstraint(append(sum(y, invF), lp.Term{Var: t1, Coef: 1}), lp.LE, dl)

	sol, err := prob.Solve(nil)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("analytic: discrete LP %v (deadline %v µs)", sol.Status, p.DeadlineUS)
	}

	ds := &DiscreteSolution{
		EnergyVC: sol.Objective * mc,
		X:        make([]float64, n),
		XC:       make([]float64, n),
		Y:        make([]float64, n),
		T1US:     sol.X[t1] * 1e6,
	}
	for m := 0; m < n; m++ {
		ds.X[m] = sol.X[x[m]] * mc
		ds.XC[m] = sol.X[xc[m]] * mc
		ds.Y[m] = sol.X[y[m]] * mc
		if ds.X[m] > 1 || ds.Y[m] > 1 {
			ds.ModesUsed++
		}
	}
	return ds, nil
}

// BaselineDiscrete returns the slowest single mode meeting the deadline and
// its energy (the paper's "best single-frequency setting that meets the
// deadline"). ok is false when even the fastest mode misses it.
func BaselineDiscrete(p Params, ms *volt.ModeSet) (mode int, energyVC float64, ok bool) {
	idx := ms.SlowestMeeting(p.DeadlineUS, func(i int) float64 {
		return p.ExecTimeUS(ms.Mode(i).F)
	})
	if idx < 0 {
		return 0, 0, false
	}
	v := ms.Mode(idx).V
	return idx, (p.R1() + p.NDependent) * v * v, true
}

// SavingsDiscrete returns the paper's energy-saving ratio for the discrete
// case: 1 − E_opt/E_baseline. This is the quantity plotted in Figures 9–11
// and tabulated in Table 1.
func SavingsDiscrete(p Params, ms *volt.ModeSet) (float64, error) {
	_, base, ok := BaselineDiscrete(p, ms)
	if !ok {
		return 0, &ErrDeadlineInfeasible{NeedUS: p.ExecTimeUS(ms.Max().F), HaveUS: p.DeadlineUS}
	}
	sol, err := OptimizeDiscrete(p, ms)
	if err != nil {
		return 0, err
	}
	if base <= 0 {
		return 0, nil
	}
	s := 1 - sol.EnergyVC/base
	if s < 0 {
		s = 0
	}
	return s, nil
}

// EminOfY evaluates the paper's hand construction for the memory-dominated
// discrete case (Section 3.4, Figure 8): y is the wall time allotted to the
// NCache cache-hit cycles; the cache stream runs at the two discrete
// neighbours of NCache/y, the dependent computation at the two neighbours of
// NDependent/(deadline − tinvariant − y), and the overlapped computation
// beyond NCache fills the miss window at the same neighbour pair. It
// returns +Inf where the construction is infeasible.
func EminOfY(p Params, ms *volt.ModeSet, y float64) float64 {
	if p.Validate() != nil || y <= 0 {
		return math.Inf(1)
	}
	rem := p.DeadlineUS - p.TInvariant - y
	if rem <= 0 || p.NCache <= 0 {
		return math.Inf(1)
	}

	// Cache stream: split NCache cycles across the neighbours of NCache/y.
	xa, xb, va, vb, ok := neighbourSplit(ms, p.NCache, y)
	if !ok {
		return math.Inf(1)
	}

	// Dependent computation across the neighbours of NDependent/rem.
	var e2 float64
	if p.NDependent > 0 {
		xc, xd, vc, vd, ok2 := neighbourSplit(ms, p.NDependent, rem)
		if !ok2 {
			return math.Inf(1)
		}
		e2 = xc*vc*vc + xd*vd*vd
	}

	// Overlap computation beyond the cache shadow must fit in tinvariant at
	// the same neighbour frequencies, lower first.
	extra := p.NOverlap - p.NCache
	var e3 float64
	if extra > 0 {
		za, zb, okz := fitWithin(ms, extra, p.TInvariant, p.NCache/y)
		if !okz {
			return math.Inf(1)
		}
		e3 = za*va*va + zb*vb*vb
	}

	return xa*va*va + xb*vb*vb + e2 + e3
}

// neighbourSplit splits `cycles` across the two discrete neighbours of the
// ideal frequency cycles/span so the pair takes exactly `span` µs:
// xa/fa + xb/fb = span, xa + xb = cycles.
func neighbourSplit(ms *volt.ModeSet, cycles, span float64) (xa, xb, va, vb float64, ok bool) {
	fstar := cycles / span
	lo, hi := ms.Neighbors(fstar)
	fa, fb := ms.Mode(lo).F, ms.Mode(hi).F
	va, vb = ms.Mode(lo).V, ms.Mode(hi).V
	if fstar > ms.Max().F*(1+1e-9) {
		return 0, 0, 0, 0, false
	}
	if lo == hi {
		// fstar at or below the slowest mode, or exactly on a mode: run all
		// cycles there (if below the slowest, the slack is idle time).
		if fa < fstar*(1-1e-9) {
			return 0, 0, 0, 0, false
		}
		return cycles, 0, va, vb, true
	}
	// Solve xa/fa + xb/fb = span with xa + xb = cycles.
	xa = fa * (fb*span - cycles) / (fb - fa)
	xb = cycles - xa
	if xa < -1e-9 || xb < -1e-9 {
		return 0, 0, 0, 0, false
	}
	return math.Max(xa, 0), math.Max(xb, 0), va, vb, true
}

// fitWithin packs `cycles` into `window` µs using the two neighbours of
// fstar, preferring the lower frequency (paper: "run as many execution
// cycles as possible … at the lower frequency fa and the remaining at fb").
func fitWithin(ms *volt.ModeSet, cycles, window, fstar float64) (za, zb float64, ok bool) {
	lo, hi := ms.Neighbors(fstar)
	fa, fb := ms.Mode(lo).F, ms.Mode(hi).F
	if cycles <= window*fa {
		return cycles, 0, true
	}
	if cycles > window*fb*(1+1e-9) {
		return 0, 0, false
	}
	if lo == hi {
		return cycles, 0, true
	}
	// za/fa + zb/fb = window, za + zb = cycles.
	za = fa * (fb*window - cycles) / (fb - fa)
	zb = cycles - za
	if za < -1e-9 || zb < -1e-9 {
		return 0, 0, false
	}
	return math.Max(za, 0), math.Max(zb, 0), true
}
