package analytic

import (
	"math"
	"testing"
)

// interiorMemDominated is constructed so the memory-dominated optimum is
// strictly interior (not pinned at f_invariant or at the voltage-range
// limits): solving the stationarity condition by hand with
// NOverlap/NCache = 2 gives v1 ≈ 1.00 V, v2 ≈ 1.13 V; the deadline is set
// so that exact point satisfies the time constraint with equality.
func interiorMemDominated() Params {
	return Params{
		NOverlap:   4e6,
		NDependent: 5.8e6,
		NCache:     2e6,
		TInvariant: 10000,
		DeadlineUS: 26529,
	}
}

func TestStationarityHoldsAtInteriorOptimum(t *testing.T) {
	t.Parallel()
	p := interiorMemDominated()
	vr := DefaultVRange()
	sol, err := OptimizeContinuous(p, vr)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Case != MemoryDominated {
		t.Fatalf("case = %v, want memory-dominated", sol.Case)
	}
	// The hand-derived stationary point (1.00, 1.13) and the numeric
	// optimum must agree: the energy valley is flat, so compare energies
	// rather than coordinates, and require the first-order condition's
	// zero-crossing to sit next to the numeric v1.
	if math.Abs(sol.V1-1.00) > 0.05 || math.Abs(sol.V2-1.13) > 0.05 {
		t.Errorf("optimum (%.3f, %.3f), hand-derived (1.00, 1.13)", sol.V1, sol.V2)
	}
	handE := p.R1()*1.00*1.00 + p.NDependent*1.13*1.13
	if math.Abs(sol.EnergyVC-handE) > 0.005*handE {
		t.Errorf("optimizer energy %v vs hand-derived %v", sol.EnergyVC, handE)
	}
	// Locate the stationarity zero-crossing along the constraint (v2 as a
	// function of v1 from the deadline) and check it is near the optimum
	// and has (near-)zero residual.
	v2For := func(v1 float64) (float64, bool) {
		f1 := vr.Scaling.Freq(v1)
		rem := p.DeadlineUS - (p.TInvariant + p.NCache/f1)
		if rem <= 0 {
			return 0, false
		}
		f2 := p.NDependent / rem
		if f2 > vr.FHi() || f2 < vr.FLo() {
			return 0, false
		}
		return vr.Scaling.Voltage(f2), true
	}
	lo, hi := sol.V1-0.1, sol.V1+0.1
	rAt := func(v1 float64) float64 {
		v2, ok := v2For(v1)
		if !ok {
			return math.NaN()
		}
		return StationarityResidual(p, vr, v1, v2)
	}
	rl, rh := rAt(lo), rAt(hi)
	if math.IsNaN(rl) || math.IsNaN(rh) || rl*rh > 0 {
		t.Fatalf("no residual sign change near optimum: r(%.3f)=%v r(%.3f)=%v", lo, rl, hi, rh)
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if rAt(mid)*rl > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	vstar := (lo + hi) / 2
	if math.Abs(rAt(vstar)) > 1e-6 {
		t.Errorf("residual %v at its own zero-crossing", rAt(vstar))
	}
	if math.Abs(vstar-sol.V1) > 0.05 {
		t.Errorf("stationary point v1*=%.4f far from numeric optimum %.4f", vstar, sol.V1)
	}
	// The energies at the stationary point and the numeric optimum agree.
	v2s, _ := v2For(vstar)
	eStar := p.R1()*vstar*vstar + p.NDependent*v2s*v2s
	if math.Abs(eStar-sol.EnergyVC) > 0.002*sol.EnergyVC {
		t.Errorf("stationary-point energy %v vs optimizer %v", eStar, sol.EnergyVC)
	}
}

func TestStationarityForcesSingleVoltage(t *testing.T) {
	t.Parallel()
	// When the energy and time cycle counts at v1 coincide (computation-
	// dominated), the condition reduces to v1 == v2: the residual vanishes
	// exactly on the diagonal and nowhere else nearby.
	p := computeDominated()
	vr := DefaultVRange()
	for _, v := range []float64{0.8, 1.0, 1.2, 1.5} {
		if r := StationarityResidual(p, vr, v, v); math.Abs(r) > 1e-12 {
			t.Errorf("diagonal residual %v at v=%v", r, v)
		}
		if r := StationarityResidual(p, vr, v, v*1.1); math.Abs(r) < 1e-3 {
			t.Errorf("off-diagonal residual %v too small at v=%v", r, v)
		}
	}
	// The numeric optimizer's compute-dominated optimum is single-voltage,
	// so its residual must vanish.
	sol, err := OptimizeContinuous(p, vr)
	if err != nil {
		t.Fatal(err)
	}
	if r := StationarityResidual(p, vr, sol.V1, sol.V2); math.Abs(r) > 5e-3 {
		t.Errorf("residual %v at compute-dominated optimum", r)
	}
}

func TestTimeSlopeSign(t *testing.T) {
	t.Parallel()
	// Below v = vt·a/(a−1)... concretely with a=1.5, vt=0.45 the per-cycle
	// time derivative is negative for v < 1.8 V (faster clock wins) and
	// positive above.
	vr := DefaultVRange()
	if s := timeSlope(vr, 1.0); s >= 0 {
		t.Errorf("timeSlope(1.0) = %v, want negative", s)
	}
	if s := timeSlope(vr, 2.0); s <= 0 {
		t.Errorf("timeSlope(2.0) = %v, want positive", s)
	}
}

func TestStationarityDegenerateInputs(t *testing.T) {
	t.Parallel()
	vr := DefaultVRange()
	p := Params{NOverlap: 1e6, NDependent: 0, NCache: 1e5, TInvariant: 10, DeadlineUS: 1e4}
	if r := StationarityResidual(p, vr, 1.0, 1.2); r != 0 {
		t.Errorf("residual %v with zero NDependent, want 0", r)
	}
}
