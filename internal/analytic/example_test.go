package analytic_test

import (
	"fmt"

	"ctdvs/internal/analytic"
	"ctdvs/internal/volt"
)

func ExampleSavingsDiscrete() {
	// A compute-heavy program with a deadline 10% above its fastest run:
	// the 3-level set's baseline is stuck at 800 MHz (600 MHz misses), so
	// splitting cycles across levels buys a lot; a 13-level set has a mode
	// just slow enough to nearly match, leaving intra-program DVS little to
	// add — the paper's headline result.
	p := analytic.Params{
		NOverlap:   6e6,
		NDependent: 6e6,
		NCache:     1e5,
		TInvariant: 100,
	}
	p.DeadlineUS = p.ExecTimeUS(800) * 1.10
	for _, levels := range []int{3, 13} {
		ms, _ := volt.Levels(levels)
		s, err := analytic.SavingsDiscrete(p, ms)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%d levels: %.2f\n", levels, s)
	}
	// Output:
	// 3 levels: 0.11
	// 13 levels: 0.07
}
