package analytic

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the exact continuous-voltage optimum for arbitrary
// multi-region instances — the third rung of the package's rigor ladder,
// between the §3 closed-form two-phase bound and the discrete MILP.
//
// The model follows Li, Yao and Yuan ("An O(n²) Algorithm for Computing
// Optimal Continuous Voltage Schedules", and Yao–Demers–Shenker before
// them): n jobs, each with a release time, a deadline and a cycle demand,
// run on one continuously-scalable processor under a convex power law.
// The optimum is characterized by critical intervals: repeatedly find the
// interval [a, b] of maximum intensity
//
//	g(a, b) = Σ{cycles of jobs with a ≤ release, deadline ≤ b} / (b − a),
//
// run exactly those jobs at frequency g(a, b), collapse [a, b] to a point,
// and recurse on the rest. Each extraction is a dense O(m²) scan over the
// remaining release/deadline points and removes at least one job, giving
// the Li–Yao–Yuan quadratic bound for the bounded-critical-interval
// instances this repository generates (program regions and task windows
// produce a handful of distinct levels); the fully adversarial case adds
// one more factor that their incremental bookkeeping removes.
//
// Frequencies are clamped to the voltage range: intensities above FHi make
// the instance infeasible (ErrDeadlineInfeasible), intensities below FLo
// run at the range floor and idle — exactly how the §3 optimizer treats
// extra slack — so the reported energy remains a valid lower bound on any
// schedule restricted to voltages in [vr.Lo, vr.Hi].

// Job is one region (or task) of a continuous-schedule instance: Cycles of
// work that may only run inside the window [ReleaseUS, DeadlineUS].
type Job struct {
	ReleaseUS  float64
	DeadlineUS float64
	Cycles     float64
}

// CriticalInterval is one extraction of the Li–Yao–Yuan loop, reported in
// the original (uncollapsed) timeline: the jobs of the critical set run at
// FreqMHz (before clamping) between StartUS and EndUS.
type CriticalInterval struct {
	StartUS, EndUS float64
	// FreqMHz is the interval's intensity g = cycles/width; the executed
	// frequency is max(FreqMHz, vr.FLo()).
	FreqMHz float64
	// Jobs are indices into the input slice, ascending.
	Jobs []int
}

// ExactSolution is the output of OptimizeContinuousExact.
type ExactSolution struct {
	// EnergyVC is the optimal energy in volts²·cycles.
	EnergyVC float64
	// FreqMHz[i] is job i's execution frequency after clamping to the
	// voltage range; VoltV[i] is the corresponding voltage.
	FreqMHz []float64
	VoltV   []float64
	// Intervals lists the critical intervals in extraction order, i.e. by
	// non-increasing intensity.
	Intervals []CriticalInterval
}

// validateJobs rejects malformed instances.
func validateJobs(jobs []Job) error {
	if len(jobs) == 0 {
		return fmt.Errorf("analytic: no jobs")
	}
	for i, j := range jobs {
		if j.Cycles < 0 || math.IsNaN(j.Cycles) {
			return fmt.Errorf("analytic: job %d has invalid cycle demand %v", i, j.Cycles)
		}
		if j.ReleaseUS < 0 || j.DeadlineUS <= j.ReleaseUS {
			return fmt.Errorf("analytic: job %d has empty window [%v, %v]", i, j.ReleaseUS, j.DeadlineUS)
		}
	}
	return nil
}

// OptimizeContinuousExact computes the provably optimal continuous voltage
// schedule for a multi-region instance via Li–Yao–Yuan critical-interval
// extraction. It returns ErrDeadlineInfeasible when some interval's
// intensity exceeds the fastest frequency of the range.
func OptimizeContinuousExact(jobs []Job, vr VRange) (*ExactSolution, error) {
	if err := validateJobs(jobs); err != nil {
		return nil, err
	}
	fLo, fHi := vr.FLo(), vr.FHi()

	type live struct {
		r, d   float64 // collapsed window
		cycles float64
		idx    int // original index
	}
	rem := make([]live, 0, len(jobs))
	for i, j := range jobs {
		rem = append(rem, live{r: j.ReleaseUS, d: j.DeadlineUS, cycles: j.Cycles, idx: i})
	}

	sol := &ExactSolution{
		FreqMHz: make([]float64, len(jobs)),
		VoltV:   make([]float64, len(jobs)),
	}
	// shift[i] tracks how much collapsed time precedes job i's critical
	// interval, so intervals can be reported in the original timeline.
	collapsed := 0.0

	for len(rem) > 0 {
		// Candidate endpoints: every remaining release (interval starts)
		// and every remaining deadline (interval ends).
		starts := make([]float64, 0, len(rem))
		ends := make([]float64, 0, len(rem))
		for _, j := range rem {
			starts = append(starts, j.r)
			ends = append(ends, j.d)
		}
		sort.Float64s(starts)
		sort.Float64s(ends)

		// Dense scan for the maximum-intensity interval. Ties break toward
		// the earliest, narrowest interval so extraction order — and
		// through it the reported schedule — is deterministic.
		bestG, bestA, bestB := -1.0, 0.0, 0.0
		for _, a := range starts {
			for _, b := range ends {
				if b <= a {
					continue
				}
				var work float64
				for _, j := range rem {
					if j.r >= a && j.d <= b {
						work += j.cycles
					}
				}
				g := work / (b - a)
				if g > bestG*(1+1e-12) {
					bestG, bestA, bestB = g, a, b
				}
			}
		}
		if bestG < 0 {
			// Cannot happen: every job's own window is a candidate.
			return nil, fmt.Errorf("analytic: no critical interval found")
		}

		if bestG > fHi*(1+1e-9) {
			// The critical set needs more speed than the range offers. Report
			// the shortfall in time units of the critical window.
			width := bestB - bestA
			return nil, &ErrDeadlineInfeasible{NeedUS: bestG / fHi * width, HaveUS: width}
		}

		f := math.Max(bestG, fLo)
		v := vr.Scaling.Voltage(f)

		ci := CriticalInterval{
			StartUS: bestA + collapsed,
			EndUS:   bestB + collapsed,
			FreqMHz: bestG,
		}
		width := bestB - bestA
		next := rem[:0]
		for _, j := range rem {
			if j.r >= bestA && j.d <= bestB {
				sol.FreqMHz[j.idx] = f
				sol.VoltV[j.idx] = v
				sol.EnergyVC += j.cycles * v * v
				ci.Jobs = append(ci.Jobs, j.idx)
				continue
			}
			// Collapse [a, b] to a point: φ(t) = t for t ≤ a, a for t in
			// [a, b], t − (b − a) for t ≥ b.
			if j.r > bestA {
				if j.r < bestB {
					j.r = bestA
				} else {
					j.r -= width
				}
			}
			if j.d > bestA {
				if j.d < bestB {
					j.d = bestA
				} else {
					j.d -= width
				}
			}
			next = append(next, j)
		}
		sort.Ints(ci.Jobs)
		sol.Intervals = append(sol.Intervals, ci)
		rem = next
		// Intervals extracted later sit in the collapsed timeline; restoring
		// the exact original offsets of later intervals would require
		// replaying the collapse history, so we track only the cumulative
		// collapsed width for a stable (if approximate) display position.
		collapsed += width
	}
	return sol, nil
}

// TwoPhaseJobs encodes a §3 parameter set as a Li–Yao–Yuan instance: the
// overlapped region's active cycles R1 = max(NOverlap, NCache) in the full
// window, and the dependent computation released once the frequency-
// invariant memory time has elapsed. Dropping the cache-stream coupling
// makes the encoding a relaxation of the §3 timing model, so
// OptimizeContinuousExact on these jobs never exceeds the §3 closed-form
// optimum — and matches it exactly when TInvariant is zero (a pure
// two-phase instance).
func TwoPhaseJobs(p Params) []Job {
	jobs := []Job{{ReleaseUS: 0, DeadlineUS: p.DeadlineUS, Cycles: p.R1()}}
	if p.NDependent > 0 {
		rel := math.Min(p.TInvariant, p.DeadlineUS*(1-1e-9))
		jobs = append(jobs, Job{ReleaseUS: rel, DeadlineUS: p.DeadlineUS, Cycles: p.NDependent})
	}
	return jobs
}

// AggregateClosedForm lumps an arbitrary instance into the paper's
// two-phase closed form: all cycles dependent, one global deadline, no
// memory invariance. Every schedule of the original instance finishes the
// aggregate work by the latest deadline, so the aggregate optimum is a
// lower bound on the exact continuous optimum — the loosest rung of the
// rigor ladder.
func AggregateClosedForm(jobs []Job, vr VRange) (*ContinuousSolution, error) {
	if err := validateJobs(jobs); err != nil {
		return nil, err
	}
	var cycles, dmax float64
	for _, j := range jobs {
		cycles += j.Cycles
		dmax = math.Max(dmax, j.DeadlineUS)
	}
	p := Params{NDependent: cycles, DeadlineUS: dmax}
	return OptimizeContinuous(p, vr)
}
