package schedfile

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzLoad ensures the schedule-file loader never panics and that anything
// it accepts round-trips losslessly.
func FuzzLoad(f *testing.F) {
	var seed bytes.Buffer
	if err := Save(&seed, "seed", sample()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{}`)
	f.Add(`{"version":1}`)
	f.Add(`{"version":1,"program":"p","modes":[{"volts":0.7,"mhz":200}],"initial":0,` +
		`"regulator":{"capacitance_f":1e-5,"efficiency":0.9,"imax_a":1},"assignments":[]}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"version":1,"modes":[{"volts":-1,"mhz":-1}]}`)

	f.Fuzz(func(t *testing.T, data string) {
		name, sched, err := Load(strings.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted inputs must serialize and load back identically.
		var buf bytes.Buffer
		if err := Save(&buf, name, sched); err != nil {
			t.Fatalf("accepted schedule failed to save: %v", err)
		}
		name2, sched2, err := Load(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if name2 != name || sched2.Initial != sched.Initial ||
			len(sched2.Assignment) != len(sched.Assignment) {
			t.Fatal("round trip not lossless")
		}
	})
}

// FuzzDecodeRecording throws arbitrary bytes at the recording decoder — the
// uvarint-trace + base64-bitstream codec the record stage trusts — and holds
// it to returning errors, never panicking. Anything it accepts against the
// fixture program must re-encode deterministically and replay safely.
func FuzzDecodeRecording(f *testing.F) {
	p, in, mc, rec := recordingFixture(f)
	valid, err := EncodeRecording(rec)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(valid))
	// Targeted corruptions of every packed stream and identity field.
	f.Add(strings.Replace(string(valid), `"version":1`, `"version":99`, 1))
	f.Add(strings.Replace(string(valid), `"program":"codec"`, `"program":"other"`, 1))
	f.Add(strings.Replace(string(valid), `"trace":"`, `"trace":"!!!!`, 1))
	f.Add(strings.Replace(string(valid), `"mem_bits":"`, `"mem_bits":"AAA`, 1))
	f.Add(strings.Replace(string(valid), `"trace_len":`, `"trace_len":-`, 1))
	f.Add(`{}`)
	f.Add(`{"version":1}`)
	f.Add(`not json`)
	f.Add(`{"version":1,"program":"codec","input":"in","trace_len":1000000000,"trace":""}`)

	f.Fuzz(func(t *testing.T, data string) {
		got, err := DecodeRecording([]byte(data), p, in, mc)
		if err != nil {
			return // rejection is the expected outcome for garbage
		}
		// Accepted recordings are bound and re-encode deterministically.
		enc, err := EncodeRecording(got)
		if err != nil {
			t.Fatalf("accepted recording failed to encode: %v", err)
		}
		got2, err := DecodeRecording(enc, p, in, mc)
		if err != nil {
			t.Fatalf("re-decode of accepted recording failed: %v", err)
		}
		if !reflect.DeepEqual(got, got2) {
			t.Fatal("encode/decode round trip changed the recording")
		}
	})
}
