package schedfile

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad ensures the schedule-file loader never panics and that anything
// it accepts round-trips losslessly.
func FuzzLoad(f *testing.F) {
	var seed bytes.Buffer
	if err := Save(&seed, "seed", sample()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{}`)
	f.Add(`{"version":1}`)
	f.Add(`{"version":1,"program":"p","modes":[{"volts":0.7,"mhz":200}],"initial":0,` +
		`"regulator":{"capacitance_f":1e-5,"efficiency":0.9,"imax_a":1},"assignments":[]}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"version":1,"modes":[{"volts":-1,"mhz":-1}]}`)

	f.Fuzz(func(t *testing.T, data string) {
		name, sched, err := Load(strings.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted inputs must serialize and load back identically.
		var buf bytes.Buffer
		if err := Save(&buf, name, sched); err != nil {
			t.Fatalf("accepted schedule failed to save: %v", err)
		}
		name2, sched2, err := Load(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if name2 != name || sched2.Initial != sched.Initial ||
			len(sched2.Assignment) != len(sched.Assignment) {
			t.Fatal("round trip not lossless")
		}
	})
}
