package schedfile

import (
	"bytes"
	"testing"
)

func TestEncodeDeterministic(t *testing.T) {
	// Assignments come from a map; New must sort them so equal schedules
	// encode to equal bytes every time.
	var first []byte
	for i := 0; i < 10; i++ {
		f, err := New("gsm/encode", sample())
		if err != nil {
			t.Fatal(err)
		}
		data, err := f.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = data
		} else if !bytes.Equal(first, data) {
			t.Fatal("equal schedules encoded to different bytes")
		}
	}
	// Encode must agree byte-for-byte with Save.
	var buf bytes.Buffer
	if err := Save(&buf, "gsm/encode", sample()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf.Bytes()) {
		t.Fatal("Encode and Save disagree")
	}
}

func TestFingerprint(t *testing.T) {
	fp1, err := Fingerprint("gsm/encode", sample())
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := Fingerprint("gsm/encode", sample())
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 || len(fp1) != 64 {
		t.Fatalf("fingerprint unstable or malformed: %q vs %q", fp1, fp2)
	}
	// Any difference — even just the program name — changes the digest.
	fp3, err := Fingerprint("mpeg/decode", sample())
	if err != nil {
		t.Fatal(err)
	}
	if fp3 == fp1 {
		t.Fatal("different program, same fingerprint")
	}
	s := sample()
	s.Initial = 0
	fp4, err := Fingerprint("gsm/encode", s)
	if err != nil {
		t.Fatal(err)
	}
	if fp4 == fp1 {
		t.Fatal("different schedule, same fingerprint")
	}
}
