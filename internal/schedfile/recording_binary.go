package schedfile

import (
	"fmt"

	"ctdvs/internal/ir"
	"ctdvs/internal/pipeline"
	"ctdvs/internal/sim"
)

// Binary recording codec. The layout mirrors recordingJSON field for field —
// the property tests assert DecodeRecordingBinary(EncodeRecordingBinary(rec))
// equals DecodeRecording(EncodeRecording(rec)) — but skips base64 and JSON
// tokenization: the block trace and the outcome bitstreams are 8-byte-aligned
// runs of raw little-endian words, which lets the borrow-mode decoder
// (DecodeRecordingBinaryMapped) alias them straight out of an mmap'd artifact
// with no copy at all. Every claimed length is bounded against the remaining
// input before allocation (see pipeline.BinReader), so a truncated or hostile
// artifact is rejected without a giant make().

func putMachine(w *pipeline.BinWriter, c sim.Config) {
	for _, cache := range [...]sim.CacheConfig{c.L1, c.L2} {
		w.Varint(int64(cache.SizeBytes))
		w.Varint(int64(cache.Assoc))
		w.Varint(int64(cache.LineBytes))
		w.Varint(int64(cache.LatencyCycles))
	}
	w.Float(c.MemLatencyUS)
	w.Varint(int64(c.MemChannels))
	w.Float(c.StaticPowerMW)
	w.Varint(int64(c.PredictorEntries))
	w.Varint(int64(c.MispredictPenaltyCycles))
	w.Varint(int64(c.RecordBudgetEvents))
	w.Float(c.CeffComputeNF)
	w.Float(c.CeffL1NF)
	w.Float(c.CeffL2NF)
}

func readMachine(r *pipeline.BinReader) sim.Config {
	var c sim.Config
	for _, cache := range [...]*sim.CacheConfig{&c.L1, &c.L2} {
		cache.SizeBytes = r.Int()
		cache.Assoc = r.Int()
		cache.LineBytes = r.Int()
		cache.LatencyCycles = r.Int()
	}
	c.MemLatencyUS = r.Float()
	c.MemChannels = r.Int()
	c.StaticPowerMW = r.Float()
	c.PredictorEntries = r.Int()
	c.MispredictPenaltyCycles = r.Int()
	c.RecordBudgetEvents = r.Int()
	c.CeffComputeNF = r.Float()
	c.CeffL1NF = r.Float()
	c.CeffL2NF = r.Float()
	return c
}

// EncodeRecordingBinary renders the recording in the binary artifact format.
func EncodeRecordingBinary(rec *sim.Recording) ([]byte, error) {
	if rec == nil {
		return nil, fmt.Errorf("schedfile: encode nil recording")
	}
	hint := 256 + 4*len(rec.Trace) + 8*(len(rec.MemBits)+len(rec.BranchBits)) +
		4*(len(rec.EdgeCountsByID)+len(rec.PathCountsByID))
	w := pipeline.NewBinWriter(pipeline.BinTagRecording, hint)
	w.Uvarint(RecordingVersion)
	w.String(rec.Program)
	w.String(rec.Input)
	putMachine(w, rec.Config)
	w.Varint(int64(rec.NumBlocks))

	w.Uint32s(rec.Trace)
	w.Varint(rec.MemOps)
	w.Uint64s(rec.MemBits)
	w.Varint(rec.BranchOps)
	w.Uint64s(rec.BranchBits)

	w.Int64s(rec.EdgeCountsByID)
	w.Int64s(rec.PathCountsByID)
	w.Varint(rec.L1Hits)
	w.Varint(rec.L2Hits)
	w.Varint(rec.MemMisses)
	w.Varint(rec.Branches)
	w.Varint(rec.Mispredicts)
	w.Varint(rec.Params.NCache)
	w.Varint(rec.Params.NOverlap)
	w.Varint(rec.Params.NDependent)
	w.Float(rec.Params.TInvariantUS)
	return w.Bytes(), nil
}

// DecodeRecordingBinary reconstructs a bound, replay-ready recording from a
// binary artifact, applying the same program/input/machine agreement checks
// as DecodeRecording. It never retains the input slice.
func DecodeRecordingBinary(data []byte, p *ir.Program, in ir.Input, mc sim.Config) (*sim.Recording, error) {
	r, err := pipeline.NewBinReader(data, pipeline.BinTagRecording)
	if err != nil {
		return nil, fmt.Errorf("schedfile: decode recording: %w", err)
	}
	return decodeRecordingBinary(r, p, in, mc)
}

// DecodeRecordingBinaryMapped is DecodeRecordingBinary in borrow mode: the
// returned recording's large arrays — the block trace and the packed
// cache/branch outcome words — alias data wherever alignment allows instead
// of being copied, so an mmap'd artifact replays straight out of the page
// cache. The decoded value is byte-identical to DecodeRecordingBinary's
// (misaligned or big-endian hosts silently fall back to copying). The caller
// owns the lifetime: data must stay valid for as long as the recording is in
// use (see pipeline.Mapping).
func DecodeRecordingBinaryMapped(data []byte, p *ir.Program, in ir.Input, mc sim.Config) (*sim.Recording, error) {
	r, err := pipeline.NewBinReaderBorrow(data, pipeline.BinTagRecording)
	if err != nil {
		return nil, fmt.Errorf("schedfile: decode recording: %w", err)
	}
	return decodeRecordingBinary(r, p, in, mc)
}

func decodeRecordingBinary(r *pipeline.BinReader, p *ir.Program, in ir.Input, mc sim.Config) (*sim.Recording, error) {
	if v := r.Uvarint(); r.Err() == nil && v != RecordingVersion {
		return nil, fmt.Errorf("schedfile: recording artifact version %d, want %d", v, RecordingVersion)
	}
	program := r.String()
	input := r.String()
	machine := readMachine(r)
	numBlocks := r.Int()

	trace := r.Uint32s()
	memOps := r.Varint()
	memBits := r.Uint64s()
	branchOps := r.Varint()
	branchBits := r.Uint64s()

	edgeCounts := r.Int64s()
	pathCounts := r.Int64s()
	l1Hits := r.Varint()
	l2Hits := r.Varint()
	memMisses := r.Varint()
	branches := r.Varint()
	mispredicts := r.Varint()
	params := sim.Params{
		NCache:       r.Varint(),
		NOverlap:     r.Varint(),
		NDependent:   r.Varint(),
		TInvariantUS: r.Float(),
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("schedfile: decode recording: %w", err)
	}

	if program != p.Name || input != in.Name {
		return nil, fmt.Errorf("schedfile: recording artifact is for %s/%s, want %s/%s", program, input, p.Name, in.Name)
	}
	// As in DecodeRecording, ReferenceSim is not part of a recording's
	// identity: the artifact never stores it and the check ignores it.
	want := mc
	want.ReferenceSim = false
	if machine != want {
		return nil, fmt.Errorf("schedfile: recording artifact machine %+v does not match configuration %+v", machine, want)
	}
	rec := &sim.Recording{
		Program:   program,
		Input:     input,
		Config:    mc,
		NumBlocks: numBlocks,

		Trace:      trace,
		MemOps:     memOps,
		MemBits:    memBits,
		BranchOps:  branchOps,
		BranchBits: branchBits,

		EdgeCountsByID: emptyNotNil(edgeCounts),
		PathCountsByID: emptyNotNil(pathCounts),
		L1Hits:         l1Hits,
		L2Hits:         l2Hits,
		MemMisses:      memMisses,
		Branches:       branches,
		Mispredicts:    mispredicts,
		Params:         params,
	}
	if err := rec.Bind(p); err != nil {
		return nil, fmt.Errorf("schedfile: recording artifact rejected: %w", err)
	}
	return rec, nil
}
