package schedfile

import (
	"encoding/json"
	"fmt"
	"io"

	"ctdvs/internal/ir"
	"ctdvs/internal/workloads"
)

// This file adds the task-graph spec format: the JSON interchange through
// which dvs-opt, dvs-sim and dvs-serve accept multi-core task-graph
// workloads. A spec names corpus benchmarks, wires them into a DAG, and fixes
// the core count and deadline; the heavy ir.TaskGraph (with real programs) is
// only built after the spec passes structural validation, so cyclic graphs,
// dangling edges and oversized task counts are rejected before any
// program-scale allocation happens.

// GraphVersion identifies the current task-graph spec format.
const GraphVersion = 1

// MaxGraphEdges caps the edge list a spec may carry; with ir.MaxTasks tasks a
// DAG has at most n(n−1)/2 edges, and this looser bound is checked before the
// adjacency structures are allocated.
const MaxGraphEdges = 4 * ir.MaxTasks

// GraphFile is the on-disk task-graph spec.
type GraphFile struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	Cores   int    `json:"cores"`
	// Exactly one of DeadlineUS (absolute, µs) and DeadlineFrac (fraction of
	// the [all-fastest, all-slowest] placed-makespan span) must be set.
	DeadlineUS   float64         `json:"deadline_us,omitempty"`
	DeadlineFrac float64         `json:"deadline_frac,omitempty"`
	Tasks        []GraphTaskJSON `json:"tasks"`
	Edges        [][2]int        `json:"edges"`
}

// GraphTaskJSON is one task reference: a corpus benchmark plus optional input
// index and release/per-task deadline.
type GraphTaskJSON struct {
	Bench      string  `json:"bench"`
	Input      int     `json:"input,omitempty"`
	ReleaseUS  float64 `json:"release_us,omitempty"`
	DeadlineUS float64 `json:"deadline_us,omitempty"`
}

// ValidateTopology checks a task-count/edge-list pair structurally: task
// count within (0, ir.MaxTasks], every edge in range, no self edges, no
// duplicate edges, and no cycles. It is shared by the spec loader and the
// serve request decoder, and sized so nothing larger than O(n + edges) is
// allocated for hostile input.
func ValidateTopology(n int, edges [][2]int) error {
	if n < 1 {
		return fmt.Errorf("schedfile: graph has no tasks")
	}
	if n > ir.MaxTasks {
		return fmt.Errorf("schedfile: graph has %d tasks, max %d", n, ir.MaxTasks)
	}
	if len(edges) > MaxGraphEdges {
		return fmt.Errorf("schedfile: graph has %d edges, max %d", len(edges), MaxGraphEdges)
	}
	seen := make(map[[2]int]bool, len(edges))
	indeg := make([]int, n)
	succs := make([][]int, n)
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return fmt.Errorf("schedfile: dangling edge %d→%d in a %d-task graph", e[0], e[1], n)
		}
		if e[0] == e[1] {
			return fmt.Errorf("schedfile: self edge on task %d", e[0])
		}
		if seen[e] {
			return fmt.Errorf("schedfile: duplicate edge %d→%d", e[0], e[1])
		}
		seen[e] = true
		succs[e[0]] = append(succs[e[0]], e[1])
		indeg[e[1]]++
	}
	// Kahn's algorithm: if not every task drains, the remainder is cyclic.
	queue := make([]int, 0, n)
	for t := 0; t < n; t++ {
		if indeg[t] == 0 {
			queue = append(queue, t)
		}
	}
	drained := 0
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		drained++
		for _, s := range succs[t] {
			if indeg[s]--; indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if drained != n {
		return fmt.Errorf("schedfile: graph contains a cycle")
	}
	return nil
}

// Validate checks the spec structurally (it does not resolve benchmark names;
// that happens when the spec is built against the suite).
func (f *GraphFile) Validate() error {
	if f.Version != GraphVersion {
		return fmt.Errorf("schedfile: unsupported task-graph spec version %d", f.Version)
	}
	if f.Name == "" {
		return fmt.Errorf("schedfile: task-graph spec has no name")
	}
	if f.Cores < 1 || f.Cores > ir.MaxTasks {
		return fmt.Errorf("schedfile: task-graph spec targets %d cores", f.Cores)
	}
	hasUS := f.DeadlineUS != 0
	hasFrac := f.DeadlineFrac != 0
	if hasUS == hasFrac {
		return fmt.Errorf("schedfile: task-graph spec must set exactly one of deadline_us and deadline_frac")
	}
	if hasUS && f.DeadlineUS < 0 {
		return fmt.Errorf("schedfile: negative deadline_us %v", f.DeadlineUS)
	}
	if hasFrac && (f.DeadlineFrac < 0 || f.DeadlineFrac > 1) {
		return fmt.Errorf("schedfile: deadline_frac %v outside [0, 1]", f.DeadlineFrac)
	}
	if err := ValidateTopology(len(f.Tasks), f.Edges); err != nil {
		return err
	}
	for i, task := range f.Tasks {
		if task.Bench == "" {
			return fmt.Errorf("schedfile: task %d names no benchmark", i)
		}
		if task.Input < 0 {
			return fmt.Errorf("schedfile: task %d selects negative input %d", i, task.Input)
		}
		if task.ReleaseUS < 0 || task.DeadlineUS < 0 {
			return fmt.Errorf("schedfile: task %d has a negative release or deadline", i)
		}
	}
	return nil
}

// Spec converts a validated file to the workloads representation.
func (f *GraphFile) Spec() (*workloads.GraphSpec, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	gs := &workloads.GraphSpec{
		Name:         f.Name,
		Cores:        f.Cores,
		Edges:        f.Edges,
		DeadlineFrac: f.DeadlineFrac,
	}
	for _, task := range f.Tasks {
		gs.Tasks = append(gs.Tasks, workloads.TaskRef{
			Bench:      task.Bench,
			Input:      task.Input,
			ReleaseUS:  task.ReleaseUS,
			DeadlineUS: task.DeadlineUS,
		})
	}
	return gs, nil
}

// NewGraphFile builds the canonical spec representation of a workloads graph.
// deadlineUS, when non-zero, overrides the spec's fractional deadline with an
// absolute one.
func NewGraphFile(gs *workloads.GraphSpec, deadlineUS float64) (*GraphFile, error) {
	if gs == nil {
		return nil, fmt.Errorf("schedfile: nil graph spec")
	}
	f := &GraphFile{
		Version: GraphVersion,
		Name:    gs.Name,
		Cores:   gs.Cores,
		Edges:   gs.Edges,
	}
	if deadlineUS != 0 {
		f.DeadlineUS = deadlineUS
	} else {
		f.DeadlineFrac = gs.DeadlineFrac
	}
	for _, ref := range gs.Tasks {
		f.Tasks = append(f.Tasks, GraphTaskJSON{
			Bench:      ref.Bench,
			Input:      ref.Input,
			ReleaseUS:  ref.ReleaseUS,
			DeadlineUS: ref.DeadlineUS,
		})
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// EncodeGraph renders the canonical indented JSON of the spec; equal specs
// encode to equal bytes (struct fields emit in declaration order and the edge
// list is stored as given).
func (f *GraphFile) EncodeGraph() ([]byte, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("schedfile: %w", err)
	}
	return append(data, '\n'), nil
}

// SaveGraphSpec writes the canonical spec for a workloads graph.
func SaveGraphSpec(w io.Writer, gs *workloads.GraphSpec, deadlineUS float64) error {
	f, err := NewGraphFile(gs, deadlineUS)
	if err != nil {
		return err
	}
	data, err := f.EncodeGraph()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// LoadGraphSpec reads and validates a task-graph spec. The returned file has
// passed structural validation (version, cores, deadline, topology); resolve
// it against the benchmark suite with Spec().Build().
func LoadGraphSpec(r io.Reader) (*GraphFile, error) {
	var f GraphFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("schedfile: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}
