package schedfile

import (
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"ctdvs/internal/ir"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

func recordingFixture(t testing.TB) (*ir.Program, ir.Input, sim.Config, *sim.Recording) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	b := ir.NewBuilder("codec")
	s := b.SequentialStream(32 << 10)
	r := b.RandomStream(64 << 10)
	head := b.Block("head")
	body := b.Block("body")
	tail := b.Block("tail")
	head.Compute(7).Load(s)
	b.LoopBranch(head, head, body, 40)
	body.Load(r).DependentCompute(5).Store(s)
	b.ProbBranch(body, head, tail, 0.4)
	tail.Compute(3)
	tail.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	in := ir.Input{Name: "in", Seed: rng.Int63()}
	mc := sim.DefaultConfig()
	rec, _, err := sim.MustNew(mc).Record(p, in, volt.XScale3().Max())
	if err != nil {
		t.Fatal(err)
	}
	return p, in, mc, rec
}

func TestRecordingRoundTrip(t *testing.T) {
	p, in, mc, rec := recordingFixture(t)
	data, err := EncodeRecording(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecording(data, p, in, mc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, got) {
		t.Errorf("round trip changed the recording:\nwant %+v\ngot  %+v", rec, got)
	}
	// The decoded recording is bound and replays identically to the original.
	want, err := rec.ReplayAll(volt.XScale3().Modes())
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := got.ReplayAll(volt.XScale3().Modes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, replayed) {
		t.Error("decoded recording replays differently")
	}
	// Determinism: encoding the decoded recording reproduces the bytes.
	data2, err := EncodeRecording(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("encode(decode(encode)) is not byte-identical")
	}
}

func TestDecodeRecordingRejectsMismatches(t *testing.T) {
	p, in, mc, rec := recordingFixture(t)
	data, err := EncodeRecording(rec)
	if err != nil {
		t.Fatal(err)
	}

	otherCfg := mc
	otherCfg.MemLatencyUS *= 2
	if _, err := DecodeRecording(data, p, in, otherCfg); err == nil || !strings.Contains(err.Error(), "machine") {
		t.Errorf("config mismatch: err = %v", err)
	}
	if _, err := DecodeRecording(data, p, ir.Input{Name: "other", Seed: in.Seed}, mc); err == nil {
		t.Error("input mismatch accepted")
	}

	b := ir.NewBuilder("codec") // same name, different structure
	blk := b.Block("only")
	blk.Compute(1)
	blk.Exit()
	p2, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRecording(data, p2, in, mc); err == nil {
		t.Error("structurally different program accepted")
	}

	// Corrupted streams must be rejected by Bind's validation, not crash.
	tampered := strings.Replace(string(data), `"trace_len":`+strconv.Itoa(len(rec.Trace)), `"trace_len":`+strconv.Itoa(len(rec.Trace)-1), 1)
	if tampered == string(data) {
		t.Fatal("tamper had no effect")
	}
	if _, err := DecodeRecording([]byte(tampered), p, in, mc); err == nil {
		t.Error("truncated trace accepted")
	}
}
