package schedfile

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ctdvs/internal/cfg"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

// TestRoundTripProperty round-trips randomly generated schedules: random
// mode tables (from the standard sets), random assignments over random edge
// sets, random regulators — Load(Save(s)) must reproduce s exactly.
func TestRoundTripProperty(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var ms *volt.ModeSet
		switch rng.Intn(4) {
		case 0:
			ms = volt.XScale3()
		case 1:
			ms, _ = volt.Levels(7)
		case 2:
			ms = volt.AMDK6Mobile()
		default:
			ms = volt.CrusoeTM5400()
		}
		reg := volt.Regulator{
			C:    1e-7 + rng.Float64()*1e-4,
			U:    rng.Float64() * 0.99,
			IMax: 0.1 + rng.Float64()*5,
		}
		s := &sim.Schedule{
			Modes:      ms,
			Initial:    rng.Intn(ms.Len()),
			Regulator:  reg,
			Assignment: map[cfg.Edge]int{},
		}
		nblocks := 1 + rng.Intn(20)
		s.Assignment[cfg.Edge{From: cfg.Entry, To: 0}] = rng.Intn(ms.Len())
		for i := 0; i < rng.Intn(40); i++ {
			e := cfg.Edge{From: rng.Intn(nblocks), To: rng.Intn(nblocks)}
			s.Assignment[e] = rng.Intn(ms.Len())
		}

		var buf bytes.Buffer
		if err := Save(&buf, "prog", s); err != nil {
			return false
		}
		name, got, err := Load(&buf)
		if err != nil || name != "prog" {
			return false
		}
		if got.Initial != s.Initial || got.Modes.Len() != ms.Len() {
			return false
		}
		for i := 0; i < ms.Len(); i++ {
			if got.Modes.Mode(i) != ms.Mode(i) {
				return false
			}
		}
		if len(got.Assignment) != len(s.Assignment) {
			return false
		}
		for e, m := range s.Assignment {
			if got.Assignment[e] != m {
				return false
			}
		}
		return got.Regulator == s.Regulator
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}
