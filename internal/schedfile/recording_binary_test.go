package schedfile

import (
	"reflect"
	"strings"
	"testing"

	"ctdvs/internal/ir"
	"ctdvs/internal/pipeline"
	"ctdvs/internal/volt"
)

// TestRecordingBinaryParity is the codec-parity property the store relies on:
// the binary and JSON codecs must decode to identical recordings, byte-level
// determinism included, so a sweep reading a mix of legacy JSON and fresh
// binary artifacts computes identical results.
func TestRecordingBinaryParity(t *testing.T) {
	p, in, mc, rec := recordingFixture(t)

	jdata, err := EncodeRecording(rec)
	if err != nil {
		t.Fatal(err)
	}
	bdata, err := EncodeRecordingBinary(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !pipeline.IsBinaryArtifact(bdata) {
		t.Fatal("binary encoding does not carry the artifact magic")
	}
	if len(bdata) >= len(jdata) {
		t.Errorf("binary recording (%d bytes) not smaller than JSON (%d bytes)", len(bdata), len(jdata))
	}

	fromJSON, err := DecodeRecording(jdata, p, in, mc)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := DecodeRecordingBinary(bdata, p, in, mc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromJSON, fromBin) {
		t.Errorf("binary and JSON decode disagree:\njson   %+v\nbinary %+v", fromJSON, fromBin)
	}
	if !reflect.DeepEqual(rec, fromBin) {
		t.Errorf("binary round trip changed the recording:\nwant %+v\ngot  %+v", rec, fromBin)
	}

	// Replays of the two decodes are bit-identical.
	want, err := fromJSON.ReplayAll(volt.XScale3().Modes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := fromBin.ReplayAll(volt.XScale3().Modes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("binary-decoded recording replays differently")
	}

	// Determinism: encode(decode(encode(x))) == encode(x).
	bdata2, err := EncodeRecordingBinary(fromBin)
	if err != nil {
		t.Fatal(err)
	}
	if string(bdata) != string(bdata2) {
		t.Error("binary encode(decode(encode)) is not byte-identical")
	}
}

// TestRecordingBinaryMappedParity is the zero-copy contract: the borrow-mode
// decoder must produce a recording identical to the copying decoder's — from
// the canonical aligned buffer and from deliberately misaligned copies, where
// borrowing is impossible and the decoder must silently fall back.
func TestRecordingBinaryMappedParity(t *testing.T) {
	p, in, mc, rec := recordingFixture(t)
	data, err := EncodeRecordingBinary(rec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DecodeRecordingBinary(data, p, in, mc)
	if err != nil {
		t.Fatal(err)
	}
	for skew := 0; skew < 8; skew++ {
		buf := make([]byte, len(data)+skew)
		copy(buf[skew:], data)
		got, err := DecodeRecordingBinaryMapped(buf[skew:], p, in, mc)
		if err != nil {
			t.Fatalf("skew %d: %v", skew, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("skew %d: mapped decode differs from copying decode", skew)
		}
		// Replays of the mapped recording are bit-identical too.
		wr, err := want.ReplayAll(volt.XScale3().Modes())
		if err != nil {
			t.Fatal(err)
		}
		gr, err := got.ReplayAll(volt.XScale3().Modes())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wr, gr) {
			t.Fatalf("skew %d: mapped recording replays differently", skew)
		}
	}

	// Truncations are rejected by the mapped decoder exactly like the
	// copying one — same accept/reject decision at every cut.
	for n := 0; n < len(data); n++ {
		_, cerr := DecodeRecordingBinary(data[:n], p, in, mc)
		_, merr := DecodeRecordingBinaryMapped(append([]byte(nil), data[:n]...), p, in, mc)
		if (cerr == nil) != (merr == nil) {
			t.Fatalf("truncation to %d: copying err=%v, mapped err=%v", n, cerr, merr)
		}
	}
}

// TestDecodeRecordingBinaryRejects holds the binary decoder to rejecting — not
// crashing on, not over-allocating for — malformed frames: wrong identity,
// wrong machine, and truncation at every byte boundary.
func TestDecodeRecordingBinaryRejects(t *testing.T) {
	p, in, mc, rec := recordingFixture(t)
	data, err := EncodeRecordingBinary(rec)
	if err != nil {
		t.Fatal(err)
	}

	otherCfg := mc
	otherCfg.MemLatencyUS *= 2
	if _, err := DecodeRecordingBinary(data, p, in, otherCfg); err == nil || !strings.Contains(err.Error(), "machine") {
		t.Errorf("config mismatch: err = %v", err)
	}
	if _, err := DecodeRecordingBinary(data, p, ir.Input{Name: "other", Seed: in.Seed}, mc); err == nil {
		t.Error("input mismatch accepted")
	}

	// Every truncation must be rejected cleanly, including cuts inside the
	// frame header, the varint trace and the raw bitstream words.
	for n := 0; n < len(data); n++ {
		if _, err := DecodeRecordingBinary(data[:n], p, in, mc); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(data))
		}
	}
	// Trailing garbage is rejected by the exact-consumption check.
	if _, err := DecodeRecordingBinary(append(append([]byte{}, data...), 0), p, in, mc); err == nil {
		t.Error("trailing byte accepted")
	}
	// A frame claiming a giant trace must fail before allocating: flip the
	// version byte range check first — craft a frame that is headers plus a
	// huge uvarint length where the trace length lives.
	if _, err := DecodeRecordingBinary([]byte("CTDB\x02\x01"), p, in, mc); err == nil {
		t.Error("empty payload accepted")
	}
	// A legacy version-1 artifact (pre-alignment layout) is rejected at the
	// frame header — it re-misses and is rewritten, never misparsed.
	if _, err := DecodeRecordingBinary([]byte("CTDB\x01\x01"), p, in, mc); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("legacy version: err = %v", err)
	}
}

// FuzzDecodeRecordingBinary throws arbitrary bytes at the binary recording
// decoder and holds it to returning errors, never panicking or allocating
// from unchecked lengths. Anything it accepts against the fixture program
// must re-encode deterministically.
func FuzzDecodeRecordingBinary(f *testing.F) {
	p, in, mc, rec := recordingFixture(f)
	valid, err := EncodeRecordingBinary(rec)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	// Targeted corruptions: bad magic, legacy and future versions, wrong tag,
	// truncated header, huge claimed trace length, flipped payload bytes, and
	// cuts inside the alignment padding and the raw trace words.
	f.Add([]byte{})
	f.Add([]byte("CTDB"))
	f.Add([]byte("CTDB\x01\x01")) // version 1: pre-alignment layout, must re-miss
	f.Add([]byte("CTDB\x03\x01")) // future version
	f.Add([]byte("CTDB\x02\x03")) // wrong tag
	f.Add(append([]byte("CTDB\x02\x01"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01))
	if len(valid) > 8 {
		half := append([]byte{}, valid[:len(valid)/2]...)
		f.Add(half)
		flipped := append([]byte{}, valid...)
		flipped[len(flipped)/2] ^= 0x40
		f.Add(flipped)
		f.Add(append([]byte{}, valid[:len(valid)-3]...)) // cut inside the params tail
		f.Add(append([]byte{}, valid[:len(valid)*3/4]...))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeRecordingBinary(data, p, in, mc)

		// The borrow-mode decoder must make the same accept/reject decision
		// and produce the same value, both over the input itself and over a
		// misaligned copy (which forces its copying fallback).
		for skew := 0; skew < 2; skew++ {
			buf := make([]byte, len(data)+skew)
			copy(buf[skew:], data)
			mgot, merr := DecodeRecordingBinaryMapped(buf[skew:], p, in, mc)
			if (err == nil) != (merr == nil) {
				t.Fatalf("skew %d: copying err=%v, mapped err=%v", skew, err, merr)
			}
			if err == nil && !reflect.DeepEqual(got, mgot) {
				t.Fatalf("skew %d: mapped decode disagrees with copying decode", skew)
			}
		}
		if err != nil {
			return // rejection is the expected outcome for garbage
		}
		enc, err := EncodeRecordingBinary(got)
		if err != nil {
			t.Fatalf("accepted recording failed to encode: %v", err)
		}
		got2, err := DecodeRecordingBinary(enc, p, in, mc)
		if err != nil {
			t.Fatalf("re-decode of accepted recording failed: %v", err)
		}
		if !reflect.DeepEqual(got, got2) {
			t.Fatal("binary encode/decode round trip changed the recording")
		}
	})
}
