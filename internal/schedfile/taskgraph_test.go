package schedfile

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ctdvs/internal/ir"
	"ctdvs/internal/workloads"
)

func TestGraphSpecRoundTripsCorpus(t *testing.T) {
	t.Parallel()
	for _, gs := range workloads.Graphs() {
		gs := gs
		t.Run(gs.Name, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := SaveGraphSpec(&buf, gs, 0); err != nil {
				t.Fatal(err)
			}
			f, err := LoadGraphSpec(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			got, err := f.Spec()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, gs) {
				t.Errorf("round trip changed the spec:\n got %+v\nwant %+v", got, gs)
			}
			// Canonical encoding is stable.
			again, err := f.EncodeGraph()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again, buf.Bytes()) {
				t.Error("re-encoding the loaded spec changed the bytes")
			}
			// The spec builds a valid executable graph.
			if _, err := got.Build(0.02); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLoadGraphSpecRejects(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name, in, want string
	}{
		{"empty", `{}`, "version"},
		{"bad-version", `{"version":9,"name":"g","cores":1,"deadline_frac":0.5,"tasks":[{"bench":"epic"}],"edges":[]}`, "version"},
		{"no-name", `{"version":1,"cores":1,"deadline_frac":0.5,"tasks":[{"bench":"epic"}],"edges":[]}`, "name"},
		{"no-cores", `{"version":1,"name":"g","deadline_frac":0.5,"tasks":[{"bench":"epic"}],"edges":[]}`, "cores"},
		{"both-deadlines", `{"version":1,"name":"g","cores":1,"deadline_us":5,"deadline_frac":0.5,"tasks":[{"bench":"epic"}],"edges":[]}`, "exactly one"},
		{"no-deadline", `{"version":1,"name":"g","cores":1,"tasks":[{"bench":"epic"}],"edges":[]}`, "exactly one"},
		{"no-tasks", `{"version":1,"name":"g","cores":1,"deadline_frac":0.5,"tasks":[],"edges":[]}`, "no tasks"},
		{"cycle", `{"version":1,"name":"g","cores":1,"deadline_frac":0.5,"tasks":[{"bench":"a"},{"bench":"b"}],"edges":[[0,1],[1,0]]}`, "cycle"},
		{"dangling", `{"version":1,"name":"g","cores":1,"deadline_frac":0.5,"tasks":[{"bench":"a"}],"edges":[[0,7]]}`, "dangling"},
		{"self-edge", `{"version":1,"name":"g","cores":1,"deadline_frac":0.5,"tasks":[{"bench":"a"}],"edges":[[0,0]]}`, "self edge"},
		{"dup-edge", `{"version":1,"name":"g","cores":1,"deadline_frac":0.5,"tasks":[{"bench":"a"},{"bench":"b"}],"edges":[[0,1],[0,1]]}`, "duplicate edge"},
		{"unnamed-bench", `{"version":1,"name":"g","cores":1,"deadline_frac":0.5,"tasks":[{"bench":""}],"edges":[]}`, "benchmark"},
		{"unknown-field", `{"version":1,"name":"g","cores":1,"deadline_frac":0.5,"tasks":[{"bench":"a"}],"edges":[],"bogus":1}`, "bogus"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, err := LoadGraphSpec(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Load(%s): err %v, want mention of %q", tc.in, err, tc.want)
			}
		})
	}
}

func TestLoadGraphSpecRejectsOversized(t *testing.T) {
	t.Parallel()
	var b strings.Builder
	b.WriteString(`{"version":1,"name":"g","cores":1,"deadline_frac":0.5,"tasks":[`)
	for i := 0; i <= ir.MaxTasks; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(`{"bench":"epic"}`)
	}
	b.WriteString(`],"edges":[]}`)
	_, err := LoadGraphSpec(strings.NewReader(b.String()))
	if err == nil || !strings.Contains(err.Error(), "max") {
		t.Errorf("oversized spec accepted: %v", err)
	}
}

func TestValidateTopologyRejectsOversizedEdges(t *testing.T) {
	t.Parallel()
	edges := make([][2]int, MaxGraphEdges+1)
	for i := range edges {
		edges[i] = [2]int{0, 1}
	}
	if err := ValidateTopology(2, edges); err == nil || !strings.Contains(err.Error(), "edges") {
		t.Errorf("oversized edge list accepted: %v", err)
	}
}

// FuzzLoadGraphSpec holds the task-graph spec decoder to its contract: never
// panic, reject cyclic/dangling/oversized structures, and round-trip anything
// it accepts byte-identically.
func FuzzLoadGraphSpec(f *testing.F) {
	for _, gs := range workloads.Graphs() {
		var buf bytes.Buffer
		if err := SaveGraphSpec(&buf, gs, 0); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.String())
	}
	f.Add(`{}`)
	f.Add(`{"version":1,"name":"g","cores":2,"deadline_frac":0.5,"tasks":[{"bench":"epic"},{"bench":"mpg123"}],"edges":[[0,1]]}`)
	f.Add(`{"version":1,"name":"g","cores":1,"deadline_frac":0.5,"tasks":[{"bench":"a"},{"bench":"b"}],"edges":[[0,1],[1,0]]}`)
	f.Add(`{"version":1,"name":"g","cores":1,"deadline_frac":0.5,"tasks":[{"bench":"a"}],"edges":[[0,99]]}`)
	f.Add(`{"version":1,"name":"g","cores":1,"deadline_us":1e9,"tasks":[{"bench":"a"}],"edges":[[-1,0]]}`)
	f.Add(`[1,2,3]`)

	f.Fuzz(func(t *testing.T, data string) {
		gf, err := LoadGraphSpec(strings.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Everything accepted has a consistent, acyclic topology...
		if err := ValidateTopology(len(gf.Tasks), gf.Edges); err != nil {
			t.Fatalf("accepted spec fails topology validation: %v", err)
		}
		// ...and re-encodes to a byte-stable form that loads back equal.
		enc, err := gf.EncodeGraph()
		if err != nil {
			t.Fatalf("accepted spec failed to encode: %v", err)
		}
		gf2, err := LoadGraphSpec(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-load of accepted spec failed: %v", err)
		}
		if !reflect.DeepEqual(gf, gf2) {
			t.Fatal("encode/load round trip changed the spec")
		}
		enc2, err := gf2.EncodeGraph()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("canonical encoding not byte-stable")
		}
	})
}
