package schedfile

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"ctdvs/internal/ir"
	"ctdvs/internal/sim"
)

// RecordingVersion identifies the recording artifact format.
const RecordingVersion = 1

// recordingJSON is the artifact layout for a sim.Recording — the
// mode-invariant event stream one instrumented run captures, from which the
// profile at any mode set is replayed. The packed streams are base64: the
// block trace as uvarints, the outcome bitstreams as little-endian 64-bit
// words. Like the profile codec, the program is not serialized; it is
// re-derived from the workload spec on load and the artifact must agree with
// it. Struct field order is fixed, so EncodeRecording is deterministic.
type recordingJSON struct {
	Version   int         `json:"version"`
	Program   string      `json:"program"`
	Input     string      `json:"input"`
	Machine   machineJSON `json:"machine"`
	NumBlocks int         `json:"n_blocks"`

	TraceLen   int    `json:"trace_len"`
	Trace      string `json:"trace"`
	MemOps     int64  `json:"mem_ops"`
	MemBits    string `json:"mem_bits"`
	BranchOps  int64  `json:"branch_ops"`
	BranchBits string `json:"branch_bits"`

	EdgeCounts  []int64       `json:"edge_counts"`
	PathCounts  []int64       `json:"path_counts"`
	L1Hits      int64         `json:"l1_hits"`
	L2Hits      int64         `json:"l2_hits"`
	MemMisses   int64         `json:"mem_misses"`
	Branches    int64         `json:"branches"`
	Mispredicts int64         `json:"mispredicts"`
	Params      simParamsJSON `json:"params"`
}

// machineJSON mirrors every sim.Config field; a recording is only replayable
// against the exact machine that produced it.
type machineJSON struct {
	L1                      cacheJSON `json:"l1"`
	L2                      cacheJSON `json:"l2"`
	MemLatencyUS            float64   `json:"mem_latency_us"`
	MemChannels             int       `json:"mem_channels"`
	StaticPowerMW           float64   `json:"static_power_mw"`
	PredictorEntries        int       `json:"predictor_entries"`
	MispredictPenaltyCycles int       `json:"mispredict_penalty_cycles"`
	RecordBudgetEvents      int       `json:"record_budget_events"`
	CeffComputeNF           float64   `json:"ceff_compute_nf"`
	CeffL1NF                float64   `json:"ceff_l1_nf"`
	CeffL2NF                float64   `json:"ceff_l2_nf"`
}

type cacheJSON struct {
	SizeBytes     int `json:"size_bytes"`
	Assoc         int `json:"assoc"`
	LineBytes     int `json:"line_bytes"`
	LatencyCycles int `json:"latency_cycles"`
}

type simParamsJSON struct {
	NCache       int64   `json:"n_cache"`
	NOverlap     int64   `json:"n_overlap"`
	NDependent   int64   `json:"n_dependent"`
	TInvariantUS float64 `json:"t_invariant_us"`
}

func machineToJSON(c sim.Config) machineJSON {
	return machineJSON{
		L1:                      cacheJSON{c.L1.SizeBytes, c.L1.Assoc, c.L1.LineBytes, c.L1.LatencyCycles},
		L2:                      cacheJSON{c.L2.SizeBytes, c.L2.Assoc, c.L2.LineBytes, c.L2.LatencyCycles},
		MemLatencyUS:            c.MemLatencyUS,
		MemChannels:             c.MemChannels,
		StaticPowerMW:           c.StaticPowerMW,
		PredictorEntries:        c.PredictorEntries,
		MispredictPenaltyCycles: c.MispredictPenaltyCycles,
		RecordBudgetEvents:      c.RecordBudgetEvents,
		CeffComputeNF:           c.CeffComputeNF,
		CeffL1NF:                c.CeffL1NF,
		CeffL2NF:                c.CeffL2NF,
	}
}

func machineFromJSON(m machineJSON) sim.Config {
	return sim.Config{
		L1:                      sim.CacheConfig{SizeBytes: m.L1.SizeBytes, Assoc: m.L1.Assoc, LineBytes: m.L1.LineBytes, LatencyCycles: m.L1.LatencyCycles},
		L2:                      sim.CacheConfig{SizeBytes: m.L2.SizeBytes, Assoc: m.L2.Assoc, LineBytes: m.L2.LineBytes, LatencyCycles: m.L2.LatencyCycles},
		MemLatencyUS:            m.MemLatencyUS,
		MemChannels:             m.MemChannels,
		StaticPowerMW:           m.StaticPowerMW,
		PredictorEntries:        m.PredictorEntries,
		MispredictPenaltyCycles: m.MispredictPenaltyCycles,
		RecordBudgetEvents:      m.RecordBudgetEvents,
		CeffComputeNF:           m.CeffComputeNF,
		CeffL1NF:                m.CeffL1NF,
		CeffL2NF:                m.CeffL2NF,
	}
}

func packTrace(trace []uint32) string {
	buf := make([]byte, 0, len(trace))
	var tmp [binary.MaxVarintLen32]byte
	for _, b := range trace {
		n := binary.PutUvarint(tmp[:], uint64(b))
		buf = append(buf, tmp[:n]...)
	}
	return base64.StdEncoding.EncodeToString(buf)
}

func unpackTrace(s string, n int) ([]uint32, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, err
	}
	// Each trace entry is at least one packed byte, so a claimed length
	// outside [0, len(buf)] is corrupt — reject it before allocating.
	if n < 0 || n > len(buf) {
		return nil, fmt.Errorf("block trace length %d does not fit %d packed bytes", n, len(buf))
	}
	trace := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		v, k := binary.Uvarint(buf)
		if k <= 0 || v > 1<<32-1 {
			return nil, fmt.Errorf("malformed block trace at entry %d", i)
		}
		trace = append(trace, uint32(v))
		buf = buf[k:]
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("block trace has %d trailing bytes", len(buf))
	}
	return trace, nil
}

func packWords(words []uint64) string {
	buf := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	return base64.StdEncoding.EncodeToString(buf)
}

func unpackWords(s string) ([]uint64, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, err
	}
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("bitstream length %d is not a whole number of words", len(buf))
	}
	words := make([]uint64, len(buf)/8)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	return words, nil
}

// EncodeRecording renders the recording as a deterministic artifact for the
// pipeline's record stage.
func EncodeRecording(rec *sim.Recording) ([]byte, error) {
	if rec == nil {
		return nil, fmt.Errorf("schedfile: encode nil recording")
	}
	f := recordingJSON{
		Version:   RecordingVersion,
		Program:   rec.Program,
		Input:     rec.Input,
		Machine:   machineToJSON(rec.Config),
		NumBlocks: rec.NumBlocks,

		TraceLen:   len(rec.Trace),
		Trace:      packTrace(rec.Trace),
		MemOps:     rec.MemOps,
		MemBits:    packWords(rec.MemBits),
		BranchOps:  rec.BranchOps,
		BranchBits: packWords(rec.BranchBits),

		EdgeCounts:  rec.EdgeCountsByID,
		PathCounts:  rec.PathCountsByID,
		L1Hits:      rec.L1Hits,
		L2Hits:      rec.L2Hits,
		MemMisses:   rec.MemMisses,
		Branches:    rec.Branches,
		Mispredicts: rec.Mispredicts,
		Params: simParamsJSON{
			NCache:       rec.Params.NCache,
			NOverlap:     rec.Params.NOverlap,
			NDependent:   rec.Params.NDependent,
			TInvariantUS: rec.Params.TInvariantUS,
		},
	}
	return json.Marshal(f)
}

// DecodeRecording reconstructs a bound, replay-ready recording from an
// artifact. The program, input and machine configuration come from the caller
// (the workload spec and experiment config) and the artifact must agree with
// all three — a recording replayed against a different program or machine
// would produce confidently wrong numbers, so any mismatch is an error. The
// decoded stream is re-validated against the program by sim's Bind.
func DecodeRecording(data []byte, p *ir.Program, in ir.Input, mc sim.Config) (*sim.Recording, error) {
	var f recordingJSON
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("schedfile: decode recording: %w", err)
	}
	if f.Version != RecordingVersion {
		return nil, fmt.Errorf("schedfile: recording artifact version %d, want %d", f.Version, RecordingVersion)
	}
	if f.Program != p.Name || f.Input != in.Name {
		return nil, fmt.Errorf("schedfile: recording artifact is for %s/%s, want %s/%s", f.Program, f.Input, p.Name, in.Name)
	}
	// ReferenceSim only selects which of two bit-identical kernels simulates;
	// it is not part of a recording's identity, so the machine check ignores
	// it (the artifact never stores it either — machineJSON has no field).
	want := mc
	want.ReferenceSim = false
	if got := machineFromJSON(f.Machine); got != want {
		return nil, fmt.Errorf("schedfile: recording artifact machine %+v does not match configuration %+v", got, want)
	}
	trace, err := unpackTrace(f.Trace, f.TraceLen)
	if err != nil {
		return nil, fmt.Errorf("schedfile: decode recording: %w", err)
	}
	memBits, err := unpackWords(f.MemBits)
	if err != nil {
		return nil, fmt.Errorf("schedfile: decode recording memory outcomes: %w", err)
	}
	branchBits, err := unpackWords(f.BranchBits)
	if err != nil {
		return nil, fmt.Errorf("schedfile: decode recording branch outcomes: %w", err)
	}
	rec := &sim.Recording{
		Program:   f.Program,
		Input:     f.Input,
		Config:    mc,
		NumBlocks: f.NumBlocks,

		Trace:      trace,
		MemOps:     f.MemOps,
		MemBits:    memBits,
		BranchOps:  f.BranchOps,
		BranchBits: branchBits,

		EdgeCountsByID: emptyNotNil(f.EdgeCounts),
		PathCountsByID: emptyNotNil(f.PathCounts),
		L1Hits:         f.L1Hits,
		L2Hits:         f.L2Hits,
		MemMisses:      f.MemMisses,
		Branches:       f.Branches,
		Mispredicts:    f.Mispredicts,
		Params: sim.Params{
			NCache:       f.Params.NCache,
			NOverlap:     f.Params.NOverlap,
			NDependent:   f.Params.NDependent,
			TInvariantUS: f.Params.TInvariantUS,
		},
	}
	if err := rec.Bind(p); err != nil {
		return nil, fmt.Errorf("schedfile: recording artifact rejected: %w", err)
	}
	return rec, nil
}

// emptyNotNil normalizes JSON null to an empty slice, so decoded recordings
// replay to Results structurally identical to freshly simulated ones.
func emptyNotNil(s []int64) []int64 {
	if s == nil {
		return []int64{}
	}
	return s
}
