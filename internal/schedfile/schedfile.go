// Package schedfile serializes DVS schedules to a JSON interchange format,
// completing the compile-side toolchain: dvs-opt writes the schedule a
// compiler back-end would consume, and dvs-sim executes one — the moral
// equivalent of the paper's "DVS'ed program" artifact (Figure 13).
package schedfile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"ctdvs/internal/cfg"
	"ctdvs/internal/pipeline"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

// Version identifies the current file format.
const Version = 1

// File is the on-disk schedule representation.
type File struct {
	Version int    `json:"version"`
	Program string `json:"program"`
	// Modes in ascending frequency order.
	Modes []ModeJSON `json:"modes"`
	// Initial is the mode index before the entry edge.
	Initial   int           `json:"initial"`
	Regulator RegulatorJSON `json:"regulator"`
	// Assignments are the per-edge mode-set instructions; the virtual entry
	// edge uses From = -1.
	Assignments []AssignmentJSON `json:"assignments"`
}

// ModeJSON is one (V, f) operating point.
type ModeJSON struct {
	Volts float64 `json:"volts"`
	MHz   float64 `json:"mhz"`
}

// RegulatorJSON captures the transition-cost model.
type RegulatorJSON struct {
	CapacitanceF float64 `json:"capacitance_f"`
	Efficiency   float64 `json:"efficiency"`
	IMaxA        float64 `json:"imax_a"`
}

// AssignmentJSON is one mode-set instruction.
type AssignmentJSON struct {
	From int `json:"from"`
	To   int `json:"to"`
	Mode int `json:"mode"`
}

// New builds the canonical file representation of a schedule: modes in mode-set
// order and assignments sorted by (from, to), so the same schedule always
// yields byte-identical JSON regardless of map iteration order.
func New(program string, s *sim.Schedule) (*File, error) {
	if s == nil || s.Modes == nil {
		return nil, fmt.Errorf("schedfile: nil schedule")
	}
	f := &File{
		Version: Version,
		Program: program,
		Initial: s.Initial,
		Regulator: RegulatorJSON{
			CapacitanceF: s.Regulator.C,
			Efficiency:   s.Regulator.U,
			IMaxA:        s.Regulator.IMax,
		},
	}
	for _, m := range s.Modes.Modes() {
		f.Modes = append(f.Modes, ModeJSON{Volts: m.V, MHz: m.F})
	}
	for e, mi := range s.Assignment {
		f.Assignments = append(f.Assignments, AssignmentJSON{From: e.From, To: e.To, Mode: mi})
	}
	sort.Slice(f.Assignments, func(a, b int) bool {
		if f.Assignments[a].From != f.Assignments[b].From {
			return f.Assignments[a].From < f.Assignments[b].From
		}
		return f.Assignments[a].To < f.Assignments[b].To
	})
	return f, nil
}

// Schedule reconstructs the executable schedule, validating structure and
// ranges.
func (f *File) Schedule() (program string, s *sim.Schedule, err error) {
	if f.Version != Version {
		return "", nil, fmt.Errorf("schedfile: unsupported version %d", f.Version)
	}
	modes := make([]volt.Mode, len(f.Modes))
	for i, m := range f.Modes {
		modes[i] = volt.Mode{V: m.Volts, F: m.MHz}
	}
	ms, err := volt.NewModeSet(modes)
	if err != nil {
		return "", nil, fmt.Errorf("schedfile: %w", err)
	}
	reg := volt.Regulator{C: f.Regulator.CapacitanceF, U: f.Regulator.Efficiency, IMax: f.Regulator.IMaxA}
	if err := reg.Validate(); err != nil {
		return "", nil, fmt.Errorf("schedfile: %w", err)
	}
	if f.Initial < 0 || f.Initial >= ms.Len() {
		return "", nil, fmt.Errorf("schedfile: initial mode %d out of range", f.Initial)
	}
	sched := &sim.Schedule{
		Modes:      ms,
		Initial:    f.Initial,
		Regulator:  reg,
		Assignment: make(map[cfg.Edge]int, len(f.Assignments)),
	}
	for _, a := range f.Assignments {
		if a.Mode < 0 || a.Mode >= ms.Len() {
			return "", nil, fmt.Errorf("schedfile: edge %d→%d uses mode %d out of range", a.From, a.To, a.Mode)
		}
		if a.From < cfg.Entry || a.To < 0 {
			return "", nil, fmt.Errorf("schedfile: invalid edge %d→%d", a.From, a.To)
		}
		e := cfg.Edge{From: a.From, To: a.To}
		if _, dup := sched.Assignment[e]; dup {
			return "", nil, fmt.Errorf("schedfile: duplicate assignment for edge %v", e)
		}
		sched.Assignment[e] = a.Mode
	}
	return f.Program, sched, nil
}

// Encode renders the canonical indented JSON for the file. Because New sorts
// assignments and json.Marshal emits struct fields in declaration order, equal
// schedules encode to equal bytes.
func (f *File) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("schedfile: %w", err)
	}
	return append(data, '\n'), nil
}

// Fingerprint returns the content digest of the schedule's canonical encoding,
// used by the pipeline's validate stage to address re-simulation artifacts.
func Fingerprint(program string, s *sim.Schedule) (string, error) {
	f, err := New(program, s)
	if err != nil {
		return "", err
	}
	data, err := f.Encode()
	if err != nil {
		return "", err
	}
	return pipeline.Fingerprint(data), nil
}

// Save writes the schedule for the named program.
func Save(w io.Writer, program string, s *sim.Schedule) error {
	f, err := New(program, s)
	if err != nil {
		return err
	}
	data, err := f.Encode()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Load reads a schedule file, validating structure and ranges.
func Load(r io.Reader) (program string, s *sim.Schedule, err error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return "", nil, fmt.Errorf("schedfile: %w", err)
	}
	return f.Schedule()
}
