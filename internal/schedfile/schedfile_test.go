package schedfile

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ctdvs/internal/cfg"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

func sample() *sim.Schedule {
	return &sim.Schedule{
		Modes:     volt.XScale3(),
		Initial:   2,
		Regulator: volt.DefaultRegulator(),
		Assignment: map[cfg.Edge]int{
			{From: cfg.Entry, To: 0}: 2,
			{From: 0, To: 1}:         0,
			{From: 1, To: 1}:         0,
			{From: 1, To: 2}:         1,
		},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, "gsm/encode", sample()); err != nil {
		t.Fatal(err)
	}
	name, got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "gsm/encode" {
		t.Errorf("program = %q", name)
	}
	want := sample()
	if got.Initial != want.Initial {
		t.Errorf("initial = %d", got.Initial)
	}
	if got.Modes.Len() != want.Modes.Len() {
		t.Fatalf("modes = %d", got.Modes.Len())
	}
	for i := 0; i < want.Modes.Len(); i++ {
		if got.Modes.Mode(i) != want.Modes.Mode(i) {
			t.Errorf("mode %d = %v, want %v", i, got.Modes.Mode(i), want.Modes.Mode(i))
		}
	}
	if len(got.Assignment) != len(want.Assignment) {
		t.Fatalf("assignments = %d", len(got.Assignment))
	}
	for e, m := range want.Assignment {
		if got.Assignment[e] != m {
			t.Errorf("edge %v = %d, want %d", e, got.Assignment[e], m)
		}
	}
	if math.Abs(got.Regulator.TransitionTime(1.3, 0.7)-12) > 1e-9 {
		t.Error("regulator lost in round trip")
	}
}

func TestSaveDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := Save(&a, "p", sample()); err != nil {
		t.Fatal(err)
	}
	if err := Save(&b, "p", sample()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("serialization not deterministic (map iteration leaked)")
	}
}

func TestLoadRejectsBadFiles(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"garbage", "not json"},
		{"unknown field", `{"version":1,"program":"p","modes":[{"volts":1,"mhz":100}],"initial":0,"regulator":{"capacitance_f":1e-5,"efficiency":0.9,"imax_a":1},"assignments":[],"extra":1}`},
		{"bad version", `{"version":9,"program":"p","modes":[{"volts":1,"mhz":100}],"initial":0,"regulator":{"capacitance_f":1e-5,"efficiency":0.9,"imax_a":1},"assignments":[]}`},
		{"no modes", `{"version":1,"program":"p","modes":[],"initial":0,"regulator":{"capacitance_f":1e-5,"efficiency":0.9,"imax_a":1},"assignments":[]}`},
		{"bad initial", `{"version":1,"program":"p","modes":[{"volts":1,"mhz":100}],"initial":5,"regulator":{"capacitance_f":1e-5,"efficiency":0.9,"imax_a":1},"assignments":[]}`},
		{"bad regulator", `{"version":1,"program":"p","modes":[{"volts":1,"mhz":100}],"initial":0,"regulator":{"capacitance_f":-1,"efficiency":0.9,"imax_a":1},"assignments":[]}`},
		{"bad mode index", `{"version":1,"program":"p","modes":[{"volts":1,"mhz":100}],"initial":0,"regulator":{"capacitance_f":1e-5,"efficiency":0.9,"imax_a":1},"assignments":[{"from":0,"to":1,"mode":7}]}`},
		{"bad edge", `{"version":1,"program":"p","modes":[{"volts":1,"mhz":100}],"initial":0,"regulator":{"capacitance_f":1e-5,"efficiency":0.9,"imax_a":1},"assignments":[{"from":-2,"to":1,"mode":0}]}`},
		{"duplicate edge", `{"version":1,"program":"p","modes":[{"volts":1,"mhz":100}],"initial":0,"regulator":{"capacitance_f":1e-5,"efficiency":0.9,"imax_a":1},"assignments":[{"from":0,"to":1,"mode":0},{"from":0,"to":1,"mode":0}]}`},
	}
	for _, c := range cases {
		if _, _, err := Load(strings.NewReader(c.json)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSaveNil(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, "p", nil); err == nil {
		t.Error("nil schedule accepted")
	}
}
