// Package serve exposes the DVS optimization pipeline as an HTTP/JSON
// service. One Server owns one exp.Config (and through it one artifact
// store), so every request — whichever client sent it — shares the same
// content-addressed cache dvs-opt and dvs-bench use offline.
//
// Three mechanisms keep a burst of traffic from melting the solver:
//
//   - Single-flight: identical in-flight requests coalesce onto one
//     execution keyed by the canonical request (and, one layer down, the
//     pipeline deduplicates per-artifact, so even *different* requests that
//     share a profile collect it once). A thundering herd of N identical
//     requests costs one simulation and one solve.
//   - Backpressure: at most Workers optimizations run concurrently, at most
//     QueueDepth more wait. Beyond that the server answers 429 with a
//     Retry-After hint instead of accepting unbounded work.
//   - Cancellation: a disconnected client or an expired request timeout
//     propagates through context into the pipeline, aborting queued waits,
//     simulations at stage boundaries, and the branch-and-bound search
//     between rounds — unless another live request still wants the result.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ctdvs/internal/core"
	"ctdvs/internal/exp"
	"ctdvs/internal/milp"
	"ctdvs/internal/pipeline"
	"ctdvs/internal/schedfile"
	"ctdvs/internal/volt"
	"ctdvs/internal/workloads"
)

// ErrBusy reports that the request was rejected because the worker pool and
// the queue are both full. HTTP maps it to 429 Too Many Requests.
var ErrBusy = errors.New("serve: server is at capacity")

// Options configures a Server. The zero value is usable: defaults are
// applied by New.
type Options struct {
	// Workers bounds concurrent optimizations (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker (default 16); beyond
	// Workers+QueueDepth admitted requests, new work is rejected with ErrBusy.
	QueueDepth int
	// SolveLimit is the MILP time limit. It participates in solve cache keys,
	// so it must match the dvs-opt -solve-limit used against the same store
	// for artifacts to be shared (default 2m, dvs-opt's default). Per-request
	// deadlines never change it — they cancel via context instead.
	SolveLimit time.Duration
	// SolveWorkers is the branch-and-bound parallelism per solve (default 0:
	// the solver's own default). Also part of solve cache keys.
	SolveWorkers int
	// RequestTimeout bounds each request's wall time (default 0: none). A
	// request's timeout_ms field overrides it.
	RequestTimeout time.Duration
	// RetryAfter is the hint sent with 429/503 responses (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// StoreBudgetBytes, when positive and the configuration has a disk
	// store, bounds the store's size: a background pass runs Store.Compact
	// to this budget every CompactInterval, evicting least-recently-used
	// artifacts (JSON duplicates of binary artifacts first). Evictions are
	// visible in /statsz store gauges. Default 0: no compaction.
	StoreBudgetBytes int64
	// CompactInterval is the cadence of the compaction pass (default 1m).
	CompactInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.SolveLimit <= 0 {
		o.SolveLimit = 2 * time.Minute
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.CompactInterval <= 0 {
		o.CompactInterval = time.Minute
	}
	return o
}

// flight is one in-flight request execution shared by every concurrent
// request with the same canonical key. Its lifecycle mirrors the pipeline's
// singleflight slot: the execution runs under a private context cancelled
// only when every waiter is gone, and the flight is removed from the table
// as soon as it finishes (responses are not cached here — artifact reuse is
// the pipeline store's job, and it keeps hit/miss accounting honest).
type flight struct {
	done chan struct{}

	resp *Response
	err  error

	waiters  int // guarded by Server.mu
	cancel   context.CancelFunc
	finished bool // guarded by Server.mu
}

// Server runs optimization requests against one experiment configuration.
// Create with New; serve its Handler; call Drain before process exit.
type Server struct {
	cfg   *exp.Config
	opts  Options
	start time.Time

	// queue admits up to Workers+QueueDepth request executions; active
	// releases up to Workers of them into the pipeline. Channel lengths
	// double as the /statsz occupancy gauges.
	queue  chan struct{}
	active chan struct{}

	mu      sync.Mutex
	flights map[string]*flight

	draining atomic.Bool
	inflight sync.WaitGroup

	// compactStop ends the background store-compaction loop; closed once by
	// Drain via stopCompact.
	compactStop chan struct{}
	stopCompact sync.Once

	stats stats

	// testHook, when set (tests only, before any request), runs inside
	// execute after worker admission — it lets tests hold a worker busy or
	// observe the execution context deterministically.
	testHook func(context.Context, *Request)
}

// New returns a server over cfg. The caller keeps ownership of cfg (and of
// closing its manifest/store); the server only runs work through it.
func New(cfg *exp.Config, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		cfg:         cfg,
		opts:        opts,
		start:       time.Now(),
		queue:       make(chan struct{}, opts.Workers+opts.QueueDepth),
		active:      make(chan struct{}, opts.Workers),
		flights:     make(map[string]*flight),
		compactStop: make(chan struct{}),
	}
	if opts.StoreBudgetBytes > 0 && s.store() != nil {
		go s.compactLoop()
	}
	return s
}

// store returns the configuration's disk store, nil when memory-only.
func (s *Server) store() *pipeline.Store {
	if s.cfg.Pipeline == nil {
		return nil
	}
	return s.cfg.Pipeline.Store()
}

// compactLoop is the fleet-cache GC: every CompactInterval it compacts the
// store to StoreBudgetBytes. Compaction is unlink-based and safe under
// concurrent readers (see pipeline.Store.Compact), so it needs no
// coordination with in-flight requests; Drain stops the loop.
func (s *Server) compactLoop() {
	t := time.NewTicker(s.opts.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-s.compactStop:
			return
		case <-t.C:
			if store := s.store(); store != nil {
				_, _ = store.Compact(s.opts.StoreBudgetBytes)
			}
		}
	}
}

// Handler returns the server's HTTP mux:
//
//	POST /optimize  — run (or coalesce onto, or load from cache) one request
//	GET  /healthz   — 200 "ok" while serving, 503 while draining
//	GET  /statsz    — counters, queue occupancy, latency percentiles, cache stats
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/optimize", s.handleOptimize)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	return mux
}

// Drain stops admitting new optimization requests (they get 503) and blocks
// until every in-flight execution has finished. Call it on SIGTERM before
// http.Server.Shutdown so responses still reach their clients.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.stopCompact.Do(func() { close(s.compactStop) })
	s.inflight.Wait()
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		s.stats.rejected.Add(1)
		s.retryAfter(w)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	req, err := DecodeRequest(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		s.stats.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Workload existence is a client error, caught before any queueing.
	if req.Graph != nil {
		if err := s.checkGraphWorkloads(req.Graph); err != nil {
			s.stats.badRequests.Add(1)
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	} else {
		spec, err := s.cfg.Spec(req.Bench)
		if err != nil {
			s.stats.badRequests.Add(1)
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if req.Input >= len(spec.Inputs) {
			s.stats.badRequests.Add(1)
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("%s has %d inputs, no input %d", req.Bench, len(spec.Inputs), req.Input))
			return
		}
	}
	s.stats.requests.Add(1)

	ctx := r.Context()
	timeout := s.opts.RequestTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	start := time.Now()
	resp, err := s.do(ctx, req)
	elapsedMS := float64(time.Since(start).Microseconds()) / 1e3

	switch {
	case err == nil:
		s.stats.completed.Add(1)
		if resp.Infeasible {
			s.stats.infeasible.Add(1)
		}
		s.stats.latency.add(elapsedMS)
		// Coalesced requests share one *Response; give each its own elapsed.
		out := *resp
		out.ElapsedMS = elapsedMS
		writeJSON(w, http.StatusOK, &out)
	case errors.Is(err, ErrBusy):
		s.stats.rejected.Add(1)
		s.retryAfter(w)
		writeError(w, http.StatusTooManyRequests, ErrBusy.Error())
	case isCtxErr(err):
		s.stats.cancelled.Add(1)
		if r.Context().Err() != nil {
			// The client is gone; there is nobody to answer.
			return
		}
		writeError(w, http.StatusGatewayTimeout, "request timed out")
	default:
		s.stats.failed.Add(1)
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// do coalesces identical requests onto one execution. Like pipeline.RunCtx,
// it retries when it inherits another caller's cancellation: the dead flight
// is guaranteed gone from the table, so the retry starts (or joins) a live
// one.
func (s *Server) do(ctx context.Context, req *Request) (*Response, error) {
	for {
		resp, err := s.doOnce(ctx, req)
		if isCtxErr(err) && ctx.Err() == nil {
			continue
		}
		return resp, err
	}
}

func (s *Server) doOnce(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := req.key()

	s.mu.Lock()
	f, ok := s.flights[key]
	leader := false
	if !ok {
		fctx, cancel := context.WithCancel(context.Background())
		f = &flight{done: make(chan struct{}), cancel: cancel}
		s.flights[key] = f
		leader = true
		s.inflight.Add(1)
		go func() {
			defer s.inflight.Done()
			resp, err := s.execute(fctx, req)
			s.mu.Lock()
			f.resp, f.err, f.finished = resp, err, true
			delete(s.flights, key)
			s.mu.Unlock()
			cancel()
			close(f.done)
		}()
	}
	f.waiters++
	s.mu.Unlock()

	select {
	case <-f.done:
		if !leader {
			s.stats.coalesced.Add(1)
		}
		return f.resp, f.err
	case <-ctx.Done():
		s.mu.Lock()
		f.waiters--
		if f.waiters == 0 && !f.finished {
			f.cancel()
		}
		s.mu.Unlock()
		return nil, ctx.Err()
	}
}

// execute admits one request through the queue and worker gates, then runs
// the dvs-opt flow under ctx. Admission is non-blocking: a full queue is an
// immediate ErrBusy, never a hidden wait.
func (s *Server) execute(ctx context.Context, req *Request) (*Response, error) {
	select {
	case s.queue <- struct{}{}:
		defer func() { <-s.queue }()
	default:
		return nil, ErrBusy
	}
	select {
	case s.active <- struct{}{}:
		defer func() { <-s.active }()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if s.testHook != nil {
		s.testHook(ctx, req)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.optimize(ctx, req)
}

// optimize mirrors cmd/dvs-opt exactly — same profile, deadline resolution,
// regulator, options and measurement — so a served response is built from
// the same artifacts the CLI reads and writes.
func (s *Server) optimize(ctx context.Context, req *Request) (*Response, error) {
	if req.Graph != nil {
		return s.optimizeGraph(ctx, req)
	}
	spec, err := s.cfg.Spec(req.Bench)
	if err != nil {
		return nil, err
	}
	pr, err := s.cfg.ProfileCtx(ctx, req.Bench, req.Input, req.Levels)
	if err != nil {
		return nil, err
	}

	dl := req.DeadlineUS
	if dl == 0 {
		n := pr.Modes.Len()
		dl = spec.Deadline(req.Deadline, pr.TotalTimeUS[n-1], pr.TotalTimeUS[0])
	}

	reg := volt.DefaultRegulator().WithCapacitance(req.CapacitanceF)
	opts := &core.Options{
		Regulator:         reg,
		NoTransitionCosts: req.NoTransitionCosts,
		BlockBased:        req.BlockBased,
		MILP:              &milp.Options{TimeLimit: s.opts.SolveLimit, Workers: s.opts.SolveWorkers},
	}
	if req.NoFilter {
		opts.FilterTail = -1
	}

	resp := &Response{
		Bench:      spec.Name,
		Input:      spec.Inputs[req.Input].Name,
		Levels:     req.Levels,
		DeadlineUS: dl,
	}

	res, err := s.cfg.OptimizeSingleCtx(ctx, pr, dl, opts)
	if errors.Is(err, core.ErrInfeasible) {
		resp.Infeasible = true
		return resp, nil
	}
	if err != nil {
		return nil, err
	}

	resp.PredictedEnergyUJ = res.PredictedEnergyUJ
	resp.PredictedTimeUS = res.PredictedTimeUS[0]
	resp.IndependentEdges = res.IndependentEdges
	resp.TotalEdges = res.TotalEdges
	resp.Solver = &SolverStats{
		Status:         res.Solver.Status.String(),
		Nodes:          res.Solver.Nodes,
		LPIters:        res.Solver.LPIters,
		SolveTimeNS:    res.Solver.SolveTime.Nanoseconds(),
		WarmSolves:     res.Solver.WarmSolves,
		ColdSolves:     res.Solver.ColdSolves,
		WarmFallbacks:  res.Solver.WarmFallbacks,
		LPPivots:       res.Solver.LPPivots,
		AnalyticPrunes: res.Solver.AnalyticPrunes,
		ObjectiveUJ:    res.Solver.Objective,
	}
	s.stats.analyticPrunes.Add(int64(res.Solver.AnalyticPrunes))

	if req.IncludeSchedule {
		f, err := schedfile.New(spec.Name, res.Schedule)
		if err != nil {
			return nil, err
		}
		resp.Schedule = f
	}

	if !req.SkipMeasure {
		ev, err := s.cfg.MeasureCtx(ctx, pr, res.Schedule, dl)
		if err != nil {
			return nil, err
		}
		resp.Measured = &Measured{Run: ev.Run, MeetsDeadline: ev.MeetsDeadline, SlackUS: ev.SlackUS}
		if mode, baseE, ok := pr.BestSingleMode(dl); ok {
			sv, err := s.cfg.SavingsCtx(ctx, pr, res.Schedule, dl, reg)
			if err != nil {
				return nil, err
			}
			resp.Baseline = &Baseline{
				Mode:     pr.Modes.Mode(mode).String(),
				EnergyUJ: baseE,
				Savings:  sv,
			}
		}
	}
	return resp, nil
}

// checkGraphWorkloads rejects graph requests naming unknown corpus graphs,
// unknown benchmarks or out-of-range inputs before they consume a queue slot.
func (s *Server) checkGraphWorkloads(g *GraphRequest) error {
	if g.Name != "" {
		if _, ok := workloads.Graph(g.Name); !ok {
			return fmt.Errorf("unknown task graph %q", g.Name)
		}
		return nil
	}
	for i, task := range g.Tasks {
		spec, err := s.cfg.Spec(task.Bench)
		if err != nil {
			return fmt.Errorf("graph task %d: %w", i, err)
		}
		if task.Input >= len(spec.Inputs) {
			return fmt.Errorf("graph task %d: %s has %d inputs, no input %d",
				i, task.Bench, len(spec.Inputs), task.Input)
		}
	}
	return nil
}

// graphSpec resolves the request's graph selector to a workload spec: the
// corpus graph by name, or an inline spec built from the request body.
func (s *Server) graphSpec(req *Request) (*workloads.GraphSpec, error) {
	g := req.Graph
	if g.Name != "" {
		gs, ok := workloads.Graph(g.Name)
		if !ok {
			return nil, fmt.Errorf("unknown task graph %q", g.Name)
		}
		return gs, nil
	}
	gs := &workloads.GraphSpec{
		Name:         "inline",
		Cores:        g.Cores,
		DeadlineFrac: g.DeadlineFrac,
		Tasks:        make([]workloads.TaskRef, len(g.Tasks)),
		Edges:        g.Edges,
	}
	for i, task := range g.Tasks {
		gs.Tasks[i] = workloads.TaskRef{
			Bench:      task.Bench,
			Input:      task.Input,
			ReleaseUS:  task.ReleaseUS,
			DeadlineUS: task.DeadlineUS,
		}
	}
	return gs, nil
}

// optimizeGraph mirrors the exp task-graph flow: build the workload, solve the
// per-core placement and mode assignment, then (unless skip_measure) execute
// the static schedule and the slack-reclaiming governed schedule. Every stage
// runs through the same artifact store the single-program path uses — the
// degenerate 1-task/1-core graph resolves from single-program artifacts.
func (s *Server) optimizeGraph(ctx context.Context, req *Request) (*Response, error) {
	gs, err := s.graphSpec(req)
	if err != nil {
		return nil, err
	}
	gw, err := s.cfg.BuildGraphCtx(ctx, gs, req.Levels, req.DeadlineUS)
	if err != nil {
		return nil, err
	}

	reg := volt.DefaultRegulator().WithCapacitance(req.CapacitanceF)
	opts := &core.Options{
		Regulator:         reg,
		NoTransitionCosts: req.NoTransitionCosts,
		MILP:              &milp.Options{TimeLimit: s.opts.SolveLimit, Workers: s.opts.SolveWorkers},
	}

	names := make([]string, len(gw.Graph.Tasks))
	for t, task := range gw.Graph.Tasks {
		names[t] = task.Name
	}
	gresp := &GraphResponse{
		Name:       gs.Name,
		Cores:      gw.Cores,
		Tasks:      names,
		DeadlineUS: gw.DeadlineUS,
	}
	resp := &Response{
		Levels:     req.Levels,
		DeadlineUS: gw.DeadlineUS,
		Graph:      gresp,
	}

	res, err := s.cfg.OptimizeGraphCtx(ctx, gw, opts)
	if errors.Is(err, core.ErrInfeasible) {
		resp.Infeasible = true
		return resp, nil
	}
	if err != nil {
		return nil, err
	}

	gresp.Degenerate = res.Degenerate
	gresp.Placement = res.Schedule.Placement
	gresp.Order = res.Schedule.Order
	gresp.PredictedEnergyUJ = res.PredictedEnergyUJ
	gresp.PredictedMakespanUS = res.PredictedMakespanUS
	modes := make([]string, len(res.Schedule.Placement))
	for t, pl := range res.Schedule.Placement {
		modes[t] = res.Schedule.Modes.Mode(pl.Mode).String()
	}
	gresp.Modes = modes
	resp.Solver = &SolverStats{
		Status:         res.Solver.Status.String(),
		Nodes:          res.Solver.Nodes,
		LPIters:        res.Solver.LPIters,
		SolveTimeNS:    res.Solver.SolveTime.Nanoseconds(),
		WarmSolves:     res.Solver.WarmSolves,
		ColdSolves:     res.Solver.ColdSolves,
		WarmFallbacks:  res.Solver.WarmFallbacks,
		LPPivots:       res.Solver.LPPivots,
		AnalyticPrunes: res.Solver.AnalyticPrunes,
		ObjectiveUJ:    res.Solver.Objective,
	}
	s.stats.analyticPrunes.Add(int64(res.Solver.AnalyticPrunes))

	if !req.SkipMeasure {
		static, err := s.cfg.SimulateGraphCtx(ctx, gw, res.Schedule)
		if err != nil {
			return nil, err
		}
		gresp.Static = graphMeasured(static, gw.DeadlineUS)
		// The governor runs over coarse task-grained schedules; the degenerate
		// path's intra-task schedule is already slack-optimal per the MILP.
		if !res.Degenerate {
			governed, _, _, err := s.cfg.ReclaimGraph(gw, res.Schedule)
			if err != nil {
				return nil, err
			}
			grun, err := s.cfg.SimulateGraphCtx(ctx, gw, governed)
			if err != nil {
				return nil, err
			}
			gresp.Governed = graphMeasured(grun, gw.DeadlineUS)
		}
	}
	return resp, nil
}

func graphMeasured(run exp.GraphRunSummary, deadlineUS float64) *GraphMeasured {
	meets := run.MissedDeadlines == 0 && run.MakespanUS <= deadlineUS*(1+1e-9)
	return &GraphMeasured{Run: run, MeetsDeadline: meets, SlackUS: deadlineUS - run.MakespanUS}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats snapshots the server's counters and gauges.
func (s *Server) Stats() *Stats {
	admitted, active := len(s.queue), len(s.active)
	queued := admitted - active
	if queued < 0 {
		queued = 0 // the two gauges are read racily; never report negative
	}
	st := &Stats{
		UptimeS:        time.Since(s.start).Seconds(),
		Requests:       s.stats.requests.Load(),
		Completed:      s.stats.completed.Load(),
		Infeasible:     s.stats.infeasible.Load(),
		BadRequests:    s.stats.badRequests.Load(),
		Rejected:       s.stats.rejected.Load(),
		Cancelled:      s.stats.cancelled.Load(),
		Failed:         s.stats.failed.Load(),
		Coalesced:      s.stats.coalesced.Load(),
		AnalyticPrunes: s.stats.analyticPrunes.Load(),
		Workers:        s.opts.Workers,
		QueueDepth:     s.opts.QueueDepth,
		Active:         active,
		Queued:         queued,
		Draining:       s.draining.Load(),
		Latency:        s.stats.latency.snapshot(),
	}
	if s.cfg.Pipeline != nil {
		st.Cache = s.cfg.Pipeline.Manifest().Stats()
		if store := s.cfg.Pipeline.Store(); store != nil {
			st.CacheCodec = store.WriteFormat().String()
			ss := &StoreStats{
				Dir:         store.Dir(),
				BudgetBytes: s.opts.StoreBudgetBytes,
				Evictions:   store.Evictions(),
			}
			if ds, err := store.DiskStats(); err == nil {
				ss.TotalArtifacts = ds.TotalArtifacts
				ss.TotalBytes = ds.TotalBytes
				ss.Kinds = ds.Kinds
			}
			st.Store = ss
		}
	}
	return st
}

func (s *Server) retryAfter(w http.ResponseWriter) {
	secs := int(s.opts.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}
