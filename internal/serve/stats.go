package serve

import (
	"sort"
	"sync"
	"sync/atomic"

	"ctdvs/internal/pipeline"
)

// latencyWindow is the number of recent request latencies kept for the
// percentile estimates in /statsz. A power of two keeps the ring arithmetic
// cheap; ~2k samples is plenty for stable p99 under load.
const latencyWindow = 2048

// latencyRing is a fixed-size ring of completed-request latencies in
// milliseconds. Recording is a mutex-guarded store (cheap next to the
// requests it measures); percentiles sort a snapshot on demand.
type latencyRing struct {
	mu  sync.Mutex
	buf [latencyWindow]float64
	n   int64 // total ever recorded; buf holds the last min(n, window)
}

func (l *latencyRing) add(ms float64) {
	l.mu.Lock()
	l.buf[l.n%latencyWindow] = ms
	l.n++
	l.mu.Unlock()
}

// LatencyStats summarizes the recent-latency window for /statsz.
type LatencyStats struct {
	Count int64   `json:"count"` // total requests measured (window holds the tail)
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

func (l *latencyRing) snapshot() LatencyStats {
	l.mu.Lock()
	n := l.n
	size := int(min(n, latencyWindow))
	samples := make([]float64, size)
	copy(samples, l.buf[:size])
	l.mu.Unlock()

	st := LatencyStats{Count: n}
	if size == 0 {
		return st
	}
	sort.Float64s(samples)
	// Nearest-rank percentiles over the window.
	rank := func(p float64) float64 {
		i := int(p*float64(size)+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= size {
			i = size - 1
		}
		return samples[i]
	}
	st.P50MS = rank(0.50)
	st.P90MS = rank(0.90)
	st.P99MS = rank(0.99)
	st.MaxMS = samples[size-1]
	return st
}

// stats holds the server's monotonic counters. Everything is atomic so the
// hot path never contends on more than the latency ring's mutex.
type stats struct {
	requests    atomic.Int64 // decoded, valid /optimize requests
	completed   atomic.Int64 // 200s
	infeasible  atomic.Int64 // 200s reporting no feasible schedule
	badRequests atomic.Int64 // 400s
	rejected    atomic.Int64 // 429s (queue full) and 503s (draining)
	cancelled   atomic.Int64 // client disconnects and request timeouts
	failed      atomic.Int64 // 500s
	coalesced   atomic.Int64 // requests served by another request's flight

	// analyticPrunes accumulates milp.Result.AnalyticPrunes over every solve
	// the server reported (cached responses replay the artifact's count, so
	// warm and cold servers agree for the same request stream).
	analyticPrunes atomic.Int64

	latency latencyRing
}

// Stats is the /statsz document.
type Stats struct {
	UptimeS float64 `json:"uptime_s"`

	Requests    int64 `json:"requests"`
	Completed   int64 `json:"completed"`
	Infeasible  int64 `json:"infeasible"`
	BadRequests int64 `json:"bad_requests"`
	Rejected    int64 `json:"rejected"`
	Cancelled   int64 `json:"cancelled"`
	Failed      int64 `json:"failed"`
	Coalesced   int64 `json:"coalesced"`

	// AnalyticPrunes is the running total of branch-and-bound children the
	// analytic dual bound discarded across all solves this server reported.
	AnalyticPrunes int64 `json:"analytic_prunes"`

	// Workers/QueueDepth are the configured limits; Active/Queued the
	// current occupancy (Queued excludes the Active requests).
	Workers    int  `json:"workers"`
	QueueDepth int  `json:"queue_depth"`
	Active     int  `json:"active"`
	Queued     int  `json:"queued"`
	Draining   bool `json:"draining"`

	Latency LatencyStats `json:"latency"`

	// Cache aggregates the pipeline manifest per stage: misses are real
	// simulations/solves, disk and memory hits were served from artifacts.
	Cache map[pipeline.Kind]pipeline.KindStats `json:"cache"`

	// CacheCodec is the disk store's write format ("binary" or "json");
	// empty when the server runs memory-only.
	CacheCodec string `json:"cache_codec,omitempty"`

	// Store is the disk store's on-disk footprint and eviction gauges;
	// absent when the server runs memory-only.
	Store *StoreStats `json:"store,omitempty"`
}

// StoreStats is the /statsz store gauge group: the on-disk footprint per
// artifact kind plus this process's compaction/eviction totals.
type StoreStats struct {
	Dir            string                                   `json:"dir"`
	TotalArtifacts int                                      `json:"total_artifacts"`
	TotalBytes     int64                                    `json:"total_bytes"`
	Kinds          map[pipeline.Kind]pipeline.KindDiskStats `json:"kinds,omitempty"`

	// BudgetBytes is the configured compaction budget (0: compaction off).
	BudgetBytes int64 `json:"budget_bytes,omitempty"`

	Evictions pipeline.EvictionStats `json:"evictions"`
}
