package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ctdvs/internal/exp"
	"ctdvs/internal/pipeline"
)

// testBench is small enough that a full profile+solve+measure at the test
// scale finishes in well under a second.
const testBench = "adpcm/encode"

// newTestServer builds a server over a fresh test-scale config; dir != ""
// attaches a disk artifact store.
func newTestServer(t testing.TB, dir string, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	cfg := exp.NewConfig(0.02)
	if dir != "" {
		store, err := pipeline.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Pipeline = pipeline.NewRunner(store)
	}
	s := New(cfg, opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postOptimize sends one request body and returns the status code and body.
func postOptimize(t testing.TB, ts *httptest.Server, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/optimize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// decodeOK decodes a 200 response body.
func decodeOK(t testing.TB, status int, body []byte) *Response {
	t.Helper()
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	var r Response
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	return &r
}

// canonical re-marshals a response with the nondeterministic elapsed time
// zeroed, for bit-identity comparisons.
func canonical(t testing.TB, body []byte) string {
	t.Helper()
	var r Response
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	r.ElapsedMS = 0
	out, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestOptimizeValidRequest(t *testing.T) {
	s, ts := newTestServer(t, "", Options{})
	status, body := postOptimize(t, ts, fmt.Sprintf(`{"bench":%q,"deadline":3}`, testBench))
	r := decodeOK(t, status, body)

	if r.Bench != testBench {
		t.Errorf("bench = %q, want %q", r.Bench, testBench)
	}
	if r.DeadlineUS <= 0 {
		t.Errorf("deadline_us = %v, want > 0", r.DeadlineUS)
	}
	if r.Solver == nil || r.Solver.Nodes < 1 {
		t.Errorf("solver stats missing or empty: %+v", r.Solver)
	}
	if r.Measured == nil {
		t.Fatal("measured outcome missing")
	}
	if !r.Measured.MeetsDeadline {
		t.Errorf("optimized schedule misses its own deadline: %+v", r.Measured)
	}
	if r.Baseline == nil || r.Baseline.EnergyUJ <= 0 {
		t.Errorf("baseline missing or empty: %+v", r.Baseline)
	}
	if r.Schedule != nil {
		t.Error("schedule included without include_schedule")
	}

	st := s.Stats()
	if st.Requests != 1 || st.Completed != 1 || st.Failed != 0 {
		t.Errorf("stats = %+v, want 1 request, 1 completed", st)
	}
	if st.Cache[pipeline.StageSolve].Misses != 1 {
		t.Errorf("solve misses = %d, want 1", st.Cache[pipeline.StageSolve].Misses)
	}
}

func TestOptimizeRejectsBadRequests(t *testing.T) {
	s, ts := newTestServer(t, "", Options{})
	cases := []struct {
		name string
		body string
	}{
		{"malformed JSON", `{"bench":`},
		{"unknown field", fmt.Sprintf(`{"bench":%q,"frobnicate":1}`, testBench)},
		{"trailing data", fmt.Sprintf(`{"bench":%q} {}`, testBench)},
		{"missing bench", `{}`},
		{"unknown bench", `{"bench":"no/such"}`},
		{"bad levels", fmt.Sprintf(`{"bench":%q,"levels":5}`, testBench)},
		{"bad deadline number", fmt.Sprintf(`{"bench":%q,"deadline":9}`, testBench)},
		{"negative deadline_us", fmt.Sprintf(`{"bench":%q,"deadline_us":-1}`, testBench)},
		{"negative capacitance", fmt.Sprintf(`{"bench":%q,"capacitance_f":-1}`, testBench)},
		{"bad input index", fmt.Sprintf(`{"bench":%q,"input":99}`, testBench)},
		{"wrong JSON type", `[1,2,3]`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postOptimize(t, ts, tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s; want 400", status, body)
			}
			var e errorBody
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body %s not a JSON error envelope (%v)", body, err)
			}
		})
	}
	if got := s.Stats().BadRequests; got != int64(len(cases)) {
		t.Errorf("bad_requests = %d, want %d", got, len(cases))
	}

	resp, err := http.Get(ts.URL + "/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /optimize = %d, want 405", resp.StatusCode)
	}
}

// TestSingleFlight fires N identical concurrent requests and asserts exactly
// one simulation and one solve happened — the rest coalesced (at the flight
// table or, if a flight already finished, at the pipeline's in-memory slot) —
// and every client got the same bytes.
func TestSingleFlight(t *testing.T) {
	const n = 8
	s, ts := newTestServer(t, "", Options{Workers: 4, QueueDepth: n})
	body := fmt.Sprintf(`{"bench":%q,"deadline":2}`, testBench)

	start := make(chan struct{})
	results := make(chan string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			status, respBody := postOptimize(t, ts, body)
			if status != http.StatusOK {
				t.Errorf("status = %d, body %s", status, respBody)
				return
			}
			results <- canonical(t, respBody)
		}()
	}
	close(start)
	wg.Wait()
	close(results)

	var first string
	for r := range results {
		if first == "" {
			first = r
		} else if r != first {
			t.Fatalf("responses differ:\n%s\n%s", first, r)
		}
	}
	if first == "" {
		t.Fatal("no successful responses")
	}

	stats := s.cfg.Pipeline.Manifest().Stats()
	for _, kind := range []pipeline.Kind{pipeline.StageRecording, pipeline.StageProfile, pipeline.StageSolve} {
		if got := stats[kind].Misses; got != 1 {
			t.Errorf("%s misses = %d, want exactly 1", kind, got)
		}
	}
	if st := s.Stats(); st.Completed != n {
		t.Errorf("completed = %d, want %d", st.Completed, n)
	}
}

// TestBackpressure fills the worker and the queue with held requests, then
// asserts the next distinct request is rejected with 429 + Retry-After, the
// held requests still complete, and no goroutines leak.
func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, "", Options{Workers: 1, QueueDepth: 1, RetryAfter: 7 * time.Second})
	s.testHook = func(ctx context.Context, _ *Request) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}

	before := runtime.NumGoroutine()

	// Two distinct requests: one running (held in the hook), one queued.
	type result struct {
		status int
		body   []byte
	}
	held := make(chan result, 2)
	for i := 1; i <= 2; i++ {
		body := fmt.Sprintf(`{"bench":%q,"deadline":%d}`, testBench, i)
		go func() {
			status, b := postOptimize(t, ts, body)
			held <- result{status, b}
		}()
	}
	waitFor(t, "both requests admitted", func() bool { return len(s.queue) == 2 })

	status := 0
	var rejected *http.Response
	resp, err := http.Post(ts.URL+"/optimize", "application/json",
		strings.NewReader(fmt.Sprintf(`{"bench":%q,"deadline":4}`, testBench)))
	if err != nil {
		t.Fatal(err)
	}
	status = resp.StatusCode
	rejected = resp
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if status != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status = %d, body %s; want 429", status, body)
	}
	if got := rejected.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want \"7\"", got)
	}
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("429 body %s not a JSON error envelope", body)
	}

	close(release)
	for i := 0; i < 2; i++ {
		r := <-held
		if r.status != http.StatusOK {
			t.Errorf("held request: status = %d, body %s", r.status, r.body)
		}
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}

	// Everything spawned for those requests must wind down. Idle HTTP
	// keep-alive connections are reaped first so only real leaks remain.
	waitFor(t, "goroutines drained", func() bool {
		http.DefaultClient.CloseIdleConnections()
		ts.CloseClientConnections()
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}

// TestRequestTimeout holds the worker past a request's timeout_ms and
// asserts the client gets 504, the execution context is cancelled, and the
// server keeps serving afterwards.
func TestRequestTimeout(t *testing.T) {
	release := make(chan struct{})
	hookCtxDone := make(chan struct{}, 1)
	s, ts := newTestServer(t, "", Options{Workers: 1})
	s.testHook = func(ctx context.Context, _ *Request) {
		select {
		case <-release:
		case <-ctx.Done():
			hookCtxDone <- struct{}{}
		}
	}

	status, body := postOptimize(t, ts,
		fmt.Sprintf(`{"bench":%q,"deadline":2,"timeout_ms":50}`, testBench))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s; want 504", status, body)
	}
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("504 body %s not a JSON error envelope", body)
	}
	// The abandoned execution's context must be cancelled once its only
	// waiter timed out.
	select {
	case <-hookCtxDone:
	case <-time.After(5 * time.Second):
		t.Fatal("execution context was never cancelled")
	}
	if got := s.Stats().Cancelled; got != 1 {
		t.Errorf("cancelled = %d, want 1", got)
	}

	// The server recovers: with the hook released, the same request succeeds.
	close(release)
	status, body = postOptimize(t, ts, fmt.Sprintf(`{"bench":%q,"deadline":2}`, testBench))
	decodeOK(t, status, body)
}

// TestClientDisconnectCancelsExecution drops the client mid-execution and
// asserts the server aborts the work instead of finishing it for nobody.
func TestClientDisconnectCancelsExecution(t *testing.T) {
	admitted := make(chan struct{})
	hookCtxDone := make(chan struct{}, 1)
	s, ts := newTestServer(t, "", Options{Workers: 1})
	s.testHook = func(ctx context.Context, _ *Request) {
		close(admitted)
		<-ctx.Done()
		hookCtxDone <- struct{}{}
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/optimize",
		strings.NewReader(fmt.Sprintf(`{"bench":%q,"deadline":2}`, testBench)))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	<-admitted
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("client request succeeded despite cancellation")
	}
	select {
	case <-hookCtxDone:
	case <-time.After(5 * time.Second):
		t.Fatal("server never cancelled the abandoned execution")
	}
	waitFor(t, "cancellation counted", func() bool { return s.Stats().Cancelled == 1 })
}

// TestDrain verifies graceful shutdown: draining rejects new work with 503
// but in-flight requests run to completion and get their responses.
func TestDrain(t *testing.T) {
	release := make(chan struct{})
	admitted := make(chan struct{})
	s, ts := newTestServer(t, "", Options{Workers: 1})
	s.testHook = func(ctx context.Context, _ *Request) {
		close(admitted)
		select {
		case <-release:
		case <-ctx.Done():
		}
	}

	type result struct {
		status int
		body   []byte
	}
	inFlight := make(chan result, 1)
	go func() {
		status, body := postOptimize(t, ts, fmt.Sprintf(`{"bench":%q,"deadline":2}`, testBench))
		inFlight <- result{status, body}
	}()
	<-admitted

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	waitFor(t, "draining flag set", s.Draining)

	// New work is turned away while draining.
	status, body := postOptimize(t, ts, fmt.Sprintf(`{"bench":%q,"deadline":4}`, testBench))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status = %d, body %s; want 503", status, body)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain = %d, want 503", resp.StatusCode)
	}

	// Drain must wait for the in-flight request, not abandon it.
	select {
	case <-drained:
		t.Fatal("Drain returned with a request still in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	r := <-inFlight
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status = %d, body %s", r.status, r.body)
	}
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never returned after the in-flight request finished")
	}
}

func TestHealthzAndStatsz(t *testing.T) {
	_, ts := newTestServer(t, "", Options{Workers: 3, QueueDepth: 5})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(bytes.TrimSpace(ok), []byte("ok")) {
		t.Errorf("healthz = %d %q", resp.StatusCode, ok)
	}

	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 3 || st.QueueDepth != 5 || st.Draining {
		t.Errorf("statsz = %+v", st)
	}
	if st.CacheCodec != "" {
		t.Errorf("memory-only server reports cache codec %q", st.CacheCodec)
	}

	// A disk-backed server surfaces its store's write format.
	s, _ := newTestServer(t, t.TempDir(), Options{Workers: 1, QueueDepth: 1})
	if got := s.Stats().CacheCodec; got != "binary" {
		t.Errorf("disk-backed cache codec = %q, want binary", got)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStatszStoreGauges: a disk-backed server reports its store's on-disk
// footprint and eviction gauges on /statsz; a memory-only server omits the
// group entirely.
func TestStatszStoreGauges(t *testing.T) {
	// Memory-only: no store group.
	s, _ := newTestServer(t, "", Options{})
	if st := s.Stats(); st.Store != nil {
		t.Errorf("memory-only server reports store gauges: %+v", st.Store)
	}

	dir := t.TempDir()
	s, ts := newTestServer(t, dir, Options{})
	status, body := postOptimize(t, ts, fmt.Sprintf(`{"bench":%q,"deadline":3}`, testBench))
	decodeOK(t, status, body)

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Store == nil {
		t.Fatal("disk-backed server omits store gauges")
	}
	if st.Store.Dir != dir {
		t.Errorf("store dir = %q, want %q", st.Store.Dir, dir)
	}
	if st.Store.TotalArtifacts < 1 || st.Store.TotalBytes <= 0 {
		t.Errorf("store footprint empty after a completed request: %+v", st.Store)
	}
	if len(st.Store.Kinds) == 0 {
		t.Error("store gauges missing per-kind breakdown")
	}
	var sum int
	for _, ks := range st.Store.Kinds {
		sum += ks.Artifacts
	}
	if sum != st.Store.TotalArtifacts {
		t.Errorf("per-kind artifacts sum to %d, total says %d", sum, st.Store.TotalArtifacts)
	}
	if st.Store.BudgetBytes != 0 || st.Store.Evictions.Compactions != 0 {
		t.Errorf("unconfigured compaction reports activity: %+v", st.Store)
	}
}

// TestServerCompactLoop: with a byte budget configured, the background
// compaction loop evicts until the store fits, the eviction gauges move, and
// requests keep completing correctly throughout.
func TestServerCompactLoop(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, dir, Options{
		StoreBudgetBytes: 1, // unsatisfiable: every pass must evict something
		CompactInterval:  5 * time.Millisecond,
	})
	status, body := postOptimize(t, ts, fmt.Sprintf(`{"bench":%q,"deadline":3}`, testBench))
	first := canonical(t, body)
	decodeOK(t, status, body)

	waitFor(t, "background compaction", func() bool {
		ev := s.Stats().Store.Evictions
		return ev.Compactions >= 1 && ev.EvictedArtifacts >= 1
	})
	if got := s.Stats().Store.BudgetBytes; got != 1 {
		t.Errorf("budget gauge = %d, want 1", got)
	}

	// The cache was evicted underneath the server; a repeat request must
	// recompute to the identical answer (evictions cost work, not answers).
	status, body = postOptimize(t, ts, fmt.Sprintf(`{"bench":%q,"deadline":3}`, testBench))
	decodeOK(t, status, body)
	if canonical(t, body) != first {
		t.Error("response changed after compaction evicted the cache")
	}

	// Drain stops the loop; the gauges stop moving afterwards.
	s.Drain()
	ev := s.Stats().Store.Evictions
	time.Sleep(20 * time.Millisecond)
	if after := s.Stats().Store.Evictions; after.Compactions != ev.Compactions {
		t.Errorf("compactions advanced after Drain: %d -> %d", ev.Compactions, after.Compactions)
	}
}
