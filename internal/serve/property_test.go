package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"ctdvs/internal/core"
	"ctdvs/internal/exp"
	"ctdvs/internal/milp"
	"ctdvs/internal/pipeline"
	"ctdvs/internal/schedfile"
	"ctdvs/internal/volt"
)

// cliConfig is a fresh experiment config over dir's artifact store — what
// `dvs-opt -scale 0.02 -cache-dir dir` builds.
func cliConfig(t *testing.T, dir string) *exp.Config {
	t.Helper()
	store, err := pipeline.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := exp.NewConfig(0.02)
	cfg.Pipeline = pipeline.NewRunner(store)
	return cfg
}

// cliFlow replays cmd/dvs-opt's exact sequence — profile, deadline
// resolution, optimize, measure, savings — through the library, and shapes
// the outcome as a Response. It is the reference the served responses are
// held bit-identical to.
func cliFlow(t *testing.T, cfg *exp.Config, req *Request) *Response {
	t.Helper()
	spec, err := cfg.Spec(req.Bench)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := cfg.Profile(req.Bench, req.Input, req.Levels)
	if err != nil {
		t.Fatal(err)
	}
	dl := req.DeadlineUS
	if dl == 0 {
		n := pr.Modes.Len()
		dl = spec.Deadline(req.Deadline, pr.TotalTimeUS[n-1], pr.TotalTimeUS[0])
	}
	reg := volt.DefaultRegulator().WithCapacitance(req.CapacitanceF)
	opts := &core.Options{
		Regulator:         reg,
		NoTransitionCosts: req.NoTransitionCosts,
		BlockBased:        req.BlockBased,
		MILP:              &milp.Options{TimeLimit: 2 * time.Minute}, // dvs-opt -solve-limit default
	}
	if req.NoFilter {
		opts.FilterTail = -1
	}
	res, err := cfg.OptimizeSingle(pr, dl, opts)
	if err != nil {
		t.Fatal(err)
	}
	resp := &Response{
		Bench:             spec.Name,
		Input:             spec.Inputs[req.Input].Name,
		Levels:            req.Levels,
		DeadlineUS:        dl,
		PredictedEnergyUJ: res.PredictedEnergyUJ,
		PredictedTimeUS:   res.PredictedTimeUS[0],
		IndependentEdges:  res.IndependentEdges,
		TotalEdges:        res.TotalEdges,
		Solver: &SolverStats{
			Status:         res.Solver.Status.String(),
			Nodes:          res.Solver.Nodes,
			LPIters:        res.Solver.LPIters,
			SolveTimeNS:    res.Solver.SolveTime.Nanoseconds(),
			WarmSolves:     res.Solver.WarmSolves,
			ColdSolves:     res.Solver.ColdSolves,
			WarmFallbacks:  res.Solver.WarmFallbacks,
			LPPivots:       res.Solver.LPPivots,
			AnalyticPrunes: res.Solver.AnalyticPrunes,
			ObjectiveUJ:    res.Solver.Objective,
		},
	}
	if req.IncludeSchedule {
		f, err := schedfile.New(spec.Name, res.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		resp.Schedule = f
	}
	ev, err := cfg.Measure(pr, res.Schedule, dl)
	if err != nil {
		t.Fatal(err)
	}
	resp.Measured = &Measured{Run: ev.Run, MeetsDeadline: ev.MeetsDeadline, SlackUS: ev.SlackUS}
	if mode, baseE, ok := pr.BestSingleMode(dl); ok {
		sv, err := cfg.Savings(pr, res.Schedule, dl, reg)
		if err != nil {
			t.Fatal(err)
		}
		resp.Baseline = &Baseline{Mode: pr.Modes.Mode(mode).String(), EnergyUJ: baseE, Savings: sv}
	}
	return resp
}

func marshalResponse(t *testing.T, r *Response) string {
	t.Helper()
	c := *r
	c.ElapsedMS = 0
	out, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestServerMatchesCLI holds the served response bit-identical (modulo
// elapsed time) to the dvs-opt flow for the same request, in both directions
// over one shared artifact store:
//
//   - cold server, warm CLI: the server populates the cache, the CLI reads
//     it and must reconstruct the same response;
//   - warm server: a second, fresh server over the same store must answer
//     from artifacts alone (zero misses) with the same bytes.
func TestServerMatchesCLI(t *testing.T) {
	dir := t.TempDir()
	reqJSON := fmt.Sprintf(`{"bench":%q,"deadline":2,"include_schedule":true}`, testBench)
	req, err := DecodeRequest(strings.NewReader(reqJSON))
	if err != nil {
		t.Fatal(err)
	}

	// Cold server populates dir.
	coldSrv, coldTS := newTestServer(t, dir, Options{})
	status, body := postOptimize(t, coldTS, reqJSON)
	cold := marshalResponse(t, decodeOK(t, status, body))
	if got := coldSrv.cfg.Pipeline.Manifest().Stats()[pipeline.StageSolve].Misses; got != 1 {
		t.Fatalf("cold server solve misses = %d, want 1", got)
	}

	// CLI flow over the same store must be warm and bit-identical.
	cliCfg := cliConfig(t, dir)
	cli := marshalResponse(t, cliFlow(t, cliCfg, req))
	if !cliCfg.Pipeline.Manifest().AllHits() {
		t.Error("CLI flow missed the cache the server populated")
	}
	if cli != cold {
		t.Errorf("CLI response differs from cold served response:\ncli:  %s\nsrv:  %s", cli, cold)
	}

	// A fresh server over the same store answers warm with the same bytes.
	warmSrv, warmTS := newTestServer(t, dir, Options{})
	status, body = postOptimize(t, warmTS, reqJSON)
	warm := marshalResponse(t, decodeOK(t, status, body))
	if !warmSrv.cfg.Pipeline.Manifest().AllHits() {
		t.Error("warm server recomputed instead of reading artifacts")
	}
	if warm != cold {
		t.Errorf("warm served response differs from cold:\nwarm: %s\ncold: %s", warm, cold)
	}

	// And the inverse population order: a CLI-populated store serves the
	// same bytes too. Across *independent* cold solves only the measured
	// solve wall time may differ, so that one field is masked here (within
	// one store it is part of the artifact and stays bit-identical).
	dir2 := t.TempDir()
	cli2resp := cliFlow(t, cliConfig(t, dir2), req)
	cli2 := marshalResponse(t, cli2resp)
	maskSolveTime := func(s string) string {
		var r Response
		if err := json.Unmarshal([]byte(s), &r); err != nil {
			t.Fatal(err)
		}
		if r.Solver != nil {
			r.Solver.SolveTimeNS = 0
		}
		out, err := json.Marshal(&r)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	if maskSolveTime(cli2) != maskSolveTime(cli) {
		t.Fatalf("CLI flow is not deterministic across stores:\n%s\n%s", cli2, cli)
	}
	srv2, ts2 := newTestServer(t, dir2, Options{})
	status, body = postOptimize(t, ts2, reqJSON)
	served2 := marshalResponse(t, decodeOK(t, status, body))
	if !srv2.cfg.Pipeline.Manifest().AllHits() {
		t.Error("server missed the cache the CLI populated")
	}
	if served2 != cli2 {
		t.Errorf("served response differs from CLI-populated artifacts:\nsrv: %s\ncli: %s", served2, cli2)
	}
}
