package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"ctdvs/internal/exp"
	"ctdvs/internal/schedfile"
	"ctdvs/internal/sim"
)

// Request is the wire form of one optimization request: which workload to
// optimize, under what deadline and regulator, and what to return. The
// zero-ish defaults mirror dvs-opt's flags, so a request body of
// {"bench":"gsm/encode"} asks for exactly what `dvs-opt -bench gsm/encode`
// computes.
type Request struct {
	// Bench names the workload (e.g. "mpeg/decode"); Input indexes its
	// profiling inputs.
	Bench string `json:"bench"`
	Input int    `json:"input"`
	// Levels is the voltage-level count (3, 7 or 13; default 3).
	Levels int `json:"levels"`
	// Deadline is the paper deadline number (1=tight .. 5=lax, default 3);
	// DeadlineUS, when positive, overrides it with an explicit deadline.
	Deadline   int     `json:"deadline"`
	DeadlineUS float64 `json:"deadline_us"`
	// CapacitanceF is the regulator capacitance in farads (default 10e-6).
	CapacitanceF float64 `json:"capacitance_f"`
	// Formulation ablations, mirroring dvs-opt's flags.
	NoFilter          bool `json:"no_filter"`
	NoTransitionCosts bool `json:"no_transition_costs"`
	BlockBased        bool `json:"block_based"`
	// SkipMeasure omits the validation simulation (and with it the measured
	// outcome and baseline savings) from the response.
	SkipMeasure bool `json:"skip_measure"`
	// IncludeSchedule embeds the full per-edge schedule file in the response.
	IncludeSchedule bool `json:"include_schedule"`
	// TimeoutMS bounds this request's wall time (0 uses the server default).
	// The timeout cancels queue waits, simulations and the branch-and-bound
	// search; it never changes artifact identity.
	TimeoutMS int64 `json:"timeout_ms"`
	// Graph, when present, asks for a multi-core task-graph optimization
	// instead of a single benchmark; Bench/Input/Deadline are then unused
	// (DeadlineUS still overrides the graph's own deadline).
	Graph *GraphRequest `json:"graph,omitempty"`
}

// GraphRequest selects a task-graph workload: either a corpus graph by name,
// or an inline DAG of benchmark tasks. Inline topology is validated — cycles,
// dangling edges and oversized task counts are rejected — before any
// program-scale work happens.
type GraphRequest struct {
	// Name selects a corpus graph (see workloads.Graphs); mutually exclusive
	// with the inline fields below.
	Name string `json:"name,omitempty"`
	// Cores is the target core count for an inline graph.
	Cores int `json:"cores,omitempty"`
	// DeadlineFrac positions the deadline in the [all-fastest, all-slowest]
	// placed-makespan span; the request's deadline_us overrides it.
	DeadlineFrac float64 `json:"deadline_frac,omitempty"`
	// Tasks and Edges define the inline DAG.
	Tasks []schedfile.GraphTaskJSON `json:"tasks,omitempty"`
	Edges [][2]int                  `json:"edges,omitempty"`
}

// normalize applies defaults in place.
func (q *Request) normalize() {
	if q.Levels == 0 {
		q.Levels = 3
	}
	if q.Deadline == 0 {
		q.Deadline = 3
	}
	if q.CapacitanceF == 0 {
		q.CapacitanceF = 10e-6
	}
}

// validate rejects requests no handler stage would accept. Workload
// existence is checked separately (it needs the experiment config).
func (q *Request) validate() error {
	if q.Graph != nil {
		return q.validateGraph()
	}
	switch {
	case q.Bench == "":
		return errors.New("bench is required")
	case q.Input < 0:
		return fmt.Errorf("input %d is negative", q.Input)
	case q.Levels != 3 && q.Levels != 7 && q.Levels != 13:
		return fmt.Errorf("levels must be 3, 7 or 13 (got %d)", q.Levels)
	case q.DeadlineUS < 0 || math.IsInf(q.DeadlineUS, 0) || math.IsNaN(q.DeadlineUS):
		return fmt.Errorf("deadline_us %v is not a non-negative duration", q.DeadlineUS)
	case q.DeadlineUS == 0 && (q.Deadline < 1 || q.Deadline > 5):
		return fmt.Errorf("deadline number must be 1..5 (got %d)", q.Deadline)
	case q.CapacitanceF <= 0 || math.IsInf(q.CapacitanceF, 0) || math.IsNaN(q.CapacitanceF):
		return fmt.Errorf("capacitance_f %v is not a positive capacitance", q.CapacitanceF)
	case q.TimeoutMS < 0:
		return fmt.Errorf("timeout_ms %d is negative", q.TimeoutMS)
	}
	return nil
}

// validateGraph rejects malformed task-graph requests: conflicting selector
// spellings, bad core counts, missing deadlines, and — via the shared
// schedfile topology validator — cyclic graphs, dangling edges and oversized
// task counts, all before any benchmark program is built.
func (q *Request) validateGraph() error {
	g := q.Graph
	switch {
	case q.Bench != "":
		return errors.New("bench and graph are mutually exclusive")
	case q.Levels != 3 && q.Levels != 7 && q.Levels != 13:
		return fmt.Errorf("levels must be 3, 7 or 13 (got %d)", q.Levels)
	case q.DeadlineUS < 0 || math.IsInf(q.DeadlineUS, 0) || math.IsNaN(q.DeadlineUS):
		return fmt.Errorf("deadline_us %v is not a non-negative duration", q.DeadlineUS)
	case q.CapacitanceF <= 0 || math.IsInf(q.CapacitanceF, 0) || math.IsNaN(q.CapacitanceF):
		return fmt.Errorf("capacitance_f %v is not a positive capacitance", q.CapacitanceF)
	case q.TimeoutMS < 0:
		return fmt.Errorf("timeout_ms %d is negative", q.TimeoutMS)
	}
	if g.Name != "" {
		if g.Cores != 0 || g.DeadlineFrac != 0 || len(g.Tasks) != 0 || len(g.Edges) != 0 {
			return errors.New("graph.name and an inline graph are mutually exclusive")
		}
		return nil
	}
	switch {
	case g.Cores < 1:
		return fmt.Errorf("graph.cores must be at least 1 (got %d)", g.Cores)
	case g.DeadlineFrac < 0 || g.DeadlineFrac > 1 || math.IsNaN(g.DeadlineFrac):
		return fmt.Errorf("graph.deadline_frac %v outside [0, 1]", g.DeadlineFrac)
	case q.DeadlineUS == 0 && g.DeadlineFrac == 0:
		return errors.New("a graph request needs deadline_us or graph.deadline_frac")
	}
	if err := schedfile.ValidateTopology(len(g.Tasks), g.Edges); err != nil {
		return err
	}
	for i, task := range g.Tasks {
		switch {
		case task.Bench == "":
			return fmt.Errorf("graph task %d names no benchmark", i)
		case task.Input < 0:
			return fmt.Errorf("graph task %d selects negative input %d", i, task.Input)
		case task.ReleaseUS < 0 || math.IsInf(task.ReleaseUS, 0) || math.IsNaN(task.ReleaseUS):
			return fmt.Errorf("graph task %d has release %v", i, task.ReleaseUS)
		case task.DeadlineUS < 0 || math.IsInf(task.DeadlineUS, 0) || math.IsNaN(task.DeadlineUS):
			return fmt.Errorf("graph task %d has deadline %v", i, task.DeadlineUS)
		}
	}
	return nil
}

// DecodeRequest strictly decodes one request from r: unknown fields,
// malformed JSON and trailing garbage are errors, defaults are applied, and
// the result is validated. It never panics, whatever the input — the fuzz
// harness holds it to that.
func DecodeRequest(r io.Reader) (*Request, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	q := &Request{}
	if err := dec.Decode(q); err != nil {
		return nil, fmt.Errorf("decode request: %w", err)
	}
	// Exactly one JSON value per body.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return nil, errors.New("decode request: trailing data after request object")
	}
	q.normalize()
	if err := q.validate(); err != nil {
		return nil, fmt.Errorf("invalid request: %w", err)
	}
	return q, nil
}

// key is the canonical identity of a normalized request, used to coalesce
// identical in-flight requests before they consume queue slots. Everything
// that can change the response participates; the timeout does not (it
// changes whether a response arrives, never which response).
func (q *Request) key() string {
	var b strings.Builder
	b.WriteString(strconv.Quote(q.Bench))
	fmt.Fprintf(&b, "|%d|%d|%d", q.Input, q.Levels, q.Deadline)
	fmt.Fprintf(&b, "|%s|%s",
		strconv.FormatFloat(q.DeadlineUS, 'g', -1, 64),
		strconv.FormatFloat(q.CapacitanceF, 'g', -1, 64))
	fmt.Fprintf(&b, "|%t|%t|%t|%t|%t",
		q.NoFilter, q.NoTransitionCosts, q.BlockBased, q.SkipMeasure, q.IncludeSchedule)
	if g := q.Graph; g != nil {
		fmt.Fprintf(&b, "|graph:%s|%d|%s",
			strconv.Quote(g.Name), g.Cores,
			strconv.FormatFloat(g.DeadlineFrac, 'g', -1, 64))
		for _, task := range g.Tasks {
			fmt.Fprintf(&b, "|t:%s,%d,%s,%s",
				strconv.Quote(task.Bench), task.Input,
				strconv.FormatFloat(task.ReleaseUS, 'g', -1, 64),
				strconv.FormatFloat(task.DeadlineUS, 'g', -1, 64))
		}
		for _, e := range g.Edges {
			fmt.Fprintf(&b, "|e:%d,%d", e[0], e[1])
		}
	}
	return b.String()
}

// SolverStats is the response's view of the branch-and-bound statistics. It
// mirrors the solve artifact, so warm responses are bit-identical to the
// cold responses that populated the cache.
type SolverStats struct {
	Status        string `json:"status"`
	Nodes         int    `json:"nodes"`
	LPIters       int    `json:"lp_iters"`
	SolveTimeNS   int64  `json:"solve_time_ns"`
	WarmSolves    int    `json:"warm_solves"`
	ColdSolves    int    `json:"cold_solves"`
	WarmFallbacks int    `json:"warm_fallbacks"`
	LPPivots      int    `json:"lp_pivots"`
	// AnalyticPrunes counts branch-and-bound children the Li–Yao–Yuan
	// analytic dual bound discarded before any LP solve.
	AnalyticPrunes int     `json:"analytic_prunes"`
	ObjectiveUJ    float64 `json:"objective_uj"`
}

// Measured is the validation simulation's outcome.
type Measured struct {
	Run           exp.RunSummary `json:"run"`
	MeetsDeadline bool           `json:"meets_deadline"`
	SlackUS       float64        `json:"slack_us"`
}

// Baseline reports the best single-mode schedule meeting the deadline and
// the DVS schedule's energy savings against it.
type Baseline struct {
	Mode     string  `json:"mode"`
	EnergyUJ float64 `json:"energy_uj"`
	Savings  float64 `json:"savings"`
}

// Response is the wire form of one optimization result. Every field except
// ElapsedMS is deterministic for a given request, scale and cache: the
// property tests assert responses are bit-identical to what dvs-opt computes
// from the same artifact store.
type Response struct {
	Bench      string  `json:"bench"`
	Input      string  `json:"input"`
	Levels     int     `json:"levels"`
	DeadlineUS float64 `json:"deadline_us"`

	// Infeasible reports that no mode assignment meets the deadline; all
	// result fields below it are absent in that case.
	Infeasible bool `json:"infeasible,omitempty"`

	PredictedEnergyUJ float64 `json:"predicted_energy_uj,omitempty"`
	PredictedTimeUS   float64 `json:"predicted_time_us,omitempty"`
	IndependentEdges  int     `json:"independent_edges,omitempty"`
	TotalEdges        int     `json:"total_edges,omitempty"`

	Solver   *SolverStats    `json:"solver,omitempty"`
	Measured *Measured       `json:"measured,omitempty"`
	Baseline *Baseline       `json:"baseline,omitempty"`
	Schedule *schedfile.File `json:"schedule,omitempty"`

	// Graph carries the task-graph result when the request asked for one;
	// the single-program fields above are then absent.
	Graph *GraphResponse `json:"graph,omitempty"`

	// ElapsedMS is this server's wall time for the request — the only
	// nondeterministic field (zero it before comparing responses).
	ElapsedMS float64 `json:"elapsed_ms"`
}

// GraphMeasured is one task-graph execution's outcome.
type GraphMeasured struct {
	Run           exp.GraphRunSummary `json:"run"`
	MeetsDeadline bool                `json:"meets_deadline"`
	SlackUS       float64             `json:"slack_us"`
}

// GraphResponse is the task-graph half of a Response: the solved placement
// and ordering, the solver's exact predictions, and (unless skip_measure) the
// measured static execution plus the slack-reclaiming governed execution.
type GraphResponse struct {
	Name       string   `json:"name"`
	Cores      int      `json:"cores"`
	Tasks      []string `json:"tasks"`
	DeadlineUS float64  `json:"deadline_us"`
	// Degenerate reports that the 1-task/1-core request was answered by the
	// single-program optimizer (sharing its cache artifacts bit-for-bit).
	Degenerate bool `json:"degenerate,omitempty"`

	Placement []sim.TaskPlacement `json:"placement,omitempty"`
	Order     [][]int             `json:"order,omitempty"`
	Modes     []string            `json:"modes,omitempty"`

	PredictedEnergyUJ   float64 `json:"predicted_energy_uj,omitempty"`
	PredictedMakespanUS float64 `json:"predicted_makespan_us,omitempty"`

	Static   *GraphMeasured `json:"static,omitempty"`
	Governed *GraphMeasured `json:"governed,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}
