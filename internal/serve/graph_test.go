package serve

import (
	"fmt"
	"testing"

	"ctdvs/internal/pipeline"
)

// TestOptimizeGraphRequest runs a corpus task graph end to end through the
// HTTP surface: placement, predictions, the measured static execution and the
// slack-reclaiming governed execution all come back, and the governor's
// invariants (deadline met, energy no worse than static) hold on the wire.
func TestOptimizeGraphRequest(t *testing.T) {
	s, ts := newTestServer(t, "", Options{})
	status, body := postOptimize(t, ts, `{"graph":{"name":"fork-join-2w"}}`)
	r := decodeOK(t, status, body)

	g := r.Graph
	if g == nil {
		t.Fatalf("no graph block in response: %s", body)
	}
	if g.Name != "fork-join-2w" || g.Cores != 2 || len(g.Tasks) != 4 {
		t.Errorf("graph header = %q/%d cores/%d tasks, want fork-join-2w/2/4", g.Name, g.Cores, len(g.Tasks))
	}
	if g.DeadlineUS <= 0 || r.DeadlineUS != g.DeadlineUS {
		t.Errorf("deadline_us = %v (top-level %v), want positive and equal", g.DeadlineUS, r.DeadlineUS)
	}
	if len(g.Placement) != 4 || len(g.Modes) != 4 {
		t.Errorf("placement/modes lengths %d/%d, want 4/4", len(g.Placement), len(g.Modes))
	}
	if g.PredictedEnergyUJ <= 0 || g.PredictedMakespanUS <= 0 {
		t.Errorf("predictions missing: %v µJ, %v µs", g.PredictedEnergyUJ, g.PredictedMakespanUS)
	}
	if r.Solver == nil || r.Solver.Nodes < 1 {
		t.Errorf("solver stats missing or empty: %+v", r.Solver)
	}
	if g.Static == nil || g.Governed == nil {
		t.Fatalf("measured executions missing: static %v, governed %v", g.Static, g.Governed)
	}
	if !g.Static.MeetsDeadline || !g.Governed.MeetsDeadline {
		t.Errorf("deadline missed: static %+v, governed %+v", g.Static, g.Governed)
	}
	if g.Governed.Run.EnergyUJ > g.Static.Run.EnergyUJ {
		t.Errorf("governed energy %v exceeds static %v", g.Governed.Run.EnergyUJ, g.Static.Run.EnergyUJ)
	}
	// Measured static execution matches the solver's predicted timeline.
	if g.Static.Run.EnergyUJ != g.PredictedEnergyUJ || g.Static.Run.MakespanUS != g.PredictedMakespanUS {
		t.Errorf("measured (%v µJ, %v µs) != predicted (%v µJ, %v µs)",
			g.Static.Run.EnergyUJ, g.Static.Run.MakespanUS, g.PredictedEnergyUJ, g.PredictedMakespanUS)
	}

	st := s.Stats()
	if st.Cache[pipeline.StageGraphSolve].Misses != 1 {
		t.Errorf("graphsolve misses = %d, want 1", st.Cache[pipeline.StageGraphSolve].Misses)
	}
	if st.Cache[pipeline.StageGraphSim].Misses == 0 {
		t.Error("graphsim never ran")
	}
}

// TestOptimizeGraphInlineRequest drives an inline DAG (not a corpus graph)
// through the same flow.
func TestOptimizeGraphInlineRequest(t *testing.T) {
	_, ts := newTestServer(t, "", Options{})
	status, body := postOptimize(t, ts, fmt.Sprintf(
		`{"graph":{"cores":2,"deadline_frac":0.5,"tasks":[{"bench":%q},{"bench":%q},{"bench":%q}],"edges":[[0,1],[0,2]]}}`,
		testBench, "epic", "gsm/encode"))
	r := decodeOK(t, status, body)
	g := r.Graph
	if g == nil {
		t.Fatalf("no graph block in response: %s", body)
	}
	if g.Name != "inline" || g.Cores != 2 || len(g.Tasks) != 3 {
		t.Errorf("graph header = %q/%d cores/%d tasks, want inline/2/3", g.Name, g.Cores, len(g.Tasks))
	}
	if g.Static == nil || !g.Static.MeetsDeadline {
		t.Errorf("static execution missing or late: %+v", g.Static)
	}
}

// TestOptimizeGraphRejects holds the pre-queue validation line: malformed
// topology, conflicting selectors and unknown workloads are all 400s.
func TestOptimizeGraphRejects(t *testing.T) {
	s, ts := newTestServer(t, "", Options{})
	cases := []struct {
		name, body string
	}{
		{"bench and graph", `{"bench":"epic","graph":{"name":"chain-4"}}`},
		{"name and inline", `{"graph":{"name":"chain-4","cores":2}}`},
		{"unknown graph", `{"graph":{"name":"no-such-graph"}}`},
		{"no deadline", `{"graph":{"cores":1,"tasks":[{"bench":"epic"}]}}`},
		{"zero cores", `{"graph":{"cores":0,"deadline_frac":0.5,"tasks":[{"bench":"epic"}]}}`},
		{"cycle", `{"graph":{"cores":2,"deadline_frac":0.5,"tasks":[{"bench":"a"},{"bench":"b"}],"edges":[[0,1],[1,0]]}}`},
		{"dangling edge", `{"graph":{"cores":2,"deadline_frac":0.5,"tasks":[{"bench":"a"}],"edges":[[0,9]]}}`},
		{"self edge", `{"graph":{"cores":2,"deadline_frac":0.5,"tasks":[{"bench":"a"},{"bench":"b"}],"edges":[[1,1]]}}`},
		{"empty graph", `{"graph":{"cores":1,"deadline_frac":0.5}}`},
		{"unknown bench", `{"graph":{"cores":1,"deadline_frac":0.5,"tasks":[{"bench":"no-such-bench"}]}}`},
		{"input out of range", `{"graph":{"cores":1,"deadline_frac":0.5,"tasks":[{"bench":"epic","input":99}]}}`},
		{"negative release", `{"graph":{"cores":1,"deadline_frac":0.5,"tasks":[{"bench":"epic","release_us":-1}]}}`},
	}
	for _, tc := range cases {
		status, body := postOptimize(t, ts, tc.body)
		if status != 400 {
			t.Errorf("%s: status %d, body %s, want 400", tc.name, status, body)
		}
	}
	if st := s.Stats(); st.BadRequests != int64(len(cases)) {
		t.Errorf("bad_requests = %d, want %d", st.BadRequests, len(cases))
	}
}

// TestOptimizeGraphWarmRoundTrip is the serving half of the warm-cache
// acceptance criterion: a cold server answers a task-graph request writing
// artifacts to a disk store; a fresh server process over the same store
// answers the identical request purely from cache hits, bit-identically.
func TestOptimizeGraphWarmRoundTrip(t *testing.T) {
	dir := t.TempDir()
	req := `{"graph":{"name":"fork-join-2w"}}`

	coldSrv, coldTS := newTestServer(t, dir, Options{})
	coldStatus, coldBody := postOptimize(t, coldTS, req)
	decodeOK(t, coldStatus, coldBody)
	coldStats := coldSrv.cfg.Pipeline.Manifest().Stats()
	if coldStats[pipeline.StageGraphSolve].Misses == 0 || coldStats[pipeline.StageGraphSim].Misses == 0 {
		t.Fatalf("cold run should miss the graph stages: %+v", coldStats)
	}

	warmSrv, warmTS := newTestServer(t, dir, Options{})
	warmStatus, warmBody := postOptimize(t, warmTS, req)
	decodeOK(t, warmStatus, warmBody)
	if !warmSrv.cfg.Pipeline.Manifest().AllHits() {
		t.Error("warm server recomputed stages:")
		for _, r := range warmSrv.cfg.Pipeline.Manifest().Records() {
			if r.Misses > 0 {
				t.Errorf("  %s %s: %d misses", r.Stage, r.Key[:12], r.Misses)
			}
		}
	}
	if c, w := canonical(t, coldBody), canonical(t, warmBody); c != w {
		t.Errorf("warm response differs from cold:\ncold %s\nwarm %s", c, w)
	}
}

// TestOptimizeGraphDegenerateMatchesSingle is the bit-identity property on
// the wire: a 1-task/1-core graph request and a plain bench request for the
// same workload and deadline produce the same energy, objective and measured
// outcome, and the graph request warms entirely from the bench request's
// artifacts.
func TestOptimizeGraphDegenerateMatchesSingle(t *testing.T) {
	dir := t.TempDir()

	_, singleTS := newTestServer(t, dir, Options{})
	sStatus, sBody := postOptimize(t, singleTS, fmt.Sprintf(`{"bench":%q,"deadline":3}`, testBench))
	sResp := decodeOK(t, sStatus, sBody)

	graphSrv, graphTS := newTestServer(t, dir, Options{})
	gStatus, gBody := postOptimize(t, graphTS, fmt.Sprintf(
		`{"deadline_us":%v,"graph":{"cores":1,"deadline_frac":0,"tasks":[{"bench":%q}]}}`,
		sResp.DeadlineUS, testBench))
	gResp := decodeOK(t, gStatus, gBody)

	g := gResp.Graph
	if g == nil || !g.Degenerate {
		t.Fatalf("1-task/1-core request not routed degenerately: %s", gBody)
	}
	if g.PredictedEnergyUJ != sResp.PredictedEnergyUJ {
		t.Errorf("graph energy %v != single %v", g.PredictedEnergyUJ, sResp.PredictedEnergyUJ)
	}
	if gResp.Solver.ObjectiveUJ != sResp.Solver.ObjectiveUJ {
		t.Errorf("graph objective %v != single %v", gResp.Solver.ObjectiveUJ, sResp.Solver.ObjectiveUJ)
	}
	if g.Static == nil || sResp.Measured == nil {
		t.Fatal("measured outcomes missing")
	}
	if g.Static.Run.EnergyUJ != sResp.Measured.Run.EnergyUJ ||
		g.Static.Run.MakespanUS != sResp.Measured.Run.TimeUS {
		t.Errorf("graph execution (%v µJ, %v µs) != single (%v µJ, %v µs)",
			g.Static.Run.EnergyUJ, g.Static.Run.MakespanUS,
			sResp.Measured.Run.EnergyUJ, sResp.Measured.Run.TimeUS)
	}
	if !graphSrv.cfg.Pipeline.Manifest().AllHits() {
		t.Error("degenerate graph request recomputed stages the bench request cached:")
		for _, r := range graphSrv.cfg.Pipeline.Manifest().Records() {
			if r.Misses > 0 {
				t.Errorf("  %s %s: %d misses", r.Stage, r.Key[:12], r.Misses)
			}
		}
	}
}
