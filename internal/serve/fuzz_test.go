package serve

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// FuzzDecodeRequest holds the request decoder to its contract: whatever the
// bytes, it returns an error or a valid request — it never panics — and
// anything it accepts is a fixed point (marshal → decode is the identity on
// normalized requests).
func FuzzDecodeRequest(f *testing.F) {
	f.Add(`{"bench":"adpcm/encode"}`)
	f.Add(`{"bench":"gsm/encode","input":1,"levels":7,"deadline":5,"capacitance_f":1e-6}`)
	f.Add(`{"bench":"mpeg/decode","deadline_us":90000,"no_filter":true,"no_transition_costs":true,` +
		`"block_based":true,"skip_measure":true,"include_schedule":true,"timeout_ms":500}`)
	f.Add(`{"bench":""}`)
	f.Add(`{"bench":"x","levels":5}`)
	f.Add(`{"bench":"x","deadline":6}`)
	f.Add(`{"bench":"x","deadline_us":-1}`)
	f.Add(`{"bench":"x","unknown":1}`)
	f.Add(`{"bench":"x"} trailing`)
	f.Add(`[]`)
	f.Add(`null`)
	f.Add(``)
	f.Add(`{"bench":"x","capacitance_f":1e999}`)
	f.Add(`{"bench":"x","input":-1}`)
	// Task-graph requests: corpus by name, inline DAGs, and the rejection
	// cases (cycles, dangling edges, missing deadline, bench+graph conflict).
	f.Add(`{"graph":{"name":"fork-join-2w"}}`)
	f.Add(`{"graph":{"cores":2,"deadline_frac":0.5,` +
		`"tasks":[{"bench":"epic"},{"bench":"gsm/encode"}],"edges":[[0,1]]}}`)
	f.Add(`{"deadline_us":90000,"graph":{"cores":1,"tasks":[{"bench":"epic"}]}}`)
	f.Add(`{"bench":"epic","graph":{"name":"chain-4"}}`)
	f.Add(`{"graph":{"cores":2,"deadline_frac":0.5,` +
		`"tasks":[{"bench":"a"},{"bench":"b"}],"edges":[[0,1],[1,0]]}}`)
	f.Add(`{"graph":{"cores":2,"deadline_frac":0.5,"tasks":[{"bench":"a"}],"edges":[[0,9]]}}`)
	f.Add(`{"graph":{"cores":2,"tasks":[{"bench":"a"}]}}`)
	f.Add(`{"graph":{"name":"chain-4","cores":2}}`)

	f.Fuzz(func(t *testing.T, data string) {
		q, err := DecodeRequest(strings.NewReader(data))
		if err != nil {
			if q != nil {
				t.Fatal("error with non-nil request")
			}
			return
		}
		if err := q.validate(); err != nil {
			t.Fatalf("decoder accepted an invalid request %+v: %v", q, err)
		}
		// Accepted requests survive a marshal/decode round trip unchanged.
		enc, err := json.Marshal(q)
		if err != nil {
			t.Fatalf("accepted request failed to marshal: %v", err)
		}
		q2, err := DecodeRequest(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !reflect.DeepEqual(q, q2) {
			t.Fatalf("round trip changed the request:\nwas %+v\nnow %+v", q, q2)
		}
		if q.key() != q2.key() {
			t.Fatal("round trip changed the coalescing key")
		}
	})
}
