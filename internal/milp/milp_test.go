package milp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"ctdvs/internal/lp"
)

const tol = 1e-5

func solveOK(t *testing.T, p *Problem, opts *Options) *Result {
	t.Helper()
	res, err := Solve(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	return res
}

func TestPureLPPassThrough(t *testing.T) {
	// No integer variables: MILP must equal the LP optimum.
	p := lp.NewProblem()
	x := p.AddVariable(-3, 0, math.Inf(1))
	y := p.AddVariable(-5, 0, math.Inf(1))
	p.MustAddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.LE, 4)
	p.MustAddConstraint([]lp.Term{{Var: y, Coef: 2}}, lp.LE, 12)
	p.MustAddConstraint([]lp.Term{{Var: x, Coef: 3}, {Var: y, Coef: 2}}, lp.LE, 18)
	res := solveOK(t, &Problem{LP: p}, nil)
	if math.Abs(res.Objective+36) > tol {
		t.Errorf("obj = %v, want -36", res.Objective)
	}
	if res.Nodes != 1 {
		t.Errorf("nodes = %d, want 1", res.Nodes)
	}
}

func TestClassicKnapsack(t *testing.T) {
	// max 8a + 11b + 6c + 4d s.t. 5a + 7b + 4c + 3d <= 14, binary.
	// Optimum: b=c=d=1 (weight 14), value 21; the LP relaxation is
	// fractional (a=1, b=1, c=0.5), so branching is exercised.
	p := lp.NewProblem()
	vals := []float64{8, 11, 6, 4}
	wts := []float64{5, 7, 4, 3}
	var vars []int
	var cons []lp.Term
	for i := range vals {
		v := p.AddVariable(-vals[i], 0, 1)
		vars = append(vars, v)
		cons = append(cons, lp.Term{Var: v, Coef: wts[i]})
	}
	p.MustAddConstraint(cons, lp.LE, 14)
	res := solveOK(t, &Problem{LP: p, Integers: vars}, nil)
	if math.Abs(res.Objective+21) > tol {
		t.Errorf("obj = %v, want -21 (x=%v)", res.Objective, res.X)
	}
	for _, v := range vars {
		r := math.Round(res.X[v])
		if math.Abs(res.X[v]-r) > 1e-6 {
			t.Errorf("x[%d] = %v not integral", v, res.X[v])
		}
	}
}

func TestIntegerRounding(t *testing.T) {
	// max x + y s.t. 2x + y <= 5.5, x + 2y <= 5.5, integer.
	// LP relaxation: x=y=11/6; integer optimum x=y=1 obj 2... check: x=2,y=1:
	// 2*2+1=5<=5.5 ok, 2+2=4<=5.5 ok → obj 3. So optimum 3.
	p := lp.NewProblem()
	x := p.AddVariable(-1, 0, 10)
	y := p.AddVariable(-1, 0, 10)
	p.MustAddConstraint([]lp.Term{{Var: x, Coef: 2}, {Var: y, Coef: 1}}, lp.LE, 5.5)
	p.MustAddConstraint([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 2}}, lp.LE, 5.5)
	res := solveOK(t, &Problem{LP: p, Integers: []int{x, y}}, nil)
	if math.Abs(res.Objective+3) > tol {
		t.Errorf("obj = %v, want -3 (x=%v)", res.Objective, res.X)
	}
}

func TestInfeasibleInteger(t *testing.T) {
	// 0.4 <= x <= 0.6, x binary → infeasible.
	p := lp.NewProblem()
	x := p.AddVariable(1, 0, 1)
	p.MustAddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.GE, 0.4)
	p.MustAddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.LE, 0.6)
	res, err := Solve(&Problem{LP: p, Integers: []int{x}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestInfeasibleLP(t *testing.T) {
	p := lp.NewProblem()
	x := p.AddVariable(1, 0, 1)
	p.MustAddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.GE, 2)
	res, err := Solve(&Problem{LP: p, Integers: []int{x}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := lp.NewProblem()
	p.AddVariable(-1, 0, math.Inf(1))
	res, err := Solve(&Problem{LP: p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", res.Status)
	}
}

func TestBadIntegerIndex(t *testing.T) {
	p := lp.NewProblem()
	p.AddVariable(1, 0, 1)
	if _, err := Solve(&Problem{LP: p, Integers: []int{3}}, nil); err == nil {
		t.Error("expected error")
	}
	if _, err := Solve(&Problem{}, nil); err == nil {
		t.Error("expected error for nil LP")
	}
}

// TestSOS1ModeSelection mirrors the DVS structure: groups of binaries pick
// one mode each, with a shared deadline budget.
func TestSOS1ModeSelection(t *testing.T) {
	// Two regions, two modes. Mode 0: cheap+slow (E=1, T=10); mode 1:
	// costly+fast (E=4, T=5). Deadline 25: region budget allows slow+slow
	// (T=20). Deadline 16: must mix (15 = 10+5). Deadline 10: both fast.
	build := func() (*lp.Problem, [][]int) {
		p := lp.NewProblem()
		var groups [][]int
		for r := 0; r < 2; r++ {
			k0 := p.AddVariable(1, 0, 1)
			k1 := p.AddVariable(4, 0, 1)
			p.MustAddConstraint([]lp.Term{{Var: k0, Coef: 1}, {Var: k1, Coef: 1}}, lp.EQ, 1)
			groups = append(groups, []int{k0, k1})
		}
		return p, groups
	}
	addDeadline := func(p *lp.Problem, groups [][]int, d float64) {
		var terms []lp.Term
		for _, g := range groups {
			terms = append(terms, lp.Term{Var: g[0], Coef: 10}, lp.Term{Var: g[1], Coef: 5})
		}
		p.MustAddConstraint(terms, lp.LE, d)
	}
	cases := []struct {
		deadline float64
		wantObj  float64
	}{
		{25, 2}, // both slow
		{16, 5}, // one slow one fast
		{10, 8}, // both fast
	}
	for _, c := range cases {
		p, groups := build()
		addDeadline(p, groups, c.deadline)
		var ints []int
		for _, g := range groups {
			ints = append(ints, g...)
		}
		res := solveOK(t, &Problem{LP: p, Integers: ints, SOS1: groups}, nil)
		if math.Abs(res.Objective-c.wantObj) > tol {
			t.Errorf("deadline %v: obj = %v, want %v", c.deadline, res.Objective, c.wantObj)
		}
	}
}

// TestRandomVersusBruteForce compares B&B against exhaustive enumeration of
// binary assignments on small random MILPs.
func TestRandomVersusBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		nb := 2 + rng.Intn(4) // 2-5 binaries
		p := lp.NewProblem()
		var bins []int
		for j := 0; j < nb; j++ {
			bins = append(bins, p.AddVariable(rng.Float64()*4-2, 0, 1))
		}
		// One or two random LE constraints.
		type rec struct {
			coefs []float64
			rhs   float64
		}
		var recs []rec
		for i := 0; i < 1+rng.Intn(2); i++ {
			coefs := make([]float64, nb)
			terms := make([]lp.Term, nb)
			for j := 0; j < nb; j++ {
				coefs[j] = rng.Float64()*4 - 2
				terms[j] = lp.Term{Var: bins[j], Coef: coefs[j]}
			}
			rhs := rng.Float64()*3 - 0.5
			recs = append(recs, rec{coefs, rhs})
			p.MustAddConstraint(terms, lp.LE, rhs)
		}
		res, err := Solve(&Problem{LP: p, Integers: bins}, nil)
		if err != nil {
			t.Fatal(err)
		}

		// Brute force.
		bestObj := math.Inf(1)
		found := false
		for mask := 0; mask < 1<<nb; mask++ {
			feas := true
			for _, r := range recs {
				v := 0.0
				for j := 0; j < nb; j++ {
					if mask&(1<<j) != 0 {
						v += r.coefs[j]
					}
				}
				if v > r.rhs+1e-9 {
					feas = false
					break
				}
			}
			if !feas {
				continue
			}
			found = true
			obj := 0.0
			for j := 0; j < nb; j++ {
				if mask&(1<<j) != 0 {
					obj += p.Objective(bins[j])
				}
			}
			if obj < bestObj {
				bestObj = obj
			}
		}

		if !found {
			if res.Status != Infeasible {
				t.Fatalf("trial %d: want infeasible, got %v", trial, res.Status)
			}
			continue
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v, want optimal", trial, res.Status)
		}
		if math.Abs(res.Objective-bestObj) > tol {
			t.Fatalf("trial %d: obj %v, brute force %v", trial, res.Objective, bestObj)
		}
	}
}

func TestNodeLimit(t *testing.T) {
	// A problem needing branching, with MaxNodes=1: should stop early.
	p := lp.NewProblem()
	x := p.AddVariable(-1, 0, 10)
	y := p.AddVariable(-1, 0, 10)
	p.MustAddConstraint([]lp.Term{{Var: x, Coef: 2}, {Var: y, Coef: 1}}, lp.LE, 5.5)
	p.MustAddConstraint([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 2}}, lp.LE, 5.5)
	res, err := Solve(&Problem{LP: p, Integers: []int{x, y}}, &Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Optimal && res.Nodes > 1 {
		t.Errorf("node limit ignored: %d nodes", res.Nodes)
	}
	if res.Status != Optimal && res.Status != Feasible && res.Status != NoSolution {
		t.Errorf("unexpected status %v", res.Status)
	}
}

func TestTimeLimit(t *testing.T) {
	// With an absurdly small time limit the solver must still return.
	p := lp.NewProblem()
	var bins []int
	rng := rand.New(rand.NewSource(3))
	var terms []lp.Term
	for j := 0; j < 30; j++ {
		v := p.AddVariable(rng.Float64()-0.5, 0, 1)
		bins = append(bins, v)
		terms = append(terms, lp.Term{Var: v, Coef: rng.Float64()})
	}
	p.MustAddConstraint(terms, lp.LE, 7.3)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := Solve(&Problem{LP: p, Integers: bins}, &Options{TimeLimit: time.Millisecond}); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("time limit not honored")
	}
}

func TestBoundReported(t *testing.T) {
	p := lp.NewProblem()
	x := p.AddVariable(-1, 0, 1)
	p.MustAddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.LE, 0.7)
	res := solveOK(t, &Problem{LP: p, Integers: []int{x}}, nil)
	// Optimum: x=0 (can't reach 1), obj 0. Bound must not exceed objective.
	if res.Objective != 0 {
		t.Errorf("obj = %v, want 0", res.Objective)
	}
	if res.Bound > res.Objective+tol {
		t.Errorf("bound %v exceeds objective %v", res.Bound, res.Objective)
	}
}
