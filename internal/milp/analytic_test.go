package milp

import (
	"math"
	"testing"

	"ctdvs/internal/lp"
)

// knapsackProblem rebuilds the classic binary knapsack from milp_test.go:
// max 8a + 11b + 6c + 4d s.t. 5a + 7b + 4c + 3d ≤ 14, optimum -21 as a
// minimization, with a fractional LP relaxation so branching happens.
func knapsackProblem() *Problem {
	p := lp.NewProblem()
	vals := []float64{8, 11, 6, 4}
	wts := []float64{5, 7, 4, 3}
	var vars []int
	var cons []lp.Term
	for i := range vals {
		v := p.AddVariable(-vals[i], 0, 1)
		vars = append(vars, v)
		cons = append(cons, lp.Term{Var: v, Coef: wts[i]})
	}
	p.MustAddConstraint(cons, lp.LE, 14)
	return &Problem{LP: p, Integers: vars}
}

// TestAnalyticBoundCallbackWiring pins the callback contract: the search
// consults the bound at the root and at every child, a vacuous bound changes
// nothing, and DisableAnalyticBound suppresses the calls entirely.
func TestAnalyticBoundCallbackWiring(t *testing.T) {
	t.Parallel()
	base := solveOK(t, knapsackProblem(), &Options{Workers: 1})

	calls := 0
	vacuous := solveOK(t, knapsackProblem(), &Options{
		Workers: 1,
		AnalyticBound: func(ov map[int]lp.Bound) (float64, bool) {
			calls++
			return math.Inf(-1), true
		},
	})
	if calls == 0 {
		t.Fatal("AnalyticBound never consulted")
	}
	if vacuous.Objective != base.Objective || vacuous.Nodes != base.Nodes {
		t.Errorf("vacuous bound changed the solve: obj %v/%v nodes %d/%d",
			vacuous.Objective, base.Objective, vacuous.Nodes, base.Nodes)
	}
	if vacuous.AnalyticPrunes != 0 {
		t.Errorf("vacuous bound pruned %d children", vacuous.AnalyticPrunes)
	}

	// ok=false must be treated exactly like no bound at all.
	declined := solveOK(t, knapsackProblem(), &Options{
		Workers:       1,
		AnalyticBound: func(ov map[int]lp.Bound) (float64, bool) { return 0, false },
	})
	if declined.Objective != base.Objective || declined.Nodes != base.Nodes {
		t.Errorf("declined bound changed the solve: obj %v/%v nodes %d/%d",
			declined.Objective, base.Objective, declined.Nodes, base.Nodes)
	}

	calls = 0
	disabled := solveOK(t, knapsackProblem(), &Options{
		Workers:              1,
		DisableAnalyticBound: true,
		AnalyticBound: func(ov map[int]lp.Bound) (float64, bool) {
			calls++
			return math.Inf(-1), true
		},
	})
	if calls != 0 {
		t.Errorf("DisableAnalyticBound still consulted the callback %d times", calls)
	}
	if disabled.Objective != base.Objective || disabled.Nodes != base.Nodes {
		t.Errorf("disabled bound changed the solve: obj %v/%v nodes %d/%d",
			disabled.Objective, base.Objective, disabled.Nodes, base.Nodes)
	}
}

// TestAnalyticBoundPrunes hands the search the exact integer optimum as the
// bound for every box: children that cannot beat it are discarded before
// their LP solves, the tree shrinks, and the objective is untouched.
func TestAnalyticBoundPrunes(t *testing.T) {
	t.Parallel()
	base := solveOK(t, knapsackProblem(), &Options{Workers: 1})
	exact := solveOK(t, knapsackProblem(), &Options{
		Workers: 1,
		AnalyticBound: func(ov map[int]lp.Bound) (float64, bool) {
			return -21, true // the known optimum: a valid bound for every box
		},
	})
	if exact.Objective != base.Objective {
		t.Errorf("objective moved: %v, want %v", exact.Objective, base.Objective)
	}
	if exact.Nodes > base.Nodes {
		t.Errorf("exact bound grew the tree: %d nodes, baseline %d", exact.Nodes, base.Nodes)
	}
	if exact.AnalyticPrunes == 0 && exact.Nodes == base.Nodes {
		t.Error("exact bound neither pruned nor shrank the tree")
	}
	if exact.Bound < -21-tol {
		t.Errorf("reported dual bound %v weaker than the analytic -21", exact.Bound)
	}
}

// TestAnalyticBoundInfeasible: on an LP-feasible but integer-infeasible
// problem, a truthful +Inf bound must leave the verdict Infeasible — the
// search may take the bound's word for pruning, but it never fabricates an
// incumbent from it.
func TestAnalyticBoundInfeasible(t *testing.T) {
	t.Parallel()
	// 2x + 2y = 1 over binaries: the LP sits at x = y = 0.25, but every
	// integer point sums to an even total.
	build := func() *Problem {
		p := lp.NewProblem()
		x := p.AddVariable(1, 0, 1)
		y := p.AddVariable(1, 0, 1)
		p.MustAddConstraint([]lp.Term{{Var: x, Coef: 2}, {Var: y, Coef: 2}}, lp.EQ, 1)
		return &Problem{LP: p, Integers: []int{x, y}}
	}
	for _, withBound := range []bool{false, true} {
		opts := &Options{Workers: 1}
		if withBound {
			opts.AnalyticBound = func(ov map[int]lp.Bound) (float64, bool) {
				return math.Inf(1), true
			}
		}
		res, err := Solve(build(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Infeasible {
			t.Errorf("withBound=%v: status = %v, want infeasible", withBound, res.Status)
		}
	}
}
