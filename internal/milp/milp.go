// Package milp implements a branch-and-bound mixed-integer linear program
// solver on top of the simplex engine in package lp. Together they replace
// the AMPL + CPLEX toolchain of the original paper (Section 5.3) with a
// self-contained, offline, stdlib-only implementation.
//
// The solver supports binary/integer restrictions on a subset of variables,
// optional SOS1 group hints (sets of binaries that sum to one, which is the
// dominant structure of the DVS formulation — one mode variable per
// control-flow edge), best-bound node selection, objective-weighted
// most-fractional branching, an SOS1 rounding heuristic for early incumbents,
// and node/time limits.
//
// Node relaxations warm-start from the parent node's optimal basis via the
// dual simplex phase in package lp (see Result's warm-start statistics and
// Options.DisableWarmStart), falling back to a cold solve whenever a basis
// fails validation.
//
// # Parallel search
//
// Options.Workers > 1 turns on a deterministic parallel tree search: each
// round pops the best (bound, node-id) batch of open nodes from a shared
// priority queue, solves their LP relaxations concurrently on a fixed pool
// of workers, and then commits the results sequentially in the same
// (bound, node-id) order — pruning, incumbent updates, and branching all
// happen in the commit step. Because batch composition and commit order
// depend only on the queue state (never on worker timing), a solve with a
// given worker count is bit-for-bit reproducible, and Workers: 1 reproduces
// the serial algorithm exactly. See DESIGN.md, "Parallel solver".
package milp

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"ctdvs/internal/lp"
)

// Problem is a mixed-integer linear program: an LP plus integrality
// restrictions.
type Problem struct {
	// LP is the relaxation. Solve does not modify it (all per-node bound
	// restrictions go through lp.Problem.SolveBounded), which is what lets
	// workers share it.
	LP *lp.Problem
	// Integers lists the variables restricted to integer values. For the DVS
	// formulation these are the 0/1 mode variables.
	Integers []int
	// SOS1 optionally lists groups of binary variables of which exactly one
	// is 1 (enforced by an equality constraint already present in LP). The
	// groups guide the rounding heuristic; they are hints, not constraints.
	SOS1 [][]int
}

// Status describes the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	// Optimal means the incumbent was proven optimal (within Options.Gap).
	Optimal Status = iota
	// Feasible means a limit stopped the search with an incumbent in hand.
	Feasible
	// Infeasible means no integer point satisfies the constraints.
	Infeasible
	// Unbounded means the relaxation is unbounded below.
	Unbounded
	// NoSolution means a limit stopped the search before any incumbent.
	NoSolution
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case NoSolution:
		return "no-solution"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Options tunes the search. The zero value selects defaults.
type Options struct {
	// TimeLimit bounds wall-clock search time; 0 means unlimited.
	TimeLimit time.Duration
	// MaxNodes bounds the number of branch-and-bound nodes; 0 selects 200000.
	MaxNodes int
	// Gap is the relative optimality gap at which the search stops and the
	// incumbent is declared optimal; 0 selects 1e-7.
	Gap float64
	// IntTol is the integrality tolerance; 0 selects 1e-6.
	IntTol float64
	// Workers is the number of concurrent LP relaxation solvers; 0 selects
	// runtime.GOMAXPROCS(0), 1 selects the serial search. Any worker count
	// yields the same objective and, under the deterministic (bound,
	// node-id) tie-break, the same incumbent on problems with a unique
	// optimum; a given worker count is bit-for-bit reproducible run to run.
	Workers int
	// ParallelThreshold gates the worker pool behind tree size: the pool
	// (and with it multi-node batches) starts only once a round begins with
	// at least this many open nodes. Warm-started searches routinely close
	// in ~15 nodes, where pool startup and batch speculation cost more than
	// they recover — such solves now run the serial algorithm verbatim and
	// report AutoSerialized. The gate depends only on queue state, never on
	// worker timing, so solves stay bit-for-bit reproducible; rounds before
	// the gate opens are exactly the Workers == 1 search. 0 selects
	// DefaultParallelThreshold; negative starts the pool immediately
	// (the pre-gating behaviour).
	ParallelThreshold int
	// DisableWarmStart forces every node relaxation to solve cold from a
	// fresh two-phase start instead of warm-starting from the parent's
	// optimal basis. Benchmarking and debugging only; warm starts are on by
	// default and fall back to cold solves automatically when a basis
	// fails validation.
	DisableWarmStart bool
	// AnalyticBound, when set, supplies a proven lower bound (in objective
	// units) on the best integer solution of the subproblem whose variable
	// boxes are the root bounds composed with the given overrides; a nil or
	// empty map means the root box. The second return reports whether a
	// bound is available for that box at all.
	//
	// The search consults it at two points: once at the root, where an
	// SOS1-rounding incumbent within Gap of the bound proves optimality
	// without branching; and at every child-node creation, where a bound
	// that cannot beat the incumbent discards the node before its
	// dual-simplex solve (counted in Result.AnalyticPrunes) and otherwise
	// tightens the node's best-bound priority.
	//
	// The callback must be a pure function of the overrides (plus whatever
	// immutable problem data it closed over): it is called only from the
	// coordinator goroutine, in deterministic order, so any worker count
	// stays bit-for-bit reproducible — but an impure bound would break
	// run-to-run determinism. It must not mutate the map.
	AnalyticBound func(overrides map[int]lp.Bound) (float64, bool)
	// DisableAnalyticBound ignores AnalyticBound for this solve. Pinned
	// baselines and benchmarking only.
	DisableAnalyticBound bool
	// LP tunes the relaxation solver.
	LP *lp.Options
}

// Result is the outcome of a MILP solve.
type Result struct {
	Status    Status
	X         []float64 // incumbent point (Optimal or Feasible)
	Objective float64   // incumbent objective
	Bound     float64   // best proven lower bound on the optimum
	Nodes     int       // branch-and-bound nodes committed
	LPIters   int       // total LP solves performed (incl. speculative batch solves)
	Workers   int       // worker count the search ran with
	// AutoSerialized reports that Workers > 1 was requested but the open-node
	// count never reached Options.ParallelThreshold, so the whole search ran
	// serially and no worker goroutine was ever started.
	AutoSerialized bool
	SolveTime      time.Duration

	// Warm-start statistics. Every LP solve lands in exactly one of the
	// three counters: WarmSolves re-solved from a parent basis via the dual
	// simplex, WarmFallbacks attempted a warm start but completed cold
	// after validation failed, and ColdSolves never had a basis (the root,
	// the rounding heuristic, and every node when warm starts are
	// disabled). All three are deterministic for a given worker count.
	WarmSolves    int
	ColdSolves    int
	WarmFallbacks int
	// AnalyticPrunes counts branch-and-bound children discarded by
	// Options.AnalyticBound before any dual-simplex solve was paid for
	// them. Like the warm-start counters it is deterministic for a given
	// worker count; it stays zero when no bound callback is set or
	// DisableAnalyticBound is on.
	AnalyticPrunes int
	// LPPivots is the total simplex pivot count across all LP solves
	// (including basis-restoration pivots), the search's work metric.
	LPPivots int
	// LPTime is the cumulative wall time spent inside the LP solver summed
	// over all solves; with parallel workers it can exceed SolveTime.
	LPTime time.Duration
}

// WarmHitRate returns the fraction of LP solves that completed from a warm
// start (0 when nothing was solved).
func (r *Result) WarmHitRate() float64 {
	total := r.WarmSolves + r.ColdSolves + r.WarmFallbacks
	if total == 0 {
		return 0
	}
	return float64(r.WarmSolves) / float64(total)
}

// PivotsPerNode returns the mean simplex pivot count per committed node (0
// when no nodes were committed).
func (r *Result) PivotsPerNode() float64 {
	if r.Nodes == 0 {
		return 0
	}
	return float64(r.LPPivots) / float64(r.Nodes)
}

// bound aliases the LP solver's per-call variable box; branch-and-bound
// nodes are sets of these, keyed by variable.
type bound = lp.Bound

// node is one branch-and-bound subproblem: bound overrides relative to the
// root, the parent relaxation value used as its priority, a creation id
// that breaks priority ties deterministically, and the parent's optimal
// basis to warm-start this node's relaxation (nil solves cold). The basis
// is immutable and shared by both children of a branching.
type node struct {
	id        int
	overrides map[int]bound
	lpBound   float64
	basis     *lp.Basis
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].lpBound != h[j].lpBound {
		return h[i].lpBound < h[j].lpBound
	}
	return h[i].id < h[j].id
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Solve runs branch and bound and returns the best integer solution found.
func Solve(p *Problem, opts *Options) (*Result, error) {
	return SolveContext(context.Background(), p, opts)
}

// SolveContext is Solve under a context: the search polls ctx between
// branch-and-bound rounds and, when it is cancelled or its deadline passes,
// abandons the tree and returns ctx's error instead of a result. Callers that
// want the best incumbent found so far should use Options.TimeLimit (which
// returns a Feasible result); the context path is for work whose requester is
// gone — a disconnected client's solve must not be mistaken for a completed
// one, and in particular must never be cached.
func SolveContext(ctx context.Context, p *Problem, opts *Options) (*Result, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if o.Gap == 0 {
		o.Gap = 1e-7
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ParallelThreshold == 0 {
		o.ParallelThreshold = DefaultParallelThreshold
	}
	if p.LP == nil {
		return nil, errors.New("milp: nil LP")
	}
	for _, v := range p.Integers {
		if v < 0 || v >= p.LP.NumVars() {
			return nil, fmt.Errorf("milp: integer variable %d out of range", v)
		}
	}

	if o.DisableAnalyticBound {
		o.AnalyticBound = nil
	}

	s := &search{
		prob:         p,
		opts:         o,
		start:        time.Now(),
		done:         ctx.Done(),
		coordScratch: lp.NewScratch(),
	}
	// Remember root bounds so per-node overrides can be composed with them.
	s.rootLo = make([]float64, p.LP.NumVars())
	s.rootHi = make([]float64, p.LP.NumVars())
	for j := 0; j < p.LP.NumVars(); j++ {
		s.rootLo[j], s.rootHi[j] = p.LP.Bounds(j)
	}
	res := s.run()
	if s.interrupted {
		// The caller is gone; whatever the tree held is abandoned rather
		// than reported as a (partial) solve result.
		return nil, ctx.Err()
	}
	res.Workers = o.Workers
	res.AutoSerialized = o.Workers > 1 && s.jobs == nil
	res.SolveTime = time.Since(s.start)
	res.WarmSolves = s.warm
	res.ColdSolves = s.cold
	res.WarmFallbacks = s.fellBack
	res.AnalyticPrunes = s.analyticPrunes
	res.LPPivots = s.lpPivots
	res.LPTime = s.lpTime
	return res, nil
}

type search struct {
	prob  *Problem
	opts  Options
	start time.Time

	// done is the solve context's cancellation channel, polled once per
	// branch-and-bound round; interrupted records that the search stopped
	// because of it (as opposed to a time or node limit).
	done        <-chan struct{}
	interrupted bool

	rootLo, rootHi []float64

	incumbent    []float64
	incumbentObj float64
	haveInc      bool

	nodes   int
	lpIters int
	nextID  int

	// coordScratch is the coordinator goroutine's reusable simplex state
	// (root solve, rounding heuristic, serial node solves, and the head
	// node of each parallel batch).
	coordScratch *lp.Scratch

	// Warm-start statistics, accumulated on the coordinator only (after
	// each batch joins), so no synchronization is needed and the counts
	// are deterministic for a given worker count.
	warm, cold, fellBack, lpPivots int
	lpTime                         time.Duration

	// analyticPrunes counts children Options.AnalyticBound discarded before
	// their LP solve. Coordinator only, like the warm-start statistics.
	analyticPrunes int

	// Worker pool, started lazily by run() once a round opens with at least
	// Options.ParallelThreshold nodes (nil while gated and always nil when
	// Workers == 1). Jobs are per-node LP solves; the coordinator fans a
	// batch out, waits on the batch WaitGroup, and then commits sequentially.
	jobs chan lpJob
	wg   sync.WaitGroup
}

// DefaultParallelThreshold is the open-node count at which a Workers > 1
// search starts its worker pool when Options.ParallelThreshold is zero. Warm
// starts shrank typical paper-workload trees to ~15 nodes, well under this,
// so those solves auto-serialize.
const DefaultParallelThreshold = 32

// lpJob asks a worker to solve one node's relaxation into sols/errs[idx],
// recording the solve's wall time in durs[idx].
type lpJob struct {
	nd   *node
	idx  int
	sols []*lp.Solution
	errs []error
	durs []time.Duration
	done *sync.WaitGroup
}

// worker owns one lp.Scratch for its lifetime, so every node solve it
// performs reuses the same tableau slab and row template.
func (s *search) worker() {
	defer s.wg.Done()
	sc := lp.NewScratch()
	for jb := range s.jobs {
		start := time.Now()
		jb.sols[jb.idx], jb.errs[jb.idx] = s.solveNode(jb.nd, sc)
		jb.durs[jb.idx] = time.Since(start)
		jb.done.Done()
	}
}

func (s *search) timeUp() bool {
	return s.opts.TimeLimit > 0 && time.Since(s.start) > s.opts.TimeLimit
}

// cancelled polls the solve context (non-blocking) and latches interrupted.
func (s *search) cancelled() bool {
	if s.interrupted {
		return true
	}
	select {
	case <-s.done:
		s.interrupted = true
		return true
	default:
		return false
	}
}

// solveNode solves one node's relaxation, warm-starting from the parent
// basis unless disabled. It does not touch search state: workers call it
// concurrently with worker-local scratches.
func (s *search) solveNode(nd *node, sc *lp.Scratch) (*lp.Solution, error) {
	ws := &lp.WarmStart{Scratch: sc}
	if !s.opts.DisableWarmStart {
		ws.Basis = nd.basis
	}
	return s.prob.LP.SolveBoundedWarm(s.opts.LP, nd.overrides, ws)
}

// countSolve files one finished LP solve into the warm-start statistics.
// Coordinator only.
func (s *search) countSolve(sol *lp.Solution, d time.Duration) {
	s.lpTime += d
	if sol == nil {
		return
	}
	s.lpPivots += sol.Pivots
	switch {
	case sol.Warm:
		s.warm++
	case sol.FellBack:
		s.fellBack++
	default:
		s.cold++
	}
}

// solveWith solves the relaxation under the given bound overrides on the
// coordinator goroutine (the root relaxation and the rounding heuristic),
// always cold: the heuristic fixes every binary at once, far from any
// parent basis.
func (s *search) solveWith(ov map[int]bound) (*lp.Solution, error) {
	s.lpIters++
	start := time.Now()
	sol, err := s.prob.LP.SolveBoundedWarm(s.opts.LP, ov, &lp.WarmStart{Scratch: s.coordScratch})
	s.countSolve(sol, time.Since(start))
	return sol, err
}

// solveBatch solves every node's relaxation, fanning out across the worker
// pool when one exists. Results are indexed like the batch.
func (s *search) solveBatch(batch []*node) ([]*lp.Solution, []error) {
	sols := make([]*lp.Solution, len(batch))
	errs := make([]error, len(batch))
	durs := make([]time.Duration, len(batch))
	s.lpIters += len(batch)
	if s.jobs == nil || len(batch) == 1 {
		for i, nd := range batch {
			start := time.Now()
			sols[i], errs[i] = s.solveNode(nd, s.coordScratch)
			durs[i] = time.Since(start)
		}
	} else {
		var done sync.WaitGroup
		done.Add(len(batch) - 1)
		for i := 1; i < len(batch); i++ {
			s.jobs <- lpJob{nd: batch[i], idx: i, sols: sols, errs: errs, durs: durs, done: &done}
		}
		// The coordinator pulls its weight on the head node while workers run.
		start := time.Now()
		sols[0], errs[0] = s.solveNode(batch[0], s.coordScratch)
		durs[0] = time.Since(start)
		done.Wait()
	}
	for i := range sols {
		s.countSolve(sols[i], durs[i])
	}
	return sols, errs
}

// fractional picks the branching variable: the fractional integer variable
// with the largest objective-weighted fractionality dist·(1+|c_v|), or -1 if
// the point is integral within tolerance. The objective weight steers the
// search toward the high-energy mode variables whose resolution moves the
// bound most; it also makes tree shape far less sensitive to which of many
// alternate optimal vertices the relaxation solver happens to return, which
// matters because warm-started re-solves terminate at different (equally
// optimal) vertices than cold solves on the highly degenerate DVS LPs.
func (s *search) fractional(x []float64) int {
	best, bestScore := -1, 0.0
	for _, v := range s.prob.Integers {
		f := x[v] - math.Floor(x[v])
		dist := math.Min(f, 1-f)
		if dist <= s.opts.IntTol {
			continue
		}
		score := dist * (1 + math.Abs(s.prob.LP.Objective(v)))
		if score > bestScore {
			best, bestScore = v, score
		}
	}
	return best
}

// accept records a new incumbent if it improves on the current one.
func (s *search) accept(x []float64, obj float64) {
	if !s.haveInc || obj < s.incumbentObj-1e-12 {
		s.incumbent = append([]float64(nil), x...)
		s.incumbentObj = obj
		s.haveInc = true
	}
}

// roundingHeuristic tries to convert a fractional relaxation point into an
// integer-feasible incumbent: SOS1 groups pick their argmax member; stray
// integer variables round to nearest. The rounded binaries are fixed and the
// LP re-solved so continuous variables adapt; a feasible integral solve
// becomes an incumbent.
func (s *search) roundingHeuristic(x []float64, ov map[int]bound) {
	fixed := make(map[int]bound, len(s.prob.Integers)+len(ov))
	for v, b := range ov {
		fixed[v] = b
	}
	inGroup := make(map[int]bool)
	for _, g := range s.prob.SOS1 {
		argmax, best := -1, -1.0
		for _, v := range g {
			// Respect existing overrides: a variable fixed to 0 cannot be
			// chosen.
			_, hi := boundsOf(v, fixed, s.rootLo, s.rootHi)
			if hi < 0.5 {
				inGroup[v] = true
				continue
			}
			if x[v] > best {
				argmax, best = v, x[v]
			}
			inGroup[v] = true
		}
		if argmax < 0 {
			return // group fully excluded; heuristic cannot help here
		}
		for _, v := range g {
			if v == argmax {
				fixed[v] = bound{Lo: 1, Hi: 1}
			} else {
				fixed[v] = bound{Lo: 0, Hi: 0}
			}
		}
	}
	for _, v := range s.prob.Integers {
		if inGroup[v] {
			continue
		}
		r := math.Round(x[v])
		lo, hi := boundsOf(v, fixed, s.rootLo, s.rootHi)
		if r < lo || r > hi {
			return
		}
		fixed[v] = bound{Lo: r, Hi: r}
	}
	sol, err := s.solveWith(fixed)
	if err != nil || sol.Status != lp.Optimal {
		return
	}
	if s.fractional(sol.X) >= 0 {
		return
	}
	s.accept(sol.X, sol.Objective)
}

func boundsOf(v int, ov map[int]bound, rootLo, rootHi []float64) (float64, float64) {
	if b, ok := ov[v]; ok {
		return b.Lo, b.Hi
	}
	return rootLo[v], rootHi[v]
}

func (s *search) run() *Result {
	rootSol, err := s.solveWith(nil)
	if err != nil {
		return &Result{Status: NoSolution}
	}
	switch rootSol.Status {
	case lp.Infeasible:
		return &Result{Status: Infeasible, Nodes: 1, LPIters: s.lpIters}
	case lp.Unbounded:
		return &Result{Status: Unbounded, Nodes: 1, LPIters: s.lpIters}
	case lp.IterationLimit:
		return &Result{Status: NoSolution, Nodes: 1, LPIters: s.lpIters}
	}

	// Root dual bound: the analytic (continuous + quantization) bound is a
	// proven lower bound on the integer optimum, so an SOS1-rounding
	// incumbent within Gap of it is optimal before any branching. Even when
	// the check fails, the bound may tighten the root's best-bound priority.
	rootBound := rootSol.Objective
	if s.opts.AnalyticBound != nil {
		if ab, ok := s.opts.AnalyticBound(nil); ok {
			s.roundingHeuristic(rootSol.X, nil)
			if s.haveInc && !better(ab, s.incumbentObj, s.opts.Gap) {
				s.nodes = 1
				return s.finish(Optimal, math.Max(ab, rootBound))
			}
			if ab > rootBound {
				rootBound = ab
			}
		}
	}

	// The worker pool starts lazily: small trees (the warm-started common
	// case) finish before the open-node count ever reaches the threshold and
	// run the serial algorithm verbatim, paying nothing for the unused
	// Workers setting.
	defer func() {
		if s.jobs != nil {
			close(s.jobs)
			s.wg.Wait()
		}
	}()
	spawnIfBig := func(open int) {
		if s.jobs != nil || s.opts.Workers <= 1 || open < s.opts.ParallelThreshold {
			return
		}
		s.jobs = make(chan lpJob)
		for i := 0; i < s.opts.Workers; i++ {
			s.wg.Add(1)
			go s.worker()
		}
	}

	h := &nodeHeap{{id: 0, overrides: map[int]bound{}, lpBound: rootBound, basis: rootSol.Basis}}
	heap.Init(h)
	s.nextID = 1
	bestBound := rootBound

	for h.Len() > 0 {
		if s.nodes >= s.opts.MaxNodes || s.timeUp() || s.cancelled() {
			return s.finish(Feasible, bestBound)
		}
		head := heap.Pop(h).(*node)
		bestBound = head.lpBound
		if s.haveInc && !better(head.lpBound, s.incumbentObj, s.opts.Gap) {
			// Best-bound order: nothing left can improve the incumbent.
			return s.finish(Optimal, head.lpBound)
		}

		// Form this round's batch: the best (bound, id) open nodes that are
		// not already closed by the incumbent, up to one LP per worker and
		// never past the node limit. Until the open-node count crosses the
		// parallel threshold the batch stays a single node, which is exactly
		// the serial search.
		spawnIfBig(h.Len() + 1)
		maxBatch := 1
		if s.jobs != nil {
			maxBatch = s.opts.Workers
		}
		batch := append(make([]*node, 0, maxBatch), head)
		for len(batch) < maxBatch && h.Len() > 0 && s.nodes+len(batch) < s.opts.MaxNodes {
			nd := (*h)[0]
			if s.haveInc && !better(nd.lpBound, s.incumbentObj, s.opts.Gap) {
				break // the search terminates at this node next round
			}
			heap.Pop(h)
			batch = append(batch, nd)
		}

		sols, errs := s.solveBatch(batch)

		// Commit sequentially in (bound, id) order; all search-state
		// decisions are made here, so worker timing never leaks into the
		// result.
		for i, nd := range batch {
			if s.haveInc && !better(nd.lpBound, s.incumbentObj, s.opts.Gap) {
				// An incumbent committed earlier in this batch closed this
				// node's gap: prune it. (Unlike the head-of-round check this
				// cannot end the search — children pushed by earlier batch
				// nodes may carry smaller bounds than nd and are still open.)
				continue
			}
			s.nodes++

			sol, err := sols[i], errs[i]
			if err != nil || sol.Status == lp.IterationLimit {
				continue // treat as unexplorable; bound stays conservative
			}
			if sol.Status != lp.Optimal {
				continue // infeasible subtree
			}
			if s.haveInc && !better(sol.Objective, s.incumbentObj, s.opts.Gap) {
				continue // dominated
			}

			branch := s.fractional(sol.X)
			if branch < 0 {
				s.accept(sol.X, sol.Objective)
				continue
			}

			// Heuristic incumbent from this relaxation point: always at the
			// root and whenever the incumbent is missing, and periodically
			// thereafter so pruning keeps a fresh bound (cheap relative to
			// the dives it prunes).
			if !s.haveInc || s.nodes%64 == 1 {
				s.roundingHeuristic(sol.X, nd.overrides)
			}

			lo, hi := boundsOf(branch, nd.overrides, s.rootLo, s.rootHi)
			f := sol.X[branch]
			down := cloneOverrides(nd.overrides)
			down[branch] = bound{Lo: lo, Hi: math.Floor(f)}
			up := cloneOverrides(nd.overrides)
			up[branch] = bound{Lo: math.Ceil(f), Hi: hi}
			// Both children warm-start from this node's optimal basis: the
			// tightened bound leaves it dual feasible (see lp/warm.go).
			s.pushChild(h, down, sol.Objective, sol.Basis)
			s.pushChild(h, up, sol.Objective, sol.Basis)
		}
	}

	if s.haveInc {
		return s.finish(Optimal, s.incumbentObj)
	}
	return &Result{Status: Infeasible, Nodes: s.nodes, LPIters: s.lpIters}
}

// pushChild files one freshly-branched subproblem into the open-node heap —
// unless the analytic bound for its box already proves it cannot beat the
// incumbent, in which case the child is discarded before any LP solve is
// paid for it. A surviving child's priority is the tighter of the parent
// relaxation value and the analytic bound, so best-bound selection (and the
// head-of-round optimality check) see the strongest proven bound either way.
// Coordinator only: runs inside the sequential commit step.
func (s *search) pushChild(h *nodeHeap, ov map[int]bound, lpBound float64, basis *lp.Basis) {
	if s.opts.AnalyticBound != nil {
		if ab, ok := s.opts.AnalyticBound(ov); ok {
			if s.haveInc && !better(ab, s.incumbentObj, s.opts.Gap) {
				s.analyticPrunes++
				return
			}
			if ab > lpBound {
				lpBound = ab
			}
		}
	}
	heap.Push(h, &node{id: s.nextID, overrides: ov, lpBound: lpBound, basis: basis})
	s.nextID++
}

// better reports whether objective obj improves on the incumbent by more
// than the relative gap.
func better(obj, incumbent, gap float64) bool {
	return obj < incumbent-gap*(1+math.Abs(incumbent))
}

func cloneOverrides(ov map[int]bound) map[int]bound {
	out := make(map[int]bound, len(ov)+1)
	for k, v := range ov {
		out[k] = v
	}
	return out
}

func (s *search) finish(st Status, bnd float64) *Result {
	res := &Result{
		Status:  st,
		Bound:   bnd,
		Nodes:   s.nodes,
		LPIters: s.lpIters,
	}
	if s.haveInc {
		res.X = s.incumbent
		res.Objective = s.incumbentObj
		// When the search stops because the best remaining relaxation
		// crossed the incumbent, the incumbent itself is the tightest
		// proven lower bound on the optimum.
		if res.Bound > res.Objective {
			res.Bound = res.Objective
		}
	} else if st != Infeasible && st != Unbounded {
		res.Status = NoSolution
	}
	return res
}
