// Package milp implements a branch-and-bound mixed-integer linear program
// solver on top of the simplex engine in package lp. Together they replace
// the AMPL + CPLEX toolchain of the original paper (Section 5.3) with a
// self-contained, offline, stdlib-only implementation.
//
// The solver supports binary/integer restrictions on a subset of variables,
// optional SOS1 group hints (sets of binaries that sum to one, which is the
// dominant structure of the DVS formulation — one mode variable per
// control-flow edge), best-bound node selection, most-fractional branching,
// an SOS1 rounding heuristic for early incumbents, and node/time limits.
package milp

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"

	"ctdvs/internal/lp"
)

// Problem is a mixed-integer linear program: an LP plus integrality
// restrictions.
type Problem struct {
	// LP is the relaxation. Solve does not modify it.
	LP *lp.Problem
	// Integers lists the variables restricted to integer values. For the DVS
	// formulation these are the 0/1 mode variables.
	Integers []int
	// SOS1 optionally lists groups of binary variables of which exactly one
	// is 1 (enforced by an equality constraint already present in LP). The
	// groups guide the rounding heuristic; they are hints, not constraints.
	SOS1 [][]int
}

// Status describes the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	// Optimal means the incumbent was proven optimal (within Options.Gap).
	Optimal Status = iota
	// Feasible means a limit stopped the search with an incumbent in hand.
	Feasible
	// Infeasible means no integer point satisfies the constraints.
	Infeasible
	// Unbounded means the relaxation is unbounded below.
	Unbounded
	// NoSolution means a limit stopped the search before any incumbent.
	NoSolution
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case NoSolution:
		return "no-solution"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Options tunes the search. The zero value selects defaults.
type Options struct {
	// TimeLimit bounds wall-clock search time; 0 means unlimited.
	TimeLimit time.Duration
	// MaxNodes bounds the number of branch-and-bound nodes; 0 selects 200000.
	MaxNodes int
	// Gap is the relative optimality gap at which the search stops and the
	// incumbent is declared optimal; 0 selects 1e-7.
	Gap float64
	// IntTol is the integrality tolerance; 0 selects 1e-6.
	IntTol float64
	// LP tunes the relaxation solver.
	LP *lp.Options
}

// Result is the outcome of a MILP solve.
type Result struct {
	Status    Status
	X         []float64 // incumbent point (Optimal or Feasible)
	Objective float64   // incumbent objective
	Bound     float64   // best proven lower bound on the optimum
	Nodes     int       // branch-and-bound nodes explored
	LPIters   int       // total LP solves performed
	SolveTime time.Duration
}

type bound struct{ lo, hi float64 }

// node is one branch-and-bound subproblem: bound overrides relative to the
// root plus the parent relaxation value used as its priority.
type node struct {
	overrides map[int]bound
	lpBound   float64
}

type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].lpBound < h[j].lpBound }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Solve runs branch and bound and returns the best integer solution found.
func Solve(p *Problem, opts *Options) (*Result, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if o.Gap == 0 {
		o.Gap = 1e-7
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	if p.LP == nil {
		return nil, errors.New("milp: nil LP")
	}
	for _, v := range p.Integers {
		if v < 0 || v >= p.LP.NumVars() {
			return nil, fmt.Errorf("milp: integer variable %d out of range", v)
		}
	}

	s := &search{
		prob:  p,
		opts:  o,
		work:  p.LP.Clone(),
		start: time.Now(),
	}
	// Remember root bounds so per-node overrides can be applied and undone.
	s.rootLo = make([]float64, s.work.NumVars())
	s.rootHi = make([]float64, s.work.NumVars())
	for j := 0; j < s.work.NumVars(); j++ {
		s.rootLo[j], s.rootHi[j] = s.work.Bounds(j)
	}
	res := s.run()
	res.SolveTime = time.Since(s.start)
	return res, nil
}

type search struct {
	prob  *Problem
	opts  Options
	work  *lp.Problem
	start time.Time

	rootLo, rootHi []float64

	incumbent    []float64
	incumbentObj float64
	haveInc      bool

	nodes   int
	lpIters int
}

func (s *search) timeUp() bool {
	return s.opts.TimeLimit > 0 && time.Since(s.start) > s.opts.TimeLimit
}

// solveWith applies the node's bound overrides, solves the relaxation, and
// restores the root bounds.
func (s *search) solveWith(ov map[int]bound) (*lp.Solution, error) {
	for v, b := range ov {
		s.work.SetBounds(v, b.lo, b.hi)
	}
	sol, err := s.work.Solve(s.opts.LP)
	for v := range ov {
		s.work.SetBounds(v, s.rootLo[v], s.rootHi[v])
	}
	s.lpIters++
	return sol, err
}

// fractional returns the integer variable whose value is farthest from an
// integer, or -1 if the point is integral within tolerance.
func (s *search) fractional(x []float64) int {
	best, bestDist := -1, s.opts.IntTol
	for _, v := range s.prob.Integers {
		f := x[v] - math.Floor(x[v])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			best, bestDist = v, dist
		}
	}
	return best
}

// accept records a new incumbent if it improves on the current one.
func (s *search) accept(x []float64, obj float64) {
	if !s.haveInc || obj < s.incumbentObj-1e-12 {
		s.incumbent = append([]float64(nil), x...)
		s.incumbentObj = obj
		s.haveInc = true
	}
}

// roundingHeuristic tries to convert a fractional relaxation point into an
// integer-feasible incumbent: SOS1 groups pick their argmax member; stray
// integer variables round to nearest. The rounded binaries are fixed and the
// LP re-solved so continuous variables adapt; a feasible integral solve
// becomes an incumbent.
func (s *search) roundingHeuristic(x []float64, ov map[int]bound) {
	fixed := make(map[int]bound, len(s.prob.Integers)+len(ov))
	for v, b := range ov {
		fixed[v] = b
	}
	inGroup := make(map[int]bool)
	for _, g := range s.prob.SOS1 {
		argmax, best := -1, -1.0
		for _, v := range g {
			// Respect existing overrides: a variable fixed to 0 cannot be
			// chosen.
			_, hi := boundsOf(v, fixed, s.rootLo, s.rootHi)
			if hi < 0.5 {
				inGroup[v] = true
				continue
			}
			if x[v] > best {
				argmax, best = v, x[v]
			}
			inGroup[v] = true
		}
		if argmax < 0 {
			return // group fully excluded; heuristic cannot help here
		}
		for _, v := range g {
			if v == argmax {
				fixed[v] = bound{1, 1}
			} else {
				fixed[v] = bound{0, 0}
			}
		}
	}
	for _, v := range s.prob.Integers {
		if inGroup[v] {
			continue
		}
		r := math.Round(x[v])
		lo, hi := boundsOf(v, fixed, s.rootLo, s.rootHi)
		if r < lo || r > hi {
			return
		}
		fixed[v] = bound{r, r}
	}
	sol, err := s.solveWith(fixed)
	if err != nil || sol.Status != lp.Optimal {
		return
	}
	if s.fractional(sol.X) >= 0 {
		return
	}
	s.accept(sol.X, sol.Objective)
}

func boundsOf(v int, ov map[int]bound, rootLo, rootHi []float64) (float64, float64) {
	if b, ok := ov[v]; ok {
		return b.lo, b.hi
	}
	return rootLo[v], rootHi[v]
}

func (s *search) run() *Result {
	rootSol, err := s.solveWith(nil)
	if err != nil {
		return &Result{Status: NoSolution}
	}
	switch rootSol.Status {
	case lp.Infeasible:
		return &Result{Status: Infeasible, Nodes: 1, LPIters: s.lpIters}
	case lp.Unbounded:
		return &Result{Status: Unbounded, Nodes: 1, LPIters: s.lpIters}
	case lp.IterationLimit:
		return &Result{Status: NoSolution, Nodes: 1, LPIters: s.lpIters}
	}

	h := &nodeHeap{{overrides: map[int]bound{}, lpBound: rootSol.Objective}}
	heap.Init(h)
	bestBound := rootSol.Objective

	for h.Len() > 0 {
		if s.nodes >= s.opts.MaxNodes || s.timeUp() {
			return s.finish(Feasible, bestBound)
		}
		nd := heap.Pop(h).(*node)
		bestBound = nd.lpBound
		if s.haveInc && !better(nd.lpBound, s.incumbentObj, s.opts.Gap) {
			// Best-bound order: nothing left can improve the incumbent.
			return s.finish(Optimal, nd.lpBound)
		}
		s.nodes++

		sol, err := s.solveWith(nd.overrides)
		if err != nil || sol.Status == lp.IterationLimit {
			continue // treat as unexplorable; bound stays conservative
		}
		if sol.Status != lp.Optimal {
			continue // infeasible subtree
		}
		if s.haveInc && !better(sol.Objective, s.incumbentObj, s.opts.Gap) {
			continue // dominated
		}

		branch := s.fractional(sol.X)
		if branch < 0 {
			s.accept(sol.X, sol.Objective)
			continue
		}

		// Heuristic incumbent from this relaxation point: always at the
		// root and whenever the incumbent is missing, and periodically
		// thereafter so pruning keeps a fresh bound (cheap relative to the
		// dives it prunes).
		if !s.haveInc || s.nodes%64 == 1 {
			s.roundingHeuristic(sol.X, nd.overrides)
		}

		lo, hi := boundsOf(branch, nd.overrides, s.rootLo, s.rootHi)
		f := sol.X[branch]
		down := cloneOverrides(nd.overrides)
		down[branch] = bound{lo, math.Floor(f)}
		up := cloneOverrides(nd.overrides)
		up[branch] = bound{math.Ceil(f), hi}
		heap.Push(h, &node{overrides: down, lpBound: sol.Objective})
		heap.Push(h, &node{overrides: up, lpBound: sol.Objective})
	}

	if s.haveInc {
		return s.finish(Optimal, s.incumbentObj)
	}
	return &Result{Status: Infeasible, Nodes: s.nodes, LPIters: s.lpIters}
}

// better reports whether objective obj improves on the incumbent by more
// than the relative gap.
func better(obj, incumbent, gap float64) bool {
	return obj < incumbent-gap*(1+math.Abs(incumbent))
}

func cloneOverrides(ov map[int]bound) map[int]bound {
	out := make(map[int]bound, len(ov)+1)
	for k, v := range ov {
		out[k] = v
	}
	return out
}

func (s *search) finish(st Status, bnd float64) *Result {
	res := &Result{
		Status:  st,
		Bound:   bnd,
		Nodes:   s.nodes,
		LPIters: s.lpIters,
	}
	if s.haveInc {
		res.X = s.incumbent
		res.Objective = s.incumbentObj
		// When the search stops because the best remaining relaxation
		// crossed the incumbent, the incumbent itself is the tightest
		// proven lower bound on the optimum.
		if res.Bound > res.Objective {
			res.Bound = res.Objective
		}
	} else if st != Infeasible && st != Unbounded {
		res.Status = NoSolution
	}
	return res
}
