package milp

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"ctdvs/internal/lp"
)

// dvsShaped builds a random MILP with the structure of the paper's DVS
// formulation: groups of binary mode variables with an SOS1 equality each,
// random positive energy objective, and a shared deadline-style budget row.
// Coefficients are continuous random draws, so the optimum is unique almost
// surely and the incumbent is pinned down for the serial-vs-parallel
// comparison.
func dvsShaped(rng *rand.Rand) *Problem {
	groups := 3 + rng.Intn(5) // 3-7 edge groups
	modes := 2 + rng.Intn(3)  // 2-4 modes per group
	p := lp.NewProblem()
	var ints []int
	var sos [][]int
	var budget []lp.Term
	minT, maxT := 0.0, 0.0
	for g := 0; g < groups; g++ {
		row := make([]lp.Term, modes)
		grp := make([]int, modes)
		lo, hi := math.Inf(1), math.Inf(-1)
		for m := 0; m < modes; m++ {
			energy := rng.Float64()*9 + 1
			v := p.AddVariable(energy, 0, 1)
			row[m] = lp.Term{Var: v, Coef: 1}
			grp[m] = v
			ints = append(ints, v)
			t := rng.Float64()*9 + 1
			budget = append(budget, lp.Term{Var: v, Coef: t})
			lo = math.Min(lo, t)
			hi = math.Max(hi, t)
		}
		p.MustAddConstraint(row, lp.EQ, 1)
		sos = append(sos, grp)
		minT += lo
		maxT += hi
	}
	// A deadline strictly between the all-fastest and all-slowest totals, so
	// the relaxation mixes modes and branching is exercised.
	p.MustAddConstraint(budget, lp.LE, minT+(0.2+0.4*rng.Float64())*(maxT-minT))
	return &Problem{LP: p, Integers: ints, SOS1: sos}
}

// TestParallelMatchesSerial solves randomized DVS-shaped MILPs with one and
// with eight workers and requires identical status, objective, and solution
// vector under the deterministic (bound, node-id) tie-break.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		prob := dvsShaped(rng)
		serial, err := Solve(prob, &Options{Workers: 1})
		if err != nil {
			t.Fatalf("trial %d serial: %v", trial, err)
		}
		// ParallelThreshold: -1 forces the pool on — these trees are small
		// enough that the default gate would auto-serialize them, and the
		// point here is the genuinely parallel path.
		par, err := Solve(prob, &Options{Workers: 8, ParallelThreshold: -1})
		if err != nil {
			t.Fatalf("trial %d parallel: %v", trial, err)
		}
		if serial.Status != par.Status {
			t.Fatalf("trial %d: status serial=%v parallel=%v", trial, serial.Status, par.Status)
		}
		if serial.Status != Optimal {
			t.Fatalf("trial %d: status %v, want optimal", trial, serial.Status)
		}
		if d := math.Abs(serial.Objective - par.Objective); d > 1e-9 {
			t.Errorf("trial %d: objective serial=%v parallel=%v (Δ=%g)",
				trial, serial.Objective, par.Objective, d)
		}
		if len(serial.X) != len(par.X) {
			t.Fatalf("trial %d: solution lengths differ: %d vs %d", trial, len(serial.X), len(par.X))
		}
		for j := range serial.X {
			if math.Abs(serial.X[j]-par.X[j]) > 1e-9 {
				t.Errorf("trial %d: x[%d] serial=%v parallel=%v", trial, j, serial.X[j], par.X[j])
			}
		}
	}
}

// TestParallelReproducible solves the same problem twice at the same worker
// count and requires bit-identical results: batch formation and commit order
// depend only on queue state, never on worker timing.
func TestParallelReproducible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		prob := dvsShaped(rng)
		a, err := Solve(prob, &Options{Workers: 4, ParallelThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Solve(prob, &Options{Workers: 4, ParallelThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}
		if a.Status != b.Status || a.Objective != b.Objective ||
			a.Nodes != b.Nodes || a.LPIters != b.LPIters {
			t.Fatalf("trial %d: runs differ: %+v vs %+v", trial, a, b)
		}
		for j := range a.X {
			if a.X[j] != b.X[j] {
				t.Fatalf("trial %d: x[%d] differs across runs: %v vs %v", trial, j, a.X[j], b.X[j])
			}
		}
	}
}

// TestParallelWarmDeterministic pins down the warm-start path under
// concurrency: with warm starts enabled (the default), a parallel solve must
// match the serial solve exactly — objective, point, node count, and the
// warm/cold/fallback/pivot statistics, all of which are accumulated in the
// sequential commit step and therefore independent of worker timing. It also
// checks warm starts are doing real work (warm hits dominate, pivots drop
// against a cold-only run) and that disabling them changes statistics but
// not answers. Run under -race this doubles as the data-race check for the
// shared parent bases and per-worker scratches.
func TestParallelWarmDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	sawWarmWin := false
	for trial := 0; trial < 12; trial++ {
		prob := dvsShaped(rng)
		serial, err := Solve(prob, &Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Solve(prob, &Options{Workers: 8, ParallelThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}
		par2, err := Solve(prob, &Options{Workers: 8, ParallelThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Solve(prob, &Options{Workers: 8, ParallelThreshold: -1, DisableWarmStart: true})
		if err != nil {
			t.Fatal(err)
		}

		// Parallel warm == serial warm, including every statistic the commit
		// step accumulates. (LPIters and the stats can differ between worker
		// counts — batches solve nodes speculatively — but must be identical
		// across runs at one worker count; that is checked via par2.)
		if serial.Status != par.Status || serial.Objective != par.Objective {
			t.Fatalf("trial %d: serial %v/%v vs parallel %v/%v",
				trial, serial.Status, serial.Objective, par.Status, par.Objective)
		}
		for j := range serial.X {
			if serial.X[j] != par.X[j] {
				t.Fatalf("trial %d: x[%d] serial=%v parallel=%v", trial, j, serial.X[j], par.X[j])
			}
		}
		if par.Nodes != par2.Nodes || par.LPIters != par2.LPIters ||
			par.WarmSolves != par2.WarmSolves || par.ColdSolves != par2.ColdSolves ||
			par.WarmFallbacks != par2.WarmFallbacks || par.LPPivots != par2.LPPivots {
			t.Fatalf("trial %d: warm statistics not reproducible:\n%+v\nvs\n%+v", trial, par, par2)
		}

		// Warm starts must not change the answer, only the work.
		if cold.Status != par.Status || math.Abs(cold.Objective-par.Objective) > 1e-9 {
			t.Fatalf("trial %d: disabling warm starts changed the answer: %v/%v vs %v/%v",
				trial, cold.Status, cold.Objective, par.Status, par.Objective)
		}
		if cold.WarmSolves != 0 {
			t.Fatalf("trial %d: DisableWarmStart still warm-started %d solves", trial, cold.WarmSolves)
		}
		if total := par.WarmSolves + par.ColdSolves + par.WarmFallbacks; total != par.LPIters {
			t.Fatalf("trial %d: warm+cold+fallback=%d, want LPIters=%d", trial, total, par.LPIters)
		}
		if par.WarmSolves > par.ColdSolves && par.LPPivots < cold.LPPivots {
			sawWarmWin = true
		}
	}
	if !sawWarmWin {
		t.Error("warm starts never dominated a solve; the warm path looks disabled")
	}
}

// TestAutoSerialGating pins the open-node gate on the worker pool: a
// Workers > 1 solve whose tree never reaches ParallelThreshold open nodes
// must run the serial algorithm verbatim — identical answer AND identical
// search statistics to Workers: 1, with AutoSerialized reported — while
// forcing the gate open keeps the old always-parallel behaviour.
func TestAutoSerialGating(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sawGated := false
	for trial := 0; trial < 12; trial++ {
		prob := dvsShaped(rng)
		serial, err := Solve(prob, &Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		gated, err := Solve(prob, &Options{Workers: 8}) // default threshold
		if err != nil {
			t.Fatal(err)
		}
		forced, err := Solve(prob, &Options{Workers: 8, ParallelThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}

		if serial.AutoSerialized {
			t.Fatalf("trial %d: Workers:1 solve reported AutoSerialized", trial)
		}
		if forced.AutoSerialized {
			t.Fatalf("trial %d: ParallelThreshold:-1 solve reported AutoSerialized", trial)
		}
		if gated.Status != serial.Status || gated.Objective != serial.Objective {
			t.Fatalf("trial %d: gated %v/%v vs serial %v/%v",
				trial, gated.Status, gated.Objective, serial.Status, serial.Objective)
		}
		for j := range serial.X {
			if gated.X[j] != serial.X[j] {
				t.Fatalf("trial %d: x[%d] gated=%v serial=%v", trial, j, gated.X[j], serial.X[j])
			}
		}
		if math.Abs(forced.Objective-serial.Objective) > 1e-9 {
			t.Fatalf("trial %d: forced-parallel objective %v vs serial %v",
				trial, forced.Objective, serial.Objective)
		}
		if gated.AutoSerialized {
			sawGated = true
			// Never-spawned pool ⇒ every round was a 1-node batch ⇒ the whole
			// search, statistics included, is the serial one.
			if gated.Nodes != serial.Nodes || gated.LPIters != serial.LPIters ||
				gated.WarmSolves != serial.WarmSolves || gated.ColdSolves != serial.ColdSolves ||
				gated.WarmFallbacks != serial.WarmFallbacks || gated.LPPivots != serial.LPPivots {
				t.Fatalf("trial %d: auto-serialized stats differ from serial:\n%+v\nvs\n%+v",
					trial, gated, serial)
			}
		}
	}
	if !sawGated {
		t.Error("no trial auto-serialized; the default threshold gates nothing")
	}

	// A tree that outgrows the default threshold must start the pool.
	big, err := Solve(marketSplit(24, 5), &Options{Workers: 4, MaxNodes: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if big.AutoSerialized {
		t.Errorf("large tree (%d nodes) still auto-serialized at the default threshold", big.Nodes)
	}
}

// marketSplit builds a subset-sum-style 0/1 problem with two equality rows of
// random integer weights; rounding almost never satisfies the equalities, so
// branch and bound has to enumerate and the open-node frontier grows well past
// any small threshold.
func marketSplit(n int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := lp.NewProblem()
	var bins []int
	rows := make([][]lp.Term, 2)
	tot := make([]float64, 2)
	for j := 0; j < n; j++ {
		v := p.AddVariable(rng.Float64(), 0, 1)
		bins = append(bins, v)
		for r := range rows {
			w := float64(1 + rng.Intn(99))
			rows[r] = append(rows[r], lp.Term{Var: v, Coef: w})
			tot[r] += w
		}
	}
	for r := range rows {
		p.MustAddConstraint(rows[r], lp.EQ, math.Floor(tot[r]/2))
	}
	return &Problem{LP: p, Integers: bins}
}

// bigKnapsack builds a problem large enough that limits fire mid-search.
func bigKnapsack(n int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := lp.NewProblem()
	var bins []int
	var terms []lp.Term
	for j := 0; j < n; j++ {
		v := p.AddVariable(rng.Float64()-0.5, 0, 1)
		bins = append(bins, v)
		terms = append(terms, lp.Term{Var: v, Coef: rng.Float64()})
	}
	p.MustAddConstraint(terms, lp.LE, float64(n)/4)
	return &Problem{LP: p, Integers: bins}
}

// TestParallelCancellation interrupts parallel solves via TimeLimit and
// MaxNodes and checks for a clean shutdown: the solve returns promptly and
// every pool worker exits before Solve does (no goroutine leak).
func TestParallelCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, opts := range []*Options{
		{Workers: 8, ParallelThreshold: -1, TimeLimit: 2 * time.Millisecond},
		{Workers: 8, ParallelThreshold: -1, MaxNodes: 5},
	} {
		done := make(chan *Result, 1)
		go func() {
			res, err := Solve(bigKnapsack(60, 11), opts)
			if err != nil {
				t.Error(err)
			}
			done <- res
		}()
		select {
		case res := <-done:
			switch res.Status {
			case Optimal, Feasible, NoSolution:
			default:
				t.Errorf("opts %+v: unexpected status %v", opts, res.Status)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("opts %+v: solve did not return after cancellation", opts)
		}
	}
	// Workers are joined before Solve returns; give the test goroutines a
	// moment to unwind, then require the goroutine count back near baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
