package milp

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestSolveContextCancelMidSearch cancels a long search shortly after it
// starts and asserts the solver abandons the tree: SolveContext returns the
// context's error (never a partial result) and does so promptly. The instance
// deterministically needs hundreds of milliseconds of search, so the 20 ms
// cancel always lands mid-tree with a wide margin.
func TestSolveContextCancelMidSearch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := SolveContext(ctx, marketSplit(32, 5), &Options{Workers: 1, MaxNodes: 500000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (res=%+v), want context.Canceled", err, res)
	}
	if res != nil {
		t.Fatalf("cancelled solve returned a result: %+v", res)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("cancelled solve took %v to return", d)
	}
}

// TestSolveContextDeadline drives cancellation through a context deadline —
// the path a server request timeout takes into the solver.
func TestSolveContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := SolveContext(ctx, marketSplit(32, 5), &Options{Workers: 1, MaxNodes: 500000})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestSolveContextCompletedSolveUnaffected asserts a context that stays alive
// changes nothing: the result is identical to a plain Solve.
func TestSolveContextCompletedSolveUnaffected(t *testing.T) {
	prob := bigKnapsack(30, 3)
	plain, err := Solve(prob, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx, err := SolveContext(ctx, prob, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Status != withCtx.Status || plain.Objective != withCtx.Objective ||
		plain.Nodes != withCtx.Nodes {
		t.Fatalf("context changed the search: %+v vs %+v", plain, withCtx)
	}
}
