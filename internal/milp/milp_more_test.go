package milp

import (
	"math"
	"math/rand"
	"testing"

	"ctdvs/internal/lp"
)

func TestGeneralIntegerVariables(t *testing.T) {
	// max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6, x,y integer in [0, 10].
	// Integer optimum: x=4, y=0 (6·4 = 24 binding), objective 20.
	p := lp.NewProblem()
	x := p.AddVariable(-5, 0, 10)
	y := p.AddVariable(-4, 0, 10)
	p.MustAddConstraint([]lp.Term{{Var: x, Coef: 6}, {Var: y, Coef: 4}}, lp.LE, 24)
	p.MustAddConstraint([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 2}}, lp.LE, 6)
	res, err := Solve(&Problem{LP: p, Integers: []int{x, y}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective+20) > 1e-6 {
		t.Errorf("status %v obj %v, want optimal -20 (x=%v)", res.Status, res.Objective, res.X)
	}
	if math.Abs(res.X[x]-4) > 1e-6 || math.Abs(res.X[y]) > 1e-6 {
		t.Errorf("x = %v, want (4, 0)", res.X)
	}
}

func TestGapStopsEarlyButNearOptimal(t *testing.T) {
	// A knapsack with many similar items: a 5% gap must return a solution
	// within 5% of the true optimum.
	rng := rand.New(rand.NewSource(8))
	p := lp.NewProblem()
	var bins []int
	var weight []lp.Term
	values := make([]float64, 25)
	weights := make([]float64, 25)
	for j := range values {
		values[j] = 10 + rng.Float64()
		weights[j] = 5 + rng.Float64()
		v := p.AddVariable(-values[j], 0, 1)
		bins = append(bins, v)
		weight = append(weight, lp.Term{Var: v, Coef: weights[j]})
	}
	p.MustAddConstraint(weight, lp.LE, 60)

	exact, err := Solve(&Problem{LP: p, Integers: bins}, nil)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Solve(&Problem{LP: p, Integers: bins}, &Options{Gap: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Status != Optimal && loose.Status != Feasible {
		t.Fatalf("loose status %v", loose.Status)
	}
	if loose.Objective > exact.Objective*(1-0.055) {
		// Objectives are negative (maximization); loose must be within 5.5%.
		t.Errorf("gap solution %v too far from optimum %v", loose.Objective, exact.Objective)
	}
	if loose.Nodes > exact.Nodes {
		t.Logf("note: loose gap explored more nodes (%d vs %d)", loose.Nodes, exact.Nodes)
	}
}

func TestSOS1HeuristicFindsIncumbentFast(t *testing.T) {
	// A pure SOS1 selection problem is solved by the rounding heuristic at
	// the root; node count should stay tiny.
	p := lp.NewProblem()
	var groups [][]int
	var ints []int
	rng := rand.New(rand.NewSource(5))
	var budget []lp.Term
	for g := 0; g < 40; g++ {
		var row []lp.Term
		var grp []int
		for m := 0; m < 3; m++ {
			v := p.AddVariable(rng.Float64()*5+float64(3-m), 0, 1)
			row = append(row, lp.Term{Var: v, Coef: 1})
			grp = append(grp, v)
			ints = append(ints, v)
			budget = append(budget, lp.Term{Var: v, Coef: float64(m + 1)})
		}
		p.MustAddConstraint(row, lp.EQ, 1)
		groups = append(groups, grp)
	}
	p.MustAddConstraint(budget, lp.LE, 90)
	res, err := Solve(&Problem{LP: p, Integers: ints, SOS1: groups}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	for _, grp := range groups {
		sum := 0.0
		for _, v := range grp {
			sum += res.X[v]
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("SOS1 violated: sum %v", sum)
		}
	}
}

func TestBoundNeverExceedsObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		p := lp.NewProblem()
		var bins []int
		var terms []lp.Term
		for j := 0; j < 8; j++ {
			v := p.AddVariable(rng.Float64()*4-2, 0, 1)
			bins = append(bins, v)
			terms = append(terms, lp.Term{Var: v, Coef: rng.Float64()*3 - 1})
		}
		p.MustAddConstraint(terms, lp.LE, rng.Float64()*4)
		res, err := Solve(&Problem{LP: p, Integers: bins}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status == Optimal && res.Bound > res.Objective+1e-6 {
			t.Fatalf("trial %d: bound %v above objective %v", trial, res.Bound, res.Objective)
		}
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal:    "optimal",
		Feasible:   "feasible",
		Infeasible: "infeasible",
		Unbounded:  "unbounded",
		NoSolution: "no-solution",
	} {
		if s.String() != want {
			t.Errorf("%d: %q", s, s.String())
		}
	}
}
