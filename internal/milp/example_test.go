package milp_test

import (
	"fmt"

	"ctdvs/internal/lp"
	"ctdvs/internal/milp"
)

func ExampleSolve() {
	// A 0/1 knapsack: maximize 8a + 11b + 6c + 4d with 5a + 7b + 4c + 3d ≤ 14.
	p := lp.NewProblem()
	values := []float64{8, 11, 6, 4}
	weights := []float64{5, 7, 4, 3}
	var vars []int
	var knap []lp.Term
	for i := range values {
		v := p.AddVariable(-values[i], 0, 1)
		vars = append(vars, v)
		knap = append(knap, lp.Term{Var: v, Coef: weights[i]})
	}
	p.MustAddConstraint(knap, lp.LE, 14)

	res, err := milp.Solve(&milp.Problem{LP: p, Integers: vars}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%v: value %.0f, picks:", res.Status, -res.Objective)
	for i, v := range vars {
		if res.X[v] > 0.5 {
			fmt.Printf(" %c", 'a'+i)
		}
	}
	fmt.Println()
	// Output:
	// optimal: value 21, picks: b c d
}
