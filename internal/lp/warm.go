// Warm-started re-solves. A branch-and-bound child differs from its parent
// by one tightened variable bound, and bounds never enter the tableau: the
// parent's optimal basis B is still a valid (and dual-feasible) basis for the
// child, because reduced costs depend only on B and the objective. Restoring
// that basis and running a few dual simplex pivots to repair the primal
// infeasibility the moved bound introduced replaces a full phase-1 + phase-2
// solve. Whenever restoration or the dual phase cannot be completed cleanly,
// the solver falls back to the cold path, so warm-starting is purely an
// optimization and never changes what is returned beyond the choice among
// equally-optimal bases.
package lp

import "math"

// Basis is a compact snapshot of an optimal simplex basis: the set of basic
// columns (one per row) and the bound at which every nonbasic structural or
// slack column rests. It is immutable after creation and safe to share
// across goroutines; restoring it copies into per-solve state.
type Basis struct {
	n, m  int
	basis []int       // column basic in each row
	stat  []varStatus // status per structural+slack column
}

// WarmStart carries optional acceleration state into SolveBoundedWarm: a
// starting basis from a related solve and/or reusable scratch buffers.
// Either field may be nil.
type WarmStart struct {
	// Basis is the starting basis, typically Solution.Basis of a parent
	// solve of the same Problem under looser bounds.
	Basis *Basis
	// Scratch is the working storage to (re)use. One scratch per goroutine.
	Scratch *Scratch
}

// snapshot captures the current (optimal) basis. Rows whose basic column is
// an artificial (redundant constraints left over from phase 1, basic at
// zero) are recorded through the row's slack instead — the artificial column
// equals ±that slack column. When even that substitution is unavailable the
// snapshot is abandoned and nil is returned; callers then solve cold.
func (s *simplex) snapshot() *Basis {
	nm := s.n + s.m
	b := &Basis{n: s.n, m: s.m, basis: make([]int, s.m), stat: make([]varStatus, nm)}
	copy(b.stat, s.stat[:nm])
	for i := 0; i < s.m; i++ {
		col := s.basis[i]
		if col >= nm {
			// Artificial: find its home row (the row it was created for; it
			// may be basic in a different row after pivots) and substitute
			// that row's slack.
			home := -1
			for r := 0; r < s.m; r++ {
				if s.artOf[r] == col {
					home = r
					break
				}
			}
			if home < 0 {
				return nil
			}
			slack := s.n + home
			if b.stat[slack] == basic {
				return nil // slack already basic elsewhere; give up
			}
			col = slack
			b.stat[slack] = basic
		}
		b.basis[i] = col
	}
	return b
}

// restoreBasis rebuilds the tableau in the given basis: statuses are copied,
// the basis columns are eliminated to identity (slack basis columns pair
// with their home rows for free; structural basis columns are pivoted in
// with greedy partial pivoting), basic values are recomputed from the
// transformed right-hand side, and the reduced-cost row is rebuilt and
// checked for dual feasibility. It reports false when the basis does not fit
// the problem, a pivot would be numerically unsafe, or dual feasibility does
// not hold — the caller then falls back to a cold solve.
func (s *simplex) restoreBasis(b *Basis) bool {
	n, m := s.n, s.m
	if b == nil || b.n != n || b.m != m {
		return false
	}
	// Adopt statuses and validate them against the child bounds.
	nbasic := 0
	for j := 0; j < n+m; j++ {
		st := b.stat[j]
		switch st {
		case basic:
			nbasic++
		case atUpper:
			if math.IsInf(s.hi[j], 1) {
				return false // cannot rest at an infinite bound
			}
		}
		s.stat[j] = st
	}
	if nbasic != m {
		return false
	}

	// Columns the elimination must keep exact: everything that can move
	// (lo < hi), every basis column, and every frozen column resting at a
	// nonzero value (its contribution to xb is read after elimination).
	// Columns fixed at value zero stay stale and are never read.
	elim := ints(&s.scr.elim, 0, n+2*m)
	for j := 0; j < n+m; j++ {
		switch {
		case s.lo[j] < s.hi[j], b.stat[j] == basic:
			elim = append(elim, j)
		case b.stat[j] == atLower && s.lo[j] != 0:
			elim = append(elim, j)
		case b.stat[j] == atUpper && s.hi[j] != 0:
			elim = append(elim, j)
		}
	}

	// Slack basis columns pair with their home rows: a slack's raw column is
	// the home row's identity column, and no structural pivot below ever
	// introduces that slack into another row (pivot rows are never slack
	// homes, and only the home row carries the slack's nonzero). Rows left
	// over take the structural basis columns.
	taken := make([]bool, m)
	for j := n; j < n+m; j++ {
		if b.stat[j] == basic {
			taken[j-n] = true
		}
	}
	const pivTol = 1e-8
	for j := 0; j < n; j++ {
		if b.stat[j] != basic {
			continue
		}
		// Greedy partial pivoting: the largest entry of column j among the
		// rows still unassigned. Nonsingularity of the basis guarantees a
		// nonzero exists in exact arithmetic; near-zero means the basis is
		// numerically unusable here.
		best, row := pivTol, -1
		for i := 0; i < m; i++ {
			if !taken[i] {
				if v := math.Abs(s.tab[i][j]); v > best {
					best, row = v, i
				}
			}
		}
		if row < 0 {
			return false
		}
		s.elimPivot(row, j, elim)
		taken[row] = true
		s.setBasic(row, j)
	}
	for i := 0; i < m; i++ {
		if b.stat[n+i] == basic {
			s.setBasic(i, n+i)
		}
	}
	// nbasic == m with disjoint slack-home and structural assignments means
	// every row now has exactly one basic column.

	// Basic values: xb = B⁻¹b − Σ_{nonbasic j} (B⁻¹A)_j · x_j.
	copy(s.xb, s.rhs)
	for _, j := range elim {
		if s.stat[j] == basic {
			continue
		}
		v := s.lo[j]
		if s.stat[j] == atUpper {
			v = s.hi[j]
		}
		if v == 0 {
			continue
		}
		for i := 0; i < m; i++ {
			if a := s.tab[i][j]; a != 0 {
				s.xb[i] -= a * v
			}
		}
	}

	// Reduced costs for the real objective; the parent's optimality makes
	// them dual feasible up to tolerance slop, which is what the dual phase
	// relies on.
	s.initCostRow(s.cost)
	const dualTol = 1e-7
	for _, j := range s.active {
		switch s.stat[j] {
		case atLower:
			if s.d[j] < -dualTol {
				return false
			}
		case atUpper:
			if s.d[j] > dualTol {
				return false
			}
		}
	}
	return true
}

// elimPivot is the restoration pivot: identical row operations to pivot but
// over the elimination column set, with the right-hand side transformed
// alongside and no reduced-cost row yet.
func (s *simplex) elimPivot(r, enter int, elim []int) {
	s.pivots++
	prow := s.tab[r]
	inv := 1 / prow[enter]
	for _, j := range elim {
		prow[j] *= inv
	}
	prow[enter] = 1 // exact
	s.rhs[r] *= inv
	for i := 0; i < s.m; i++ {
		if i == r {
			continue
		}
		f := s.tab[i][enter]
		if f == 0 {
			continue
		}
		row := s.tab[i]
		for _, j := range elim {
			row[j] -= f * prow[j]
		}
		row[enter] = 0 // exact
		s.rhs[i] -= f * s.rhs[r]
	}
}

// dualSimplex repairs primal feasibility while preserving dual feasibility:
// each iteration picks the most-violated basic variable, drives it out at
// the bound it violates, and brings in the nonbasic column whose reduced
// cost survives the smallest dual ratio. With the objective unchanged from
// the parent solve this terminates in a handful of pivots for a single
// tightened bound. Returns Optimal when no row is violated, Infeasible when
// a violated row has no eligible entering column (a dual ray — the
// tightened problem has no feasible point), or IterationLimit when the
// degeneracy guard trips (callers fall back to a cold solve).
func (s *simplex) dualSimplex() Status {
	tol := s.opt.Tol
	maxIter := 4*(s.m+s.n) + 100
	for it := 0; ; it++ {
		if it >= maxIter || s.iters >= s.opt.MaxIters {
			return IterationLimit
		}
		// Leaving row: worst bound violation among basic variables.
		r, worst, below := -1, tol, false
		for i := 0; i < s.m; i++ {
			bvar := s.basis[i]
			if v := s.lo[bvar] - s.xb[i]; v > worst {
				worst, r, below = v, i, true
			}
			if v := s.xb[i] - s.hi[bvar]; v > worst {
				worst, r, below = v, i, false
			}
		}
		if r < 0 {
			return Optimal
		}
		s.iters++

		leave := s.basis[r]
		target := s.hi[leave]
		if below {
			target = s.lo[leave]
		}

		// Dual ratio test: θ = d[j]/t[r][j] must carry the sign that keeps
		// the leaving variable's new reduced cost feasible at the bound it
		// exits on; among eligible columns the smallest |θ| preserves dual
		// feasibility everywhere else. Ties prefer the larger pivot.
		row := s.tab[r]
		enter, bestRatio, bestA := -1, math.Inf(1), 0.0
		for _, j := range s.active {
			if s.stat[j] == basic {
				continue
			}
			a := row[j]
			if math.Abs(a) <= tol {
				continue
			}
			// Eligibility: moving j within its feasible direction must move
			// xb[r] toward the violated bound.
			if below {
				if !(s.stat[j] == atLower && a < 0 || s.stat[j] == atUpper && a > 0) {
					continue
				}
			} else {
				if !(s.stat[j] == atLower && a > 0 || s.stat[j] == atUpper && a < 0) {
					continue
				}
			}
			ratio := math.Abs(s.d[j]) / math.Abs(a)
			switch {
			case ratio < bestRatio-tol:
				enter, bestRatio, bestA = j, ratio, math.Abs(a)
			case ratio <= bestRatio+tol && math.Abs(a) > bestA:
				enter, bestA = j, math.Abs(a)
				if ratio < bestRatio {
					bestRatio = ratio
				}
			}
		}
		if enter < 0 {
			// No column can move xb[r] toward its bound: the transformed row
			// proves the tightened problem infeasible.
			return Infeasible
		}

		// Entering step so the leaving variable lands exactly on its bound.
		delta := (s.xb[r] - target) / row[enter]
		col := s.columnOf(enter)
		for i := 0; i < s.m; i++ {
			if i != r && col[i] != 0 {
				s.xb[i] -= delta * col[i]
			}
		}
		enterVal := s.value(enter) + delta
		if below {
			s.stat[leave] = atLower
		} else {
			s.stat[leave] = atUpper
		}
		s.basicRow[leave] = -1
		s.pivot(r, enter)
		s.setBasic(r, enter)
		s.xb[r] = enterVal
	}
}

// solveWarm runs the warm-started path: restore the basis, repair primal
// feasibility with dual simplex, then let the primal iteration confirm
// optimality (and mop up any residual reduced-cost slop). ok=false means the
// warm attempt was abandoned and the caller must solve cold; a non-nil
// solution with ok=true is final.
func (s *simplex) solveWarm(b *Basis) (*Solution, bool) {
	if !s.restoreBasis(b) {
		return nil, false
	}
	switch s.dualSimplex() {
	case Infeasible:
		return &Solution{Status: Infeasible, Pivots: s.pivots, Warm: true}, true
	case IterationLimit:
		return nil, false
	}
	s.bland = false
	switch s.iterate(s.cost) {
	case IterationLimit, Unbounded:
		// A bound tightening cannot unbound a bounded parent; treat both as
		// numerical trouble and fall back.
		return nil, false
	}
	sol := s.extractSolution()
	sol.Warm = true
	return sol, true
}
