package lp_test

import (
	"fmt"
	"math"

	"ctdvs/internal/lp"
)

func ExampleProblem_Solve() {
	// Maximize 3x + 5y subject to x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18
	// (minimize the negation).
	p := lp.NewProblem()
	x := p.AddVariable(-3, 0, math.Inf(1))
	y := p.AddVariable(-5, 0, math.Inf(1))
	p.MustAddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.LE, 4)
	p.MustAddConstraint([]lp.Term{{Var: y, Coef: 2}}, lp.LE, 12)
	p.MustAddConstraint([]lp.Term{{Var: x, Coef: 3}, {Var: y, Coef: 2}}, lp.LE, 18)
	sol, err := p.Solve(nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%v: x=%.0f y=%.0f value=%.0f\n", sol.Status, sol.X[x], sol.X[y], -sol.Objective)
	// Output:
	// optimal: x=2 y=6 value=36
}
