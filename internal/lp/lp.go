// Package lp implements a dense, two-phase, bounded-variable primal simplex
// solver for linear programs. It is the relaxation engine underneath the
// MILP branch-and-bound in package milp, standing in for the CPLEX solver the
// paper used (the reproduction is offline and stdlib-only, so the solver is
// built from scratch).
//
// Problems are expressed as
//
//	minimize    cᵀx
//	subject to  aᵢᵀx  {≤, =, ≥}  bᵢ        for each constraint i
//	            loⱼ ≤ xⱼ ≤ hiⱼ             for each variable j
//
// Lower bounds must be finite (the DVS formulations only use non-negative
// variables); upper bounds may be +Inf. Maximization is expressed by negating
// the objective.
//
// The implementation keeps a full dense tableau (B⁻¹A plus a reduced-cost
// row), handles variable bounds natively (nonbasic variables rest at either
// bound; bound flips avoid pivots), obtains an initial feasible basis with
// per-row artificial variables in phase 1, and guards against cycling by
// switching from Dantzig pricing to Bland's rule when the objective stalls.
//
// # Concurrency
//
// Solving never mutates the Problem: every call to Solve or SolveBounded
// builds the tableau state it works on from scratch, so any number of
// goroutines may solve the same Problem simultaneously. Construction and
// mutation (AddVariable, AddConstraint, SetBounds, SetObjective) are not
// synchronized and must not race with solves; the intended pattern is
// build-once, solve-many. Branch-and-bound style per-call bound
// restrictions go through SolveBounded, which applies them to the private
// per-call state only.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota // aᵀx ≤ b
	GE           // aᵀx ≥ b
	EQ           // aᵀx = b
)

// String returns the conventional symbol for the operator.
func (op Op) String() string {
	switch op {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// Term is one coefficient of a linear constraint: Coef · x[Var].
type Term struct {
	Var  int
	Coef float64
}

type constraint struct {
	terms []Term
	op    Op
	rhs   float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create problems with NewProblem.
type Problem struct {
	obj    []float64
	lo, hi []float64
	cons   []constraint
	// rev counts mutations; Scratch uses it to invalidate its cached
	// raw-row template when the problem changed between solves.
	rev int
}

// NewProblem returns an empty linear program.
func NewProblem() *Problem { return &Problem{} }

// AddVariable appends a variable with the given objective coefficient and
// bounds, returning its index. Pass math.Inf(1) for an unbounded-above
// variable. The lower bound must be finite.
func (p *Problem) AddVariable(obj, lo, hi float64) int {
	p.rev++
	p.obj = append(p.obj, obj)
	p.lo = append(p.lo, lo)
	p.hi = append(p.hi, hi)
	return len(p.obj) - 1
}

// SetObjective replaces the objective coefficient of variable v.
func (p *Problem) SetObjective(v int, c float64) {
	p.rev++
	p.obj[v] = c
}

// Objective returns the objective coefficient of variable v.
func (p *Problem) Objective(v int) float64 { return p.obj[v] }

// SetBounds replaces the bounds of variable v. Branch-and-bound uses this to
// fix binaries.
func (p *Problem) SetBounds(v int, lo, hi float64) {
	p.rev++
	p.lo[v] = lo
	p.hi[v] = hi
}

// Bounds returns the bounds of variable v.
func (p *Problem) Bounds(v int) (lo, hi float64) { return p.lo[v], p.hi[v] }

// AddConstraint appends the constraint Σ terms {op} rhs and returns its
// index. Terms referencing the same variable are summed. Variable indices
// must already exist.
func (p *Problem) AddConstraint(terms []Term, op Op, rhs float64) (int, error) {
	merged := make(map[int]float64, len(terms))
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.obj) {
			return 0, fmt.Errorf("lp: constraint references unknown variable %d", t.Var)
		}
		merged[t.Var] += t.Coef
	}
	compact := make([]Term, 0, len(merged))
	for v, c := range merged {
		if c != 0 {
			compact = append(compact, Term{Var: v, Coef: c})
		}
	}
	p.rev++
	p.cons = append(p.cons, constraint{terms: compact, op: op, rhs: rhs})
	return len(p.cons) - 1, nil
}

// MustAddConstraint is AddConstraint but panics on error; convenient when the
// caller has just created the variables itself.
func (p *Problem) MustAddConstraint(terms []Term, op Op, rhs float64) int {
	i, err := p.AddConstraint(terms, op, rhs)
	if err != nil {
		panic(err)
	}
	return i
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.obj) }

// NumConstraints returns the number of constraints.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// Clone returns a deep copy of the problem. Branch-and-bound clones the root
// problem once and then mutates bounds per node.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		obj:  append([]float64(nil), p.obj...),
		lo:   append([]float64(nil), p.lo...),
		hi:   append([]float64(nil), p.hi...),
		cons: make([]constraint, len(p.cons)),
	}
	for i, c := range p.cons {
		q.cons[i] = constraint{
			terms: append([]Term(nil), c.terms...),
			op:    c.op,
			rhs:   c.rhs,
		}
	}
	return q
}

// Status describes the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterationLimit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	X         []float64 // variable values (valid when Status == Optimal)
	Objective float64   // cᵀx at X

	// Basis snapshots the optimal basis for warm-starting related solves
	// (nil unless Status == Optimal, or when the basis could not be
	// captured cleanly). It is immutable and safe to share.
	Basis *Basis
	// Pivots counts tableau pivot operations this solve performed across
	// all phases, including basis-restoration pivots on warm starts.
	Pivots int
	// Warm reports that the solve ran from the supplied starting basis.
	Warm bool
	// FellBack reports that a starting basis was supplied but rejected
	// (validation or the dual phase failed) and the solve completed cold.
	FellBack bool
}

// Options tunes the solver. The zero value selects defaults.
type Options struct {
	// MaxIters bounds the total number of simplex iterations across both
	// phases. 0 selects 50·(m+n)+10000.
	MaxIters int
	// Tol is the feasibility/optimality tolerance. 0 selects 1e-9.
	Tol float64
}

// ErrBadModel reports a structurally invalid problem (no variables,
// inverted or non-finite lower bounds).
var ErrBadModel = errors.New("lp: invalid model")

// Bound is a [Lo, Hi] variable box, used by SolveBounded to restrict
// variables for one solve without mutating the Problem.
type Bound struct {
	Lo, Hi float64
}

// Solve optimizes the problem and returns the solution. The problem itself
// is not modified, so concurrent Solve calls on one Problem are safe. A nil
// opts selects defaults.
func (p *Problem) Solve(opts *Options) (*Solution, error) {
	return p.SolveBounded(opts, nil)
}

// SolveBounded optimizes the problem as if every variable v listed in
// overrides had bounds overrides[v] instead of its stored bounds. The
// Problem is not mutated — the overrides live only in the per-call solver
// state — which makes SolveBounded safe to call from many goroutines on a
// shared Problem; branch-and-bound workers use it to fix binaries per node.
func (p *Problem) SolveBounded(opts *Options, overrides map[int]Bound) (*Solution, error) {
	return p.SolveBoundedWarm(opts, overrides, nil)
}

// SolveBoundedWarm is SolveBounded with optional warm-start state. When
// warm.Basis is set (typically Solution.Basis from a solve of the same
// Problem under looser bounds) the solver restores that basis and re-solves
// with a dual simplex phase instead of the two-phase cold start; when the
// restoration or the dual phase fails validation it transparently falls back
// to the cold solve, so the answer is never at risk. When warm.Scratch is
// set the solve reuses its buffers and cached row template, making repeated
// solves allocation-free; a Scratch must not be shared between concurrent
// solves.
func (p *Problem) SolveBoundedWarm(opts *Options, overrides map[int]Bound, warm *WarmStart) (*Solution, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	n := len(p.obj)
	m := len(p.cons)
	if n == 0 {
		return nil, fmt.Errorf("%w: no variables", ErrBadModel)
	}
	if o.MaxIters == 0 {
		o.MaxIters = 50*(m+n) + 10000
	}
	for v := range overrides {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("%w: bound override for unknown variable %d", ErrBadModel, v)
		}
	}
	for j := 0; j < n; j++ {
		lo, hi := p.lo[j], p.hi[j]
		if b, ok := overrides[j]; ok {
			lo, hi = b.Lo, b.Hi
		}
		if math.IsInf(lo, 0) || math.IsNaN(lo) {
			return nil, fmt.Errorf("%w: variable %d has non-finite lower bound", ErrBadModel, j)
		}
		if hi < lo {
			// An empty box is an infeasible model, not a structural error.
			return &Solution{Status: Infeasible}, nil
		}
	}

	var basis *Basis
	var sc *Scratch
	if warm != nil {
		basis, sc = warm.Basis, warm.Scratch
	}
	if sc == nil {
		sc = NewScratch()
	}
	pivots := 0
	if basis != nil {
		s := newSimplex(p, o, overrides, sc)
		if sol, ok := s.solveWarm(basis); ok {
			return sol, nil
		}
		// The warm attempt mutated the tableau; rebuild from the template
		// (a memcpy) and solve cold, carrying the wasted pivots into the
		// solve's count so the work is not under-reported.
		pivots = s.pivots
	}
	s := newSimplex(p, o, overrides, sc)
	s.pivots = pivots
	s.initColdBasis()
	sol, err := s.solve()
	if sol != nil && basis != nil {
		sol.FellBack = true
	}
	return sol, err
}
