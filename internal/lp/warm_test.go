package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomLP builds a random bounded-variable LP with mixed operators,
// including equality rows (phase-1 artificials), infinite upper bounds,
// fixed variables, and occasionally duplicated (redundant) rows — the
// degenerate shapes the warm-start path has to survive.
func randomLP(rng *rand.Rand) *Problem {
	n := 3 + rng.Intn(8)
	p := NewProblem()
	for j := 0; j < n; j++ {
		lo := 0.0
		if rng.Intn(3) == 0 {
			lo = -rng.Float64() * 2
		}
		hi := lo + rng.Float64()*4
		switch rng.Intn(5) {
		case 0:
			hi = math.Inf(1)
		case 1:
			hi = lo // fixed variable
		}
		p.AddVariable(rng.NormFloat64(), lo, hi)
	}
	rows := 2 + rng.Intn(6)
	var prev []Term
	var prevOp Op
	var prevRHS float64
	for i := 0; i < rows; i++ {
		if prev != nil && rng.Intn(6) == 0 {
			// Redundant duplicate row: keeps an artificial basic at zero.
			p.MustAddConstraint(prev, prevOp, prevRHS)
			continue
		}
		nt := 1 + rng.Intn(n)
		terms := make([]Term, 0, nt)
		for k := 0; k < nt; k++ {
			terms = append(terms, Term{Var: rng.Intn(n), Coef: rng.NormFloat64()})
		}
		op := Op(rng.Intn(3))
		// Bias the rhs so feasible problems are common but not guaranteed.
		rhs := rng.NormFloat64() * 3
		if op == LE {
			rhs += 2
		}
		if op == GE {
			rhs -= 2
		}
		p.MustAddConstraint(terms, op, rhs)
		prev, prevOp, prevRHS = terms, op, rhs
	}
	return p
}

// checkFeasible verifies that x satisfies the problem's constraints and the
// effective bounds within tolerance.
func checkFeasible(t *testing.T, p *Problem, overrides map[int]Bound, x []float64, tag string) {
	t.Helper()
	const tol = 1e-6
	for j := 0; j < p.NumVars(); j++ {
		lo, hi := p.Bounds(j)
		if b, ok := overrides[j]; ok {
			lo, hi = b.Lo, b.Hi
		}
		if x[j] < lo-tol || x[j] > hi+tol {
			t.Errorf("%s: x[%d]=%v outside [%v, %v]", tag, j, x[j], lo, hi)
		}
	}
	for i, c := range p.cons {
		lhs := 0.0
		for _, tm := range c.terms {
			lhs += tm.Coef * x[tm.Var]
		}
		switch c.op {
		case LE:
			if lhs > c.rhs+tol {
				t.Errorf("%s: row %d: %v > %v", tag, i, lhs, c.rhs)
			}
		case GE:
			if lhs < c.rhs-tol {
				t.Errorf("%s: row %d: %v < %v", tag, i, lhs, c.rhs)
			}
		case EQ:
			if math.Abs(lhs-c.rhs) > tol {
				t.Errorf("%s: row %d: %v != %v", tag, i, lhs, c.rhs)
			}
		}
	}
}

// tighten draws a random branching-style bound override for one variable:
// fix to a value, raise the lower bound, or cut the upper bound — sometimes
// past what the constraints allow, so infeasible children occur.
func tighten(rng *rand.Rand, p *Problem, ov map[int]Bound, x []float64) map[int]Bound {
	out := make(map[int]Bound, len(ov)+1)
	for k, v := range ov {
		out[k] = v
	}
	j := rng.Intn(p.NumVars())
	lo, hi := p.Bounds(j)
	if b, ok := out[j]; ok {
		lo, hi = b.Lo, b.Hi
	}
	ref := x[j]
	switch rng.Intn(4) {
	case 0: // branch down: cap at floor-like split
		out[j] = Bound{Lo: lo, Hi: ref - rng.Float64()*0.5}
	case 1: // branch up
		out[j] = Bound{Lo: ref + rng.Float64()*0.5, Hi: hi}
	case 2: // fix at the relaxation value
		out[j] = Bound{Lo: ref, Hi: ref}
	default: // aggressive tightening, often infeasible
		out[j] = Bound{Lo: ref + 1 + rng.Float64()*3, Hi: math.Max(hi, ref+10)}
	}
	if out[j].Hi < out[j].Lo {
		out[j] = Bound{Lo: out[j].Lo, Hi: out[j].Lo}
	}
	return out
}

// TestWarmMatchesCold is the warm-start property test: on randomized LPs and
// random bound-override sequences, the warm-started solve must agree with
// the cold solve on status and objective, and its point must be feasible —
// including degenerate bases and infeasible-after-tightening children. The
// warm chain threads each solve's basis into the next solve, like a
// branch-and-bound dive, reusing one scratch throughout.
func TestWarmMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sc := NewScratch()
	const tol = 1e-6
	solved, warmUsed := 0, 0
	for trial := 0; trial < 400; trial++ {
		p := randomLP(rng)
		root, err := p.Solve(nil)
		if err != nil || root.Status != Optimal {
			continue
		}
		solved++
		basis := root.Basis
		ov := map[int]Bound{}
		x := root.X
		for step := 0; step < 6; step++ {
			ov = tighten(rng, p, ov, x)
			cold, err := p.SolveBounded(nil, ov)
			if err != nil {
				t.Fatalf("trial %d step %d: cold: %v", trial, step, err)
			}
			warm, err := p.SolveBoundedWarm(nil, ov, &WarmStart{Basis: basis, Scratch: sc})
			if err != nil {
				t.Fatalf("trial %d step %d: warm: %v", trial, step, err)
			}
			if cold.Status != warm.Status {
				t.Fatalf("trial %d step %d: status cold=%v warm=%v (warm used: %v)",
					trial, step, cold.Status, warm.Status, warm.Warm)
			}
			if cold.Status != Optimal {
				break
			}
			if warm.Warm {
				warmUsed++
			}
			rel := math.Abs(cold.Objective - warm.Objective) / math.Max(1, math.Abs(cold.Objective))
			if rel > tol {
				t.Fatalf("trial %d step %d: objective cold=%v warm=%v",
					trial, step, cold.Objective, warm.Objective)
			}
			checkFeasible(t, p, ov, warm.X, "warm")
			basis = warm.Basis
			x = warm.X
		}
	}
	if solved < 50 {
		t.Fatalf("generator too weak: only %d/400 roots solved", solved)
	}
	if warmUsed == 0 {
		t.Fatal("warm start never engaged; the fast path is untested")
	}
	t.Logf("solved %d roots, %d warm-started child solves", solved, warmUsed)
}

// TestWarmAfterBranchFix exercises the exact branch-and-bound pattern on an
// SOS1-style LP: fix binaries of the relaxation one group at a time and
// warm-start each child from its parent's basis.
func TestWarmAfterBranchFix(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sc := NewScratch()
	for trial := 0; trial < 30; trial++ {
		groups := 3 + rng.Intn(4)
		modes := 3
		p := NewProblem()
		var budget []Term
		for g := 0; g < groups; g++ {
			row := make([]Term, modes)
			for m := 0; m < modes; m++ {
				v := p.AddVariable(rng.Float64()*9+1, 0, 1)
				row[m] = Term{Var: v, Coef: 1}
				budget = append(budget, Term{Var: v, Coef: float64(m + 1)})
			}
			p.MustAddConstraint(row, EQ, 1)
		}
		p.MustAddConstraint(budget, LE, float64(groups)*1.8)
		parent, err := p.Solve(nil)
		if err != nil || parent.Status != Optimal {
			t.Fatalf("trial %d: root %v %v", trial, err, parent)
		}
		basis := parent.Basis
		ov := map[int]Bound{}
		for g := 0; g < groups; g++ {
			// Fix group g to its largest relaxation member.
			best, bestV := -1, -1.0
			for m := 0; m < modes; m++ {
				if v := parent.X[g*modes+m]; v > bestV {
					best, bestV = g*modes+m, v
				}
			}
			for m := 0; m < modes; m++ {
				v := g*modes + m
				if v == best {
					ov[v] = Bound{Lo: 1, Hi: 1}
				} else {
					ov[v] = Bound{Lo: 0, Hi: 0}
				}
			}
			warm, err := p.SolveBoundedWarm(nil, ov, &WarmStart{Basis: basis, Scratch: sc})
			if err != nil {
				t.Fatal(err)
			}
			cold, err := p.SolveBounded(nil, ov)
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != cold.Status {
				t.Fatalf("trial %d group %d: status warm=%v cold=%v", trial, g, warm.Status, cold.Status)
			}
			if cold.Status != Optimal {
				break
			}
			if d := math.Abs(warm.Objective - cold.Objective); d > 1e-7 {
				t.Fatalf("trial %d group %d: objective warm=%v cold=%v", trial, g, warm.Objective, cold.Objective)
			}
			checkFeasible(t, p, ov, warm.X, "warm")
			basis = warm.Basis
		}
	}
}

// TestScratchReuseIsolation checks that a scratch carries no state between
// solves of different problems: interleaving two problems through one
// scratch returns the same answers as fresh solves.
func TestScratchReuseIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sc := NewScratch()
	for trial := 0; trial < 60; trial++ {
		a, b := randomLP(rng), randomLP(rng)
		fa, _ := a.Solve(nil)
		fb, _ := b.Solve(nil)
		sa, err := a.SolveBoundedWarm(nil, nil, &WarmStart{Scratch: sc})
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.SolveBoundedWarm(nil, nil, &WarmStart{Scratch: sc})
		if err != nil {
			t.Fatal(err)
		}
		if sa.Status != fa.Status || sb.Status != fb.Status {
			t.Fatalf("trial %d: scratch changed status: %v/%v vs %v/%v",
				trial, sa.Status, sb.Status, fa.Status, fb.Status)
		}
		if fa.Status == Optimal && math.Abs(sa.Objective-fa.Objective) > 1e-9 {
			t.Fatalf("trial %d: scratch changed objective %v vs %v", trial, sa.Objective, fa.Objective)
		}
		if fb.Status == Optimal && math.Abs(sb.Objective-fb.Objective) > 1e-9 {
			t.Fatalf("trial %d: scratch changed objective %v vs %v", trial, sb.Objective, fb.Objective)
		}
	}
}

// TestWarmBasisRejected checks the fallback path: a basis from a different
// problem shape must be rejected and the solve must still answer correctly.
func TestWarmBasisRejected(t *testing.T) {
	small := NewProblem()
	small.AddVariable(1, 0, 10)
	small.MustAddConstraint([]Term{{Var: 0, Coef: 1}}, GE, 2)
	ssol, err := small.Solve(nil)
	if err != nil || ssol.Status != Optimal {
		t.Fatal(err, ssol)
	}

	big := NewProblem()
	for j := 0; j < 4; j++ {
		big.AddVariable(float64(j+1), 0, 5)
	}
	big.MustAddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, GE, 3)
	sol, err := big.SolveBoundedWarm(nil, nil, &WarmStart{Basis: ssol.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if !sol.FellBack || sol.Warm {
		t.Fatalf("mismatched basis must fall back: Warm=%v FellBack=%v", sol.Warm, sol.FellBack)
	}
	if math.Abs(sol.Objective-3) > 1e-9 {
		t.Fatalf("objective %v, want 3", sol.Objective)
	}
}
