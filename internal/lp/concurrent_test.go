package lp

import (
	"math"
	"sync"
	"testing"
)

// assignmentLP builds the DVS-shaped assignment problem used to stress
// concurrent solving: SOS1-style equality rows plus one budget row.
func assignmentLP(groups, modes int) *Problem {
	p := NewProblem()
	var budget []Term
	for g := 0; g < groups; g++ {
		row := make([]Term, modes)
		for m := 0; m < modes; m++ {
			v := p.AddVariable(float64((g*7+m*13)%17)+1, 0, 1)
			row[m] = Term{Var: v, Coef: 1}
			budget = append(budget, Term{Var: v, Coef: float64(m + 1)})
		}
		p.MustAddConstraint(row, EQ, 1)
	}
	p.MustAddConstraint(budget, LE, float64(groups*2))
	return p
}

// TestConcurrentSolves solves one shared Problem from 16 goroutines at once
// (run under -race) and checks every solve agrees with the serial answer:
// solving clones all mutable state per call, so a shared Problem is safe.
func TestConcurrentSolves(t *testing.T) {
	p := assignmentLP(40, 3)
	want, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if want.Status != Optimal {
		t.Fatalf("status %v, want optimal", want.Status)
	}

	var wg sync.WaitGroup
	errs := make([]error, 16)
	sols := make([]*Solution, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sols[i], errs[i] = p.Solve(nil)
		}(i)
	}
	wg.Wait()
	for i := range sols {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if sols[i].Status != Optimal {
			t.Fatalf("goroutine %d: status %v", i, sols[i].Status)
		}
		if sols[i].Objective != want.Objective {
			t.Errorf("goroutine %d: objective %v, want %v", i, sols[i].Objective, want.Objective)
		}
	}
}

// TestConcurrentSolveBounded fixes different variables from different
// goroutines against the same shared Problem; no call may observe another
// call's overrides.
func TestConcurrentSolveBounded(t *testing.T) {
	p := assignmentLP(20, 3)
	base, err := p.Solve(nil)
	if err != nil || base.Status != Optimal {
		t.Fatalf("base solve: %v %v", err, base)
	}

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := i % p.NumVars()
			fix := float64(i % 2)
			sol, err := p.SolveBounded(nil, map[int]Bound{v: {Lo: fix, Hi: fix}})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			if sol.Status != Optimal && sol.Status != Infeasible {
				t.Errorf("goroutine %d: status %v", i, sol.Status)
				return
			}
			if sol.Status == Optimal {
				if math.Abs(sol.X[v]-fix) > 1e-9 {
					t.Errorf("goroutine %d: override ignored, x[%d]=%v want %v", i, v, sol.X[v], fix)
				}
				if sol.Objective < base.Objective-1e-9 {
					t.Errorf("goroutine %d: restricted objective %v beats base %v", i, sol.Objective, base.Objective)
				}
			}
		}(i)
	}
	wg.Wait()

	// The Problem's stored bounds must be untouched.
	for j := 0; j < p.NumVars(); j++ {
		if lo, hi := p.Bounds(j); lo != 0 || hi != 1 {
			t.Fatalf("bounds of %d mutated to [%v,%v]", j, lo, hi)
		}
	}
}
