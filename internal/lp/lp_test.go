package lp

import (
	"math"
	"math/rand"
	"testing"
)

const tol = 1e-6

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func TestTrivialBounds(t *testing.T) {
	// min x, 1 <= x <= 5 → x = 1.
	p := NewProblem()
	p.AddVariable(1, 1, 5)
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-1) > tol || math.Abs(sol.Objective-1) > tol {
		t.Errorf("got x=%v obj=%v", sol.X, sol.Objective)
	}
	// max x (min -x) → x = 5.
	p.SetObjective(0, -1)
	sol = solveOK(t, p)
	if math.Abs(sol.X[0]-5) > tol {
		t.Errorf("got x=%v", sol.X)
	}
}

func TestClassicTwoVar(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
	// Optimum: x=2, y=6, obj=36. (Dantzig's example.)
	p := NewProblem()
	x := p.AddVariable(-3, 0, math.Inf(1))
	y := p.AddVariable(-5, 0, math.Inf(1))
	p.MustAddConstraint([]Term{{x, 1}}, LE, 4)
	p.MustAddConstraint([]Term{{y, 2}}, LE, 12)
	p.MustAddConstraint([]Term{{x, 3}, {y, 2}}, LE, 18)
	sol := solveOK(t, p)
	if math.Abs(sol.X[x]-2) > tol || math.Abs(sol.X[y]-6) > tol {
		t.Errorf("got x=%v", sol.X)
	}
	if math.Abs(sol.Objective+36) > tol {
		t.Errorf("obj = %v, want -36", sol.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min 2x + 3y s.t. x + y = 10, x,y >= 0 → x=10, y=0, obj=20.
	p := NewProblem()
	x := p.AddVariable(2, 0, math.Inf(1))
	y := p.AddVariable(3, 0, math.Inf(1))
	p.MustAddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 10)
	sol := solveOK(t, p)
	if math.Abs(sol.X[x]-10) > tol || math.Abs(sol.X[y]) > tol {
		t.Errorf("got %v", sol.X)
	}
	if math.Abs(sol.Objective-20) > tol {
		t.Errorf("obj = %v", sol.Objective)
	}
}

func TestGEConstraint(t *testing.T) {
	// min x + y s.t. x + 2y >= 6, 2x + y >= 6 → x=y=2, obj=4.
	p := NewProblem()
	x := p.AddVariable(1, 0, math.Inf(1))
	y := p.AddVariable(1, 0, math.Inf(1))
	p.MustAddConstraint([]Term{{x, 1}, {y, 2}}, GE, 6)
	p.MustAddConstraint([]Term{{x, 2}, {y, 1}}, GE, 6)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-4) > tol {
		t.Errorf("obj = %v, want 4 (x=%v)", sol.Objective, sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x >= 5 and x <= 3 via constraints.
	p := NewProblem()
	x := p.AddVariable(1, 0, math.Inf(1))
	p.MustAddConstraint([]Term{{x, 1}}, GE, 5)
	p.MustAddConstraint([]Term{{x, 1}}, LE, 3)
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleBounds(t *testing.T) {
	p := NewProblem()
	p.AddVariable(1, 5, 3)
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x, x >= 0, no upper limit.
	p := NewProblem()
	p.AddVariable(-1, 0, math.Inf(1))
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestBoundFlip(t *testing.T) {
	// max x + y with 0<=x<=1, 0<=y<=1, x + y <= 10 (slack constraint):
	// optimum by pure bound flips, x=y=1.
	p := NewProblem()
	x := p.AddVariable(-1, 0, 1)
	y := p.AddVariable(-1, 0, 1)
	p.MustAddConstraint([]Term{{x, 1}, {y, 1}}, LE, 10)
	sol := solveOK(t, p)
	if math.Abs(sol.X[x]-1) > tol || math.Abs(sol.X[y]-1) > tol {
		t.Errorf("got %v", sol.X)
	}
}

func TestNonzeroLowerBounds(t *testing.T) {
	// min x + y, x >= 2, y >= 3, x + y >= 7 → obj 7.
	p := NewProblem()
	x := p.AddVariable(1, 2, math.Inf(1))
	y := p.AddVariable(1, 3, math.Inf(1))
	p.MustAddConstraint([]Term{{x, 1}, {y, 1}}, GE, 7)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-7) > tol {
		t.Errorf("obj = %v", sol.Objective)
	}
	if sol.X[x] < 2-tol || sol.X[y] < 3-tol {
		t.Errorf("bounds violated: %v", sol.X)
	}
}

func TestNegativeLowerBound(t *testing.T) {
	// min x, -5 <= x <= 5, x >= -3 → x = -3.
	p := NewProblem()
	x := p.AddVariable(1, -5, 5)
	p.MustAddConstraint([]Term{{x, 1}}, GE, -3)
	sol := solveOK(t, p)
	if math.Abs(sol.X[x]+3) > tol {
		t.Errorf("x = %v, want -3", sol.X[x])
	}
}

func TestRedundantConstraints(t *testing.T) {
	// Duplicated equalities exercise the redundant-row path in phase 1.
	p := NewProblem()
	x := p.AddVariable(1, 0, math.Inf(1))
	y := p.AddVariable(2, 0, math.Inf(1))
	p.MustAddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 4)
	p.MustAddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 4)
	p.MustAddConstraint([]Term{{x, 2}, {y, 2}}, EQ, 8)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-4) > tol {
		t.Errorf("obj = %v, want 4", sol.Objective)
	}
}

func TestDegenerate(t *testing.T) {
	// A classic degenerate LP (multiple constraints active at the origin).
	p := NewProblem()
	x := p.AddVariable(-0.75, 0, math.Inf(1))
	y := p.AddVariable(150, 0, math.Inf(1))
	z := p.AddVariable(-0.02, 0, math.Inf(1))
	w := p.AddVariable(6, 0, math.Inf(1))
	p.MustAddConstraint([]Term{{x, 0.25}, {y, -60}, {z, -0.04}, {w, 9}}, LE, 0)
	p.MustAddConstraint([]Term{{x, 0.5}, {y, -90}, {z, -0.02}, {w, 3}}, LE, 0)
	p.MustAddConstraint([]Term{{z, 1}}, LE, 1)
	// Beale's cycling example: optimum -0.05 at z=1.
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-(-0.05)) > 1e-4 {
		t.Errorf("obj = %v, want -0.05", sol.Objective)
	}
}

func TestMergedDuplicateTerms(t *testing.T) {
	// Terms referencing the same variable must be summed: x + x <= 4 ⇒ x <= 2.
	p := NewProblem()
	x := p.AddVariable(-1, 0, math.Inf(1))
	p.MustAddConstraint([]Term{{x, 1}, {x, 1}}, LE, 4)
	sol := solveOK(t, p)
	if math.Abs(sol.X[x]-2) > tol {
		t.Errorf("x = %v, want 2", sol.X[x])
	}
}

func TestBadVariableIndex(t *testing.T) {
	p := NewProblem()
	p.AddVariable(1, 0, 1)
	if _, err := p.AddConstraint([]Term{{5, 1}}, LE, 1); err == nil {
		t.Error("expected error for unknown variable")
	}
}

func TestEmptyProblem(t *testing.T) {
	p := NewProblem()
	if _, err := p.Solve(nil); err == nil {
		t.Error("expected error for empty problem")
	}
}

func TestNonFiniteLowerBound(t *testing.T) {
	p := NewProblem()
	p.AddVariable(1, math.Inf(-1), 1)
	if _, err := p.Solve(nil); err == nil {
		t.Error("expected error for -inf lower bound")
	}
}

func TestClone(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(1, 0, 10)
	p.MustAddConstraint([]Term{{x, 1}}, GE, 4)
	q := p.Clone()
	q.SetBounds(x, 7, 10)
	sol := solveOK(t, p)
	if math.Abs(sol.X[x]-4) > tol {
		t.Errorf("original affected by clone mutation: %v", sol.X)
	}
	sol2 := solveOK(t, q)
	if math.Abs(sol2.X[x]-7) > tol {
		t.Errorf("clone solution wrong: %v", sol2.X)
	}
}

func TestEqualityWithBoundedVars(t *testing.T) {
	// Assignment-like structure as in the DVS MILP relaxation:
	// k1 + k2 + k3 = 1 with 0<=ki<=1, min 3k1 + 2k2 + 5k3 → k2 = 1.
	p := NewProblem()
	k1 := p.AddVariable(3, 0, 1)
	k2 := p.AddVariable(2, 0, 1)
	k3 := p.AddVariable(5, 0, 1)
	p.MustAddConstraint([]Term{{k1, 1}, {k2, 1}, {k3, 1}}, EQ, 1)
	sol := solveOK(t, p)
	if math.Abs(sol.X[k2]-1) > tol || math.Abs(sol.Objective-2) > tol {
		t.Errorf("got %v obj=%v", sol.X, sol.Objective)
	}
}

func TestAbsValueLinearization(t *testing.T) {
	// The paper's |x| trick: minimize e with -e <= x <= e, x fixed by
	// an equality to -7 → e = 7.
	p := NewProblem()
	x := p.AddVariable(0, -100, 100)
	e := p.AddVariable(1, 0, math.Inf(1))
	p.MustAddConstraint([]Term{{x, 1}}, EQ, -7)
	p.MustAddConstraint([]Term{{x, 1}, {e, 1}}, GE, 0)  // -e <= x
	p.MustAddConstraint([]Term{{x, 1}, {e, -1}}, LE, 0) // x <= e
	sol := solveOK(t, p)
	if math.Abs(sol.X[e]-7) > tol {
		t.Errorf("e = %v, want 7", sol.X[e])
	}
}

// TestRandomVersusBruteForce cross-checks the simplex against brute-force
// vertex enumeration on small random LPs with bounded variables.
func TestRandomVersusBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(2) // 2-3 vars
		m := 1 + rng.Intn(3) // 1-3 constraints
		p := NewProblem()
		for j := 0; j < n; j++ {
			p.AddVariable(rng.Float64()*4-2, 0, 1+rng.Float64()*3)
		}
		type consRec struct {
			coefs []float64
			op    Op
			rhs   float64
		}
		var recs []consRec
		for i := 0; i < m; i++ {
			terms := make([]Term, n)
			coefs := make([]float64, n)
			for j := 0; j < n; j++ {
				coefs[j] = rng.Float64()*4 - 2
				terms[j] = Term{j, coefs[j]}
			}
			op := Op(rng.Intn(3))
			rhs := rng.Float64()*6 - 1
			recs = append(recs, consRec{coefs, op, rhs})
			p.MustAddConstraint(terms, op, rhs)
		}
		sol, err := p.Solve(nil)
		if err != nil {
			t.Fatal(err)
		}

		// Brute force on a fine grid (coarse check: grid optimum cannot be
		// much better than simplex optimum, and simplex point must be
		// feasible).
		if sol.Status == Optimal {
			feasible := func(x []float64) bool {
				for _, r := range recs {
					v := 0.0
					for j := range x {
						v += r.coefs[j] * x[j]
					}
					switch r.op {
					case LE:
						if v > r.rhs+1e-7 {
							return false
						}
					case GE:
						if v < r.rhs-1e-7 {
							return false
						}
					case EQ:
						if math.Abs(v-r.rhs) > 1e-7 {
							return false
						}
					}
				}
				return true
			}
			if !feasible(sol.X) {
				t.Fatalf("trial %d: simplex point infeasible: %v", trial, sol.X)
			}
			// Random feasible sampling must never beat the optimum.
			for s := 0; s < 300; s++ {
				x := make([]float64, n)
				for j := 0; j < n; j++ {
					lo, hi := p.Bounds(j)
					x[j] = lo + rng.Float64()*(hi-lo)
				}
				if !feasible(x) {
					continue
				}
				obj := 0.0
				for j := 0; j < n; j++ {
					obj += p.Objective(j) * x[j]
				}
				if obj < sol.Objective-1e-5 {
					t.Fatalf("trial %d: sampled point %v beats simplex: %v < %v",
						trial, x, obj, sol.Objective)
				}
			}
		}
	}
}

// TestModeratelyLarge exercises a few hundred variables/constraints of the
// shape used by the DVS formulation (SOS1 rows + a budget row).
func TestModeratelyLarge(t *testing.T) {
	const groups = 120
	const modes = 3
	p := NewProblem()
	var vars [][]int
	rng := rand.New(rand.NewSource(7))
	energies := make([][]float64, groups)
	times := make([][]float64, groups)
	for g := 0; g < groups; g++ {
		row := make([]Term, modes)
		vs := make([]int, modes)
		energies[g] = make([]float64, modes)
		times[g] = make([]float64, modes)
		for m := 0; m < modes; m++ {
			e := rng.Float64()*10 + float64(modes-m) // slower mode cheaper
			energies[g][m] = e
			times[g][m] = float64(m+1) * (rng.Float64() + 0.5)
			v := p.AddVariable(e, 0, 1)
			vs[m] = v
			row[m] = Term{v, 1}
		}
		vars = append(vars, vs)
		p.MustAddConstraint(row, EQ, 1)
	}
	var budget []Term
	for g := 0; g < groups; g++ {
		for m := 0; m < modes; m++ {
			budget = append(budget, Term{vars[g][m], times[g][m]})
		}
	}
	p.MustAddConstraint(budget, LE, float64(groups)*1.2)
	sol := solveOK(t, p)
	// Every SOS1 row must sum to 1.
	for g := 0; g < groups; g++ {
		sum := 0.0
		for m := 0; m < modes; m++ {
			sum += sol.X[vars[g][m]]
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("group %d sums to %v", g, sum)
		}
	}
}
