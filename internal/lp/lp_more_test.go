package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestIterationLimitStatus(t *testing.T) {
	p := NewProblem()
	var terms []Term
	for j := 0; j < 40; j++ {
		v := p.AddVariable(-float64(j+1), 0, 10)
		terms = append(terms, Term{Var: v, Coef: float64(j%7 + 1)})
	}
	p.MustAddConstraint(terms, LE, 100)
	sol, err := p.Solve(&Options{MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterationLimit {
		t.Errorf("status = %v, want iteration-limit", sol.Status)
	}
}

func TestSolveDoesNotMutateProblem(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(-1, 0, 5)
	y := p.AddVariable(-2, 0, 5)
	p.MustAddConstraint([]Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, LE, 6)
	first, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Objective != second.Objective {
		t.Errorf("objective changed between solves: %v vs %v", first.Objective, second.Objective)
	}
	if lo, hi := p.Bounds(x); lo != 0 || hi != 5 {
		t.Errorf("bounds mutated: [%v, %v]", lo, hi)
	}
}

// TestRandomEqualitySystems builds random full-rank 2×2 equality systems
// whose unique solution is known, and checks the simplex recovers it when
// feasible and detects infeasibility when the solution violates bounds.
func TestRandomEqualitySystems(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 300; trial++ {
		// Pick an intended solution and a random invertible matrix.
		x0 := rng.Float64()*8 - 2 // may be negative → infeasible under lo=0
		y0 := rng.Float64()*8 - 2
		a, bb, c, d := rng.Float64()*4-2, rng.Float64()*4-2, rng.Float64()*4-2, rng.Float64()*4-2
		if math.Abs(a*d-bb*c) < 0.1 {
			continue // poorly conditioned; skip
		}
		r1 := a*x0 + bb*y0
		r2 := c*x0 + d*y0

		p := NewProblem()
		x := p.AddVariable(rng.Float64()*2-1, 0, math.Inf(1))
		y := p.AddVariable(rng.Float64()*2-1, 0, math.Inf(1))
		p.MustAddConstraint([]Term{{Var: x, Coef: a}, {Var: y, Coef: bb}}, EQ, r1)
		p.MustAddConstraint([]Term{{Var: x, Coef: c}, {Var: y, Coef: d}}, EQ, r2)
		sol, err := p.Solve(nil)
		if err != nil {
			t.Fatal(err)
		}
		feasible := x0 >= -1e-9 && y0 >= -1e-9
		if feasible {
			if sol.Status != Optimal {
				t.Fatalf("trial %d: status %v for feasible system (x0=%v y0=%v)",
					trial, sol.Status, x0, y0)
			}
			if math.Abs(sol.X[x]-x0) > 1e-6 || math.Abs(sol.X[y]-y0) > 1e-6 {
				t.Fatalf("trial %d: got (%v, %v), want (%v, %v)",
					trial, sol.X[x], sol.X[y], x0, y0)
			}
		} else if sol.Status != Infeasible {
			t.Fatalf("trial %d: status %v for infeasible system (x0=%v y0=%v)",
				trial, sol.Status, x0, y0)
		}
	}
}

// TestDualityGapSpotCheck verifies weak duality on a fixed primal/dual pair.
func TestDualityGapSpotCheck(t *testing.T) {
	// Primal: min 3x + 4y s.t. x + 2y >= 14, 3x - y >= 0, x - y <= 2, x,y>=0.
	p := NewProblem()
	x := p.AddVariable(3, 0, math.Inf(1))
	y := p.AddVariable(4, 0, math.Inf(1))
	p.MustAddConstraint([]Term{{Var: x, Coef: 1}, {Var: y, Coef: 2}}, GE, 14)
	p.MustAddConstraint([]Term{{Var: x, Coef: 3}, {Var: y, Coef: -1}}, GE, 0)
	p.MustAddConstraint([]Term{{Var: x, Coef: 1}, {Var: y, Coef: -1}}, LE, 2)
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	// Optimum: x=2, y=6 → 30? Check: x+2y=14 ✓ binding, 3x−y=0 ✓ binding,
	// x−y=−4 ≤ 2 ✓. Objective 3·2+4·6 = 30.
	if math.Abs(sol.Objective-30) > 1e-6 {
		t.Errorf("objective %v, want 30", sol.Objective)
	}
}

func TestManyRedundantRows(t *testing.T) {
	// Heavily redundant systems stress phase-1 artificial eviction.
	p := NewProblem()
	x := p.AddVariable(1, 0, math.Inf(1))
	y := p.AddVariable(1, 0, math.Inf(1))
	for k := 1; k <= 20; k++ {
		f := float64(k)
		p.MustAddConstraint([]Term{{Var: x, Coef: f}, {Var: y, Coef: f}}, EQ, 10*f)
	}
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-10) > 1e-6 {
		t.Errorf("status %v obj %v, want optimal 10", sol.Status, sol.Objective)
	}
}

func TestFixedVariables(t *testing.T) {
	// Variables with lo == hi (as branch-and-bound creates) must be honored
	// and skipped by the active-column machinery.
	p := NewProblem()
	x := p.AddVariable(1, 3, 3) // fixed at 3
	y := p.AddVariable(1, 0, math.Inf(1))
	p.MustAddConstraint([]Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, GE, 10)
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[x]-3) > 1e-9 || math.Abs(sol.X[y]-7) > 1e-6 {
		t.Errorf("got %v, want (3, 7)", sol.X)
	}
}

func TestOpString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("operator strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterationLimit.String() != "iteration-limit" {
		t.Error("status strings wrong")
	}
}
