package lp

import "math"

// Scratch is reusable working storage for the simplex engine. A solver that
// performs many solves over the same Problem — the branch-and-bound search in
// package milp solves thousands of re-bounded relaxations — hands the same
// Scratch to every call and the steady state becomes allocation-free: the
// tableau slab, bound/cost/status arrays and pivot buffers are all recycled.
//
// A Scratch also caches the raw constraint rows of the Problem it last saw
// (the coefficient matrix with GE rows normalized and slack columns placed),
// so repeat solves start from a memcpy instead of re-walking every
// constraint's term list. The cache is keyed on the Problem pointer and its
// mutation revision; touching the Problem invalidates it.
//
// A Scratch must not be shared between concurrent solves. Each goroutine of a
// parallel search owns one.
type Scratch struct {
	prob *Problem
	rev  int
	n, m int

	// Template: raw rows (m × (n+m)), normalized rhs, and per-row slack
	// upper bounds, valid for (prob, rev).
	tslab   []float64
	trhs    []float64
	slackHi []float64

	// Per-solve working buffers, resized on demand and reused across solves.
	slab         []float64
	rows         [][]float64
	lo, hi, cost []float64
	stat         []varStatus
	basicRow     []int
	basis, artOf []int
	xb, rhs      []float64
	d, col       []float64
	active, elim []int
}

// NewScratch returns an empty Scratch ready for its first solve.
func NewScratch() *Scratch { return &Scratch{} }

// ensureTemplate (re)builds the raw-row template if the scratch has not seen
// this (Problem, revision) before.
func (sc *Scratch) ensureTemplate(p *Problem) {
	if sc.prob == p && sc.rev == p.rev {
		return
	}
	n, m := len(p.obj), len(p.cons)
	sc.prob, sc.rev, sc.n, sc.m = p, p.rev, n, m
	w := n + m
	sc.tslab = growF(sc.tslab, m*w)
	sc.trhs = growF(sc.trhs, m)
	sc.slackHi = growF(sc.slackHi, m)
	for i := range sc.tslab[:m*w] {
		sc.tslab[i] = 0
	}
	for i, c := range p.cons {
		row := sc.tslab[i*w : (i+1)*w]
		sign := 1.0
		if c.op == GE {
			sign = -1
		}
		for _, t := range c.terms {
			row[t.Var] += sign * t.Coef
		}
		row[n+i] = 1 // slack
		sc.trhs[i] = sign * c.rhs
		if c.op == EQ {
			sc.slackHi[i] = 0
		} else {
			sc.slackHi[i] = math.Inf(1)
		}
	}
}

// growF returns buf with capacity for at least size float64s (contents
// unspecified beyond what the caller overwrites).
func growF(buf []float64, size int) []float64 {
	if cap(buf) < size {
		return make([]float64, size)
	}
	return buf[:size]
}

// f64 slices a float64 buffer to length with at least capacity capacity,
// reallocating when the backing array is too small. Contents are stale; the
// caller initializes every cell it reads.
func f64(buf *[]float64, length, capacity int) []float64 {
	if cap(*buf) < capacity {
		*buf = make([]float64, capacity)
	}
	return (*buf)[:length]
}

// ints is f64 for []int.
func ints(buf *[]int, length, capacity int) []int {
	if cap(*buf) < capacity {
		*buf = make([]int, capacity)
	}
	return (*buf)[:length]
}

// stats is f64 for []varStatus.
func stats(buf *[]varStatus, length, capacity int) []varStatus {
	if cap(*buf) < capacity {
		*buf = make([]varStatus, capacity)
	}
	return (*buf)[:length]
}
