package lp

import "math"

// varStatus records where a nonbasic variable currently rests.
type varStatus int8

const (
	atLower varStatus = iota
	atUpper
	basic
)

// simplex is the working state of one solve: a dense tableau whose rows have
// been transformed so that the basic columns form an identity, a reduced-cost
// row maintained by the same pivots, and the current values of the basic
// variables.
type simplex struct {
	opt Options
	scr *Scratch

	n     int // structural variables
	m     int // rows
	ncols int // structural + slacks + artificials

	lo, hi []float64 // bounds per column
	cost   []float64 // phase-2 cost per column (artificials 0)

	tab      [][]float64 // m rows × ncols, kept as B⁻¹A
	rhs      []float64   // unused after cold init; warm restore keeps B⁻¹b here
	d        []float64   // reduced-cost row for the active phase
	xb       []float64   // value of the basic variable of each row
	basis    []int       // column basic in each row
	basicRow []int       // row in which a column is basic, -1 otherwise
	stat     []varStatus // per-column status

	nart  int   // number of artificial columns
	artOf []int // artificial column index per row, -1 if none

	// active lists the columns that can change value (lo < hi) in the
	// current phase; frozen columns — variables fixed by branch-and-bound
	// and artificials frozen after phase 1 — are skipped by the pivot and
	// cost-row loops. A frozen column's tableau entries go stale, which is
	// safe because no loop reads them: pricing and the ratio test only
	// touch active columns, and basic columns are implicit identity.
	active []int

	iters  int
	pivots int  // tableau pivot operations (all phases, incl. basis restore)
	bland  bool // anti-cycling mode
}

// newSimplex builds the per-solve working state from the scratch's cached
// raw-row template (a memcpy per row) and the solve's effective bounds. The
// returned state has no basis yet: cold solves call initColdBasis, warm
// solves call restoreBasis.
//
// Column layout: [0,n) structural, [n, n+m) slacks, artificials appended
// after construction for rows whose slack start is infeasible. GE rows are
// normalized to LE by negation so every slack has bounds [0, +inf) (or [0,0]
// for equalities).
func newSimplex(p *Problem, o Options, overrides map[int]Bound, sc *Scratch) *simplex {
	sc.ensureTemplate(p)
	n, m := sc.n, sc.m
	s := &simplex{opt: o, scr: sc, n: n, m: m}

	nmax := n + 2*m // artificials never exceed one per row
	s.lo = f64(&sc.lo, n+m, nmax)
	s.hi = f64(&sc.hi, n+m, nmax)
	s.cost = f64(&sc.cost, n+m, nmax)
	copy(s.lo, p.lo)
	copy(s.hi, p.hi)
	copy(s.cost, p.obj)
	for i := 0; i < m; i++ {
		s.lo[n+i] = 0
		s.hi[n+i] = sc.slackHi[i]
		s.cost[n+i] = 0
	}
	for v, b := range overrides {
		s.lo[v], s.hi[v] = b.Lo, b.Hi
	}

	// Working tableau rows slice the scratch slab with artificial headroom;
	// append in addArtificial stays inside the slab.
	w := n + m
	sc.slab = growF(sc.slab, m*nmax)
	if cap(sc.rows) < m {
		sc.rows = make([][]float64, m)
	}
	s.tab = sc.rows[:m]
	for i := 0; i < m; i++ {
		row := sc.slab[i*nmax : i*nmax+w : (i+1)*nmax]
		copy(row, sc.tslab[i*w:(i+1)*w])
		s.tab[i] = row
	}
	s.rhs = f64(&sc.rhs, m, m)
	copy(s.rhs, sc.trhs)

	s.stat = stats(&sc.stat, n+m, nmax)
	for j := 0; j < n+m; j++ {
		s.stat[j] = atLower
	}
	s.basis = ints(&sc.basis, m, m)
	s.basicRow = ints(&sc.basicRow, n+m, nmax)
	for j := range s.basicRow {
		s.basicRow[j] = -1
	}
	s.xb = f64(&sc.xb, m, m)
	s.artOf = ints(&sc.artOf, m, m)
	s.active = ints(&sc.active, 0, nmax)
	return s
}

// initColdBasis starts all structural variables at their (finite) lower
// bound and computes row residuals to decide which rows need an artificial
// basic — the classical phase-1 starting point.
func (s *simplex) initColdBasis() {
	n, m := s.n, s.m
	for i := 0; i < m; i++ {
		r := s.rhs[i]
		for j := 0; j < n; j++ {
			if s.tab[i][j] != 0 {
				r -= s.tab[i][j] * s.lo[j]
			}
		}
		s.artOf[i] = -1
		slack := n + i
		if r >= 0 && r <= s.hi[slack] {
			// Slack basic with feasible value.
			s.setBasic(i, slack)
			s.xb[i] = r
			continue
		}
		// Need an artificial with coefficient sign(r) so its value is |r|.
		art := s.addArtificial(i, r)
		s.setBasic(i, art)
		s.xb[i] = math.Abs(r)
	}
}

// setBasic records column j as the basic variable of row i.
func (s *simplex) setBasic(i, j int) {
	s.basis[i] = j
	s.basicRow[j] = i
	s.stat[j] = basic
}

// addArtificial appends an artificial column for row i with residual r and
// rescales row i so the artificial's tableau coefficient is +1.
func (s *simplex) addArtificial(i int, r float64) int {
	col := s.ncolsTotal()
	s.nart++
	s.lo = append(s.lo, 0)
	s.hi = append(s.hi, math.Inf(1))
	s.cost = append(s.cost, 0)
	s.stat = append(s.stat, atLower)
	s.basicRow = append(s.basicRow, -1)
	for k := range s.tab {
		s.tab[k] = append(s.tab[k], 0)
	}
	if r < 0 {
		// Scale the row by -1 so the artificial enters with +1 and the
		// basis stays an identity over the basic columns.
		for j := range s.tab[i] {
			s.tab[i][j] = -s.tab[i][j]
		}
	}
	s.tab[i][col] = 1
	s.artOf[i] = col
	return col
}

func (s *simplex) ncolsTotal() int { return s.n + s.m + s.nart }

// value returns the current value of column j.
func (s *simplex) value(j int) float64 {
	switch s.stat[j] {
	case atLower:
		return s.lo[j]
	case atUpper:
		return s.hi[j]
	}
	return s.xb[s.basicRow[j]]
}

// initCostRow computes the reduced-cost row d = c − c_B·T for the cost
// vector c (phase 1 or phase 2) and rebuilds the active-column list.
func (s *simplex) initCostRow(c []float64) {
	nc := s.ncolsTotal()
	s.active = s.active[:0]
	for j := 0; j < nc; j++ {
		if s.lo[j] < s.hi[j] {
			s.active = append(s.active, j)
		}
	}
	s.d = f64(&s.scr.d, nc, s.n+2*s.m)
	copy(s.d, c)
	for i := 0; i < s.m; i++ {
		cb := c[s.basis[i]]
		if cb == 0 {
			continue
		}
		row := s.tab[i]
		for _, j := range s.active {
			s.d[j] -= cb * row[j]
		}
	}
	// Basic columns must read exactly zero.
	for _, b := range s.basis {
		s.d[b] = 0
	}
}

// solve runs phase 1 (if artificials were needed) and phase 2.
func (s *simplex) solve() (*Solution, error) {
	tol := s.opt.Tol
	if s.nart > 0 {
		phase1 := make([]float64, s.ncolsTotal())
		for i := 0; i < s.m; i++ {
			if a := s.artOf[i]; a >= 0 {
				phase1[a] = 1
			}
		}
		s.initCostRow(phase1)
		st := s.iterate(phase1)
		if st == IterationLimit {
			return &Solution{Status: IterationLimit, Pivots: s.pivots}, nil
		}
		// Total infeasibility = sum of artificial values.
		infeas := 0.0
		for i := 0; i < s.m; i++ {
			if a := s.artOf[i]; a >= 0 {
				infeas += s.value(a)
			}
		}
		if infeas > 1e-7 {
			return &Solution{Status: Infeasible, Pivots: s.pivots}, nil
		}
		s.evictArtificials(tol)
		// Freeze artificials at zero for phase 2.
		for i := 0; i < s.m; i++ {
			if a := s.artOf[i]; a >= 0 {
				s.hi[a] = 0
			}
		}
	}

	s.initCostRow(s.cost)
	s.bland = false
	st := s.iterate(s.cost)
	switch st {
	case IterationLimit:
		return &Solution{Status: IterationLimit, Pivots: s.pivots}, nil
	case Unbounded:
		return &Solution{Status: Unbounded, Pivots: s.pivots}, nil
	}
	return s.extractSolution(), nil
}

// extractSolution reads the optimal point out of the final tableau and
// snapshots the basis for warm-starting related solves.
func (s *simplex) extractSolution() *Solution {
	x := make([]float64, s.n)
	for j := 0; j < s.n; j++ {
		x[j] = s.value(j)
	}
	obj := 0.0
	for j := 0; j < s.n; j++ {
		obj += s.cost[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj, Pivots: s.pivots, Basis: s.snapshot()}
}

// evictArtificials pivots basic artificials (necessarily at value ~0 after a
// feasible phase 1) out of the basis where possible. Rows whose non-artificial
// entries are all zero are redundant constraints; their artificials stay
// basic at zero and are frozen by the [0,0] bounds.
func (s *simplex) evictArtificials(tol float64) {
	for k := 0; k < s.m; k++ {
		a := s.artOf[k]
		if a < 0 || s.stat[a] != basic {
			continue
		}
		i := s.basicRow[a] // the row the artificial currently occupies
		row := s.tab[i]
		pivot := -1
		best := tol
		for j := 0; j < s.n+s.m; j++ {
			if s.stat[j] == basic || s.lo[j] == s.hi[j] {
				continue
			}
			if v := math.Abs(row[j]); v > best {
				best = v
				pivot = j
			}
		}
		if pivot < 0 {
			continue
		}
		// Degenerate pivot: the artificial leaves at value 0, the entering
		// variable stays at its current bound value.
		enterVal := s.value(pivot)
		s.pivot(i, pivot)
		s.stat[a] = atLower
		s.basicRow[a] = -1
		s.setBasic(i, pivot)
		s.xb[i] = enterVal
	}
}

// iterate runs primal simplex iterations for the active cost row until
// optimality, unboundedness, or the iteration limit.
func (s *simplex) iterate(c []float64) Status {
	tol := s.opt.Tol
	stall := 0
	lastObj := math.Inf(1)
	for {
		if s.iters >= s.opt.MaxIters {
			return IterationLimit
		}
		s.iters++

		enter, dir := s.price(tol)
		if enter < 0 {
			return Optimal
		}

		leaveRow, limit, flip := s.ratioTest(enter, dir, tol)
		if math.IsInf(limit, 1) {
			return Unbounded
		}

		if flip {
			// The entering variable traverses its whole range and rests at
			// the opposite bound; the basis is unchanged.
			col := s.columnOf(enter)
			for i := 0; i < s.m; i++ {
				if col[i] != 0 {
					s.xb[i] -= limit * float64(dir) * col[i]
				}
			}
			if dir > 0 {
				s.stat[enter] = atUpper
			} else {
				s.stat[enter] = atLower
			}
		} else {
			s.step(enter, dir, leaveRow, limit)
		}

		// Anti-cycling: if the phase objective has not improved for a long
		// run of (necessarily degenerate) iterations, fall back to Bland's
		// rule, which guarantees termination.
		if obj := s.phaseObjective(c); obj < lastObj-tol {
			lastObj = obj
			stall = 0
			s.bland = false
		} else {
			stall++
			if stall > 2*(s.m+s.n) {
				s.bland = true
			}
		}
	}
}

// phaseObjective evaluates the active cost vector at the current point.
func (s *simplex) phaseObjective(c []float64) float64 {
	obj := 0.0
	for j := 0; j < s.ncolsTotal(); j++ {
		if cj := c[j]; cj != 0 {
			obj += cj * s.value(j)
		}
	}
	return obj
}

// price selects the entering column and its direction (+1 to increase from
// its lower bound, −1 to decrease from its upper bound), or (-1, 0) when the
// current basis is optimal.
func (s *simplex) price(tol float64) (enter, dir int) {
	enter, dir = -1, 0
	best := tol
	for _, j := range s.active {
		if s.stat[j] == basic {
			continue
		}
		dj := s.d[j]
		switch {
		case s.stat[j] == atLower && dj < -best:
			enter, dir = j, 1
			if s.bland {
				return
			}
			best = -dj
		case s.stat[j] == atUpper && dj > best:
			enter, dir = j, -1
			if s.bland {
				return
			}
			best = dj
		}
	}
	return
}

// columnOf gathers column j of the tableau into the scratch column buffer.
// (The tableau is row-major; the ratio test and updates both need the
// column, so collect it once.)
func (s *simplex) columnOf(j int) []float64 {
	col := f64(&s.scr.col, s.m, s.m)
	for i := range s.tab {
		col[i] = s.tab[i][j]
	}
	return col
}

// ratioTest computes how far the entering variable can move. It returns the
// blocking row (−1 when the entering variable's own opposite bound is the
// binding limit), the step length, and whether the move is a bound flip.
func (s *simplex) ratioTest(enter, dir int, tol float64) (leaveRow int, limit float64, flip bool) {
	limit = s.hi[enter] - s.lo[enter] // own-range limit (may be +inf)
	leaveRow = -1
	flip = true
	bestPivot := 0.0
	for i := 0; i < s.m; i++ {
		a := s.tab[i][enter]
		if math.Abs(a) <= tol {
			continue
		}
		delta := float64(dir) * a // xb[i] changes by −t·delta
		b := s.basis[i]
		var t float64
		if delta > 0 {
			// Basic variable decreases toward its lower bound.
			t = (s.xb[i] - s.lo[b]) / delta
		} else {
			// Basic variable increases toward its upper bound.
			if math.IsInf(s.hi[b], 1) {
				continue
			}
			t = (s.xb[i] - s.hi[b]) / delta
		}
		if t < 0 {
			t = 0
		}
		switch {
		case t < limit-tol:
			limit = t
			leaveRow = i
			flip = false
			bestPivot = math.Abs(a)
		case t <= limit+tol && !flip:
			// Tie: prefer the larger pivot element for stability (or the
			// lowest basic index under Bland's rule).
			if s.bland {
				if s.basis[i] < s.basis[leaveRow] {
					leaveRow = i
				}
			} else if math.Abs(a) > bestPivot {
				leaveRow = i
				bestPivot = math.Abs(a)
			}
		}
	}
	return leaveRow, limit, flip
}

// step executes a pivot: the entering variable moves by limit·dir, the basic
// variable of leaveRow exits at the bound it reached.
func (s *simplex) step(enter, dir, leaveRow int, limit float64) {
	col := s.columnOf(enter)
	for i := 0; i < s.m; i++ {
		if col[i] != 0 {
			s.xb[i] -= limit * float64(dir) * col[i]
		}
	}
	leave := s.basis[leaveRow]
	// Classify which bound the leaving variable reached.
	delta := float64(dir) * col[leaveRow]
	if delta > 0 {
		s.stat[leave] = atLower
	} else {
		s.stat[leave] = atUpper
	}
	s.basicRow[leave] = -1

	enterVal := s.value(enter) + limit*float64(dir)
	s.pivot(leaveRow, enter)
	s.setBasic(leaveRow, enter)
	s.xb[leaveRow] = enterVal
}

// pivot performs Gaussian elimination to make column enter the identity
// column of row r, updating the reduced-cost row alongside. Only active
// columns are updated (see the active field).
func (s *simplex) pivot(r, enter int) {
	s.pivots++
	prow := s.tab[r]
	p := prow[enter]
	inv := 1 / p
	for _, j := range s.active {
		prow[j] *= inv
	}
	prow[enter] = 1 // exact
	for i := 0; i < s.m; i++ {
		if i == r {
			continue
		}
		f := s.tab[i][enter]
		if f == 0 {
			continue
		}
		row := s.tab[i]
		for _, j := range s.active {
			row[j] -= f * prow[j]
		}
		row[enter] = 0 // exact
	}
	if s.d != nil {
		f := s.d[enter]
		if f != 0 {
			for _, j := range s.active {
				s.d[j] -= f * prow[j]
			}
			s.d[enter] = 0
		}
	}
	s.basis[r] = enter
}
