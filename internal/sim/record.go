package sim

import (
	"errors"
	"fmt"
	"sync"

	"ctdvs/internal/ir"
	"ctdvs/internal/volt"
)

// ErrUnrecordable reports that a run cannot be captured as a replayable
// event stream: recording is disabled by configuration, or the run's event
// stream would exceed the recording budget. Callers that profile via
// Record/Replay fall back to per-mode simulation when errors.Is reports this
// sentinel; answers never change, only the amount of work.
var ErrUnrecordable = errors.New("sim: run is outside the replay invariance envelope")

// DefaultRecordBudget is the event-stream budget used when
// Config.RecordBudgetEvents is zero. At roughly 4 bytes per event it caps
// the recorder's working memory near a quarter gigabyte — far above every
// paper-scale workload, low enough to refuse runaway traces.
const DefaultRecordBudget = 1 << 26

// copySlice returns an exact-length copy; unlike an append onto nil it keeps
// empty slices non-nil, so replayed Results compare DeepEqual to Run's.
func copySlice[T any](src []T) []T {
	out := make([]T, len(src))
	copy(out, src)
	return out
}

// Memory-access outcomes, 2 bits per access in the recorded stream.
const (
	memL1Hit uint64 = 0
	memL2Hit uint64 = 1
	memMiss  uint64 = 2
)

// recorder accumulates the event stream of one instrumented run. It is
// scratch state owned by a Machine and reused across recordings, so the
// buffers grow once and then serve every later Record call (including calls
// by later borrowers of a pooled machine).
type recorder struct {
	budget   int64
	events   int64
	overflow bool

	trace      []uint32
	memOps     int64
	memBits    []uint64 // 2 bits per access, 32 per word, LSB-first
	branchOps  int64
	branchBits []uint64 // 1 bit per branch, 64 per word, set on mispredict
}

func (r *recorder) reset(budget int64) {
	r.budget = budget
	r.events = 0
	r.overflow = false
	r.trace = r.trace[:0]
	r.memOps = 0
	r.memBits = r.memBits[:0]
	r.branchOps = 0
	r.branchBits = r.branchBits[:0]
}

// addBlock notes one block execution; false means the budget is exhausted
// and the run must abort. The budget is enforced here — at block granularity
// — because every event belongs to some block's execution.
func (r *recorder) addBlock(b uint32) bool {
	if r.events >= r.budget {
		r.overflow = true
		return false
	}
	r.events++
	r.trace = append(r.trace, b)
	return true
}

func (r *recorder) addMem(outcome uint64) {
	r.events++
	i := r.memOps
	r.memOps++
	if int(i>>5) == len(r.memBits) {
		r.memBits = append(r.memBits, 0)
	}
	r.memBits[i>>5] |= outcome << uint((i&31)*2)
}

func (r *recorder) addBranch(mispredict bool) {
	r.events++
	i := r.branchOps
	r.branchOps++
	if int(i>>6) == len(r.branchBits) {
		r.branchBits = append(r.branchBits, 0)
	}
	if mispredict {
		r.branchBits[i>>6] |= 1 << uint(i&63)
	}
}

// Recording is the mode-invariant event stream of one fixed-mode run: the
// executed block sequence, the outcome of every memory access and branch,
// and the run facts that do not depend on the operating point. Under the
// paper's assumptions (control flow, cache behaviour and branch outcomes are
// frequency-independent; memory service time is absolute) the stream is
// identical at every (V, f) mode, so Replay reprices it at any mode with
// pure arithmetic — no IR interpretation, cache/predictor lookups, or RNG —
// and reproduces that mode's Run result bit for bit.
//
// The exported fields are the serializable stream (see package schedfile for
// the artifact codec); treat them as read-only. A bound Recording is
// immutable and safe for concurrent Replay calls.
type Recording struct {
	Program   string
	Input     string
	Config    Config
	NumBlocks int

	// Trace lists every executed block in order; the first entry is block 0
	// and the last is the exiting block.
	Trace []uint32
	// MemOps memory accesses, 2 bits each in MemBits (32 per word,
	// LSB-first), in access order: 0 = L1 hit, 1 = L2 hit, 2 = miss.
	MemOps  int64
	MemBits []uint64
	// BranchOps executed branch terminators, 1 bit each in BranchBits
	// (64 per word, LSB-first), set on mispredict.
	BranchOps  int64
	BranchBits []uint64

	// Mode-invariant run facts, copied verbatim into every replayed Result.
	EdgeCountsByID []int64
	PathCountsByID []int64
	L1Hits         int64
	L2Hits         int64
	MemMisses      int64
	Branches       int64
	Mispredicts    int64
	Params         Params

	layout *replayLayout
}

// Per-op and per-terminator template kinds compiled by Bind.
const (
	opCompute uint8 = iota
	opMem
)

const (
	termJump uint8 = iota
	termBranch
	termExit
)

// replayOp is one instruction template: replay consumes the recorded outcome
// stream for opMem and the precomputed per-mode increments for opCompute.
type replayOp struct {
	kind uint8
	dep  bool    // Compute.DependsOnLoad: drain memory channels first
	fcyc float64 // compute cycles as float64, the value run() scales by 1/f
}

type replayBlock struct {
	opLo, opHi int32
	nMem       int32
	term       uint8
}

// replayLayout is the compiled, program-derived side of a Recording: block
// op templates plus the same dense edge/path numbering the interpreter uses.
type replayLayout struct {
	info     []blockInfo
	blocks   []replayBlock
	ops      []replayOp
	numEdges int
	numPaths int
}

// layoutCache memoizes compiled replay layouts by program identity. A layout
// is derived from the program alone (never from a recording or a machine
// configuration) and is immutable once built, so every Recording of the same
// *ir.Program shares one — a warm sweep binding thousands of decoded
// recordings compiles each workload's templates once. Like Machine.compiled,
// entries live as long as the program pointer does; workloads come from a
// fixed generator registry, not per-request construction.
var layoutCache sync.Map // map[*ir.Program]*replayLayout

// layoutFor returns the cached replay layout of p, compiling it on first use.
func layoutFor(p *ir.Program) *replayLayout {
	if v, ok := layoutCache.Load(p); ok {
		return v.(*replayLayout)
	}
	lay := &replayLayout{}
	lay.info, _, lay.numEdges, lay.numPaths = buildBlockInfo(p, nil)
	lay.blocks = make([]replayBlock, len(p.Blocks))
	for i, b := range p.Blocks {
		rb := &lay.blocks[i]
		rb.opLo = int32(len(lay.ops))
		for _, instr := range b.Instrs {
			switch v := instr.(type) {
			case ir.Compute:
				lay.ops = append(lay.ops, replayOp{kind: opCompute, dep: v.DependsOnLoad, fcyc: float64(int64(v.Cycles))})
			case ir.Load, ir.Store:
				lay.ops = append(lay.ops, replayOp{kind: opMem})
				rb.nMem++
			}
		}
		rb.opHi = int32(len(lay.ops))
		switch b.Term.(type) {
		case ir.Exit:
			rb.term = termExit
		case ir.Jump:
			rb.term = termJump
		case ir.Branch:
			rb.term = termBranch
		}
	}
	actual, _ := layoutCache.LoadOrStore(p, lay)
	return actual.(*replayLayout)
}

// Bind attaches the program's compiled replay templates (cached per program,
// see layoutFor) and validates the recorded stream against them: block IDs in
// range, every trace step a real CFG edge, the exit only at the end, and the
// event counts consistent with the per-block templates. Record binds the
// recordings it returns; codecs must Bind after decoding. Replay fails on an
// unbound Recording.
func (rec *Recording) Bind(p *ir.Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if err := rec.Config.Validate(); err != nil {
		return err
	}
	if p.Name != rec.Program {
		return errf("recording is for program %q, not %q", rec.Program, p.Name)
	}
	if len(p.Blocks) != rec.NumBlocks {
		return errf("recording has %d blocks, program %q has %d", rec.NumBlocks, p.Name, len(p.Blocks))
	}
	lay := layoutFor(p)
	if err := rec.validateStream(lay); err != nil {
		return err
	}
	rec.layout = lay
	return nil
}

// validateStream walks the trace against the compiled templates, so a
// decoded artifact can never drive Replay out of bounds.
func (rec *Recording) validateStream(lay *replayLayout) error {
	if len(rec.Trace) == 0 {
		return errf("recording has an empty trace")
	}
	if rec.Trace[0] != 0 {
		return errf("recording trace starts at block %d, not the entry", rec.Trace[0])
	}
	var mem, br int64
	prev := -1
	for ti, b32 := range rec.Trace {
		b := int(b32)
		if b >= len(lay.blocks) {
			return errf("recording trace names block %d of %d", b, len(lay.blocks))
		}
		if ti > 0 {
			if _, ok := lay.info[prev].succIdx[b]; !ok {
				return errf("recording trace takes nonexistent edge %d→%d", prev, b)
			}
		}
		rb := &lay.blocks[b]
		mem += int64(rb.nMem)
		switch rb.term {
		case termBranch:
			br++
		case termExit:
			if ti != len(rec.Trace)-1 {
				return errf("recording trace exits at step %d of %d", ti, len(rec.Trace))
			}
		}
		prev = b
	}
	if lay.blocks[rec.Trace[len(rec.Trace)-1]].term != termExit {
		return errf("recording trace does not end at an exit block")
	}
	if mem != rec.MemOps {
		return errf("recording trace implies %d memory accesses, stream has %d", mem, rec.MemOps)
	}
	if br != rec.BranchOps {
		return errf("recording trace implies %d branches, stream has %d", br, rec.BranchOps)
	}
	if want := int((rec.MemOps + 31) / 32); len(rec.MemBits) != want {
		return errf("recording has %d memory outcome words, want %d", len(rec.MemBits), want)
	}
	if want := int((rec.BranchOps + 63) / 64); len(rec.BranchBits) != want {
		return errf("recording has %d branch outcome words, want %d", len(rec.BranchBits), want)
	}
	if rec.L1Hits+rec.L2Hits+rec.MemMisses != rec.MemOps {
		return errf("recording cache outcomes sum to %d, stream has %d accesses",
			rec.L1Hits+rec.L2Hits+rec.MemMisses, rec.MemOps)
	}
	if rec.Branches != rec.BranchOps {
		return errf("recording branch count %d does not match stream's %d", rec.Branches, rec.BranchOps)
	}
	if len(rec.EdgeCountsByID) != lay.numEdges || len(rec.PathCountsByID) != lay.numPaths {
		return errf("recording counts (%d edges, %d paths) do not match program (%d, %d)",
			len(rec.EdgeCountsByID), len(rec.PathCountsByID), lay.numEdges, lay.numPaths)
	}
	return nil
}

// Record simulates the program at one fixed mode exactly like Run while
// capturing the mode-invariant event stream; the returned Result is
// identical to Run's at that mode. Only fixed-mode runs are recordable —
// governed and DVS-scheduled runs change modes mid-trace, which is outside
// the invariance envelope by construction, so the API does not offer them.
// Record reports an error wrapping ErrUnrecordable when recording is
// disabled or the stream exceeds the budget (see Config.RecordBudgetEvents).
func (m *Machine) Record(p *ir.Program, in ir.Input, mode volt.Mode) (*Recording, *Result, error) {
	if m.cfg.RecordBudgetEvents < 0 {
		return nil, nil, fmt.Errorf("%w: recording disabled by configuration (RecordBudgetEvents = %d)",
			ErrUnrecordable, m.cfg.RecordBudgetEvents)
	}
	budget := int64(m.cfg.RecordBudgetEvents)
	if budget == 0 {
		budget = DefaultRecordBudget
	}
	if m.scratch == nil {
		m.scratch = &recorder{}
	}
	m.scratch.reset(budget)
	m.rec = m.scratch
	res, err := m.run(p, in, nil, nil, mode)
	m.rec = nil
	if err != nil {
		if m.scratch.overflow {
			return nil, nil, fmt.Errorf("%w: program %q exceeded the recording budget of %d events",
				ErrUnrecordable, p.Name, budget)
		}
		return nil, nil, err
	}
	rec := &Recording{
		Program:   p.Name,
		Input:     in.Name,
		Config:    m.cfg,
		NumBlocks: len(p.Blocks),

		Trace:      copySlice(m.scratch.trace),
		MemOps:     m.scratch.memOps,
		MemBits:    copySlice(m.scratch.memBits),
		BranchOps:  m.scratch.branchOps,
		BranchBits: copySlice(m.scratch.branchBits),

		EdgeCountsByID: copySlice(res.EdgeCountsByID),
		PathCountsByID: copySlice(res.PathCountsByID),
		L1Hits:         res.L1Hits,
		L2Hits:         res.L2Hits,
		MemMisses:      res.MemMisses,
		Branches:       res.Branches,
		Mispredicts:    res.Mispredicts,
		Params:         res.Params,
	}
	if err := rec.Bind(p); err != nil {
		return nil, nil, err
	}
	return rec, res, nil
}
