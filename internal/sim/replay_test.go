package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ctdvs/internal/cfg"
	"ctdvs/internal/ir"
	"ctdvs/internal/volt"
)

// randomProgram builds a terminating random CFG: forward jumps and
// probabilistic branches (sometimes with both arms on one block, exercising
// edge dedup), counted back edges to arbitrary earlier blocks, and a mix of
// overlap/dependent computation with sequential, strided and random memory
// streams. Working sets overflow the small test caches so all three access
// outcomes occur.
func randomProgram(rng *rand.Rand, name string) (*ir.Program, ir.Input) {
	b := ir.NewBuilder(name)
	n := 1 + rng.Intn(7)
	blocks := make([]*ir.Block, n)
	for i := range blocks {
		blocks[i] = b.Block(fmt.Sprintf("b%d", i))
	}
	nStreams := 1 + rng.Intn(3)
	streams := make([]int, nStreams)
	for i := range streams {
		ws := int64(1<<10) << rng.Intn(6)
		switch rng.Intn(3) {
		case 0:
			streams[i] = b.SequentialStream(ws)
		case 1:
			streams[i] = b.StridedStream(int64(4*(1+rng.Intn(64))), ws)
		default:
			streams[i] = b.RandomStream(ws)
		}
	}
	for i, blk := range blocks {
		for k, nk := 0, rng.Intn(4); k < nk; k++ {
			switch rng.Intn(4) {
			case 0:
				blk.Compute(1 + rng.Intn(40))
			case 1:
				blk.DependentCompute(1 + rng.Intn(20))
			case 2:
				blk.Load(streams[rng.Intn(nStreams)])
			default:
				blk.Store(streams[rng.Intn(nStreams)])
			}
		}
		if i == n-1 {
			blk.Exit()
			continue
		}
		switch rng.Intn(4) {
		case 0:
			blk.Jump(blocks[i+1])
		case 1:
			j := i + 1 + rng.Intn(n-i-1)
			b.ProbBranch(blk, blocks[j], blocks[i+1], rng.Float64())
		case 2:
			b.ProbBranch(blk, blocks[i+1], blocks[i+1], rng.Float64())
		default:
			b.LoopBranch(blk, blocks[rng.Intn(i+1)], blocks[i+1], 2+rng.Intn(5))
		}
	}
	p, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return p, ir.Input{Name: "rand", Seed: rng.Int63()}
}

// replayTestConfigs spans the envelope the replay kernel must reproduce:
// the default machine, tiny caches that force L2 hits and misses,
// multi-channel memory, nonzero leakage, and a zero mispredict penalty.
func replayTestConfigs() []Config {
	small := Config{
		L1:                      CacheConfig{SizeBytes: 1 << 10, Assoc: 2, LineBytes: 32, LatencyCycles: 1},
		L2:                      CacheConfig{SizeBytes: 4 << 10, Assoc: 4, LineBytes: 32, LatencyCycles: 9},
		MemLatencyUS:            0.17,
		MemChannels:             1,
		PredictorEntries:        64,
		MispredictPenaltyCycles: 5,
		CeffComputeNF:           0.33,
		CeffL1NF:                0.41,
		CeffL2NF:                0.77,
	}
	multi := small
	multi.MemChannels = 3
	multi.MemLatencyUS = 0.09
	leaky := small
	leaky.StaticPowerMW = 2.5
	noPen := small
	noPen.MispredictPenaltyCycles = 0
	noPen.MemChannels = 2
	return []Config{DefaultConfig(), small, multi, leaky, noPen}
}

func bitEqual(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// checkReplayedResult requires got to be bit-identical to want: the float
// fields compared via their IEEE-754 bits, everything else structurally.
func checkReplayedResult(t *testing.T, ctx string, want, got *Result) {
	t.Helper()
	if !bitEqual(want.TimeUS, got.TimeUS) || !bitEqual(want.EnergyUJ, got.EnergyUJ) ||
		!bitEqual(want.LeakageEnergyUJ, got.LeakageEnergyUJ) ||
		!bitEqual(want.Params.TInvariantUS, got.Params.TInvariantUS) {
		t.Errorf("%s: totals differ: time %x/%x energy %x/%x", ctx,
			math.Float64bits(want.TimeUS), math.Float64bits(got.TimeUS),
			math.Float64bits(want.EnergyUJ), math.Float64bits(got.EnergyUJ))
	}
	for j := range want.Blocks {
		if !bitEqual(want.Blocks[j].TimeUS, got.Blocks[j].TimeUS) ||
			!bitEqual(want.Blocks[j].EnergyUJ, got.Blocks[j].EnergyUJ) ||
			want.Blocks[j].Invocations != got.Blocks[j].Invocations {
			t.Errorf("%s: block %d differs: %+v vs %+v", ctx, j, want.Blocks[j], got.Blocks[j])
		}
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: results differ:\nwant %+v\ngot  %+v", ctx, want, got)
	}
}

func TestReplayMatchesRunBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ms5, err := volt.Uniform(5, 0.8, 1.6, volt.DefaultScaling())
	if err != nil {
		t.Fatal(err)
	}
	modeSets := [][]volt.Mode{volt.XScale3().Modes(), ms5.Modes()}
	for ci, mc := range replayTestConfigs() {
		for pi := 0; pi < 6; pi++ {
			p, in := randomProgram(rng, fmt.Sprintf("rand-%d-%d", ci, pi))
			modes := modeSets[pi%len(modeSets)]
			m := MustNew(mc)
			ref := modes[len(modes)-1]
			rec, refRes, err := m.Record(p, in, ref)
			if err != nil {
				t.Fatalf("cfg %d prog %d: record: %v", ci, pi, err)
			}
			// Recording must not perturb the instrumented run.
			direct, err := m.Run(p, in, ref)
			if err != nil {
				t.Fatal(err)
			}
			checkReplayedResult(t, fmt.Sprintf("cfg %d prog %d: recorded run", ci, pi), direct, refRes)

			batch, err := rec.ReplayAll(modes)
			if err != nil {
				t.Fatal(err)
			}
			refm := refMachine(mc)
			for mi, mode := range modes {
				want, err := m.Run(p, in, mode)
				if err != nil {
					t.Fatal(err)
				}
				got, err := rec.Replay(mode)
				if err != nil {
					t.Fatal(err)
				}
				ctx := fmt.Sprintf("cfg %d prog %d mode %v", ci, pi, mode)
				checkReplayedResult(t, ctx, want, got)
				checkReplayedResult(t, ctx+" (batched)", want, batch[mi])
				// Replay must also match the reference interpreter, closing
				// the Run ↔ Record ↔ Replay ↔ reference identity square.
				refRes, err := refm.Run(p, in, mode)
				if err != nil {
					t.Fatal(err)
				}
				checkReplayedResult(t, ctx+" (reference)", refRes, got)
			}
		}
	}
}

func TestReplayDegenerateSingleBlock(t *testing.T) {
	b := ir.NewBuilder("one")
	s := b.SequentialStream(8 << 10)
	blk := b.Block("only")
	blk.Compute(12).Load(s).DependentCompute(3).Store(s)
	blk.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	in := ir.Input{Name: "in", Seed: 3}
	m := MustNew(DefaultConfig())
	mode := volt.XScale3().Max()
	rec, _, err := m.Record(p, in, mode)
	if err != nil {
		t.Fatal(err)
	}
	for _, md := range volt.XScale3().Modes() {
		want, err := m.Run(p, in, md)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rec.Replay(md)
		if err != nil {
			t.Fatal(err)
		}
		checkReplayedResult(t, md.String(), want, got)
	}
	if len(rec.Trace) != 1 || rec.Trace[0] != 0 {
		t.Errorf("single-block trace = %v", rec.Trace)
	}
}

func TestRecordEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, in := randomProgram(rng, "envelope")
	mode := volt.XScale3().Max()

	off := DefaultConfig()
	off.RecordBudgetEvents = -1
	if _, _, err := MustNew(off).Record(p, in, mode); !errors.Is(err, ErrUnrecordable) {
		t.Errorf("disabled recording: err = %v, want ErrUnrecordable", err)
	}

	tiny := DefaultConfig()
	tiny.RecordBudgetEvents = 2
	m := MustNew(tiny)
	if _, _, err := m.Record(p, in, mode); !errors.Is(err, ErrUnrecordable) {
		t.Errorf("tiny budget: err = %v, want ErrUnrecordable", err)
	}
	// The machine stays usable for plain runs after an aborted recording.
	if _, err := m.Run(p, in, mode); err != nil {
		t.Fatalf("run after aborted recording: %v", err)
	}
}

func TestReplayUnboundRecording(t *testing.T) {
	rec := &Recording{}
	if _, err := rec.Replay(volt.XScale3().Max()); err == nil {
		t.Error("replay of unbound recording succeeded")
	}
}

// TestDenseCountsMatchGraph pins the correspondence between the simulator's
// dense count arrays and cfg.FromProgram numbering: EdgeCountsByID[g.EdgeID(e)]
// must equal CountMaps' count of e, and PathCountsByID must follow g.Paths
// order. CountMaps derives its keys from buildBlockInfo's independent
// numbering, so agreement here pins the two numberings to each other.
func TestDenseCountsMatchGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := MustNew(DefaultConfig())
	for pi := 0; pi < 8; pi++ {
		p, in := randomProgram(rng, fmt.Sprintf("dense-%d", pi))
		res, err := m.Run(p, in, volt.XScale3().Mode(1))
		if err != nil {
			t.Fatal(err)
		}
		g, err := cfg.FromProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.EdgeCountsByID) != g.NumEdges() || len(res.PathCountsByID) != len(g.Paths) {
			t.Fatalf("prog %d: dense dims (%d, %d), graph (%d, %d)",
				pi, len(res.EdgeCountsByID), len(res.PathCountsByID), g.NumEdges(), len(g.Paths))
		}
		edgeCounts, pathCounts, err := res.CountMaps(p)
		if err != nil {
			t.Fatal(err)
		}
		for id, e := range g.Edges {
			if res.EdgeCountsByID[id] != edgeCounts[e] {
				t.Errorf("prog %d: edge %v: dense %d, map %d", pi, e, res.EdgeCountsByID[id], edgeCounts[e])
			}
		}
		for id, pt := range g.Paths {
			if res.PathCountsByID[id] != pathCounts[pt] {
				t.Errorf("prog %d: path %v: dense %d, map %d", pi, pt, res.PathCountsByID[id], pathCounts[pt])
			}
		}
	}
}

// TestConcurrentReplay replays one recorded stream from many goroutines at
// once; the race detector (make ci) guards the immutability of a bound
// Recording, and every goroutine must see bit-identical results.
func TestConcurrentReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p, in := randomProgram(rng, "concurrent")
	m := MustNew(DefaultConfig())
	modes := volt.XScale3().Modes()
	rec, _, err := m.Record(p, in, modes[len(modes)-1])
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := rec.ReplayAll(modes)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got, err := rec.ReplayAll(modes)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			if !reflect.DeepEqual(baseline, got) {
				t.Errorf("worker %d: replay diverged", w)
			}
			one, err := rec.Replay(modes[w%len(modes)])
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			if !reflect.DeepEqual(baseline[w%len(modes)], one) {
				t.Errorf("worker %d: single replay diverged", w)
			}
		}(w)
	}
	wg.Wait()
}
