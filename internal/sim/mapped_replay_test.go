// This test lives in sim_test (not sim) because it closes the loop across
// packages: a recording written through the artifact store, read back as an
// mmap'd zero-copy mapping and decoded in borrow mode must replay every mode
// bit-identically to the in-memory recording. This is the end-to-end property
// the warm fleet-sweep path rides on.
package sim_test

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ctdvs/internal/ir"
	"ctdvs/internal/pipeline"
	"ctdvs/internal/schedfile"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

func mappedReplayFixture(t *testing.T) (*ir.Program, ir.Input, sim.Config, *sim.Recording) {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	b := ir.NewBuilder("mapped-replay")
	s := b.SequentialStream(32 << 10)
	r := b.RandomStream(64 << 10)
	head := b.Block("head")
	body := b.Block("body")
	tail := b.Block("tail")
	head.Compute(9).Load(s)
	b.LoopBranch(head, head, body, 50)
	body.Load(r).DependentCompute(4).Store(s)
	b.ProbBranch(body, head, tail, 0.3)
	tail.Compute(2)
	tail.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	in := ir.Input{Name: "in", Seed: rng.Int63()}
	mc := sim.DefaultConfig()
	rec, _, err := sim.MustNew(mc).Record(p, in, volt.XScale3().Max())
	if err != nil {
		t.Fatal(err)
	}
	return p, in, mc, rec
}

// TestReplayOverMappedRecording: store → mmap → borrow-mode decode → replay,
// asserted bit-identical against the copying decode path's replay and safe
// under concurrent replays of one shared mapped recording.
func TestReplayOverMappedRecording(t *testing.T) {
	p, in, mc, rec := mappedReplayFixture(t)
	modes := volt.XScale3().Modes()
	want, err := rec.ReplayAll(modes)
	if err != nil {
		t.Fatal(err)
	}

	store, err := pipeline.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data, err := schedfile.EncodeRecordingBinary(rec)
	if err != nil {
		t.Fatal(err)
	}
	key := pipeline.NewKey(pipeline.StageRecording).Str("prog", p.Name).Sum()
	if err := store.Put(pipeline.StageRecording, key, data, pipeline.FormatBinary); err != nil {
		t.Fatal(err)
	}

	m, f, ok, err := store.ReadMapped(pipeline.StageRecording, key)
	if err != nil || !ok || f != pipeline.FormatBinary {
		t.Fatalf("read mapped: ok=%v f=%v err=%v", ok, f, err)
	}
	defer m.Release()
	mappedRec, err := schedfile.DecodeRecordingBinaryMapped(m.Bytes(), p, in, mc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, mappedRec) {
		t.Fatal("mapped decode differs from the original recording")
	}

	got, err := mappedRec.ReplayAll(modes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("replay over the mapped recording differs from the in-memory replay")
	}

	// Concurrent replays share the one mapped recording: replay is read-only
	// over the borrowed trace and bitstream words, so this must be race-free
	// and every goroutine must see identical results (run under -race in CI).
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := mappedRec.ReplayAll(modes)
			if err != nil {
				t.Error(err)
				return
			}
			if !reflect.DeepEqual(want, r) {
				t.Error("concurrent mapped replay differs")
			}
		}()
	}
	wg.Wait()

	// Per-mode replays agree too.
	for i, md := range modes {
		res, err := mappedRec.Replay(md)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want[i], res) {
			t.Fatalf("mode %v: mapped single replay differs", md)
		}
	}
}
