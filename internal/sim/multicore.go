package sim

import (
	"fmt"
	"sync"

	"ctdvs/internal/ir"
	"ctdvs/internal/volt"
)

// This file adds the multi-core scheduler-simulator: it executes a
// list-scheduled ir.TaskGraph over N machine instances. Each task runs on one
// core as an ordinary single-program simulation (fixed mode, or an edge-grained
// Schedule for the degenerate 1-task case), so the compiled-kernel machines and
// the record/replay profiler carry over per task; the cross-task timeline —
// release times, precedence waits, per-core serialization and inter-task mode
// transitions — is pure arithmetic assembled afterwards. Task simulations are
// independent, which makes the parallel and serial execution paths
// bit-identical by construction.

// TaskPlacement fixes where and how one task runs: the core it is assigned to
// and the DVS mode it executes at.
type TaskPlacement struct {
	Core int `json:"core"`
	Mode int `json:"mode"`
}

// GraphSchedule is the executable schedule of a task graph: the mode set and
// regulator, the core count, per-task placements, the per-core execution
// order, and optionally a per-task edge-grained intra-task schedule.
type GraphSchedule struct {
	Modes     *volt.ModeSet
	Regulator volt.Regulator
	// Cores is the number of machine instances.
	Cores int
	// Placement[t] is task t's core and mode.
	Placement []TaskPlacement
	// Order[c] lists the tasks of core c in execution order. Every task
	// appears exactly once, on its placed core, in an order consistent with
	// the precedence edges.
	Order [][]int
	// Intra[t], when non-nil, runs task t under the edge-grained Schedule
	// instead of a fixed mode — the seam through which the single-program
	// optimizer's output executes bit-identically inside a task graph. An
	// intra-task schedule leaves the core's exit mode unspecified, so it is
	// only allowed for a task that is alone on its core (nil Intra, or a
	// shorter slice, means every task is fixed-mode).
	Intra []*Schedule
}

// Validate checks the schedule against the graph it is meant to execute.
func (s *GraphSchedule) Validate(g *ir.TaskGraph) error {
	if s == nil || s.Modes == nil {
		return fmt.Errorf("sim: nil graph schedule")
	}
	n := len(g.Tasks)
	if s.Cores < 1 {
		return fmt.Errorf("sim: graph schedule has %d cores", s.Cores)
	}
	if len(s.Placement) != n {
		return fmt.Errorf("sim: graph schedule places %d tasks, graph has %d", len(s.Placement), n)
	}
	if len(s.Order) != s.Cores {
		return fmt.Errorf("sim: graph schedule orders %d cores, want %d", len(s.Order), s.Cores)
	}
	for t, pl := range s.Placement {
		if pl.Core < 0 || pl.Core >= s.Cores {
			return fmt.Errorf("sim: task %d placed on core %d of %d", t, pl.Core, s.Cores)
		}
		if pl.Mode < 0 || pl.Mode >= s.Modes.Len() {
			return fmt.Errorf("sim: task %d uses mode %d of %d", t, pl.Mode, s.Modes.Len())
		}
	}
	seen := make([]bool, n)
	for c, order := range s.Order {
		for _, t := range order {
			if t < 0 || t >= n {
				return fmt.Errorf("sim: core %d orders unknown task %d", c, t)
			}
			if seen[t] {
				return fmt.Errorf("sim: task %d ordered twice", t)
			}
			seen[t] = true
			if s.Placement[t].Core != c {
				return fmt.Errorf("sim: task %d ordered on core %d but placed on core %d", t, c, s.Placement[t].Core)
			}
		}
	}
	for t := 0; t < n; t++ {
		if !seen[t] {
			return fmt.Errorf("sim: task %d missing from core orders", t)
		}
	}
	for t := 0; t < len(s.Intra) && t < n; t++ {
		if s.Intra[t] != nil && len(s.Order[s.Placement[t].Core]) != 1 {
			return fmt.Errorf("sim: task %d has an intra-task schedule but shares core %d", t, s.Placement[t].Core)
		}
	}
	return nil
}

// intra returns task t's intra-task schedule, nil when fixed-mode.
func (s *GraphSchedule) intra(t int) *Schedule {
	if t < len(s.Intra) {
		return s.Intra[t]
	}
	return nil
}

// TaskRun is one task's slot in the executed timeline.
type TaskRun struct {
	Task int    `json:"task"`
	Name string `json:"name"`
	Core int    `json:"core"`
	Mode int    `json:"mode"`
	// StartUS/FinishUS bound the task's execution (µs from graph start);
	// the entering mode transition, if any, happens immediately before
	// StartUS and is reported separately.
	StartUS  float64 `json:"start_us"`
	FinishUS float64 `json:"finish_us"`
	// TimeUS and EnergyUJ are the task's own execution time and energy.
	TimeUS   float64 `json:"time_us"`
	EnergyUJ float64 `json:"energy_uj"`
	// TransitionTimeUS/TransitionEnergyUJ price the mode switch entering this
	// task (zero for the first task on a core).
	TransitionTimeUS   float64 `json:"transition_time_us"`
	TransitionEnergyUJ float64 `json:"transition_energy_uj"`
}

// GraphResult is the outcome of executing a task graph.
type GraphResult struct {
	Graph string
	Runs  []TaskRun

	// MakespanUS is the latest task finish time.
	MakespanUS float64
	// EnergyUJ totals task energies plus inter-task transition energies.
	EnergyUJ     float64
	TaskEnergyUJ float64

	Transitions        int64
	TransitionTimeUS   float64
	TransitionEnergyUJ float64

	// CoreBusyUS is per-core busy time (execution plus transitions).
	CoreBusyUS []float64
	// MissedDeadlines counts tasks finishing after their per-task deadline.
	MissedDeadlines int
}

// MeetsDeadline reports whether the whole graph finished within deadlineUS
// and no per-task deadline was missed (same tolerance as the single-program
// measurements).
func (r *GraphResult) MeetsDeadline(deadlineUS float64) bool {
	return r.MissedDeadlines == 0 && r.MakespanUS <= deadlineUS*(1+1e-9)
}

// PlanGraph assembles the execution timeline of a schedule from per-task
// durations and energies, without running a simulator. Both the optimizer's
// predictions and the measured results of SimulateGraph flow through this one
// function — with durations taken from profiles (which are bit-identical to
// fixed-mode simulation), predicted and measured timelines agree exactly.
func PlanGraph(g *ir.TaskGraph, s *GraphSchedule, durUS, energyUJ []float64) (*GraphResult, error) {
	if err := s.Validate(g); err != nil {
		return nil, err
	}
	if len(durUS) != len(g.Tasks) || len(energyUJ) != len(g.Tasks) {
		return nil, fmt.Errorf("sim: %d durations and %d energies for %d tasks", len(durUS), len(energyUJ), len(g.Tasks))
	}
	n := len(g.Tasks)
	res := &GraphResult{
		Graph:      g.Name,
		Runs:       make([]TaskRun, n),
		CoreBusyUS: make([]float64, s.Cores),
	}
	preds := g.Preds()
	finish := make([]float64, n)
	done := make([]bool, n)
	next := make([]int, s.Cores)    // per-core index into Order
	curMode := make([]int, s.Cores) // mode the core is currently in
	first := make([]bool, s.Cores)  // no transition before a core's first task
	for c := range first {
		first[c] = true
	}
	remaining := n
	for remaining > 0 {
		progressed := false
		for c := 0; c < s.Cores; c++ {
			for next[c] < len(s.Order[c]) {
				t := s.Order[c][next[c]]
				ready := true
				avail := g.Tasks[t].ReleaseUS
				for _, p := range preds[t] {
					if !done[p] {
						ready = false
						break
					}
					if finish[p] > avail {
						avail = finish[p]
					}
				}
				if !ready {
					break
				}
				if busy := res.CoreBusyUS[c]; busy > avail {
					avail = busy
				}
				mode := s.Placement[t].Mode
				var transT, transE float64
				if !first[c] && curMode[c] != mode {
					vi := s.Modes.Mode(curMode[c]).V
					vj := s.Modes.Mode(mode).V
					transT = s.Regulator.TransitionTime(vi, vj)
					transE = s.Regulator.TransitionEnergy(vi, vj)
					res.Transitions++
				}
				start := avail + transT
				end := start + durUS[t]
				res.Runs[t] = TaskRun{
					Task: t, Name: g.Tasks[t].Name, Core: c, Mode: mode,
					StartUS: start, FinishUS: end,
					TimeUS: durUS[t], EnergyUJ: energyUJ[t],
					TransitionTimeUS: transT, TransitionEnergyUJ: transE,
				}
				finish[t] = end
				done[t] = true
				res.CoreBusyUS[c] = end
				curMode[c] = mode
				first[c] = false
				next[c]++
				remaining--
				progressed = true

				res.TaskEnergyUJ += energyUJ[t]
				res.TransitionTimeUS += transT
				res.TransitionEnergyUJ += transE
				if end > res.MakespanUS {
					res.MakespanUS = end
				}
				if dl := g.Tasks[t].DeadlineUS; dl > 0 && end > dl*(1+1e-9) {
					res.MissedDeadlines++
				}
			}
		}
		if !progressed {
			return nil, fmt.Errorf("sim: task graph %q deadlocked: core orders contradict precedence", g.Name)
		}
	}
	res.EnergyUJ = res.TaskEnergyUJ + res.TransitionEnergyUJ
	return res, nil
}

// MachinePool supplies machines for task simulations. Acquire must return a
// machine ready for exclusive use; Release returns it. exp.Config's pooled
// machines implement this; SinglePool adapts one machine for serial use.
type MachinePool interface {
	Acquire() *Machine
	Release(*Machine)
}

// SinglePool is the trivial MachinePool over one machine; only valid for
// serial simulation (workers = 1).
type SinglePool struct{ M *Machine }

// Acquire returns the wrapped machine.
func (p SinglePool) Acquire() *Machine { return p.M }

// Release is a no-op; the machine is reset on the next run's entry.
func (p SinglePool) Release(*Machine) {}

// SimulateGraph executes the task graph under the schedule: every task runs
// as one single-program simulation on a pool machine (fixed-mode Run or
// intra-task RunDVS), then the cross-task timeline is assembled by PlanGraph.
// workers bounds the simulation fan-out; results are bit-identical for every
// worker count because task simulations share no state.
func SimulateGraph(pool MachinePool, g *ir.TaskGraph, s *GraphSchedule, workers int) (*GraphResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := s.Validate(g); err != nil {
		return nil, err
	}
	n := len(g.Tasks)
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	durUS := make([]float64, n)
	energyUJ := make([]float64, n)
	runTask := func(t int) error {
		m := pool.Acquire()
		defer pool.Release(m)
		task := g.Tasks[t]
		var (
			r   *Result
			err error
		)
		if intra := s.intra(t); intra != nil {
			r, err = m.RunDVS(task.Program, task.Input, intra)
		} else {
			r, err = m.Run(task.Program, task.Input, s.Modes.Mode(s.Placement[t].Mode))
		}
		if err != nil {
			return fmt.Errorf("sim: task %q: %w", task.Name, err)
		}
		durUS[t] = r.TimeUS
		energyUJ[t] = r.EnergyUJ
		return nil
	}
	if workers == 1 {
		for t := 0; t < n; t++ {
			if err := runTask(t); err != nil {
				return nil, err
			}
		}
	} else {
		errs := make([]error, n)
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for t := 0; t < n; t++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(t int) {
				defer wg.Done()
				defer func() { <-sem }()
				errs[t] = runTask(t)
			}(t)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	return PlanGraph(g, s, durUS, energyUJ)
}
