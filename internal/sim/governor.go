package sim

import (
	"ctdvs/internal/ir"
	"ctdvs/internal/volt"
)

// IntervalStats summarizes machine activity over one governor interval.
type IntervalStats struct {
	Mode         int     // mode index during the window
	WallUS       float64 // window wall-clock length
	ActiveCycles int64   // executed (ungated) cycles in the window
	StallUS      float64 // clock-gated time waiting on memory
	Misses       int64   // main-memory misses issued in the window
}

// Utilization returns the fraction of the window the clock was running.
func (s IntervalStats) Utilization() float64 {
	if s.WallUS <= 0 {
		return 1
	}
	u := 1 - s.StallUS/s.WallUS
	if u < 0 {
		return 0
	}
	return u
}

// Governor is a run-time DVS policy: at the end of each interval it sees the
// window's statistics and returns the mode index to run next. This models
// the OS-level interval-based schedulers of the paper's related work
// (Section 2: Lorch & Smith, Ghiasi's IPC-directed DVS, Marculescu's
// miss-directed DVS) as a baseline family against compile-time scheduling.
type Governor interface {
	Decide(s IntervalStats) int
}

// UtilizationGovernor is a classic PAST-style policy: drop one mode when
// utilization falls below Low (the CPU is mostly waiting on memory), raise
// one mode when it exceeds High.
type UtilizationGovernor struct {
	Modes *volt.ModeSet
	// Low/High are utilization thresholds with Low < High, e.g. 0.6/0.9.
	Low, High float64
}

// Decide implements Governor.
func (g *UtilizationGovernor) Decide(s IntervalStats) int {
	u := s.Utilization()
	switch {
	case u < g.Low && s.Mode > 0:
		return s.Mode - 1
	case u > g.High && s.Mode < g.Modes.Len()-1:
		return s.Mode + 1
	}
	return s.Mode
}

// MissRateGovernor follows Marculescu-style miss-directed DVS: when misses
// per wall-microsecond exceed HighMissesPerUS, drop to the slowest mode (the
// memory system is the bottleneck); when below LowMissesPerUS, return to the
// fastest.
type MissRateGovernor struct {
	Modes                           *volt.ModeSet
	LowMissesPerUS, HighMissesPerUS float64
}

// Decide implements Governor.
func (g *MissRateGovernor) Decide(s IntervalStats) int {
	if s.WallUS <= 0 {
		return s.Mode
	}
	rate := float64(s.Misses) / s.WallUS
	switch {
	case rate > g.HighMissesPerUS:
		return 0
	case rate < g.LowMissesPerUS:
		return g.Modes.Len() - 1
	}
	return s.Mode
}

// DeadlineGovernor is a PACE-style policy (Lorch & Smith in the paper's
// related work): it knows the program's total cycle count (from a profile)
// and the deadline, and at each tick picks the slowest mode whose frequency
// covers the remaining cycles in the remaining time, corrected by the
// observed effective rate (memory stalls make wall-clock progress slower
// than f, so the required frequency is scaled by the measured f/rate).
type DeadlineGovernor struct {
	Modes       *volt.ModeSet
	TotalCycles int64
	DeadlineUS  float64
	// Margin over-provisions the required frequency (e.g. 1.05) to absorb
	// phase changes between ticks.
	Margin float64

	doneCycles int64
	nowUS      float64
}

// Decide implements Governor.
func (g *DeadlineGovernor) Decide(s IntervalStats) int {
	g.doneCycles += s.ActiveCycles
	g.nowUS += s.WallUS

	remainingCycles := g.TotalCycles - g.doneCycles
	remainingUS := g.DeadlineUS - g.nowUS
	if remainingCycles <= 0 {
		return 0 // done: coast at the slowest mode
	}
	if remainingUS <= 0 {
		return g.Modes.Len() - 1 // already late: sprint
	}
	required := float64(remainingCycles) / remainingUS
	// Correct for stalls: at mode f we progressed ActiveCycles over WallUS,
	// an effective rate below f; assume the same dilation ahead.
	if s.WallUS > 0 && s.ActiveCycles > 0 {
		effective := float64(s.ActiveCycles) / s.WallUS
		f := g.Modes.Mode(s.Mode).F
		if effective > 0 && effective < f {
			required *= f / effective
		}
	}
	if g.Margin > 0 {
		required *= g.Margin
	}
	for i := 0; i < g.Modes.Len(); i++ {
		if g.Modes.Mode(i).F >= required {
			return i
		}
	}
	return g.Modes.Len() - 1
}

// RunGoverned executes the program under a run-time interval-based DVS
// policy: every intervalUS of wall-clock time the governor inspects the
// window statistics and may switch modes, paying the regulator's transition
// costs. Mode checks happen at block boundaries (the finest grain an OS tick
// could preempt our abstract blocks).
func (m *Machine) RunGoverned(p *ir.Program, in ir.Input, modes *volt.ModeSet,
	reg volt.Regulator, initial int, intervalUS float64, g Governor) (*Result, error) {

	if modes == nil || g == nil {
		return nil, errf("nil modes or governor")
	}
	if initial < 0 || initial >= modes.Len() {
		return nil, errf("initial mode %d out of range", initial)
	}
	if intervalUS <= 0 {
		return nil, errf("interval must be positive")
	}
	return m.runGoverned(p, in, modes, reg, initial, intervalUS, g)
}
