package sim

import (
	"fmt"
	"math/bits"
)

func errf(format string, args ...interface{}) error {
	return fmt.Errorf("sim: "+format, args...)
}

// cache is a set-associative LRU cache. Tags are stored per set in
// most-recently-used-first order, so a hit moves its way to the front and a
// miss evicts the last way.
type cache struct {
	lineShift uint
	setMask   uint64
	assoc     int
	tags      []uint64 // sets × assoc, MRU first; 0 means empty (tag 0 offset)
	valid     []bool
}

func newCache(cc CacheConfig) *cache {
	sets := cc.Sets()
	return &cache{
		lineShift: uint(bits.TrailingZeros(uint(cc.LineBytes))),
		setMask:   uint64(sets - 1),
		assoc:     cc.Assoc,
		tags:      make([]uint64, sets*cc.Assoc),
		valid:     make([]bool, sets*cc.Assoc),
	}
}

// access looks up addr, updating LRU state and allocating on miss.
// It reports whether the access hit.
func (c *cache) access(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	base := set * c.assoc
	ways := c.tags[base : base+c.assoc]
	valid := c.valid[base : base+c.assoc]
	for i := 0; i < c.assoc; i++ {
		if valid[i] && ways[i] == line {
			// Move to MRU position.
			for j := i; j > 0; j-- {
				ways[j] = ways[j-1]
				valid[j] = valid[j-1]
			}
			ways[0] = line
			valid[0] = true
			return true
		}
	}
	// Miss: evict LRU (last way), insert at MRU.
	for j := c.assoc - 1; j > 0; j-- {
		ways[j] = ways[j-1]
		valid[j] = valid[j-1]
	}
	ways[0] = line
	valid[0] = true
	return false
}

// reset invalidates all lines.
func (c *cache) reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// predictor is a bimodal branch predictor: a table of 2-bit saturating
// counters indexed by a hash of the branch's block ID.
type predictor struct {
	mask     uint32
	counters []uint8
}

func newPredictor(entries int) *predictor {
	p := &predictor{mask: uint32(entries - 1), counters: make([]uint8, entries)}
	// Initialize weakly taken, the usual SimpleScalar default.
	for i := range p.counters {
		p.counters[i] = 2
	}
	return p
}

func (p *predictor) index(block int) uint32 {
	return (uint32(block) * 2654435761) & p.mask
}

// predictAndUpdate returns whether the prediction matched the outcome and
// trains the counter.
func (p *predictor) predictAndUpdate(block int, taken bool) bool {
	i := p.index(block)
	c := p.counters[i]
	pred := c >= 2
	if taken && c < 3 {
		p.counters[i] = c + 1
	} else if !taken && c > 0 {
		p.counters[i] = c - 1
	}
	return pred == taken
}

// reset restores the initial weakly-taken state.
func (p *predictor) reset() {
	for i := range p.counters {
		p.counters[i] = 2
	}
}
