package sim

import (
	"reflect"
	"strings"
	"testing"

	"ctdvs/internal/cfg"
	"ctdvs/internal/ir"
	"ctdvs/internal/volt"
)

// taskProgram builds a small loop with enough work for transitions to matter.
func taskProgram(name string, trips int) *ir.Program {
	b := ir.NewBuilder(name)
	s := b.SequentialStream(32 << 10)
	body := b.Block("body")
	exit := b.Block("exit")
	body.Compute(40).Load(s).DependentCompute(25)
	b.LoopBranch(body, body, exit, trips)
	exit.Compute(10)
	exit.Exit()
	return b.MustFinish()
}

// diamondGraph is a 4-task diamond over two distinct programs.
func diamondGraph() *ir.TaskGraph {
	pa := taskProgram("pa", 400)
	pb := taskProgram("pb", 700)
	task := func(name string, p *ir.Program, seed int64) *ir.Task {
		return &ir.Task{Name: name, Program: p, Input: ir.Input{Name: "in", Seed: seed}}
	}
	return &ir.TaskGraph{
		Name:  "diamond",
		Tasks: []*ir.Task{task("src", pa, 1), task("left", pb, 2), task("right", pb, 3), task("sink", pa, 4)},
		Edges: [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
	}
}

func diamondSchedule(ms *volt.ModeSet) *GraphSchedule {
	return &GraphSchedule{
		Modes:     ms,
		Regulator: volt.DefaultRegulator(),
		Cores:     2,
		Placement: []TaskPlacement{{0, 2}, {0, 1}, {1, 2}, {0, 2}},
		Order:     [][]int{{0, 1, 3}, {2}},
	}
}

func TestSimulateGraphSerialParallelBitIdentical(t *testing.T) {
	g := diamondGraph()
	s := diamondSchedule(volt.XScale3())
	serial, err := SimulateGraph(SinglePool{M: MustNew(DefaultConfig())}, g, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool := &freshPool{}
	parallel, err := SimulateGraph(pool, g, s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("serial and parallel graph simulations differ:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// freshPool builds a machine per acquisition — maximally independent, so the
// bit-identity test cannot pass by accidental state sharing.
type freshPool struct{}

func (freshPool) Acquire() *Machine { return MustNew(DefaultConfig()) }
func (freshPool) Release(*Machine)  {}

func TestSimulateGraphTimeline(t *testing.T) {
	g := diamondGraph()
	ms := volt.XScale3()
	s := diamondSchedule(ms)
	res, err := SimulateGraph(SinglePool{M: MustNew(DefaultConfig())}, g, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	runs := res.Runs
	// Precedence: children start at or after parents finish.
	for _, e := range g.Edges {
		if runs[e[1]].StartUS < runs[e[0]].FinishUS {
			t.Errorf("task %d starts %.3f before pred %d finishes %.3f",
				e[1], runs[e[1]].StartUS, e[0], runs[e[0]].FinishUS)
		}
	}
	// First task on each core pays no transition; the src→left mode change
	// on core 0 does.
	if runs[0].TransitionTimeUS != 0 || runs[2].TransitionTimeUS != 0 {
		t.Errorf("first task on a core charged a transition: %+v %+v", runs[0], runs[2])
	}
	if runs[1].TransitionTimeUS <= 0 || runs[1].TransitionEnergyUJ <= 0 {
		t.Errorf("mode change src→left not charged: %+v", runs[1])
	}
	if res.Transitions != 2 { // src(m2)→left(m1) and left(m1)→sink(m2) on core 0
		t.Errorf("transitions = %d, want 2", res.Transitions)
	}
	if res.MakespanUS != runs[3].FinishUS {
		t.Errorf("makespan %.3f != sink finish %.3f", res.MakespanUS, runs[3].FinishUS)
	}
	wantE := res.TaskEnergyUJ + res.TransitionEnergyUJ
	if res.EnergyUJ != wantE {
		t.Errorf("energy %.6f != tasks+transitions %.6f", res.EnergyUJ, wantE)
	}
}

func TestSimulateGraphDegenerateMatchesRunDVS(t *testing.T) {
	p := taskProgram("solo", 500)
	in := ir.Input{Name: "in", Seed: 9}
	ms := volt.XScale3()
	gr, err := cfg.FromProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	assign := make(map[cfg.Edge]int, gr.NumEdges())
	for i, e := range gr.Edges {
		assign[e] = i % ms.Len()
	}
	sched := &Schedule{
		Modes:      ms,
		Initial:    ms.Len() - 1,
		Regulator:  volt.DefaultRegulator(),
		Assignment: assign,
	}
	direct, err := MustNew(DefaultConfig()).RunDVS(p, in, sched)
	if err != nil {
		t.Fatal(err)
	}
	g := ir.SingleTaskGraph(p, in)
	gs := &GraphSchedule{
		Modes:     ms,
		Regulator: volt.DefaultRegulator(),
		Cores:     1,
		Placement: []TaskPlacement{{Core: 0, Mode: sched.Initial}},
		Order:     [][]int{{0}},
		Intra:     []*Schedule{sched},
	}
	res, err := SimulateGraph(SinglePool{M: MustNew(DefaultConfig())}, g, gs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyUJ != direct.EnergyUJ || res.MakespanUS != direct.TimeUS {
		t.Fatalf("degenerate graph run (%.6f µJ, %.6f µs) != RunDVS (%.6f µJ, %.6f µs)",
			res.EnergyUJ, res.MakespanUS, direct.EnergyUJ, direct.TimeUS)
	}
}

func TestSimulateGraphDeadlockDetected(t *testing.T) {
	g := diamondGraph()
	s := diamondSchedule(volt.XScale3())
	s.Order = [][]int{{3, 0, 1}, {2}} // sink before its predecessors on core 0
	_, err := SimulateGraph(SinglePool{M: MustNew(DefaultConfig())}, g, s, 1)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("contradictory order accepted: %v", err)
	}
}

func TestGraphScheduleValidate(t *testing.T) {
	g := diamondGraph()
	ms := volt.XScale3()
	cases := []struct {
		name string
		mut  func(*GraphSchedule)
		want string
	}{
		{"no cores", func(s *GraphSchedule) { s.Cores = 0 }, "cores"},
		{"bad core", func(s *GraphSchedule) { s.Placement[0].Core = 5 }, "placed on core"},
		{"bad mode", func(s *GraphSchedule) { s.Placement[0].Mode = 99 }, "mode"},
		{"task twice", func(s *GraphSchedule) { s.Order[1] = []int{2, 2} }, "twice"},
		{"task missing", func(s *GraphSchedule) { s.Order[1] = nil }, "missing"},
		{"wrong core order", func(s *GraphSchedule) { s.Order = [][]int{{0, 1, 2, 3}, nil} }, "placed on core"},
		{"shared-core intra", func(s *GraphSchedule) {
			s.Intra = []*Schedule{{Modes: ms}}
		}, "shares core"},
	}
	for _, tc := range cases {
		s := diamondSchedule(ms)
		tc.mut(s)
		err := s.Validate(g)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestPlanGraphRespectsRelease(t *testing.T) {
	g := diamondGraph()
	g.Tasks[0].ReleaseUS = 123.5
	s := diamondSchedule(volt.XScale3())
	res, err := PlanGraph(g, s, []float64{10, 10, 10, 10}, []float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs[0].StartUS != 123.5 {
		t.Fatalf("released task starts at %.3f, want 123.5", res.Runs[0].StartUS)
	}
}

func TestPlanGraphPerTaskDeadline(t *testing.T) {
	g := diamondGraph()
	g.Tasks[3].DeadlineUS = 1 // impossibly tight
	s := diamondSchedule(volt.XScale3())
	res, err := PlanGraph(g, s, []float64{10, 10, 10, 10}, []float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MissedDeadlines != 1 {
		t.Fatalf("missed deadlines = %d, want 1", res.MissedDeadlines)
	}
	if res.MeetsDeadline(1e9) {
		t.Fatal("MeetsDeadline ignored the per-task miss")
	}
}

// reclaimTables builds per-mode duration/energy tables for the graph by
// simulating every task at every mode (small graphs only).
func reclaimTables(t *testing.T, g *ir.TaskGraph, ms *volt.ModeSet) (dur, energy [][]float64) {
	t.Helper()
	m := MustNew(DefaultConfig())
	dur = make([][]float64, len(g.Tasks))
	energy = make([][]float64, len(g.Tasks))
	for ti, task := range g.Tasks {
		dur[ti] = make([]float64, ms.Len())
		energy[ti] = make([]float64, ms.Len())
		for mi := 0; mi < ms.Len(); mi++ {
			r, err := m.Run(task.Program, task.Input, ms.Mode(mi))
			if err != nil {
				t.Fatal(err)
			}
			dur[ti][mi] = r.TimeUS
			energy[ti][mi] = r.EnergyUJ
		}
	}
	return dur, energy
}

func TestReclaimNeverLater_NeverMoreEnergy(t *testing.T) {
	g := diamondGraph()
	ms := volt.XScale3()
	fast := ms.Len() - 1
	// Static schedule: everything at the fastest mode — maximal slack for the
	// governor on the non-critical path.
	s := &GraphSchedule{
		Modes:     ms,
		Regulator: volt.DefaultRegulator(),
		Cores:     2,
		Placement: []TaskPlacement{{0, fast}, {0, fast}, {1, fast}, {0, fast}},
		Order:     [][]int{{0, 1, 3}, {2}},
	}
	dur, energy := reclaimTables(t, g, ms)
	governed, govPlan, staticPlan, err := Reclaim(ReclaimInput{Graph: g, Static: s, DurUS: dur, EnergyUJ: energy})
	if err != nil {
		t.Fatal(err)
	}
	for ti := range g.Tasks {
		if govPlan.Runs[ti].FinishUS > staticPlan.Runs[ti].FinishUS*(1+1e-12) {
			t.Errorf("task %d governed finish %.6f after static %.6f",
				ti, govPlan.Runs[ti].FinishUS, staticPlan.Runs[ti].FinishUS)
		}
	}
	if govPlan.EnergyUJ > staticPlan.EnergyUJ {
		t.Errorf("governed energy %.3f exceeds static %.3f", govPlan.EnergyUJ, staticPlan.EnergyUJ)
	}
	// The measured (simulated) governed schedule agrees with the plan exactly:
	// the tables are bit-identical to fixed-mode simulation.
	meas, err := SimulateGraph(SinglePool{M: MustNew(DefaultConfig())}, g, governed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if meas.EnergyUJ != govPlan.EnergyUJ || meas.MakespanUS != govPlan.MakespanUS {
		t.Errorf("measured (%.6f µJ, %.6f µs) != planned (%.6f µJ, %.6f µs)",
			meas.EnergyUJ, meas.MakespanUS, govPlan.EnergyUJ, govPlan.MakespanUS)
	}
	// The right task slowed down: core 1's lone task has the whole core-0
	// chain's worth of slack.
	if governed.Placement[2].Mode >= fast && govPlan.EnergyUJ == staticPlan.EnergyUJ {
		t.Log("no reclamation happened; timeline too tight for this workload mix")
	}
}

func TestReclaimNoSlackKeepsStatic(t *testing.T) {
	// A 1-core chain at the slowest mode has zero slack and nothing slower to
	// switch to: the governed schedule must equal the static one.
	g := &ir.TaskGraph{
		Name: "chain",
		Tasks: []*ir.Task{
			{Name: "a", Program: taskProgram("a", 300), Input: ir.Input{Name: "in", Seed: 1}},
			{Name: "b", Program: taskProgram("b", 300), Input: ir.Input{Name: "in", Seed: 2}},
		},
		Edges: [][2]int{{0, 1}},
	}
	ms := volt.XScale3()
	s := &GraphSchedule{
		Modes:     ms,
		Regulator: volt.DefaultRegulator(),
		Cores:     1,
		Placement: []TaskPlacement{{0, 0}, {0, 0}},
		Order:     [][]int{{0, 1}},
	}
	dur, energy := reclaimTables(t, g, ms)
	governed, govPlan, staticPlan, err := Reclaim(ReclaimInput{Graph: g, Static: s, DurUS: dur, EnergyUJ: energy})
	if err != nil {
		t.Fatal(err)
	}
	for ti := range g.Tasks {
		if governed.Placement[ti] != s.Placement[ti] {
			t.Errorf("task %d mode changed with no slack: %+v", ti, governed.Placement[ti])
		}
	}
	if govPlan.EnergyUJ != staticPlan.EnergyUJ {
		t.Errorf("energy changed with no slack: %.3f vs %.3f", govPlan.EnergyUJ, staticPlan.EnergyUJ)
	}
}

func TestReclaimRejectsIntra(t *testing.T) {
	p := taskProgram("solo", 50)
	g := ir.SingleTaskGraph(p, ir.Input{Name: "in", Seed: 1})
	ms := volt.XScale3()
	s := &GraphSchedule{
		Modes:     ms,
		Regulator: volt.DefaultRegulator(),
		Cores:     1,
		Placement: []TaskPlacement{{0, 0}},
		Order:     [][]int{{0}},
		Intra:     []*Schedule{{Modes: ms, Regulator: volt.DefaultRegulator()}},
	}
	_, _, _, err := Reclaim(ReclaimInput{Graph: g, Static: s,
		DurUS: [][]float64{{1, 1, 1}}, EnergyUJ: [][]float64{{1, 1, 1}}})
	if err == nil || !strings.Contains(err.Error(), "intra") {
		t.Fatalf("intra-task static schedule accepted: %v", err)
	}
}
