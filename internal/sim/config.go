// Package sim is the cycle-level CPU/cache/power simulator that stands in
// for the Wattch + SimpleScalar toolchain of the original paper. It executes
// ir.Programs at a fixed DVS mode or under a DVS schedule (mode-set
// instructions on control-flow edges), producing:
//
//   - total execution time (µs) and energy (µJ);
//   - per-block, per-mode time and energy (the paper's T_jm, E_jm);
//   - edge traversal counts G_ij and local-path counts D_hij;
//   - the aggregate program parameters of the paper's analytic model
//     (N_cache, N_overlap, N_dependent in cycles; t_invariant in µs);
//   - under DVS schedules, the dynamic mode-transition count and the
//     time/energy spent in transitions (Table 5, Figures 15/17/19).
//
// The timing model matches the paper's assumptions (Section 3.1): memory is
// asynchronous with the CPU (miss service time is independent of clock
// frequency), the clock is gated while the processor waits on memory (idle
// cycles consume no energy), and program control flow is independent of
// frequency.
package sim

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int // total capacity
	Assoc     int // ways per set
	LineBytes int // line size
	// LatencyCycles is the access latency in CPU cycles (on-chip, so it
	// scales with clock frequency).
	LatencyCycles int
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.Assoc * c.LineBytes) }

// Config is the machine configuration. DefaultConfig mirrors the paper's
// Table 2 where the parameter exists in our model; parameters of the 4-wide
// out-of-order core that our block-level timing abstracts away (RUU/LSQ/fetch
// widths) are represented by the block cycle weights of the workloads
// themselves.
type Config struct {
	L1 CacheConfig // unified treatment of I/D: workloads express data traffic
	L2 CacheConfig

	// MemLatencyUS is the absolute main-memory service time per miss in
	// microseconds; it does not scale with CPU frequency (asynchronous
	// memory, paper assumption 2).
	MemLatencyUS float64

	// MemChannels is the number of misses the memory system can service
	// concurrently (MSHR-style memory-level parallelism). The paper's model
	// — and the default — is a single serialized channel; higher values are
	// an extension for studying how overlap opportunities change with
	// memory parallelism.
	MemChannels int

	// StaticPowerMW is leakage power in milliwatts, drawn for the whole
	// wall-clock duration including clock-gated stalls. The paper assumes
	// zero (assumption 3 charges nothing while gated) and lists leakage as
	// future work; a non-zero value quantifies how leakage erodes the
	// benefit of running slowly. Leakage energy is reported separately and
	// excluded from per-block stats.
	StaticPowerMW float64

	// PredictorEntries is the number of 2-bit counters in the bimodal branch
	// predictor (Table 2 lists a 2K-entry bimodal component).
	PredictorEntries int
	// MispredictPenaltyCycles is the pipeline refill penalty.
	MispredictPenaltyCycles int

	// RecordBudgetEvents bounds the size of the event stream Machine.Record
	// may capture, in events (block executions + memory accesses + executed
	// branches); a run that would exceed it aborts recording with
	// ErrUnrecordable and callers fall back to per-mode simulation. Zero
	// selects DefaultRecordBudget; a negative value disables recording
	// entirely (every Record reports ErrUnrecordable). The budget is checked
	// at block granularity, so the captured stream may overshoot it by the
	// events of one block.
	RecordBudgetEvents int

	// Effective switched capacitance per activity, in nanofarads: energy per
	// event is Ceff·V² nanojoules (reported in µJ). Calibrated so a ~1.65 V,
	// 800 MHz run dissipates on the order of 1 W, matching Wattch-era
	// XScale-class estimates.
	CeffComputeNF float64 // per computation cycle
	CeffL1NF      float64 // per L1 access
	CeffL2NF      float64 // per L2 access cycle

	// ReferenceSim selects the original instruction-walking interpreter
	// instead of the compiled-table kernel (see CompileProgram). The two are
	// bit-identical on every program, input, schedule and mode set — asserted
	// by randomized property tests — so this is an escape hatch for
	// cross-checking and benchmarking, not a semantic switch. Answers never
	// change; artifact cache keys deliberately ignore it.
	ReferenceSim bool
}

// DefaultConfig returns the Table 2 machine: 64 KB 4-way 32 B L1 (1 cycle),
// 512 KB 4-way 32 B unified L2 (16 cycles), 2K-entry bimodal predictor.
// Main memory latency is 0.1 µs (100 ns, a 2003-era DRAM access).
func DefaultConfig() Config {
	return Config{
		L1:                      CacheConfig{SizeBytes: 64 << 10, Assoc: 4, LineBytes: 32, LatencyCycles: 1},
		L2:                      CacheConfig{SizeBytes: 512 << 10, Assoc: 4, LineBytes: 32, LatencyCycles: 16},
		MemLatencyUS:            0.1,
		MemChannels:             1,
		PredictorEntries:        2048,
		MispredictPenaltyCycles: 4,
		CeffComputeNF:           0.45,
		CeffL1NF:                0.55,
		CeffL2NF:                0.90,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.L1.validate("L1"); err != nil {
		return err
	}
	if err := c.L2.validate("L2"); err != nil {
		return err
	}
	if c.MemLatencyUS <= 0 {
		return errf("memory latency must be positive, got %v", c.MemLatencyUS)
	}
	if c.MemChannels < 1 {
		return errf("memory channels must be at least 1, got %d", c.MemChannels)
	}
	if c.StaticPowerMW < 0 {
		return errf("negative static power")
	}
	if c.PredictorEntries <= 0 || c.PredictorEntries&(c.PredictorEntries-1) != 0 {
		return errf("predictor entries must be a positive power of two, got %d", c.PredictorEntries)
	}
	if c.MispredictPenaltyCycles < 0 {
		return errf("negative mispredict penalty")
	}
	if c.CeffComputeNF <= 0 || c.CeffL1NF <= 0 || c.CeffL2NF <= 0 {
		return errf("effective capacitances must be positive")
	}
	return nil
}

func (c CacheConfig) validate(name string) error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.LineBytes <= 0 || c.LatencyCycles <= 0 {
		return errf("%s: all parameters must be positive: %+v", name, c)
	}
	if c.SizeBytes%(c.Assoc*c.LineBytes) != 0 {
		return errf("%s: size %d not divisible by assoc×line %d", name, c.SizeBytes, c.Assoc*c.LineBytes)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return errf("%s: set count %d is not a power of two", name, sets)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return errf("%s: line size %d is not a power of two", name, c.LineBytes)
	}
	return nil
}
