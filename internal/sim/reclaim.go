package sim

import (
	"fmt"
	"math"

	"ctdvs/internal/ir"
)

// This file implements the runtime counterpart of the compile-time task-graph
// schedule: a slack-reclaiming governor in the style of Aupy et al.
// ("Reclaiming the energy of a schedule"). The static schedule fixes
// placement, per-core order and per-task modes; at run time, tasks that start
// earlier than the static timeline predicted (because a predecessor finished
// early, or the static schedule was conservative) hand their slack to the
// governor, which re-executes the dispatch loop and slows each task down as
// far as the slack allows — without ever letting any task finish later than
// its static finish time, so precedence and every deadline the static
// schedule met remain met by construction.

// ReclaimInput bundles what the governor needs: the graph, the static
// schedule (fixed-mode tasks only), and per-task per-mode duration/energy
// tables. The tables come from profiles, which are bit-identical to
// fixed-mode simulation, so the governor's arithmetic is exact, not an
// estimate.
type ReclaimInput struct {
	Graph    *ir.TaskGraph
	Static   *GraphSchedule
	DurUS    [][]float64 // [task][mode] fixed-mode execution time
	EnergyUJ [][]float64 // [task][mode] fixed-mode energy
}

// Reclaim runs the governor over the static schedule and returns the governed
// schedule (same placement and order, possibly slower modes) plus the planned
// results of both. Two invariants hold by construction:
//
//   - every task's governed finish time is ≤ its static finish time (each
//     candidate mode is admitted only if it fits, with a reserve covering the
//     worst extra transition it could impose on the core's next task, and the
//     static mode always fits);
//   - the governed schedule's total energy is ≤ the static schedule's: the
//     governor compares the two assembled plans and falls back to the static
//     schedule wholesale if reclamation did not pay (transitions can eat the
//     per-task wins on adversarial mode ladders).
func Reclaim(in ReclaimInput) (governed *GraphSchedule, governedPlan, staticPlan *GraphResult, err error) {
	g, s := in.Graph, in.Static
	if err := g.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if err := s.Validate(g); err != nil {
		return nil, nil, nil, err
	}
	n := len(g.Tasks)
	for t := 0; t < n; t++ {
		if s.intra(t) != nil {
			return nil, nil, nil, fmt.Errorf("sim: reclaim needs fixed-mode tasks, task %d has an intra-task schedule", t)
		}
	}
	nm := s.Modes.Len()
	if len(in.DurUS) != n || len(in.EnergyUJ) != n {
		return nil, nil, nil, fmt.Errorf("sim: reclaim tables cover %d/%d tasks, graph has %d", len(in.DurUS), len(in.EnergyUJ), n)
	}
	for t := 0; t < n; t++ {
		if len(in.DurUS[t]) != nm || len(in.EnergyUJ[t]) != nm {
			return nil, nil, nil, fmt.Errorf("sim: reclaim tables for task %d cover %d modes, want %d", t, len(in.DurUS[t]), nm)
		}
	}

	staticDur := make([]float64, n)
	staticEnergy := make([]float64, n)
	for t := 0; t < n; t++ {
		m := s.Placement[t].Mode
		staticDur[t] = in.DurUS[t][m]
		staticEnergy[t] = in.EnergyUJ[t][m]
	}
	staticPlan, err = PlanGraph(g, s, staticDur, staticEnergy)
	if err != nil {
		return nil, nil, nil, err
	}

	// Governed dispatch: the same deterministic loop as PlanGraph, but each
	// task's mode is chosen when it is dispatched. A mode m is admissible if
	//
	//	start + transition(cur, m) + dur[t][m] + CT·|V(m) − V(static)| ≤ staticFinish[t]
	//
	// The CT reserve pays, in advance, for the worst-case extra transition
	// the deviation from the static mode can impose on the next task of this
	// core; with it, an induction over the dispatch order shows the static
	// mode is always admissible and every governed finish stays ≤ static.
	// Among admissible modes, the governor picks the lowest task+transition
	// energy (ties to the slower mode).
	ct := s.Regulator.CT()
	preds := g.Preds()
	mode := make([]int, n)
	finish := make([]float64, n)
	done := make([]bool, n)
	next := make([]int, s.Cores)
	curMode := make([]int, s.Cores)
	first := make([]bool, s.Cores)
	coreBusy := make([]float64, s.Cores)
	for c := range first {
		first[c] = true
	}
	remaining := n
	for remaining > 0 {
		progressed := false
		for c := 0; c < s.Cores; c++ {
			for next[c] < len(s.Order[c]) {
				t := s.Order[c][next[c]]
				ready := true
				avail := g.Tasks[t].ReleaseUS
				for _, p := range preds[t] {
					if !done[p] {
						ready = false
						break
					}
					if finish[p] > avail {
						avail = finish[p]
					}
				}
				if !ready {
					break
				}
				if coreBusy[c] > avail {
					avail = coreBusy[c]
				}
				sm := s.Placement[t].Mode
				vStatic := s.Modes.Mode(sm).V
				best, bestCost := -1, math.Inf(1)
				for m := 0; m < nm; m++ {
					var transT, transE float64
					if !first[c] && curMode[c] != m {
						vi := s.Modes.Mode(curMode[c]).V
						vj := s.Modes.Mode(m).V
						transT = s.Regulator.TransitionTime(vi, vj)
						transE = s.Regulator.TransitionEnergy(vi, vj)
					}
					reserve := ct * math.Abs(s.Modes.Mode(m).V-vStatic)
					if avail+transT+in.DurUS[t][m]+reserve > staticPlan.Runs[t].FinishUS {
						continue
					}
					if cost := in.EnergyUJ[t][m] + transE; cost < bestCost {
						best, bestCost = m, cost
					}
				}
				if best < 0 {
					// Floating-point edge: fall back to the static mode.
					best = sm
				}
				mode[t] = best
				var transT float64
				if !first[c] && curMode[c] != best {
					transT = s.Regulator.TransitionTime(s.Modes.Mode(curMode[c]).V, s.Modes.Mode(best).V)
				}
				finish[t] = avail + transT + in.DurUS[t][best]
				coreBusy[c] = finish[t]
				curMode[c] = best
				first[c] = false
				done[t] = true
				next[c]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			return nil, nil, nil, fmt.Errorf("sim: task graph %q deadlocked during reclaim", g.Name)
		}
	}

	governed = &GraphSchedule{
		Modes:     s.Modes,
		Regulator: s.Regulator,
		Cores:     s.Cores,
		Placement: make([]TaskPlacement, n),
		Order:     s.Order,
	}
	govDur := make([]float64, n)
	govEnergy := make([]float64, n)
	for t := 0; t < n; t++ {
		governed.Placement[t] = TaskPlacement{Core: s.Placement[t].Core, Mode: mode[t]}
		govDur[t] = in.DurUS[t][mode[t]]
		govEnergy[t] = in.EnergyUJ[t][mode[t]]
	}
	governedPlan, err = PlanGraph(g, governed, govDur, govEnergy)
	if err != nil {
		return nil, nil, nil, err
	}
	// The energy guarantee, made unconditional: if reclamation did not pay,
	// the governor keeps the static schedule.
	if governedPlan.EnergyUJ > staticPlan.EnergyUJ {
		return s, staticPlan, staticPlan, nil
	}
	return governed, governedPlan, staticPlan, nil
}
