package sim

import (
	"testing"

	"ctdvs/internal/ir"
	"ctdvs/internal/volt"
)

// phased builds a program whose first half is memory-bound and second half
// compute-bound, with phases long enough for an interval governor to react.
func phased(trips int) *ir.Program {
	b := ir.NewBuilder("phased")
	mem := b.RandomStream(64 << 20)
	memPhase := b.Block("memory")
	cpuPhase := b.Block("compute")
	exit := b.Block("exit")
	memPhase.Load(mem).Compute(10).DependentCompute(30)
	b.LoopBranch(memPhase, memPhase, cpuPhase, trips)
	cpuPhase.Compute(200)
	b.LoopBranch(cpuPhase, cpuPhase, exit, trips)
	exit.Compute(1)
	exit.Exit()
	return b.MustFinish()
}

func TestUtilizationGovernorAdapts(t *testing.T) {
	t.Parallel()
	prog := phased(4000)
	in := ir.Input{Name: "x", Seed: 11}
	ms := volt.XScale3()
	reg := volt.DefaultRegulator()
	m := MustNew(DefaultConfig())

	gov := &UtilizationGovernor{Modes: ms, Low: 0.6, High: 0.9}
	res, err := m.RunGoverned(prog, in, ms, reg, ms.Len()-1, 100, gov)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transitions == 0 {
		t.Error("governor never switched on a phased program")
	}

	fixed, err := m.Run(prog, in, ms.Max())
	if err != nil {
		t.Fatal(err)
	}
	// The governor should save energy versus all-fast by slowing the
	// memory-bound phase.
	if res.EnergyUJ >= fixed.EnergyUJ {
		t.Errorf("governed energy %v not below all-fast %v", res.EnergyUJ, fixed.EnergyUJ)
	}
	// And it costs some time (it has no deadline concept).
	if res.TimeUS < fixed.TimeUS {
		t.Errorf("governed run faster than all-fast: %v < %v", res.TimeUS, fixed.TimeUS)
	}
}

func TestMissRateGovernor(t *testing.T) {
	t.Parallel()
	prog := phased(4000)
	in := ir.Input{Name: "x", Seed: 11}
	ms := volt.XScale3()
	reg := volt.DefaultRegulator()
	m := MustNew(DefaultConfig())

	gov := &MissRateGovernor{Modes: ms, LowMissesPerUS: 0.5, HighMissesPerUS: 3}
	res, err := m.RunGoverned(prog, in, ms, reg, ms.Len()-1, 100, gov)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transitions == 0 {
		t.Error("miss-rate governor never switched")
	}
	fixed, err := m.Run(prog, in, ms.Max())
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyUJ >= fixed.EnergyUJ {
		t.Errorf("governed energy %v not below all-fast %v", res.EnergyUJ, fixed.EnergyUJ)
	}
}

func TestGovernorControlFlowUnchanged(t *testing.T) {
	t.Parallel()
	// Run-time DVS must not alter the executed path (paper assumption 1).
	prog := phased(1000)
	in := ir.Input{Name: "x", Seed: 4}
	ms := volt.XScale3()
	m := MustNew(DefaultConfig())
	gov := &UtilizationGovernor{Modes: ms, Low: 0.6, High: 0.9}
	governed, err := m.RunGoverned(prog, in, ms, volt.DefaultRegulator(), 2, 50, gov)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := m.Run(prog, in, ms.Max())
	if err != nil {
		t.Fatal(err)
	}
	if governed.MemMisses != fixed.MemMisses || governed.Branches != fixed.Branches {
		t.Errorf("control flow changed under governor: misses %d/%d branches %d/%d",
			governed.MemMisses, fixed.MemMisses, governed.Branches, fixed.Branches)
	}
	for j := range governed.Blocks {
		if governed.Blocks[j].Invocations != fixed.Blocks[j].Invocations {
			t.Errorf("block %d invocations differ", j)
		}
	}
}

func TestRunGovernedValidation(t *testing.T) {
	t.Parallel()
	prog := phased(10)
	ms := volt.XScale3()
	m := MustNew(DefaultConfig())
	gov := &UtilizationGovernor{Modes: ms, Low: 0.5, High: 0.9}
	if _, err := m.RunGoverned(prog, ir.Input{}, nil, volt.DefaultRegulator(), 0, 100, gov); err == nil {
		t.Error("nil modes accepted")
	}
	if _, err := m.RunGoverned(prog, ir.Input{}, ms, volt.DefaultRegulator(), 9, 100, gov); err == nil {
		t.Error("bad initial accepted")
	}
	if _, err := m.RunGoverned(prog, ir.Input{}, ms, volt.DefaultRegulator(), 0, 0, gov); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := m.RunGoverned(prog, ir.Input{}, ms, volt.DefaultRegulator(), 0, 100, nil); err == nil {
		t.Error("nil governor accepted")
	}
}

func TestIntervalStatsUtilization(t *testing.T) {
	t.Parallel()
	s := IntervalStats{WallUS: 100, StallUS: 25}
	if u := s.Utilization(); u != 0.75 {
		t.Errorf("utilization = %v", u)
	}
	if u := (IntervalStats{}).Utilization(); u != 1 {
		t.Errorf("empty-window utilization = %v", u)
	}
	if u := (IntervalStats{WallUS: 10, StallUS: 20}).Utilization(); u != 0 {
		t.Errorf("over-stalled utilization = %v", u)
	}
}

func TestDeadlineGovernorPacesToDeadline(t *testing.T) {
	t.Parallel()
	prog := phased(4000)
	in := ir.Input{Name: "x", Seed: 11}
	ms := volt.XScale3()
	reg := volt.DefaultRegulator()
	m := MustNew(DefaultConfig())

	// Profile the totals at the fastest mode.
	ref, err := m.Run(prog, in, ms.Max())
	if err != nil {
		t.Fatal(err)
	}
	total := ref.Params.NCache + ref.Params.NOverlap + ref.Params.NDependent
	slow, err := m.Run(prog, in, ms.Min())
	if err != nil {
		t.Fatal(err)
	}
	deadline := (ref.TimeUS + slow.TimeUS) / 2

	gov := &DeadlineGovernor{Modes: ms, TotalCycles: total, DeadlineUS: deadline, Margin: 1.1}
	res, err := m.RunGoverned(prog, in, ms, reg, ms.Len()-1, 50, gov)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeUS > deadline*1.05 {
		t.Errorf("paced run %v µs misses deadline %v µs", res.TimeUS, deadline)
	}
	// Pacing must save energy versus running flat out.
	if res.EnergyUJ >= ref.EnergyUJ {
		t.Errorf("paced energy %v not below all-fast %v", res.EnergyUJ, ref.EnergyUJ)
	}
}

func TestDeadlineGovernorSprintsWhenLate(t *testing.T) {
	t.Parallel()
	ms := volt.XScale3()
	g := &DeadlineGovernor{Modes: ms, TotalCycles: 1 << 30, DeadlineUS: 10}
	// Consume the whole deadline with little progress: must pick fastest.
	got := g.Decide(IntervalStats{Mode: 0, WallUS: 20, ActiveCycles: 100})
	if got != ms.Len()-1 {
		t.Errorf("late governor picked mode %d", got)
	}
	// Finished early: must coast.
	g2 := &DeadlineGovernor{Modes: ms, TotalCycles: 50, DeadlineUS: 1e6}
	got = g2.Decide(IntervalStats{Mode: 2, WallUS: 1, ActiveCycles: 100})
	if got != 0 {
		t.Errorf("done governor picked mode %d", got)
	}
}
