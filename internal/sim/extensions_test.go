package sim

import (
	"math"
	"testing"

	"ctdvs/internal/ir"
)

// missBurst issues bursts of independent loads that all miss, so memory-level
// parallelism matters: with one channel the misses serialize; with several
// they overlap.
func missBurst(trips int) *ir.Program {
	b := ir.NewBuilder("miss-burst")
	s := b.RandomStream(256 << 20)
	body := b.Block("body")
	exit := b.Block("exit")
	body.Load(s).Load(s).Load(s).Load(s).DependentCompute(2)
	b.LoopBranch(body, body, exit, trips)
	exit.Compute(1)
	exit.Exit()
	return b.MustFinish()
}

func TestMemChannelsOverlapMisses(t *testing.T) {
	t.Parallel()
	prog := missBurst(2000)
	in := ir.Input{Name: "x", Seed: 5}

	one := DefaultConfig()
	four := DefaultConfig()
	four.MemChannels = 4

	r1, err := MustNew(one).Run(prog, in, mode800())
	if err != nil {
		t.Fatal(err)
	}
	r4, err := MustNew(four).Run(prog, in, mode800())
	if err != nil {
		t.Fatal(err)
	}
	if r1.MemMisses != r4.MemMisses {
		t.Fatalf("miss counts differ: %d vs %d", r1.MemMisses, r4.MemMisses)
	}
	// Four channels must be substantially faster on four-miss bursts.
	if r4.TimeUS >= r1.TimeUS*0.6 {
		t.Errorf("4-channel run (%v µs) not much faster than 1-channel (%v µs)",
			r4.TimeUS, r1.TimeUS)
	}
	// Dynamic energy is identical (same activity); only timing changes.
	if math.Abs(r4.EnergyUJ-r1.EnergyUJ) > 1e-9 {
		t.Errorf("energy changed with channels: %v vs %v", r4.EnergyUJ, r1.EnergyUJ)
	}
}

func TestMemChannelsSingleMatchesDefault(t *testing.T) {
	t.Parallel()
	// MemChannels == 1 must be bit-identical to the paper's serialized model.
	prog := missBurst(500)
	in := ir.Input{Name: "x", Seed: 9}
	c := DefaultConfig()
	if c.MemChannels != 1 {
		t.Fatalf("default channels = %d", c.MemChannels)
	}
	a, err := MustNew(c).Run(prog, in, mode200())
	if err != nil {
		t.Fatal(err)
	}
	b, err := MustNew(c).Run(prog, in, mode200())
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeUS != b.TimeUS {
		t.Error("nondeterministic")
	}
}

func TestLeakageEnergy(t *testing.T) {
	t.Parallel()
	prog := missBurst(500)
	in := ir.Input{Name: "x", Seed: 3}

	base := DefaultConfig()
	leaky := DefaultConfig()
	leaky.StaticPowerMW = 50 // 50 mW leakage

	r0, err := MustNew(base).Run(prog, in, mode800())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := MustNew(leaky).Run(prog, in, mode800())
	if err != nil {
		t.Fatal(err)
	}
	if r0.LeakageEnergyUJ != 0 {
		t.Errorf("default config has leakage %v", r0.LeakageEnergyUJ)
	}
	wantLeak := 50 * r1.TimeUS * 1e-3
	if math.Abs(r1.LeakageEnergyUJ-wantLeak) > 1e-9 {
		t.Errorf("leakage = %v, want %v", r1.LeakageEnergyUJ, wantLeak)
	}
	if math.Abs(r1.EnergyUJ-(r0.EnergyUJ+wantLeak)) > 1e-9 {
		t.Errorf("total energy %v, want dynamic %v + leakage %v", r1.EnergyUJ, r0.EnergyUJ, wantLeak)
	}
	// Timing must be unaffected by leakage.
	if r1.TimeUS != r0.TimeUS {
		t.Errorf("leakage changed timing: %v vs %v", r1.TimeUS, r0.TimeUS)
	}
}

func TestLeakagePenalizesSlowRuns(t *testing.T) {
	t.Parallel()
	// The race-to-idle effect: with enough leakage, running slower (longer)
	// stops being a clear energy win.
	prog := missBurst(500)
	in := ir.Input{Name: "x", Seed: 3}
	leaky := DefaultConfig()
	leaky.StaticPowerMW = 400
	m := MustNew(leaky)
	fast, err := m.Run(prog, in, mode800())
	if err != nil {
		t.Fatal(err)
	}
	slow, err := m.Run(prog, in, mode200())
	if err != nil {
		t.Fatal(err)
	}
	if slow.LeakageEnergyUJ <= fast.LeakageEnergyUJ {
		t.Errorf("slow run leaks less (%v) than fast (%v)",
			slow.LeakageEnergyUJ, fast.LeakageEnergyUJ)
	}
}

func TestNewConfigValidation(t *testing.T) {
	t.Parallel()
	bad := DefaultConfig()
	bad.MemChannels = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero channels accepted")
	}
	bad = DefaultConfig()
	bad.StaticPowerMW = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative leakage accepted")
	}
}
