package sim

import (
	"fmt"
	"math/rand"

	"ctdvs/internal/cfg"
	"ctdvs/internal/ir"
	"ctdvs/internal/volt"
)

// BlockStat aggregates one block's activity over a run.
type BlockStat struct {
	Invocations int64
	TimeUS      float64 // wall time attributed to the block (stalls included)
	EnergyUJ    float64 // active energy (gated stall cycles consume nothing)
}

// Params are the aggregate program parameters of the paper's analytic model
// (Section 3.2 / Table 7), as measured by a profiling run.
type Params struct {
	NCache       int64   // cycles of cache-hit memory operations (L1 + L2 hits)
	NOverlap     int64   // computation cycles that may overlap memory
	NDependent   int64   // computation cycles dependent on memory
	TInvariantUS float64 // absolute main-memory service time (cache misses)
}

// Result is the outcome of simulating one program on one input.
type Result struct {
	Program string
	Input   string
	Mode    volt.Mode // the (single or initial) mode of the run

	TimeUS   float64
	EnergyUJ float64

	Blocks []BlockStat

	// EdgeCountsByID and PathCountsByID are dense traversal counters indexed
	// by the canonical cfg.FromProgram numbering: EdgeCountsByID[g.EdgeID(e)]
	// is the traversal count of e (the virtual entry edge is index 0), and
	// PathCountsByID[i] counts g.Paths[i]. Zero entries are present. Every
	// producer and the profiling pipeline deal only in these arrays; callers
	// that want cfg-keyed sparse maps derive them on demand with CountMaps.
	EdgeCountsByID []int64
	PathCountsByID []int64

	Params Params

	L1Hits, L2Hits, MemMisses int64
	Branches, Mispredicts     int64

	// LeakageEnergyUJ is the static-power energy over the whole run
	// (zero under the paper's assumptions); it is included in EnergyUJ but
	// not in per-block stats.
	LeakageEnergyUJ float64

	// DVS accounting (zero for fixed-mode runs).
	Transitions        int64
	TransitionTimeUS   float64
	TransitionEnergyUJ float64
}

// Schedule assigns a DVS mode to each control-flow edge, the paper's
// compile-time mode-set instruction placement. Edges absent from Assignment
// keep the current mode (no mode-set instruction on that edge).
type Schedule struct {
	Modes *volt.ModeSet
	// Assignment maps an edge to the index (into Modes) it sets. The virtual
	// entry edge (cfg.Entry → 0) may also carry an assignment.
	Assignment map[cfg.Edge]int
	// Initial is the mode index the machine is in before the entry edge.
	Initial int
	// Regulator prices mode transitions.
	Regulator volt.Regulator
}

// Machine simulates ir programs under a fixed configuration. A Machine may
// be reused across runs; each run resets microarchitectural state. A Machine
// is NOT safe for concurrent use — the caches and predictor are per-machine
// mutable state — so parallel callers must build (or pool) one Machine per
// goroutine; see exp.Config for an example.
type Machine struct {
	cfg  Config
	l1   *cache
	l2   *cache
	pred *predictor

	// rec is non-nil only while Record's instrumented run is in flight;
	// scratch is the reusable recorder buffer it points at, retained across
	// recordings (and across pool borrowers, see exp.Config) so steady-state
	// recording allocates nothing beyond the sealed Recording itself.
	rec     *recorder
	scratch *recorder

	// EdgeHook, when non-nil, is invoked on every control-flow edge
	// traversal (including the virtual entry edge, with from == cfg.Entry)
	// before the destination block executes. It exists for tracing tools —
	// notably the Ball–Larus path profiler in package paths — and must not
	// retain the arguments beyond the call.
	EdgeHook func(from, to int)

	// compiled caches CompileProgram results by program identity; it
	// survives Reset deliberately, so a pooled machine lowers each workload
	// once across all its borrowers. Compilations embed only immutable
	// program/config-derived tables, never run state, so sharing them across
	// resets cannot leak one run into the next.
	compiled map[*ir.Program]*CompiledProgram

	// buf holds the pooled per-run dense counters the compiled kernel
	// executes against; cleared on run entry and by Reset.
	buf runBuffers

	// rng is the per-run pseudorandom source, re-seeded on every run entry so
	// reuse draws exactly the sequence a fresh rand.New(rand.NewSource(seed))
	// would. Like compiled, it survives Reset: a re-seeded generator carries
	// no state between runs, it only spares the allocation.
	rng *rand.Rand
}

// New builds a machine, validating the configuration.
func New(c Config) (*Machine, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &Machine{
		cfg:  c,
		l1:   newCache(c.L1),
		l2:   newCache(c.L2),
		pred: newPredictor(c.PredictorEntries),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(c Config) *Machine {
	m, err := New(c)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// rngFor returns the machine's run RNG positioned at the start of seed's
// sequence. rand.Source.Seed resets the generator to the exact state
// rand.NewSource(seed) constructs, so every run still sees the same draws
// regardless of what earlier runs consumed.
func (m *Machine) rngFor(seed int64) *rand.Rand {
	if m.rng == nil {
		m.rng = rand.New(rand.NewSource(seed))
		return m.rng
	}
	m.rng.Seed(seed)
	return m.rng
}

// Reset returns the machine to its post-New state: cold caches, cold
// predictor, no edge hook. Individual runs already reset microarchitectural
// state on entry; Reset exists for machine pools (see exp.Config), where a
// machine handed back by one experiment must not leak its EdgeHook — or,
// if future state outlives run() — into the next borrower.
func (m *Machine) Reset() {
	m.l1.reset()
	m.l2.reset()
	m.pred.reset()
	m.EdgeHook = nil
	m.rec = nil
	m.buf.clear()
}

// Run simulates the program on the given input entirely at one DVS mode.
func (m *Machine) Run(p *ir.Program, in ir.Input, mode volt.Mode) (*Result, error) {
	return m.run(p, in, nil, nil, mode)
}

// govRun carries the run-time governor configuration through a run.
type govRun struct {
	modes      *volt.ModeSet
	reg        volt.Regulator
	intervalUS float64
	g          Governor
}

func (m *Machine) runGoverned(p *ir.Program, in ir.Input, modes *volt.ModeSet,
	reg volt.Regulator, initial int, intervalUS float64, g Governor) (*Result, error) {
	gr := &govRun{modes: modes, reg: reg, intervalUS: intervalUS, g: g}
	res, err := m.run(p, in, nil, gr, modes.Mode(initial))
	if err != nil {
		return nil, err
	}
	return res, nil
}

// RunDVS simulates the program under a DVS schedule, charging regulator
// time/energy at every dynamic mode change.
func (m *Machine) RunDVS(p *ir.Program, in ir.Input, sched *Schedule) (*Result, error) {
	if sched == nil || sched.Modes == nil {
		return nil, errf("nil schedule")
	}
	if sched.Initial < 0 || sched.Initial >= sched.Modes.Len() {
		return nil, errf("initial mode %d out of range", sched.Initial)
	}
	for e, mi := range sched.Assignment {
		if mi < 0 || mi >= sched.Modes.Len() {
			return nil, errf("edge %v assigned invalid mode %d", e, mi)
		}
	}
	return m.run(p, in, sched, nil, sched.Modes.Mode(sched.Initial))
}

// blockInfo is the precomputed per-block structure used by the interpreter.
type blockInfo struct {
	preds   []int // predecessor block IDs; cfg.Entry included for block 0
	succs   []int // deduplicated successor block IDs, in terminator order
	predIdx map[int]int
	succIdx map[int]int
	// dvsMode[s] is the mode set by edge (this block → succs[s]); -1 keeps
	// the current mode.
	dvsMode []int
	// edgeBase is the cfg.FromProgram ID of edge (this block → succs[0]);
	// successor s is edge edgeBase+s (the virtual entry edge is ID 0).
	// pathBase is the index of the block's first local path in cfg's
	// (Mid, In, Out)-sorted path list: the path preds[h] → block → succs[s]
	// has index pathBase + h·len(succs) + succRank[s], where succRank ranks
	// the successors by ascending block ID (preds are already ascending).
	edgeBase int
	pathBase int
	succRank []int
}

// run dispatches a simulation to the compiled kernel (the default) or the
// reference interpreter (Config.ReferenceSim). Both produce bit-identical
// Results; the reference loop exists as the oracle the compiled kernel is
// property-tested against (see compile_test.go) and as a CLI escape hatch
// (-reference-sim).
func (m *Machine) run(p *ir.Program, in ir.Input, sched *Schedule, gov *govRun, initial volt.Mode) (*Result, error) {
	if m.cfg.ReferenceSim {
		return m.runReference(p, in, sched, gov, initial)
	}
	cp, err := m.compiledFor(p)
	if err != nil {
		return nil, err
	}
	return m.runCompiled(cp, in, sched, gov, initial)
}

// runReference is the original instruction-walking interpreter, retained
// verbatim as the correctness oracle for the compiled kernel.
func (m *Machine) runReference(p *ir.Program, in ir.Input, sched *Schedule, gov *govRun, initial volt.Mode) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m.l1.reset()
	m.l2.reset()
	m.pred.reset()

	info, maxCond, numEdges, numPaths := buildBlockInfo(p, sched)
	res := &Result{
		Program: p.Name,
		Input:   in.Name,
		Mode:    initial,
		Blocks:  make([]BlockStat, len(p.Blocks)),
	}

	// Dense counters, converted to maps at the end.
	gcount := make([][]int64, len(p.Blocks))
	dcount := make([][][]int64, len(p.Blocks))
	for i, bi := range info {
		gcount[i] = make([]int64, len(bi.succs))
		dcount[i] = make([][]int64, len(bi.preds))
		for h := range bi.preds {
			dcount[i][h] = make([]int64, len(bi.succs))
		}
	}
	entryCount := int64(0) // traversals of the virtual entry edge

	rng := m.rngFor(in.Seed)
	loopCount := make([]int, maxCond+1)
	streamOff := make([]int64, len(p.Streams))

	// Machine state. Memory channels track when each concurrent miss slot
	// frees; the paper's model is MemChannels == 1 (fully serialized).
	memChans := make([]float64, m.cfg.MemChannels)
	memDrained := func() float64 {
		worst := 0.0
		for _, t := range memChans {
			if t > worst {
				worst = t
			}
		}
		return worst
	}
	var (
		timeUS     float64
		energyUJ   float64
		stallUS    float64
		curMode    = initial
		curModeIdx = -1
	)
	if sched != nil {
		curModeIdx = sched.Initial
	}
	if gov != nil {
		curModeIdx = gov.modes.Index(initial.F)
	}
	ePerComputeCycle := func() float64 { return m.cfg.CeffComputeNF * curMode.V * curMode.V * 1e-3 }

	switchTo := func(table *volt.ModeSet, reg volt.Regulator, target int) {
		if target < 0 || target == curModeIdx {
			return
		}
		next := table.Mode(target)
		res.Transitions++
		st := reg.TransitionTime(curMode.V, next.V)
		se := reg.TransitionEnergy(curMode.V, next.V)
		timeUS += st
		energyUJ += se
		res.TransitionTimeUS += st
		res.TransitionEnergyUJ += se
		curMode = next
		curModeIdx = target
	}
	setMode := func(target int) {
		if sched == nil {
			return
		}
		switchTo(sched.Modes, sched.Regulator, target)
	}

	// Governor window state.
	var (
		nextCheckUS float64
		winStartUS  float64
		winStallUS  float64
		winCycles   int64
		winMisses   int64
		totalCycles = func() int64 { return res.Params.NCache + res.Params.NOverlap + res.Params.NDependent }
	)
	if gov != nil {
		nextCheckUS = gov.intervalUS
	}

	// Traverse the virtual entry edge.
	entryCount++
	if m.EdgeHook != nil {
		m.EdgeHook(cfg.Entry, 0)
	}
	if sched != nil {
		if mi, ok := sched.Assignment[cfg.Edge{From: cfg.Entry, To: 0}]; ok {
			setMode(mi)
		}
	}

	cur := 0
	predIdx := 0 // index of cfg.Entry in block 0's preds
	const maxSteps = 1 << 34
	steps := 0

	for {
		steps++
		if steps > maxSteps {
			return nil, errf("program %q exceeded %d block executions; infinite loop?", p.Name, maxSteps)
		}
		bi := &info[cur]
		blk := p.Blocks[cur]
		bs := &res.Blocks[cur]
		bs.Invocations++
		if m.rec != nil && !m.rec.addBlock(uint32(cur)) {
			return nil, errf("program %q exceeded the recording budget of %d events", p.Name, m.rec.budget)
		}
		blockStartTime := timeUS
		blockStartEnergy := energyUJ

		f := curMode.F
		for _, instr := range blk.Instrs {
			switch v := instr.(type) {
			case ir.Compute:
				if v.DependsOnLoad {
					if drained := memDrained(); drained > timeUS {
						// Gated stall waiting for memory: time passes, no
						// energy.
						stallUS += drained - timeUS
						timeUS = drained
					}
				}
				c := int64(v.Cycles)
				timeUS += float64(c) / f
				energyUJ += float64(c) * ePerComputeCycle()
				if v.DependsOnLoad {
					res.Params.NDependent += c
				} else {
					res.Params.NOverlap += c
				}
			case ir.Load:
				timeUS, energyUJ = m.memAccess(p, v.Stream, streamOff, rng, timeUS, energyUJ, memChans, curMode, res)
			case ir.Store:
				timeUS, energyUJ = m.memAccess(p, v.Stream, streamOff, rng, timeUS, energyUJ, memChans, curMode, res)
			}
		}

		// Resolve the terminator.
		var next int
		switch t := blk.Term.(type) {
		case ir.Exit:
			// Drain outstanding memory and close out the block.
			if drained := memDrained(); drained > timeUS {
				stallUS += drained - timeUS
				timeUS = drained
			}
			bs.TimeUS += timeUS - blockStartTime
			bs.EnergyUJ += energyUJ - blockStartEnergy
			res.TimeUS = timeUS
			res.LeakageEnergyUJ = m.cfg.StaticPowerMW * timeUS * 1e-3
			res.EnergyUJ = energyUJ + res.LeakageEnergyUJ
			res.EdgeCountsByID, res.PathCountsByID = toDense(info, gcount, dcount, entryCount, numEdges, numPaths)
			return res, nil
		case ir.Jump:
			next = t.To
		case ir.Branch:
			var taken bool
			switch c := t.Cond.(type) {
			case ir.LoopCond:
				trip := in.TripFor(c)
				loopCount[c.ID]++
				if loopCount[c.ID] < trip {
					taken = true
				} else {
					loopCount[c.ID] = 0
				}
			case ir.ProbCond:
				taken = rng.Float64() < in.ProbFor(c)
			}
			res.Branches++
			hit := m.pred.predictAndUpdate(cur, taken)
			if m.rec != nil {
				m.rec.addBranch(!hit)
			}
			if !hit {
				res.Mispredicts++
				pen := int64(m.cfg.MispredictPenaltyCycles)
				timeUS += float64(pen) / f
				energyUJ += float64(pen) * ePerComputeCycle()
				res.Params.NOverlap += pen
			}
			if taken {
				next = t.Taken
			} else {
				next = t.Fall
			}
		}

		bs.TimeUS += timeUS - blockStartTime
		bs.EnergyUJ += energyUJ - blockStartEnergy

		si := bi.succIdx[next]
		gcount[cur][si]++
		dcount[cur][predIdx][si]++
		if m.EdgeHook != nil {
			m.EdgeHook(cur, next)
		}
		setMode(bi.dvsMode[si])

		// Run-time governor tick: at interval boundaries, summarize the
		// window and let the policy pick the next mode.
		if gov != nil && timeUS >= nextCheckUS {
			stats := IntervalStats{
				Mode:         curModeIdx,
				WallUS:       timeUS - winStartUS,
				ActiveCycles: totalCycles() - winCycles,
				StallUS:      stallUS - winStallUS,
				Misses:       res.MemMisses - winMisses,
			}
			want := gov.g.Decide(stats)
			if want >= 0 && want < gov.modes.Len() {
				switchTo(gov.modes, gov.reg, want)
			}
			winStartUS = timeUS
			winStallUS = stallUS
			winCycles = totalCycles()
			winMisses = res.MemMisses
			nextCheckUS = timeUS + gov.intervalUS
		}

		predIdx = info[next].predIdx[cur]
		cur = next
	}
}

// memAccess performs one load/store: L1, then L2, then main memory. Cache
// hits occupy the pipeline for their latency (frequency-scaled, energy
// charged); main-memory misses occupy the earliest-free asynchronous memory
// channel without blocking the CPU.
func (m *Machine) memAccess(p *ir.Program, stream int, streamOff []int64, rng *rand.Rand,
	timeUS, energyUJ float64, memChans []float64, mode volt.Mode, res *Result) (float64, float64) {

	s := &p.Streams[stream]
	var off int64
	if s.Random {
		off = rng.Int63n(s.WorkingSet) &^ 3 // word-aligned
	} else {
		off = streamOff[stream]
		streamOff[stream] = (off + s.Stride) % s.WorkingSet
	}
	addr := s.Base + uint64(off)

	v2 := mode.V * mode.V
	// L1 lookup always happens.
	l1Cycles := int64(m.cfg.L1.LatencyCycles)
	timeUS += float64(l1Cycles) / mode.F
	energyUJ += m.cfg.CeffL1NF * v2 * 1e-3
	if m.l1.access(addr) {
		res.L1Hits++
		res.Params.NCache += l1Cycles
		if m.rec != nil {
			m.rec.addMem(memL1Hit)
		}
		return timeUS, energyUJ
	}
	// L2 lookup.
	l2Cycles := int64(m.cfg.L2.LatencyCycles)
	timeUS += float64(l2Cycles) / mode.F
	energyUJ += m.cfg.CeffL2NF * v2 * 1e-3 * float64(l2Cycles)
	if m.l2.access(addr) {
		res.L2Hits++
		res.Params.NCache += l1Cycles + l2Cycles
		if m.rec != nil {
			m.rec.addMem(memL2Hit)
		}
		return timeUS, energyUJ
	}
	// Main memory: asynchronous, non-blocking for the CPU (dependent
	// computation waits for the channels to drain). The miss takes the
	// earliest-free channel.
	res.MemMisses++
	res.Params.NCache += l1Cycles + l2Cycles
	if m.rec != nil {
		m.rec.addMem(memMiss)
	}
	ch := 0
	for k := 1; k < len(memChans); k++ {
		if memChans[k] < memChans[ch] {
			ch = k
		}
	}
	start := timeUS
	if memChans[ch] > start {
		start = memChans[ch]
	}
	memChans[ch] = start + m.cfg.MemLatencyUS
	res.Params.TInvariantUS += m.cfg.MemLatencyUS
	return timeUS, energyUJ
}

// buildBlockInfo precomputes predecessor/successor indexing, per-edge DVS
// mode assignments, and the dense edge/path numbering that mirrors
// cfg.FromProgram (entry edge first, then blocks in ID order with successors
// in terminator order; paths sorted by (Mid, In, Out)). It also returns the
// largest condition ID in use and the total edge and path counts.
func buildBlockInfo(p *ir.Program, sched *Schedule) (info []blockInfo, maxCond, numEdges, numPaths int) {
	n := len(p.Blocks)
	info = make([]blockInfo, n)
	for i := range info {
		info[i].predIdx = make(map[int]int)
		info[i].succIdx = make(map[int]int)
	}
	addPred := func(b, pred int) {
		bi := &info[b]
		if _, ok := bi.predIdx[pred]; ok {
			return
		}
		bi.predIdx[pred] = len(bi.preds)
		bi.preds = append(bi.preds, pred)
	}
	addPred(0, cfg.Entry)
	for _, b := range p.Blocks {
		bi := &info[b.ID]
		for _, t := range b.Term.Targets() {
			if _, ok := bi.succIdx[t]; ok {
				continue
			}
			bi.succIdx[t] = len(bi.succs)
			bi.succs = append(bi.succs, t)
			addPred(t, b.ID)
		}
		if br, ok := b.Term.(ir.Branch); ok {
			switch c := br.Cond.(type) {
			case ir.LoopCond:
				if c.ID > maxCond {
					maxCond = c.ID
				}
			case ir.ProbCond:
				if c.ID > maxCond {
					maxCond = c.ID
				}
			}
		}
	}
	numEdges = 1 // the virtual entry edge
	for i := range info {
		bi := &info[i]
		bi.dvsMode = make([]int, len(bi.succs))
		bi.succRank = make([]int, len(bi.succs))
		for s, to := range bi.succs {
			bi.dvsMode[s] = -1
			if sched != nil {
				if mi, ok := sched.Assignment[cfg.Edge{From: i, To: to}]; ok {
					bi.dvsMode[s] = mi
				}
			}
			for _, other := range bi.succs {
				if other < to {
					bi.succRank[s]++
				}
			}
		}
		bi.edgeBase = numEdges
		numEdges += len(bi.succs)
		bi.pathBase = numPaths
		numPaths += len(bi.preds) * len(bi.succs)
	}
	return info, maxCond, numEdges, numPaths
}

// toDense converts the traversal counters into the cfg-numbered dense edge
// and path count arrays.
func toDense(info []blockInfo, gcount [][]int64, dcount [][][]int64, entryCount int64, numEdges, numPaths int) ([]int64, []int64) {
	edges := make([]int64, numEdges)
	paths := make([]int64, numPaths)
	edges[0] = entryCount
	for i := range info {
		bi := &info[i]
		ns := len(bi.succs)
		for s := range bi.succs {
			edges[bi.edgeBase+s] = gcount[i][s]
		}
		for h := range bi.preds {
			for s := range bi.succs {
				paths[bi.pathBase+h*ns+bi.succRank[s]] = dcount[i][h][s]
			}
		}
	}
	return edges, paths
}

// CountMaps derives sparse cfg-keyed edge and path count maps from the
// result's dense counters. p must be the program the result was simulated
// from; the dense arrays must match its numbering. The simulator's hot paths
// deal only in the dense arrays — the maps exist for callers (and tests)
// that want to look counts up by edge or path value.
func (res *Result) CountMaps(p *ir.Program) (map[cfg.Edge]int64, map[cfg.Path]int64, error) {
	info, _, numEdges, numPaths := buildBlockInfo(p, nil)
	if len(res.EdgeCountsByID) != numEdges || len(res.PathCountsByID) != numPaths {
		return nil, nil, errf("result counts (%d edges, %d paths) do not match program %q (%d, %d)",
			len(res.EdgeCountsByID), len(res.PathCountsByID), p.Name, numEdges, numPaths)
	}
	edges, paths := countMaps(info, res.EdgeCountsByID, res.PathCountsByID)
	return edges, paths, nil
}

// countMaps derives sparse edge/path maps from the dense counts.
// Zero counts are omitted, except the entry edge, which is always present.
func countMaps(info []blockInfo, edgesByID, pathsByID []int64) (map[cfg.Edge]int64, map[cfg.Path]int64) {
	edges := make(map[cfg.Edge]int64)
	paths := make(map[cfg.Path]int64)
	edges[cfg.Edge{From: cfg.Entry, To: 0}] = edgesByID[0]
	for i := range info {
		bi := &info[i]
		ns := len(bi.succs)
		for s, to := range bi.succs {
			if c := edgesByID[bi.edgeBase+s]; c > 0 {
				edges[cfg.Edge{From: i, To: to}] = c
			}
		}
		for h, pred := range bi.preds {
			for s, to := range bi.succs {
				if c := pathsByID[bi.pathBase+h*ns+bi.succRank[s]]; c > 0 {
					paths[cfg.Path{In: pred, Mid: i, Out: to}] = c
				}
			}
		}
	}
	return edges, paths
}

// FormatParams renders Params in the units of the paper's Table 7.
func FormatParams(p Params) string {
	return fmt.Sprintf("Ncache=%.1fK cycles, Noverlap=%.1fK cycles, Ndependent=%.1fK cycles, tinvariant=%.1fµs",
		float64(p.NCache)/1e3, float64(p.NOverlap)/1e3, float64(p.NDependent)/1e3, p.TInvariantUS)
}
