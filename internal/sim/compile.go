package sim

import (
	"math"
	"math/bits"

	"ctdvs/internal/cfg"
	"ctdvs/internal/ir"
	"ctdvs/internal/volt"
)

// This file implements the compiled execution engine: CompileProgram lowers
// each basic block of an ir.Program to a static cost record once per
// (program, configuration), and runCompiled executes against those tables
// instead of re-walking blk.Instrs on every invocation. The lowering is the
// Wattch move — precomputed per-structure cost tables instead of re-deriving
// costs per event — combined with sim-fast-style specialization of the
// interpreter loop: a block visit becomes table lookups plus only the
// genuinely dynamic work (cache probes, predictor updates, memory-channel
// drain, RNG draws).
//
// Bit-for-bit fidelity with the reference interpreter (Config.ReferenceSim,
// see runReference) comes from performing exactly its floating-point
// operations in exactly its order: the compiled kernel only hoists
// expressions whose operands cannot change between evaluations — the
// per-mode time/energy increments, recomputed with the reference
// expression shapes whenever the mode changes — and replaces interface
// dispatch, map lookups and per-run allocations with table indexing. The
// same expression shapes are shared with Recording.ReplayAll, so
// Run ↔ Record ↔ ReplayAll all agree bit for bit (asserted by the
// randomized property tests in compile_test.go and replay_test.go).

// Branch condition kinds of a compiled block terminator.
const (
	condNone uint8 = iota
	condLoop
	condProb
)

// cop is one lowered instruction: a compute chunk (cycle count pre-converted
// to the float64 the interpreter scales by 1/f) or a memory access with its
// stream descriptor flattened in — stride class, footprint and base resolved
// at compile time so the hot loop touches no ir.Stream. The recorded-stream
// op kinds opCompute/opMem are reused so the compiled tables and the replay
// templates stay in one vocabulary.
type cop struct {
	kind     uint8
	dep      bool  // Compute.DependsOnLoad: drain memory channels first
	random   bool  // opMem: random-offset stream (one RNG draw per access)
	fastWrap bool  // opMem: 0 ≤ stride < footprint, wrap by subtract not %
	stream   int32 // opMem: offset-cursor index (buf.streamOff)
	// count run-length-encodes consecutive accesses to the same stream
	// (loads and stores lower identically): the kernel replays the record
	// count times with the cursor held in a register, which is the same
	// access sequence the reference interpreter produces one instruction at
	// a time. 1 for opCompute.
	count int32
	cyc   int64 // opCompute: cycles, for Params accounting
	// fcyc is float64(cyc) for opCompute, the value scaled by 1/f.
	fcyc   float64
	stride int64  // opMem: ir.Stream.Stride
	ws     int64  // opMem: ir.Stream.WorkingSet
	base   uint64 // opMem: ir.Stream.Base
}

// csucc is one outgoing edge of a compiled block, resolved to indices the
// hot loop consumes without map lookups.
type csucc struct {
	block   int32 // successor block ID
	rank    int32 // ascending-ID rank among the block's successors (path order)
	predIdx int32 // index of the source block in the successor's preds
}

// cblock is the static cost record of one basic block: its op slice bounds,
// terminator metadata with successor indices pre-resolved, and the dense
// edge/path numbering bases of buildBlockInfo.
type cblock struct {
	opLo, opHi int32
	term       uint8 // termJump / termBranch / termExit

	// termJump: jump is the successor index of the target. termBranch:
	// taken/fall are the successor indices of the two arms, cond/condID/
	// trip/prob the branch condition (defaults; per-input overrides are
	// resolved once per run, see effTrip/effProb in runCompiled).
	jump        int32
	taken, fall int32
	cond        uint8
	condID      int32
	trip        int32
	prob        float64

	edgeBase, pathBase int32
	nSuccs             int32
	succ               []csucc
}

// CompiledProgram is the static lowering of one program under one machine
// configuration: per-block cost records, the flattened op table, a copy of
// the stream descriptors, and the dense edge/path numbering shared with
// cfg.FromProgram. It is immutable after CompileProgram returns and safe to
// share between machines of the same configuration.
//
// The compiled tables assume the program is not mutated afterwards; Machines
// cache compilations by program identity (see Machine.compiledFor), so a
// mutated program must be treated as a new one.
type CompiledProgram struct {
	prog *ir.Program
	cfg  Config

	info    []blockInfo // dense numbering + pred/succ maps for result assembly
	blocks  []cblock
	ops     []cop
	streams []ir.Stream

	maxCond  int
	numEdges int
	numPaths int
}

// Program returns the program this compilation lowers.
func (cp *CompiledProgram) Program() *ir.Program { return cp.prog }

// Config returns the machine configuration the program was compiled for.
func (cp *CompiledProgram) Config() Config { return cp.cfg }

// CompileProgram validates the program and configuration and lowers every
// basic block to its static cost record. Run once per (program, config);
// the result serves any number of runs, at fixed modes or under DVS
// schedules (per-run schedule state is an overlay, not part of the tables).
func CompileProgram(p *ir.Program, c Config) (*CompiledProgram, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	info, maxCond, numEdges, numPaths := buildBlockInfo(p, nil)
	cp := &CompiledProgram{
		prog:     p,
		cfg:      c,
		info:     info,
		blocks:   make([]cblock, len(p.Blocks)),
		streams:  append([]ir.Stream(nil), p.Streams...),
		maxCond:  maxCond,
		numEdges: numEdges,
		numPaths: numPaths,
	}
	for i, b := range p.Blocks {
		bi := &info[i]
		cb := &cp.blocks[i]
		cb.opLo = int32(len(cp.ops))
		memOp := func(stream int) {
			// Run-length encode: a run of accesses to one stream (the common
			// shape — unrolled copy/filter loops) becomes a single record.
			if n := len(cp.ops); n > int(cb.opLo) {
				if last := &cp.ops[n-1]; last.kind == opMem && last.stream == int32(stream) {
					last.count++
					return
				}
			}
			s := &p.Streams[stream]
			cp.ops = append(cp.ops, cop{
				kind:   opMem,
				stream: int32(stream),
				count:  1,
				random: s.Random,
				// The wrap (off+stride) % ws is a single conditional subtract
				// when the cursor stays in [0, ws) and the stride cannot skip
				// past a full lap — same integer, no division.
				fastWrap: !s.Random && s.Stride >= 0 && s.Stride < s.WorkingSet,
				stride:   s.Stride,
				ws:       s.WorkingSet,
				base:     s.Base,
			})
		}
		for _, instr := range b.Instrs {
			switch v := instr.(type) {
			case ir.Compute:
				cp.ops = append(cp.ops, cop{kind: opCompute, dep: v.DependsOnLoad, count: 1,
					cyc: int64(v.Cycles), fcyc: float64(int64(v.Cycles))})
			case ir.Load:
				memOp(v.Stream)
			case ir.Store:
				memOp(v.Stream)
			}
		}
		cb.opHi = int32(len(cp.ops))
		cb.edgeBase = int32(bi.edgeBase)
		cb.pathBase = int32(bi.pathBase)
		cb.nSuccs = int32(len(bi.succs))
		cb.succ = make([]csucc, len(bi.succs))
		for s, to := range bi.succs {
			cb.succ[s] = csucc{
				block:   int32(to),
				rank:    int32(bi.succRank[s]),
				predIdx: int32(info[to].predIdx[i]),
			}
		}
		switch t := b.Term.(type) {
		case ir.Exit:
			cb.term = termExit
		case ir.Jump:
			cb.term = termJump
			cb.jump = int32(bi.succIdx[t.To])
		case ir.Branch:
			cb.term = termBranch
			cb.taken = int32(bi.succIdx[t.Taken])
			cb.fall = int32(bi.succIdx[t.Fall])
			switch cnd := t.Cond.(type) {
			case ir.LoopCond:
				cb.cond = condLoop
				cb.condID = int32(cnd.ID)
				cb.trip = int32(cnd.Trip)
			case ir.ProbCond:
				cb.cond = condProb
				cb.condID = int32(cnd.ID)
				cb.prob = cnd.P
			}
		}
	}
	return cp, nil
}

// ckCache is the compiled kernel's representation of the set-associative LRU
// cache: the same structure as (*cache) — identical set indexing, MRU-first
// way order, move-to-front on hit, evict-last-way on miss — but each way
// stores line+1 (zero meaning empty) instead of a (tag, valid) pair. A real
// line's key is never zero (addresses are stream base + offset, far below the
// top of the address space), so one uint64 compare is both the tag match and
// the validity check, and the common way-0 probe inlines at the access site
// in the hot loop. Valid ways form a prefix exactly as in (*cache) — fills
// and evictions both insert at way 0 — so the scan needs no validity state.
// The hit/miss sequence for any address sequence is bit-identical to
// (*cache) by construction.
type ckCache struct {
	lineShift uint
	setMask   uint64
	assoc     int
	keys      []uint64 // sets × assoc, MRU first; line+1, 0 = empty
}

// init sizes the cache for the configuration and invalidates every line,
// reusing the key array across runs.
func (c *ckCache) init(cc CacheConfig) {
	sets := cc.Sets()
	n := sets * cc.Assoc
	c.lineShift = uint(bits.TrailingZeros(uint(cc.LineBytes)))
	c.setMask = uint64(sets - 1)
	c.assoc = cc.Assoc
	if cap(c.keys) < n {
		c.keys = make([]uint64, n)
		return
	}
	c.keys = c.keys[:n]
	clear(c.keys)
}

// accessSlow is the out-of-line part of a cache probe: the caller already
// compared way 0. Scan the remaining ways, move the hit to the MRU position,
// or evict the LRU way and insert on miss. ways is the set's key slice.
func (c *ckCache) accessSlow(ways []uint64, key uint64) bool {
	for i := 1; i < c.assoc; i++ {
		if ways[i] == key {
			copy(ways[1:i+1], ways[:i])
			ways[0] = key
			return true
		}
	}
	copy(ways[1:c.assoc], ways[:c.assoc-1])
	ways[0] = key
	return false
}

// runBuffers are the pooled per-run dense counters and scratch state the
// compiled kernel executes against. They live on the Machine so steady-state
// runs allocate only the Result they return; every run resizes and clears
// them on entry, and Machine.Reset clears them again for pool hygiene.
type runBuffers struct {
	gcount    []int64 // dense edge traversal counts, cfg numbering (0 = entry)
	pcount    []int64 // dense local-path counts, cfg numbering
	streamOff []int64
	loopCount []int64
	memChans  []float64
	effTrip   []int64   // per block: input-resolved loop trip count
	effProb   []float64 // per block: input-resolved branch probability
	dvsEdge   []int32   // per edge: schedule mode index, -1 keeps the mode
	l1, l2    ckCache   // the kernel's caches, re-initialized every run
}

// clear zeroes the buffer contents, keeping capacity.
func (b *runBuffers) clear() {
	clear(b.gcount)
	clear(b.pcount)
	clear(b.streamOff)
	clear(b.loopCount)
	clear(b.memChans)
	clear(b.effTrip)
	clear(b.effProb)
	clear(b.dvsEdge)
	clear(b.l1.keys)
	clear(b.l2.keys)
}

// grown returns s resized to n with every element zeroed, reusing capacity.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// compiledFor returns the machine's cached compilation of p, lowering it on
// first use. The cache is keyed by program identity and survives Reset, so a
// pooled machine compiles each workload once across all its borrowers.
func (m *Machine) compiledFor(p *ir.Program) (*CompiledProgram, error) {
	if cp, ok := m.compiled[p]; ok {
		return cp, nil
	}
	cp, err := CompileProgram(p, m.cfg)
	if err != nil {
		return nil, err
	}
	if m.compiled == nil {
		m.compiled = make(map[*ir.Program]*CompiledProgram)
	}
	m.compiled[p] = cp
	return cp, nil
}

// modeConstsFor computes the per-event time/energy constants of one mode,
// with exactly the reference interpreter's expression shapes (identical
// operands ⇒ identical bits). The compiled kernel calls it once per run and
// once per mode transition instead of re-deriving the values per event; it
// is a plain function (not a closure) so the constants live in the kernel's
// registers rather than escaping to the heap.
func (m *Machine) modeConstsFor(mode volt.Mode, l1Cycles, l2Cycles, pen int64) (f, eCyc, dtL1, eL1, dtL2, eL2, dtPen, ePen float64) {
	f = mode.F
	eCyc = m.cfg.CeffComputeNF * mode.V * mode.V * 1e-3
	v2 := mode.V * mode.V
	dtL1 = float64(l1Cycles) / mode.F
	eL1 = m.cfg.CeffL1NF * v2 * 1e-3
	dtL2 = float64(l2Cycles) / mode.F
	eL2 = m.cfg.CeffL2NF * v2 * 1e-3 * float64(l2Cycles)
	dtPen = float64(pen) / f
	ePen = float64(pen) * eCyc
	return
}

// runCompiled is the specialized interpreter hot loop. It mirrors
// runReference exactly — same event order, same floating-point expression
// shapes, same RNG draw sequence — executing against the compiled tables.
func (m *Machine) runCompiled(cp *CompiledProgram, in ir.Input, sched *Schedule, gov *govRun, initial volt.Mode) (*Result, error) {
	m.pred.reset()

	nb := len(cp.blocks)
	buf := &m.buf
	buf.gcount = grown(buf.gcount, cp.numEdges)
	buf.pcount = grown(buf.pcount, cp.numPaths)
	buf.streamOff = grown(buf.streamOff, len(cp.streams))
	buf.loopCount = grown(buf.loopCount, cp.maxCond+1)
	buf.memChans = grown(buf.memChans, m.cfg.MemChannels)
	buf.effTrip = grown(buf.effTrip, nb)
	buf.effProb = grown(buf.effProb, nb)
	buf.l1.init(m.cfg.L1)
	buf.l2.init(m.cfg.L2)
	gcount, pcount := buf.gcount, buf.pcount
	streamOff, loopCount := buf.streamOff, buf.loopCount
	memChans := buf.memChans
	l1, l2 := &buf.l1, &buf.l2
	l1Shift, l1Mask, l1Assoc, l1Keys := l1.lineShift, l1.setMask, l1.assoc, l1.keys
	l2Shift, l2Mask, l2Assoc, l2Keys := l2.lineShift, l2.setMask, l2.assoc, l2.keys
	rec, hook, pred := m.rec, m.EdgeHook, m.pred

	// Resolve per-input branch behaviour once: the reference loop calls
	// in.TripFor/ProbFor (map lookups) on every evaluation; the values
	// cannot change within a run.
	for i := range cp.blocks {
		cb := &cp.blocks[i]
		switch cb.cond {
		case condLoop:
			buf.effTrip[i] = int64(in.TripFor(ir.LoopCond{ID: int(cb.condID), Trip: int(cb.trip)}))
		case condProb:
			buf.effProb[i] = in.ProbFor(ir.ProbCond{ID: int(cb.condID), P: cb.prob})
		}
	}

	// Per-run DVS overlay: schedule assignments resolved to dense edge IDs.
	// Edges absent from the CFG are ignored, like buildBlockInfo does.
	var dvsEdge []int32
	if sched != nil {
		buf.dvsEdge = grown(buf.dvsEdge, cp.numEdges)
		dvsEdge = buf.dvsEdge
		for i := range dvsEdge {
			dvsEdge[i] = -1
		}
		for e, mi := range sched.Assignment {
			if e.From == cfg.Entry && e.To == 0 {
				dvsEdge[0] = int32(mi)
				continue
			}
			if e.From < 0 || e.From >= nb {
				continue
			}
			bi := &cp.info[e.From]
			if si, ok := bi.succIdx[e.To]; ok {
				dvsEdge[bi.edgeBase+si] = int32(mi)
			}
		}
	}

	res := &Result{
		Program: cp.prog.Name,
		Input:   in.Name,
		Mode:    initial,
		Blocks:  make([]BlockStat, nb),
	}
	rng := m.rngFor(in.Seed)

	var (
		timeUS     float64
		energyUJ   float64
		stallUS    float64
		curMode    = initial
		curModeIdx = -1
	)
	if sched != nil {
		curModeIdx = sched.Initial
	}
	if gov != nil {
		curModeIdx = gov.modes.Index(initial.F)
	}

	// Per-mode constants, hoisted out of the event loop and recomputed (with
	// the reference expression shapes, see modeConstsFor) on every mode
	// change. The transition arithmetic is written out at each switch site —
	// a shared closure would capture the constants and the accumulators,
	// forcing them onto the heap for the whole hot loop.
	l1Cycles := int64(m.cfg.L1.LatencyCycles)
	l2Cycles := int64(m.cfg.L2.LatencyCycles)
	pen := int64(m.cfg.MispredictPenaltyCycles)
	f, eCyc, dtL1, eL1, dtL2, eL2, dtPen, ePen := m.modeConstsFor(curMode, l1Cycles, l2Cycles, pen)

	// Result counters, accumulated in locals and stored to res once at exit.
	var (
		l1Hits, l2Hits, memMisses int64
		nCache, nOverlap, nDep    int64
		tInvariantUS              float64
		branches, mispredicts     int64
	)

	// Governor window state. nextCheckUS is +Inf when no governor runs, so
	// the per-block tick check is a single float compare.
	var (
		nextCheckUS = math.Inf(1)
		winStartUS  float64
		winStallUS  float64
		winCycles   int64
		winMisses   int64
	)
	if gov != nil {
		nextCheckUS = gov.intervalUS
	}

	// Traverse the virtual entry edge.
	gcount[0]++
	if hook != nil {
		hook(cfg.Entry, 0)
	}
	if sched != nil && dvsEdge[0] >= 0 && int(dvsEdge[0]) != curModeIdx {
		target := int(dvsEdge[0])
		next := sched.Modes.Mode(target)
		res.Transitions++
		st := sched.Regulator.TransitionTime(curMode.V, next.V)
		se := sched.Regulator.TransitionEnergy(curMode.V, next.V)
		timeUS += st
		energyUJ += se
		res.TransitionTimeUS += st
		res.TransitionEnergyUJ += se
		curMode = next
		curModeIdx = target
		f, eCyc, dtL1, eL1, dtL2, eL2, dtPen, ePen = m.modeConstsFor(curMode, l1Cycles, l2Cycles, pen)
	}

	cur := int32(0)
	predIdx := int32(0) // index of cfg.Entry in block 0's preds
	const maxSteps = 1 << 34
	steps := 0

	for {
		steps++
		if steps > maxSteps {
			return nil, errf("program %q exceeded %d block executions; infinite loop?", cp.prog.Name, maxSteps)
		}
		cb := &cp.blocks[cur]
		bs := &res.Blocks[cur]
		bs.Invocations++
		if rec != nil && !rec.addBlock(uint32(cur)) {
			return nil, errf("program %q exceeded the recording budget of %d events", cp.prog.Name, rec.budget)
		}
		blockStartTime := timeUS
		blockStartEnergy := energyUJ

		for oi := cb.opLo; oi < cb.opHi; oi++ {
			op := &cp.ops[oi]
			if op.kind == opCompute {
				if op.dep {
					drained := 0.0
					for _, t := range memChans {
						if t > drained {
							drained = t
						}
					}
					if drained > timeUS {
						// Gated stall waiting for memory: time passes, no
						// energy.
						stallUS += drained - timeUS
						timeUS = drained
					}
				}
				timeUS += op.fcyc / f
				energyUJ += op.fcyc * eCyc
				if op.dep {
					nDep += op.cyc
				} else {
					nOverlap += op.cyc
				}
				continue
			}

			// Memory accesses: op.count consecutive accesses to one stream,
			// the cursor held in a register across the run. Each access
			// probes L1, then L2, then books an asynchronous main-memory
			// channel (inlined memAccess with the per-mode constants hoisted
			// and the stream descriptor flattened into the op record).
			isRandom, fastWrap := op.random, op.fastWrap
			stride, ws, base := op.stride, op.ws, op.base
			off := streamOff[op.stream]
			for k := op.count; k > 0; k-- {
				if isRandom {
					off = rng.Int63n(ws) &^ 3 // word-aligned
				}
				addr := base + uint64(off)
				if !isRandom {
					if fastWrap {
						off += stride
						if off >= ws {
							off -= ws
						}
					} else {
						off = (off + stride) % ws
					}
				}

				timeUS += dtL1
				energyUJ += eL1
				line := addr >> l1Shift
				key := line + 1
				wb := int(line&l1Mask) * l1Assoc
				hit := l1Keys[wb] == key
				if !hit {
					hit = l1.accessSlow(l1Keys[wb:wb+l1Assoc], key)
				}
				if hit {
					l1Hits++
					nCache += l1Cycles
					if rec != nil {
						rec.addMem(memL1Hit)
					}
					continue
				}
				timeUS += dtL2
				energyUJ += eL2
				line = addr >> l2Shift
				key = line + 1
				wb = int(line&l2Mask) * l2Assoc
				hit = l2Keys[wb] == key
				if !hit {
					hit = l2.accessSlow(l2Keys[wb:wb+l2Assoc], key)
				}
				if hit {
					l2Hits++
					nCache += l1Cycles + l2Cycles
					if rec != nil {
						rec.addMem(memL2Hit)
					}
					continue
				}
				memMisses++
				nCache += l1Cycles + l2Cycles
				if rec != nil {
					rec.addMem(memMiss)
				}
				ch := 0
				for c := 1; c < len(memChans); c++ {
					if memChans[c] < memChans[ch] {
						ch = c
					}
				}
				start := timeUS
				if memChans[ch] > start {
					start = memChans[ch]
				}
				memChans[ch] = start + m.cfg.MemLatencyUS
				tInvariantUS += m.cfg.MemLatencyUS
			}
			if !isRandom {
				streamOff[op.stream] = off
			}
		}

		// Resolve the terminator.
		var si int32
		switch cb.term {
		case termExit:
			// Drain outstanding memory and close out the block.
			drained := 0.0
			for _, t := range memChans {
				if t > drained {
					drained = t
				}
			}
			if drained > timeUS {
				stallUS += drained - timeUS
				timeUS = drained
			}
			bs.TimeUS += timeUS - blockStartTime
			bs.EnergyUJ += energyUJ - blockStartEnergy
			res.TimeUS = timeUS
			res.LeakageEnergyUJ = m.cfg.StaticPowerMW * timeUS * 1e-3
			res.EnergyUJ = energyUJ + res.LeakageEnergyUJ
			res.L1Hits, res.L2Hits, res.MemMisses = l1Hits, l2Hits, memMisses
			res.Branches, res.Mispredicts = branches, mispredicts
			res.Params.NCache = nCache
			res.Params.NOverlap = nOverlap
			res.Params.NDependent = nDep
			res.Params.TInvariantUS = tInvariantUS
			res.EdgeCountsByID = copySlice(gcount)
			res.PathCountsByID = copySlice(pcount)
			return res, nil
		case termJump:
			si = cb.jump
		case termBranch:
			var taken bool
			if cb.cond == condLoop {
				id := cb.condID
				loopCount[id]++
				if loopCount[id] < buf.effTrip[cur] {
					taken = true
				} else {
					loopCount[id] = 0
				}
			} else {
				taken = rng.Float64() < buf.effProb[cur]
			}
			branches++
			hit := pred.predictAndUpdate(int(cur), taken)
			if rec != nil {
				rec.addBranch(!hit)
			}
			if !hit {
				mispredicts++
				timeUS += dtPen
				energyUJ += ePen
				nOverlap += pen
			}
			if taken {
				si = cb.taken
			} else {
				si = cb.fall
			}
		}

		bs.TimeUS += timeUS - blockStartTime
		bs.EnergyUJ += energyUJ - blockStartEnergy

		sc := &cb.succ[si]
		gcount[int(cb.edgeBase+si)]++
		pcount[int(cb.pathBase+predIdx*cb.nSuccs+sc.rank)]++
		if hook != nil {
			hook(int(cur), int(sc.block))
		}
		if sched != nil {
			if mi := int(dvsEdge[cb.edgeBase+si]); mi >= 0 && mi != curModeIdx {
				next := sched.Modes.Mode(mi)
				res.Transitions++
				st := sched.Regulator.TransitionTime(curMode.V, next.V)
				se := sched.Regulator.TransitionEnergy(curMode.V, next.V)
				timeUS += st
				energyUJ += se
				res.TransitionTimeUS += st
				res.TransitionEnergyUJ += se
				curMode = next
				curModeIdx = mi
				f, eCyc, dtL1, eL1, dtL2, eL2, dtPen, ePen = m.modeConstsFor(curMode, l1Cycles, l2Cycles, pen)
			}
		}

		// Run-time governor tick: at interval boundaries, summarize the
		// window and let the policy pick the next mode.
		if timeUS >= nextCheckUS {
			stats := IntervalStats{
				Mode:         curModeIdx,
				WallUS:       timeUS - winStartUS,
				ActiveCycles: nCache + nOverlap + nDep - winCycles,
				StallUS:      stallUS - winStallUS,
				Misses:       memMisses - winMisses,
			}
			if want := gov.g.Decide(stats); want >= 0 && want < gov.modes.Len() && want != curModeIdx {
				next := gov.modes.Mode(want)
				res.Transitions++
				st := gov.reg.TransitionTime(curMode.V, next.V)
				se := gov.reg.TransitionEnergy(curMode.V, next.V)
				timeUS += st
				energyUJ += se
				res.TransitionTimeUS += st
				res.TransitionEnergyUJ += se
				curMode = next
				curModeIdx = want
				f, eCyc, dtL1, eL1, dtL2, eL2, dtPen, ePen = m.modeConstsFor(curMode, l1Cycles, l2Cycles, pen)
			}
			winStartUS = timeUS
			winStallUS = stallUS
			winCycles = nCache + nOverlap + nDep
			winMisses = memMisses
			nextCheckUS = timeUS + gov.intervalUS
		}

		predIdx = sc.predIdx
		cur = sc.block
	}
}
