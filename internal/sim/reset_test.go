package sim

import (
	"reflect"
	"testing"

	"ctdvs/internal/ir"
)

// TestResetClearsHookAndState verifies the pool-return contract: after Reset,
// a machine behaves exactly like a freshly constructed one and carries no
// edge hook from its previous borrower.
func TestResetClearsHookAndState(t *testing.T) {
	p := computeOnly(50, 100)
	in := ir.Input{Name: "default", Seed: 1}

	mach := MustNew(DefaultConfig())
	hooked := 0
	mach.EdgeHook = func(from, to int) { hooked++ }
	if _, err := mach.Run(p, in, mode800()); err != nil {
		t.Fatal(err)
	}
	if hooked == 0 {
		t.Fatal("edge hook never fired")
	}

	mach.Reset()
	if mach.EdgeHook != nil {
		t.Error("Reset left the edge hook installed")
	}

	fresh := MustNew(DefaultConfig())
	got, err := mach.Run(p, in, mode800())
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run(p, in, mode800())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-Reset run differs from fresh machine:\ngot  %+v\nwant %+v", got, want)
	}
}
