package sim

import (
	"math"
	"testing"

	"ctdvs/internal/cfg"
	"ctdvs/internal/ir"
	"ctdvs/internal/volt"
)

func mode800() volt.Mode { return volt.Mode{V: 1.65, F: 800} }
func mode200() volt.Mode { return volt.Mode{V: 0.70, F: 200} }

// computeOnly builds a pure-compute program: loop of trips iterations, each
// doing cycles of independent compute.
func computeOnly(trips, cycles int) *ir.Program {
	b := ir.NewBuilder("compute-only")
	body := b.Block("body")
	exit := b.Block("exit")
	body.Compute(cycles)
	b.LoopBranch(body, body, exit, trips)
	exit.Compute(1)
	exit.Exit()
	return b.MustFinish()
}

// memLoop builds a loop that loads from a stream and then depends on it.
func memLoop(trips int, ws int64, random bool) *ir.Program {
	b := ir.NewBuilder("mem-loop")
	var s int
	if random {
		s = b.RandomStream(ws)
	} else {
		s = b.SequentialStream(ws)
	}
	body := b.Block("body")
	exit := b.Block("exit")
	body.Load(s).Compute(20).DependentCompute(10)
	b.LoopBranch(body, body, exit, trips)
	exit.Compute(1)
	exit.Exit()
	return b.MustFinish()
}

func run(t *testing.T, p *ir.Program, m volt.Mode) *Result {
	t.Helper()
	mach := MustNew(DefaultConfig())
	res, err := mach.Run(p, ir.Input{Name: "default", Seed: 1}, m)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDeterminism(t *testing.T) {
	t.Parallel()
	p := memLoop(500, 1<<22, true)
	a := run(t, p, mode800())
	b := run(t, p, mode800())
	if a.TimeUS != b.TimeUS || a.EnergyUJ != b.EnergyUJ || a.MemMisses != b.MemMisses {
		t.Errorf("nondeterministic: %v/%v vs %v/%v", a.TimeUS, a.EnergyUJ, b.TimeUS, b.EnergyUJ)
	}
}

func TestPureComputeScalesWithFrequency(t *testing.T) {
	t.Parallel()
	p := computeOnly(100, 50)
	hi := run(t, p, mode800())
	lo := run(t, p, mode200())
	// Pure compute: time ratio must be exactly f ratio (same cycle count).
	ratio := lo.TimeUS / hi.TimeUS
	if math.Abs(ratio-4) > 1e-9 {
		t.Errorf("time ratio = %v, want 4", ratio)
	}
	// Energy ratio must equal the voltage-squared ratio.
	eratio := hi.EnergyUJ / lo.EnergyUJ
	want := (1.65 * 1.65) / (0.70 * 0.70)
	if math.Abs(eratio-want) > 1e-9 {
		t.Errorf("energy ratio = %v, want %v", eratio, want)
	}
}

func TestMemoryTimeInvariantAcrossModes(t *testing.T) {
	t.Parallel()
	p := memLoop(2000, 1<<24, true) // large random working set → misses
	hi := run(t, p, mode800())
	lo := run(t, p, mode200())
	if hi.MemMisses == 0 {
		t.Fatal("expected misses")
	}
	if hi.MemMisses != lo.MemMisses {
		t.Errorf("miss counts differ across modes: %d vs %d", hi.MemMisses, lo.MemMisses)
	}
	if math.Abs(hi.Params.TInvariantUS-lo.Params.TInvariantUS) > 1e-9 {
		t.Errorf("tinvariant differs: %v vs %v", hi.Params.TInvariantUS, lo.Params.TInvariantUS)
	}
	// At the lower frequency, cycles cost more wall time, so the run is
	// slower — but by less than 4× because the memory component is fixed.
	ratio := lo.TimeUS / hi.TimeUS
	if ratio >= 4 || ratio <= 1 {
		t.Errorf("memory-bound time ratio = %v, want within (1, 4)", ratio)
	}
}

func TestSmallWorkingSetHitsInL1(t *testing.T) {
	t.Parallel()
	p := memLoop(5000, 4<<10, false) // 4 KB sequential fits in L1
	res := run(t, p, mode800())
	if res.MemMisses > 200 { // only cold misses (128 lines) plus noise
		t.Errorf("too many misses for an L1-resident working set: %d", res.MemMisses)
	}
	if res.L1Hits == 0 {
		t.Error("expected L1 hits")
	}
}

func TestHugeRandomWorkingSetMisses(t *testing.T) {
	t.Parallel()
	p := memLoop(3000, 64<<20, true)
	res := run(t, p, mode800())
	if float64(res.MemMisses) < 0.8*float64(res.L1Hits+res.L2Hits+res.MemMisses) {
		t.Errorf("expected mostly misses: misses=%d hits=%d/%d",
			res.MemMisses, res.L1Hits, res.L2Hits)
	}
	if res.Params.TInvariantUS == 0 {
		t.Error("tinvariant not accumulated")
	}
}

func TestOverlapHidesMissLatency(t *testing.T) {
	t.Parallel()
	// One miss plus lots of independent compute: the compute should hide
	// much of the miss latency.
	b := ir.NewBuilder("overlap")
	s := b.RandomStream(64 << 20)
	blk := b.Block("b")
	exit := b.Block("exit")
	blk.Load(s).Compute(200).DependentCompute(1)
	b.LoopBranch(blk, blk, exit, 1000)
	exit.Compute(1)
	exit.Exit()
	p := b.MustFinish()

	withOverlap := run(t, p, mode800())

	// Same work but the compute is dependent → no overlap.
	b2 := ir.NewBuilder("no-overlap")
	s2 := b2.RandomStream(64 << 20)
	blk2 := b2.Block("b")
	exit2 := b2.Block("exit")
	blk2.Load(s2).DependentCompute(200).DependentCompute(1)
	b2.LoopBranch(blk2, blk2, exit2, 1000)
	exit2.Compute(1)
	exit2.Exit()
	p2 := b2.MustFinish()

	withoutOverlap := run(t, p2, mode800())
	if withOverlap.TimeUS >= withoutOverlap.TimeUS {
		t.Errorf("overlap run (%v µs) not faster than dependent run (%v µs)",
			withOverlap.TimeUS, withoutOverlap.TimeUS)
	}
}

func TestEdgeAndPathCounts(t *testing.T) {
	t.Parallel()
	const trips = 7
	p := memLoop(trips, 1<<12, false)
	res := run(t, p, mode800())

	edgeCounts, pathCounts, err := res.CountMaps(p)
	if err != nil {
		t.Fatal(err)
	}
	back := cfg.Edge{From: 0, To: 0}
	exit := cfg.Edge{From: 0, To: 1}
	entry := cfg.Edge{From: cfg.Entry, To: 0}
	if edgeCounts[entry] != 1 {
		t.Errorf("entry edge count = %d", edgeCounts[entry])
	}
	if edgeCounts[back] != trips-1 {
		t.Errorf("back edge count = %d, want %d", edgeCounts[back], trips-1)
	}
	if edgeCounts[exit] != 1 {
		t.Errorf("exit edge count = %d, want 1", edgeCounts[exit])
	}

	// D_hij consistency: sum over h of D(h,i,j) = G(i,j) for non-terminal i.
	sumIn := pathCounts[cfg.Path{In: cfg.Entry, Mid: 0, Out: 0}] +
		pathCounts[cfg.Path{In: 0, Mid: 0, Out: 0}]
	if sumIn != edgeCounts[back] {
		t.Errorf("sum of paths into back edge = %d, want %d", sumIn, edgeCounts[back])
	}
	// Block invocations: body runs trips times, exit once.
	if res.Blocks[0].Invocations != trips {
		t.Errorf("body invocations = %d, want %d", res.Blocks[0].Invocations, trips)
	}
	if res.Blocks[1].Invocations != 1 {
		t.Errorf("exit invocations = %d", res.Blocks[1].Invocations)
	}
}

func TestBlockTimeSumsToTotal(t *testing.T) {
	t.Parallel()
	p := memLoop(100, 1<<16, false)
	res := run(t, p, mode800())
	sumT, sumE := 0.0, 0.0
	for _, b := range res.Blocks {
		sumT += b.TimeUS
		sumE += b.EnergyUJ
	}
	if math.Abs(sumT-res.TimeUS) > 1e-6*res.TimeUS {
		t.Errorf("block time sum %v != total %v", sumT, res.TimeUS)
	}
	if math.Abs(sumE-res.EnergyUJ) > 1e-6*res.EnergyUJ {
		t.Errorf("block energy sum %v != total %v", sumE, res.EnergyUJ)
	}
}

func TestProbBranchRespondsToInput(t *testing.T) {
	t.Parallel()
	b := ir.NewBuilder("branchy")
	x := b.Block("x")
	hot := b.Block("hot")
	cold := b.Block("cold")
	join := b.Block("join")
	exit := b.Block("exit")
	x.Compute(1)
	pid := b.ProbBranch(x, hot, cold, 0.9)
	hot.Compute(100)
	hot.Jump(join)
	cold.Compute(1)
	cold.Jump(join)
	join.Compute(1)
	b.LoopBranch(join, x, exit, 1000)
	exit.Compute(1)
	exit.Exit()
	p := b.MustFinish()

	mach := MustNew(DefaultConfig())
	biased, err := mach.Run(p, ir.Input{Name: "hot", Seed: 5}, mode800())
	if err != nil {
		t.Fatal(err)
	}
	over, err := mach.Run(p, ir.Input{Name: "cold", Seed: 5, Probs: map[int]float64{pid: 0.0}}, mode800())
	if err != nil {
		t.Fatal(err)
	}
	if biased.Blocks[1].Invocations < 800 {
		t.Errorf("hot block ran %d times, want ≈900", biased.Blocks[1].Invocations)
	}
	if over.Blocks[1].Invocations != 0 {
		t.Errorf("override failed: hot block ran %d times", over.Blocks[1].Invocations)
	}
	if over.TimeUS >= biased.TimeUS {
		t.Error("cold input should run faster")
	}
}

func TestTripOverride(t *testing.T) {
	t.Parallel()
	p := computeOnly(10, 100)
	mach := MustNew(DefaultConfig())
	long, err := mach.Run(p, ir.Input{Name: "long", Seed: 1, Trips: map[int]int{0: 50}}, mode800())
	if err != nil {
		t.Fatal(err)
	}
	short := run(t, p, mode800())
	if long.Blocks[0].Invocations != 50 || short.Blocks[0].Invocations != 10 {
		t.Errorf("trip override: %d vs %d", long.Blocks[0].Invocations, short.Blocks[0].Invocations)
	}
}

func TestBranchPredictorAccounting(t *testing.T) {
	t.Parallel()
	// A strongly biased loop branch should predict well; an alternating one
	// should not.
	p := computeOnly(10000, 2)
	res := run(t, p, mode800())
	if res.Branches == 0 {
		t.Fatal("no branches recorded")
	}
	mis := float64(res.Mispredicts) / float64(res.Branches)
	if mis > 0.05 {
		t.Errorf("loop branch mispredict rate = %v, want < 5%%", mis)
	}

	// Alternating: trip 2 means taken, not-taken, taken, ... per pair.
	p2 := computeOnly(2, 2)
	b := ir.NewBuilder("alt")
	body := b.Block("body")
	exit := b.Block("exit")
	body.Compute(2)
	b.LoopBranch(body, body, exit, 2)
	exit.Compute(1)
	exit.Exit()
	_ = p2
	res2 := run(t, b.MustFinish(), mode800())
	if res2.Branches != 2 {
		t.Errorf("branches = %d", res2.Branches)
	}
}

func TestDVSSameModeEverywhereMatchesFixedRun(t *testing.T) {
	t.Parallel()
	p := memLoop(300, 1<<18, false)
	mach := MustNew(DefaultConfig())
	ms := volt.XScale3()
	fixed, err := mach.Run(p, ir.Input{Name: "d", Seed: 2}, ms.Mode(1))
	if err != nil {
		t.Fatal(err)
	}
	sched := &Schedule{
		Modes:     ms,
		Initial:   1,
		Regulator: volt.DefaultRegulator(),
		Assignment: map[cfg.Edge]int{
			{From: cfg.Entry, To: 0}: 1,
			{From: 0, To: 0}:         1,
			{From: 0, To: 1}:         1,
		},
	}
	dvs, err := mach.RunDVS(p, ir.Input{Name: "d", Seed: 2}, sched)
	if err != nil {
		t.Fatal(err)
	}
	if dvs.Transitions != 0 {
		t.Errorf("transitions = %d, want 0", dvs.Transitions)
	}
	if math.Abs(dvs.TimeUS-fixed.TimeUS) > 1e-9 || math.Abs(dvs.EnergyUJ-fixed.EnergyUJ) > 1e-9 {
		t.Errorf("DVS constant schedule differs from fixed run: %v/%v vs %v/%v",
			dvs.TimeUS, dvs.EnergyUJ, fixed.TimeUS, fixed.EnergyUJ)
	}
}

func TestDVSTransitionCosts(t *testing.T) {
	t.Parallel()
	// Alternate modes on the back edge vs loop exit: every iteration of the
	// loop body switches mode.
	b := ir.NewBuilder("switchy")
	a := b.Block("a")
	c := b.Block("c")
	exit := b.Block("exit")
	a.Compute(100)
	a.Jump(c)
	c.Compute(100)
	b.LoopBranch(c, a, exit, 10)
	exit.Compute(1)
	exit.Exit()
	p := b.MustFinish()

	ms := volt.XScale3()
	reg := volt.DefaultRegulator()
	sched := &Schedule{
		Modes:     ms,
		Initial:   2,
		Regulator: reg,
		Assignment: map[cfg.Edge]int{
			{From: 0, To: 1}: 0, // a→c: drop to 200 MHz
			{From: 1, To: 0}: 2, // c→a: back to 800 MHz
		},
	}
	mach := MustNew(DefaultConfig())
	res, err := mach.RunDVS(p, ir.Input{Name: "d", Seed: 3}, sched)
	if err != nil {
		t.Fatal(err)
	}
	// a→c switches 10 times; c→a switches 9 times (back edge taken 9 times).
	if res.Transitions != 19 {
		t.Errorf("transitions = %d, want 19", res.Transitions)
	}
	wantTime := 19 * reg.TransitionTime(1.65, 0.70)
	if math.Abs(res.TransitionTimeUS-wantTime) > 1e-9 {
		t.Errorf("transition time = %v, want %v", res.TransitionTimeUS, wantTime)
	}
	wantEnergy := 19 * reg.TransitionEnergy(1.65, 0.70)
	if math.Abs(res.TransitionEnergyUJ-wantEnergy) > 1e-9 {
		t.Errorf("transition energy = %v, want %v", res.TransitionEnergyUJ, wantEnergy)
	}
}

func TestDVSScheduleValidation(t *testing.T) {
	t.Parallel()
	p := computeOnly(2, 2)
	mach := MustNew(DefaultConfig())
	ms := volt.XScale3()
	if _, err := mach.RunDVS(p, ir.Input{}, nil); err == nil {
		t.Error("nil schedule accepted")
	}
	if _, err := mach.RunDVS(p, ir.Input{}, &Schedule{Modes: ms, Initial: 9}); err == nil {
		t.Error("bad initial mode accepted")
	}
	bad := &Schedule{Modes: ms, Initial: 0, Assignment: map[cfg.Edge]int{{From: 0, To: 0}: 7}}
	if _, err := mach.RunDVS(p, ir.Input{}, bad); err == nil {
		t.Error("bad mode index accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.L1.Assoc = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero assoc accepted")
	}
	bad = good
	bad.L1.SizeBytes = 60000 // not divisible / non-power-of-two sets
	if err := bad.Validate(); err == nil {
		t.Error("bad L1 size accepted")
	}
	bad = good
	bad.MemLatencyUS = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero memory latency accepted")
	}
	bad = good
	bad.PredictorEntries = 1000
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two predictor accepted")
	}
	bad = good
	bad.CeffComputeNF = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero capacitance accepted")
	}
}

func TestParamsClassification(t *testing.T) {
	t.Parallel()
	p := memLoop(1000, 1<<12, false)
	res := run(t, p, mode800())
	// Body: 20 independent + 10 dependent cycles per iteration, plus 1 at
	// exit and mispredict penalties folded into NOverlap.
	if res.Params.NDependent != 1000*10 {
		t.Errorf("NDependent = %d, want 10000", res.Params.NDependent)
	}
	minOverlap := int64(1000*20 + 1)
	if res.Params.NOverlap < minOverlap {
		t.Errorf("NOverlap = %d, want >= %d", res.Params.NOverlap, minOverlap)
	}
	if res.Params.NCache == 0 {
		t.Error("NCache = 0, want L1-hit cycles")
	}
}

func TestFormatParams(t *testing.T) {
	t.Parallel()
	s := FormatParams(Params{NCache: 732700, NOverlap: 735600, NDependent: 4302000, TInvariantUS: 915.9})
	want := "Ncache=732.7K cycles, Noverlap=735.6K cycles, Ndependent=4302.0K cycles, tinvariant=915.9µs"
	if s != want {
		t.Errorf("FormatParams = %q", s)
	}
}

func TestCacheLRU(t *testing.T) {
	t.Parallel()
	// Direct unit test of the cache structure: 2 sets, 2 ways, 16 B lines.
	c := newCache(CacheConfig{SizeBytes: 64, Assoc: 2, LineBytes: 16, LatencyCycles: 1})
	// Addresses mapping to set 0: lines 0, 2, 4 (line = addr>>4).
	if c.access(0x00) {
		t.Error("cold access hit")
	}
	if c.access(0x20) {
		t.Error("cold access hit")
	}
	if !c.access(0x00) {
		t.Error("resident line missed")
	}
	// Insert a third line into set 0: evicts LRU (0x20).
	if c.access(0x40) {
		t.Error("cold access hit")
	}
	// Probing 0x20 misses (it was evicted) and allocates again, evicting 0x00.
	if c.access(0x20) {
		t.Error("evicted line hit")
	}
	if !c.access(0x40) {
		t.Error("resident line missed after probe")
	}
	if c.access(0x00) {
		t.Error("line should have been evicted by the probe allocation")
	}
}

func TestPredictorLearnsBias(t *testing.T) {
	t.Parallel()
	p := newPredictor(16)
	correct := 0
	for i := 0; i < 100; i++ {
		if p.predictAndUpdate(3, true) {
			correct++
		}
	}
	if correct < 98 {
		t.Errorf("always-taken accuracy = %d/100", correct)
	}
}
