package sim

import (
	"sync"

	"ctdvs/internal/volt"
)

// Replay reprices the recorded run at one mode, reproducing bit for bit the
// Result that Run would compute for the same program, input and machine
// configuration at that mode. It is safe to call concurrently on one
// Recording.
func (rec *Recording) Replay(mode volt.Mode) (*Result, error) {
	out, err := rec.ReplayAll([]volt.Mode{mode})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// replayScratch is the reusable working state of one ReplayAll call: the
// per-(op, mode) increment tables, per-mode event constants and per-mode
// machine state. Nothing in it escapes into the returned Results — those get
// their own consolidated backing arrays — so the whole struct cycles through
// a pool and steady-state replay performs a fixed handful of allocations
// regardless of trace length.
type replayScratch struct {
	dtOp, enOp []float64 // per-(op, mode) compute increments, op-major

	// Per-mode event constants, with the interpreter's expression shapes.
	dtL1, enL1   []float64
	dtL2, enL2   []float64
	dtPen, enPen []float64

	// Per-mode machine state.
	timeV, energyV []float64
	t0, e0         []float64
	memChans       []float64 // nm × nchan slots, mode-major

	blocks [][]BlockStat // per-mode views into the escaping stat backing
}

var replayScratchPool = sync.Pool{New: func() interface{} { return new(replayScratch) }}

// ReplayAll replays the recording at every given mode in one pass over the
// event stream: the trace and outcome bitstreams are decoded once and each
// event's time/energy increments are applied to all modes, so the marginal
// cost of an extra mode is a handful of float adds per event. Results are in
// the order of modes.
//
// Bit-for-bit fidelity comes from performing, per mode, exactly the floating
// point operations of the interpreter in exactly its order: every increment
// Run accumulates is precomputed here per (event kind, mode) with Run's own
// expression shapes, then added event by event. Since control flow, cache
// outcomes and branch outcomes are frequency-invariant (the paper's
// assumption 1, and the reason one recording serves every mode), the replay
// add sequence is the run add sequence, term for term.
func (rec *Recording) ReplayAll(modes []volt.Mode) ([]*Result, error) {
	lay := rec.layout
	if lay == nil {
		return nil, errf("recording is not bound to a program; call Bind first")
	}
	cfg := rec.Config
	nm := len(modes)
	results := make([]*Result, nm)
	if nm == 0 {
		return results, nil
	}

	sc := replayScratchPool.Get().(*replayScratch)
	defer replayScratchPool.Put(sc)

	// Per-(op, mode) increments, op-major so the per-event mode loop is
	// contiguous, and per-mode event constants, each built with the same
	// expression shape the interpreter evaluates (see run and memAccess).
	// grown zeroes the tables, matching the fresh make()s they replace (the
	// opMem rows of dtOp/enOp are written never, read never — but must not
	// carry stale values into a shorter layout's rows).
	nOps := len(lay.ops)
	dtOp := grown(sc.dtOp, nOps*nm)
	enOp := grown(sc.enOp, nOps*nm)
	dtL1 := grown(sc.dtL1, nm)
	enL1 := grown(sc.enL1, nm)
	dtL2 := grown(sc.dtL2, nm)
	enL2 := grown(sc.enL2, nm)
	dtPen := grown(sc.dtPen, nm)
	enPen := grown(sc.enPen, nm)
	sc.dtOp, sc.enOp = dtOp, enOp
	sc.dtL1, sc.enL1, sc.dtL2, sc.enL2, sc.dtPen, sc.enPen = dtL1, enL1, dtL2, enL2, dtPen, enPen
	l1Cycles := int64(cfg.L1.LatencyCycles)
	l2Cycles := int64(cfg.L2.LatencyCycles)
	pen := int64(cfg.MispredictPenaltyCycles)

	// Per-mode block stats escape into the Results, so they are carved from
	// one fresh backing array rather than pooled; the [][]BlockStat header is
	// scratch.
	nb := rec.NumBlocks
	blocks := grown(sc.blocks, nm)
	sc.blocks = blocks
	statBack := make([]BlockStat, nm*nb)
	for mi, mode := range modes {
		eC := cfg.CeffComputeNF * mode.V * mode.V * 1e-3
		v2 := mode.V * mode.V
		dtL1[mi] = float64(l1Cycles) / mode.F
		enL1[mi] = cfg.CeffL1NF * v2 * 1e-3
		dtL2[mi] = float64(l2Cycles) / mode.F
		enL2[mi] = cfg.CeffL2NF * v2 * 1e-3 * float64(l2Cycles)
		dtPen[mi] = float64(pen) / mode.F
		enPen[mi] = float64(pen) * eC
		for oi := range lay.ops {
			if lay.ops[oi].kind == opCompute {
				dtOp[oi*nm+mi] = lay.ops[oi].fcyc / mode.F
				enOp[oi*nm+mi] = lay.ops[oi].fcyc * eC
			}
		}
		blocks[mi] = statBack[mi*nb : (mi+1)*nb : (mi+1)*nb]
	}

	// Per-mode machine state, mode-major; memory channels are nchan slots
	// per mode.
	nchan := cfg.MemChannels
	timeV := grown(sc.timeV, nm)
	energyV := grown(sc.energyV, nm)
	t0 := grown(sc.t0, nm)
	e0 := grown(sc.e0, nm)
	memChans := grown(sc.memChans, nm*nchan)
	sc.timeV, sc.energyV, sc.t0, sc.e0, sc.memChans = timeV, energyV, t0, e0, memChans

	var memIdx, brIdx int64
	for _, b32 := range rec.Trace {
		b := int(b32)
		rb := &lay.blocks[b]
		for mi := 0; mi < nm; mi++ {
			t0[mi] = timeV[mi]
			e0[mi] = energyV[mi]
			blocks[mi][b].Invocations++
		}
		for oi := rb.opLo; oi < rb.opHi; oi++ {
			op := &lay.ops[oi]
			if op.kind == opCompute {
				base := int(oi) * nm
				if op.dep {
					for mi := 0; mi < nm; mi++ {
						mc := memChans[mi*nchan : mi*nchan+nchan]
						drained := 0.0
						for _, t := range mc {
							if t > drained {
								drained = t
							}
						}
						if drained > timeV[mi] {
							timeV[mi] = drained
						}
						timeV[mi] += dtOp[base+mi]
						energyV[mi] += enOp[base+mi]
					}
				} else {
					for mi := 0; mi < nm; mi++ {
						timeV[mi] += dtOp[base+mi]
						energyV[mi] += enOp[base+mi]
					}
				}
				continue
			}
			// Memory access: one shared recorded outcome drives every mode.
			outcome := (rec.MemBits[memIdx>>5] >> uint((memIdx&31)*2)) & 3
			memIdx++
			switch outcome {
			case memL1Hit:
				for mi := 0; mi < nm; mi++ {
					timeV[mi] += dtL1[mi]
					energyV[mi] += enL1[mi]
				}
			case memL2Hit:
				for mi := 0; mi < nm; mi++ {
					timeV[mi] += dtL1[mi]
					energyV[mi] += enL1[mi]
					timeV[mi] += dtL2[mi]
					energyV[mi] += enL2[mi]
				}
			default:
				// Miss: the CPU-side cost is the two lookups; the service
				// occupies each mode's earliest-free channel (recomputed per
				// mode — channel choice is frequency-dependent arithmetic,
				// not a recorded fact).
				for mi := 0; mi < nm; mi++ {
					timeV[mi] += dtL1[mi]
					energyV[mi] += enL1[mi]
					timeV[mi] += dtL2[mi]
					energyV[mi] += enL2[mi]
					mc := memChans[mi*nchan : mi*nchan+nchan]
					ch := 0
					for k := 1; k < nchan; k++ {
						if mc[k] < mc[ch] {
							ch = k
						}
					}
					start := timeV[mi]
					if mc[ch] > start {
						start = mc[ch]
					}
					mc[ch] = start + cfg.MemLatencyUS
				}
			}
		}
		switch rb.term {
		case termBranch:
			mis := rec.BranchBits[brIdx>>6]>>uint(brIdx&63)&1 == 1
			brIdx++
			if mis {
				for mi := 0; mi < nm; mi++ {
					timeV[mi] += dtPen[mi]
					energyV[mi] += enPen[mi]
				}
			}
		case termExit:
			for mi := 0; mi < nm; mi++ {
				mc := memChans[mi*nchan : mi*nchan+nchan]
				drained := 0.0
				for _, t := range mc {
					if t > drained {
						drained = t
					}
				}
				if drained > timeV[mi] {
					timeV[mi] = drained
				}
			}
		}
		for mi := 0; mi < nm; mi++ {
			bs := &blocks[mi][b]
			bs.TimeUS += timeV[mi] - t0[mi]
			bs.EnergyUJ += energyV[mi] - e0[mi]
		}
	}
	if memIdx != rec.MemOps || brIdx != rec.BranchOps {
		return nil, errf("recording replay consumed %d/%d memory and %d/%d branch outcomes",
			memIdx, rec.MemOps, brIdx, rec.BranchOps)
	}

	// Assemble the escaping Results from consolidated backing arrays: one
	// []Result, one count array carved per mode. The three-index subslices
	// keep each result's counts append-safe and non-nil (empty path sets stay
	// DeepEqual to Run's non-nil empties).
	ne, np := len(rec.EdgeCountsByID), len(rec.PathCountsByID)
	resBack := make([]Result, nm)
	cntBack := make([]int64, nm*(ne+np))
	for mi, mode := range modes {
		base := mi * (ne + np)
		edges := cntBack[base : base+ne : base+ne]
		paths := cntBack[base+ne : base+ne+np : base+ne+np]
		copy(edges, rec.EdgeCountsByID)
		copy(paths, rec.PathCountsByID)
		res := &resBack[mi]
		*res = Result{
			Program: rec.Program,
			Input:   rec.Input,
			Mode:    mode,
			Blocks:  blocks[mi],

			EdgeCountsByID: edges,
			PathCountsByID: paths,
			Params:         rec.Params,

			L1Hits:      rec.L1Hits,
			L2Hits:      rec.L2Hits,
			MemMisses:   rec.MemMisses,
			Branches:    rec.Branches,
			Mispredicts: rec.Mispredicts,
		}
		res.TimeUS = timeV[mi]
		res.LeakageEnergyUJ = cfg.StaticPowerMW * timeV[mi] * 1e-3
		res.EnergyUJ = energyV[mi] + res.LeakageEnergyUJ
		results[mi] = res
	}
	return results, nil
}
