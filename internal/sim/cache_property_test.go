package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refCache is an obviously-correct LRU model: a slice of lines per set,
// most recent first.
type refCache struct {
	lineShift uint
	sets      int
	assoc     int
	lines     [][]uint64
}

func newRefCache(cc CacheConfig) *refCache {
	shift := uint(0)
	for 1<<shift < cc.LineBytes {
		shift++
	}
	return &refCache{
		lineShift: shift,
		sets:      cc.Sets(),
		assoc:     cc.Assoc,
		lines:     make([][]uint64, cc.Sets()),
	}
}

func (r *refCache) access(addr uint64) bool {
	line := addr >> r.lineShift
	set := int(line % uint64(r.sets))
	ways := r.lines[set]
	for i, l := range ways {
		if l == line {
			// Move to front.
			copy(ways[1:i+1], ways[:i])
			ways[0] = line
			return true
		}
	}
	ways = append([]uint64{line}, ways...)
	if len(ways) > r.assoc {
		ways = ways[:r.assoc]
	}
	r.lines[set] = ways
	return false
}

// TestCacheMatchesReferenceModel drives the production cache and the
// reference model with identical random access streams (mixing sequential
// runs and random jumps) and requires hit/miss agreement on every access.
func TestCacheMatchesReferenceModel(t *testing.T) {
	t.Parallel()
	cfgs := []CacheConfig{
		{SizeBytes: 1 << 10, Assoc: 2, LineBytes: 16, LatencyCycles: 1},
		{SizeBytes: 4 << 10, Assoc: 4, LineBytes: 32, LatencyCycles: 1},
		{SizeBytes: 64 << 10, Assoc: 4, LineBytes: 32, LatencyCycles: 1},
		{SizeBytes: 2 << 10, Assoc: 1, LineBytes: 32, LatencyCycles: 1}, // direct-mapped
	}
	for _, cc := range cfgs {
		cc := cc
		err := quick.Check(func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			prod := newCache(cc)
			ref := newRefCache(cc)
			addr := uint64(rng.Intn(1 << 20))
			for i := 0; i < 3000; i++ {
				switch rng.Intn(3) {
				case 0: // sequential run
					addr += 4
				case 1: // stride
					addr += uint64(cc.LineBytes)
				default: // random jump within a window
					addr = uint64(rng.Intn(8 * cc.SizeBytes))
				}
				if prod.access(addr) != ref.access(addr) {
					return false
				}
			}
			return true
		}, &quick.Config{MaxCount: 20})
		if err != nil {
			t.Errorf("config %+v: %v", cc, err)
		}
	}
}

// TestCacheResetForgets checks reset() leaves no resident lines.
func TestCacheResetForgets(t *testing.T) {
	t.Parallel()
	cc := CacheConfig{SizeBytes: 1 << 10, Assoc: 2, LineBytes: 16, LatencyCycles: 1}
	c := newCache(cc)
	for a := uint64(0); a < 1024; a += 4 {
		c.access(a)
	}
	c.reset()
	for a := uint64(0); a < 1024; a += 16 {
		if c.access(a) {
			t.Fatalf("address %#x hit after reset", a)
		}
	}
}
