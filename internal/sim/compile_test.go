package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ctdvs/internal/cfg"
	"ctdvs/internal/ir"
	"ctdvs/internal/volt"
)

// refMachine builds a machine identical to mc but running the reference
// instruction-walking interpreter, the oracle the compiled kernel must match.
func refMachine(mc Config) *Machine {
	mc.ReferenceSim = true
	return MustNew(mc)
}

// randomSchedule assigns a random mode to a random subset of p's CFG edges
// (sometimes including the virtual entry edge, sometimes a nonexistent edge,
// which both kernels must silently ignore).
func randomSchedule(t *testing.T, rng *rand.Rand, p *ir.Program, ms *volt.ModeSet) *Schedule {
	t.Helper()
	g, err := cfg.FromProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	assign := make(map[cfg.Edge]int)
	for _, e := range g.Edges {
		if rng.Intn(2) == 0 {
			assign[e] = rng.Intn(ms.Len())
		}
	}
	if rng.Intn(3) == 0 {
		assign[cfg.Edge{From: len(p.Blocks) + 5, To: 0}] = rng.Intn(ms.Len())
	}
	return &Schedule{
		Modes:      ms,
		Assignment: assign,
		Initial:    rng.Intn(ms.Len()),
		Regulator:  volt.DefaultRegulator(),
	}
}

// TestCompiledMatchesReferenceRun is the tentpole property test: on arbitrary
// programs, configurations and mode sets, fixed-mode Run on the compiled
// kernel must be bit-for-bit identical to the reference interpreter.
func TestCompiledMatchesReferenceRun(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	ms5, err := volt.Uniform(5, 0.8, 1.6, volt.DefaultScaling())
	if err != nil {
		t.Fatal(err)
	}
	modeSets := [][]volt.Mode{volt.XScale3().Modes(), ms5.Modes()}
	for ci, mc := range replayTestConfigs() {
		comp := MustNew(mc)
		ref := refMachine(mc)
		for pi := 0; pi < 8; pi++ {
			p, in := randomProgram(rng, fmt.Sprintf("comp-%d-%d", ci, pi))
			for _, mode := range modeSets[pi%len(modeSets)] {
				want, err := ref.Run(p, in, mode)
				if err != nil {
					t.Fatalf("cfg %d prog %d: reference: %v", ci, pi, err)
				}
				got, err := comp.Run(p, in, mode)
				if err != nil {
					t.Fatalf("cfg %d prog %d: compiled: %v", ci, pi, err)
				}
				checkReplayedResult(t, fmt.Sprintf("cfg %d prog %d mode %v", ci, pi, mode), want, got)
			}
		}
	}
}

// TestCompiledMatchesReferenceDVS extends the property to scheduled runs:
// random per-edge mode assignments, regulator transition pricing included.
func TestCompiledMatchesReferenceDVS(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	ms := volt.XScale3()
	for ci, mc := range replayTestConfigs() {
		comp := MustNew(mc)
		ref := refMachine(mc)
		for pi := 0; pi < 8; pi++ {
			p, in := randomProgram(rng, fmt.Sprintf("dvs-%d-%d", ci, pi))
			sched := randomSchedule(t, rng, p, ms)
			want, err := ref.RunDVS(p, in, sched)
			if err != nil {
				t.Fatalf("cfg %d prog %d: reference: %v", ci, pi, err)
			}
			got, err := comp.RunDVS(p, in, sched)
			if err != nil {
				t.Fatalf("cfg %d prog %d: compiled: %v", ci, pi, err)
			}
			checkReplayedResult(t, fmt.Sprintf("cfg %d prog %d", ci, pi), want, got)
		}
	}
}

// TestCompiledMatchesReferenceRecord requires Record to produce identical
// event streams and results through both kernels (the recorder hooks sit in
// the hot loop, so they are easy to misplace in a specialized kernel).
func TestCompiledMatchesReferenceRecord(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for ci, mc := range replayTestConfigs() {
		comp := MustNew(mc)
		ref := refMachine(mc)
		for pi := 0; pi < 5; pi++ {
			p, in := randomProgram(rng, fmt.Sprintf("rec-%d-%d", ci, pi))
			mode := volt.XScale3().Max()
			wantRec, wantRes, err := ref.Record(p, in, mode)
			if err != nil {
				t.Fatalf("cfg %d prog %d: reference: %v", ci, pi, err)
			}
			gotRec, gotRes, err := comp.Record(p, in, mode)
			if err != nil {
				t.Fatalf("cfg %d prog %d: compiled: %v", ci, pi, err)
			}
			checkReplayedResult(t, fmt.Sprintf("cfg %d prog %d", ci, pi), wantRes, gotRes)
			// The recordings must agree modulo the kernel-selection flag,
			// which is part of the machine config but not of the stream.
			wantRec.Config.ReferenceSim = false
			if !reflect.DeepEqual(wantRec, gotRec) {
				t.Errorf("cfg %d prog %d: recordings differ", ci, pi)
			}
		}
	}
}

// TestCompiledMatchesReferenceGoverned covers the run-time governor path:
// interval stats, mode decisions and transition pricing must come out of the
// compiled kernel unchanged.
func TestCompiledMatchesReferenceGoverned(t *testing.T) {
	ms := volt.XScale3()
	for ci, mc := range replayTestConfigs() {
		comp := MustNew(mc)
		ref := refMachine(mc)
		prog := phased(500)
		in := ir.Input{Name: "g", Seed: 17}
		mkGov := func() Governor { return &UtilizationGovernor{Modes: ms, Low: 0.6, High: 0.9} }
		want, err := ref.RunGoverned(prog, in, ms, volt.DefaultRegulator(), ms.Len()-1, 50, mkGov())
		if err != nil {
			t.Fatalf("cfg %d: reference: %v", ci, err)
		}
		got, err := comp.RunGoverned(prog, in, ms, volt.DefaultRegulator(), ms.Len()-1, 50, mkGov())
		if err != nil {
			t.Fatalf("cfg %d: compiled: %v", ci, err)
		}
		checkReplayedResult(t, fmt.Sprintf("cfg %d governed", ci), want, got)
	}
}

// TestCompiledEdgeHook verifies the compiled kernel fires EdgeHook on the
// same edge sequence as the reference interpreter.
func TestCompiledEdgeHook(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	p, in := randomProgram(rng, "hook")
	mode := volt.XScale3().Max()
	trace := func(m *Machine) [][2]int {
		var seq [][2]int
		m.EdgeHook = func(from, to int) { seq = append(seq, [2]int{from, to}) }
		if _, err := m.Run(p, in, mode); err != nil {
			t.Fatal(err)
		}
		m.EdgeHook = nil
		return seq
	}
	want := trace(refMachine(DefaultConfig()))
	got := trace(MustNew(DefaultConfig()))
	if !reflect.DeepEqual(want, got) {
		t.Errorf("edge sequences differ: reference %d edges, compiled %d", len(want), len(got))
	}
	if len(want) == 0 || want[0] != [2]int{cfg.Entry, 0} {
		t.Errorf("edge sequence does not start at the entry edge: %v", want[:min(len(want), 3)])
	}
}

// TestCompileProgramErrors pins the validation surface of the compile step.
func TestCompileProgramErrors(t *testing.T) {
	p := computeOnly(50, 100)
	if _, err := CompileProgram(p, Config{}); err == nil {
		t.Error("CompileProgram accepted an invalid config")
	}
	if _, err := CompileProgram(&ir.Program{Name: "empty"}, DefaultConfig()); err == nil {
		t.Error("CompileProgram accepted an invalid program")
	}
	if cp, err := CompileProgram(p, DefaultConfig()); err != nil {
		t.Errorf("CompileProgram rejected a valid program: %v", err)
	} else {
		if cp.Program() != p {
			t.Error("CompiledProgram.Program does not return the source program")
		}
		if cp.Config() != DefaultConfig() {
			t.Error("CompiledProgram.Config does not round-trip")
		}
	}
}

// TestMachineReuseAcrossPrograms is the pooled-buffer regression test:
// back-to-back runs on ONE machine across different programs — interleaving
// fixed-mode, DVS-scheduled and recorded runs so every pooled buffer is
// resized up and down — must match fresh machines bit for bit.
func TestMachineReuseAcrossPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	ms := volt.XScale3()
	mc := replayTestConfigs()[1] // small caches: all access outcomes occur
	reused := MustNew(mc)

	type runCase struct {
		p     *ir.Program
		in    ir.Input
		sched *Schedule
	}
	var cases []runCase
	for i := 0; i < 6; i++ {
		p, in := randomProgram(rng, fmt.Sprintf("reuse-%d", i))
		var sched *Schedule
		if i%2 == 1 {
			sched = randomSchedule(t, rng, p, ms)
		}
		cases = append(cases, runCase{p, in, sched})
	}
	// Two passes over the case list: the second pass re-runs each program on
	// a machine whose buffers were last sized for a different program and
	// whose compiled cache already holds every entry.
	for pass := 0; pass < 2; pass++ {
		for i, c := range cases {
			ctx := fmt.Sprintf("pass %d case %d", pass, i)
			fresh := MustNew(mc)
			var want, got *Result
			var errW, errG error
			if c.sched != nil {
				want, errW = fresh.RunDVS(c.p, c.in, c.sched)
				got, errG = reused.RunDVS(c.p, c.in, c.sched)
			} else {
				want, errW = fresh.Run(c.p, c.in, ms.Max())
				got, errG = reused.Run(c.p, c.in, ms.Max())
			}
			if errW != nil || errG != nil {
				t.Fatalf("%s: fresh err %v, reused err %v", ctx, errW, errG)
			}
			checkReplayedResult(t, ctx, want, got)
			if i%3 == 2 {
				reused.Reset() // pool-return path must not disturb the next run
			}
		}
	}
}

// TestCompiledCacheSurvivesReset pins the cache-by-identity contract: one
// compilation per program per machine, retained across Reset (that retention
// is the point — a pooled machine compiles each workload once).
func TestCompiledCacheSurvivesReset(t *testing.T) {
	p := computeOnly(50, 100)
	in := ir.Input{Name: "c", Seed: 1}
	m := MustNew(DefaultConfig())
	if _, err := m.Run(p, in, mode800()); err != nil {
		t.Fatal(err)
	}
	first := m.compiled[p]
	if first == nil {
		t.Fatal("run did not populate the compiled-program cache")
	}
	m.Reset()
	if _, err := m.Run(p, in, mode800()); err != nil {
		t.Fatal(err)
	}
	if m.compiled[p] != first {
		t.Error("Reset dropped the compiled program; recompiled on next run")
	}
	if len(m.compiled) != 1 {
		t.Errorf("compiled cache holds %d entries, want 1", len(m.compiled))
	}
}

// TestPooledMachinesConcurrent drives a machine pool from many goroutines —
// run, record, reset, return — so the race detector (make ci) can see any
// sharing between one machine's pooled buffers or compiled cache and
// another's. Results must stay bit-identical to a baseline throughout.
func TestPooledMachinesConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	mc := DefaultConfig()
	progs := make([]*ir.Program, 3)
	ins := make([]ir.Input, 3)
	for i := range progs {
		progs[i], ins[i] = randomProgram(rng, fmt.Sprintf("pool-%d", i))
	}
	mode := volt.XScale3().Max()
	baseline := make([]*Result, len(progs))
	for i := range progs {
		r, err := MustNew(mc).Run(progs[i], ins[i], mode)
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = r
	}

	pool := sync.Pool{New: func() interface{} { return MustNew(mc) }}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				i := (w + iter) % len(progs)
				m := pool.Get().(*Machine)
				got, err := m.Run(progs[i], ins[i], mode)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if !reflect.DeepEqual(baseline[i], got) {
					t.Errorf("worker %d iter %d: pooled result diverged", w, iter)
					return
				}
				if iter%3 == 0 {
					if _, _, err := m.Record(progs[i], ins[i], mode); err != nil {
						t.Errorf("worker %d: record: %v", w, err)
						return
					}
				}
				m.Reset()
				pool.Put(m)
			}
		}(w)
	}
	wg.Wait()
}
