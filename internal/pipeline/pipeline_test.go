package pipeline

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// intStage is a trivial cached stage for runner tests.
func intStage(kind Kind) Stage[int] {
	return Stage[int]{
		Kind:   kind,
		Encode: func(v int) ([]byte, error) { return json.Marshal(v) },
		Decode: func(d []byte) (int, error) {
			var v int
			err := json.Unmarshal(d, &v)
			return v, err
		},
	}
}

func testKey(parts ...string) Key {
	b := NewKey(StageProfile)
	for i, p := range parts {
		b.Str(fmt.Sprintf("p%d", i), p)
	}
	return b.Sum()
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("a")
	if _, _, ok, err := s.Get(StageProfile, key); err != nil || ok {
		t.Fatalf("empty store returned ok=%v err=%v", ok, err)
	}
	if err := s.Put(StageProfile, key, []byte("hello"), FormatJSON); err != nil {
		t.Fatal(err)
	}
	data, format, ok, err := s.Get(StageProfile, key)
	if err != nil || !ok || format != FormatJSON || string(data) != "hello" {
		t.Fatalf("get = %q format=%v ok=%v err=%v", data, format, ok, err)
	}
	// Sharded layout: kind/key[:2]/key.json.
	want := filepath.Join(s.Dir(), "profile", string(key[:2]), string(key)+".json")
	if s.Path(StageProfile, key, FormatJSON) != want {
		t.Errorf("path = %q, want %q", s.Path(StageProfile, key, FormatJSON), want)
	}
	if _, err := os.Stat(want); err != nil {
		t.Errorf("artifact file missing: %v", err)
	}
}

func TestStoreRejectsBadKey(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Key{"", "short", Key(strings.Repeat("../", 22) + "aa")} {
		if err := s.Put(StageProfile, bad, []byte("x"), FormatJSON); err == nil {
			t.Errorf("Put accepted key %q", bad)
		}
		if _, _, _, err := s.Get(StageProfile, bad); err == nil {
			t.Errorf("Get accepted key %q", bad)
		}
	}
}

func TestRunnerMemoryDedup(t *testing.T) {
	r := NewRunner(nil)
	st := intStage(StageSolve)
	key := testKey("dedup")
	computes := 0
	get := func() int {
		v, err := Run(r, st, key, func() (int, error) { computes++; return 42, nil })
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if get() != 42 || get() != 42 {
		t.Fatal("wrong value")
	}
	if computes != 1 {
		t.Fatalf("computed %d times, want 1", computes)
	}
	recs := r.Manifest().Records()
	if len(recs) != 1 || recs[0].Misses != 1 || recs[0].MemHits != 1 {
		t.Fatalf("manifest = %+v", recs)
	}
}

func TestRunnerConcurrentSingleflight(t *testing.T) {
	r := NewRunner(nil)
	st := intStage(StageSolve)
	key := testKey("concurrent")
	var mu sync.Mutex
	computes := 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := Run(r, st, key, func() (int, error) {
				mu.Lock()
				computes++
				mu.Unlock()
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("got %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if computes != 1 {
		t.Fatalf("computed %d times, want 1", computes)
	}
}

func TestRunnerDiskWarm(t *testing.T) {
	dir := t.TempDir()
	st := intStage(StageProfile)
	key := testKey("warm")

	open := func() *Runner {
		store, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return NewRunner(store)
	}

	cold := open()
	computes := 0
	v, err := Run(cold, st, key, func() (int, error) { computes++; return 11, nil })
	if err != nil || v != 11 || computes != 1 {
		t.Fatalf("cold: v=%d computes=%d err=%v", v, computes, err)
	}
	if cold.Manifest().AllHits() {
		t.Error("cold run claims all hits")
	}

	// A fresh runner over the same directory must not recompute.
	warm := open()
	v, err = Run(warm, st, key, func() (int, error) { computes++; return -1, nil })
	if err != nil || v != 11 {
		t.Fatalf("warm: v=%d err=%v", v, err)
	}
	if computes != 1 {
		t.Fatalf("warm run recomputed (computes=%d)", computes)
	}
	if !warm.Manifest().AllHits() {
		t.Errorf("warm manifest reports misses: %+v", warm.Manifest().Records())
	}
	stats := warm.Manifest().Stats()
	if s := stats[StageProfile]; s.DiskHits != 1 || s.Misses != 0 {
		t.Errorf("warm stats = %+v", s)
	}
}

func TestRunnerCorruptArtifactRecomputes(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st := intStage(StageProfile)
	key := testKey("corrupt")
	if err := store.Put(StageProfile, key, []byte("not json"), FormatJSON); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(store)
	v, err := Run(r, st, key, func() (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	// The recompute must overwrite the corrupt artifact.
	data, _, ok, err := store.Get(StageProfile, key)
	if err != nil || !ok || string(data) != "5" {
		t.Fatalf("artifact after recompute = %q ok=%v err=%v", data, ok, err)
	}
}

func TestRunnerErrorPropagates(t *testing.T) {
	r := NewRunner(nil)
	st := intStage(StageSolve)
	key := testKey("err")
	boom := errors.New("boom")
	if _, err := Run(r, st, key, func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The error is memoized like a value: same key, same error, no recompute.
	if _, err := Run(r, st, key, func() (int, error) { return 1, nil }); !errors.Is(err, boom) {
		t.Fatalf("second call err = %v", err)
	}
}

func TestObserveRecorded(t *testing.T) {
	r := NewRunner(nil)
	key := testKey("obs")
	if err := r.Observe(StageFilter, key, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	recs := r.Manifest().Records()
	if len(recs) != 1 || recs[0].Stage != StageFilter || recs[0].Misses != 1 || recs[0].Cached {
		t.Fatalf("manifest = %+v", recs)
	}
}

func TestManifestJSON(t *testing.T) {
	r := NewRunner(nil)
	st := intStage(StageSolve)
	if _, err := Run(r, st, testKey("m"), func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := r.Manifest().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version int                  `json:"version"`
		Summary map[string]KindStats `json:"summary"`
		Records []StageRecord        `json:"records"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("manifest not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Version != 1 || len(doc.Records) != 1 || doc.Summary["solve"].Misses != 1 {
		t.Fatalf("doc = %+v", doc)
	}
}
