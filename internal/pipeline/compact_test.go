package pipeline

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// putBoth writes an artifact in both formats — the "JSON twin" shape Compact
// evicts first — and returns the combined size.
func putBoth(t *testing.T, s *Store, key Key, binSize, jsonSize int) int64 {
	t.Helper()
	if err := s.Put(StageProfile, key, bytes.Repeat([]byte{0xCB}, binSize), FormatBinary); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(StageProfile, key, bytes.Repeat([]byte{'j'}, jsonSize), FormatJSON); err != nil {
		t.Fatal(err)
	}
	return int64(binSize + jsonSize)
}

func TestDiskStats(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	putBoth(t, s, testKey("ds-1"), 100, 50)
	if err := s.Put(StageSolve, testKey("ds-2"), make([]byte, 30), FormatBinary); err != nil {
		t.Fatal(err)
	}
	ds, err := s.DiskStats()
	if err != nil {
		t.Fatal(err)
	}
	if ds.TotalArtifacts != 3 || ds.TotalBytes != 180 {
		t.Fatalf("totals = %d artifacts, %d bytes", ds.TotalArtifacts, ds.TotalBytes)
	}
	if ks := ds.Kinds[StageProfile]; ks.Artifacts != 2 || ks.Bytes != 150 {
		t.Fatalf("profile kind = %+v", ks)
	}
	if ks := ds.Kinds[StageSolve]; ks.Artifacts != 1 || ks.Bytes != 30 {
		t.Fatalf("solve kind = %+v", ks)
	}
}

// TestCompactUnderBudgetIsNoop: a store already within budget loses nothing.
func TestCompactUnderBudgetIsNoop(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	total := putBoth(t, s, testKey("fit"), 100, 60)
	st, err := s.Compact(total + 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.EvictedArtifacts != 0 || st.BytesAfter != total {
		t.Fatalf("stats = %+v", st)
	}
	// Budget 0 means "no budget": report/cleanup only, never evict.
	if st, err := s.Compact(0); err != nil || st.EvictedArtifacts != 0 {
		t.Fatalf("budget 0 evicted: %+v err=%v", st, err)
	}
}

// TestCompactEvictsJSONTwinsFirst: when dropping the JSON duplicates of
// binary artifacts suffices, every binary artifact survives.
func TestCompactEvictsJSONTwinsFirst(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := []Key{testKey("twin-a"), testKey("twin-b"), testKey("twin-c")}
	for _, k := range keys {
		putBoth(t, s, k, 200, 100)
	}
	// 900 bytes total; budget 650 is reachable by shedding two 100-byte
	// twins, so no binary artifact may be touched.
	st, err := s.Compact(650)
	if err != nil {
		t.Fatal(err)
	}
	if st.EvictedJSONTwins < 2 || st.EvictedJSONTwins != st.EvictedArtifacts {
		t.Fatalf("stats = %+v, want only JSON twins evicted", st)
	}
	if st.BytesAfter > 650 {
		t.Fatalf("still over budget: %+v", st)
	}
	for _, k := range keys {
		if _, err := os.Stat(s.Path(StageProfile, k, FormatBinary)); err != nil {
			t.Errorf("binary artifact %s evicted while twins remained: %v", k, err)
		}
	}
	// Warm reads for every key still hit (binary survived).
	for _, k := range keys {
		if _, f, ok, err := s.Get(StageProfile, k); err != nil || !ok || f != FormatBinary {
			t.Errorf("post-compact read %s: ok=%v f=%v err=%v", k, ok, f, err)
		}
	}
	if ev := s.Evictions(); ev.Compactions != 1 || ev.EvictedArtifacts != int64(st.EvictedArtifacts) {
		t.Errorf("gauges = %+v", ev)
	}
}

// TestCompactLRUOrder: past the twins, eviction is least-recently-used. With
// no access record, file mtime carries the order.
func TestCompactLRUOrder(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	old, mid, fresh := testKey("lru-old"), testKey("lru-mid"), testKey("lru-new")
	for _, k := range []Key{old, mid, fresh} {
		if err := s.Put(StageProfile, k, make([]byte, 100), FormatBinary); err != nil {
			t.Fatal(err)
		}
	}
	now := time.Now()
	for i, k := range []Key{old, mid, fresh} {
		mt := now.Add(time.Duration(i-3) * time.Hour)
		if err := os.Chtimes(s.Path(StageProfile, k, FormatBinary), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.Compact(150)
	if err != nil {
		t.Fatal(err)
	}
	if st.EvictedArtifacts != 2 {
		t.Fatalf("stats = %+v, want 2 evictions", st)
	}
	if _, err := os.Stat(s.Path(StageProfile, fresh, FormatBinary)); err != nil {
		t.Error("most recent artifact evicted")
	}
	for _, k := range []Key{old, mid} {
		if _, err := os.Stat(s.Path(StageProfile, k, FormatBinary)); !os.IsNotExist(err) {
			t.Errorf("stale artifact %s survived", k)
		}
	}
}

// TestCompactAtimeSidecarSurvivesRestart: an access recorded by one process
// protects the artifact from a later process's LRU pass via the sidecar
// index, even when file mtimes say otherwise.
func TestCompactAtimeSidecarSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	hot, cold := testKey("sidecar-hot"), testKey("sidecar-cold")
	for _, k := range []Key{hot, cold} {
		if err := s.Put(StageProfile, k, make([]byte, 100), FormatBinary); err != nil {
			t.Fatal(err)
		}
		// Both files look ancient on disk.
		mt := time.Now().Add(-24 * time.Hour)
		if err := os.Chtimes(s.Path(StageProfile, k, FormatBinary), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// Only hot is read; Close persists that access to the sidecar.
	if _, _, ok, err := s.Get(StageProfile, hot); err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, atimeIndexName)); err != nil {
		t.Fatalf("sidecar index missing after Close: %v", err)
	}

	// A fresh process has no in-memory atimes: the sidecar must carry them.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Compact(150); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s2.Path(StageProfile, hot, FormatBinary)); err != nil {
		t.Error("recently read artifact evicted despite sidecar atime")
	}
	if _, err := os.Stat(s2.Path(StageProfile, cold, FormatBinary)); !os.IsNotExist(err) {
		t.Error("never-read artifact survived over the recently read one")
	}
}

// TestCompactDamagedSidecarFallsBack: a corrupt sidecar index degrades to
// mtime order instead of failing the compaction.
func TestCompactDamagedSidecarFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, atimeIndexName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(StageProfile, testKey("dmg"), make([]byte, 10), FormatBinary); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(5); err != nil {
		t.Fatalf("compact with damaged sidecar: %v", err)
	}
}

// TestCompactRemovesStaleTemps: orphaned temp files from crashed writers are
// reclaimed once they are old enough that no live Put can own them, and
// fresh temps are left alone.
func TestCompactRemovesStaleTemps(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("temps")
	if err := s.Put(StageProfile, key, []byte("x"), FormatBinary); err != nil {
		t.Fatal(err)
	}
	shard := filepath.Dir(s.Path(StageProfile, key, FormatBinary))
	stale := filepath.Join(shard, ".tmp-stale")
	freshTmp := filepath.Join(shard, ".tmp-fresh")
	for _, p := range []string{stale, freshTmp} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	st, err := s.Compact(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if st.RemovedTemps != 1 {
		t.Fatalf("removed %d temps, want 1", st.RemovedTemps)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp survived")
	}
	if _, err := os.Stat(freshTmp); err != nil {
		t.Error("fresh temp removed — could have been a live Put's file")
	}
}

// TestCompactConcurrentWithReaders is the required race test: Compact runs
// under a churn of concurrent Gets, mapped reads and re-Puts. Readers must
// only ever see an intact artifact or a clean miss — never an error or torn
// bytes — and the store must stay usable throughout. Run with -race this
// also proves the atime table's locking.
func TestCompactConcurrentWithReaders(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const nKeys = 16
	keys := make([]Key, nKeys)
	payloads := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = testKey("race", fmt.Sprint(i))
		payloads[i] = bytes.Repeat([]byte{byte(i + 1)}, 512)
		if err := s.Put(StageProfile, keys[i], payloads[i], FormatBinary); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := i % nKeys
				if g%2 == 0 {
					data, _, ok, err := s.Get(StageProfile, keys[k])
					if err != nil {
						t.Errorf("Get during compact: %v", err)
						return
					}
					if ok && !bytes.Equal(data, payloads[k]) {
						t.Errorf("torn read for key %d", k)
						return
					}
					if !ok { // evicted: recompute-and-store, like the runner would
						if err := s.Put(StageProfile, keys[k], payloads[k], FormatBinary); err != nil {
							t.Errorf("re-Put during compact: %v", err)
							return
						}
					}
				} else {
					m, _, ok, err := s.ReadMapped(StageProfile, keys[k])
					if err != nil {
						t.Errorf("ReadMapped during compact: %v", err)
						return
					}
					if ok {
						if !bytes.Equal(m.Bytes(), payloads[k]) {
							t.Errorf("torn mapped read for key %d", k)
						}
						m.Release()
					}
				}
			}
		}(g)
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		// A budget below the working set forces real evictions every pass.
		if _, err := s.Compact(nKeys * 512 / 2); err != nil {
			t.Errorf("compact: %v", err)
			break
		}
	}
	close(stop)
	wg.Wait()

	// The store is intact: every key readable after one final re-Put pass.
	for i, k := range keys {
		if err := s.Put(StageProfile, k, payloads[i], FormatBinary); err != nil {
			t.Fatal(err)
		}
		data, _, ok, err := s.Get(StageProfile, k)
		if err != nil || !ok || !bytes.Equal(data, payloads[i]) {
			t.Fatalf("key %d unreadable after the storm: ok=%v err=%v", i, ok, err)
		}
	}
}
