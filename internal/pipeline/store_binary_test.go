package pipeline

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
)

// binIntStage is a stage with both codecs plus a mapped decoder, for store
// format-routing tests. The binary layout is a single varint under the
// profile tag.
func binIntStage(kind Kind) Stage[int] {
	st := intStage(kind)
	decode := func(r *BinReader, err error) (int, error) {
		if err != nil {
			return 0, err
		}
		v := r.Int()
		if err := r.Done(); err != nil {
			return 0, err
		}
		return v, nil
	}
	st.EncodeBinary = func(v int) ([]byte, error) {
		w := NewBinWriter(BinTagProfile, 16)
		w.Varint(int64(v))
		return w.Bytes(), nil
	}
	st.DecodeBinary = func(data []byte) (int, error) {
		r, err := NewBinReader(data, BinTagProfile)
		return decode(r, err)
	}
	st.DecodeMapped = func(data []byte) (int, error) {
		r, err := NewBinReaderBorrow(data, BinTagProfile)
		return decode(r, err)
	}
	return st
}

// TestStoreWritesBinaryForCapableStages pins the format routing: a binary
// store writes .bin for stages with a binary codec, a fresh runner warm-reads
// it, and no .json twin is written.
func TestStoreWritesBinaryForCapableStages(t *testing.T) {
	dir := t.TempDir()
	st := binIntStage(StageProfile)
	key := testKey("bin-write")

	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if store.WriteFormat() != FormatBinary {
		t.Fatalf("default write format = %v, want binary", store.WriteFormat())
	}
	if _, err := Run(NewRunner(store), st, key, func() (int, error) { return 99, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(store.Path(StageProfile, key, FormatBinary)); err != nil {
		t.Fatalf("binary artifact missing: %v", err)
	}
	if _, err := os.Stat(store.Path(StageProfile, key, FormatJSON)); !os.IsNotExist(err) {
		t.Fatalf("unexpected JSON twin: %v", err)
	}

	// A fresh runner over the same directory warm-reads the binary artifact.
	store2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewRunner(store2)
	v, err := Run(warm, st, key, func() (int, error) { t.Fatal("recompute on warm read"); return 0, nil })
	if err != nil || v != 99 {
		t.Fatalf("warm read = %d, %v", v, err)
	}
	if !warm.Manifest().AllHits() {
		t.Error("warm manifest reports misses")
	}
}

// TestRunnerReadsLegacyJSONArtifact is the fallback direction: an artifact
// written by a JSON-format store (or an older build) must be a disk hit for a
// binary-preferring store, not a recompute.
func TestRunnerReadsLegacyJSONArtifact(t *testing.T) {
	dir := t.TempDir()
	st := binIntStage(StageProfile)
	key := testKey("legacy-json")

	jsonStore, err := OpenWithFormat(dir, FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(NewRunner(jsonStore), st, key, func() (int, error) { return 17, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(jsonStore.Path(StageProfile, key, FormatJSON)); err != nil {
		t.Fatalf("JSON artifact missing: %v", err)
	}

	binStore, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewRunner(binStore)
	v, err := Run(warm, st, key, func() (int, error) { t.Fatal("recompute despite JSON artifact"); return 0, nil })
	if err != nil || v != 17 {
		t.Fatalf("fallback read = %d, %v", v, err)
	}
	if !warm.Manifest().AllHits() {
		t.Error("fallback read not recorded as a hit")
	}
}

// TestRunnerCorruptBinaryArtifact pins the damage policy: a truncated or
// corrupt binary artifact is a cache miss (recompute, overwrite), never an
// error — unless a valid JSON fallback exists, in which case it is a hit.
func TestRunnerCorruptBinaryArtifact(t *testing.T) {
	st := binIntStage(StageProfile)

	t.Run("no fallback recomputes", func(t *testing.T) {
		store, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		key := testKey("corrupt-bin")
		valid, err := st.EncodeBinary(123)
		if err != nil {
			t.Fatal(err)
		}
		for i, bad := range [][]byte{
			valid[:4],                      // cut inside the magic
			valid[:len(valid)-1],           // cut inside the payload
			[]byte("CTDB\xff\xff garbage"), // wrong version
			{},                             // empty file
		} {
			if err := store.Put(StageProfile, key, bad, FormatBinary); err != nil {
				t.Fatal(err)
			}
			computes := 0
			v, err := Run(NewRunner(store), st, key, func() (int, error) { computes++; return 55, nil })
			if err != nil || v != 55 || computes != 1 {
				t.Fatalf("case %d: v=%d computes=%d err=%v", i, v, computes, err)
			}
			// The recompute overwrote the damaged artifact.
			data, format, ok, err := store.Get(StageProfile, key)
			if err != nil || !ok || format != FormatBinary {
				t.Fatalf("case %d: artifact after recompute ok=%v format=%v err=%v", i, ok, format, err)
			}
			if got, err := st.DecodeBinary(data); err != nil || got != 55 {
				t.Fatalf("case %d: rewritten artifact decodes to %d, %v", i, got, err)
			}
		}
	})

	t.Run("json fallback hits", func(t *testing.T) {
		store, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		key := testKey("corrupt-bin-with-json")
		if err := store.Put(StageProfile, key, []byte("CTDB truncated"), FormatBinary); err != nil {
			t.Fatal(err)
		}
		jdata, err := json.Marshal(31)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Put(StageProfile, key, jdata, FormatJSON); err != nil {
			t.Fatal(err)
		}
		warm := NewRunner(store)
		v, err := Run(warm, st, key, func() (int, error) { t.Fatal("recompute despite JSON fallback"); return 0, nil })
		if err != nil || v != 31 {
			t.Fatalf("fallback = %d, %v", v, err)
		}
		if !warm.Manifest().AllHits() {
			t.Error("fallback read not recorded as a hit")
		}
	})
}

// TestStoreConcurrentPuts hammers one store from many goroutines — same
// shard, distinct keys, plus racing writers on one shared key — and then
// requires every artifact to read back complete. Run under -race (make ci)
// this also gates the shard-directory cache and buffer pool for data races.
func TestStoreConcurrentPuts(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const writers = 16
	shared := testKey("shared")
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := testKey("concurrent", fmt.Sprint(w))
			payload := []byte(fmt.Sprintf("artifact-%02d", w))
			for i := 0; i < 20; i++ {
				if err := store.Put(StageRecording, key, payload, FormatBinary); err != nil {
					t.Error(err)
					return
				}
				// Racing writers of identical bytes on one key: atomic
				// temp+rename means readers never observe a torn file.
				if err := store.Put(StageRecording, shared, []byte("shared-bytes"), FormatBinary); err != nil {
					t.Error(err)
					return
				}
				if data, _, ok, err := store.Get(StageRecording, shared); err != nil || !ok || string(data) != "shared-bytes" {
					t.Errorf("torn shared read: %q ok=%v err=%v", data, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		key := testKey("concurrent", fmt.Sprint(w))
		data, _, ok, err := store.Get(StageRecording, key)
		if err != nil || !ok || string(data) != fmt.Sprintf("artifact-%02d", w) {
			t.Fatalf("writer %d: %q ok=%v err=%v", w, data, ok, err)
		}
	}
}

// TestStoreShardDirCaching pins the MkdirAll caching contract: repeated Puts
// into one shard keep working (the second sees the remembered directory), and
// shards are physically distinct per key prefix.
func TestStoreShardDirCaching(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("shard-cache")
	for i := 0; i < 3; i++ {
		if err := store.Put(StageSolve, key, []byte(fmt.Sprint(i)), FormatJSON); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	data, _, ok, err := store.Get(StageSolve, key)
	if err != nil || !ok || string(data) != "2" {
		t.Fatalf("after rewrites: %q ok=%v err=%v", data, ok, err)
	}
	// Distinct key prefixes land in distinct shard directories.
	other := testKey("a", "different", "artifact")
	if err := store.Put(StageSolve, other, []byte("x"), FormatJSON); err != nil {
		t.Fatal(err)
	}
	if string(key[:2]) != string(other[:2]) {
		d1 := store.Path(StageSolve, key, FormatJSON)
		d2 := store.Path(StageSolve, other, FormatJSON)
		if d1 == d2 {
			t.Error("distinct keys share one artifact path")
		}
	}
}
