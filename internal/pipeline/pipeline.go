package pipeline

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// Stage describes one typed pipeline stage: its kind and the codec that
// round-trips its artifact through the store. Encode must be deterministic —
// encode(decode(encode(x))) == encode(x) — so content fingerprints are stable
// across processes; every codec in this repository uses struct-ordered JSON,
// which satisfies this.
//
// Stages whose artifacts are large (recordings, profiles, solve results) may
// additionally provide a binary codec. When the store prefers binary
// (the default), such artifacts are written length-prefixed binary instead
// of JSON; the JSON codec remains the versioned fallback, and the runner
// reads both formats. EncodeBinary/DecodeBinary must round-trip to values
// identical to the JSON codec's — asserted by parity property tests.
//
// Decode and DecodeBinary are handed buffers the runner may reuse for the
// next read: they must not retain or alias their input past the call.
// DecodeMapped is the one exception — see its comment.
type Stage[T any] struct {
	Kind   Kind
	Encode func(T) ([]byte, error)
	Decode func([]byte) (T, error)

	// EncodeBinary/DecodeBinary, when non-nil, are the stage's binary codec.
	EncodeBinary func(T) ([]byte, error)
	DecodeBinary func([]byte) (T, error)

	// DecodeMapped, when non-nil, is the stage's zero-copy binary decoder:
	// the runner hands it an mmap'd page-cache-backed view of the artifact
	// (never a pooled buffer) and the decoded value MAY alias it. The
	// mapping then lives exactly as long as the decoded value — which the
	// runner's slot cache retains for the process lifetime, so nothing is
	// ever unmapped underneath a borrowed slice. Must decode to values
	// byte-identical to DecodeBinary's (asserted by property tests).
	DecodeMapped func([]byte) (T, error)
}

// slot is the in-memory singleflight cell for one (kind, key): concurrent
// requests for the same artifact block on one computation while other keys
// proceed in parallel. The resolved artifact stays in the slot, so repeated
// in-process requests are memory hits.
//
// Each in-flight slot runs its computation under a private context that is
// cancelled only when every caller interested in the result has cancelled —
// one disconnected client never aborts work another client still waits on. A
// slot whose computation ends in a context error is removed from the runner,
// so the next request for the same key computes afresh instead of replaying a
// stale cancellation.
type slot struct {
	done chan struct{} // closed when val/err are final

	val any
	err error

	// waiters counts callers whose context is still alive; cancel aborts the
	// computation context once it drops to zero. Both are guarded by the
	// runner's mutex. finished marks the slot resolved (also under the
	// runner's mutex, set before done is closed).
	waiters  int
	cancel   context.CancelFunc
	finished bool
}

// Runner executes pipeline stages against an optional artifact store,
// deduplicating concurrent work and recording every request in the run
// manifest. A nil-store Runner is a pure in-memory cache (the default for
// library use); with a store, artifacts persist across processes. A Runner
// is safe for concurrent use.
type Runner struct {
	store *Store
	man   *Manifest

	mu    sync.Mutex
	slots map[string]*slot
}

// NewRunner returns a runner over the given store; store may be nil for a
// memory-only runner.
func NewRunner(store *Store) *Runner {
	return &Runner{
		store: store,
		man:   NewManifest(),
		slots: make(map[string]*slot),
	}
}

// Store returns the backing store (nil for memory-only runners).
func (r *Runner) Store() *Store { return r.store }

// Manifest returns the run manifest.
func (r *Runner) Manifest() *Manifest { return r.man }

// Run resolves the artifact for (stage, key): from this run's memory, then
// from the store, and only then by computing it (persisting the result when
// a store is attached). All callers of the same key share one resolution.
func Run[T any](r *Runner, st Stage[T], key Key, compute func() (T, error)) (T, error) {
	return RunCtx(context.Background(), r, st, key, func(context.Context) (T, error) {
		return compute()
	})
}

// isCtxErr reports whether err is a context cancellation or deadline error
// (possibly wrapped) — the class of failures that say nothing about the
// artifact itself and must not be cached.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// RunCtx is Run with caller cancellation: a caller whose context ends while
// waiting unblocks immediately with ctx.Err(), and the computation itself is
// aborted only once every caller for the key has gone away (its context is
// derived from the runner, not from any one request). Results that fail with
// a context error are not retained — the next request recomputes.
func RunCtx[T any](ctx context.Context, r *Runner, st Stage[T], key Key, compute func(context.Context) (T, error)) (T, error) {
	for {
		v, err := runOnce(ctx, r, st, key, compute)
		// A caller that attached to a computation just as its last
		// interested party cancelled inherits that cancellation; if this
		// caller itself is still live, the slot is gone by now (it is
		// deleted before waiters are released) and a retry computes afresh.
		if isCtxErr(err) && ctx.Err() == nil {
			continue
		}
		return v, err
	}
}

func runOnce[T any](ctx context.Context, r *Runner, st Stage[T], key Key, compute func(context.Context) (T, error)) (T, error) {
	var zero T
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	id := string(st.Kind) + "/" + string(key)

	r.mu.Lock()
	s, ok := r.slots[id]
	if ok && s.finished {
		r.mu.Unlock()
		r.man.addMemHit(st.Kind, key)
		if s.err != nil {
			return zero, s.err
		}
		return slotValue[T](s, st, key)
	}
	leader := false
	if !ok {
		cctx, cancel := context.WithCancel(context.Background())
		s = &slot{done: make(chan struct{}), cancel: cancel}
		r.slots[id] = s
		leader = true
		go func() {
			v, err := resolve(cctx, r, st, key, compute)
			r.mu.Lock()
			s.val, s.err, s.finished = v, err, true
			if isCtxErr(err) {
				// A cancelled computation says nothing about the artifact:
				// drop the slot so the next caller recomputes.
				delete(r.slots, id)
			}
			r.mu.Unlock()
			cancel()
			close(s.done)
		}()
	}
	s.waiters++
	r.mu.Unlock()

	select {
	case <-s.done:
		if !leader {
			// Served from the in-memory slot (possibly after blocking on a
			// concurrent resolution of the same key).
			r.man.addMemHit(st.Kind, key)
		}
		if s.err != nil {
			return zero, s.err
		}
		return slotValue[T](s, st, key)
	case <-ctx.Done():
		r.mu.Lock()
		s.waiters--
		if s.waiters == 0 && !s.finished {
			s.cancel()
		}
		r.mu.Unlock()
		return zero, ctx.Err()
	}
}

// slotValue extracts the typed artifact from a resolved slot.
func slotValue[T any](s *slot, st Stage[T], key Key) (T, error) {
	v, ok := s.val.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("pipeline: stage %s key %s resolved to %T", st.Kind, key, s.val)
	}
	return v, nil
}

func resolve[T any](ctx context.Context, r *Runner, st Stage[T], key Key, compute func(context.Context) (T, error)) (T, error) {
	var artifact string
	if r.store != nil {
		if v, path, ok := loadArtifact(r, st, key); ok {
			r.man.addDiskHit(st.Kind, key, path)
			return v, nil
		}
		// No artifact, or every stored encoding was corrupt/stale: fall
		// through to a recompute, which overwrites it.
	}

	// Stage boundary: a request cancelled while queued behind the store
	// lookup never starts the expensive computation at all.
	if err := ctx.Err(); err != nil {
		var zero T
		return zero, err
	}

	start := time.Now()
	v, err := compute(ctx)
	ms := float64(time.Since(start).Microseconds()) / 1e3
	if err != nil {
		var zero T
		r.man.addMiss(st.Kind, key, ms, "", r.store != nil)
		return zero, err
	}
	if r.store != nil {
		format, encode := FormatJSON, st.Encode
		if r.store.write == FormatBinary && st.EncodeBinary != nil {
			format, encode = FormatBinary, st.EncodeBinary
		}
		if data, eerr := encode(v); eerr == nil {
			artifact = r.store.Path(st.Kind, key, format)
			if perr := r.store.Put(st.Kind, key, data, format); perr != nil {
				artifact = "" // computed fine, persisting failed; stay usable
			}
		}
	}
	r.man.addMiss(st.Kind, key, ms, artifact, r.store != nil)
	return v, nil
}

// loadArtifact reads and decodes the stored artifact for (stage, key),
// trying the preferred stored format first. Stages with a mapped decoder
// read zero-copy through an mmap'd view when the store allows it; everything
// else goes through a pooled buffer. A binary artifact that fails to decode
// (truncated, corrupt, wrong version or tag) is deleted — it would otherwise
// be retried and fail on every warm read — and the JSON artifact, when one
// exists, serves as the fallback; when everything fails the caller treats
// the key as a miss and recomputes. A damaged cache entry can cost work,
// never correctness.
func loadArtifact[T any](r *Runner, st Stage[T], key Key) (v T, path string, ok bool) {
	if st.DecodeMapped != nil && r.store.MappedReads() {
		if v, path, ok, handled := loadArtifactMapped(r, st, key); handled {
			return v, path, ok
		}
		// The mapped binary was corrupt (and has been deleted): retry below
		// against whatever remains, normally the JSON fallback.
	}
	buf := r.store.acquireBuf()
	defer func() { r.store.releaseBuf(buf) }()
	data, format, found, err := r.store.getAppend(buf, st.Kind, key)
	buf = data // keep whatever capacity the read grew
	if err != nil || !found {
		return v, "", false
	}
	if format == FormatBinary {
		if st.DecodeBinary != nil {
			if dv, derr := st.DecodeBinary(data); derr == nil {
				return dv, r.store.Path(st.Kind, key, FormatBinary), true
			}
			// Corrupt or stale-format binary: delete it so warm reads stop
			// paying a doomed decode before every JSON fallback.
			os.Remove(r.store.Path(st.Kind, key, FormatBinary))
		}
		jpath := r.store.Path(st.Kind, key, FormatJSON)
		jdata, jfound, jerr := readAppend(buf, jpath)
		buf = jdata
		if jerr != nil || !jfound {
			return v, "", false
		}
		data, format = jdata, FormatJSON
		path = jpath
	} else {
		path = r.store.Path(st.Kind, key, FormatJSON)
	}
	if dv, derr := st.Decode(data); derr == nil {
		return dv, path, true
	}
	return v, "", false
}

// loadArtifactMapped is loadArtifact's zero-copy front: the artifact is
// mmap'd and decoded in place, and on success the mapping is deliberately
// never released — the decoded value aliases it and lives in the runner's
// slot cache for the process lifetime, backed by the page cache rather than
// the heap. handled is false only when a corrupt mapped binary was deleted
// and the caller should retry the copying path (for the JSON fallback).
func loadArtifactMapped[T any](r *Runner, st Stage[T], key Key) (v T, path string, ok, handled bool) {
	m, format, found, err := r.store.ReadMapped(st.Kind, key)
	if err != nil || !found {
		return v, "", false, true
	}
	if format == FormatBinary {
		if dv, derr := st.DecodeMapped(m.Bytes()); derr == nil {
			return dv, r.store.Path(st.Kind, key, FormatBinary), true, true
		}
		m.Release()
		os.Remove(r.store.Path(st.Kind, key, FormatBinary))
		return v, "", false, false
	}
	dv, derr := st.Decode(m.Bytes())
	m.Release() // JSON decoders never alias their input
	if derr == nil {
		return dv, r.store.Path(st.Kind, key, FormatJSON), true, true
	}
	return v, "", false, true
}

// Observe times an uncached stage (filter, formulate) and records it in the
// manifest. These stages only run when the enclosing solve misses, so a warm
// run's manifest contains no entries for them.
func (r *Runner) Observe(kind Kind, key Key, fn func() error) error {
	start := time.Now()
	err := fn()
	r.man.addMiss(kind, key, float64(time.Since(start).Microseconds())/1e3, "", false)
	return err
}
