package pipeline

import (
	"fmt"
	"sync"
	"time"
)

// Stage describes one typed pipeline stage: its kind and the codec that
// round-trips its artifact through the store. Encode must be deterministic —
// encode(decode(encode(x))) == encode(x) — so content fingerprints are stable
// across processes; every codec in this repository uses struct-ordered JSON,
// which satisfies this.
type Stage[T any] struct {
	Kind   Kind
	Encode func(T) ([]byte, error)
	Decode func([]byte) (T, error)
}

// slot is the in-memory singleflight cell for one (kind, key): concurrent
// requests for the same artifact block on one computation while other keys
// proceed in parallel. The resolved artifact stays in the slot, so repeated
// in-process requests are memory hits.
type slot struct {
	once sync.Once
	val  any
	err  error
}

// Runner executes pipeline stages against an optional artifact store,
// deduplicating concurrent work and recording every request in the run
// manifest. A nil-store Runner is a pure in-memory cache (the default for
// library use); with a store, artifacts persist across processes. A Runner
// is safe for concurrent use.
type Runner struct {
	store *Store
	man   *Manifest

	mu    sync.Mutex
	slots map[string]*slot
}

// NewRunner returns a runner over the given store; store may be nil for a
// memory-only runner.
func NewRunner(store *Store) *Runner {
	return &Runner{
		store: store,
		man:   NewManifest(),
		slots: make(map[string]*slot),
	}
}

// Store returns the backing store (nil for memory-only runners).
func (r *Runner) Store() *Store { return r.store }

// Manifest returns the run manifest.
func (r *Runner) Manifest() *Manifest { return r.man }

// Run resolves the artifact for (stage, key): from this run's memory, then
// from the store, and only then by computing it (persisting the result when
// a store is attached). All callers of the same key share one resolution.
func Run[T any](r *Runner, st Stage[T], key Key, compute func() (T, error)) (T, error) {
	id := string(st.Kind) + "/" + string(key)
	r.mu.Lock()
	s, ok := r.slots[id]
	if !ok {
		s = &slot{}
		r.slots[id] = s
	}
	r.mu.Unlock()

	executed := false
	s.once.Do(func() {
		executed = true
		s.val, s.err = resolve(r, st, key, compute)
	})
	if !executed {
		// Served from the in-memory slot (possibly after blocking on a
		// concurrent resolution of the same key).
		r.man.addMemHit(st.Kind, key)
	}
	if s.err != nil {
		var zero T
		return zero, s.err
	}
	v, ok := s.val.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("pipeline: stage %s key %s resolved to %T", st.Kind, key, s.val)
	}
	return v, nil
}

func resolve[T any](r *Runner, st Stage[T], key Key, compute func() (T, error)) (T, error) {
	var artifact string
	if r.store != nil {
		artifact = r.store.Path(st.Kind, key)
		if data, ok, err := r.store.Get(st.Kind, key); err == nil && ok {
			if v, derr := st.Decode(data); derr == nil {
				r.man.addDiskHit(st.Kind, key, artifact)
				return v, nil
			}
			// A corrupt or stale-format artifact falls through to a
			// recompute, which overwrites it.
		}
	}

	start := time.Now()
	v, err := compute()
	ms := float64(time.Since(start).Microseconds()) / 1e3
	if err != nil {
		var zero T
		r.man.addMiss(st.Kind, key, ms, "", r.store != nil)
		return zero, err
	}
	if r.store != nil {
		if data, eerr := st.Encode(v); eerr == nil {
			if perr := r.store.Put(st.Kind, key, data); perr != nil {
				artifact = "" // computed fine, persisting failed; stay usable
			}
		} else {
			artifact = ""
		}
	}
	r.man.addMiss(st.Kind, key, ms, artifact, r.store != nil)
	return v, nil
}

// Observe times an uncached stage (filter, formulate) and records it in the
// manifest. These stages only run when the enclosing solve misses, so a warm
// run's manifest contains no entries for them.
func (r *Runner) Observe(kind Kind, key Key, fn func() error) error {
	start := time.Now()
	err := fn()
	r.man.addMiss(kind, key, float64(time.Since(start).Microseconds())/1e3, "", false)
	return err
}
