package pipeline

import (
	"fmt"
	"os"
	"path/filepath"
)

// Store is a content-addressed on-disk artifact store. Artifacts live under
//
//	<dir>/<kind>/<key[:2]>/<key>.json
//
// sharded by the first key byte so directories stay small at production
// scale. Writes are atomic (temp file + rename), so concurrent processes
// sharing a cache directory never observe torn artifacts; a lost race simply
// rewrites identical bytes.
type Store struct {
	dir string
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("pipeline: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pipeline: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the artifact path for (kind, key) without touching the disk.
func (s *Store) Path(kind Kind, key Key) string {
	return filepath.Join(s.dir, string(kind), string(key[:2]), string(key)+".json")
}

// Get returns the artifact bytes and whether they were present.
func (s *Store) Get(kind Kind, key Key) ([]byte, bool, error) {
	if err := key.Validate(); err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(s.Path(kind, key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("pipeline: get %s/%s: %w", kind, key, err)
	}
	return data, true, nil
}

// Put writes the artifact atomically.
func (s *Store) Put(kind Kind, key Key, data []byte) error {
	if err := key.Validate(); err != nil {
		return err
	}
	path := s.Path(kind, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("pipeline: put %s/%s: %w", kind, key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("pipeline: put %s/%s: %w", kind, key, err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("pipeline: put %s/%s: %w", kind, key, werr)
		}
		return fmt.Errorf("pipeline: put %s/%s: %w", kind, key, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("pipeline: put %s/%s: %w", kind, key, err)
	}
	return nil
}
