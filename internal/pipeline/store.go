package pipeline

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Format identifies the on-disk encoding of one artifact file.
type Format uint8

const (
	// FormatJSON is the original artifact encoding (<key>.json) — the
	// versioned fallback every stage keeps. Stores always read it.
	FormatJSON Format = iota
	// FormatBinary is the length-prefixed binary encoding (<key>.bin) used
	// for the large artifact kinds when the stage provides a binary codec.
	FormatBinary
)

// String returns the codec name as spelled by the -cache-codec flag.
func (f Format) String() string {
	if f == FormatBinary {
		return "binary"
	}
	return "json"
}

// ext returns the artifact file extension for the format.
func (f Format) ext() string {
	if f == FormatBinary {
		return ".bin"
	}
	return ".json"
}

// ParseFormat parses a -cache-codec flag value.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "binary":
		return FormatBinary, nil
	case "json":
		return FormatJSON, nil
	}
	return FormatJSON, fmt.Errorf("pipeline: unknown cache codec %q (want binary or json)", s)
}

// Store is a content-addressed on-disk artifact store. Artifacts live under
//
//	<dir>/<kind>/<key[:2]>/<key>.bin        (binary, preferred for large kinds)
//	<dir>/<kind>/<key[:2]>/<key>.json       (JSON, the versioned fallback)
//
// sharded by the first key byte so directories stay small at production
// scale. Writes are atomic (temp file + rename), so concurrent processes
// sharing a cache directory never observe torn artifacts; a lost race simply
// rewrites identical bytes.
//
// The store is allocation-lean on the warm path: shard directories are
// created once and remembered (every later Put is one write + one rename,
// no MkdirAll), and reads can go through pooled buffers (getAppend) so a
// steady-state artifact load allocates nothing beyond what the decoder
// keeps. A Store is safe for concurrent use.
type Store struct {
	dir   string
	write Format // preferred write format for stages with a binary codec

	// dirs remembers shard directories already created by this process, so
	// Put calls os.MkdirAll once per (kind, key[:2]) instead of once per
	// write. Keys are relative "kind/shard" strings.
	dirs sync.Map

	// bufs pools read buffers for getAppend. Entries are *[]byte so Put/Get
	// of the pool itself does not allocate.
	bufs sync.Pool

	// mapped enables ReadMapped-backed zero-copy reads in the runner for
	// stages with a mapped decoder. On by default where mmap exists.
	mapped bool

	// atimes records last-access seconds per artifact, the LRU signal
	// Compact evicts by. Second granularity keeps the steady state to a
	// read-locked map lookup; SaveAtimeIndex persists it to the sidecar.
	atimes atimeTable

	// batch, when enabled, coalesces Puts into per-shard directory-sync
	// batches; nil means every Put writes through immediately.
	batch *writeBatcher

	// Eviction gauges, exported on /statsz: lifetime totals for this
	// process's Compact calls.
	compactions      atomic.Int64
	evictedArtifacts atomic.Int64
	evictedBytes     atomic.Int64
}

// Open creates (if needed) and returns the store rooted at dir, writing
// binary artifacts for stages that support them.
func Open(dir string) (*Store, error) {
	return OpenWithFormat(dir, FormatBinary)
}

// OpenWithFormat is Open with an explicit preferred write format. A
// FormatJSON store still reads binary artifacts written earlier (and vice
// versa); the format only selects what new artifacts are written as.
func OpenWithFormat(dir string, write Format) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("pipeline: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pipeline: open store: %w", err)
	}
	return &Store{dir: dir, write: write, mapped: mmapSupported}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// WriteFormat returns the store's preferred write format.
func (s *Store) WriteFormat() Format { return s.write }

// SetMappedReads toggles the zero-copy mapped read mode the runner uses for
// stages with a mapped decoder. It defaults to on where mmap exists; turning
// it off forces every read through the copying pooled-buffer path.
func (s *Store) SetMappedReads(on bool) { s.mapped = on && mmapSupported }

// MappedReads reports whether mapped reads are enabled.
func (s *Store) MappedReads() bool { return s.mapped }

// touch records an artifact access at second granularity — the LRU signal
// Compact evicts by. The steady state (same artifact, same second) is a
// read-locked map lookup with no allocation, so hot read paths can afford
// it.
func (s *Store) touch(kind Kind, key Key) {
	now := time.Now().Unix()
	t := &s.atimes
	t.mu.RLock()
	cur, ok := t.m[kind][key]
	t.mu.RUnlock()
	if ok && cur >= now {
		return
	}
	t.mu.Lock()
	if t.m == nil {
		t.m = make(map[Kind]map[Key]int64)
	}
	km := t.m[kind]
	if km == nil {
		km = make(map[Key]int64)
		t.m[kind] = km
	}
	if km[key] < now {
		km[key] = now
	}
	t.mu.Unlock()
}

// atimeTable is the in-memory half of the access index: last-access unix
// seconds per (kind, key), merged with the on-disk sidecar by Compact.
type atimeTable struct {
	mu sync.RWMutex
	m  map[Kind]map[Key]int64
}

// Path returns the artifact path for (kind, key) in the given format without
// touching the disk.
func (s *Store) Path(kind Kind, key Key, f Format) string {
	return filepath.Join(s.dir, string(kind), string(key[:2]), string(key)+f.ext())
}

// Get returns the artifact bytes, the format they were stored in, and
// whether they were present. Binary artifacts are preferred when both
// formats exist. The returned slice is freshly allocated and owned by the
// caller; the runner's hot path uses getAppend with pooled buffers instead.
func (s *Store) Get(kind Kind, key Key) ([]byte, Format, bool, error) {
	if err := key.Validate(); err != nil {
		return nil, FormatJSON, false, err
	}
	if data, f, ok := s.batch.getPending(kind, key); ok {
		return append([]byte(nil), data...), f, true, nil
	}
	for _, f := range [...]Format{FormatBinary, FormatJSON} {
		data, err := os.ReadFile(s.Path(kind, key, f))
		if err == nil {
			s.touch(kind, key)
			return data, f, true, nil
		}
		if !os.IsNotExist(err) {
			return nil, f, false, fmt.Errorf("pipeline: get %s/%s: %w", kind, key, err)
		}
	}
	return nil, FormatJSON, false, nil
}

// acquireBuf returns a pooled read buffer (length 0, whatever capacity it
// grew to); pair with releaseBuf once the decoded value no longer references
// it. Decoders must copy what they keep — see Stage.
func (s *Store) acquireBuf() []byte {
	if p, ok := s.bufs.Get().(*[]byte); ok {
		return (*p)[:0]
	}
	return make([]byte, 0, 64<<10)
}

func (s *Store) releaseBuf(buf []byte) {
	buf = buf[:0]
	s.bufs.Put(&buf)
}

// getAppend reads the artifact into buf (growing it as needed) and returns
// the filled slice, its format, and whether it was present. One file-handle
// allocation aside, a warm read whose buffer has already grown allocates
// nothing.
func (s *Store) getAppend(buf []byte, kind Kind, key Key) ([]byte, Format, bool, error) {
	if err := key.Validate(); err != nil {
		return buf, FormatJSON, false, err
	}
	if data, f, ok := s.batch.getPending(kind, key); ok {
		return append(buf[:0], data...), f, true, nil
	}
	for _, f := range [...]Format{FormatBinary, FormatJSON} {
		data, ok, err := readAppend(buf, s.Path(kind, key, f))
		if err != nil {
			return buf, f, false, fmt.Errorf("pipeline: get %s/%s: %w", kind, key, err)
		}
		if ok {
			s.touch(kind, key)
			return data, f, true, nil
		}
	}
	return buf, FormatJSON, false, nil
}

// readAppend reads path into buf, reusing its capacity.
func readAppend(buf []byte, path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return buf, false, nil
	}
	if err != nil {
		return buf, false, err
	}
	defer f.Close()
	if st, err := f.Stat(); err == nil {
		if need := int(st.Size()); cap(buf) < need {
			buf = make([]byte, 0, need)
		}
	}
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := f.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, true, nil
		}
		if err != nil {
			return buf, false, err
		}
	}
}

// shardDir returns the shard directory for (kind, key), creating it on the
// first Put this process issues for it. Lost creation races are benign —
// MkdirAll succeeds on an existing directory — so the sync.Map needs no
// singleflight.
func (s *Store) shardDir(kind Kind, key Key) (string, error) {
	rel := string(kind) + "/" + string(key[:2])
	dir := filepath.Join(s.dir, string(kind), string(key[:2]))
	if _, ok := s.dirs.Load(rel); ok {
		return dir, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	s.dirs.Store(rel, struct{}{})
	return dir, nil
}

// Put writes the artifact in the given format. With write batching enabled
// the bytes are retained and flushed with the next per-shard batch (bounded
// by the batcher's deadline; Get-type reads see pending artifacts
// immediately); otherwise the write happens now. Either way the on-disk
// write is atomic: temp file + rename, so concurrent processes sharing a
// cache directory never observe torn artifacts.
func (s *Store) Put(kind Kind, key Key, data []byte, f Format) error {
	if err := key.Validate(); err != nil {
		return err
	}
	if b := s.batch; b != nil {
		return b.put(kind, key, data, f)
	}
	return s.putNow(kind, key, data, f)
}

// putNow writes the artifact atomically in the given format. The shard
// directory is created on the process's first write to it and remembered, so
// steady-state Puts are one temp-file write plus one rename.
func (s *Store) putNow(kind Kind, key Key, data []byte, f Format) error {
	dir, err := s.shardDir(kind, key)
	if err != nil {
		return fmt.Errorf("pipeline: put %s/%s: %w", kind, key, err)
	}
	path := filepath.Join(dir, string(key)+f.ext())
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("pipeline: put %s/%s: %w", kind, key, err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("pipeline: put %s/%s: %w", kind, key, werr)
		}
		return fmt.Errorf("pipeline: put %s/%s: %w", kind, key, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("pipeline: put %s/%s: %w", kind, key, err)
	}
	return nil
}
