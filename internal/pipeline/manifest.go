package pipeline

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
)

// StageRecord is the manifest entry for one (stage, key) pair, aggregating
// every request the run made for that artifact.
type StageRecord struct {
	Stage Kind   `json:"stage"`
	Key   string `json:"key"`
	// Misses counts computations (cold executions of the stage).
	Misses int `json:"misses"`
	// DiskHits counts loads from the artifact store; MemHits counts requests
	// satisfied by this run's in-memory slot (including callers that blocked
	// on a concurrent computation of the same key).
	DiskHits int `json:"disk_hits"`
	MemHits  int `json:"mem_hits"`
	// ComputeMS is the total wall time spent computing (misses only).
	ComputeMS float64 `json:"compute_ms"`
	// Artifact is the store path of the cached artifact, empty when the run
	// had no store or the stage is not cached (filter/formulate are recorded
	// for accounting but persist nothing of their own — the solve artifact
	// subsumes them).
	Artifact string `json:"artifact,omitempty"`
	// Cached is false for stages that are recorded but never persisted.
	Cached bool `json:"cached"`
}

// KindStats aggregates a stage kind across all keys.
type KindStats struct {
	Misses    int     `json:"misses"`
	DiskHits  int     `json:"disk_hits"`
	MemHits   int     `json:"mem_hits"`
	ComputeMS float64 `json:"compute_ms"`
}

// Manifest records every stage execution of one pipeline run: hit/miss
// accounting, wall time, and artifact keys. It is safe for concurrent use.
type Manifest struct {
	mu      sync.Mutex
	records map[string]*StageRecord
}

// NewManifest returns an empty manifest.
func NewManifest() *Manifest {
	return &Manifest{records: make(map[string]*StageRecord)}
}

func (m *Manifest) record(kind Kind, key Key) *StageRecord {
	id := string(kind) + "/" + string(key)
	r, ok := m.records[id]
	if !ok {
		r = &StageRecord{Stage: kind, Key: string(key)}
		m.records[id] = r
	}
	return r
}

func (m *Manifest) addMiss(kind Kind, key Key, ms float64, artifact string, cached bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.record(kind, key)
	r.Misses++
	r.ComputeMS += ms
	r.Cached = r.Cached || cached
	if artifact != "" {
		r.Artifact = artifact
	}
}

func (m *Manifest) addDiskHit(kind Kind, key Key, artifact string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.record(kind, key)
	r.DiskHits++
	r.Cached = true
	if artifact != "" {
		r.Artifact = artifact
	}
}

func (m *Manifest) addMemHit(kind Kind, key Key) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.record(kind, key).MemHits++
}

// Records returns the manifest entries sorted by (stage, key).
func (m *Manifest) Records() []StageRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]StageRecord, 0, len(m.records))
	for _, r := range m.records {
		out = append(out, *r)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Stage != out[b].Stage {
			return out[a].Stage < out[b].Stage
		}
		return out[a].Key < out[b].Key
	})
	return out
}

// Stats aggregates the manifest per stage kind.
func (m *Manifest) Stats() map[Kind]KindStats {
	stats := make(map[Kind]KindStats)
	for _, r := range m.Records() {
		s := stats[r.Stage]
		s.Misses += r.Misses
		s.DiskHits += r.DiskHits
		s.MemHits += r.MemHits
		s.ComputeMS += r.ComputeMS
		stats[r.Stage] = s
	}
	return stats
}

// AllHits reports whether every recorded stage was served from cache — the
// warm-run property the acceptance tests assert: zero profile collections,
// zero MILP solves.
func (m *Manifest) AllHits() bool {
	for _, r := range m.Records() {
		if r.Misses > 0 {
			return false
		}
	}
	return true
}

// manifestDoc is the JSON document layout.
type manifestDoc struct {
	Version int                `json:"version"`
	Summary map[Kind]KindStats `json:"summary"`
	Records []StageRecord      `json:"records"`
}

// WriteJSON renders the manifest.
func (m *Manifest) WriteJSON(w io.Writer) error {
	doc := manifestDoc{Version: 1, Summary: m.Stats(), Records: m.Records()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
