package pipeline

import (
	"bytes"
	"os"
	"reflect"
	"testing"
	"time"
	"unsafe"
)

// alignedCopy returns data copied into a buffer whose first byte sits on an
// 8-byte boundary (plus the same bytes at boundary+1 for the misaligned
// variant). Heap allocations are usually 8-aligned anyway; forcing it keeps
// the aliasing assertions deterministic.
func alignedCopy(data []byte, skew int) []byte {
	buf := make([]byte, len(data)+16)
	off := 0
	for uintptr(unsafe.Pointer(&buf[off]))%8 != 0 {
		off++
	}
	off += skew
	copy(buf[off:], data)
	return buf[off : off+len(data)]
}

// borrowFixture encodes one artifact exercising every aliasable run type.
func borrowFixture() (art []byte, u64 []uint64, u32 []uint32, fl []float64) {
	u64 = []uint64{0, 1, 1<<64 - 1, 0xdeadbeefcafe}
	u32 = []uint32{7, 0, 1<<32 - 1, 42, 9}
	fl = []float64{0, -1.5, 3.25e300, 1e-9}
	w := NewBinWriter(BinTagSolve, 256)
	w.Uvarint(99) // leading field so runs do not start at offset 6
	w.Uint64s(u64)
	w.Uint32s(u32)
	w.Pad8()
	w.FloatsRaw(fl)
	w.String("tail") // trailing field so aliased runs are interior
	return w.Bytes(), u64, u32, fl
}

func decodeBorrowFixture(t *testing.T, r *BinReader) (u64 []uint64, u32 []uint32, fl []float64) {
	t.Helper()
	if got := r.Uvarint(); got != 99 {
		t.Fatalf("leading field = %d", got)
	}
	u64 = r.Uint64s()
	u32 = r.Uint32s()
	r.Pad8()
	fl = r.FloatsBorrow(4)
	if got := r.String(); got != "tail" {
		t.Fatalf("trailing field = %q", got)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
	return u64, u32, fl
}

// sameBacking reports whether slice element 0 lives inside data.
func sameBacking[T any](vs []T, data []byte) bool {
	if len(vs) == 0 || len(data) == 0 {
		return false
	}
	p := uintptr(unsafe.Pointer(&vs[0]))
	lo := uintptr(unsafe.Pointer(&data[0]))
	return p >= lo && p < lo+uintptr(len(data))
}

// TestBinReaderBorrowAliases is the zero-copy contract: over an 8-aligned
// buffer on a little-endian host, borrow-mode word runs alias the input and
// decode to exactly what the copying reader produces.
func TestBinReaderBorrowAliases(t *testing.T) {
	art, wantU64, wantU32, wantFl := borrowFixture()
	data := alignedCopy(art, 0)

	cr, err := NewBinReader(data, BinTagSolve)
	if err != nil {
		t.Fatal(err)
	}
	cu64, cu32, cfl := decodeBorrowFixture(t, cr)

	br, err := NewBinReaderBorrow(data, BinTagSolve)
	if err != nil {
		t.Fatal(err)
	}
	bu64, bu32, bfl := decodeBorrowFixture(t, br)

	if !reflect.DeepEqual(bu64, wantU64) || !reflect.DeepEqual(bu32, wantU32) || !reflect.DeepEqual(bfl, wantFl) {
		t.Fatalf("borrow decode wrong:\nu64 %v\nu32 %v\nfl  %v", bu64, bu32, bfl)
	}
	if !reflect.DeepEqual(bu64, cu64) || !reflect.DeepEqual(bu32, cu32) || !reflect.DeepEqual(bfl, cfl) {
		t.Fatal("borrow and copy decodes disagree")
	}
	if sameBacking(cu64, data) || sameBacking(cu32, data) || sameBacking(cfl, data) {
		t.Error("copy-mode reader aliased its input")
	}
	if !hostLittleEndian {
		t.Skip("big-endian host: borrow mode copies by design")
	}
	if !sameBacking(bu64, data) {
		t.Error("borrow-mode Uint64s copied an aligned run")
	}
	if !sameBacking(bu32, data) {
		t.Error("borrow-mode Uint32s copied an aligned run")
	}
	if !sameBacking(bfl, data) {
		t.Error("borrow-mode FloatsBorrow copied an aligned run")
	}
}

// TestBinReaderBorrowMisalignedCopies skews the artifact off the 8-byte
// boundary: borrow mode must fall back to copying and still decode the exact
// same values. This is the safety net mmap never needs (mappings are
// page-aligned) but pending-batch reads and exotic platforms do.
func TestBinReaderBorrowMisalignedCopies(t *testing.T) {
	art, wantU64, wantU32, wantFl := borrowFixture()
	for skew := 1; skew < 8; skew++ {
		data := alignedCopy(art, skew)
		r, err := NewBinReaderBorrow(data, BinTagSolve)
		if err != nil {
			t.Fatal(err)
		}
		u64, u32, fl := decodeBorrowFixture(t, r)
		if !reflect.DeepEqual(u64, wantU64) || !reflect.DeepEqual(u32, wantU32) || !reflect.DeepEqual(fl, wantFl) {
			t.Fatalf("skew %d: misaligned borrow decode wrong", skew)
		}
		if sameBacking(u64, data) || sameBacking(fl, data) {
			t.Fatalf("skew %d: misaligned run aliased anyway", skew)
		}
	}
}

// TestBinReaderPad8Canonical holds padding to being canonical: nonzero pad
// bytes and truncation inside the pad are framing errors, not ignored slack.
func TestBinReaderPad8Canonical(t *testing.T) {
	// Header (6 bytes) + count uvarint (1 byte) leaves the cursor at 7, so
	// Uint64s pads one zero byte before the word run.
	w := NewBinWriter(BinTagSolve, 32)
	w.Uint64s([]uint64{5})
	art := append([]byte(nil), w.Bytes()...)
	if len(art) != 16 {
		t.Fatalf("fixture is %d bytes, want 16 (1 pad byte at offset 7)", len(art))
	}
	art[7] = 0xAA
	r, err := NewBinReader(art, BinTagSolve)
	if err != nil {
		t.Fatal(err)
	}
	r.Uint64s()
	if r.Err() == nil {
		t.Error("nonzero pad byte accepted")
	}
}

// TestReadMapped covers the mapped read front door: round-trip bytes, binary
// preference, touch-on-read, the pending-batch copy path, and Release being
// idempotent and nil-safe.
func TestReadMapped(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("mapped")
	if m, _, ok, err := s.ReadMapped(StageProfile, key); err != nil || ok || m != nil {
		t.Fatalf("empty store: m=%v ok=%v err=%v", m, ok, err)
	}
	payload := bytes.Repeat([]byte("mapped artifact "), 64)
	if err := s.Put(StageProfile, key, payload, FormatBinary); err != nil {
		t.Fatal(err)
	}
	m, f, ok, err := s.ReadMapped(StageProfile, key)
	if err != nil || !ok || f != FormatBinary {
		t.Fatalf("read mapped: ok=%v f=%v err=%v", ok, f, err)
	}
	if !bytes.Equal(m.Bytes(), payload) {
		t.Fatal("mapped bytes differ from what was put")
	}
	if mmapSupported && !m.Mapped() {
		t.Error("platform has mmap but read fell back to a copy")
	}
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}
	if m.Bytes() != nil || m.Mapped() {
		t.Error("Release did not clear the mapping")
	}
	if err := m.Release(); err != nil {
		t.Error("second Release errored:", err)
	}
	var nilM *Mapping
	if err := nilM.Release(); err != nil {
		t.Error("nil Release errored:", err)
	}

	// Reads recorded an access time for the LRU index.
	if _, ok := s.mergedAtimes()["profile/"+string(key)]; !ok {
		t.Error("ReadMapped did not touch the atime table")
	}

	// JSON twin present too: binary stays preferred.
	if err := s.Put(StageProfile, key, []byte("{}"), FormatJSON); err != nil {
		t.Fatal(err)
	}
	m2, f2, ok, err := s.ReadMapped(StageProfile, key)
	if err != nil || !ok || f2 != FormatBinary {
		t.Fatalf("with twin: f=%v ok=%v err=%v", f2, ok, err)
	}
	m2.Release()
}

// TestReadMappedPendingBatch asserts read-your-writes through the batcher:
// an unflushed Put is visible to ReadMapped as a private copy.
func TestReadMappedPendingBatch(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.EnableWriteBatching(BatchConfig{MaxPending: 1 << 20, MaxDelay: time.Hour})
	defer s.Close()
	key := testKey("pending-mapped")
	if err := s.Put(StageProfile, key, []byte("buffered"), FormatBinary); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s.Path(StageProfile, key, FormatBinary)); !os.IsNotExist(err) {
		t.Fatal("pending artifact already on disk")
	}
	m, f, ok, err := s.ReadMapped(StageProfile, key)
	if err != nil || !ok || f != FormatBinary || string(m.Bytes()) != "buffered" {
		t.Fatalf("pending read: %q f=%v ok=%v err=%v", m.Bytes(), f, ok, err)
	}
	if m.Mapped() {
		t.Error("pending artifact claims to be a mapping")
	}
	m.Release()
}

// TestMappingUnlinkedStaysReadable is the Compact-vs-reader guarantee in
// miniature: a mapping taken before the file is unlinked stays fully
// readable afterwards.
func TestMappingUnlinkedStaysReadable(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("unlinked")
	payload := bytes.Repeat([]byte("x"), 4096)
	if err := s.Put(StageProfile, key, payload, FormatBinary); err != nil {
		t.Fatal(err)
	}
	m, _, ok, err := s.ReadMapped(StageProfile, key)
	if err != nil || !ok || !m.Mapped() {
		t.Fatalf("ok=%v mapped=%v err=%v", ok, m.Mapped(), err)
	}
	defer m.Release()
	if err := os.Remove(s.Path(StageProfile, key, FormatBinary)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Bytes(), payload) {
		t.Fatal("mapping changed after unlink")
	}
}
