package pipeline

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"
)

// BatchConfig tunes the per-shard write coalescer. Zero values take the
// defaults.
type BatchConfig struct {
	// MaxPending flushes the batch once this many artifacts are buffered.
	// Default 32.
	MaxPending int
	// MaxDelay bounds how long a buffered artifact waits before its batch
	// flushes, the visibility window other processes see. Default 5ms.
	MaxDelay time.Duration
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.MaxPending <= 0 {
		c.MaxPending = 32
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 5 * time.Millisecond
	}
	return c
}

// EnableWriteBatching switches the store's Puts to the write coalescer:
// solve-storm artifacts accumulate in memory and flush as one batch per
// shard — every artifact still lands via its own temp file + rename (the
// crash-safety protocol is unchanged: an artifact is fully present or
// absent, never torn), but the directory fsyncs that make the batch durable
// are paid once per touched shard instead of once per artifact. Reads
// through this store see pending artifacts immediately; other processes see
// them within MaxDelay. Call Flush or Close to force everything to disk
// (Close also happens via cli.App teardown).
func (s *Store) EnableWriteBatching(cfg BatchConfig) {
	if s.batch != nil {
		return
	}
	cfg = cfg.withDefaults()
	s.batch = &writeBatcher{s: s, cfg: cfg, pending: make(map[string]pendingPut)}
}

// Flush writes every pending batched artifact to disk now. A no-op without
// batching.
func (s *Store) Flush() error {
	if s.batch == nil {
		return nil
	}
	return s.batch.flush()
}

// Close flushes pending batched writes, stops the batcher's timer, and
// persists the access-time sidecar index Compact evicts by. The store
// remains usable afterwards (later Puts write through immediately).
func (s *Store) Close() error {
	var errs []error
	if b := s.batch; b != nil {
		errs = append(errs, b.close())
		s.batch = nil
	}
	errs = append(errs, s.SaveAtimeIndex())
	return errors.Join(errs...)
}

// pendingPut is one buffered artifact awaiting its batch flush.
type pendingPut struct {
	kind   Kind
	key    Key
	data   []byte
	format Format
}

// writeBatcher coalesces Puts. Buffered artifacts are visible to reads via
// getPending, so in-process read-your-writes holds regardless of flush
// timing; the flush itself swaps the pending set out under the lock and does
// its disk work outside it, so readers and new writers never block on I/O.
type writeBatcher struct {
	s   *Store
	cfg BatchConfig

	mu      sync.Mutex
	pending map[string]pendingPut // keyed by "kind/key.ext"
	timer   *time.Timer
	err     error // sticky first background-flush error, surfaced on the next call
	closed  bool
}

func pendingKey(kind Kind, key Key, f Format) string {
	return string(kind) + "/" + string(key) + f.ext()
}

// getPending returns a buffered artifact's bytes, preferring binary like the
// disk paths. Safe on a nil batcher. The returned slice is the buffered one;
// callers copy.
func (b *writeBatcher) getPending(kind Kind, key Key) ([]byte, Format, bool) {
	if b == nil {
		return nil, FormatJSON, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, f := range [...]Format{FormatBinary, FormatJSON} {
		if p, ok := b.pending[pendingKey(kind, key, f)]; ok {
			return p.data, f, true
		}
	}
	return nil, FormatJSON, false
}

// put buffers one artifact, flushing synchronously when the batch is full
// and arming the deadline timer otherwise. The data slice is retained until
// the flush; pipeline encoders hand over freshly built buffers, so no copy
// is taken.
func (b *writeBatcher) put(kind Kind, key Key, data []byte, f Format) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return b.s.putNow(kind, key, data, f)
	}
	if err := b.err; err != nil {
		b.err = nil
		b.mu.Unlock()
		return err
	}
	b.pending[pendingKey(kind, key, f)] = pendingPut{kind: kind, key: key, data: data, format: f}
	if len(b.pending) >= b.cfg.MaxPending {
		batch := b.take()
		b.mu.Unlock()
		return b.writeBatch(batch)
	}
	if b.timer == nil {
		b.timer = time.AfterFunc(b.cfg.MaxDelay, b.deadlineFlush)
	}
	b.mu.Unlock()
	return nil
}

// take swaps out the pending set and disarms the timer; callers hold mu.
func (b *writeBatcher) take() map[string]pendingPut {
	batch := b.pending
	b.pending = make(map[string]pendingPut)
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// deadlineFlush is the timer callback; its error is surfaced on the next
// Put/Flush/Close since nobody is waiting on the timer goroutine.
func (b *writeBatcher) deadlineFlush() {
	if err := b.flush(); err != nil {
		b.mu.Lock()
		if b.err == nil {
			b.err = err
		}
		b.mu.Unlock()
	}
}

func (b *writeBatcher) flush() error {
	b.mu.Lock()
	err := b.err
	b.err = nil
	batch := b.take()
	b.mu.Unlock()
	if werr := b.writeBatch(batch); err == nil {
		err = werr
	}
	return err
}

func (b *writeBatcher) close() error {
	b.mu.Lock()
	b.closed = true
	err := b.err
	b.err = nil
	batch := b.take()
	b.mu.Unlock()
	if werr := b.writeBatch(batch); err == nil {
		err = werr
	}
	return err
}

// writeBatch lands one batch: every artifact via the store's usual temp file
// + rename, then one directory fsync per touched shard so the whole batch's
// directory entries are durable at a per-batch, not per-artifact, cost.
func (b *writeBatcher) writeBatch(batch map[string]pendingPut) error {
	if len(batch) == 0 {
		return nil
	}
	var errs []error
	shards := make(map[string]struct{})
	for _, p := range batch {
		if err := b.s.putNow(p.kind, p.key, p.data, p.format); err != nil {
			errs = append(errs, err)
			continue
		}
		shards[filepath.Join(b.s.dir, string(p.kind), string(p.key[:2]))] = struct{}{}
	}
	for dir := range shards {
		if err := syncDir(dir); err != nil {
			errs = append(errs, fmt.Errorf("pipeline: sync shard %s: %w", dir, err))
		}
	}
	return errors.Join(errs...)
}

// syncDir fsyncs a directory so freshly renamed entries survive a crash.
// Filesystems that cannot fsync directories report nothing to act on, so
// sync errors on an otherwise healthy open are swallowed.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) && !errors.Is(err, syscall.EINVAL) {
		return err
	}
	return nil
}
