package pipeline

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestRunCtxPreCancelled asserts the stage-boundary contract: a request whose
// context is already dead never starts the computation.
func TestRunCtxPreCancelled(t *testing.T) {
	r := NewRunner(nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := RunCtx(ctx, r, intStage(StageSolve), testKey("pre"), func(context.Context) (int, error) {
		ran = true
		return 1, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("compute ran despite a cancelled context")
	}
}

// TestRunCtxCancelAbortsCompute cancels the only caller of an in-flight
// computation and asserts three things: the caller unblocks with ctx.Err(),
// the computation's own context is cancelled (so a context-aware solve
// aborts), and the failed slot is not retained — the next request for the
// same key computes afresh and succeeds.
func TestRunCtxCancelAbortsCompute(t *testing.T) {
	r := NewRunner(nil)
	key := testKey("abort")
	st := intStage(StageSolve)

	started := make(chan struct{})
	aborted := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunCtx(ctx, r, st, key, func(cctx context.Context) (int, error) {
			close(started)
			<-cctx.Done() // a context-aware stage: block until aborted
			close(aborted)
			return 0, cctx.Err()
		})
		done <- err
	}()

	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller err = %v, want context.Canceled", err)
	}
	select {
	case <-aborted:
	case <-time.After(5 * time.Second):
		t.Fatal("computation context was never cancelled")
	}

	// The cancelled slot must not poison the key: a fresh caller recomputes.
	v, err := RunCtx(context.Background(), r, st, key, func(context.Context) (int, error) {
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("recompute after cancellation = %d, %v; want 42, nil", v, err)
	}
}

// TestRunCtxSurvivingWaiterKeepsComputeAlive starts two callers on one key,
// cancels the first (the leader), and asserts the computation keeps running
// for the second: singleflight cancellation is all-or-nothing, not
// first-caller-wins.
func TestRunCtxSurvivingWaiterKeepsComputeAlive(t *testing.T) {
	r := NewRunner(nil)
	key := testKey("survivor")
	st := intStage(StageSolve)

	started := make(chan struct{})
	release := make(chan struct{})
	leaderCtx, cancelLeader := context.WithCancel(context.Background())

	leaderDone := make(chan error, 1)
	go func() {
		_, err := RunCtx(leaderCtx, r, st, key, func(cctx context.Context) (int, error) {
			close(started)
			select {
			case <-release:
				return 7, nil
			case <-cctx.Done():
				return 0, cctx.Err()
			}
		})
		leaderDone <- err
	}()
	<-started

	var wg sync.WaitGroup
	wg.Add(1)
	type res struct {
		v   int
		err error
	}
	waiterDone := make(chan res, 1)
	go func() {
		defer wg.Done()
		v, err := RunCtx(context.Background(), r, st, key, func(context.Context) (int, error) {
			t.Error("waiter started a second computation")
			return 0, nil
		})
		waiterDone <- res{v, err}
	}()

	// Give the waiter a moment to attach, then cancel the leader. The
	// computation context must stay alive because the waiter still wants
	// the result.
	for i := 0; ; i++ {
		r.mu.Lock()
		n := r.slots[string(st.Kind)+"/"+string(key)].waiters
		r.mu.Unlock()
		if n == 2 {
			break
		}
		if i > 1000 {
			t.Fatal("second caller never attached to the in-flight slot")
		}
		time.Sleep(time.Millisecond)
	}
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}

	close(release)
	wg.Wait()
	got := <-waiterDone
	if got.err != nil || got.v != 7 {
		t.Fatalf("waiter = %d, %v; want 7, nil", got.v, got.err)
	}
}

// TestRunCtxCancelledComputeNotPersisted attaches a store and asserts a
// computation aborted by cancellation writes no artifact.
func TestRunCtxCancelledComputeNotPersisted(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(store)
	key := testKey("no-artifact")
	st := intStage(StageSolve)

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := RunCtx(ctx, r, st, key, func(cctx context.Context) (int, error) {
			close(started)
			<-cctx.Done()
			return 0, cctx.Err()
		})
		done <- err
	}()
	<-started
	cancel()
	<-done

	if _, _, ok, err := store.Get(st.Kind, key); err != nil || ok {
		t.Fatalf("aborted computation left an artifact (ok=%v err=%v)", ok, err)
	}
}
