package pipeline

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// This file provides the length-prefixed binary artifact framing shared by
// the large artifact kinds (recordings, profiles, solve results, graph
// solves). JSON remains the versioned fallback codec — every binary-capable
// stage keeps its JSON Encode/Decode, the store reads both formats, and the
// property tests assert the two decode to identical values — but the binary
// form skips base64 round trips, field-name tokenization and per-field
// reflection, which is what makes warm fleet-scale sweeps store-bound
// rather than codec-bound.
//
// Framing: every binary artifact opens with the 4-byte magic "CTDB", one
// format-version byte and one artifact-tag byte, followed by tag-specific
// fields. Variable-length data is length-prefixed (uvarint counts, raw
// little-endian payloads); decoders must bound every claimed length against
// the remaining input before allocating, which BinReader's Uint64s/Bytes
// helpers do for them (the FuzzDecodeRecording lesson: reject oversized or
// negative lengths before make()).
//
// Version 2 pads every raw word run (Uint32s, Uint64s, and explicit Pad8
// points before FloatsRaw runs) with zero bytes to an 8-byte boundary
// measured from the start of the artifact. Since mmap'd artifacts are
// page-aligned, a borrow-mode reader (NewBinReaderBorrow) can then return
// slices that alias the mapping directly instead of copying — the zero-copy
// warm path. Old version-1 artifacts fail the frame check and re-miss
// safely, like every previous codec bump.

// Binary artifact magic and format version.
var binMagic = [4]byte{'C', 'T', 'D', 'B'}

// BinVersion is the version byte every binary artifact carries. Version 2
// introduced alignment padding before raw word runs and the raw []uint32
// trace layout.
const BinVersion = 2

// Artifact tags, one per binary-capable artifact layout. Tags are part of the
// frame so a decoder can never misinterpret one kind's payload as another's.
const (
	BinTagRecording  uint8 = 1
	BinTagProfile    uint8 = 2
	BinTagSolve      uint8 = 3
	BinTagGraphSolve uint8 = 4
)

// IsBinaryArtifact reports whether data opens with the binary artifact magic.
// The store uses it to route legacy JSON artifacts (which begin with '{') to
// the JSON decoder regardless of file extension.
func IsBinaryArtifact(data []byte) bool {
	return len(data) >= 4 && [4]byte(data[:4]) == binMagic
}

// BinWriter accumulates one binary artifact. The zero value is not ready;
// use NewBinWriter, which writes the frame header.
type BinWriter struct {
	buf []byte
}

// NewBinWriter starts an artifact of the given tag, with capacity sizeHint.
func NewBinWriter(tag uint8, sizeHint int) *BinWriter {
	w := &BinWriter{buf: make([]byte, 0, 6+sizeHint)}
	w.buf = append(w.buf, binMagic[:]...)
	w.buf = append(w.buf, BinVersion, tag)
	return w
}

// Bytes returns the encoded artifact.
func (w *BinWriter) Bytes() []byte { return w.buf }

// Uvarint appends an unsigned varint.
func (w *BinWriter) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Varint appends a signed varint.
func (w *BinWriter) Varint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Float appends a float64 as its IEEE-754 bits, little-endian.
func (w *BinWriter) Float(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// Bool appends a boolean as one byte.
func (w *BinWriter) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
}

// String appends a length-prefixed string.
func (w *BinWriter) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Pad8 appends zero bytes until the next write lands on an 8-byte boundary
// measured from the artifact's first byte. Raw word runs written after a pad
// are alignment-eligible for borrow-mode readers.
func (w *BinWriter) Pad8() {
	for len(w.buf)%8 != 0 {
		w.buf = append(w.buf, 0)
	}
}

// Uint64s appends a length-prefixed []uint64 as raw little-endian words,
// padded to an 8-byte boundary so borrow-mode readers can alias the run.
func (w *BinWriter) Uint64s(vs []uint64) {
	w.Uvarint(uint64(len(vs)))
	w.Pad8()
	for _, v := range vs {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
	}
}

// Uint32s appends a length-prefixed []uint32 as raw little-endian words,
// padded to an 8-byte boundary so borrow-mode readers can alias the run.
func (w *BinWriter) Uint32s(vs []uint32) {
	w.Uvarint(uint64(len(vs)))
	w.Pad8()
	for _, v := range vs {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
	}
}

// Int64s appends a length-prefixed []int64 as varints.
func (w *BinWriter) Int64s(vs []int64) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.Varint(v)
	}
}

// Floats appends a length-prefixed []float64 as raw IEEE-754 words.
func (w *BinWriter) Floats(vs []float64) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.Float(v)
	}
}

// BinReader consumes one binary artifact. Every read method is
// error-latching: after the first malformed field the reader returns zero
// values, so decoders can read a whole layout and check Err once — but they
// MUST check Err before trusting any length-derived allocation they perform
// themselves (the provided slice readers bound lengths internally).
//
// A plain BinReader (NewBinReader) never retains or aliases the input: all
// slice reads copy, so the store can hand it a pooled buffer. A borrow-mode
// reader (NewBinReaderBorrow) instead returns slices that alias the input
// for aligned raw word runs — see NewBinReaderBorrow for the lifetime
// contract.
type BinReader struct {
	data   []byte
	err    error
	tag    uint8
	full   int  // original payload length, for absolute-offset alignment
	borrow bool // raw word runs may alias data instead of copying
}

// hostLittleEndian reports whether this host stores multi-byte words
// little-endian, the precondition for aliasing raw LE runs in place.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// NewBinReader validates the frame header (magic, version, tag) and positions
// the reader at the first payload field.
func NewBinReader(data []byte, tag uint8) (*BinReader, error) {
	if !IsBinaryArtifact(data) {
		return nil, fmt.Errorf("pipeline: not a binary artifact")
	}
	if len(data) < 6 {
		return nil, fmt.Errorf("pipeline: binary artifact truncated inside the frame header")
	}
	if data[4] != BinVersion {
		return nil, fmt.Errorf("pipeline: binary artifact version %d, want %d", data[4], BinVersion)
	}
	if data[5] != tag {
		return nil, fmt.Errorf("pipeline: binary artifact tag %d, want %d", data[5], tag)
	}
	return &BinReader{data: data[6:], tag: tag, full: len(data)}, nil
}

// NewBinReaderBorrow is NewBinReader in borrow mode: raw word runs
// (Uint32s, Uint64s, FloatsBorrow) return slices aliasing data when the run
// is 8-byte aligned and the host is little-endian, and copy otherwise — the
// decoded value is byte-identical either way. The caller owns the lifetime:
// data (typically an mmap'd Mapping) must stay valid for as long as any
// decoded value is in use, and must tolerate writes through the decoded
// slices (private copy-on-write mappings do; read-only ones fault).
func NewBinReaderBorrow(data []byte, tag uint8) (*BinReader, error) {
	r, err := NewBinReader(data, tag)
	if err != nil {
		return nil, err
	}
	r.borrow = true
	return r, nil
}

// Err returns the first decoding error, if any.
func (r *BinReader) Err() error { return r.err }

// Remaining returns the number of unconsumed payload bytes — what decoders
// bound their own length-derived allocations against.
func (r *BinReader) Remaining() int { return len(r.data) }

// Done reports an error unless the input was consumed exactly.
func (r *BinReader) Done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.data) != 0 {
		return fmt.Errorf("pipeline: binary artifact has %d trailing bytes", len(r.data))
	}
	return nil
}

func (r *BinReader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("pipeline: "+format, args...)
	}
}

// Uvarint reads an unsigned varint.
func (r *BinReader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.fail("truncated uvarint")
		return 0
	}
	r.data = r.data[n:]
	return v
}

// Varint reads a signed varint.
func (r *BinReader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.data = r.data[n:]
	return v
}

// Float reads a float64.
func (r *BinReader) Float() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.data) < 8 {
		r.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data))
	r.data = r.data[8:]
	return v
}

// Bool reads a boolean byte (strictly 0 or 1).
func (r *BinReader) Bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.data) < 1 {
		r.fail("truncated bool")
		return false
	}
	b := r.data[0]
	r.data = r.data[1:]
	if b > 1 {
		r.fail("bool byte %d", b)
		return false
	}
	return b == 1
}

// Int reads a varint and bounds it to a non-negative int that fits the
// platform, the shape every count field uses.
func (r *BinReader) Int() int {
	v := r.Varint()
	if v < 0 || v > math.MaxInt32 {
		r.fail("count %d out of range", v)
		return 0
	}
	return int(v)
}

// Len reads a uvarint length prefix (the counterpart of the writer's
// Uvarint-encoded lengths) bounded to a non-negative int32-sized value.
func (r *BinReader) Len() int {
	v := r.Uvarint()
	if v > math.MaxInt32 {
		r.fail("length %d out of range", v)
		return 0
	}
	return int(v)
}

// String reads a length-prefixed string; the claimed length is bounded by
// the remaining input before allocation.
func (r *BinReader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)) {
		r.fail("string length %d exceeds %d remaining bytes", n, len(r.data))
		return ""
	}
	s := string(r.data[:n])
	r.data = r.data[n:]
	return s
}

// Pad8 consumes the zero padding the writer's Pad8 emitted, restoring the
// read cursor to an 8-byte boundary measured from the artifact's first byte.
// Nonzero pad bytes are a framing error (padding is canonical).
func (r *BinReader) Pad8() {
	if r.err != nil {
		return
	}
	pad := (8 - (r.full-len(r.data))%8) % 8
	if pad > len(r.data) {
		r.fail("truncated alignment padding")
		return
	}
	for i := 0; i < pad; i++ {
		if r.data[i] != 0 {
			r.fail("nonzero alignment padding byte %d", r.data[i])
			return
		}
	}
	r.data = r.data[pad:]
}

// canBorrow reports whether the next run may alias the input: borrow mode,
// little-endian host, and an align-byte-aligned read cursor. The writer's
// Pad8 makes the cursor 8-aligned relative to the artifact start; the base
// pointer check covers the mapping (page-aligned) and any copied buffer.
func (r *BinReader) canBorrow(align uintptr) bool {
	return r.borrow && hostLittleEndian && len(r.data) > 0 &&
		uintptr(unsafe.Pointer(&r.data[0]))%align == 0
}

// Uint64s reads a length-prefixed, 8-byte-aligned []uint64 (raw
// little-endian words); the claimed length is bounded by the remaining input
// before allocation. In borrow mode an aligned run aliases the input.
func (r *BinReader) Uint64s() []uint64 {
	n := r.Uvarint()
	r.Pad8()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data))/8 {
		r.fail("word count %d exceeds %d remaining bytes", n, len(r.data))
		return nil
	}
	if n > 0 && r.canBorrow(8) {
		vs := unsafe.Slice((*uint64)(unsafe.Pointer(&r.data[0])), n)
		r.data = r.data[8*n:]
		return vs
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint64(r.data[8*i:])
	}
	r.data = r.data[8*n:]
	return vs
}

// Uint32s reads a length-prefixed, 8-byte-aligned []uint32 (raw
// little-endian words); the claimed length is bounded by the remaining input
// before allocation. In borrow mode an aligned run aliases the input.
func (r *BinReader) Uint32s() []uint32 {
	n := r.Uvarint()
	r.Pad8()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data))/4 {
		r.fail("word count %d exceeds %d remaining bytes", n, len(r.data))
		return nil
	}
	if n > 0 && r.canBorrow(4) {
		vs := unsafe.Slice((*uint32)(unsafe.Pointer(&r.data[0])), n)
		r.data = r.data[4*n:]
		return vs
	}
	vs := make([]uint32, n)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint32(r.data[4*i:])
	}
	r.data = r.data[4*n:]
	return vs
}

// Int64s reads a length-prefixed []int64 (varints); the claimed length is
// bounded by the remaining input (each varint is at least one byte) before
// allocation.
func (r *BinReader) Int64s() []int64 {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)) {
		r.fail("varint count %d exceeds %d remaining bytes", n, len(r.data))
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = r.Varint()
		if r.err != nil {
			return nil
		}
	}
	return vs
}

// Floats reads a length-prefixed []float64 (raw IEEE-754 words); the claimed
// length is bounded by the remaining input before allocation.
func (r *BinReader) Floats() []float64 {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data))/8 {
		r.fail("float count %d exceeds %d remaining bytes", n, len(r.data))
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.data[8*i:]))
	}
	r.data = r.data[8*n:]
	return vs
}

// FloatsInto reads exactly n floats into dst[:n] without allocating; dst must
// have capacity n (callers size one backing array for a whole matrix). The
// count is explicit rather than length-prefixed, for layouts whose dimensions
// are already validated fields.
func (r *BinReader) FloatsInto(dst []float64) {
	if r.err != nil {
		return
	}
	if len(r.data) < 8*len(dst) {
		r.fail("float run of %d exceeds %d remaining bytes", len(dst), len(r.data))
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.data[8*i:]))
	}
	r.data = r.data[8*len(dst):]
}

// FloatsBorrow reads exactly n floats, like FloatsInto with a fresh
// destination, but in borrow mode an aligned run aliases the input instead
// of copying. Callers pair it with an explicit Pad8 on both sides, matching
// the writer's Pad8 + FloatsRaw.
func (r *BinReader) FloatsBorrow(n int) []float64 {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.data) < 8*n {
		r.fail("float run of %d exceeds %d remaining bytes", n, len(r.data))
		return nil
	}
	if n > 0 && r.canBorrow(8) {
		vs := unsafe.Slice((*float64)(unsafe.Pointer(&r.data[0])), n)
		r.data = r.data[8*n:]
		return vs
	}
	vs := make([]float64, n)
	r.FloatsInto(vs)
	return vs
}

// FloatsRaw appends the raw IEEE-754 words of vs with no length prefix,
// the writer-side counterpart of FloatsInto.
func (w *BinWriter) FloatsRaw(vs []float64) {
	for _, v := range vs {
		w.Float(v)
	}
}
