package pipeline

import (
	"strings"
	"testing"
)

// goldenKey pins the digest for a fixed input. If this test starts failing,
// the key format changed and every existing cache directory is silently
// invalidated — that may be intentional, but it must be deliberate.
const goldenKey = Key("6bba6acba4c36dfecd489f11a5363f9d31999fdb317b01dce1ebcdbbd7f68a15")

func goldenBuilder() *KeyBuilder {
	return NewKey(StageProfile).
		Str("bench", "mpeg").
		Str("input", "decode").
		Int("levels", 7).
		Float("scale", 0.02)
}

func TestKeyGoldenStability(t *testing.T) {
	// Identical inputs hash identically — and to the pinned digest, so the
	// property holds across processes and machines, not just within this one.
	k1 := goldenBuilder().Sum()
	k2 := goldenBuilder().Sum()
	if k1 != k2 {
		t.Fatalf("identical inputs hashed differently: %s vs %s", k1, k2)
	}
	if k1 != goldenKey {
		t.Fatalf("key format changed: got %s, golden %s", k1, goldenKey)
	}
	if err := k1.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKeyChangesWithAnyField(t *testing.T) {
	base := goldenBuilder().Sum()
	variants := map[string]Key{
		"kind": NewKey(StageSolve).
			Str("bench", "mpeg").Str("input", "decode").Int("levels", 7).Float("scale", 0.02).Sum(),
		"string": NewKey(StageProfile).
			Str("bench", "gsm").Str("input", "decode").Int("levels", 7).Float("scale", 0.02).Sum(),
		"int": NewKey(StageProfile).
			Str("bench", "mpeg").Str("input", "decode").Int("levels", 13).Float("scale", 0.02).Sum(),
		"float": NewKey(StageProfile).
			Str("bench", "mpeg").Str("input", "decode").Int("levels", 7).Float("scale", 0.1).Sum(),
		"extra bool":   goldenBuilder().Bool("filtered", true).Sum(),
		"extra floats": goldenBuilder().Floats("weights", []float64{0.5, 0.5}).Sum(),
	}
	seen := map[Key]string{base: "base"}
	for name, k := range variants {
		if k == base {
			t.Errorf("changing %s did not change the key", name)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("variants %s and %s collide", name, prev)
		}
		seen[k] = name
	}
}

func TestKeyFieldBoundaries(t *testing.T) {
	// Quoting must prevent field-boundary confusion: a value containing what
	// looks like a serialized field must not collide with two separate fields.
	a := NewKey(StageProfile).Str("a", "x\"\nb=\"y").Sum()
	b := NewKey(StageProfile).Str("a", "x").Str("b", "y").Sum()
	if a == b {
		t.Fatal("string quoting failed to separate field boundaries")
	}
}

func TestFloatKeyPrecision(t *testing.T) {
	// Distinct float64 values — even ones that print identically at low
	// precision — must produce distinct keys.
	x, y := 0.1, 0.2
	a := NewKey(StageSolve).Float("dl", x+y).Sum()
	b := NewKey(StageSolve).Float("dl", 0.3).Sum()
	if a == b {
		t.Fatal("nearby floats collided")
	}
	if NewKey(StageSolve).Float("dl", x+y).Sum() != a {
		t.Fatal("float key unstable")
	}
}

func TestFingerprint(t *testing.T) {
	fp := Fingerprint([]byte("schedule"))
	if fp != Fingerprint([]byte("schedule")) {
		t.Fatal("fingerprint unstable")
	}
	if fp == Fingerprint([]byte("schedule2")) {
		t.Fatal("distinct content fingerprinted identically")
	}
	if err := Key(fp).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKeyValidate(t *testing.T) {
	if err := goldenKey.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Key{"", "zz", Key(strings.Repeat("g", 64)), Key(strings.Repeat("a", 63))}
	for _, k := range bad {
		if err := k.Validate(); err == nil {
			t.Errorf("Validate accepted %q", k)
		}
	}
}
