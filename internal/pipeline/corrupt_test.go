package pipeline

import (
	"os"
	"testing"
)

// corruptBin is a frame with a valid header and a garbage payload: it passes
// the store's format sniff and fails only in the stage decoder.
var corruptBin = append([]byte{'C', 'T', 'D', 'B', BinVersion, BinTagProfile}, 0xFF, 0xFF, 0xFF)

// TestLoadArtifactDeletesCorruptBinary is the regression test for the warm
// read path: a damaged binary artifact must not only fall back to the JSON
// twin, it must be deleted so the next warm read stops paying a doomed
// decode — through both the mapped and the copying read paths.
func TestLoadArtifactDeletesCorruptBinary(t *testing.T) {
	for _, mapped := range []bool{true, false} {
		name := "copying"
		if mapped {
			name = "mapped"
		}
		t.Run(name, func(t *testing.T) {
			store, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			store.SetMappedReads(mapped)
			if mapped && !store.MappedReads() {
				t.Skip("no mmap on this platform")
			}
			st := binIntStage(StageSolve)
			key := testKey("corrupt-bin", name)
			if err := store.Put(StageSolve, key, corruptBin, FormatBinary); err != nil {
				t.Fatal(err)
			}
			if err := store.Put(StageSolve, key, []byte("7"), FormatJSON); err != nil {
				t.Fatal(err)
			}

			r := NewRunner(store)
			v, err := Run(r, st, key, func() (int, error) {
				t.Error("recompute ran despite a valid JSON twin")
				return -1, nil
			})
			if err != nil || v != 7 {
				t.Fatalf("v=%d err=%v, want the JSON fallback value", v, err)
			}
			if !r.Manifest().AllHits() {
				t.Errorf("fallback read recorded a miss: %+v", r.Manifest().Records())
			}
			binPath := store.Path(StageSolve, key, FormatBinary)
			if _, err := os.Stat(binPath); !os.IsNotExist(err) {
				t.Error("corrupt binary artifact still on disk after fallback")
			}
		})
	}
}

// TestLoadArtifactCorruptBinaryNoTwinRecomputes: with no JSON fallback the
// damaged binary is a miss; the recompute overwrites it with a good one.
func TestLoadArtifactCorruptBinaryNoTwinRecomputes(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st := binIntStage(StageSolve)
	key := testKey("corrupt-bin-solo")
	if err := store.Put(StageSolve, key, corruptBin, FormatBinary); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(store)
	v, err := Run(r, st, key, func() (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	// The rewrite is good: a fresh runner over the same store disk-hits.
	r2 := NewRunner(store)
	v, err = Run(r2, st, key, func() (int, error) { return -1, nil })
	if err != nil || v != 9 {
		t.Fatalf("warm v=%d err=%v", v, err)
	}
	if !r2.Manifest().AllHits() {
		t.Errorf("rewritten artifact missed: %+v", r2.Manifest().Records())
	}
}

// TestRunnerMappedDiskWarm: the end-to-end mapped warm path — a fresh runner
// with mapped reads decodes the artifact written by a cold run, zero-copy,
// to the same value.
func TestRunnerMappedDiskWarm(t *testing.T) {
	dir := t.TempDir()
	st := binIntStage(StageSolve)
	key := testKey("mapped-warm")

	cold, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(NewRunner(cold), st, key, func() (int, error) { return 31, nil }); err != nil {
		t.Fatal(err)
	}

	warm, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.MappedReads() && mmapSupported {
		t.Fatal("mapped reads off by default")
	}
	r := NewRunner(warm)
	v, err := Run(r, st, key, func() (int, error) { return -1, nil })
	if err != nil || v != 31 {
		t.Fatalf("mapped warm v=%d err=%v", v, err)
	}
	if !r.Manifest().AllHits() {
		t.Errorf("mapped warm read missed: %+v", r.Manifest().Records())
	}
}
