package pipeline

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// atimeIndexName is the compact sidecar file holding last-access times, the
// LRU signal Compact evicts by. It lives beside the kind directories and is
// never an eviction candidate itself.
const atimeIndexName = "atime.idx"

// BinTagAtimeIndex frames the sidecar index: uvarint entry count, then per
// entry a length-prefixed "kind/key" string and a varint unix-seconds atime.
const BinTagAtimeIndex uint8 = 5

// KindDiskStats is the on-disk footprint of one artifact kind.
type KindDiskStats struct {
	Artifacts int   `json:"artifacts"`
	Bytes     int64 `json:"bytes"`
}

// DiskStats is the store's on-disk footprint, the /statsz store gauge.
type DiskStats struct {
	TotalArtifacts int                    `json:"total_artifacts"`
	TotalBytes     int64                  `json:"total_bytes"`
	Kinds          map[Kind]KindDiskStats `json:"kinds,omitempty"`
}

// EvictionStats are this process's lifetime Compact totals, the /statsz
// eviction gauges.
type EvictionStats struct {
	Compactions      int64 `json:"compactions"`
	EvictedArtifacts int64 `json:"evicted_artifacts"`
	EvictedBytes     int64 `json:"evicted_bytes"`
}

// Evictions returns the process-lifetime eviction gauges.
func (s *Store) Evictions() EvictionStats {
	return EvictionStats{
		Compactions:      s.compactions.Load(),
		EvictedArtifacts: s.evictedArtifacts.Load(),
		EvictedBytes:     s.evictedBytes.Load(),
	}
}

// DiskStats walks the store and reports per-kind artifact counts and bytes.
func (s *Store) DiskStats() (DiskStats, error) {
	ds := DiskStats{Kinds: make(map[Kind]KindDiskStats)}
	arts, _, err := s.scan()
	if err != nil {
		return ds, err
	}
	for _, a := range arts {
		ks := ds.Kinds[a.kind]
		ks.Artifacts++
		ks.Bytes += a.size
		ds.Kinds[a.kind] = ks
		ds.TotalArtifacts++
		ds.TotalBytes += a.size
	}
	return ds, nil
}

// CompactStats reports what one Compact call did.
type CompactStats struct {
	BudgetBytes      int64 `json:"budget_bytes"`
	BytesBefore      int64 `json:"bytes_before"`
	BytesAfter       int64 `json:"bytes_after"`
	EvictedArtifacts int   `json:"evicted_artifacts"`
	EvictedBytes     int64 `json:"evicted_bytes"`
	EvictedJSONTwins int   `json:"evicted_json_twins"`
	RemovedTemps     int   `json:"removed_temps"`
}

// artifact is one store file seen by scan.
type artifact struct {
	kind   Kind
	key    Key
	format Format
	path   string
	size   int64
	mtime  time.Time
}

// scan walks the store tree, returning every artifact file plus any stale
// temp files old enough that no live Put can still own them.
func (s *Store) scan() ([]artifact, []string, error) {
	var arts []artifact
	var staleTemps []string
	kinds, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("pipeline: scan store: %w", err)
	}
	tempCutoff := time.Now().Add(-10 * time.Minute)
	for _, kd := range kinds {
		if !kd.IsDir() {
			continue
		}
		kind := Kind(kd.Name())
		kindDir := filepath.Join(s.dir, kd.Name())
		shards, err := os.ReadDir(kindDir)
		if err != nil {
			return nil, nil, fmt.Errorf("pipeline: scan %s: %w", kind, err)
		}
		for _, sd := range shards {
			if !sd.IsDir() {
				continue
			}
			shardDir := filepath.Join(kindDir, sd.Name())
			files, err := os.ReadDir(shardDir)
			if err != nil {
				return nil, nil, fmt.Errorf("pipeline: scan %s: %w", kind, err)
			}
			for _, fe := range files {
				if fe.IsDir() {
					continue
				}
				name := fe.Name()
				info, err := fe.Info()
				if err != nil {
					continue // deleted underneath us: concurrent compaction or writer
				}
				if strings.HasPrefix(name, ".tmp-") {
					if info.ModTime().Before(tempCutoff) {
						staleTemps = append(staleTemps, filepath.Join(shardDir, name))
					}
					continue
				}
				var f Format
				switch {
				case strings.HasSuffix(name, ".bin"):
					f = FormatBinary
				case strings.HasSuffix(name, ".json"):
					f = FormatJSON
				default:
					continue
				}
				key := Key(strings.TrimSuffix(name, f.ext()))
				if key.Validate() != nil {
					continue
				}
				arts = append(arts, artifact{
					kind: kind, key: key, format: f,
					path: filepath.Join(shardDir, name),
					size: info.Size(), mtime: info.ModTime(),
				})
			}
		}
	}
	return arts, staleTemps, nil
}

// Compact enforces a size budget on the store: it removes stale temp files,
// then — while the tree exceeds budget bytes — evicts JSON-fallback
// duplicates of binary artifacts first and least-recently-used artifacts
// after that. Recency is the merge of this process's in-memory access table,
// the sidecar index previous processes saved, and file mtime as the fallback
// for artifacts never seen by either.
//
// Compact is safe to run concurrently with readers, including readers in
// other processes: eviction is plain unlink, and an artifact opened or
// mmap'd before its unlink stays fully readable through the held descriptor
// or mapping (POSIX keeps the inode alive), while a reader that loses the
// race sees a clean miss and recomputes. The surviving entries' access times
// are rewritten to the sidecar index.
func (s *Store) Compact(budget int64) (CompactStats, error) {
	if err := s.Flush(); err != nil {
		return CompactStats{}, err
	}
	st := CompactStats{BudgetBytes: budget}
	arts, staleTemps, err := s.scan()
	if err != nil {
		return st, err
	}
	for _, p := range staleTemps {
		if os.Remove(p) == nil {
			st.RemovedTemps++
		}
	}
	var total int64
	hasBin := make(map[string]bool)
	for _, a := range arts {
		total += a.size
		if a.format == FormatBinary {
			hasBin[string(a.kind)+"/"+string(a.key)] = true
		}
	}
	st.BytesBefore = total
	st.BytesAfter = total
	if budget <= 0 || total <= budget {
		return st, s.SaveAtimeIndex()
	}

	atimes := s.mergedAtimes()
	atime := func(a artifact) int64 {
		if t, ok := atimes[string(a.kind)+"/"+string(a.key)]; ok {
			return t
		}
		return a.mtime.Unix()
	}
	// Two eviction passes over one LRU order: JSON twins of binary
	// artifacts first (pure disk savings, no recompute cost), then whole
	// artifacts oldest-first.
	sort.Slice(arts, func(i, j int) bool { return atime(arts[i]) < atime(arts[j]) })
	evict := func(a artifact) {
		if err := os.Remove(a.path); err != nil {
			return
		}
		total -= a.size
		st.EvictedArtifacts++
		st.EvictedBytes += a.size
		s.evictedArtifacts.Add(1)
		s.evictedBytes.Add(a.size)
	}
	for _, a := range arts {
		if total <= budget {
			break
		}
		if a.format == FormatJSON && hasBin[string(a.kind)+"/"+string(a.key)] {
			evict(a)
			st.EvictedJSONTwins++
		}
	}
	for _, a := range arts {
		if total <= budget {
			break
		}
		if a.format == FormatJSON && hasBin[string(a.kind)+"/"+string(a.key)] {
			continue // already evicted in the twin pass
		}
		evict(a)
	}
	st.BytesAfter = total
	s.compactions.Add(1)
	return st, s.SaveAtimeIndex()
}

// mergedAtimes merges the sidecar index with the in-memory table (in-memory
// wins; it is at least as fresh), keyed by "kind/key".
func (s *Store) mergedAtimes() map[string]int64 {
	out, _ := s.loadAtimeIndex()
	if out == nil {
		out = make(map[string]int64)
	}
	t := &s.atimes
	t.mu.RLock()
	for kind, km := range t.m {
		for key, sec := range km {
			rel := string(kind) + "/" + string(key)
			if sec > out[rel] {
				out[rel] = sec
			}
		}
	}
	t.mu.RUnlock()
	return out
}

// loadAtimeIndex reads the sidecar index; a missing or damaged index is an
// empty one (mtimes then carry the LRU order).
func (s *Store) loadAtimeIndex() (map[string]int64, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, atimeIndexName))
	if err != nil {
		return nil, nil
	}
	r, err := NewBinReader(data, BinTagAtimeIndex)
	if err != nil {
		return nil, err
	}
	n := r.Len()
	if r.Err() != nil || n > r.Remaining() {
		return nil, r.Err()
	}
	out := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		rel := r.String()
		sec := r.Varint()
		if r.Err() != nil {
			return nil, r.Err()
		}
		out[rel] = sec
	}
	return out, nil
}

// SaveAtimeIndex persists the merged access times to the sidecar index,
// atomically like any artifact. Store.Close calls it; long-lived processes
// may call it whenever (concurrent savers last-writer-win on a complete
// index, never a torn one).
func (s *Store) SaveAtimeIndex() error {
	merged := s.mergedAtimes()
	if len(merged) == 0 {
		return nil
	}
	rels := make([]string, 0, len(merged))
	for rel := range merged {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	w := NewBinWriter(BinTagAtimeIndex, 16+24*len(rels))
	w.Uvarint(uint64(len(rels)))
	for _, rel := range rels {
		w.String(rel)
		w.Varint(merged[rel])
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("pipeline: save atime index: %w", err)
	}
	_, werr := tmp.Write(w.Bytes())
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), filepath.Join(s.dir, atimeIndexName))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("pipeline: save atime index: %w", werr)
	}
	return nil
}
