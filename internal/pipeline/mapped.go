package pipeline

import (
	"fmt"
	"os"
)

// Mapping is one artifact's bytes handed out by ReadMapped: an mmap'd,
// page-cache-backed window when the platform supports it, a plain copied
// buffer otherwise. Either way Bytes is valid until Release.
//
// Lifetime rules for borrow-mode decoding (NewBinReaderBorrow over
// m.Bytes()): every slice the decoder borrowed aliases the mapping, so
// Release must not run until the decoded value is dead. Mappings are
// MAP_PRIVATE copy-on-write, so a consumer that writes through a borrowed
// slice mutates private pages, never the store; and POSIX keeps the mapped
// pages valid after the file is renamed over or unlinked, which is what
// makes Compact safe to run under concurrent mapped readers.
type Mapping struct {
	data   []byte
	mapped bool
}

// Bytes returns the artifact contents. Nil after Release.
func (m *Mapping) Bytes() []byte { return m.data }

// Mapped reports whether the bytes are an mmap'd window rather than a copy —
// false on platforms without mmap and for empty files.
func (m *Mapping) Mapped() bool { return m.mapped }

// Release unmaps (or frees) the bytes. It is safe to call twice and on nil.
// After Release every slice that aliased the mapping is invalid.
func (m *Mapping) Release() error {
	if m == nil || m.data == nil {
		return nil
	}
	data, mapped := m.data, m.mapped
	m.data, m.mapped = nil, false
	if mapped {
		return munmapFile(data)
	}
	return nil
}

// readMapped maps one file, falling back to a copying read when mmap is
// unavailable or fails (and for empty files, which cannot be mapped).
func readMapped(path string) (*Mapping, bool, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	if mmapSupported {
		if st, err := f.Stat(); err == nil && st.Size() > 0 {
			if data, err := mmapFile(f, int(st.Size())); err == nil {
				return &Mapping{data: data, mapped: true}, true, nil
			}
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	return &Mapping{data: data}, true, nil
}

// ReadMapped returns the artifact as a Mapping, its format, and whether it
// was present, preferring binary like Get. The zero-copy counterpart of Get:
// a mapped binary artifact can be decoded in borrow mode with no
// intermediate copy. The caller must Release the mapping — but only after
// every value decoded from it in borrow mode is dead.
func (s *Store) ReadMapped(kind Kind, key Key) (*Mapping, Format, bool, error) {
	if err := key.Validate(); err != nil {
		return nil, FormatJSON, false, err
	}
	if data, f, ok := s.batch.getPending(kind, key); ok {
		return &Mapping{data: append([]byte(nil), data...)}, f, true, nil
	}
	for _, f := range [...]Format{FormatBinary, FormatJSON} {
		m, ok, err := readMapped(s.Path(kind, key, f))
		if err != nil {
			return nil, f, false, fmt.Errorf("pipeline: read mapped %s/%s: %w", kind, key, err)
		}
		if ok {
			s.touch(kind, key)
			return m, f, true, nil
		}
	}
	return nil, FormatJSON, false, nil
}
