//go:build !unix

package pipeline

import (
	"fmt"
	"os"
)

// mmapSupported gates the store's mapped read mode; without mmap every
// ReadMapped silently falls back to a copying read, which decodes to
// byte-identical values.
const mmapSupported = false

func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, fmt.Errorf("pipeline: mmap unsupported on this platform")
}

func munmapFile(data []byte) error { return nil }
