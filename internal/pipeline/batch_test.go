package pipeline

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

// neverFlush is a batch config whose automatic flush triggers are out of
// reach, so tests control flushing explicitly.
var neverFlush = BatchConfig{MaxPending: 1 << 20, MaxDelay: time.Hour}

// TestBatchReadYourWrites: a buffered Put is invisible on disk but visible to
// every read path of the same store, and Flush makes it durable.
func TestBatchReadYourWrites(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.EnableWriteBatching(neverFlush)
	defer s.Close()
	key := testKey("ryw")
	if err := s.Put(StageProfile, key, []byte("pending"), FormatBinary); err != nil {
		t.Fatal(err)
	}
	path := s.Path(StageProfile, key, FormatBinary)
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("buffered artifact reached disk before flush")
	}
	if data, f, ok, err := s.Get(StageProfile, key); err != nil || !ok || f != FormatBinary || string(data) != "pending" {
		t.Fatalf("Get of pending = %q f=%v ok=%v err=%v", data, f, ok, err)
	}
	if data, f, ok, err := s.getAppend(nil, StageProfile, key); err != nil || !ok || f != FormatBinary || string(data) != "pending" {
		t.Fatalf("getAppend of pending = %q f=%v ok=%v err=%v", data, f, ok, err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("flushed artifact missing: %v", err)
	}
	if data, _, ok, err := s.Get(StageProfile, key); err != nil || !ok || string(data) != "pending" {
		t.Fatalf("post-flush Get = %q ok=%v err=%v", data, ok, err)
	}
}

// TestBatchFlushOnMaxPending: hitting MaxPending flushes synchronously, so
// the Put that filled the batch returns with everything durable.
func TestBatchFlushOnMaxPending(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.EnableWriteBatching(BatchConfig{MaxPending: 2, MaxDelay: time.Hour})
	defer s.Close()
	k1, k2 := testKey("full-1"), testKey("full-2")
	if err := s.Put(StageProfile, k1, []byte("a"), FormatBinary); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s.Path(StageProfile, k1, FormatBinary)); !os.IsNotExist(err) {
		t.Fatal("first Put flushed early")
	}
	if err := s.Put(StageProfile, k2, []byte("b"), FormatBinary); err != nil {
		t.Fatal(err)
	}
	for _, k := range []Key{k1, k2} {
		if _, err := os.Stat(s.Path(StageProfile, k, FormatBinary)); err != nil {
			t.Errorf("artifact %s not on disk after full-batch Put: %v", k, err)
		}
	}
}

// TestBatchDeadlineFlush: a lone buffered Put reaches disk within the
// MaxDelay visibility window without any further store calls.
func TestBatchDeadlineFlush(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.EnableWriteBatching(BatchConfig{MaxPending: 1 << 20, MaxDelay: 5 * time.Millisecond})
	defer s.Close()
	key := testKey("deadline")
	if err := s.Put(StageProfile, key, []byte("timed"), FormatBinary); err != nil {
		t.Fatal(err)
	}
	path := s.Path(StageProfile, key, FormatBinary)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("deadline flush never landed the artifact")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatchCloseFlushesAndWritesThrough: Close drains the batch, and the
// store stays usable afterwards with Puts writing through immediately.
func TestBatchCloseFlushesAndWritesThrough(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.EnableWriteBatching(neverFlush)
	key := testKey("close")
	if err := s.Put(StageProfile, key, []byte("c"), FormatBinary); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s.Path(StageProfile, key, FormatBinary)); err != nil {
		t.Fatalf("Close did not flush: %v", err)
	}
	after := testKey("after-close")
	if err := s.Put(StageProfile, after, []byte("d"), FormatBinary); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s.Path(StageProfile, after, FormatBinary)); err != nil {
		t.Fatalf("post-Close Put did not write through: %v", err)
	}
}

// TestBatchLatestWriteWins: re-Putting a pending key replaces the buffered
// bytes, and one flush lands only the final version.
func TestBatchLatestWriteWins(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.EnableWriteBatching(neverFlush)
	defer s.Close()
	key := testKey("rewrite")
	for i := 0; i < 3; i++ {
		if err := s.Put(StageProfile, key, []byte{byte('0' + i)}, FormatBinary); err != nil {
			t.Fatal(err)
		}
	}
	if data, _, ok, _ := s.Get(StageProfile, key); !ok || string(data) != "2" {
		t.Fatalf("pending read = %q ok=%v, want final write", data, ok)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.Path(StageProfile, key, FormatBinary))
	if err != nil || string(data) != "2" {
		t.Fatalf("on disk = %q err=%v", data, err)
	}
}

// TestBatchConcurrent hammers buffered Puts, reads and Flushes from many
// goroutines; run under -race this is the batcher's locking proof. Every
// artifact must be durable and intact after Close.
func TestBatchConcurrent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.EnableWriteBatching(BatchConfig{MaxPending: 8, MaxDelay: time.Millisecond})

	const n = 64
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = testKey("conc", fmt.Sprint(i))
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("artifact-%d", i))
			if err := s.Put(StageProfile, keys[i], payload, FormatBinary); err != nil {
				t.Error(err)
			}
			if data, _, ok, err := s.Get(StageProfile, keys[i]); err != nil || !ok || string(data) != string(payload) {
				t.Errorf("read-your-write %d failed: %q ok=%v err=%v", i, data, ok, err)
			}
			if i%7 == 0 {
				if err := s.Flush(); err != nil {
					t.Error(err)
				}
			}
		}(i)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		data, err := os.ReadFile(s.Path(StageProfile, k, FormatBinary))
		if err != nil || string(data) != fmt.Sprintf("artifact-%d", i) {
			t.Fatalf("artifact %d after Close = %q err=%v", i, data, err)
		}
	}
}
