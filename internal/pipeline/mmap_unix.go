//go:build unix

package pipeline

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform can memory-map artifacts. On
// unix builds the store's mapped read mode is on by default.
const mmapSupported = true

// mmapFile maps size bytes of f as a private copy-on-write mapping. PRIVATE
// plus PROT_WRITE means a consumer that mutates a borrowed slice faults a
// private page instead of corrupting the store (or crashing on a read-only
// mapping); the file itself is never written through the map.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
}

// munmapFile releases a mapping returned by mmapFile.
func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
