// Package pipeline provides the staged execution layer shared by every
// binary and by the experiment harness: profile → filter → formulate →
// solve → validate, with a content-addressed on-disk artifact store and a
// per-run manifest.
//
// The paper's workflow is inherently a staged pipeline — collect per-category
// profiles (§4.1), filter the edge space (§5.2), formulate and solve the MILP
// (§4.2–4.3), then validate the schedule by re-simulation. Each stage's
// output is an artifact addressed by a key derived from everything that can
// influence it (workload spec, scale, simulator configuration, MILP and
// regulator options), so repeated runs with the same configuration skip
// simulation and MILP solves entirely and return bit-identical results.
//
// The package is deliberately generic: domain key construction lives next to
// the domain types (package exp builds profile/solve/validate keys), while
// this package owns hashing, storage, deduplication and accounting.
package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Kind names a pipeline stage. The five canonical stages mirror the paper's
// workflow; tools may introduce additional kinds (dvs-analytic records its
// report under Kind "analytic").
type Kind string

// Canonical stage kinds.
const (
	StageRecording Kind = "record"    // event-stream recording (one per workload input)
	StageProfile   Kind = "profile"   // per-category profiling runs (§4.1)
	StageFilter    Kind = "filter"    // edge-space filtering (§5.2)
	StageFormulate Kind = "formulate" // MILP construction (§4.2–4.3)
	StageSolve     Kind = "solve"     // branch-and-bound search
	StageValidate  Kind = "validate"  // schedule re-simulation

	// Task-graph stages (multi-core extension): the graph-level solve
	// (placement + per-task modes) and the graph re-simulation.
	StageGraphSolve Kind = "graphsolve"
	StageGraphSim   Kind = "graphsim"
)

// Key is the content address of one artifact: a SHA-256 digest (hex) over a
// canonical rendering of every input that can influence the artifact. Equal
// inputs hash identically across processes and machines; any option change
// changes the key.
type Key string

// KeyBuilder accumulates named fields into a canonical byte stream and hashes
// it. Field order is significant — callers must add fields in a fixed order —
// which every builder in this repository does by construction (straight-line
// code, sorted map keys).
type KeyBuilder struct {
	sb strings.Builder
}

// NewKey starts a key for the given stage kind. The kind is part of the
// hashed content, so the same parameters under different stages cannot
// collide.
func NewKey(kind Kind) *KeyBuilder {
	b := &KeyBuilder{}
	b.sb.WriteString("kind=")
	b.sb.WriteString(string(kind))
	b.sb.WriteByte('\n')
	return b
}

func (b *KeyBuilder) field(name, value string) *KeyBuilder {
	b.sb.WriteString(name)
	b.sb.WriteByte('=')
	b.sb.WriteString(value)
	b.sb.WriteByte('\n')
	return b
}

// Str adds a string field.
func (b *KeyBuilder) Str(name, v string) *KeyBuilder { return b.field(name, strconv.Quote(v)) }

// Int adds an integer field.
func (b *KeyBuilder) Int(name string, v int64) *KeyBuilder {
	return b.field(name, strconv.FormatInt(v, 10))
}

// Bool adds a boolean field.
func (b *KeyBuilder) Bool(name string, v bool) *KeyBuilder {
	return b.field(name, strconv.FormatBool(v))
}

// Float adds a float64 field, rendered with the shortest representation that
// round-trips exactly, so bit-equal floats always produce identical keys.
func (b *KeyBuilder) Float(name string, v float64) *KeyBuilder {
	return b.field(name, strconv.FormatFloat(v, 'g', -1, 64))
}

// Floats adds a float64 slice field.
func (b *KeyBuilder) Floats(name string, vs []float64) *KeyBuilder {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return b.field(name, strings.Join(parts, ","))
}

// Sum finalizes the key.
func (b *KeyBuilder) Sum() Key {
	h := sha256.Sum256([]byte(b.sb.String()))
	return Key(hex.EncodeToString(h[:]))
}

// Fingerprint hashes arbitrary serialized content (profiles, schedules) into
// the same digest space as keys. It is used to address artifacts by content
// when no parameter-derived key exists.
func Fingerprint(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// Validate reports whether k looks like a digest this package produced; the
// store refuses anything else so keys can be safely embedded in file paths.
func (k Key) Validate() error {
	if len(k) != sha256.Size*2 {
		return fmt.Errorf("pipeline: key %q has length %d, want %d", k, len(k), sha256.Size*2)
	}
	if _, err := hex.DecodeString(string(k)); err != nil {
		return fmt.Errorf("pipeline: key %q is not hex: %v", k, err)
	}
	return nil
}
