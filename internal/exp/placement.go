package exp

import (
	"fmt"

	"ctdvs/internal/core"
	"ctdvs/internal/volt"
)

// PlacementRow summarizes the static code-size cost of a schedule: how many
// mode-set instructions a compiler must actually emit (paper Section 4.2
// discusses silent instructions and hoisting; Section 7 the branch-overhead
// concern that makes every avoided instruction valuable).
type PlacementRow struct {
	Benchmark string
	Deadline  int // paper deadline number (1..5)

	Edges     int // total control-flow edges (every one gets a MILP decision)
	Required  int // mode-set instructions that must be emitted
	Silent    int // assignments provably silent on the profiled input
	Hoistable int // required instructions that fire ≪ their traversal count

	DynamicTransitions int64 // what the required instructions actually do
}

// PlacementStats runs the optimizer at two deadlines per benchmark (D2 and
// D4, where mode mixing is richest) and classifies every edge assignment.
func PlacementStats(c *Config) ([]PlacementRow, error) {
	reg := volt.DefaultRegulator()
	var rows []PlacementRow
	for _, bench := range Suite() {
		pr, err := c.Profile(bench, 0, 3)
		if err != nil {
			return nil, err
		}
		dls, err := c.Deadlines(bench)
		if err != nil {
			return nil, err
		}
		for _, dn := range []int{2, 4} {
			dl := dls[dn-1]
			res, err := c.OptimizeSingle(pr, dl, &core.Options{Regulator: reg, MILP: c.MILP})
			if err != nil {
				return nil, fmt.Errorf("%s D%d: %w", bench, dn, err)
			}
			pl := core.PlaceModeSets(pr, res.Schedule)
			ev, err := c.Measure(pr, res.Schedule, dl)
			if err != nil {
				return nil, err
			}
			rows = append(rows, PlacementRow{
				Benchmark:          bench,
				Deadline:           dn,
				Edges:              res.TotalEdges,
				Required:           len(pl.Required),
				Silent:             len(pl.Silent),
				Hoistable:          len(pl.Hoistable),
				DynamicTransitions: ev.Run.Transitions,
			})
		}
	}
	return rows, nil
}

// RenderPlacement formats the placement statistics.
func RenderPlacement(rows []PlacementRow) *Table {
	t := &Table{
		Title: "Mode-set instruction placement (paper §4.2): static cost of each schedule",
		Headers: []string{"Benchmark", "D", "edges", "required", "silent",
			"hoistable", "dyn. transitions"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Benchmark, fmt.Sprintf("D%d", r.Deadline),
			fmt.Sprintf("%d", r.Edges), fmt.Sprintf("%d", r.Required),
			fmt.Sprintf("%d", r.Silent), fmt.Sprintf("%d", r.Hoistable),
			fmt.Sprintf("%d", r.DynamicTransitions),
		})
	}
	return t
}
