package exp

import (
	"fmt"

	"ctdvs/internal/core"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

// LeakageRow records measured DVS savings for one benchmark as static
// (leakage) power grows. The paper's model assumes zero leakage (assumption
// 3 and Section 7's future work); this ablation quantifies how leakage
// erodes the benefit of running slowly: a slower schedule stretches the run
// and pays leakage for longer, the "race-to-idle" effect that eventually
// made fine-grained DVS less attractive.
type LeakageRow struct {
	Benchmark string
	// PowersMW are the static-power points swept.
	PowersMW []float64
	// Savings[i] is the measured energy-saving ratio of the (zero-leakage-
	// optimized) MILP schedule versus the best single mode, when both are
	// executed on a machine leaking PowersMW[i].
	Savings []float64
}

// AblationLeakage sweeps static power at Deadline 5 (laxest — where DVS
// savings are largest and the slow schedule's longer runtime hurts most).
// The schedule is optimized against the zero-leakage profile, as the
// paper's formulation would, so the sweep measures model error, not a
// re-optimization.
func AblationLeakage(c *Config, powersMW []float64) ([]LeakageRow, error) {
	reg := volt.DefaultRegulator()
	var rows []LeakageRow
	for _, bench := range Suite() {
		pr, err := c.Profile(bench, 0, 3)
		if err != nil {
			return nil, err
		}
		dls, err := c.Deadlines(bench)
		if err != nil {
			return nil, err
		}
		dl := dls[4]
		res, err := c.OptimizeSingle(pr, dl, &core.Options{Regulator: reg, MILP: c.MILP})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", bench, err)
		}
		mode, _, ok := pr.BestSingleMode(dl)
		if !ok {
			return nil, fmt.Errorf("%s: no single mode meets D5", bench)
		}
		base := core.SingleModeSchedule(pr, mode, reg)

		row := LeakageRow{Benchmark: bench, PowersMW: powersMW}
		for _, p := range powersMW {
			mc := sim.DefaultConfig()
			mc.StaticPowerMW = p
			dvs, err := c.RunScheduleConfig(mc, pr, res.Schedule)
			if err != nil {
				return nil, err
			}
			single, err := c.RunScheduleConfig(mc, pr, base)
			if err != nil {
				return nil, err
			}
			s := 0.0
			if single.EnergyUJ > 0 {
				s = 1 - dvs.EnergyUJ/single.EnergyUJ
			}
			row.Savings = append(row.Savings, s)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// DefaultLeakageSweep returns the standard static-power points (mW): zero
// (the paper's assumption) up to a quarter-watt, a 2003-era high-leakage
// part.
func DefaultLeakageSweep() []float64 { return []float64{0, 50, 100, 250} }

// RenderLeakage formats the leakage ablation.
func RenderLeakage(rows []LeakageRow) *Table {
	if len(rows) == 0 {
		return &Table{Title: "Ablation: leakage (no rows)"}
	}
	headers := []string{"Benchmark"}
	for _, p := range rows[0].PowersMW {
		headers = append(headers, fmt.Sprintf("%gmW", p))
	}
	t := &Table{
		Title:   "Ablation: DVS savings vs static (leakage) power, deadline 5",
		Headers: headers,
	}
	for _, r := range rows {
		cells := []string{r.Benchmark}
		for _, s := range r.Savings {
			cells = append(cells, fmt.Sprintf("%.3f", s))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}
