package exp

import "testing"

func TestAblationPathFilter(t *testing.T) {
	c := testConfig()
	rows, err := AblationPathFilter(c, 0.98)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PathsKept <= 0 {
			t.Errorf("%s: no hot paths kept", r.Benchmark)
		}
		if r.PathGroups <= 0 || r.TailGroups <= 0 {
			t.Errorf("%s: empty groups", r.Benchmark)
		}
		// Both policies must land near the same optimum: the energy terms
		// they can lose live in the cold tail by construction.
		if r.PathEnergyUJ > r.TailEnergyUJ*1.05 || r.TailEnergyUJ > r.PathEnergyUJ*1.05 {
			t.Errorf("%s: policies diverge: tail %v vs path %v",
				r.Benchmark, r.TailEnergyUJ, r.PathEnergyUJ)
		}
		t.Logf("%s: tail %d groups %.1f µJ | path %d groups (%d paths) %.1f µJ",
			r.Benchmark, r.TailGroups, r.TailEnergyUJ, r.PathGroups, r.PathsKept, r.PathEnergyUJ)
	}
	if len(RenderPathFilter(rows).Rows) != 6 {
		t.Error("render mismatch")
	}
}
