package exp

import (
	"bytes"
	"reflect"
	"testing"

	"ctdvs/internal/core"
	"ctdvs/internal/ir"
	"ctdvs/internal/pipeline"
	"ctdvs/internal/schedfile"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
	"ctdvs/internal/workloads"
)

// TestTaskGraphStudyGovernorInvariants is the governor's acceptance property
// over the whole corpus: the static schedule meets the deadline in every
// cell, the governed schedule never misses it either, and the governed
// measured energy never exceeds the static measured energy.
func TestTaskGraphStudyGovernorInvariants(t *testing.T) {
	c := testConfig()
	cells, err := c.TaskGraphStudy(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(workloads.Graphs()) {
		t.Fatalf("study covered %d of %d corpus graphs", len(cells), len(workloads.Graphs()))
	}
	for _, cell := range cells {
		tol := cell.DeadlineUS * (1 + 1e-9)
		if cell.Static.MissedDeadlines > 0 || cell.Static.MakespanUS > tol {
			t.Errorf("%s: static schedule misses deadline: makespan %v, deadline %v, missed %d",
				cell.Graph, cell.Static.MakespanUS, cell.DeadlineUS, cell.Static.MissedDeadlines)
		}
		if cell.Governed.MissedDeadlines > 0 || cell.Governed.MakespanUS > tol {
			t.Errorf("%s: governed schedule misses deadline: makespan %v, deadline %v, missed %d",
				cell.Graph, cell.Governed.MakespanUS, cell.DeadlineUS, cell.Governed.MissedDeadlines)
		}
		if cell.Governed.EnergyUJ > cell.Static.EnergyUJ {
			t.Errorf("%s: governed energy %v exceeds static %v",
				cell.Graph, cell.Governed.EnergyUJ, cell.Static.EnergyUJ)
		}
		if cell.SavingsVsFastest <= 0 {
			t.Errorf("%s: static schedule saves nothing vs all-fastest (%v)", cell.Graph, cell.SavingsVsFastest)
		}
	}
	tab := TaskGraphTable(cells)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(cells) {
		t.Errorf("table renders %d rows for %d cells", len(tab.Rows), len(cells))
	}
}

// TestGraphDegenerateSharesSingleProgramArtifacts is the bit-identity
// property at the pipeline layer: a 1-task/1-core task-graph request routes
// through the very artifacts a single-program request writes — a warm run of
// the graph path over a store populated only by the single-program path is
// all cache hits — and the payloads (schedule bytes, energy, objective)
// are byte-identical.
func TestGraphDegenerateSharesSingleProgramArtifacts(t *testing.T) {
	dir := t.TempDir()

	single := cachedConfig(t, dir)
	pr, err := single.Profile("epic", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	nm := pr.Modes.Len()
	dl := (pr.TotalTimeUS[nm-1] + pr.TotalTimeUS[0]) / 2
	opts := &core.Options{Regulator: volt.DefaultRegulator(), MILP: single.solverOpts()}
	sres, err := single.OptimizeSingle(pr, dl, opts)
	if err != nil {
		t.Fatal(err)
	}
	srun, err := single.RunSchedule(pr, sres.Schedule)
	if err != nil {
		t.Fatal(err)
	}

	// Fresh config over the same store: the task-graph spelling of the same
	// workload must resolve everything from the single-program artifacts.
	graph := cachedConfig(t, dir)
	gs := &workloads.GraphSpec{Name: "single-epic", Cores: 1, Tasks: []workloads.TaskRef{{Bench: "epic"}}}
	gw, err := graph.BuildGraph(gs, 3, dl)
	if err != nil {
		t.Fatal(err)
	}
	gopts := &core.Options{Regulator: volt.DefaultRegulator(), MILP: graph.solverOpts()}
	gres, err := graph.OptimizeGraph(gw, gopts)
	if err != nil {
		t.Fatal(err)
	}
	if !gres.Degenerate {
		t.Fatal("1-task/1-core graph not routed through the degenerate path")
	}
	if gres.PredictedEnergyUJ != sres.PredictedEnergyUJ {
		t.Errorf("degenerate energy %v != single-program %v", gres.PredictedEnergyUJ, sres.PredictedEnergyUJ)
	}
	if gres.Solver.Objective != sres.Solver.Objective {
		t.Errorf("degenerate objective %v != single-program %v", gres.Solver.Objective, sres.Solver.Objective)
	}
	sBytes := encodeSchedule(t, "epic", sres.Schedule)
	gBytes := encodeSchedule(t, "epic", gres.Schedule.Intra[0])
	if !bytes.Equal(sBytes, gBytes) {
		t.Error("degenerate graph schedule bytes differ from single-program schedule bytes")
	}

	grun, err := graph.SimulateGraph(gw, gres.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if grun.EnergyUJ != srun.EnergyUJ || grun.MakespanUS != srun.TimeUS {
		t.Errorf("graph execution (%v µJ, %v µs) != single-program (%v µJ, %v µs)",
			grun.EnergyUJ, grun.MakespanUS, srun.EnergyUJ, srun.TimeUS)
	}

	man := graph.Pipeline.Manifest()
	if !man.AllHits() {
		t.Error("degenerate graph run recomputed stages the single-program run already cached:")
		for _, r := range man.Records() {
			if r.Misses > 0 {
				t.Errorf("  %s %s: %d misses", r.Stage, r.Key[:12], r.Misses)
			}
		}
	}
}

func encodeSchedule(t *testing.T, program string, s *sim.Schedule) []byte {
	t.Helper()
	f, err := schedfile.New(program, s)
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGraphWarmRunHitsEverything: a multi-core graph optimized and executed
// twice against one store — the second, fresh-process run is all cache hits
// with identical results.
func TestGraphWarmRunHitsEverything(t *testing.T) {
	dir := t.TempDir()
	gs := workloads.ForkJoin(2, 2)

	cold := cachedConfig(t, dir)
	gwCold, err := cold.BuildGraph(gs, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := cold.OptimizeGraph(gwCold, nil)
	if err != nil {
		t.Fatal(err)
	}
	coldRun, err := cold.SimulateGraph(gwCold, coldRes.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	coldStats := cold.Pipeline.Manifest().Stats()
	if coldStats[pipeline.StageGraphSolve].Misses == 0 || coldStats[pipeline.StageGraphSim].Misses == 0 {
		t.Fatalf("cold run should miss the graph stages: %+v", coldStats)
	}

	warm := cachedConfig(t, dir)
	gwWarm, err := warm.BuildGraph(gs, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := warm.OptimizeGraph(gwWarm, nil)
	if err != nil {
		t.Fatal(err)
	}
	warmRun, err := warm.SimulateGraph(gwWarm, warmRes.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Pipeline.Manifest().AllHits() {
		t.Error("warm graph run recomputed stages:")
		for _, r := range warm.Pipeline.Manifest().Records() {
			if r.Misses > 0 {
				t.Errorf("  %s %s: %d misses", r.Stage, r.Key[:12], r.Misses)
			}
		}
	}
	if warmRes.PredictedEnergyUJ != coldRes.PredictedEnergyUJ || warmRes.PredictedMakespanUS != coldRes.PredictedMakespanUS {
		t.Errorf("warm predictions differ: (%v, %v) vs (%v, %v)",
			warmRes.PredictedEnergyUJ, warmRes.PredictedMakespanUS, coldRes.PredictedEnergyUJ, coldRes.PredictedMakespanUS)
	}
	if !reflect.DeepEqual(warmRun, coldRun) {
		t.Errorf("warm simulation differs:\n warm %+v\n cold %+v", warmRun, coldRun)
	}
	if !reflect.DeepEqual(warmRes.Schedule, coldRes.Schedule) {
		t.Error("warm schedule differs from cold schedule")
	}
}

// TestGraphPoolNoLeak exercises the machine pool under parallel graph
// simulation (run with -race in CI): every borrowed machine must be
// returned, and the high-water mark stays within the cores×workers budget.
func TestGraphPoolNoLeak(t *testing.T) {
	c := testConfig()
	c.Workers = 4
	gw, err := c.BuildGraph(workloads.ForkJoin(4, 4), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.OptimizeGraph(gw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SimulateGraph(gw, res.Schedule); err != nil {
		t.Fatal(err)
	}
	outstanding, peak := c.PoolStats()
	if outstanding != 0 {
		t.Errorf("%d machines still borrowed after the run", outstanding)
	}
	budget := int64(gw.Cores * c.workers())
	if peak < 1 || peak > budget {
		t.Errorf("pool peak %d outside [1, %d] (cores %d × workers %d)", peak, budget, gw.Cores, c.workers())
	}
}

// TestGraphKeysGolden pins the digests of the new stage keys. If one of
// these fails, existing stores silently cold-start — bump the artifact
// version and regenerate the golden values deliberately.
func TestGraphKeysGolden(t *testing.T) {
	g := &ir.TaskGraph{
		Name: "golden",
		Tasks: []*ir.Task{
			{Name: "a", ReleaseUS: 0, DeadlineUS: 0},
			{Name: "b", ReleaseUS: 5, DeadlineUS: 900},
		},
		Edges: [][2]int{{0, 1}},
	}
	gw := &GraphWorkload{Graph: g, Cores: 2, DeadlineUS: 1000}
	fps := []string{"fp-a", "fp-b"}
	o := &core.Options{Regulator: volt.DefaultRegulator()}

	solve := graphSolveKey(gw, fps, o)
	s := &sim.GraphSchedule{
		Modes:     volt.XScale3(),
		Regulator: volt.DefaultRegulator(),
		Cores:     2,
		Placement: []sim.TaskPlacement{{Core: 0, Mode: 1}, {Core: 1, Mode: 0}},
		Order:     [][]int{{0}, {1}},
	}
	simKey, err := graphSimKey(gw, fps, s, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	const goldenSolve = pipeline.Key("9e9bc162bab341f64c83bfc9441e7a95dd96244b5e55f2ab993803c738c413d2")
	const goldenSim = pipeline.Key("bc9854425825f2573f13c307af329a595297244d725288774634dff569028462")
	if solve != goldenSolve {
		t.Errorf("graphsolve key changed: got %s, golden %s", solve, goldenSolve)
	}
	if simKey != goldenSim {
		t.Errorf("graphsim key changed: got %s, golden %s", simKey, goldenSim)
	}

	// Any structural change must move the key.
	gw2 := &GraphWorkload{Graph: g, Cores: 3, DeadlineUS: 1000}
	if graphSolveKey(gw2, fps, o) == solve {
		t.Error("core count does not affect the solve key")
	}
	if graphSolveKey(gw, []string{"fp-a", "fp-X"}, o) == solve {
		t.Error("profile fingerprint does not affect the solve key")
	}
}
