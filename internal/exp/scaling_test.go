package exp

import (
	"testing"
	"time"
)

func TestSolverScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("solver scaling is slow")
	}
	c := testConfig()
	rows, err := SolverScaling(c, 4, 30, []int{1, 3}, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	prev := 0
	for _, r := range rows {
		if r.Edges <= prev {
			t.Errorf("edge counts not increasing: %d after %d", r.Edges, prev)
		}
		prev = r.Edges
		if r.Groups >= r.Edges {
			t.Errorf("filtering did not reduce groups: %d/%d", r.Groups, r.Edges)
		}
		// Filtering must never slow the solve down materially.
		if r.FilteredSolve > r.FullSolve*2 {
			t.Errorf("filtered solve (%v) slower than full (%v)", r.FilteredSolve, r.FullSolve)
		}
		// Both must land within 2% on energy when both proved optimality.
		if r.FullStatus.String() == "optimal" && r.FilterStatus.String() == "optimal" {
			if r.FilterEnergyUJ > r.FullEnergyUJ*1.02 {
				t.Errorf("filtered energy %v far above full %v", r.FilterEnergyUJ, r.FullEnergyUJ)
			}
		}
		t.Logf("edges=%d groups=%d full=%v filt=%v speedup=%.1fx",
			r.Edges, r.Groups, r.FullSolve, r.FilteredSolve, r.Speedup())
	}
	if len(RenderSolverScaling(rows).Rows) != 2 {
		t.Error("render mismatch")
	}
}
