package exp

import "testing"

func TestAblationNoTransitionCost(t *testing.T) {
	c := testConfig()
	rows, err := AblationNoTransitionCost(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.FullMeets {
			t.Errorf("%s: transition-aware schedule missed its deadline", r.Benchmark)
		}
		// At c = 100 µF, the transition-aware optimizer pays attention to
		// switches; if the blind variant switches at all, the aware one
		// must not come out worse on measured energy.
		if r.VariantTransitions > 0 && r.FullEnergyUJ > r.VariantEnergyUJ*1.001 {
			t.Errorf("%s: aware energy %v worse than blind %v",
				r.Benchmark, r.FullEnergyUJ, r.VariantEnergyUJ)
		}
	}
	if len(RenderAblation("x", rows).Rows) != 6 {
		t.Error("render mismatch")
	}
}

func TestAblationBlockBased(t *testing.T) {
	c := testConfig()
	rows, err := AblationBlockBased(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.FullMeets || !r.VariantMeets {
			t.Errorf("%s: schedules missed deadlines (full=%v variant=%v)",
				r.Benchmark, r.FullMeets, r.VariantMeets)
		}
		// Edge-based subsumes block-based; measured energy should not be
		// noticeably worse.
		if r.FullEnergyUJ > r.VariantEnergyUJ*1.02 {
			t.Errorf("%s: edge-based energy %v above block-based %v",
				r.Benchmark, r.FullEnergyUJ, r.VariantEnergyUJ)
		}
	}
}

func TestAblationHeuristic(t *testing.T) {
	c := testConfig()
	rows, err := AblationHeuristic(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.FullMeets {
			t.Errorf("%s: MILP schedule missed deadline", r.Benchmark)
		}
		// The exact optimizer should not lose to the greedy heuristic.
		if r.FullEnergyUJ > r.VariantEnergyUJ*1.02 {
			t.Errorf("%s: MILP energy %v above heuristic %v",
				r.Benchmark, r.FullEnergyUJ, r.VariantEnergyUJ)
		}
	}
}
