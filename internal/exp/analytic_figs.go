package exp

import (
	"fmt"
	"math"

	"ctdvs/internal/analytic"
	"ctdvs/internal/volt"
)

// figVRange is the continuous voltage range used for the analytic-model
// figures. The paper plots supply voltages up to 3.5 V (Figures 2–4) and its
// Figure 5–7 parameter sets require multi-GHz peak frequencies to be
// feasible; the paper does not state the technology constant k it used, so
// we calibrate one that makes its parameter ranges feasible: f(3.5 V) = 6 GHz
// under the alpha-power law with a = 1.5, vt = 0.45 V.
func figVRange() analytic.VRange {
	sc := volt.Scaling{A: volt.Alpha, Vt: volt.VThreshold, K: 1}
	sc.K = 6000 / sc.Freq(3.5) // with K=1, Freq returns the unit factor
	return analytic.VRange{Lo: 0.5, Hi: 3.5, Scaling: sc}
}

// v1Grid samples the voltage axis of the v1 curves.
func v1Grid(vr analytic.VRange, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = vr.Lo + (vr.Hi-vr.Lo)*float64(i)/float64(n-1)
	}
	return xs
}

// Figure2 reproduces the computation-dominated energy-versus-v1 curve: a
// single interior minimum at v_ideal, where both regions share one voltage.
func Figure2() *Curve {
	p := analytic.Params{
		NOverlap:   4e6,
		NDependent: 5.8e6,
		NCache:     3e5,
		TInvariant: 100,
		DeadlineUS: 9000,
	}
	return energyCurve("Figure 2: computation-dominated energy vs v1", p)
}

// Figure3 reproduces the memory-dominated curve: the optimum sits at a v1
// below v_ideal (slow overlapped region, hurry-up dependent region).
func Figure3() *Curve {
	p := analytic.Params{
		NOverlap:   4e6,
		NDependent: 5.8e6,
		NCache:     3e5,
		TInvariant: 3000,
		DeadlineUS: 5000,
	}
	return energyCurve("Figure 3: memory-dominated energy vs v1", p)
}

// Figure4 reproduces the memory-dominated-with-slack curve (NCache ≥
// NOverlap): convex with a single-voltage optimum.
func Figure4() *Curve {
	p := analytic.Params{
		NOverlap:   2e5,
		NDependent: 5e6,
		NCache:     2e6,
		TInvariant: 2000,
		DeadlineUS: 9000,
	}
	return energyCurve("Figure 4: memory-dominated-with-slack energy vs v1", p)
}

func energyCurve(name string, p analytic.Params) *Curve {
	vr := figVRange()
	xs := v1Grid(vr, 120)
	ys := analytic.EnergyVsV1(p, vr, xs)
	return &Curve{
		Name:   name,
		XLabel: "v1 (V)",
		YLabel: "energy (V²·cycles)",
		X:      xs,
		Y:      ys,
	}
}

// continuousSurface sweeps two parameters and records the continuous-case
// energy-saving ratio; infeasible points record 0 (the paper's flat
// regions).
func continuousSurface(name, xl, yl string, xs, ys []float64,
	mk func(x, y float64) analytic.Params) *Surface {

	vr := figVRange()
	z := make([][]float64, len(xs))
	for i, x := range xs {
		z[i] = make([]float64, len(ys))
		for j, y := range ys {
			s, err := analytic.SavingsContinuous(mk(x, y), vr)
			if err != nil {
				s = 0
			}
			z[i][j] = s
		}
	}
	return &Surface{Name: name, XLabel: xl, YLabel: yl, ZLabel: "energy-saving ratio", X: xs, Y: ys, Z: z}
}

// discreteSurface is continuousSurface for a discrete mode set.
func discreteSurface(name, xl, yl string, ms *volt.ModeSet, xs, ys []float64,
	mk func(x, y float64) analytic.Params) *Surface {

	z := make([][]float64, len(xs))
	for i, x := range xs {
		z[i] = make([]float64, len(ys))
		for j, y := range ys {
			s, err := analytic.SavingsDiscrete(mk(x, y), ms)
			if err != nil {
				s = 0
			}
			z[i][j] = s
		}
	}
	return &Surface{Name: name, XLabel: xl, YLabel: yl, ZLabel: "energy-saving ratio", X: xs, Y: ys, Z: z}
}

// grid returns n evenly spaced values over [lo, hi].
func grid(lo, hi float64, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return xs
}

// Figure5 sweeps (NOverlap, NDependent) in the continuous case
// (NCache = 3×10⁵ cycles, tdeadline = 3000 µs, tinvariant = 1000 µs).
func Figure5(n int) *Surface {
	return continuousSurface(
		"Figure 5: continuous savings vs (Noverlap, Ndependent)",
		"Noverlap(Kcyc)", "Ndependent(Kcyc)",
		grid(200, 1800, n), grid(0, 1500, n),
		func(x, y float64) analytic.Params {
			return analytic.Params{
				NOverlap: x * 1e3, NDependent: y * 1e3,
				NCache: 3e5, TInvariant: 1000, DeadlineUS: 3000,
			}
		})
}

// Figure6 sweeps (NCache, tinvariant) in the continuous case
// (NOverlap = 4×10⁶, NDependent = 5.8×10⁶ cycles, tdeadline = 5000 µs).
func Figure6(n int) *Surface {
	return continuousSurface(
		"Figure 6: continuous savings vs (Ncache, tinvariant)",
		"Ncache(Kcyc)", "tinvariant(µs)",
		grid(200, 1800, n), grid(500, 3500, n),
		func(x, y float64) analytic.Params {
			return analytic.Params{
				NOverlap: 4e6, NDependent: 5.8e6,
				NCache: x * 1e3, TInvariant: y, DeadlineUS: 5000,
			}
		})
}

// Figure7 sweeps (tdeadline, NCache) in the continuous case
// (NOverlap = 4×10⁶, NDependent = 5.7×10⁶ cycles, tinvariant = 1000 µs).
func Figure7(n int) *Surface {
	return continuousSurface(
		"Figure 7: continuous savings vs (tdeadline, Ncache)",
		"tdeadline(µs)", "Ncache(Kcyc)",
		grid(1500, 5000, n), grid(500, 4000, n),
		func(x, y float64) analytic.Params {
			return analytic.Params{
				NOverlap: 4e6, NDependent: 5.7e6,
				NCache: y * 1e3, TInvariant: 1000, DeadlineUS: x,
			}
		})
}

// Figure8 plots the paper's Emin(y) staircase for the discrete
// memory-dominated construction at 7 voltage levels.
func Figure8(n int) (*Curve, error) {
	ms, err := volt.Levels(7)
	if err != nil {
		return nil, err
	}
	p := analytic.Params{
		NOverlap:   4e6,
		NDependent: 5.8e6,
		NCache:     3e5,
		TInvariant: 8000,
		DeadlineUS: 16000,
	}
	// The construction is only feasible on a band of y (the cache stream
	// must run within the mode set's frequency span and the leftover
	// overlap computation must fit in the miss window); locate the band
	// with a fine scan, then sample it densely as the paper's plot does.
	span := p.DeadlineUS - p.TInvariant
	const probe = 4096
	yLo, yHi := -1.0, -1.0
	for i := 1; i < probe; i++ {
		y := span * float64(i) / probe
		if !isInf(analytic.EminOfY(p, ms, y)) {
			if yLo < 0 {
				yLo = y
			}
			yHi = y
		}
	}
	xs := make([]float64, 0, n)
	ys := make([]float64, 0, n)
	if yLo > 0 {
		for i := 0; i <= n; i++ {
			y := yLo + (yHi-yLo)*float64(i)/float64(n)
			e := analytic.EminOfY(p, ms, y)
			if isInf(e) {
				continue
			}
			xs = append(xs, y)
			ys = append(ys, e)
		}
	}
	return &Curve{
		Name:   "Figure 8: discrete case Emin(y) vs y (7 levels)",
		XLabel: "y (µs)",
		YLabel: "energy (V²·cycles)",
		X:      xs,
		Y:      ys,
	}, nil
}

// Figure9 sweeps (NOverlap, NDependent) for 7 discrete levels
// (NCache = 2×10⁵ cycles, tdeadline = 5200 µs, tinvariant = 1000 µs).
func Figure9(n int) (*Surface, error) {
	ms, err := volt.Levels(7)
	if err != nil {
		return nil, err
	}
	return discreteSurface(
		"Figure 9: discrete savings vs (Noverlap, Ndependent)",
		"Noverlap(Kcyc)", "Ndependent(Kcyc)", ms,
		grid(200, 1800, n), grid(100, 1500, n),
		func(x, y float64) analytic.Params {
			return analytic.Params{
				NOverlap: x * 1e3, NDependent: y * 1e3,
				NCache: 2e5, TInvariant: 1000, DeadlineUS: 5200,
			}
		}), nil
}

// Figure10 sweeps (NCache, tinvariant) for 7 discrete levels
// (NOverlap = 1.3×10⁷, NDependent = 7×10⁷ cycles, tdeadline = 3.5×10⁵ µs).
func Figure10(n int) (*Surface, error) {
	ms, err := volt.Levels(7)
	if err != nil {
		return nil, err
	}
	return discreteSurface(
		"Figure 10: discrete savings vs (Ncache, tinvariant)",
		"Ncache(Kcyc)", "tinvariant(µs)", ms,
		grid(500, 15000, n), grid(5e3, 2e5, n),
		func(x, y float64) analytic.Params {
			return analytic.Params{
				NOverlap: 1.3e7, NDependent: 7e7,
				NCache: x * 1e3, TInvariant: y, DeadlineUS: 3.5e5,
			}
		}), nil
}

// Figure11 sweeps (tdeadline, NCache) for 7 discrete levels
// (NOverlap = 1.3×10⁷, NDependent = 7×10⁷ cycles, tinvariant = 2×10⁴ µs;
// the deadline axis spans [1.05, 1.6]× the fastest-mode runtime — the
// paper's caption for this figure is internally inconsistent, see
// EXPERIMENTS.md).
func Figure11(n int) (*Surface, error) {
	ms, err := volt.Levels(7)
	if err != nil {
		return nil, err
	}
	base := analytic.Params{
		NOverlap: 1.3e7, NDependent: 7e7, NCache: 5e5, TInvariant: 2e4,
	}
	tFast := base.ExecTimeUS(ms.Max().F)
	return discreteSurface(
		"Figure 11: discrete savings vs (tdeadline, Ncache)",
		"tdeadline(µs)", "Ncache(Kcyc)", ms,
		grid(tFast*1.05, tFast*1.6, n), grid(500, 12000, n),
		func(x, y float64) analytic.Params {
			return analytic.Params{
				NOverlap: 1.3e7, NDependent: 7e7,
				NCache: y * 1e3, TInvariant: 2e4, DeadlineUS: x,
			}
		}), nil
}

// Table1Row is one benchmark × level-count row of Table 1: the analytic
// model's predicted maximum energy-saving ratio at each of the five
// deadlines.
type Table1Row struct {
	Benchmark string
	Levels    int
	Savings   [5]float64
}

// Table1 evaluates the analytic model on the profiled program parameters of
// the four Table 7 benchmarks, for 3/7/13 voltage levels and the five paper
// deadline positions.
//
// Deadlines are placed at the paper's fractional positions within the
// model's own [T(f_max), T(f_min)] runtime span rather than the simulator's:
// the model idealizes cache-hit memory as fully overlapped with computation,
// so its absolute times sit below the simulator's, and reusing simulator
// deadlines would misalign which single-frequency baseline each deadline
// selects (see EXPERIMENTS.md).
func Table1(c *Config) ([]Table1Row, error) {
	ms3, err := volt.Levels(3)
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, bench := range Table7Benchmarks() {
		pr, err := c.Profile(bench, 0, 3)
		if err != nil {
			return nil, err
		}
		spec, err := c.Spec(bench)
		if err != nil {
			return nil, err
		}
		mp := pr.Params
		model := analytic.Params{
			NOverlap:   float64(mp.NOverlap),
			NDependent: float64(mp.NDependent),
			NCache:     float64(mp.NCache),
			TInvariant: mp.TInvariantUS,
			DeadlineUS: 1, // placeholder; set per deadline below
		}
		dls := spec.Deadlines(model.ExecTimeUS(ms3.Max().F), model.ExecTimeUS(ms3.Min().F))
		for _, levels := range []int{3, 7, 13} {
			ms, err := volt.Levels(levels)
			if err != nil {
				return nil, err
			}
			row := Table1Row{Benchmark: bench, Levels: levels}
			for k, dl := range dls {
				p := model
				p.DeadlineUS = dl
				s, err := analytic.SavingsDiscrete(p, ms)
				if err != nil {
					s = 0 // model deadline infeasible at this level count
				}
				row.Savings[k] = s
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderTable1 formats Table 1 in the paper's layout.
func RenderTable1(rows []Table1Row) *Table {
	t := &Table{
		Title:   "Table 1: analytical energy-saving ratio (deadlines 1=tight … 5=lax)",
		Headers: []string{"Benchmark", "Levels", "D1", "D2", "D3", "D4", "D5"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Benchmark, fmt.Sprintf("%d", r.Levels),
			fmt.Sprintf("%.2f", r.Savings[0]),
			fmt.Sprintf("%.2f", r.Savings[1]),
			fmt.Sprintf("%.2f", r.Savings[2]),
			fmt.Sprintf("%.2f", r.Savings[3]),
			fmt.Sprintf("%.2f", r.Savings[4]),
		})
	}
	return t
}

func isInf(x float64) bool { return math.IsInf(x, 1) }
