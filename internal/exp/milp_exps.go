package exp

import (
	"fmt"
	"time"

	"ctdvs/internal/core"
	"ctdvs/internal/profile"
	"ctdvs/internal/volt"
)

// Table4Row is one benchmark row of Table 4: fixed-mode runtimes and the
// five chosen deadlines (all in ms, as in the paper).
type Table4Row struct {
	Benchmark        string
	T200, T600, T800 float64 // ms
	Deadlines        [5]float64
}

// Table4 measures the fixed-mode runtimes of every benchmark and derives the
// paper's deadline positions (Figure 16). Deadline 5 is the laxest.
func Table4(c *Config) ([]Table4Row, error) {
	suite := Suite()
	rows := make([]Table4Row, len(suite))
	err := c.forEach(len(suite), func(i int) error {
		bench := suite[i]
		pr, err := c.Profile(bench, 0, 3)
		if err != nil {
			return err
		}
		dls, err := c.Deadlines(bench)
		if err != nil {
			return err
		}
		row := Table4Row{
			Benchmark: bench,
			T200:      pr.TotalTimeUS[0] / 1e3,
			T600:      pr.TotalTimeUS[1] / 1e3,
			T800:      pr.TotalTimeUS[2] / 1e3,
		}
		for k := range dls {
			row.Deadlines[k] = dls[k] / 1e3
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable4 formats Table 4 in the paper's layout (Deadline 5 … 1).
func RenderTable4(rows []Table4Row) *Table {
	t := &Table{
		Title: "Table 4: runtimes at fixed modes and chosen deadlines (ms)",
		Headers: []string{"Benchmark", "t@200MHz", "t@600MHz", "t@800MHz",
			"D5", "D4", "D3", "D2", "D1"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Benchmark,
			fmt.Sprintf("%.1f", r.T200), fmt.Sprintf("%.1f", r.T600), fmt.Sprintf("%.1f", r.T800),
			fmt.Sprintf("%.1f", r.Deadlines[4]), fmt.Sprintf("%.1f", r.Deadlines[3]),
			fmt.Sprintf("%.1f", r.Deadlines[2]), fmt.Sprintf("%.1f", r.Deadlines[1]),
			fmt.Sprintf("%.1f", r.Deadlines[0]),
		})
	}
	return t
}

// Table7Row is one benchmark row of Table 7: the profiled analytic-model
// parameters.
type Table7Row struct {
	Benchmark                       string
	NCacheK, NOverlapK, NDependentK float64 // Kcycles
	TInvariantUS                    float64
}

// Table7 profiles the four analytic-model benchmarks at the fastest mode.
func Table7(c *Config) ([]Table7Row, error) {
	benches := Table7Benchmarks()
	rows := make([]Table7Row, len(benches))
	err := c.forEach(len(benches), func(i int) error {
		pr, err := c.Profile(benches[i], 0, 3)
		if err != nil {
			return err
		}
		p := pr.Params
		rows[i] = Table7Row{
			Benchmark:    benches[i],
			NCacheK:      float64(p.NCache) / 1e3,
			NOverlapK:    float64(p.NOverlap) / 1e3,
			NDependentK:  float64(p.NDependent) / 1e3,
			TInvariantUS: p.TInvariantUS,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable7 formats Table 7.
func RenderTable7(rows []Table7Row) *Table {
	t := &Table{
		Title:   "Table 7: profiled program parameters",
		Headers: []string{"Benchmark", "Ncache(Kcyc)", "Noverlap(Kcyc)", "Ndependent(Kcyc)", "tinvariant(µs)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Benchmark,
			fmt.Sprintf("%.1f", r.NCacheK), fmt.Sprintf("%.1f", r.NOverlapK),
			fmt.Sprintf("%.1f", r.NDependentK), fmt.Sprintf("%.1f", r.TInvariantUS),
		})
	}
	return t
}

// FilterRow is one benchmark of Table 3 / Figure 14: the MILP run on the
// full edge set versus the filtered subset.
type FilterRow struct {
	Benchmark string

	FullEnergyUJ     float64
	FilteredEnergyUJ float64

	FullEdges      int // independent mode decisions, unfiltered
	FilteredGroups int

	FullSolve     time.Duration
	FilteredSolve time.Duration
}

// Speedup returns the solve-time ratio full/filtered (Figure 14's y-axis).
func (r FilterRow) Speedup() float64 {
	if r.FilteredSolve <= 0 {
		return 0
	}
	return float64(r.FullSolve) / float64(r.FilteredSolve)
}

// Table3Figure14 runs the optimizer with and without edge filtering at
// Deadline 5 (as the paper does, with the 12 µs / 1.2 µJ transition cost).
func Table3Figure14(c *Config) ([]FilterRow, error) {
	reg := volt.DefaultRegulator()
	suite := Suite()
	opts := c.solverOpts()
	rows := make([]FilterRow, len(suite))
	err := c.forEach(len(suite), func(i int) error {
		bench := suite[i]
		pr, err := c.Profile(bench, 0, 3)
		if err != nil {
			return err
		}
		dls, err := c.Deadlines(bench)
		if err != nil {
			return err
		}
		dl := dls[4] // Deadline 5
		full, err := c.OptimizeSingle(pr, dl, &core.Options{
			Regulator: reg, FilterTail: -1, MILP: opts,
		})
		if err != nil {
			return fmt.Errorf("%s full: %w", bench, err)
		}
		filt, err := c.OptimizeSingle(pr, dl, &core.Options{
			Regulator: reg, FilterTail: 0.02, MILP: opts,
		})
		if err != nil {
			return fmt.Errorf("%s filtered: %w", bench, err)
		}
		rows[i] = FilterRow{
			Benchmark:        bench,
			FullEnergyUJ:     full.PredictedEnergyUJ,
			FilteredEnergyUJ: filt.PredictedEnergyUJ,
			FullEdges:        full.IndependentEdges,
			FilteredGroups:   filt.IndependentEdges,
			FullSolve:        full.Solver.SolveTime,
			FilteredSolve:    filt.Solver.SolveTime,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable3Figure14 formats the filtering comparison.
func RenderTable3Figure14(rows []FilterRow) *Table {
	t := &Table{
		Title: "Table 3 / Figure 14: edge filtering — energy and MILP solve time",
		Headers: []string{"Benchmark", "E(all) µJ", "E(subset) µJ",
			"edges", "groups", "t(all)", "t(subset)", "speedup"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Benchmark,
			fmt.Sprintf("%.1f", r.FullEnergyUJ), fmt.Sprintf("%.1f", r.FilteredEnergyUJ),
			fmt.Sprintf("%d", r.FullEdges), fmt.Sprintf("%d", r.FilteredGroups),
			r.FullSolve.Round(time.Microsecond).String(),
			r.FilteredSolve.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", r.Speedup()),
		})
	}
	return t
}

// Fig15Row is one benchmark series of Figure 15: measured program energy as
// the regulator capacitance (and with it the transition cost) shrinks,
// normalized to the 600 MHz fixed run.
type Fig15Row struct {
	Benchmark    string
	CapsF        []float64 // regulator capacitance, farads
	NormEnergy   []float64 // measured energy / 600 MHz fixed-run energy
	Transitions  []int64
	Baseline600J float64 // µJ
}

// Figure15 sweeps c ∈ {100µ, 10µ, 1µ, 0.1µ, 0.01µ}F at Deadline 5. Every
// (benchmark, capacitance) cell is independent, so the whole grid fans out
// over the configured worker pool with results collected in grid order.
func Figure15(c *Config) ([]Fig15Row, error) {
	caps := []float64{100e-6, 10e-6, 1e-6, 0.1e-6, 0.01e-6}
	suite := Suite()
	opts := c.solverOpts()
	rows := make([]Fig15Row, len(suite))
	for b := range rows {
		rows[b] = Fig15Row{
			Benchmark:   suite[b],
			CapsF:       append([]float64(nil), caps...),
			NormEnergy:  make([]float64, len(caps)),
			Transitions: make([]int64, len(caps)),
		}
	}
	err := c.forEach(len(suite)*len(caps), func(i int) error {
		b, ci := i/len(caps), i%len(caps)
		bench, cap := suite[b], caps[ci]
		pr, err := c.Profile(bench, 0, 3)
		if err != nil {
			return err
		}
		dls, err := c.Deadlines(bench)
		if err != nil {
			return err
		}
		dl := dls[4]
		base := pr.TotalEnergyUJ[1] // fixed 600 MHz run
		if ci == 0 {
			rows[b].Baseline600J = base
		}
		reg := volt.DefaultRegulator().WithCapacitance(cap)
		res, err := c.OptimizeSingle(pr, dl, &core.Options{Regulator: reg, MILP: opts})
		if err != nil {
			return fmt.Errorf("%s c=%v: %w", bench, cap, err)
		}
		ev, err := c.Measure(pr, res.Schedule, dl)
		if err != nil {
			return err
		}
		rows[b].NormEnergy[ci] = ev.Run.EnergyUJ / base
		rows[b].Transitions[ci] = ev.Run.Transitions
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFigure15 formats the transition-cost sweep.
func RenderFigure15(rows []Fig15Row) *Table {
	t := &Table{
		Title:   "Figure 15: energy vs transition cost (normalized to fixed 600 MHz; deadline 5)",
		Headers: []string{"Benchmark", "c=100µF", "c=10µF", "c=1µF", "c=0.1µF", "c=0.01µF"},
	}
	for _, r := range rows {
		cells := []string{r.Benchmark}
		for i := range r.CapsF {
			cells = append(cells, fmt.Sprintf("%.3f (%d sw)", r.NormEnergy[i], r.Transitions[i]))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}

// DeadlineSweepRow is one benchmark's sweep over the five deadlines: the
// data behind Figure 17 (energy), Figure 18 (solve time) and Table 5
// (dynamic transition counts).
type DeadlineSweepRow struct {
	Benchmark   string
	DeadlinesUS [5]float64
	// NormEnergy is measured energy normalized to the best fixed mode that
	// meets each deadline (Figure 17's y-axis).
	NormEnergy  [5]float64
	EnergyUJ    [5]float64
	SolveTime   [5]time.Duration
	Transitions [5]int64
	MeetsDL     [5]bool
}

// DeadlineSweep optimizes and measures every benchmark at all five
// deadlines with the typical c = 10 µF transition cost. The 6×5
// (benchmark, deadline) grid fans out over the configured worker pool.
func DeadlineSweep(c *Config) ([]DeadlineSweepRow, error) {
	reg := volt.DefaultRegulator()
	suite := Suite()
	opts := c.solverOpts()
	rows := make([]DeadlineSweepRow, len(suite))
	err := c.forEach(len(suite)*5, func(i int) error {
		b, k := i/5, i%5
		bench := suite[b]
		pr, err := c.Profile(bench, 0, 3)
		if err != nil {
			return err
		}
		dls, err := c.Deadlines(bench)
		if err != nil {
			return err
		}
		if k == 0 {
			rows[b].Benchmark = bench
			rows[b].DeadlinesUS = dls
		}
		dl := dls[k]
		res, err := c.OptimizeSingle(pr, dl, &core.Options{Regulator: reg, MILP: opts})
		if err != nil {
			return fmt.Errorf("%s D%d: %w", bench, k+1, err)
		}
		ev, err := c.Measure(pr, res.Schedule, dl)
		if err != nil {
			return err
		}
		_, baseE, ok := pr.BestSingleMode(dl)
		if !ok {
			return fmt.Errorf("%s D%d: no single mode meets deadline", bench, k+1)
		}
		rows[b].EnergyUJ[k] = ev.Run.EnergyUJ
		rows[b].NormEnergy[k] = ev.Run.EnergyUJ / baseE
		rows[b].SolveTime[k] = res.Solver.SolveTime
		rows[b].Transitions[k] = ev.Run.Transitions
		rows[b].MeetsDL[k] = ev.Run.TimeUS <= dl*1.02
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFigure17 formats the energy-vs-deadline series.
func RenderFigure17(rows []DeadlineSweepRow) *Table {
	t := &Table{
		Title:   "Figure 17: optimized energy vs deadline (normalized to best single mode)",
		Headers: []string{"Benchmark", "D1", "D2", "D3", "D4", "D5"},
	}
	for _, r := range rows {
		cells := []string{r.Benchmark}
		for k := 0; k < 5; k++ {
			cells = append(cells, fmt.Sprintf("%.3f", r.NormEnergy[k]))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}

// RenderFigure18 formats the solve-time series.
func RenderFigure18(rows []DeadlineSweepRow) *Table {
	t := &Table{
		Title:   "Figure 18: MILP solution time per deadline",
		Headers: []string{"Benchmark", "D1", "D2", "D3", "D4", "D5"},
	}
	for _, r := range rows {
		cells := []string{r.Benchmark}
		for k := 0; k < 5; k++ {
			cells = append(cells, r.SolveTime[k].Round(time.Microsecond).String())
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}

// RenderTable5 formats the dynamic transition counts.
func RenderTable5(rows []DeadlineSweepRow) *Table {
	t := &Table{
		Title:   "Table 5: dynamic mode transition counts (c = 10 µF)",
		Headers: []string{"Benchmark", "D1", "D2", "D3", "D4", "D5"},
	}
	for _, r := range rows {
		cells := []string{r.Benchmark}
		for k := 0; k < 5; k++ {
			cells = append(cells, fmt.Sprintf("%d", r.Transitions[k]))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}

// Table6Row is one benchmark × level-count row of Table 6: MILP-measured
// energy-saving ratios at each deadline, the practical counterpart of
// Table 1's analytic bounds.
type Table6Row struct {
	Benchmark string
	Levels    int
	Savings   [5]float64
}

// Table6 runs the full optimize-and-measure pipeline for 3/7/13 voltage
// levels on the Table 7 benchmarks. The (benchmark, level-count) cells fan
// out over the configured worker pool; the five deadlines of a cell stay
// sequential on one pooled machine.
func Table6(c *Config) ([]Table6Row, error) {
	reg := volt.DefaultRegulator()
	benches := Table7Benchmarks()
	levelSets := []int{3, 7, 13}
	opts := c.solverOpts()
	rows := make([]Table6Row, len(benches)*len(levelSets))
	err := c.forEach(len(rows), func(i int) error {
		bench := benches[i/len(levelSets)]
		levels := levelSets[i%len(levelSets)]
		dls, err := c.Deadlines(bench)
		if err != nil {
			return err
		}
		pr, err := c.Profile(bench, 0, levels)
		if err != nil {
			return err
		}
		row := Table6Row{Benchmark: bench, Levels: levels}
		for k, dl := range dls {
			res, err := c.OptimizeSingle(pr, dl, &core.Options{Regulator: reg, MILP: opts})
			if err != nil {
				// A deadline the level set cannot meet records zero.
				continue
			}
			s, err := c.Savings(pr, res.Schedule, dl, reg)
			if err != nil {
				continue
			}
			if s < 0 {
				s = 0
			}
			row.Savings[k] = s
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable6 formats Table 6 in the paper's layout.
func RenderTable6(rows []Table6Row) *Table {
	t := &Table{
		Title:   "Table 6: MILP-measured energy-saving ratio (deadlines 1=tight … 5=lax)",
		Headers: []string{"Benchmark", "Levels", "D1", "D2", "D3", "D4", "D5"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Benchmark, fmt.Sprintf("%d", r.Levels),
			fmt.Sprintf("%.2f", r.Savings[0]),
			fmt.Sprintf("%.2f", r.Savings[1]),
			fmt.Sprintf("%.2f", r.Savings[2]),
			fmt.Sprintf("%.2f", r.Savings[3]),
			fmt.Sprintf("%.2f", r.Savings[4]),
		})
	}
	return t
}

// Fig19Row is one (run input × profiling strategy) cell of Figure 19:
// the measured runtime of the mpeg benchmark under a schedule optimized
// from different profiling inputs.
type Fig19Row struct {
	RunInput string
	// TimesUS[strategy]: 0 = profiled on the same input, 1 = profiled on
	// flwr, 2 = profiled on bbc, 3 = optimized for the flwr/bbc average.
	TimesUS [4]float64
	// EnergiesUJ mirrors TimesUS for the energy sensitivity noted in §6.4.
	EnergiesUJ [4]float64
}

// Fig19Strategies names the four profiling strategies, in column order.
func Fig19Strategies() [4]string {
	return [4]string{"self", "opt. for flwr", "opt. for bbc", "opt. for average"}
}

// Figure19 reproduces the multiple-input experiment on mpeg/decode with its
// four bitstreams. One absolute Deadline-4 target — a property of the
// application, derived from the default (flwr) profile — is used for every
// optimization; what varies is the profile the MILP plans with. A schedule
// planned from the no-B-frames bbc profile under-estimates the runtime of
// B-frame inputs, which is exactly the failure mode the paper observes, and
// the category-averaged optimization recovers from it.
func Figure19(c *Config) ([]Fig19Row, error) {
	spec, err := c.Spec("mpeg/decode")
	if err != nil {
		return nil, err
	}
	reg := volt.DefaultRegulator()

	inputIdx := map[string]int{}
	for i, in := range spec.Inputs {
		inputIdx[in.Name] = i
	}
	flwr, bbc := inputIdx["flwr.m2v"], inputIdx["bbc.m2v"]

	// The common application deadline (Deadline 4 of the default profile).
	base, err := c.Profile("mpeg/decode", flwr, 3)
	if err != nil {
		return nil, err
	}
	n := base.Modes.Len()
	deadline := base.TotalTimeUS[n-1] + spec.DeadlineFracs[3]*(base.TotalTimeUS[0]-base.TotalTimeUS[n-1])

	schedFor := func(idx int) (*core.Result, *profile.Profile, error) {
		pr, err := c.Profile("mpeg/decode", idx, 3)
		if err != nil {
			return nil, nil, err
		}
		res, err := c.OptimizeSingle(pr, deadline, &core.Options{Regulator: reg, MILP: c.MILP})
		if err != nil {
			return nil, nil, err
		}
		return res, pr, nil
	}

	flwrRes, flwrProf, err := schedFor(flwr)
	if err != nil {
		return nil, err
	}
	bbcRes, bbcProf, err := schedFor(bbc)
	if err != nil {
		return nil, err
	}
	avgRes, err := c.Optimize([]core.Category{
		{Profile: flwrProf, Weight: 0.5, DeadlineUS: deadline},
		{Profile: bbcProf, Weight: 0.5, DeadlineUS: deadline},
	}, &core.Options{Regulator: reg, MILP: c.MILP})
	if err != nil {
		return nil, err
	}

	var rows []Fig19Row
	for _, in := range spec.Inputs {
		idx := inputIdx[in.Name]
		selfRes, runProf, err := schedFor(idx)
		if err != nil {
			return nil, err
		}
		row := Fig19Row{RunInput: in.Name}
		for si, sched := range []*core.Result{selfRes, flwrRes, bbcRes, avgRes} {
			run, err := c.RunSchedule(runProf, sched.Schedule)
			if err != nil {
				return nil, err
			}
			row.TimesUS[si] = run.TimeUS
			row.EnergiesUJ[si] = run.EnergyUJ
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig19Deadline exposes the common deadline Figure19 optimizes against,
// for reporting.
func Fig19Deadline(c *Config) (float64, error) {
	spec, err := c.Spec("mpeg/decode")
	if err != nil {
		return 0, err
	}
	base, err := c.Profile("mpeg/decode", 0, 3)
	if err != nil {
		return 0, err
	}
	n := base.Modes.Len()
	return base.TotalTimeUS[n-1] + spec.DeadlineFracs[3]*(base.TotalTimeUS[0]-base.TotalTimeUS[n-1]), nil
}

type coreProfile struct {
	pr       *profile.Profile
	deadline float64
}

// RenderFigure19 formats the cross-input runtimes.
func RenderFigure19(rows []Fig19Row) *Table {
	strats := Fig19Strategies()
	t := &Table{
		Title:   "Figure 19: mpeg runtime (ms) under schedules from different profiling inputs",
		Headers: []string{"Run input", strats[0], strats[1], strats[2], strats[3]},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.RunInput,
			fmt.Sprintf("%.2f", r.TimesUS[0]/1e3),
			fmt.Sprintf("%.2f", r.TimesUS[1]/1e3),
			fmt.Sprintf("%.2f", r.TimesUS[2]/1e3),
			fmt.Sprintf("%.2f", r.TimesUS[3]/1e3),
		})
	}
	return t
}
