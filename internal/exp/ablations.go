package exp

import (
	"fmt"

	"ctdvs/internal/core"
	"ctdvs/internal/volt"
)

// AblationRow compares the full optimizer against one restricted variant on
// one benchmark: predicted and measured energy, measured transitions, and
// whether the measured run met the deadline.
type AblationRow struct {
	Benchmark string

	FullEnergyUJ    float64
	VariantEnergyUJ float64

	FullTransitions    int64
	VariantTransitions int64

	FullMeets    bool
	VariantMeets bool
}

// ablate runs the full optimizer and a variant produced by mkVariant at
// Deadline 3 (mid-range, where mode mixing is richest) and measures both.
func ablate(c *Config, reg volt.Regulator, variant func(pr *coreProfile) (*core.Result, error)) ([]AblationRow, error) {
	var rows []AblationRow
	for _, bench := range Suite() {
		pr, err := c.Profile(bench, 0, 3)
		if err != nil {
			return nil, err
		}
		dls, err := c.Deadlines(bench)
		if err != nil {
			return nil, err
		}
		dl := dls[2]
		full, err := c.OptimizeSingle(pr, dl, &core.Options{Regulator: reg, MILP: c.MILP})
		if err != nil {
			return nil, fmt.Errorf("%s full: %w", bench, err)
		}
		varRes, err := variant(&coreProfile{pr: pr, deadline: dl})
		if err != nil {
			return nil, fmt.Errorf("%s variant: %w", bench, err)
		}
		fullEv, err := c.Measure(pr, full.Schedule, dl)
		if err != nil {
			return nil, err
		}
		varEv, err := c.Measure(pr, varRes.Schedule, dl)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Benchmark:          bench,
			FullEnergyUJ:       fullEv.Run.EnergyUJ,
			VariantEnergyUJ:    varEv.Run.EnergyUJ,
			FullTransitions:    fullEv.Run.Transitions,
			VariantTransitions: varEv.Run.Transitions,
			FullMeets:          fullEv.MeetsDeadline,
			VariantMeets:       varEv.Run.TimeUS <= dl*1.02,
		})
	}
	return rows, nil
}

// AblationNoTransitionCost compares against the Saputra-style formulation
// that ignores switching costs in the optimization (the schedule still pays
// them when executed). Run with an expensive regulator (c = 100 µF) to make
// the blindness visible, as in the paper's motivation for Section 4.2.
func AblationNoTransitionCost(c *Config) ([]AblationRow, error) {
	reg := volt.DefaultRegulator().WithCapacitance(100e-6)
	return ablate(c, reg, func(p *coreProfile) (*core.Result, error) {
		return c.OptimizeSingle(p.pr, p.deadline, &core.Options{
			Regulator: reg, NoTransitionCosts: true, MILP: c.MILP,
		})
	})
}

// AblationBlockBased compares the edge-based formulation against the
// block-based restriction of earlier work (one mode decision per region).
func AblationBlockBased(c *Config) ([]AblationRow, error) {
	reg := volt.DefaultRegulator()
	return ablate(c, reg, func(p *coreProfile) (*core.Result, error) {
		return c.OptimizeSingle(p.pr, p.deadline, &core.Options{
			Regulator: reg, BlockBased: true, MILP: c.MILP,
		})
	})
}

// AblationHeuristic compares the MILP against the Hsu–Kremer-style
// memory-bound-region heuristic.
func AblationHeuristic(c *Config) ([]AblationRow, error) {
	reg := volt.DefaultRegulator()
	return ablate(c, reg, func(p *coreProfile) (*core.Result, error) {
		sched, err := core.HeuristicMemoryBound(p.pr, p.deadline, reg)
		if err != nil {
			return nil, err
		}
		return &core.Result{Schedule: sched}, nil
	})
}

// RenderAblation formats an ablation comparison.
func RenderAblation(title string, rows []AblationRow) *Table {
	t := &Table{
		Title: title,
		Headers: []string{"Benchmark", "E(full) µJ", "E(variant) µJ",
			"sw(full)", "sw(variant)", "meets(full)", "meets(variant)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Benchmark,
			fmt.Sprintf("%.1f", r.FullEnergyUJ), fmt.Sprintf("%.1f", r.VariantEnergyUJ),
			fmt.Sprintf("%d", r.FullTransitions), fmt.Sprintf("%d", r.VariantTransitions),
			fmt.Sprintf("%v", r.FullMeets), fmt.Sprintf("%v", r.VariantMeets),
		})
	}
	return t
}
