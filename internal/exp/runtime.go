package exp

import (
	"fmt"

	"ctdvs/internal/core"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

// RuntimeRow compares compile-time MILP scheduling against run-time
// interval-based governors (the OS-level policy family of the paper's
// related work, Section 2) on one benchmark at Deadline 4.
type RuntimeRow struct {
	Benchmark string

	// MILP: the paper's approach. Meets the deadline by construction.
	MILPEnergyUJ float64
	MILPTimeUS   float64

	// Utilization (PAST-style) governor.
	UtilEnergyUJ float64
	UtilTimeUS   float64
	UtilMeets    bool
	UtilSwitches int64

	// Miss-rate (Marculescu-style) governor.
	MissEnergyUJ float64
	MissTimeUS   float64
	MissMeets    bool
	MissSwitches int64

	// Deadline-aware pacing (PACE/Lorch-Smith-style) governor: knows the
	// profiled total cycles and the deadline, the strongest run-time
	// baseline.
	PaceEnergyUJ float64
	PaceTimeUS   float64
	PaceMeets    bool
	PaceSwitches int64

	DeadlineUS float64
}

// RuntimeVsCompileTime measures what the paper argues qualitatively: a
// run-time policy sees memory-boundedness but not the deadline, so it can
// neither exploit deadline slack on compute-bound programs nor guarantee
// the deadline on memory-bound ones; the compile-time optimizer does both.
// Governors start at the fastest mode with a 500 µs interval.
func RuntimeVsCompileTime(c *Config) ([]RuntimeRow, error) {
	reg := volt.DefaultRegulator()
	ms := volt.XScale3()
	var rows []RuntimeRow
	for _, bench := range Suite() {
		pr, err := c.Profile(bench, 0, 3)
		if err != nil {
			return nil, err
		}
		dls, err := c.Deadlines(bench)
		if err != nil {
			return nil, err
		}
		dl := dls[3] // Deadline 4
		spec, err := c.Spec(bench)
		if err != nil {
			return nil, err
		}

		res, err := c.OptimizeSingle(pr, dl, &core.Options{Regulator: reg, MILP: c.MILP})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", bench, err)
		}
		milp, err := c.RunSchedule(pr, res.Schedule)
		if err != nil {
			return nil, err
		}

		util, err := c.Machine.RunGoverned(spec.Program, spec.Inputs[0], ms, reg,
			ms.Len()-1, 500, &sim.UtilizationGovernor{Modes: ms, Low: 0.6, High: 0.9})
		if err != nil {
			return nil, err
		}
		miss, err := c.Machine.RunGoverned(spec.Program, spec.Inputs[0], ms, reg,
			ms.Len()-1, 500, &sim.MissRateGovernor{Modes: ms, LowMissesPerUS: 0.5, HighMissesPerUS: 3})
		if err != nil {
			return nil, err
		}
		total := pr.Params.NCache + pr.Params.NOverlap + pr.Params.NDependent
		pace, err := c.Machine.RunGoverned(spec.Program, spec.Inputs[0], ms, reg,
			ms.Len()-1, 500, &sim.DeadlineGovernor{Modes: ms, TotalCycles: total, DeadlineUS: dl, Margin: 1.1})
		if err != nil {
			return nil, err
		}

		rows = append(rows, RuntimeRow{
			Benchmark:    bench,
			MILPEnergyUJ: milp.EnergyUJ,
			MILPTimeUS:   milp.TimeUS,
			UtilEnergyUJ: util.EnergyUJ,
			UtilTimeUS:   util.TimeUS,
			UtilMeets:    util.TimeUS <= dl*1.02,
			UtilSwitches: util.Transitions,
			MissEnergyUJ: miss.EnergyUJ,
			MissTimeUS:   miss.TimeUS,
			MissMeets:    miss.TimeUS <= dl*1.02,
			MissSwitches: miss.Transitions,
			PaceEnergyUJ: pace.EnergyUJ,
			PaceTimeUS:   pace.TimeUS,
			PaceMeets:    pace.TimeUS <= dl*1.02,
			PaceSwitches: pace.Transitions,
			DeadlineUS:   dl,
		})
	}
	return rows, nil
}

// RenderRuntime formats the comparison.
func RenderRuntime(rows []RuntimeRow) *Table {
	t := &Table{
		Title: "Run-time interval governors vs compile-time MILP (deadline 4)",
		Headers: []string{"Benchmark", "E(MILP) µJ", "E(util) µJ", "E(miss) µJ", "E(pace) µJ",
			"meets(util)", "meets(miss)", "meets(pace)", "sw(pace)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Benchmark,
			fmt.Sprintf("%.1f", r.MILPEnergyUJ),
			fmt.Sprintf("%.1f", r.UtilEnergyUJ),
			fmt.Sprintf("%.1f", r.MissEnergyUJ),
			fmt.Sprintf("%.1f", r.PaceEnergyUJ),
			fmt.Sprintf("%v", r.UtilMeets),
			fmt.Sprintf("%v", r.MissMeets),
			fmt.Sprintf("%v", r.PaceMeets),
			fmt.Sprintf("%d", r.PaceSwitches),
		})
	}
	return t
}
