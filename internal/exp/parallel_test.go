package exp

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestForEach checks the fan-out helper directly: every index runs exactly
// once, and when several indices fail the error of the smallest index wins
// regardless of scheduling.
func TestForEach(t *testing.T) {
	c := testConfig()
	c.Workers = 8

	ran := make([]int32, 100)
	errA, errB := errors.New("a"), errors.New("b")
	err := c.forEach(len(ran), func(i int) error {
		atomic.AddInt32(&ran[i], 1)
		switch i {
		case 12:
			return errA
		case 37:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Errorf("got error %v, want the smallest failing index's (%v)", err, errA)
	}
	for i, n := range ran {
		if n != 1 {
			t.Errorf("index %d ran %d times", i, n)
		}
	}

	// Serial mode stops at the first error like the old loops did.
	c.Workers = 1
	calls := 0
	err = c.forEach(10, func(i int) error {
		calls++
		if i == 3 {
			return errB
		}
		return nil
	})
	if err != errB || calls != 4 {
		t.Errorf("serial: err=%v calls=%d, want %v and 4", err, calls, errB)
	}
}

// TestProfileConcurrentDedup hammers one profile key from many goroutines;
// the per-key once must collect it exactly once and hand back one pointer.
func TestProfileConcurrentDedup(t *testing.T) {
	c := testConfig()
	c.Workers = 8
	prs := make([]interface{}, 16)
	err := c.forEach(len(prs), func(i int) error {
		pr, err := c.Profile("adpcm/encode", 0, 3)
		prs[i] = pr
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(prs); i++ {
		if prs[i] != prs[0] {
			t.Fatalf("goroutine %d got a different profile instance", i)
		}
	}
}

// TestParallelFanOutMatchesSerial runs the same experiments with Workers 1
// and Workers 8 on fresh configs and requires identical results: the fan-out
// only reorders execution, never the collected rows.
func TestParallelFanOutMatchesSerial(t *testing.T) {
	ser := testConfig()
	ser.Workers = 1
	par := testConfig()
	par.Workers = 8

	st4, err := Table4(ser)
	if err != nil {
		t.Fatal(err)
	}
	pt4, err := Table4(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st4, pt4) {
		t.Errorf("Table4 differs:\nserial   %+v\nparallel %+v", st4, pt4)
	}

	sf15, err := Figure15(ser)
	if err != nil {
		t.Fatal(err)
	}
	pf15, err := Figure15(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sf15, pf15) {
		t.Errorf("Figure15 differs:\nserial   %+v\nparallel %+v", sf15, pf15)
	}
}
