package exp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ctdvs/internal/pipeline"
	"ctdvs/internal/schedfile"
	"ctdvs/internal/sim"
)

// randSolverStats draws a plausible solver-statistics record.
func randSolverStats(rng *rand.Rand) solverStatsJSON {
	return solverStatsJSON{
		Status:         rng.Intn(4),
		Objective:      rng.Float64() * 1e4,
		Bound:          rng.Float64() * 1e4,
		Nodes:          rng.Intn(1 << 20),
		LPIters:        rng.Intn(1 << 20),
		Workers:        1 + rng.Intn(16),
		SolveTimeNS:    rng.Int63n(1e12),
		WarmSolves:     rng.Intn(1000),
		ColdSolves:     rng.Intn(1000),
		WarmFallbacks:  rng.Intn(100),
		LPPivots:       rng.Intn(1 << 20),
		LPTimeNS:       rng.Int63n(1e12),
		AnalyticPrunes: rng.Intn(1000),
	}
}

// randScheduleFile draws a schedule file with the shape schedfile.New
// produces: at least one mode, non-nil assignments.
func randScheduleFile(rng *rand.Rand) *schedfile.File {
	nModes := 1 + rng.Intn(5)
	f := &schedfile.File{
		Version: 1,
		Program: "prog",
		Modes:   make([]schedfile.ModeJSON, nModes),
		Initial: rng.Intn(nModes),
		Regulator: schedfile.RegulatorJSON{
			CapacitanceF: rng.Float64() * 1e-4,
			Efficiency:   rng.Float64(),
			IMaxA:        rng.Float64() * 5,
		},
		Assignments: make([]schedfile.AssignmentJSON, rng.Intn(8)),
	}
	for i := range f.Modes {
		f.Modes[i] = schedfile.ModeJSON{Volts: 0.7 + rng.Float64(), MHz: 100 + rng.Float64()*900}
	}
	for i := range f.Assignments {
		f.Assignments[i] = schedfile.AssignmentJSON{
			From: rng.Intn(20) - 1, To: rng.Intn(20), Mode: rng.Intn(nModes),
		}
	}
	return f
}

// TestSolveArtifactBinaryParity is the parity property over randomly drawn
// solve artifacts with the shapes real solves produce: the binary round trip
// must equal the JSON round trip value for value, and re-encode to identical
// bytes.
func TestSolveArtifactBinaryParity(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := &solveArtifact{Version: solveArtifactVersion, Solver: randSolverStats(rng)}
		if rng.Intn(4) == 0 {
			a.Infeasible = true // infeasible artifacts carry no schedule
		} else {
			a.Schedule = randScheduleFile(rng)
			a.PredictedEnergyUJ = rng.Float64() * 1e6
			a.PredictedTimeUS = make([]float64, 1+rng.Intn(4))
			for i := range a.PredictedTimeUS {
				a.PredictedTimeUS[i] = rng.Float64() * 1e5
			}
			a.IndependentEdges = rng.Intn(100)
			a.TotalEdges = a.IndependentEdges + rng.Intn(100)
		}

		jdata, err := solveStage.Encode(a)
		if err != nil {
			return false
		}
		bdata, err := encodeSolveBinary(a)
		if err != nil {
			return false
		}
		if !pipeline.IsBinaryArtifact(bdata) {
			return false
		}
		fromJSON, err := solveStage.Decode(jdata)
		if err != nil {
			return false
		}
		fromBin, err := decodeSolveBinary(bdata)
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(fromJSON, fromBin) {
			t.Logf("seed %d:\njson   %+v\nbinary %+v", seed, fromJSON, fromBin)
			return false
		}
		bdata2, err := encodeSolveBinary(fromBin)
		return err == nil && string(bdata) == string(bdata2)
	}, &quick.Config{MaxCount: 80})
	if err != nil {
		t.Error(err)
	}
}

// TestGraphSolveArtifactBinaryParity is the same parity property for
// task-graph solve artifacts.
func TestGraphSolveArtifactBinaryParity(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := &graphSolveArtifact{Version: graphSolveArtifactVersion, Solver: randSolverStats(rng)}
		if rng.Intn(4) == 0 {
			a.Infeasible = true
		} else {
			nTasks := 1 + rng.Intn(12)
			a.Cores = 1 + rng.Intn(4)
			a.Placement = make([]sim.TaskPlacement, nTasks)
			for i := range a.Placement {
				a.Placement[i] = sim.TaskPlacement{Core: rng.Intn(a.Cores), Mode: rng.Intn(5)}
			}
			a.Order = make([][]int, a.Cores)
			for c := range a.Order {
				a.Order[c] = make([]int, rng.Intn(nTasks))
				for i := range a.Order[c] {
					a.Order[c][i] = rng.Intn(nTasks)
				}
			}
			a.PredictedEnergyUJ = rng.Float64() * 1e6
			a.PredictedMakespanUS = rng.Float64() * 1e5
		}

		jdata, err := graphSolveStage.Encode(a)
		if err != nil {
			return false
		}
		bdata, err := encodeGraphSolveBinary(a)
		if err != nil {
			return false
		}
		fromJSON, err := graphSolveStage.Decode(jdata)
		if err != nil {
			return false
		}
		fromBin, err := decodeGraphSolveBinary(bdata)
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(fromJSON, fromBin) {
			t.Logf("seed %d:\njson   %+v\nbinary %+v", seed, fromJSON, fromBin)
			return false
		}
		bdata2, err := encodeGraphSolveBinary(fromBin)
		return err == nil && string(bdata) == string(bdata2)
	}, &quick.Config{MaxCount: 80})
	if err != nil {
		t.Error(err)
	}
}

// TestSolveArtifactBinaryRejectsTruncation holds both binary artifact
// decoders to clean rejection of every truncation.
func TestSolveArtifactBinaryRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := &solveArtifact{
		Version:           solveArtifactVersion,
		Schedule:          randScheduleFile(rng),
		PredictedEnergyUJ: 12.5,
		PredictedTimeUS:   []float64{1, 2, 3},
		IndependentEdges:  3,
		TotalEdges:        9,
		Solver:            randSolverStats(rng),
	}
	data, err := encodeSolveBinary(a)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := decodeSolveBinary(data[:n]); err == nil {
			t.Fatalf("solve: truncation to %d of %d bytes accepted", n, len(data))
		}
	}

	g := &graphSolveArtifact{
		Version:   graphSolveArtifactVersion,
		Cores:     2,
		Placement: []sim.TaskPlacement{{Core: 0, Mode: 1}, {Core: 1, Mode: 2}},
		Order:     [][]int{{0}, {1}},
		Solver:    randSolverStats(rng),
	}
	gdata, err := encodeGraphSolveBinary(g)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(gdata); n++ {
		if _, err := decodeGraphSolveBinary(gdata[:n]); err == nil {
			t.Fatalf("graphsolve: truncation to %d of %d bytes accepted", n, len(gdata))
		}
	}
}
