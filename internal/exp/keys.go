package exp

import (
	"sort"

	"ctdvs/internal/core"
	"ctdvs/internal/milp"
	"ctdvs/internal/pipeline"
	"ctdvs/internal/schedfile"
	"ctdvs/internal/sim"
)

// This file centralizes cache-key construction for the pipeline stages. A key
// covers everything that can influence the artifact — workload spec name and
// scale, the full simulator configuration, voltage levels, regulator and MILP
// options — so equal configurations hash identically across processes and any
// option change produces a different key.

// addSimConfig hashes every field of the machine configuration.
func addSimConfig(b *pipeline.KeyBuilder, mc sim.Config) {
	cache := func(name string, cc sim.CacheConfig) {
		b.Int(name+".size", int64(cc.SizeBytes))
		b.Int(name+".assoc", int64(cc.Assoc))
		b.Int(name+".line", int64(cc.LineBytes))
		b.Int(name+".latency", int64(cc.LatencyCycles))
	}
	cache("l1", mc.L1)
	cache("l2", mc.L2)
	b.Float("mem_latency_us", mc.MemLatencyUS)
	b.Int("mem_channels", int64(mc.MemChannels))
	b.Float("static_power_mw", mc.StaticPowerMW)
	b.Int("predictor_entries", int64(mc.PredictorEntries))
	b.Int("mispredict_penalty", int64(mc.MispredictPenaltyCycles))
	b.Int("record_budget_events", int64(mc.RecordBudgetEvents))
	b.Float("ceff_compute_nf", mc.CeffComputeNF)
	b.Float("ceff_l1_nf", mc.CeffL1NF)
	b.Float("ceff_l2_nf", mc.CeffL2NF)
	// ReferenceSim is deliberately not hashed: it selects between two
	// bit-identical simulation kernels, so artifacts are interchangeable
	// across the setting (and -reference-sim runs hit the same cache).
}

// addMILPOptions hashes the branch-and-bound options as configured (defaults
// are resolved inside the solver; distinct spellings of the same search are
// conservatively distinct keys). Workers changes neither the objective nor
// the incumbent, but it is hashed so a cache entry always records exactly the
// search that produced it.
func addMILPOptions(b *pipeline.KeyBuilder, o *milp.Options) {
	if o == nil {
		b.Bool("milp", false)
		return
	}
	b.Bool("milp", true)
	b.Int("milp.time_limit_ns", o.TimeLimit.Nanoseconds())
	b.Int("milp.max_nodes", int64(o.MaxNodes))
	b.Float("milp.gap", o.Gap)
	b.Float("milp.int_tol", o.IntTol)
	b.Int("milp.workers", int64(o.Workers))
	b.Int("milp.parallel_threshold", int64(o.ParallelThreshold))
	if o.LP != nil {
		b.Int("milp.lp.max_iters", int64(o.LP.MaxIters))
		b.Float("milp.lp.tol", o.LP.Tol)
	}
}

// recordKey addresses one event-stream recording. It deliberately omits the
// mode-set levels: the stream is mode-invariant, so one recording per
// (workload, input, scale, machine) serves every mode set replayed from it.
func (c *Config) recordKey(bench string, input int) pipeline.Key {
	b := pipeline.NewKey(pipeline.StageRecording)
	b.Str("bench", bench)
	b.Int("input", int64(input))
	b.Float("scale", c.Scale)
	addSimConfig(b, c.Machine.Config())
	return b.Sum()
}

// profileKey addresses one profile-collection run.
func (c *Config) profileKey(bench string, input, levels int) pipeline.Key {
	b := pipeline.NewKey(pipeline.StageProfile)
	b.Str("bench", bench)
	b.Int("input", int64(input))
	b.Int("levels", int64(levels))
	b.Float("scale", c.Scale)
	addSimConfig(b, c.Machine.Config())
	return b.Sum()
}

// solveKey addresses one MILP solve: the canonicalized options plus, per
// category, the content fingerprint of the profile it optimizes (which covers
// the program, input, mode set and every measured number) with its weight and
// deadline.
func solveKey(prep *core.Prepared, fingerprints []string) pipeline.Key {
	b := pipeline.NewKey(pipeline.StageSolve)
	o := prep.Opts
	b.Float("regulator.c", o.Regulator.C)
	b.Float("regulator.u", o.Regulator.U)
	b.Float("regulator.imax", o.Regulator.IMax)
	b.Float("filter_tail", o.FilterTail)
	b.Bool("no_transition_costs", o.NoTransitionCosts)
	b.Bool("block_based", o.BlockBased)
	if o.KeepIndependent != nil {
		edges := make([][2]int, 0, len(o.KeepIndependent))
		for e, keep := range o.KeepIndependent {
			if keep {
				edges = append(edges, [2]int{e.From, e.To})
			}
		}
		sort.Slice(edges, func(a, z int) bool {
			if edges[a][0] != edges[z][0] {
				return edges[a][0] < edges[z][0]
			}
			return edges[a][1] < edges[z][1]
		})
		b.Bool("keep_independent", true)
		for _, e := range edges {
			b.Int("keep.from", int64(e[0]))
			b.Int("keep.to", int64(e[1]))
		}
	}
	addMILPOptions(b, o.MILP)
	for i, cat := range prep.Cats {
		b.Int("cat", int64(i))
		b.Str("cat.profile", fingerprints[i])
		b.Float("cat.weight", cat.Weight)
		b.Float("cat.deadline_us", cat.DeadlineUS)
	}
	return b.Sum()
}

// validateKey addresses one schedule re-simulation: the profile fingerprint
// pins the exact program/input/measurement context, the schedule fingerprint
// the exact mode placement, and the machine configuration the simulator.
func validateKey(profileFP, scheduleFP string, mc sim.Config) pipeline.Key {
	b := pipeline.NewKey(pipeline.StageValidate)
	b.Str("profile", profileFP)
	b.Str("schedule", scheduleFP)
	addSimConfig(b, mc)
	return b.Sum()
}

// addGraphStructure hashes everything that identifies the task-graph instance
// itself: per task, the profile fingerprint (which pins the program, input,
// mode set and every measured number) plus its release and per-task deadline;
// then the edge list.
func addGraphStructure(b *pipeline.KeyBuilder, gw *GraphWorkload, fingerprints []string) {
	for t, task := range gw.Graph.Tasks {
		b.Int("task", int64(t))
		b.Str("task.profile", fingerprints[t])
		b.Float("task.release_us", task.ReleaseUS)
		b.Float("task.deadline_us", task.DeadlineUS)
	}
	for _, e := range gw.Graph.Edges {
		b.Int("edge.from", int64(e[0]))
		b.Int("edge.to", int64(e[1]))
	}
}

// graphSolveKey addresses one task-graph solve: the graph structure, the core
// count and deadline, the regulator and the canonicalized MILP options.
func graphSolveKey(gw *GraphWorkload, fingerprints []string, o *core.Options) pipeline.Key {
	b := pipeline.NewKey(pipeline.StageGraphSolve)
	addGraphStructure(b, gw, fingerprints)
	b.Int("cores", int64(gw.Cores))
	b.Float("deadline_us", gw.DeadlineUS)
	b.Float("regulator.c", o.Regulator.C)
	b.Float("regulator.u", o.Regulator.U)
	b.Float("regulator.imax", o.Regulator.IMax)
	b.Bool("no_transition_costs", o.NoTransitionCosts)
	addMILPOptions(b, o.MILP)
	return b.Sum()
}

// graphSimKey addresses one graph-schedule execution: the graph structure,
// the full schedule (cores, per-task placement, per-core order, regulator,
// per-task intra-schedule fingerprints when present) and the machine
// configuration. The mode set is covered by the profile fingerprints.
func graphSimKey(gw *GraphWorkload, fingerprints []string, s *sim.GraphSchedule, mc sim.Config) (pipeline.Key, error) {
	b := pipeline.NewKey(pipeline.StageGraphSim)
	addGraphStructure(b, gw, fingerprints)
	b.Int("cores", int64(s.Cores))
	b.Float("regulator.c", s.Regulator.C)
	b.Float("regulator.u", s.Regulator.U)
	b.Float("regulator.imax", s.Regulator.IMax)
	for t, pl := range s.Placement {
		b.Int("place.task", int64(t))
		b.Int("place.core", int64(pl.Core))
		b.Int("place.mode", int64(pl.Mode))
	}
	for c, order := range s.Order {
		b.Int("order.core", int64(c))
		for _, t := range order {
			b.Int("order.task", int64(t))
		}
	}
	for t := 0; t < len(s.Intra); t++ {
		if s.Intra[t] == nil {
			continue
		}
		fp, err := schedfile.Fingerprint(gw.Graph.Tasks[t].Program.Name, s.Intra[t])
		if err != nil {
			return "", err
		}
		b.Int("intra.task", int64(t))
		b.Str("intra.schedule", fp)
	}
	addSimConfig(b, mc)
	return b.Sum(), nil
}
