package exp

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// testConfig returns a small-scale config shared by the experiment tests.
func testConfig() *Config {
	return NewConfig(0.02)
}

func TestConfigCaching(t *testing.T) {
	c := testConfig()
	p1, err := c.Profile("adpcm/encode", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Profile("adpcm/encode", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("profile not cached")
	}
	if _, err := c.Profile("nosuch", 0, 3); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := c.Profile("adpcm/encode", 9, 3); err == nil {
		t.Error("unknown input accepted")
	}
	if _, err := c.Profile("adpcm/encode", 0, 5); err == nil {
		t.Error("unknown level count accepted")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Headers: []string{"a", "bb"},
		Rows:    [][]string{{"xxx", "y"}},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T", "a", "bb", "xxx", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigures2Through4Shapes(t *testing.T) {
	f2 := Figure2()
	f3 := Figure3()
	f4 := Figure4()
	for _, c := range []*Curve{f2, f3, f4} {
		if len(c.X) != len(c.Y) || len(c.X) == 0 {
			t.Fatalf("%s: bad sampling", c.Name)
		}
		if len(c.Table().Rows) != len(c.X) {
			t.Errorf("%s: table rows mismatch", c.Name)
		}
	}
	// Every curve must have a finite interior minimum.
	for _, c := range []*Curve{f2, f3, f4} {
		best, bestI := math.Inf(1), -1
		for i, y := range c.Y {
			if y < best {
				best, bestI = y, i
			}
		}
		if math.IsInf(best, 1) {
			t.Errorf("%s: no feasible point", c.Name)
		}
		if bestI == 0 {
			t.Errorf("%s: minimum at the low-voltage boundary", c.Name)
		}
	}
}

func TestFigure5SurfaceHasSavingsRegion(t *testing.T) {
	s := Figure5(12)
	if s.Max() <= 0 {
		t.Error("Figure 5 surface is flat zero; expected a savings region")
	}
	if s.Max() >= 1 {
		t.Errorf("Figure 5 max savings %v out of range", s.Max())
	}
	if len(s.Table().Rows) != len(s.X) {
		t.Error("surface table wrong shape")
	}
}

func TestFigure6SavingsGrowWithTinvariant(t *testing.T) {
	s := Figure6(10)
	// The paper: as tinvariant increases, savings increase. Check on the
	// row with the largest savings.
	bi := 0
	for i := range s.X {
		if s.Z[i][len(s.Y)-1] > s.Z[bi][len(s.Y)-1] {
			bi = i
		}
	}
	if s.Z[bi][len(s.Y)-1] < s.Z[bi][0] {
		t.Errorf("savings decreased with tinvariant: %v -> %v",
			s.Z[bi][0], s.Z[bi][len(s.Y)-1])
	}
	if s.Max() <= 0 {
		t.Error("Figure 6 surface is flat zero")
	}
}

func TestFigure7Surface(t *testing.T) {
	s := Figure7(10)
	if s.Max() <= 0 || s.Max() >= 1 {
		t.Errorf("Figure 7 max savings %v out of range", s.Max())
	}
}

func TestFigure8CurveFeasibleRegion(t *testing.T) {
	cur, err := Figure8(200)
	if err != nil {
		t.Fatal(err)
	}
	finite := 0
	for _, y := range cur.Y {
		if !math.IsInf(y, 1) {
			finite++
		}
	}
	if finite < 10 {
		t.Errorf("Figure 8 has only %d feasible y points", finite)
	}
}

func TestDiscreteSurfaces(t *testing.T) {
	for _, mk := range []func(int) (*Surface, error){Figure9, Figure10, Figure11} {
		s, err := mk(8)
		if err != nil {
			t.Fatal(err)
		}
		if s.Max() < 0 || s.Max() >= 1 {
			t.Errorf("%s: max savings %v out of range", s.Name, s.Max())
		}
	}
	// Figure 10's parameter space is squarely memory-dominated; it must
	// show real savings.
	s10, err := Figure10(8)
	if err != nil {
		t.Fatal(err)
	}
	if s10.Max() <= 0.01 {
		t.Errorf("Figure 10 shows no savings (max %v)", s10.Max())
	}
}

func TestTable1(t *testing.T) {
	c := testConfig()
	rows, err := Table1(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 4 benchmarks × 3 level counts
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for _, r := range rows {
		for k, s := range r.Savings {
			if s < 0 || s >= 1 {
				t.Errorf("%s/%d D%d: savings %v out of range", r.Benchmark, r.Levels, k+1, s)
			}
		}
	}
	if len(RenderTable1(rows).Rows) != 12 {
		t.Error("render mismatch")
	}
}

func TestTable4AndTable7(t *testing.T) {
	c := testConfig()
	t4, err := Table4(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4) != 6 {
		t.Fatalf("table 4 rows = %d", len(t4))
	}
	for _, r := range t4 {
		if !(r.T200 > r.T600 && r.T600 > r.T800) {
			t.Errorf("%s: runtimes not ordered: %v %v %v", r.Benchmark, r.T200, r.T600, r.T800)
		}
		for k := 1; k < 5; k++ {
			if r.Deadlines[k] < r.Deadlines[k-1] {
				t.Errorf("%s: deadlines not ordered", r.Benchmark)
			}
		}
	}
	t7, err := Table7(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(t7) != 4 {
		t.Fatalf("table 7 rows = %d", len(t7))
	}
	for _, r := range t7 {
		if r.NCacheK <= 0 || r.NOverlapK <= 0 || r.NDependentK <= 0 || r.TInvariantUS <= 0 {
			t.Errorf("%s: empty parameters: %+v", r.Benchmark, r)
		}
	}
	if len(RenderTable4(t4).Rows) != 6 || len(RenderTable7(t7).Rows) != 4 {
		t.Error("render mismatch")
	}
}

func TestTable3Figure14(t *testing.T) {
	c := testConfig()
	rows, err := Table3Figure14(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FilteredGroups > r.FullEdges {
			t.Errorf("%s: filtering grew the problem (%d > %d)",
				r.Benchmark, r.FilteredGroups, r.FullEdges)
		}
		// Paper Table 3: the minimum energy is essentially unchanged.
		if r.FilteredEnergyUJ > r.FullEnergyUJ*1.01 {
			t.Errorf("%s: filtered energy %v vs full %v",
				r.Benchmark, r.FilteredEnergyUJ, r.FullEnergyUJ)
		}
	}
	if len(RenderTable3Figure14(rows).Rows) != 6 {
		t.Error("render mismatch")
	}
}

func TestFigure15TransitionCostTrend(t *testing.T) {
	c := testConfig()
	rows, err := Figure15(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.NormEnergy) != 5 {
			t.Fatalf("%s: %d capacitance points", r.Benchmark, len(r.NormEnergy))
		}
		// Cheaper transitions never hurt: energy at the smallest c must not
		// exceed energy at the largest c (the paper's downward trend).
		if r.NormEnergy[4] > r.NormEnergy[0]*1.02 {
			t.Errorf("%s: energy rose as transition cost fell: %v -> %v",
				r.Benchmark, r.NormEnergy[0], r.NormEnergy[4])
		}
		// And it can never beat the V²f bound for an all-200MHz run
		// relative to 600 MHz.
		if r.NormEnergy[4] < 0.1 {
			t.Errorf("%s: implausible normalized energy %v", r.Benchmark, r.NormEnergy[4])
		}
	}
	if len(RenderFigure15(rows).Rows) != len(rows) {
		t.Error("render mismatch")
	}
}

func TestDeadlineSweep(t *testing.T) {
	c := testConfig()
	rows, err := DeadlineSweep(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for k := 0; k < 5; k++ {
			if !r.MeetsDL[k] {
				t.Errorf("%s D%d: deadline missed", r.Benchmark, k+1)
			}
			if r.NormEnergy[k] > 1.02 {
				t.Errorf("%s D%d: normalized energy %v above single-mode baseline",
					r.Benchmark, k+1, r.NormEnergy[k])
			}
			if r.Transitions[k] < 0 {
				t.Errorf("%s D%d: negative transitions", r.Benchmark, k+1)
			}
		}
		// Absolute energy falls (weakly) from the tightest to the laxest
		// deadline (Figure 17's downward trend).
		if r.EnergyUJ[4] > r.EnergyUJ[0]*1.02 {
			t.Errorf("%s: energy at D5 (%v) above D1 (%v)",
				r.Benchmark, r.EnergyUJ[4], r.EnergyUJ[0])
		}
	}
	for _, render := range []func([]DeadlineSweepRow) *Table{RenderFigure17, RenderFigure18, RenderTable5} {
		if len(render(rows).Rows) != 6 {
			t.Error("render mismatch")
		}
	}
}

func TestTable6AndComparisonWithTable1(t *testing.T) {
	c := testConfig()
	t6, err := Table6(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(t6) != 12 {
		t.Fatalf("rows = %d", len(t6))
	}
	for _, r := range t6 {
		for k, s := range r.Savings {
			if s < 0 || s >= 1 {
				t.Errorf("%s/%d D%d: savings %v out of range", r.Benchmark, r.Levels, k+1, s)
			}
		}
	}
	if len(RenderTable6(t6).Rows) != 12 {
		t.Error("render mismatch")
	}

	// Section 6.5: the analytic bound is optimistic; MILP-measured savings
	// should not exceed it by more than noise. Compare the 3-level rows.
	t1, err := Table1(c)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string][5]float64{}
	for _, r := range t1 {
		if r.Levels == 3 {
			idx[r.Benchmark] = r.Savings
		}
	}
	for _, r := range t6 {
		if r.Levels != 3 {
			continue
		}
		bound := idx[r.Benchmark]
		for k := 0; k < 5; k++ {
			if r.Savings[k] > bound[k]+0.08 {
				t.Errorf("%s D%d: measured savings %.3f well above analytic bound %.3f",
					r.Benchmark, k+1, r.Savings[k], bound[k])
			}
		}
	}
}

func TestFigure19(t *testing.T) {
	c := testConfig()
	rows, err := Figure19(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for si, tm := range r.TimesUS {
			if tm <= 0 {
				t.Errorf("%s strategy %d: non-positive time", r.RunInput, si)
			}
		}
		t.Logf("%s: self=%.0f flwr=%.0f bbc=%.0f avg=%.0f µs",
			r.RunInput, r.TimesUS[0], r.TimesUS[1], r.TimesUS[2], r.TimesUS[3])
	}
	// The averaged optimization must meet the common deadline on the two
	// inputs whose categories it was built from, and stay close on the
	// unprofiled inputs (paper: "optimizing for the average case makes sure
	// that the deadlines are met for both the cases being considered").
	dl, err := Fig19Deadline(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.RunInput {
		case "flwr.m2v", "bbc.m2v":
			if r.TimesUS[3] > dl*1.02 {
				t.Errorf("%s: averaged schedule %.0f µs misses common deadline %.0f µs",
					r.RunInput, r.TimesUS[3], dl)
			}
		default:
			if r.TimesUS[3] > dl*1.10 {
				t.Errorf("%s: averaged schedule %.0f µs far above common deadline %.0f µs",
					r.RunInput, r.TimesUS[3], dl)
			}
		}
	}
	// The bbc-profiled schedule under-estimates B-frame inputs: on flwr it
	// must not run faster than the self-profiled schedule (paper: "the MILP
	// solver does poorly in estimating the time ... of the code related to
	// their processing").
	for _, r := range rows {
		if r.RunInput != "flwr.m2v" && r.RunInput != "cact.m2v" {
			continue
		}
		if r.TimesUS[2] < r.TimesUS[0]*(1-1e-9) {
			t.Errorf("%s: bbc-profiled schedule (%.0f µs) unexpectedly faster than self (%.0f µs)",
				r.RunInput, r.TimesUS[2], r.TimesUS[0])
		}
	}
	if len(RenderFigure19(rows).Rows) != 4 {
		t.Error("render mismatch")
	}
}

func TestTableJSON(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
	}
	var buf bytes.Buffer
	if err := tab.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title string              `json:"title"`
		Rows  []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Title != "demo" || len(doc.Rows) != 2 || doc.Rows[1]["b"] != "4" {
		t.Errorf("bad JSON: %+v", doc)
	}
}
