package exp

import (
	"fmt"

	"ctdvs/internal/pipeline"
	"ctdvs/internal/schedfile"
	"ctdvs/internal/sim"
)

// Binary codecs for the solve and graphsolve artifacts. Layouts mirror the
// JSON structs field for field (parity-tested), including the embedded
// schedule file, so a warm sweep's solve reads skip JSON tokenization. The
// stages keep their JSON codecs as the versioned fallback.

func putSolverStats(w *pipeline.BinWriter, s solverStatsJSON) {
	w.Varint(int64(s.Status))
	w.Float(s.Objective)
	w.Float(s.Bound)
	w.Varint(int64(s.Nodes))
	w.Varint(int64(s.LPIters))
	w.Varint(int64(s.Workers))
	w.Varint(s.SolveTimeNS)
	w.Varint(int64(s.WarmSolves))
	w.Varint(int64(s.ColdSolves))
	w.Varint(int64(s.WarmFallbacks))
	w.Varint(int64(s.LPPivots))
	w.Varint(s.LPTimeNS)
	w.Varint(int64(s.AnalyticPrunes))
}

func readSolverStats(r *pipeline.BinReader) solverStatsJSON {
	return solverStatsJSON{
		Status:         r.Int(),
		Objective:      r.Float(),
		Bound:          r.Float(),
		Nodes:          r.Int(),
		LPIters:        r.Int(),
		Workers:        r.Int(),
		SolveTimeNS:    r.Varint(),
		WarmSolves:     r.Int(),
		ColdSolves:     r.Int(),
		WarmFallbacks:  r.Int(),
		LPPivots:       r.Int(),
		LPTimeNS:       r.Varint(),
		AnalyticPrunes: r.Int(),
	}
}

func putScheduleFile(w *pipeline.BinWriter, f *schedfile.File) {
	w.Varint(int64(f.Version))
	w.String(f.Program)
	w.Uvarint(uint64(len(f.Modes)))
	for _, m := range f.Modes {
		w.Float(m.Volts)
		w.Float(m.MHz)
	}
	w.Varint(int64(f.Initial))
	w.Float(f.Regulator.CapacitanceF)
	w.Float(f.Regulator.Efficiency)
	w.Float(f.Regulator.IMaxA)
	w.Uvarint(uint64(len(f.Assignments)))
	for _, a := range f.Assignments {
		w.Varint(int64(a.From))
		w.Varint(int64(a.To))
		w.Varint(int64(a.Mode))
	}
}

func readScheduleFile(r *pipeline.BinReader) *schedfile.File {
	f := &schedfile.File{
		Version: r.Int(),
		Program: r.String(),
	}
	nModes := r.Len()
	// Each mode is 16 raw bytes; bound before allocating.
	if r.Err() != nil || nModes > r.Remaining()/16 {
		return nil
	}
	f.Modes = make([]schedfile.ModeJSON, nModes)
	for i := range f.Modes {
		f.Modes[i] = schedfile.ModeJSON{Volts: r.Float(), MHz: r.Float()}
	}
	f.Initial = r.Int()
	f.Regulator = schedfile.RegulatorJSON{
		CapacitanceF: r.Float(),
		Efficiency:   r.Float(),
		IMaxA:        r.Float(),
	}
	nAssign := r.Len()
	// Each assignment is at least 3 varint bytes; bound before allocating.
	if r.Err() != nil || nAssign > r.Remaining()/3 {
		return nil
	}
	f.Assignments = make([]schedfile.AssignmentJSON, nAssign)
	for i := range f.Assignments {
		from := r.Varint()
		to := r.Varint()
		f.Assignments[i] = schedfile.AssignmentJSON{From: int(from), To: int(to), Mode: r.Int()}
	}
	if r.Err() != nil {
		return nil
	}
	return f
}

func encodeSolveBinary(a *solveArtifact) ([]byte, error) {
	hint := 256
	if a.Schedule != nil {
		hint += 32*len(a.Schedule.Modes) + 8*len(a.Schedule.Assignments)
	}
	w := pipeline.NewBinWriter(pipeline.BinTagSolve, hint)
	w.Varint(int64(a.Version))
	w.Bool(a.Infeasible)
	w.Bool(a.Schedule != nil)
	if a.Schedule != nil {
		putScheduleFile(w, a.Schedule)
	}
	w.Float(a.PredictedEnergyUJ)
	w.Floats(a.PredictedTimeUS)
	w.Varint(int64(a.IndependentEdges))
	w.Varint(int64(a.TotalEdges))
	putSolverStats(w, a.Solver)
	return w.Bytes(), nil
}

func decodeSolveBinary(data []byte) (*solveArtifact, error) {
	r, err := pipeline.NewBinReader(data, pipeline.BinTagSolve)
	if err != nil {
		return nil, err
	}
	a := &solveArtifact{
		Version:    r.Int(),
		Infeasible: r.Bool(),
	}
	if hasSchedule := r.Bool(); hasSchedule {
		if a.Schedule = readScheduleFile(r); a.Schedule == nil {
			return nil, fmt.Errorf("exp: solve artifact schedule: %w", r.Err())
		}
	}
	a.PredictedEnergyUJ = r.Float()
	a.PredictedTimeUS = emptyToNil(r.Floats())
	a.IndependentEdges = r.Int()
	a.TotalEdges = r.Int()
	a.Solver = readSolverStats(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	if a.Version != solveArtifactVersion {
		return nil, fmt.Errorf("exp: solve artifact version %d, want %d", a.Version, solveArtifactVersion)
	}
	return a, nil
}

func encodeGraphSolveBinary(a *graphSolveArtifact) ([]byte, error) {
	hint := 256 + 8*len(a.Placement) + 16*len(a.Order)
	w := pipeline.NewBinWriter(pipeline.BinTagGraphSolve, hint)
	w.Varint(int64(a.Version))
	w.Bool(a.Infeasible)
	w.Varint(int64(a.Cores))
	w.Uvarint(uint64(len(a.Placement)))
	for _, p := range a.Placement {
		w.Varint(int64(p.Core))
		w.Varint(int64(p.Mode))
	}
	w.Uvarint(uint64(len(a.Order)))
	for _, core := range a.Order {
		w.Uvarint(uint64(len(core)))
		for _, t := range core {
			w.Varint(int64(t))
		}
	}
	w.Float(a.PredictedEnergyUJ)
	w.Float(a.PredictedMakespanUS)
	putSolverStats(w, a.Solver)
	return w.Bytes(), nil
}

func decodeGraphSolveBinary(data []byte) (*graphSolveArtifact, error) {
	r, err := pipeline.NewBinReader(data, pipeline.BinTagGraphSolve)
	if err != nil {
		return nil, err
	}
	a := &graphSolveArtifact{
		Version:    r.Int(),
		Infeasible: r.Bool(),
		Cores:      r.Int(),
	}
	nPlace := r.Len()
	// Each placement is at least 2 varint bytes; bound before allocating.
	if r.Err() == nil && nPlace > r.Remaining()/2 {
		return nil, fmt.Errorf("exp: graph solve artifact placement count %d exceeds input", nPlace)
	}
	if r.Err() == nil && nPlace > 0 {
		a.Placement = make([]sim.TaskPlacement, nPlace)
		for i := range a.Placement {
			a.Placement[i] = sim.TaskPlacement{Core: r.Int(), Mode: r.Int()}
		}
	}
	nCores := r.Len()
	if r.Err() == nil && nCores > r.Remaining() {
		return nil, fmt.Errorf("exp: graph solve artifact order count %d exceeds input", nCores)
	}
	if r.Err() == nil && nCores > 0 {
		a.Order = make([][]int, nCores)
		for i := range a.Order {
			n := r.Len()
			if r.Err() != nil || n > r.Remaining() {
				return nil, fmt.Errorf("exp: graph solve artifact order run %d exceeds input", n)
			}
			a.Order[i] = make([]int, n)
			for j := range a.Order[i] {
				a.Order[i][j] = r.Int()
			}
		}
	}
	a.PredictedEnergyUJ = r.Float()
	a.PredictedMakespanUS = r.Float()
	a.Solver = readSolverStats(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	if a.Version != graphSolveArtifactVersion {
		return nil, fmt.Errorf("exp: graph solve artifact version %d, want %d", a.Version, graphSolveArtifactVersion)
	}
	return a, nil
}

// emptyToNil maps a decoded empty slice to nil, matching what the JSON codec
// produces for an omitted/null field — the shape every real artifact has.
func emptyToNil(vs []float64) []float64 {
	if len(vs) == 0 {
		return nil
	}
	return vs
}
