package exp

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ctdvs/internal/pipeline"
	"ctdvs/internal/profile"
)

// cachedConfig returns a test config whose pipeline persists to dir.
func cachedConfig(t *testing.T, dir string) *Config {
	t.Helper()
	store, err := pipeline.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := testConfig()
	c.Pipeline = pipeline.NewRunner(store)
	return c
}

// renderSweep renders every consumer of the deadline sweep, concatenated, so
// the comparison covers all derived tables.
func renderSweep(t *testing.T, rows []DeadlineSweepRow) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, tab := range []*Table{RenderFigure17(rows), RenderFigure18(rows), RenderTable5(rows)} {
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestWarmRunHitsEverything is the PR's acceptance property: a second run of
// an experiment against the same cache directory performs zero simulator
// profile collections and zero MILP solves — every stage in the manifest is a
// cache hit — and produces bit-identical output to the cold run.
func TestWarmRunHitsEverything(t *testing.T) {
	dir := t.TempDir()

	cold := cachedConfig(t, dir)
	coldRows, err := DeadlineSweep(cold)
	if err != nil {
		t.Fatal(err)
	}
	coldOut := renderSweep(t, coldRows)

	coldStats := cold.Pipeline.Manifest().Stats()
	if coldStats[pipeline.StageProfile].Misses == 0 || coldStats[pipeline.StageSolve].Misses == 0 ||
		coldStats[pipeline.StageValidate].Misses == 0 {
		t.Fatalf("cold run should miss every stage kind: %+v", coldStats)
	}
	if coldStats[pipeline.StageFilter].Misses == 0 || coldStats[pipeline.StageFormulate].Misses == 0 {
		t.Fatalf("cold run should record filter/formulate work: %+v", coldStats)
	}

	// Fresh Config, fresh process-equivalent: only the disk store is shared.
	warm := cachedConfig(t, dir)
	warmRows, err := DeadlineSweep(warm)
	if err != nil {
		t.Fatal(err)
	}
	warmOut := renderSweep(t, warmRows)

	man := warm.Pipeline.Manifest()
	if !man.AllHits() {
		t.Errorf("warm run recomputed stages:")
		for _, r := range man.Records() {
			if r.Misses > 0 {
				t.Errorf("  %s %s: %d misses", r.Stage, r.Key[:12], r.Misses)
			}
		}
	}
	warmStats := man.Stats()
	for _, kind := range []pipeline.Kind{pipeline.StageProfile, pipeline.StageSolve, pipeline.StageValidate} {
		s := warmStats[kind]
		if s.DiskHits == 0 {
			t.Errorf("warm run has no disk hits for %s: %+v", kind, s)
		}
		if s.Misses != 0 {
			t.Errorf("warm run computed %s %d times", kind, s.Misses)
		}
	}
	// Filter and formulate only run inside a solve miss; a fully warm run
	// must not have touched them at all.
	for _, kind := range []pipeline.Kind{pipeline.StageFilter, pipeline.StageFormulate} {
		if s, ok := warmStats[kind]; ok && s.Misses > 0 {
			t.Errorf("warm run re-ran %s: %+v", kind, s)
		}
	}

	if !bytes.Equal(coldOut, warmOut) {
		t.Errorf("warm output differs from cold output\ncold:\n%s\nwarm:\n%s", coldOut, warmOut)
	}
}

// TestRecordingSharedAcrossModeSets pins the single-simulation property: the
// record stage runs one simulation per (benchmark, input), and every further
// mode set — in-process or from a warm store — replays the cached stream
// instead of simulating.
func TestRecordingSharedAcrossModeSets(t *testing.T) {
	dir := t.TempDir()

	a := cachedConfig(t, dir)
	pr3, err := a.Profile("adpcm/encode", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Profile("adpcm/encode", 0, 7); err != nil {
		t.Fatal(err)
	}
	stats := a.Pipeline.Manifest().Stats()
	if s := stats[pipeline.StageRecording]; s.Misses != 1 || s.MemHits != 1 {
		t.Errorf("two mode sets should share one recording: %+v", s)
	}
	if s := stats[pipeline.StageProfile]; s.Misses != 2 {
		t.Errorf("expected two distinct profile computations: %+v", s)
	}

	// Fresh process-equivalent: a third mode set replays the stored stream —
	// a record-stage disk hit, zero simulations.
	b := cachedConfig(t, dir)
	if _, err := b.Profile("adpcm/encode", 0, 13); err != nil {
		t.Fatal(err)
	}
	if s := b.Pipeline.Manifest().Stats()[pipeline.StageRecording]; s.Misses != 0 || s.DiskHits != 1 {
		t.Errorf("warm recording was not served from disk: %+v", s)
	}

	// The replayed profile is bit-identical to a per-mode-simulated one.
	d := testConfig()
	d.DisableRecording = true
	prPM, err := d.Profile("adpcm/encode", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	enc1, err := profile.Encode(pr3)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := profile.Encode(prPM)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Error("replayed profile differs from per-mode profile")
	}
}

// TestCacheKeySensitivity verifies that changed options miss instead of
// reusing stale artifacts: a different scale or MILP budget must not hit the
// other configuration's entries.
func TestCacheKeySensitivity(t *testing.T) {
	dir := t.TempDir()

	a := cachedConfig(t, dir)
	pr, err := a.Profile("adpcm/encode", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	dls, err := a.Deadlines("adpcm/encode")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.OptimizeSingle(pr, dls[4], nil); err != nil {
		t.Fatal(err)
	}

	// Same store, different scale: the profile key must differ.
	b := cachedConfig(t, dir)
	b.Scale = a.Scale * 2
	if _, err := b.Profile("adpcm/encode", 0, 3); err != nil {
		t.Fatal(err)
	}
	if s := b.Pipeline.Manifest().Stats()[pipeline.StageProfile]; s.Misses != 1 || s.DiskHits != 0 {
		t.Errorf("changed scale reused the cached profile: %+v", s)
	}

	// Same store and scale, different filter option: the solve key must
	// differ while the profile hits.
	d := cachedConfig(t, dir)
	pr2, err := d.Profile("adpcm/encode", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.OptimizeSingle(pr2, dls[4], nil); err != nil {
		t.Fatal(err)
	}
	stats := d.Pipeline.Manifest().Stats()
	if s := stats[pipeline.StageProfile]; s.DiskHits != 1 || s.Misses != 0 {
		t.Errorf("identical profile request missed: %+v", s)
	}
	if s := stats[pipeline.StageSolve]; s.DiskHits != 1 || s.Misses != 0 {
		t.Errorf("identical solve request missed: %+v", s)
	}
	if _, err := d.OptimizeSingle(pr2, dls[4], nil); err != nil {
		t.Fatal(err)
	}
	if s := d.Pipeline.Manifest().Stats()[pipeline.StageSolve]; s.MemHits != 1 {
		t.Errorf("repeated in-process solve was not a memory hit: %+v", s)
	}
}

// TestInfeasibleSolveCached verifies that infeasible outcomes are artifacts
// too: a warm run does not re-solve a problem known to have no schedule.
func TestInfeasibleSolveCached(t *testing.T) {
	dir := t.TempDir()
	a := cachedConfig(t, dir)
	pr, err := a.Profile("adpcm/encode", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A deadline far below the fastest mode's runtime is infeasible.
	n := pr.Modes.Len()
	tight := pr.TotalTimeUS[n-1] * 0.5
	if _, err := a.OptimizeSingle(pr, tight, nil); err == nil {
		t.Fatal("expected infeasible")
	}

	b := cachedConfig(t, dir)
	pr2, err := b.Profile("adpcm/encode", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.OptimizeSingle(pr2, tight, nil); err == nil {
		t.Fatal("expected infeasible")
	}
	if s := b.Pipeline.Manifest().Stats()[pipeline.StageSolve]; s.Misses != 0 || s.DiskHits != 1 {
		t.Errorf("infeasible solve was not served from cache: %+v", s)
	}
}

// TestWarmRunAfterCompaction is the eviction-safety acceptance property: a
// store compacted under a budget that only sheds JSON twins of binary
// artifacts still serves a fully warm sweep — AllHits, zero recomputes,
// bit-identical output.
func TestWarmRunAfterCompaction(t *testing.T) {
	jsonDir, binDir := t.TempDir(), t.TempDir()

	// Cold run against a JSON-format store, then the same run against a
	// binary store, then overlay the binary artifacts onto the JSON tree:
	// every key now has a .bin plus its .json twin, the shape a fleet cache
	// grows while migrating codecs.
	jsonStore, err := pipeline.OpenWithFormat(jsonDir, pipeline.FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	cold := testConfig()
	cold.Pipeline = pipeline.NewRunner(jsonStore)
	coldRows, err := DeadlineSweep(cold)
	if err != nil {
		t.Fatal(err)
	}
	coldOut := renderSweep(t, zeroSolveTimes(coldRows))

	binCfg := cachedConfig(t, binDir)
	if _, err := DeadlineSweep(binCfg); err != nil {
		t.Fatal(err)
	}
	twins := 0
	err = filepath.WalkDir(binDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".bin") {
			return err
		}
		rel, err := filepath.Rel(binDir, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		twins++
		return os.WriteFile(filepath.Join(jsonDir, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if twins == 0 {
		t.Fatal("binary run produced no binary artifacts")
	}

	// Budget: everything except the JSON twins. Compact must satisfy it by
	// evicting exactly those, leaving every binary artifact in place.
	store, err := pipeline.Open(jsonDir)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := store.DiskStats()
	if err != nil {
		t.Fatal(err)
	}
	var twinBytes int64
	err = filepath.WalkDir(jsonDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return err
		}
		if info, err := os.Stat(strings.TrimSuffix(path, ".json") + ".bin"); err == nil && info != nil {
			if fi, err := d.Info(); err == nil {
				twinBytes += fi.Size()
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Compact(ds.TotalBytes - twinBytes)
	if err != nil {
		t.Fatal(err)
	}
	if st.EvictedJSONTwins == 0 || st.EvictedJSONTwins != st.EvictedArtifacts {
		t.Fatalf("compact stats = %+v, want only JSON twins evicted", st)
	}
	if st.BytesAfter > st.BudgetBytes {
		t.Fatalf("compact left the store over budget: %+v", st)
	}

	// The compacted store serves a fully warm sweep from the surviving
	// binary artifacts: AllHits for every retained kind, identical output.
	warm := testConfig()
	warm.Pipeline = pipeline.NewRunner(store)
	warmRows, err := DeadlineSweep(warm)
	if err != nil {
		t.Fatal(err)
	}
	man := warm.Pipeline.Manifest()
	if !man.AllHits() {
		for _, r := range man.Records() {
			if r.Misses > 0 {
				t.Errorf("post-compact warm run recomputed %s %s: %d misses", r.Stage, r.Key[:12], r.Misses)
			}
		}
	}
	if warmOut := renderSweep(t, zeroSolveTimes(warmRows)); !bytes.Equal(coldOut, warmOut) {
		t.Error("post-compact warm output differs from the cold run")
	}
}

// zeroSolveTimes strips the one nondeterministic column (solver wall time,
// which the two independent cold runs measure differently) so the remaining
// output can be compared bit for bit.
func zeroSolveTimes(rows []DeadlineSweepRow) []DeadlineSweepRow {
	out := append([]DeadlineSweepRow(nil), rows...)
	for i := range out {
		out[i].SolveTime = [5]time.Duration{}
	}
	return out
}
