package exp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"ctdvs/internal/core"
	"ctdvs/internal/milp"
	"ctdvs/internal/pipeline"
	"ctdvs/internal/profile"
	"ctdvs/internal/schedfile"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

// This file expresses the optimize and validate phases of every experiment as
// pipeline stages over the shared artifact store: Optimize caches MILP solves
// (keyed by profile fingerprints + canonical options), RunSchedule caches
// schedule re-simulations, and both record hit/miss accounting in the run
// manifest. With a disk store attached, a repeated experiment performs zero
// simulator profile collections and zero MILP solves.

// runner returns the config's pipeline runner, creating a memory-only one on
// first use so a zero-configured Config still works.
func (c *Config) runner() *pipeline.Runner {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Pipeline == nil {
		c.Pipeline = pipeline.NewRunner(nil)
	}
	return c.Pipeline
}

// fingerprint returns the content digest of a profile, cached per pointer
// (profiles are immutable once collected).
func (c *Config) fingerprint(pr *profile.Profile) (string, error) {
	if fp, ok := c.fingerprints.Load(pr); ok {
		return fp.(string), nil
	}
	fp, err := profile.Fingerprint(pr)
	if err != nil {
		return "", err
	}
	c.fingerprints.Store(pr, fp)
	return fp, nil
}

// solverStatsJSON serializes the branch-and-bound statistics of a cached
// solve (the incumbent point X is dropped — everything consumers read is
// kept).
type solverStatsJSON struct {
	Status      int     `json:"status"`
	Objective   float64 `json:"objective"`
	Bound       float64 `json:"bound"`
	Nodes       int     `json:"nodes"`
	LPIters     int     `json:"lp_iters"`
	Workers     int     `json:"workers"`
	SolveTimeNS int64   `json:"solve_time_ns"`
	// Warm-start statistics (absent, i.e. zero, in artifacts written before
	// the warm-started solver).
	WarmSolves    int   `json:"warm_solves,omitempty"`
	ColdSolves    int   `json:"cold_solves,omitempty"`
	WarmFallbacks int   `json:"warm_fallbacks,omitempty"`
	LPPivots      int   `json:"lp_pivots,omitempty"`
	LPTimeNS      int64 `json:"lp_time_ns,omitempty"`
	// AnalyticPrunes counts branch-and-bound children discarded by the
	// Li–Yao–Yuan analytic dual bound before any LP solve (absent, i.e. zero,
	// in artifacts written before the analytic-bound backend).
	AnalyticPrunes int `json:"analytic_prunes,omitempty"`
}

// solveArtifact is the cached outcome of one MILP solve. Infeasible outcomes
// are artifacts too, so a warm run does not re-solve problems known to have
// no schedule.
type solveArtifact struct {
	Version           int             `json:"version"`
	Infeasible        bool            `json:"infeasible"`
	Schedule          *schedfile.File `json:"schedule,omitempty"`
	PredictedEnergyUJ float64         `json:"predicted_energy_uj"`
	PredictedTimeUS   []float64       `json:"predicted_time_us"`
	IndependentEdges  int             `json:"independent_edges"`
	TotalEdges        int             `json:"total_edges"`
	Solver            solverStatsJSON `json:"solver"`
}

const solveArtifactVersion = 2

var solveStage = pipeline.Stage[*solveArtifact]{
	Kind:   pipeline.StageSolve,
	Encode: func(a *solveArtifact) ([]byte, error) { return json.Marshal(a) },
	Decode: func(data []byte) (*solveArtifact, error) {
		var a solveArtifact
		if err := json.Unmarshal(data, &a); err != nil {
			return nil, err
		}
		if a.Version != solveArtifactVersion {
			return nil, fmt.Errorf("exp: solve artifact version %d, want %d", a.Version, solveArtifactVersion)
		}
		return &a, nil
	},
	EncodeBinary: encodeSolveBinary,
	DecodeBinary: decodeSolveBinary,
}

// toResult rebuilds the optimizer result from an artifact. Cold runs pass
// through the same conversion, so cold and warm results are identical by
// construction.
func (a *solveArtifact) toResult() (*core.Result, error) {
	_, sched, err := a.Schedule.Schedule()
	if err != nil {
		return nil, err
	}
	return &core.Result{
		Schedule:          sched,
		PredictedEnergyUJ: a.PredictedEnergyUJ,
		PredictedTimeUS:   a.PredictedTimeUS,
		IndependentEdges:  a.IndependentEdges,
		TotalEdges:        a.TotalEdges,
		Solver: &milp.Result{
			Status:         milp.Status(a.Solver.Status),
			Objective:      a.Solver.Objective,
			Bound:          a.Solver.Bound,
			Nodes:          a.Solver.Nodes,
			LPIters:        a.Solver.LPIters,
			Workers:        a.Solver.Workers,
			SolveTime:      time.Duration(a.Solver.SolveTimeNS),
			WarmSolves:     a.Solver.WarmSolves,
			ColdSolves:     a.Solver.ColdSolves,
			WarmFallbacks:  a.Solver.WarmFallbacks,
			LPPivots:       a.Solver.LPPivots,
			LPTime:         time.Duration(a.Solver.LPTimeNS),
			AnalyticPrunes: a.Solver.AnalyticPrunes,
		},
	}, nil
}

// Optimize is core.Optimize routed through the pipeline: the solve (and with
// it the filter and formulate stages) runs only when no artifact exists for
// the canonicalized inputs.
func (c *Config) Optimize(cats []core.Category, opts *core.Options) (*core.Result, error) {
	return c.OptimizeCtx(context.Background(), cats, opts)
}

// OptimizeCtx is Optimize under a caller context. Cancellation is checked at
// every stage boundary (filter → formulate → solve) and polled inside the
// branch-and-bound search itself; an aborted solve surfaces ctx's error and
// leaves no artifact behind. The context never participates in cache keys, so
// requests with different deadlines still share artifacts.
func (c *Config) OptimizeCtx(ctx context.Context, cats []core.Category, opts *core.Options) (*core.Result, error) {
	prep, err := core.Prepare(cats, opts)
	if err != nil {
		return nil, err
	}
	fps := make([]string, len(prep.Cats))
	for i, cat := range prep.Cats {
		if fps[i], err = c.fingerprint(cat.Profile); err != nil {
			return nil, err
		}
	}
	key := solveKey(prep, fps)
	program := prep.Cats[0].Profile.Program.Name
	r := c.runner()
	art, err := pipeline.RunCtx(ctx, r, solveStage, key, func(ctx context.Context) (*solveArtifact, error) {
		var grouping *core.Grouping
		if err := r.Observe(pipeline.StageFilter, key, func() error {
			grouping = prep.Filter()
			return nil
		}); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var fm *core.Formulation
		if err := r.Observe(pipeline.StageFormulate, key, func() error {
			fm = prep.Formulate(grouping)
			return nil
		}); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := fm.SolveContext(ctx)
		if errors.Is(err, core.ErrInfeasible) {
			return &solveArtifact{Version: solveArtifactVersion, Infeasible: true}, nil
		}
		if err != nil {
			return nil, err
		}
		f, err := schedfile.New(program, res.Schedule)
		if err != nil {
			return nil, err
		}
		return &solveArtifact{
			Version:           solveArtifactVersion,
			Schedule:          f,
			PredictedEnergyUJ: res.PredictedEnergyUJ,
			PredictedTimeUS:   res.PredictedTimeUS,
			IndependentEdges:  res.IndependentEdges,
			TotalEdges:        res.TotalEdges,
			Solver: solverStatsJSON{
				Status:         int(res.Solver.Status),
				Objective:      res.Solver.Objective,
				Bound:          res.Solver.Bound,
				Nodes:          res.Solver.Nodes,
				LPIters:        res.Solver.LPIters,
				Workers:        res.Solver.Workers,
				SolveTimeNS:    res.Solver.SolveTime.Nanoseconds(),
				WarmSolves:     res.Solver.WarmSolves,
				ColdSolves:     res.Solver.ColdSolves,
				WarmFallbacks:  res.Solver.WarmFallbacks,
				LPPivots:       res.Solver.LPPivots,
				LPTimeNS:       res.Solver.LPTime.Nanoseconds(),
				AnalyticPrunes: res.Solver.AnalyticPrunes,
			},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	if art.Infeasible {
		return nil, core.ErrInfeasible
	}
	return art.toResult()
}

// OptimizeSingle is Optimize for the common single-profile case.
func (c *Config) OptimizeSingle(pr *profile.Profile, deadlineUS float64, opts *core.Options) (*core.Result, error) {
	return c.Optimize([]core.Category{{Profile: pr, Weight: 1, DeadlineUS: deadlineUS}}, opts)
}

// OptimizeSingleCtx is OptimizeCtx for the common single-profile case.
func (c *Config) OptimizeSingleCtx(ctx context.Context, pr *profile.Profile, deadlineUS float64, opts *core.Options) (*core.Result, error) {
	return c.OptimizeCtx(ctx, []core.Category{{Profile: pr, Weight: 1, DeadlineUS: deadlineUS}}, opts)
}

// RunSummary is the cached scalar outcome of executing a schedule on the
// simulator — everything the experiments read from a validation run, without
// the per-block maps that make sim.Result expensive to persist.
type RunSummary struct {
	TimeUS             float64 `json:"time_us"`
	EnergyUJ           float64 `json:"energy_uj"`
	Transitions        int64   `json:"transitions"`
	TransitionTimeUS   float64 `json:"transition_time_us"`
	TransitionEnergyUJ float64 `json:"transition_energy_uj"`
	LeakageEnergyUJ    float64 `json:"leakage_energy_uj"`
	L1Hits             int64   `json:"l1_hits"`
	L2Hits             int64   `json:"l2_hits"`
	MemMisses          int64   `json:"mem_misses"`
	Branches           int64   `json:"branches"`
	Mispredicts        int64   `json:"mispredicts"`
}

func summarize(res *sim.Result) RunSummary {
	return RunSummary{
		TimeUS:             res.TimeUS,
		EnergyUJ:           res.EnergyUJ,
		Transitions:        res.Transitions,
		TransitionTimeUS:   res.TransitionTimeUS,
		TransitionEnergyUJ: res.TransitionEnergyUJ,
		LeakageEnergyUJ:    res.LeakageEnergyUJ,
		L1Hits:             res.L1Hits,
		L2Hits:             res.L2Hits,
		MemMisses:          res.MemMisses,
		Branches:           res.Branches,
		Mispredicts:        res.Mispredicts,
	}
}

var validateStage = pipeline.Stage[RunSummary]{
	Kind:   pipeline.StageValidate,
	Encode: func(s RunSummary) ([]byte, error) { return json.Marshal(s) },
	Decode: func(data []byte) (RunSummary, error) {
		var s RunSummary
		err := json.Unmarshal(data, &s)
		return s, err
	},
}

// RunSchedule executes (or loads from cache) a schedule for the profiled
// workload on the default machine configuration.
func (c *Config) RunSchedule(pr *profile.Profile, sched *sim.Schedule) (RunSummary, error) {
	return c.RunScheduleCtx(context.Background(), pr, sched)
}

// RunScheduleCtx is RunSchedule under a caller context: a request cancelled
// before the validation simulation starts never runs it.
func (c *Config) RunScheduleCtx(ctx context.Context, pr *profile.Profile, sched *sim.Schedule) (RunSummary, error) {
	return c.RunScheduleConfigCtx(ctx, c.Machine.Config(), pr, sched)
}

// RunScheduleConfig is RunSchedule on an explicit machine configuration
// (the leakage ablation sweeps StaticPowerMW this way). The configuration is
// part of the cache key.
func (c *Config) RunScheduleConfig(mc sim.Config, pr *profile.Profile, sched *sim.Schedule) (RunSummary, error) {
	return c.RunScheduleConfigCtx(context.Background(), mc, pr, sched)
}

// RunScheduleConfigCtx is RunScheduleConfig under a caller context.
func (c *Config) RunScheduleConfigCtx(ctx context.Context, mc sim.Config, pr *profile.Profile, sched *sim.Schedule) (RunSummary, error) {
	profileFP, err := c.fingerprint(pr)
	if err != nil {
		return RunSummary{}, err
	}
	schedFP, err := schedfile.Fingerprint(pr.Program.Name, sched)
	if err != nil {
		return RunSummary{}, err
	}
	key := validateKey(profileFP, schedFP, mc)
	return pipeline.RunCtx(ctx, c.runner(), validateStage, key, func(context.Context) (RunSummary, error) {
		var m *sim.Machine
		if mc == c.Machine.Config() {
			m = c.acquireMachine()
			defer c.releaseMachine(m)
		} else {
			var err error
			if m, err = sim.New(mc); err != nil {
				return RunSummary{}, err
			}
		}
		res, err := m.RunDVS(pr.Program, pr.Input, sched)
		if err != nil {
			return RunSummary{}, err
		}
		return summarize(res), nil
	})
}

// Measurement is RunSummary checked against a deadline — the pipeline
// counterpart of core.Evaluation.
type Measurement struct {
	Run           RunSummary
	DeadlineUS    float64
	MeetsDeadline bool
	// SlackUS is deadline − measured time (negative when missed).
	SlackUS float64
}

// Measure executes the schedule via the validate stage and checks it against
// the deadline. The cached artifact is deadline-independent; the deadline
// comparison happens on load.
func (c *Config) Measure(pr *profile.Profile, sched *sim.Schedule, deadlineUS float64) (*Measurement, error) {
	return c.MeasureCtx(context.Background(), pr, sched, deadlineUS)
}

// MeasureCtx is Measure under a caller context.
func (c *Config) MeasureCtx(ctx context.Context, pr *profile.Profile, sched *sim.Schedule, deadlineUS float64) (*Measurement, error) {
	run, err := c.RunScheduleCtx(ctx, pr, sched)
	if err != nil {
		return nil, err
	}
	return &Measurement{
		Run:           run,
		DeadlineUS:    deadlineUS,
		MeetsDeadline: run.TimeUS <= deadlineUS*(1+1e-9),
		SlackUS:       deadlineUS - run.TimeUS,
	}, nil
}

// Savings measures the energy-saving ratio 1 − E_dvs/E_single against the
// best single mode meeting the deadline (core.SavingsVsBestSingle through the
// validate cache: both runs are cacheable artifacts).
func (c *Config) Savings(pr *profile.Profile, sched *sim.Schedule, deadlineUS float64, reg volt.Regulator) (float64, error) {
	return c.SavingsCtx(context.Background(), pr, sched, deadlineUS, reg)
}

// SavingsCtx is Savings under a caller context.
func (c *Config) SavingsCtx(ctx context.Context, pr *profile.Profile, sched *sim.Schedule, deadlineUS float64, reg volt.Regulator) (float64, error) {
	mode, _, ok := pr.BestSingleMode(deadlineUS)
	if !ok {
		return 0, fmt.Errorf("core: no single mode meets deadline %v µs", deadlineUS)
	}
	base, err := c.RunScheduleCtx(ctx, pr, core.SingleModeSchedule(pr, mode, reg))
	if err != nil {
		return 0, err
	}
	dvs, err := c.RunScheduleCtx(ctx, pr, sched)
	if err != nil {
		return 0, err
	}
	if base.EnergyUJ <= 0 {
		return 0, nil
	}
	return 1 - dvs.EnergyUJ/base.EnergyUJ, nil
}
