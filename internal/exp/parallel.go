package exp

import (
	"runtime"
	"sync"
)

// workers resolves the configured fan-out width.
func (c *Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(0..n-1) on up to c.workers() goroutines and returns the
// error of the smallest failing index (so which error surfaces does not
// depend on scheduling). Results are collected in order by having each fn
// write to its own index of a caller-preallocated slice; forEach itself
// imposes no output ordering beyond that. With one worker the calls run
// sequentially on the caller's goroutine, preserving the old serial
// behavior exactly; a failure then stops the loop early like the original
// `return err` did.
func (c *Config) forEach(n int, fn func(i int) error) error {
	w := c.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		mu       sync.Mutex
		firstErr error
		errIdx   int
		wg       sync.WaitGroup
	)
	next := make(chan int)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil || i < errIdx {
						firstErr, errIdx = err, i
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}
