// Package exp regenerates every table and figure of the paper's evaluation.
// Each experiment is a function returning structured data plus a Render
// method producing a paper-style text table; cmd/dvs-bench drives them all
// and bench_test.go wraps each in a testing.B benchmark.
//
// See DESIGN.md for the experiment index (which paper table/figure each
// function reproduces, with workload and parameters) and EXPERIMENTS.md for
// recorded paper-vs-measured results.
package exp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"ctdvs/internal/ir"
	"ctdvs/internal/milp"
	"ctdvs/internal/pipeline"
	"ctdvs/internal/profile"
	"ctdvs/internal/schedfile"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
	"ctdvs/internal/workloads"
)

// Config carries the shared experiment environment. Every experiment is a
// pipeline run: profiles, MILP solves and schedule re-simulations resolve
// through the Pipeline runner, which deduplicates concurrent requests,
// memoizes results in-process and — when backed by an artifact store — skips
// simulation and solving entirely on repeated runs. A Config is safe for
// concurrent use: parallel experiment cells draw private simulators from an
// internal machine pool (the Machine field itself is single-threaded, like
// every sim.Machine).
type Config struct {
	// Scale is the workload scale factor (1.0 = paper-comparable sizes).
	Scale float64
	// Machine simulates; defaults to sim.DefaultConfig. Serial code paths
	// use it directly; parallel cells use pooled machines built from its
	// configuration instead, because a sim.Machine must not run two
	// simulations at once.
	Machine *sim.Machine
	// MILP bounds each solver call.
	MILP *milp.Options
	// Workers bounds the experiment fan-out: independent (workload,
	// category-set, deadline) cells run on up to this many goroutines.
	// 0 selects runtime.GOMAXPROCS(0); 1 runs every cell sequentially.
	Workers int
	// Pipeline resolves record/profile/solve/validate stages. NewConfig
	// installs a memory-only runner; attach a disk-backed one
	// (pipeline.NewRunner over a pipeline.Store) to persist artifacts across
	// processes.
	Pipeline *pipeline.Runner
	// DisableRecording forces per-mode simulation for every profile instead
	// of the record-once/replay-per-mode path. The results are bit-identical
	// either way (see profile.Collect); this is an escape hatch for
	// cross-checking and for memory-constrained runs.
	DisableRecording bool

	mu           sync.Mutex
	specs        map[string]*workloads.Spec
	machines     sync.Pool
	fingerprints sync.Map // *profile.Profile -> string

	// Machine-pool accounting: outstanding borrows and the high-water mark.
	// The multi-core simulator draws cores×workers machines at peak; the
	// no-leak invariant (outstanding returns to zero) is asserted under the
	// race detector in tests.
	poolOutstanding atomic.Int64
	poolPeak        atomic.Int64
}

// NewConfig returns an experiment configuration at the given workload scale.
func NewConfig(scale float64) *Config {
	c := &Config{
		Scale:    scale,
		Machine:  sim.MustNew(sim.DefaultConfig()),
		Pipeline: pipeline.NewRunner(nil),
		specs:    make(map[string]*workloads.Spec),
	}
	c.machines.New = func() interface{} {
		return sim.MustNew(c.Machine.Config())
	}
	return c
}

// acquireMachine returns a simulator for exclusive use by one experiment
// cell; pair with releaseMachine. Machines are pooled because construction
// is cheap but not free and cells are short-lived.
func (c *Config) acquireMachine() *sim.Machine {
	out := c.poolOutstanding.Add(1)
	for {
		peak := c.poolPeak.Load()
		if out <= peak || c.poolPeak.CompareAndSwap(peak, out) {
			break
		}
	}
	return c.machines.Get().(*sim.Machine)
}

// releaseMachine resets the machine before returning it to the pool, so no
// borrower inherits another cell's EdgeHook or warmed microarchitectural
// state.
func (c *Config) releaseMachine(m *sim.Machine) {
	m.Reset()
	c.machines.Put(m)
	c.poolOutstanding.Add(-1)
}

// PoolStats reports the machine pool's current outstanding borrows and its
// high-water mark. Outstanding must be zero whenever no experiment cell is
// running — a non-zero value means a borrower leaked a machine.
func (c *Config) PoolStats() (outstanding, peak int64) {
	return c.poolOutstanding.Load(), c.poolPeak.Load()
}

// solverOpts returns the MILP options experiment cells should pass to the
// optimizer. When the experiment layer itself fans out, per-solve
// parallelism defaults to a single worker so cells do not oversubscribe the
// machine; an explicitly configured MILP.Workers always wins.
func (c *Config) solverOpts() *milp.Options {
	var o milp.Options
	if c.MILP != nil {
		o = *c.MILP
	}
	if o.Workers == 0 && c.workers() > 1 {
		o.Workers = 1
	}
	return &o
}

// Spec returns (and caches) the named workload at the configured scale.
func (c *Config) Spec(name string) (*workloads.Spec, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.specs[name]; ok {
		return s, nil
	}
	if len(c.specs) == 0 {
		for _, s := range workloads.All(c.Scale) {
			c.specs[s.Name] = s
		}
	}
	if s, ok := c.specs[name]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("exp: unknown benchmark %q", name)
}

// Profile returns (and caches) the profile of one benchmark input under a
// mode set identified by its level count, via the pipeline's profile stage:
// concurrent callers block only on the key they ask for, repeated in-process
// calls return the identical *profile.Profile, and with a disk store attached
// the collection is skipped entirely on repeated runs.
//
// The profile is replayed from the pipeline's record stage — one recorded
// simulation per (benchmark, input) whose mode-invariant event stream serves
// every mode set — so asking for 3-, 7- and 13-level profiles of one input
// costs one simulation, not 23. Workloads outside the recording envelope
// (and every workload when DisableRecording is set) fall back to per-mode
// simulation with bit-identical results.
func (c *Config) Profile(bench string, input int, levels int) (*profile.Profile, error) {
	return c.ProfileCtx(context.Background(), bench, input, levels)
}

// ProfileCtx is Profile under a caller context: a request cancelled while
// queued never starts the profiling simulation, and an in-flight collection
// is aborted only when every caller waiting on it has cancelled (see
// pipeline.RunCtx).
func (c *Config) ProfileCtx(ctx context.Context, bench string, input int, levels int) (*profile.Profile, error) {
	spec, err := c.Spec(bench)
	if err != nil {
		return nil, err
	}
	if input < 0 || input >= len(spec.Inputs) {
		return nil, fmt.Errorf("exp: %s has no input %d", bench, input)
	}
	ms, err := volt.Levels(levels)
	if err != nil {
		return nil, err
	}
	st := pipeline.Stage[*profile.Profile]{
		Kind:   pipeline.StageProfile,
		Encode: profile.Encode,
		Decode: func(data []byte) (*profile.Profile, error) {
			return profile.Decode(data, spec.Program, spec.Inputs[input], ms)
		},
		EncodeBinary: profile.EncodeBinary,
		DecodeBinary: func(data []byte) (*profile.Profile, error) {
			return profile.DecodeBinary(data, spec.Program, spec.Inputs[input], ms)
		},
		// Zero-copy warm reads: the matrices alias the mmap'd artifact,
		// which the runner's slot cache keeps alive (see Stage.DecodeMapped).
		DecodeMapped: func(data []byte) (*profile.Profile, error) {
			return profile.DecodeBinaryMapped(data, spec.Program, spec.Inputs[input], ms)
		},
	}
	return pipeline.RunCtx(ctx, c.runner(), st, c.profileKey(bench, input, levels), func(ctx context.Context) (*profile.Profile, error) {
		if !c.DisableRecording {
			rec, err := c.recording(ctx, spec, bench, input)
			if err == nil {
				return profile.FromRecording(rec, spec.Program, spec.Inputs[input], ms)
			}
			if !errors.Is(err, sim.ErrUnrecordable) {
				return nil, err
			}
		}
		m := c.acquireMachine()
		defer c.releaseMachine(m)
		return profile.CollectPerMode(m, spec.Program, spec.Inputs[input], ms)
	})
}

// recording returns (and caches) the replayable event stream of one benchmark
// input via the pipeline's record stage. The recording run itself happens at
// the fastest XScale mode, but the captured stream is mode-invariant, so the
// artifact is shared by every mode set — a second Profile call with a
// different level count replays the cached stream instead of simulating.
func (c *Config) recording(ctx context.Context, spec *workloads.Spec, bench string, input int) (*sim.Recording, error) {
	st := pipeline.Stage[*sim.Recording]{
		Kind:   pipeline.StageRecording,
		Encode: schedfile.EncodeRecording,
		Decode: func(data []byte) (*sim.Recording, error) {
			return schedfile.DecodeRecording(data, spec.Program, spec.Inputs[input], c.Machine.Config())
		},
		EncodeBinary: schedfile.EncodeRecordingBinary,
		DecodeBinary: func(data []byte) (*sim.Recording, error) {
			return schedfile.DecodeRecordingBinary(data, spec.Program, spec.Inputs[input], c.Machine.Config())
		},
		// Zero-copy warm reads: the trace and outcome bitstreams alias the
		// mmap'd artifact and replay straight out of the page cache, which
		// the runner's slot cache keeps alive (see Stage.DecodeMapped).
		DecodeMapped: func(data []byte) (*sim.Recording, error) {
			return schedfile.DecodeRecordingBinaryMapped(data, spec.Program, spec.Inputs[input], c.Machine.Config())
		},
	}
	return pipeline.RunCtx(ctx, c.runner(), st, c.recordKey(bench, input), func(context.Context) (*sim.Recording, error) {
		m := c.acquireMachine()
		defer c.releaseMachine(m)
		rec, _, err := m.Record(spec.Program, spec.Inputs[input], volt.XScale3().Max())
		return rec, err
	})
}

// Deadlines returns the benchmark's five paper deadlines (µs) at the current
// scale, measured from its 3-level profile. Index 0 is Deadline 1 (most
// stringent).
func (c *Config) Deadlines(bench string) ([5]float64, error) {
	spec, err := c.Spec(bench)
	if err != nil {
		return [5]float64{}, err
	}
	pr, err := c.Profile(bench, 0, 3)
	if err != nil {
		return [5]float64{}, err
	}
	n := pr.Modes.Len()
	return spec.Deadlines(pr.TotalTimeUS[n-1], pr.TotalTimeUS[0]), nil
}

// DefaultInput returns the benchmark's profiling input.
func (c *Config) DefaultInput(bench string) (ir.Input, error) {
	spec, err := c.Spec(bench)
	if err != nil {
		return ir.Input{}, err
	}
	return spec.Inputs[0], nil
}

// Suite lists the benchmark names used by the MILP experiments, in the
// paper's order.
func Suite() []string {
	return []string{"mpeg/decode", "gsm/encode", "mpg123", "adpcm/encode", "epic", "ghostscript"}
}

// Table7Benchmarks lists the benchmarks with Table 1/6/7 rows.
func Table7Benchmarks() []string {
	return []string{"adpcm/encode", "epic", "gsm/encode", "mpeg/decode"}
}

// Table is a rendered experiment: a title, column headers and string cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// JSON renders the table as a machine-readable object: one map per row,
// keyed by header.
func (t *Table) JSON(w io.Writer) error {
	type doc struct {
		Title string              `json:"title"`
		Rows  []map[string]string `json:"rows"`
	}
	d := doc{Title: t.Title}
	for _, r := range t.Rows {
		m := make(map[string]string, len(t.Headers))
		for i, h := range t.Headers {
			if i < len(r) {
				m[h] = r[i]
			}
		}
		d.Rows = append(d.Rows, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Render writes the table in aligned text form.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Curve is a sampled 1-D relationship (the paper's Figures 2, 3, 4, 8 and
// the per-benchmark series of Figures 14, 15, 17, 18).
type Curve struct {
	Name   string
	XLabel string
	YLabel string
	X, Y   []float64
}

// Table renders the curve as a two-column table.
func (c *Curve) Table() *Table {
	t := &Table{Title: c.Name, Headers: []string{c.XLabel, c.YLabel}}
	for i := range c.X {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.6g", c.X[i]),
			fmt.Sprintf("%.6g", c.Y[i]),
		})
	}
	return t
}

// Surface is a sampled 2-D relationship (the paper's Figures 5–7 and 9–11).
// Z[i][j] corresponds to (X[i], Y[j]).
type Surface struct {
	Name   string
	XLabel string
	YLabel string
	ZLabel string
	X, Y   []float64
	Z      [][]float64
}

// Table renders the surface as a grid with X down the rows and Y across the
// columns.
func (s *Surface) Table() *Table {
	headers := []string{s.XLabel + `\` + s.YLabel}
	for _, y := range s.Y {
		headers = append(headers, fmt.Sprintf("%.4g", y))
	}
	t := &Table{Title: fmt.Sprintf("%s (%s)", s.Name, s.ZLabel), Headers: headers}
	for i, x := range s.X {
		row := []string{fmt.Sprintf("%.4g", x)}
		for j := range s.Y {
			row = append(row, fmt.Sprintf("%.4f", s.Z[i][j]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Max returns the largest finite Z value (the peak savings of a surface).
func (s *Surface) Max() float64 {
	best := 0.0
	for _, row := range s.Z {
		for _, z := range row {
			if z > best {
				best = z
			}
		}
	}
	return best
}
