package exp

import (
	"fmt"
	"time"

	"ctdvs/internal/core"
	"ctdvs/internal/milp"
	"ctdvs/internal/profile"
	"ctdvs/internal/volt"
	"ctdvs/internal/workloads"
)

// ScalingRow records one CFG size of the solver-scaling experiment: the
// full-edge-set and filtered solve times as the MILP grows. This experiment
// extends Figure 14 to the problem sizes where the paper's "hours to
// seconds" characterization applies — real MediaBench CFGs have far more
// edges than the calibrated suite's graphs.
type ScalingRow struct {
	Edges          int // control-flow edges (full formulation size driver)
	Groups         int // independent edge groups after 2% filtering
	FullSolve      time.Duration
	FilteredSolve  time.Duration
	FullEnergyUJ   float64
	FilterEnergyUJ float64
	FullStatus     milp.Status
	FilterStatus   milp.Status
	// FullPivots and FullWarmHit describe the unfiltered solve's simplex
	// work: total pivots across all node relaxations and the fraction of
	// them that re-solved warm from a parent basis.
	FullPivots  int
	FullWarmHit float64
	// FullNodes and FullPrunes describe the unfiltered search tree: nodes
	// committed to the heap and children the analytic dual bound discarded
	// before any LP solve.
	FullNodes  int
	FullPrunes int
}

// Speedup returns full/filtered solve time.
func (r ScalingRow) Speedup() float64 {
	if r.FilteredSolve <= 0 {
		return 0
	}
	return float64(r.FullSolve) / float64(r.FilteredSolve)
}

// SolverScaling sweeps synthetic programs of growing control-flow size and
// solves each with and without edge filtering at a mid-range deadline.
// sizes gives the diamonds-per-region counts to sweep; regions and trips
// fix the rest of the generator. The per-solve time limit keeps the
// unfiltered runs bounded (their status is reported).
func SolverScaling(c *Config, regions, trips int, sizes []int, perSolve time.Duration) ([]ScalingRow, error) {
	reg := volt.DefaultRegulator()
	rows := make([]ScalingRow, len(sizes))
	err := c.forEach(len(sizes), func(i int) error {
		size := sizes[i]
		spec, err := workloads.Synthetic(workloads.SyntheticConfig{
			Regions:         regions,
			BlocksPerRegion: size,
			TripsPerRegion:  trips,
			Seed:            int64(1000 + size),
		})
		if err != nil {
			return err
		}
		m := c.acquireMachine()
		defer c.releaseMachine(m)
		pr, err := profile.Collect(m, spec.Program, spec.Inputs[0], volt.XScale3())
		if err != nil {
			return err
		}
		n := pr.Modes.Len()
		dl := (pr.TotalTimeUS[n-1] + pr.TotalTimeUS[0]) / 2

		opts := &milp.Options{TimeLimit: perSolve}
		if c.workers() > 1 {
			opts.Workers = 1
		}
		full, err := c.OptimizeSingle(pr, dl, &core.Options{
			Regulator: reg, FilterTail: -1, MILP: opts,
		})
		if err != nil {
			return fmt.Errorf("size %d full: %w", size, err)
		}
		filt, err := c.OptimizeSingle(pr, dl, &core.Options{
			Regulator: reg, FilterTail: 0.02, MILP: opts,
		})
		if err != nil {
			return fmt.Errorf("size %d filtered: %w", size, err)
		}
		rows[i] = ScalingRow{
			Edges:          full.TotalEdges,
			Groups:         filt.IndependentEdges,
			FullSolve:      full.Solver.SolveTime,
			FilteredSolve:  filt.Solver.SolveTime,
			FullEnergyUJ:   full.PredictedEnergyUJ,
			FilterEnergyUJ: filt.PredictedEnergyUJ,
			FullStatus:     full.Solver.Status,
			FilterStatus:   filt.Solver.Status,
			FullPivots:     full.Solver.LPPivots,
			FullWarmHit:    full.Solver.WarmHitRate(),
			FullNodes:      full.Solver.Nodes,
			FullPrunes:     full.Solver.AnalyticPrunes,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderSolverScaling formats the scaling sweep.
func RenderSolverScaling(rows []ScalingRow) *Table {
	t := &Table{
		Title: "Solver scaling: filtering speedup vs CFG size (extends Figure 14)",
		Headers: []string{"edges", "groups", "t(all)", "t(subset)", "speedup",
			"E(all) µJ", "E(subset) µJ", "nodes(all)", "pruned(all)", "pivots(all)", "warm(all)", "status(all)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Edges), fmt.Sprintf("%d", r.Groups),
			r.FullSolve.Round(time.Millisecond).String(),
			r.FilteredSolve.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", r.Speedup()),
			fmt.Sprintf("%.1f", r.FullEnergyUJ),
			fmt.Sprintf("%.1f", r.FilterEnergyUJ),
			fmt.Sprintf("%d", r.FullNodes),
			fmt.Sprintf("%d", r.FullPrunes),
			fmt.Sprintf("%d", r.FullPivots),
			fmt.Sprintf("%.0f%%", 100*r.FullWarmHit),
			r.FullStatus.String(),
		})
	}
	return t
}
