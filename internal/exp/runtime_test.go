package exp

import "testing"

func TestRuntimeVsCompileTime(t *testing.T) {
	c := testConfig()
	rows, err := RuntimeVsCompileTime(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MILPTimeUS > r.DeadlineUS*1.02 {
			t.Errorf("%s: MILP missed its deadline", r.Benchmark)
		}
		if r.MILPEnergyUJ <= 0 || r.UtilEnergyUJ <= 0 || r.MissEnergyUJ <= 0 {
			t.Errorf("%s: zero energies", r.Benchmark)
		}
		t.Logf("%s: MILP %.0f µJ | util %.0f µJ (meets=%v, %d sw) | miss %.0f µJ (meets=%v, %d sw)",
			r.Benchmark, r.MILPEnergyUJ, r.UtilEnergyUJ, r.UtilMeets, r.UtilSwitches,
			r.MissEnergyUJ, r.MissMeets, r.MissSwitches)
	}
	if len(RenderRuntime(rows).Rows) != 6 {
		t.Error("render mismatch")
	}
}
