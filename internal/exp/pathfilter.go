package exp

import (
	"fmt"
	"time"

	"ctdvs/internal/cfg"
	"ctdvs/internal/core"
	"ctdvs/internal/paths"
	"ctdvs/internal/volt"
)

// PathFilterRow compares the paper's 2 %-energy-tail edge filtering against
// a Ball–Larus hot-path policy: keep independent mode variables exactly for
// the edges of the acyclic paths that cover `coverage` of all path
// executions. This is a concrete instance of the paper's Section 7 plan to
// build path context into the formulation.
type PathFilterRow struct {
	Benchmark string

	TailGroups   int
	TailEnergyUJ float64
	TailSolve    time.Duration

	PathGroups   int
	PathEnergyUJ float64
	PathSolve    time.Duration
	PathsKept    int // hot paths needed to reach the coverage target
}

// AblationPathFilter traces each benchmark's Ball–Larus path profile, builds
// the keep-set from hot paths up to the coverage fraction, and optimizes at
// Deadline 4 under both filtering policies.
func AblationPathFilter(c *Config, coverage float64) ([]PathFilterRow, error) {
	reg := volt.DefaultRegulator()
	var rows []PathFilterRow
	for _, bench := range Suite() {
		pr, err := c.Profile(bench, 0, 3)
		if err != nil {
			return nil, err
		}
		dls, err := c.Deadlines(bench)
		if err != nil {
			return nil, err
		}
		dl := dls[3]
		spec, err := c.Spec(bench)
		if err != nil {
			return nil, err
		}

		// Trace the path profile on the default input at the fastest mode.
		numbering, err := paths.New(pr.Graph)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", bench, err)
		}
		tracer := numbering.NewTracer()
		c.Machine.EdgeHook = tracer.Edge
		_, err = c.Machine.Run(spec.Program, spec.Inputs[0], pr.Modes.Max())
		c.Machine.EdgeHook = nil
		if err != nil {
			return nil, err
		}
		tracer.Finish()

		keep, kept, err := hotPathEdges(numbering, tracer.Counts(), coverage)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", bench, err)
		}

		tail, err := c.OptimizeSingle(pr, dl, &core.Options{
			Regulator: reg, FilterTail: 0.02, MILP: c.MILP,
		})
		if err != nil {
			return nil, fmt.Errorf("%s tail: %w", bench, err)
		}
		path, err := c.OptimizeSingle(pr, dl, &core.Options{
			Regulator: reg, KeepIndependent: keep, MILP: c.MILP,
		})
		if err != nil {
			return nil, fmt.Errorf("%s path: %w", bench, err)
		}
		rows = append(rows, PathFilterRow{
			Benchmark:    bench,
			TailGroups:   tail.IndependentEdges,
			TailEnergyUJ: tail.PredictedEnergyUJ,
			TailSolve:    tail.Solver.SolveTime,
			PathGroups:   path.IndependentEdges,
			PathEnergyUJ: path.PredictedEnergyUJ,
			PathSolve:    path.Solver.SolveTime,
			PathsKept:    kept,
		})
	}
	return rows, nil
}

// hotPathEdges returns the edges of the hottest paths covering the given
// fraction of all path executions.
func hotPathEdges(n *paths.Numbering, counts map[paths.Key]int64, coverage float64) (map[cfg.Edge]bool, int, error) {
	hot, err := paths.Hot(n, counts, len(counts))
	if err != nil {
		return nil, 0, err
	}
	total := int64(0)
	for _, h := range hot {
		total += h.Count
	}
	keep := make(map[cfg.Edge]bool)
	covered := int64(0)
	kept := 0
	for _, h := range hot {
		if total > 0 && float64(covered) >= coverage*float64(total) {
			break
		}
		covered += h.Count
		kept++
		for i := 1; i < len(h.Blocks); i++ {
			keep[cfg.Edge{From: h.Blocks[i-1], To: h.Blocks[i]}] = true
		}
	}
	return keep, kept, nil
}

// RenderPathFilter formats the comparison.
func RenderPathFilter(rows []PathFilterRow) *Table {
	t := &Table{
		Title: "Ablation: 2%-tail filtering vs Ball-Larus hot-path filtering (deadline 4)",
		Headers: []string{"Benchmark", "groups(tail)", "groups(path)", "paths",
			"E(tail) µJ", "E(path) µJ", "t(tail)", "t(path)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Benchmark,
			fmt.Sprintf("%d", r.TailGroups), fmt.Sprintf("%d", r.PathGroups),
			fmt.Sprintf("%d", r.PathsKept),
			fmt.Sprintf("%.1f", r.TailEnergyUJ), fmt.Sprintf("%.1f", r.PathEnergyUJ),
			r.TailSolve.Round(time.Microsecond).String(),
			r.PathSolve.Round(time.Microsecond).String(),
		})
	}
	return t
}
