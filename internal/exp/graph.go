package exp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"ctdvs/internal/core"
	"ctdvs/internal/ir"
	"ctdvs/internal/milp"
	"ctdvs/internal/pipeline"
	"ctdvs/internal/profile"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
	"ctdvs/internal/workloads"
)

// This file lifts the experiment pipeline from single programs to task
// graphs. The graph-level solve and re-simulation are pipeline stages
// (graphsolve / graphsim) with content-addressed artifacts; the degenerate
// 1-task/1-core graph is routed through the existing single-program stages
// (solve / validate), so a task-graph request for a plain benchmark reuses —
// byte for byte — the artifacts the single-program path writes, and vice
// versa.

// GraphWorkload is a materialized task-graph workload: the spec, the built
// graph, the per-task profiles (shared with the single-program profile cache)
// and the resolved deadline.
type GraphWorkload struct {
	Spec     *workloads.GraphSpec
	Graph    *ir.TaskGraph
	Profiles []*profile.Profile
	// Cores is the target core count (Spec.Cores unless overridden).
	Cores int
	// DeadlineUS is the resolved absolute deadline.
	DeadlineUS float64
	// FastUS/SlowUS are the all-fastest and all-slowest placed makespans the
	// fractional deadline interpolates between.
	FastUS, SlowUS float64
}

// TaskGraph materializes a corpus graph by name (see workloads.Graphs) under
// a mode set with the given level count.
func (c *Config) TaskGraph(name string, levels int) (*GraphWorkload, error) {
	return c.TaskGraphCtx(context.Background(), name, levels)
}

// TaskGraphCtx is TaskGraph under a caller context.
func (c *Config) TaskGraphCtx(ctx context.Context, name string, levels int) (*GraphWorkload, error) {
	gs, ok := workloads.Graph(name)
	if !ok {
		return nil, fmt.Errorf("exp: unknown task graph %q", name)
	}
	return c.BuildGraphCtx(ctx, gs, levels, 0)
}

// BuildGraph materializes a task-graph spec: builds the graph against the
// config's cached benchmark specs (so programs are pointer-shared with the
// single-program path), collects per-task profiles through the profile cache,
// and resolves the deadline — deadlineUS when non-zero, otherwise the spec's
// fraction of the [all-fastest, all-slowest] placed-makespan span.
func (c *Config) BuildGraph(gs *workloads.GraphSpec, levels int, deadlineUS float64) (*GraphWorkload, error) {
	return c.BuildGraphCtx(context.Background(), gs, levels, deadlineUS)
}

// BuildGraphCtx is BuildGraph under a caller context.
func (c *Config) BuildGraphCtx(ctx context.Context, gs *workloads.GraphSpec, levels int, deadlineUS float64) (*GraphWorkload, error) {
	g, err := gs.BuildFrom(func(name string) (*workloads.Spec, error) { return c.Spec(name) })
	if err != nil {
		return nil, err
	}
	gw := &GraphWorkload{
		Spec:     gs,
		Graph:    g,
		Profiles: make([]*profile.Profile, len(g.Tasks)),
		Cores:    gs.Cores,
	}
	if gw.Cores < 1 {
		gw.Cores = 1
	}
	for i, ref := range gs.Tasks {
		pr, err := c.ProfileCtx(ctx, ref.Bench, ref.Input, levels)
		if err != nil {
			return nil, err
		}
		gw.Profiles[i] = pr
	}
	gw.FastUS, gw.SlowUS, err = c.graphSpan(gw)
	if err != nil {
		return nil, err
	}
	switch {
	case deadlineUS != 0:
		gw.DeadlineUS = deadlineUS
	case gs.DeadlineFrac != 0:
		gw.DeadlineUS = gs.Deadline(gw.FastUS, gw.SlowUS)
	default:
		return nil, fmt.Errorf("exp: graph %q has neither an absolute deadline nor a deadline fraction", gs.Name)
	}
	return gw, nil
}

// graphSpan computes the all-fastest and all-slowest placed makespans of a
// graph workload — pure arithmetic over the profiles, no simulation.
func (c *Config) graphSpan(gw *GraphWorkload) (fast, slow float64, err error) {
	n := len(gw.Graph.Tasks)
	nm := gw.Profiles[0].Modes.Len()
	fastDur := make([]float64, n)
	for t := 0; t < n; t++ {
		fastDur[t] = gw.Profiles[t].TotalTimeUS[nm-1]
	}
	assign, order := core.ListPlacement(gw.Graph, fastDur, gw.Cores)
	span := func(mode int) (float64, error) {
		s := &sim.GraphSchedule{
			Modes:     gw.Profiles[0].Modes,
			Regulator: volt.DefaultRegulator(),
			Cores:     gw.Cores,
			Placement: make([]sim.TaskPlacement, n),
			Order:     order,
		}
		dur := make([]float64, n)
		energy := make([]float64, n)
		for t := 0; t < n; t++ {
			s.Placement[t] = sim.TaskPlacement{Core: assign[t], Mode: mode}
			dur[t] = gw.Profiles[t].TotalTimeUS[mode]
			energy[t] = gw.Profiles[t].TotalEnergyUJ[mode]
		}
		plan, err := sim.PlanGraph(gw.Graph, s, dur, energy)
		if err != nil {
			return 0, err
		}
		return plan.MakespanUS, nil
	}
	if fast, err = span(nm - 1); err != nil {
		return 0, 0, err
	}
	if slow, err = span(0); err != nil {
		return 0, 0, err
	}
	return fast, slow, nil
}

// graphSolveArtifact is the cached outcome of one task-graph solve. Like the
// single-program solveArtifact, infeasible outcomes are artifacts too. The
// degenerate 1-task/1-core case never reaches this stage — it is routed
// through the single-program solve stage instead.
type graphSolveArtifact struct {
	Version             int                 `json:"version"`
	Infeasible          bool                `json:"infeasible"`
	Cores               int                 `json:"cores,omitempty"`
	Placement           []sim.TaskPlacement `json:"placement,omitempty"`
	Order               [][]int             `json:"order,omitempty"`
	PredictedEnergyUJ   float64             `json:"predicted_energy_uj"`
	PredictedMakespanUS float64             `json:"predicted_makespan_us"`
	Solver              solverStatsJSON     `json:"solver"`
}

const graphSolveArtifactVersion = 2

var graphSolveStage = pipeline.Stage[*graphSolveArtifact]{
	Kind:   pipeline.StageGraphSolve,
	Encode: func(a *graphSolveArtifact) ([]byte, error) { return json.Marshal(a) },
	Decode: func(data []byte) (*graphSolveArtifact, error) {
		var a graphSolveArtifact
		if err := json.Unmarshal(data, &a); err != nil {
			return nil, err
		}
		if a.Version != graphSolveArtifactVersion {
			return nil, fmt.Errorf("exp: graph solve artifact version %d, want %d", a.Version, graphSolveArtifactVersion)
		}
		return &a, nil
	},
	EncodeBinary: encodeGraphSolveBinary,
	DecodeBinary: decodeGraphSolveBinary,
}

// toGraphResult rebuilds the optimizer result from an artifact, recomputing
// the exact predicted timeline from the profiles (cold runs pass through the
// same conversion, so cold and warm results are identical by construction).
func (a *graphSolveArtifact) toGraphResult(gw *GraphWorkload, reg volt.Regulator) (*core.GraphResult, error) {
	n := len(gw.Graph.Tasks)
	sched := &sim.GraphSchedule{
		Modes:     gw.Profiles[0].Modes,
		Regulator: reg,
		Cores:     a.Cores,
		Placement: a.Placement,
		Order:     a.Order,
	}
	dur := make([]float64, n)
	energy := make([]float64, n)
	for t := 0; t < n; t++ {
		m := a.Placement[t].Mode
		dur[t] = gw.Profiles[t].TotalTimeUS[m]
		energy[t] = gw.Profiles[t].TotalEnergyUJ[m]
	}
	plan, err := sim.PlanGraph(gw.Graph, sched, dur, energy)
	if err != nil {
		return nil, err
	}
	return &core.GraphResult{
		Schedule:            sched,
		PredictedEnergyUJ:   plan.EnergyUJ,
		PredictedMakespanUS: plan.MakespanUS,
		Plan:                plan,
		Solver: &milp.Result{
			Status:         milp.Status(a.Solver.Status),
			Objective:      a.Solver.Objective,
			Bound:          a.Solver.Bound,
			Nodes:          a.Solver.Nodes,
			LPIters:        a.Solver.LPIters,
			Workers:        a.Solver.Workers,
			SolveTime:      time.Duration(a.Solver.SolveTimeNS),
			WarmSolves:     a.Solver.WarmSolves,
			ColdSolves:     a.Solver.ColdSolves,
			WarmFallbacks:  a.Solver.WarmFallbacks,
			LPPivots:       a.Solver.LPPivots,
			LPTime:         time.Duration(a.Solver.LPTimeNS),
			AnalyticPrunes: a.Solver.AnalyticPrunes,
		},
	}, nil
}

// OptimizeGraph solves the task-graph DVS problem through the pipeline.
func (c *Config) OptimizeGraph(gw *GraphWorkload, opts *core.Options) (*core.GraphResult, error) {
	return c.OptimizeGraphCtx(context.Background(), gw, opts)
}

// OptimizeGraphCtx is OptimizeGraph under a caller context. The degenerate
// 1-task/1-core graph routes through the single-program solve stage (same
// key, same artifact bytes as an OptimizeSingle call for that benchmark and
// deadline) and is lifted with core.WrapSingleGraph; everything else runs the
// graph solver under the graphsolve stage.
func (c *Config) OptimizeGraphCtx(ctx context.Context, gw *GraphWorkload, opts *core.Options) (*core.GraphResult, error) {
	var o core.Options
	if opts != nil {
		o = *opts
	}
	if o.Regulator == (volt.Regulator{}) {
		o.Regulator = volt.DefaultRegulator()
	}
	if o.MILP == nil {
		o.MILP = c.solverOpts()
	}
	g := gw.Graph
	if len(g.Tasks) == 1 && gw.Cores == 1 && g.Tasks[0].ReleaseUS == 0 {
		dl := gw.DeadlineUS
		if t := g.Tasks[0]; t.DeadlineUS > 0 && t.DeadlineUS < dl {
			dl = t.DeadlineUS
		}
		res, err := c.OptimizeSingleCtx(ctx, gw.Profiles[0], dl, &o)
		if err != nil {
			return nil, err
		}
		return core.WrapSingleGraph(res), nil
	}

	fps := make([]string, len(gw.Profiles))
	for i, pr := range gw.Profiles {
		var err error
		if fps[i], err = c.fingerprint(pr); err != nil {
			return nil, err
		}
	}
	key := graphSolveKey(gw, fps, &o)
	art, err := pipeline.RunCtx(ctx, c.runner(), graphSolveStage, key, func(ctx context.Context) (*graphSolveArtifact, error) {
		res, err := core.OptimizeGraphContext(ctx, g, gw.Profiles, gw.Cores, gw.DeadlineUS, &o)
		if errors.Is(err, core.ErrInfeasible) {
			return &graphSolveArtifact{Version: graphSolveArtifactVersion, Infeasible: true}, nil
		}
		if err != nil {
			return nil, err
		}
		return &graphSolveArtifact{
			Version:             graphSolveArtifactVersion,
			Cores:               res.Schedule.Cores,
			Placement:           res.Schedule.Placement,
			Order:               res.Schedule.Order,
			PredictedEnergyUJ:   res.PredictedEnergyUJ,
			PredictedMakespanUS: res.PredictedMakespanUS,
			Solver: solverStatsJSON{
				Status:         int(res.Solver.Status),
				Objective:      res.Solver.Objective,
				Bound:          res.Solver.Bound,
				Nodes:          res.Solver.Nodes,
				LPIters:        res.Solver.LPIters,
				Workers:        res.Solver.Workers,
				SolveTimeNS:    res.Solver.SolveTime.Nanoseconds(),
				WarmSolves:     res.Solver.WarmSolves,
				ColdSolves:     res.Solver.ColdSolves,
				WarmFallbacks:  res.Solver.WarmFallbacks,
				LPPivots:       res.Solver.LPPivots,
				LPTimeNS:       res.Solver.LPTime.Nanoseconds(),
				AnalyticPrunes: res.Solver.AnalyticPrunes,
			},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	if art.Infeasible {
		return nil, core.ErrInfeasible
	}
	return art.toGraphResult(gw, o.Regulator)
}

// GraphRunSummary is the cached scalar outcome of executing a graph schedule:
// the whole timeline, without per-block maps.
type GraphRunSummary struct {
	MakespanUS         float64       `json:"makespan_us"`
	EnergyUJ           float64       `json:"energy_uj"`
	TaskEnergyUJ       float64       `json:"task_energy_uj"`
	Transitions        int64         `json:"transitions"`
	TransitionTimeUS   float64       `json:"transition_time_us"`
	TransitionEnergyUJ float64       `json:"transition_energy_uj"`
	CoreBusyUS         []float64     `json:"core_busy_us"`
	MissedDeadlines    int           `json:"missed_deadlines"`
	Runs               []sim.TaskRun `json:"runs"`
}

func summarizeGraph(res *sim.GraphResult) GraphRunSummary {
	return GraphRunSummary{
		MakespanUS:         res.MakespanUS,
		EnergyUJ:           res.EnergyUJ,
		TaskEnergyUJ:       res.TaskEnergyUJ,
		Transitions:        res.Transitions,
		TransitionTimeUS:   res.TransitionTimeUS,
		TransitionEnergyUJ: res.TransitionEnergyUJ,
		CoreBusyUS:         res.CoreBusyUS,
		MissedDeadlines:    res.MissedDeadlines,
		Runs:               res.Runs,
	}
}

var graphSimStage = pipeline.Stage[GraphRunSummary]{
	Kind:   pipeline.StageGraphSim,
	Encode: func(s GraphRunSummary) ([]byte, error) { return json.Marshal(s) },
	Decode: func(data []byte) (GraphRunSummary, error) {
		var s GraphRunSummary
		err := json.Unmarshal(data, &s)
		return s, err
	},
}

// configPool adapts the config's machine pool to sim.MachinePool.
type configPool struct{ c *Config }

func (p configPool) Acquire() *sim.Machine  { return p.c.acquireMachine() }
func (p configPool) Release(m *sim.Machine) { p.c.releaseMachine(m) }

// SimulateGraph executes (or loads from cache) a graph schedule.
func (c *Config) SimulateGraph(gw *GraphWorkload, s *sim.GraphSchedule) (GraphRunSummary, error) {
	return c.SimulateGraphCtx(context.Background(), gw, s)
}

// SimulateGraphCtx is SimulateGraph under a caller context. A degenerate
// schedule carrying an intra-task edge-grained schedule routes through the
// single-program validate stage — the artifact is the one an equivalent
// RunSchedule call reads and writes — and is lifted into the graph summary;
// everything else runs the multi-core simulator under the graphsim stage with
// up to min(workers, tasks) concurrent task simulations on pooled machines.
func (c *Config) SimulateGraphCtx(ctx context.Context, gw *GraphWorkload, s *sim.GraphSchedule) (GraphRunSummary, error) {
	g := gw.Graph
	if len(g.Tasks) == 1 && s.Cores == 1 && len(s.Intra) == 1 && s.Intra[0] != nil && g.Tasks[0].ReleaseUS == 0 {
		run, err := c.RunScheduleCtx(ctx, gw.Profiles[0], s.Intra[0])
		if err != nil {
			return GraphRunSummary{}, err
		}
		sum := GraphRunSummary{
			MakespanUS:         run.TimeUS,
			EnergyUJ:           run.EnergyUJ,
			TaskEnergyUJ:       run.EnergyUJ - run.TransitionEnergyUJ,
			Transitions:        run.Transitions,
			TransitionTimeUS:   run.TransitionTimeUS,
			TransitionEnergyUJ: run.TransitionEnergyUJ,
			CoreBusyUS:         []float64{run.TimeUS},
			Runs: []sim.TaskRun{{
				Task: 0, Name: g.Tasks[0].Name, Core: 0, Mode: s.Placement[0].Mode,
				StartUS: 0, FinishUS: run.TimeUS,
				TimeUS: run.TimeUS, EnergyUJ: run.EnergyUJ,
			}},
		}
		if dl := g.Tasks[0].DeadlineUS; dl > 0 && run.TimeUS > dl*(1+1e-9) {
			sum.MissedDeadlines = 1
		}
		return sum, nil
	}

	fps := make([]string, len(gw.Profiles))
	for i, pr := range gw.Profiles {
		var err error
		if fps[i], err = c.fingerprint(pr); err != nil {
			return GraphRunSummary{}, err
		}
	}
	key, err := graphSimKey(gw, fps, s, c.Machine.Config())
	if err != nil {
		return GraphRunSummary{}, err
	}
	return pipeline.RunCtx(ctx, c.runner(), graphSimStage, key, func(context.Context) (GraphRunSummary, error) {
		res, err := sim.SimulateGraph(configPool{c}, g, s, c.workers())
		if err != nil {
			return GraphRunSummary{}, err
		}
		return summarizeGraph(res), nil
	})
}

// ReclaimGraph runs the slack-reclaiming governor over a static graph
// schedule, with per-task per-mode tables taken from the profiles (which are
// bit-identical to fixed-mode simulation, so the governor's arithmetic is
// exact). It returns the governed schedule and both planned timelines.
func (c *Config) ReclaimGraph(gw *GraphWorkload, static *sim.GraphSchedule) (governed *sim.GraphSchedule, governedPlan, staticPlan *sim.GraphResult, err error) {
	n := len(gw.Graph.Tasks)
	nm := gw.Profiles[0].Modes.Len()
	dur := make([][]float64, n)
	energy := make([][]float64, n)
	for t := 0; t < n; t++ {
		dur[t] = make([]float64, nm)
		energy[t] = make([]float64, nm)
		for m := 0; m < nm; m++ {
			dur[t][m] = gw.Profiles[t].TotalTimeUS[m]
			energy[t][m] = gw.Profiles[t].TotalEnergyUJ[m]
		}
	}
	return sim.Reclaim(sim.ReclaimInput{Graph: gw.Graph, Static: static, DurUS: dur, EnergyUJ: energy})
}

// GraphCell is one row of the task-graph study: a corpus graph optimized and
// executed statically, then governed by the slack reclaimer.
type GraphCell struct {
	Graph      string
	Cores      int
	Tasks      int
	DeadlineUS float64

	Static   GraphRunSummary
	Governed GraphRunSummary
	// SavingsVsFastest is 1 − E_static/E_allfastest: what the compile-time
	// schedule saves against running everything at the top mode.
	SavingsVsFastest float64
	// GovernorSavings is 1 − E_governed/E_static: what slack reclamation adds.
	GovernorSavings float64
	Solver          *milp.Result
}

// TaskGraphStudy optimizes and executes every corpus graph at the given mode
// level count: compile-time schedule via the graph MILP, then the online
// governor over it. Cells run sequentially (each one already fans out task
// simulations across the machine pool).
func (c *Config) TaskGraphStudy(levels int) ([]GraphCell, error) {
	return c.TaskGraphStudyCtx(context.Background(), levels)
}

// TaskGraphStudyCtx is TaskGraphStudy under a caller context.
func (c *Config) TaskGraphStudyCtx(ctx context.Context, levels int) ([]GraphCell, error) {
	var cells []GraphCell
	for _, gs := range workloads.Graphs() {
		gw, err := c.BuildGraphCtx(ctx, gs, levels, 0)
		if err != nil {
			return nil, err
		}
		res, err := c.OptimizeGraphCtx(ctx, gw, nil)
		if err != nil {
			return nil, fmt.Errorf("exp: graph %q: %w", gs.Name, err)
		}
		static, err := c.SimulateGraphCtx(ctx, gw, res.Schedule)
		if err != nil {
			return nil, err
		}
		governed, _, _, err := c.ReclaimGraph(gw, res.Schedule)
		if err != nil {
			return nil, err
		}
		governedRun, err := c.SimulateGraphCtx(ctx, gw, governed)
		if err != nil {
			return nil, err
		}
		nm := gw.Profiles[0].Modes.Len()
		fastE := 0.0
		for _, pr := range gw.Profiles {
			fastE += pr.TotalEnergyUJ[nm-1]
		}
		cell := GraphCell{
			Graph:      gs.Name,
			Cores:      gw.Cores,
			Tasks:      len(gw.Graph.Tasks),
			DeadlineUS: gw.DeadlineUS,
			Static:     static,
			Governed:   governedRun,
			Solver:     res.Solver,
		}
		if fastE > 0 {
			cell.SavingsVsFastest = 1 - static.EnergyUJ/fastE
		}
		if static.EnergyUJ > 0 {
			cell.GovernorSavings = 1 - governedRun.EnergyUJ/static.EnergyUJ
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// TaskGraphTable renders the study as a paper-style table.
func TaskGraphTable(cells []GraphCell) *Table {
	t := &Table{
		Title: "Task-graph DVS: static MILP schedule vs slack-reclaiming governor",
		Headers: []string{"graph", "cores", "tasks", "deadline_us", "static_uj",
			"governed_uj", "static_saving", "governor_saving", "met"},
	}
	for _, cell := range cells {
		met := "yes"
		if cell.Static.MissedDeadlines > 0 || cell.Static.MakespanUS > cell.DeadlineUS*(1+1e-9) ||
			cell.Governed.MissedDeadlines > 0 || cell.Governed.MakespanUS > cell.DeadlineUS*(1+1e-9) {
			met = "NO"
		}
		t.Rows = append(t.Rows, []string{
			cell.Graph,
			fmt.Sprintf("%d", cell.Cores),
			fmt.Sprintf("%d", cell.Tasks),
			fmt.Sprintf("%.1f", cell.DeadlineUS),
			fmt.Sprintf("%.2f", cell.Static.EnergyUJ),
			fmt.Sprintf("%.2f", cell.Governed.EnergyUJ),
			fmt.Sprintf("%.1f%%", 100*cell.SavingsVsFastest),
			fmt.Sprintf("%.1f%%", 100*cell.GovernorSavings),
			met,
		})
	}
	return t
}
