package exp

import "testing"

func TestPlacementStats(t *testing.T) {
	c := testConfig()
	rows, err := PlacementStats(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 6 benchmarks × 2 deadlines
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Required+r.Silent != r.Edges {
			t.Errorf("%s D%d: required %d + silent %d != edges %d",
				r.Benchmark, r.Deadline, r.Required, r.Silent, r.Edges)
		}
		if r.Hoistable > r.Required {
			t.Errorf("%s D%d: hoistable %d > required %d",
				r.Benchmark, r.Deadline, r.Hoistable, r.Required)
		}
		// A schedule with no dynamic transitions and a matching initial
		// mode needs no instructions at all.
		if r.DynamicTransitions == 0 && r.Required > 1 {
			t.Errorf("%s D%d: %d instructions required for 0 transitions",
				r.Benchmark, r.Deadline, r.Required)
		}
	}
	if len(RenderPlacement(rows).Rows) != 12 {
		t.Error("render mismatch")
	}
}
