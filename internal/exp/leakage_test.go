package exp

import "testing"

func TestAblationLeakage(t *testing.T) {
	c := testConfig()
	rows, err := AblationLeakage(c, DefaultLeakageSweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Savings) != len(DefaultLeakageSweep()) {
			t.Fatalf("%s: %d points", r.Benchmark, len(r.Savings))
		}
		// Leakage penalizes the (slower) DVS schedule relative to the (also
		// slowed but shorter) single-mode baseline when the DVS run takes
		// longer — so savings must not increase as leakage grows whenever
		// the DVS schedule is slower than the baseline. In our suite the
		// DVS schedule at D5 is never faster than the baseline run, so the
		// sequence is non-increasing.
		for i := 1; i < len(r.Savings); i++ {
			if r.Savings[i] > r.Savings[i-1]+1e-9 {
				t.Errorf("%s: savings rose with leakage: %v", r.Benchmark, r.Savings)
				break
			}
		}
	}
	if got := len(RenderLeakage(rows).Rows); got != 6 {
		t.Errorf("render rows = %d", got)
	}
	if RenderLeakage(nil).Title == "" {
		t.Error("empty render broken")
	}
}
