package profile

import (
	"fmt"

	"ctdvs/internal/cfg"
	"ctdvs/internal/ir"
	"ctdvs/internal/pipeline"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

// Binary profile codec. The dominant payload — the per-block × per-mode
// time/energy matrices — is written as two raw IEEE-754 runs over a single
// backing array, so a warm decode performs a handful of exact-size
// allocations instead of one per block row plus one per JSON number.
// Fingerprint stays on the JSON encoding (codec.go), so solve keys are
// unchanged by the store's write format.

// EncodeBinary renders the profile in the binary artifact format.
func EncodeBinary(pr *Profile) ([]byte, error) {
	if pr == nil || pr.Graph == nil || pr.Modes == nil {
		return nil, fmt.Errorf("profile: encode nil profile")
	}
	nb, nm := pr.Graph.NumBlocks, pr.Modes.Len()
	hint := 256 + 16*nb*nm + 16*nm +
		4*(len(pr.Invocations)+len(pr.EdgeCounts)+len(pr.PathCounts))
	w := pipeline.NewBinWriter(pipeline.BinTagProfile, hint)
	w.Uvarint(codecVersion)
	w.String(pr.Program.Name)
	w.String(pr.Input.Name)
	w.Varint(int64(nm))
	for _, m := range pr.Modes.Modes() {
		w.Float(m.V)
		w.Float(m.F)
	}
	w.Varint(int64(nb))
	w.Varint(int64(pr.Graph.NumEdges()))
	w.Varint(int64(len(pr.Graph.Paths)))

	// The raw float runs are 8-byte aligned (and stay aligned across
	// consecutive rows), so borrow-mode decodes can alias them in place.
	w.Pad8()
	for _, row := range pr.TimeUS {
		w.FloatsRaw(row)
	}
	for _, row := range pr.EnergyUJ {
		w.FloatsRaw(row)
	}
	w.Int64s(pr.Invocations)
	w.Int64s(pr.EdgeCounts)
	w.Int64s(pr.PathCounts)
	w.Pad8()
	w.FloatsRaw(pr.TotalTimeUS)
	w.FloatsRaw(pr.TotalEnergyUJ)

	w.Varint(pr.Params.NCache)
	w.Varint(pr.Params.NOverlap)
	w.Varint(pr.Params.NDependent)
	w.Float(pr.Params.TInvariantUS)
	return w.Bytes(), nil
}

// DecodeBinary reconstructs a profile from a binary artifact, applying the
// same workload-agreement checks as Decode. The time/energy matrices share
// one backing array per matrix; the input slice is never retained.
func DecodeBinary(data []byte, p *ir.Program, in ir.Input, modes *volt.ModeSet) (*Profile, error) {
	r, err := pipeline.NewBinReader(data, pipeline.BinTagProfile)
	if err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	return decodeBinary(r, p, in, modes)
}

// DecodeBinaryMapped is DecodeBinary in borrow mode: the float runs backing
// the time/energy matrices and totals alias data wherever alignment allows
// instead of being copied, so an mmap'd profile is consumed straight out of
// the page cache. The decoded value is byte-identical to DecodeBinary's
// (misaligned or big-endian hosts silently fall back to copying). The caller
// owns the lifetime: data must stay valid for as long as the profile is in
// use (see pipeline.Mapping).
func DecodeBinaryMapped(data []byte, p *ir.Program, in ir.Input, modes *volt.ModeSet) (*Profile, error) {
	r, err := pipeline.NewBinReaderBorrow(data, pipeline.BinTagProfile)
	if err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	return decodeBinary(r, p, in, modes)
}

func decodeBinary(r *pipeline.BinReader, p *ir.Program, in ir.Input, modes *volt.ModeSet) (*Profile, error) {
	if v := r.Uvarint(); r.Err() == nil && v != codecVersion {
		return nil, fmt.Errorf("profile: artifact version %d, want %d", v, codecVersion)
	}
	program := r.String()
	input := r.String()
	nModes := r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	if program != p.Name || input != in.Name {
		return nil, fmt.Errorf("profile: artifact is for %s/%s, want %s/%s", program, input, p.Name, in.Name)
	}
	if nModes != modes.Len() {
		return nil, fmt.Errorf("profile: artifact has %d modes, want %d", nModes, modes.Len())
	}
	for i, m := range modes.Modes() {
		v, f := r.Float(), r.Float()
		if r.Err() == nil && (v != m.V || f != m.F) {
			return nil, fmt.Errorf("profile: artifact mode %d is (%gV, %gMHz), want (%gV, %gMHz)", i, v, f, m.V, m.F)
		}
	}
	nBlocks := r.Int()
	nEdges := r.Int()
	nPaths := r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	g, err := cfg.FromProgram(p)
	if err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	if nBlocks != g.NumBlocks || nEdges != g.NumEdges() || nPaths != len(g.Paths) {
		return nil, fmt.Errorf("profile: artifact graph dims (%d blocks, %d edges, %d paths) do not match program (%d, %d, %d)",
			nBlocks, nEdges, nPaths, g.NumBlocks, g.NumEdges(), len(g.Paths))
	}
	nm := nModes
	// The matrix dimensions are validated above, so the float runs carry no
	// length prefixes; FloatsBorrow still bounds each run against the input.
	// Each matrix is one contiguous run over a single backing array — copied
	// in plain mode, aliased out of the mapping in borrow mode.
	if r.Remaining() < 16*nBlocks*nm {
		return nil, fmt.Errorf("profile: artifact matrices truncated")
	}
	r.Pad8()
	timeBack := r.FloatsBorrow(nBlocks * nm)
	energyBack := r.FloatsBorrow(nBlocks * nm)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	timeUS := make([][]float64, nBlocks)
	energyUJ := make([][]float64, nBlocks)
	for j := 0; j < nBlocks; j++ {
		timeUS[j] = timeBack[j*nm : (j+1)*nm : (j+1)*nm]
		energyUJ[j] = energyBack[j*nm : (j+1)*nm : (j+1)*nm]
	}
	invocations := r.Int64s()
	edgeCounts := r.Int64s()
	pathCounts := r.Int64s()
	r.Pad8()
	totalTime := r.FloatsBorrow(nm)
	totalEnergy := r.FloatsBorrow(nm)
	params := sim.Params{
		NCache:       r.Varint(),
		NOverlap:     r.Varint(),
		NDependent:   r.Varint(),
		TInvariantUS: r.Float(),
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	if len(invocations) != g.NumBlocks || len(edgeCounts) != g.NumEdges() || len(pathCounts) != len(g.Paths) {
		return nil, fmt.Errorf("profile: artifact arrays do not match graph dimensions")
	}
	return &Profile{
		Program:       p,
		Input:         in,
		Graph:         g,
		Modes:         modes,
		TimeUS:        timeUS,
		EnergyUJ:      energyUJ,
		Invocations:   invocations,
		EdgeCounts:    edgeCounts,
		PathCounts:    pathCounts,
		TotalTimeUS:   totalTime,
		TotalEnergyUJ: totalEnergy,
		Params:        params,
	}, nil
}
