package profile

import (
	"encoding/json"
	"fmt"

	"ctdvs/internal/cfg"
	"ctdvs/internal/ir"
	"ctdvs/internal/pipeline"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

// fileJSON is the artifact layout for a cached profile. The program, input and
// graph are NOT serialized — they are re-derived from the workload spec on
// load, which both keeps artifacts small and guarantees the graph matches the
// program the caller is about to optimize. Struct field order is fixed, so
// Encode is deterministic and encode(decode(encode(x))) == encode(x).
type fileJSON struct {
	Version int        `json:"version"`
	Program string     `json:"program"`
	Input   string     `json:"input"`
	Modes   []modeJSON `json:"modes"`
	NBlocks int        `json:"n_blocks"`
	NEdges  int        `json:"n_edges"`
	NPaths  int        `json:"n_paths"`

	TimeUS      [][]float64 `json:"time_us"`
	EnergyUJ    [][]float64 `json:"energy_uj"`
	Invocations []int64     `json:"invocations"`
	EdgeCounts  []int64     `json:"edge_counts"`
	PathCounts  []int64     `json:"path_counts"`

	TotalTimeUS   []float64 `json:"total_time_us"`
	TotalEnergyUJ []float64 `json:"total_energy_uj"`

	Params paramsJSON `json:"params"`
}

type modeJSON struct {
	Volts float64 `json:"volts"`
	MHz   float64 `json:"mhz"`
}

type paramsJSON struct {
	NCache       int64   `json:"n_cache"`
	NOverlap     int64   `json:"n_overlap"`
	NDependent   int64   `json:"n_dependent"`
	TInvariantUS float64 `json:"t_invariant_us"`
}

const codecVersion = 1

// Encode renders the profile's measurement data as a deterministic artifact.
func Encode(pr *Profile) ([]byte, error) {
	if pr == nil || pr.Graph == nil || pr.Modes == nil {
		return nil, fmt.Errorf("profile: encode nil profile")
	}
	f := fileJSON{
		Version: codecVersion,
		Program: pr.Program.Name,
		Input:   pr.Input.Name,
		NBlocks: pr.Graph.NumBlocks,
		NEdges:  pr.Graph.NumEdges(),
		NPaths:  len(pr.Graph.Paths),

		TimeUS:      pr.TimeUS,
		EnergyUJ:    pr.EnergyUJ,
		Invocations: pr.Invocations,
		EdgeCounts:  pr.EdgeCounts,
		PathCounts:  pr.PathCounts,

		TotalTimeUS:   pr.TotalTimeUS,
		TotalEnergyUJ: pr.TotalEnergyUJ,

		Params: paramsJSON{
			NCache:       pr.Params.NCache,
			NOverlap:     pr.Params.NOverlap,
			NDependent:   pr.Params.NDependent,
			TInvariantUS: pr.Params.TInvariantUS,
		},
	}
	for _, m := range pr.Modes.Modes() {
		f.Modes = append(f.Modes, modeJSON{Volts: m.V, MHz: m.F})
	}
	return json.Marshal(f)
}

// Decode reconstructs a profile from an artifact for the given workload. The
// program, input and mode set come from the caller (the workload spec), and
// the artifact must agree with them — a mismatch means the key logic failed,
// and Decode reports it rather than returning a profile for the wrong
// workload.
func Decode(data []byte, p *ir.Program, in ir.Input, modes *volt.ModeSet) (*Profile, error) {
	var f fileJSON
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	if f.Version != codecVersion {
		return nil, fmt.Errorf("profile: artifact version %d, want %d", f.Version, codecVersion)
	}
	if f.Program != p.Name || f.Input != in.Name {
		return nil, fmt.Errorf("profile: artifact is for %s/%s, want %s/%s", f.Program, f.Input, p.Name, in.Name)
	}
	if len(f.Modes) != modes.Len() {
		return nil, fmt.Errorf("profile: artifact has %d modes, want %d", len(f.Modes), modes.Len())
	}
	for i, m := range modes.Modes() {
		if f.Modes[i].Volts != m.V || f.Modes[i].MHz != m.F {
			return nil, fmt.Errorf("profile: artifact mode %d is (%gV, %gMHz), want (%gV, %gMHz)",
				i, f.Modes[i].Volts, f.Modes[i].MHz, m.V, m.F)
		}
	}
	g, err := cfg.FromProgram(p)
	if err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	if f.NBlocks != g.NumBlocks || f.NEdges != g.NumEdges() || f.NPaths != len(g.Paths) {
		return nil, fmt.Errorf("profile: artifact graph dims (%d blocks, %d edges, %d paths) do not match program (%d, %d, %d)",
			f.NBlocks, f.NEdges, f.NPaths, g.NumBlocks, g.NumEdges(), len(g.Paths))
	}
	nm := modes.Len()
	if len(f.TimeUS) != g.NumBlocks || len(f.EnergyUJ) != g.NumBlocks ||
		len(f.Invocations) != g.NumBlocks || len(f.EdgeCounts) != g.NumEdges() ||
		len(f.PathCounts) != len(g.Paths) || len(f.TotalTimeUS) != nm || len(f.TotalEnergyUJ) != nm {
		return nil, fmt.Errorf("profile: artifact arrays do not match graph dimensions")
	}
	for j := 0; j < g.NumBlocks; j++ {
		if len(f.TimeUS[j]) != nm || len(f.EnergyUJ[j]) != nm {
			return nil, fmt.Errorf("profile: artifact block %d has %d modes, want %d", j, len(f.TimeUS[j]), nm)
		}
	}
	return &Profile{
		Program:       p,
		Input:         in,
		Graph:         g,
		Modes:         modes,
		TimeUS:        f.TimeUS,
		EnergyUJ:      f.EnergyUJ,
		Invocations:   f.Invocations,
		EdgeCounts:    f.EdgeCounts,
		PathCounts:    f.PathCounts,
		TotalTimeUS:   f.TotalTimeUS,
		TotalEnergyUJ: f.TotalEnergyUJ,
		Params: sim.Params{
			NCache:       f.Params.NCache,
			NOverlap:     f.Params.NOverlap,
			NDependent:   f.Params.NDependent,
			TInvariantUS: f.Params.TInvariantUS,
		},
	}, nil
}

// Fingerprint returns the content digest of the profile's measurement data,
// used to key downstream solve artifacts on exactly the data they consumed.
func Fingerprint(pr *Profile) (string, error) {
	data, err := Encode(pr)
	if err != nil {
		return "", err
	}
	return pipeline.Fingerprint(data), nil
}
