package profile

import (
	"bytes"
	"reflect"
	"testing"

	"ctdvs/internal/ir"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

func TestCodecRoundTrip(t *testing.T) {
	pr := collect(t)
	data, err := Encode(pr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data, pr.Program, pr.Input, pr.Modes)
	if err != nil {
		t.Fatal(err)
	}
	// Identity fields are rebuilt, measurement data must survive exactly.
	if got.Program != pr.Program || got.Graph.NumBlocks != pr.Graph.NumBlocks {
		t.Fatal("identity fields wrong after decode")
	}
	if !reflect.DeepEqual(got.TimeUS, pr.TimeUS) || !reflect.DeepEqual(got.EnergyUJ, pr.EnergyUJ) ||
		!reflect.DeepEqual(got.Invocations, pr.Invocations) ||
		!reflect.DeepEqual(got.EdgeCounts, pr.EdgeCounts) ||
		!reflect.DeepEqual(got.PathCounts, pr.PathCounts) ||
		!reflect.DeepEqual(got.TotalTimeUS, pr.TotalTimeUS) ||
		!reflect.DeepEqual(got.TotalEnergyUJ, pr.TotalEnergyUJ) ||
		got.Params != pr.Params {
		t.Fatal("measurement data changed across encode/decode")
	}
	// Determinism: encode(decode(encode(x))) == encode(x), the property
	// fingerprints rely on.
	data2, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("re-encoding a decoded profile changed the bytes")
	}
}

func TestFingerprintStable(t *testing.T) {
	pr := collect(t)
	fp1, err := Fingerprint(pr)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := Fingerprint(pr)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 || len(fp1) != 64 {
		t.Fatalf("fingerprint unstable or malformed: %q vs %q", fp1, fp2)
	}
	// A fresh collection of the same deterministic workload fingerprints
	// identically — the cross-process stability the cache depends on.
	m := sim.MustNew(sim.DefaultConfig())
	pr2, err := Collect(m, branchyLoop(500), ir.Input{Name: "in", Seed: 11}, volt.XScale3())
	if err != nil {
		t.Fatal(err)
	}
	fp3, err := Fingerprint(pr2)
	if err != nil {
		t.Fatal(err)
	}
	if fp3 != fp1 {
		t.Fatal("re-collected profile fingerprints differently")
	}
}

func TestDecodeRejectsMismatch(t *testing.T) {
	pr := collect(t)
	data, err := Encode(pr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data, pr.Program, ir.Input{Name: "other", Seed: 1}, pr.Modes); err == nil {
		t.Error("decode accepted wrong input")
	}
	seven, err := volt.Levels(7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data, pr.Program, pr.Input, seven); err == nil {
		t.Error("decode accepted wrong mode set")
	}
	other := branchyLoop(100)
	other.Name = pr.Program.Name // same name, different structure is impossible per spec, but guard anyway
	if _, err := Decode(data, other, pr.Input, pr.Modes); err != nil {
		// Same structure (trip count does not change the graph), so this
		// decodes; the graph-dimension check is what matters.
		t.Logf("decode against structurally-equal program: %v", err)
	}
	if _, err := Decode([]byte("garbage"), pr.Program, pr.Input, pr.Modes); err == nil {
		t.Error("decode accepted garbage")
	}
}
