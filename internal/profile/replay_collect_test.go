package profile

import (
	"reflect"
	"testing"

	"ctdvs/internal/ir"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

// memoryHeavy: a loop whose working set overflows L1, so the recorded stream
// carries all three memory outcomes and multi-channel overlap matters.
func memoryHeavy(trips int) *ir.Program {
	b := ir.NewBuilder("memheavy")
	big := b.RandomStream(256 << 10)
	seq := b.SequentialStream(32 << 10)
	head := b.Block("head")
	body := b.Block("body")
	exit := b.Block("exit")
	head.Compute(3).Load(big)
	head.Jump(body)
	body.Load(big).Load(seq).DependentCompute(8).Store(seq)
	b.LoopBranch(body, head, exit, trips)
	exit.Compute(1)
	exit.Exit()
	return b.MustFinish()
}

// TestCollectMatchesPerMode is the tentpole's correctness property at the
// profile layer: the record-once/replay-per-mode Collect must produce a
// Profile structurally identical — bit-for-bit in every float — to the
// per-mode simulation it replaced, across programs, machine configurations
// and mode-set sizes.
func TestCollectMatchesPerMode(t *testing.T) {
	multi := sim.DefaultConfig()
	multi.MemChannels = 3
	leaky := sim.DefaultConfig()
	leaky.StaticPowerMW = 1.5
	cases := []struct {
		name string
		p    *ir.Program
		mc   sim.Config
	}{
		{"branchy-default", branchyLoop(500), sim.DefaultConfig()},
		{"memheavy-multichannel", memoryHeavy(300), multi},
		{"branchy-leaky", branchyLoop(200), leaky},
	}
	for _, tc := range cases {
		for _, levels := range []int{3, 7, 13} {
			ms, err := volt.Levels(levels)
			if err != nil {
				t.Fatal(err)
			}
			in := ir.Input{Name: "in", Seed: 17}
			want, err := CollectPerMode(sim.MustNew(tc.mc), tc.p, in, ms)
			if err != nil {
				t.Fatalf("%s/%d: per-mode: %v", tc.name, levels, err)
			}
			got, err := Collect(sim.MustNew(tc.mc), tc.p, in, ms)
			if err != nil {
				t.Fatalf("%s/%d: replayed: %v", tc.name, levels, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s/%d: replayed profile differs from per-mode profile", tc.name, levels)
			}
		}
	}
}

// TestCollectFallsBackOutsideEnvelope: when recording is disabled or the
// stream exceeds the budget, Collect silently degrades to per-mode simulation
// and still returns the identical profile.
func TestCollectFallsBackOutsideEnvelope(t *testing.T) {
	p := branchyLoop(300)
	in := ir.Input{Name: "in", Seed: 29}
	ms := volt.XScale3()
	want, err := CollectPerMode(sim.MustNew(sim.DefaultConfig()), p, in, ms)
	if err != nil {
		t.Fatal(err)
	}
	for name, budget := range map[string]int{"disabled": -1, "tiny": 2} {
		mc := sim.DefaultConfig()
		mc.RecordBudgetEvents = budget
		got, err := Collect(sim.MustNew(mc), p, in, ms)
		if err != nil {
			t.Fatalf("%s budget: %v", name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s budget: fallback profile differs from per-mode profile", name)
		}
	}
}

// TestFromRecording: replaying a recording (the exp cache path) matches a
// fresh Collect, and recordings of the wrong workload are rejected.
func TestFromRecording(t *testing.T) {
	p := branchyLoop(400)
	in := ir.Input{Name: "in", Seed: 31}
	ms7, err := volt.Levels(7)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.MustNew(sim.DefaultConfig())
	rec, _, err := m.Record(p, in, volt.XScale3().Max())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Collect(sim.MustNew(sim.DefaultConfig()), p, in, ms7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromRecording(rec, p, in, ms7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("profile from recording differs from Collect")
	}
	if _, err := FromRecording(rec, p, ir.Input{Name: "other", Seed: 31}, ms7); err == nil {
		t.Error("recording of a different input accepted")
	}
}
