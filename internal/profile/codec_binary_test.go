package profile

import (
	"reflect"
	"testing"

	"ctdvs/internal/ir"
	"ctdvs/internal/pipeline"
	"ctdvs/internal/volt"
)

// TestBinaryParity is the codec-parity property the artifact store relies on:
// DecodeBinary(EncodeBinary(pr)) must equal Decode(Encode(pr)) — a warm sweep
// reading a mix of legacy JSON and fresh binary profiles computes identical
// schedules either way.
func TestBinaryParity(t *testing.T) {
	pr := collect(t)
	p := branchyLoop(500)
	in := ir.Input{Name: "in", Seed: 11}
	modes := volt.XScale3()

	jdata, err := Encode(pr)
	if err != nil {
		t.Fatal(err)
	}
	bdata, err := EncodeBinary(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !pipeline.IsBinaryArtifact(bdata) {
		t.Fatal("binary encoding does not carry the artifact magic")
	}
	if len(bdata) >= len(jdata) {
		t.Errorf("binary profile (%d bytes) not smaller than JSON (%d bytes)", len(bdata), len(jdata))
	}

	fromJSON, err := Decode(jdata, p, in, modes)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := DecodeBinary(bdata, p, in, modes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromJSON, fromBin) {
		t.Error("binary and JSON decode disagree")
	}

	// Determinism: re-encoding the binary decode reproduces the bytes, and
	// the fingerprint (which deliberately stays on the JSON encoding, so
	// cache keys never depend on the stored format) is unchanged.
	bdata2, err := EncodeBinary(fromBin)
	if err != nil {
		t.Fatal(err)
	}
	if string(bdata) != string(bdata2) {
		t.Error("binary encode(decode(encode)) is not byte-identical")
	}
	fp1, err := Fingerprint(pr)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := Fingerprint(fromBin)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Error("binary round trip changed the profile fingerprint")
	}
}

// TestDecodeBinaryMappedParity is the zero-copy contract for profiles: the
// borrow-mode decoder must produce a profile identical to the copying
// decoder's, from aligned and from misaligned buffers alike, and reject the
// same truncations.
func TestDecodeBinaryMappedParity(t *testing.T) {
	pr := collect(t)
	p := branchyLoop(500)
	in := ir.Input{Name: "in", Seed: 11}
	modes := volt.XScale3()
	data, err := EncodeBinary(pr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DecodeBinary(data, p, in, modes)
	if err != nil {
		t.Fatal(err)
	}
	for skew := 0; skew < 8; skew++ {
		buf := make([]byte, len(data)+skew)
		copy(buf[skew:], data)
		got, err := DecodeBinaryMapped(buf[skew:], p, in, modes)
		if err != nil {
			t.Fatalf("skew %d: %v", skew, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("skew %d: mapped decode differs from copying decode", skew)
		}
	}
	for n := 0; n < len(data); n += 7 {
		_, cerr := DecodeBinary(data[:n], p, in, modes)
		_, merr := DecodeBinaryMapped(append([]byte(nil), data[:n]...), p, in, modes)
		if (cerr == nil) != (merr == nil) {
			t.Fatalf("truncation to %d: copying err=%v, mapped err=%v", n, cerr, merr)
		}
	}
}

// TestDecodeBinaryRejects holds the binary profile decoder to clean rejection
// of mismatched identities and truncation at every byte boundary.
func TestDecodeBinaryRejects(t *testing.T) {
	pr := collect(t)
	p := branchyLoop(500)
	in := ir.Input{Name: "in", Seed: 11}
	modes := volt.XScale3()
	data, err := EncodeBinary(pr)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := DecodeBinary(data, p, ir.Input{Name: "other", Seed: 11}, modes); err == nil {
		t.Error("input mismatch accepted")
	}
	if _, err := DecodeBinary(data, p, in, volt.AMDK6Mobile()); err == nil {
		t.Error("mode-set mismatch accepted")
	}
	for n := 0; n < len(data); n += 7 {
		if _, err := DecodeBinary(data[:n], p, in, modes); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(data))
		}
	}
	if _, err := DecodeBinary(append(append([]byte{}, data...), 0), p, in, modes); err == nil {
		t.Error("trailing byte accepted")
	}
}
