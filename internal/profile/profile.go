// Package profile assembles the profiling data that drives both the analytic
// model and the MILP optimizer (paper Section 5.1):
//
//   - per-block, per-mode execution time T_jm and energy E_jm (averaged per
//     invocation, as the paper's formulation assumes);
//   - edge traversal counts G_ij and local-path counts D_hij (gathered once:
//     control flow is frequency-independent, paper assumption 1);
//   - whole-run time and energy per mode (Table 4's columns, and the
//     single-frequency baselines energy savings are normalized against);
//   - the aggregate analytic-model parameters (Table 7), measured at the
//     fastest mode.
//
// Collect obtains the per-mode numbers from a single simulation: one
// instrumented run at the reference (fastest) mode records the mode-invariant
// event stream (sim.Recording), which is then replayed — pure arithmetic, no
// re-simulation — at every other mode, bit-identical to what per-mode runs
// would measure. Programs or configurations outside the recorder's invariance
// envelope fall back to CollectPerMode automatically, so answers never
// change, only the amount of work.
package profile

import (
	"errors"
	"fmt"

	"ctdvs/internal/cfg"
	"ctdvs/internal/ir"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

// Profile is the complete profiling record of one program on one input
// across all modes of a mode set.
type Profile struct {
	Program *ir.Program
	Input   ir.Input
	Graph   *cfg.Graph
	Modes   *volt.ModeSet

	// TimeUS[j][m] / EnergyUJ[j][m]: per-invocation time/energy of block j
	// at mode m. Zero for blocks that never executed.
	TimeUS   [][]float64
	EnergyUJ [][]float64
	// Invocations[j]: times block j executed.
	Invocations []int64

	// EdgeCounts[e]: traversals of Graph.Edges[e] (G_ij; entry edge = 1).
	EdgeCounts []int64
	// PathCounts[p]: traversals of Graph.Paths[p] (D_hij).
	PathCounts []int64

	// TotalTimeUS[m] / TotalEnergyUJ[m]: whole-run figures at fixed mode m.
	TotalTimeUS   []float64
	TotalEnergyUJ []float64

	// Params are the analytic-model aggregates measured at the fastest mode.
	Params sim.Params
}

// Collect profiles the program at every mode of the set: one recorded
// simulation at the reference mode plus a batched replay for the rest. When
// the run is outside the recording envelope (sim.ErrUnrecordable) it falls
// back to CollectPerMode; either way the result is bit-identical to per-mode
// simulation.
func Collect(m *sim.Machine, p *ir.Program, in ir.Input, modes *volt.ModeSet) (*Profile, error) {
	g, err := graphOf(p)
	if err != nil {
		return nil, err
	}
	ref, err := referenceModeIndex(modes)
	if err != nil {
		return nil, err
	}
	rec, refRes, err := m.Record(p, in, modes.Mode(ref))
	if err != nil {
		if errors.Is(err, sim.ErrUnrecordable) {
			return CollectPerMode(m, p, in, modes)
		}
		return nil, err
	}
	others := make([]volt.Mode, 0, modes.Len()-1)
	for mi := 0; mi < modes.Len(); mi++ {
		if mi != ref {
			others = append(others, modes.Mode(mi))
		}
	}
	replayed, err := rec.ReplayAll(others)
	if err != nil {
		return nil, err
	}
	results := make([]*sim.Result, 0, modes.Len())
	results = append(results, replayed[:ref]...)
	results = append(results, refRes)
	results = append(results, replayed[ref:]...)
	return assemble(g, p, in, modes, results)
}

// CollectPerMode profiles by running the full simulation once per mode — the
// original implementation. It remains as the fallback for runs outside the
// recording envelope, the baseline the replay path is benchmarked and
// property-tested against, and an escape hatch (exp.Config.DisableRecording).
func CollectPerMode(m *sim.Machine, p *ir.Program, in ir.Input, modes *volt.ModeSet) (*Profile, error) {
	g, err := graphOf(p)
	if err != nil {
		return nil, err
	}
	results := make([]*sim.Result, modes.Len())
	for mi := range results {
		if results[mi], err = m.Run(p, in, modes.Mode(mi)); err != nil {
			return nil, err
		}
	}
	return assemble(g, p, in, modes, results)
}

// FromRecording assembles a profile by replaying a recorded event stream at
// every mode of the set; no simulator is needed. The recording must be of
// this program and input (see sim.Recording.Bind and the schedfile codec).
func FromRecording(rec *sim.Recording, p *ir.Program, in ir.Input, modes *volt.ModeSet) (*Profile, error) {
	g, err := graphOf(p)
	if err != nil {
		return nil, err
	}
	if rec.Program != p.Name || rec.Input != in.Name {
		return nil, fmt.Errorf("profile: recording is of %s/%s, want %s/%s", rec.Program, rec.Input, p.Name, in.Name)
	}
	if _, err := referenceModeIndex(modes); err != nil {
		return nil, err
	}
	results, err := rec.ReplayAll(modes.Modes())
	if err != nil {
		return nil, err
	}
	return assemble(g, p, in, modes, results)
}

func graphOf(p *ir.Program) (*cfg.Graph, error) {
	g, err := cfg.FromProgram(p)
	if err != nil {
		return nil, err
	}
	if err := g.CheckConnected(); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	return g, nil
}

// referenceModeIndex returns the index of the fastest mode — where the
// paper's Table-7 aggregates are measured and where Collect records — after
// verifying the set is in ascending frequency order. volt.NewModeSet sorts
// by construction, but the aggregates silently coming from the wrong run if
// that invariant ever changed is exactly the failure this guards against.
func referenceModeIndex(modes *volt.ModeSet) (int, error) {
	nm := modes.Len()
	for i := 1; i < nm; i++ {
		if modes.Mode(i).F <= modes.Mode(i-1).F {
			return 0, fmt.Errorf("profile: mode set out of ascending frequency order at index %d (%v after %v)",
				i, modes.Mode(i), modes.Mode(i-1))
		}
	}
	return nm - 1, nil
}

// assemble builds the Profile from one fixed-mode Result per mode (simulated
// or replayed — the two are bit-identical). Control-flow facts come from the
// dense, graph-numbered counts of the mode-0 result; the other results
// cross-check invocations (paper assumption 1); the analytic parameters come
// from the reference (fastest) mode.
func assemble(g *cfg.Graph, p *ir.Program, in ir.Input, modes *volt.ModeSet, results []*sim.Result) (*Profile, error) {
	nb := g.NumBlocks
	nm := modes.Len()
	ref, err := referenceModeIndex(modes)
	if err != nil {
		return nil, err
	}
	first := results[0]
	if len(first.EdgeCountsByID) != g.NumEdges() || len(first.PathCountsByID) != len(g.Paths) {
		return nil, fmt.Errorf("profile: run produced %d edge and %d path counts, graph has %d and %d",
			len(first.EdgeCountsByID), len(first.PathCountsByID), g.NumEdges(), len(g.Paths))
	}
	pr := &Profile{
		Program:       p,
		Input:         in,
		Graph:         g,
		Modes:         modes,
		TimeUS:        make([][]float64, nb),
		EnergyUJ:      make([][]float64, nb),
		Invocations:   make([]int64, nb),
		EdgeCounts:    append([]int64(nil), first.EdgeCountsByID...),
		PathCounts:    append([]int64(nil), first.PathCountsByID...),
		TotalTimeUS:   make([]float64, nm),
		TotalEnergyUJ: make([]float64, nm),
		Params:        results[ref].Params,
	}
	if pr.PathCounts == nil {
		pr.PathCounts = []int64{}
	}
	for j := 0; j < nb; j++ {
		pr.TimeUS[j] = make([]float64, nm)
		pr.EnergyUJ[j] = make([]float64, nm)
		pr.Invocations[j] = first.Blocks[j].Invocations
	}
	for mi, res := range results {
		pr.TotalTimeUS[mi] = res.TimeUS
		pr.TotalEnergyUJ[mi] = res.EnergyUJ
		for j := 0; j < nb; j++ {
			bs := res.Blocks[j]
			if bs.Invocations != pr.Invocations[j] {
				return nil, fmt.Errorf("profile: block %d executed %d times at mode %d but %d at mode 0",
					j, bs.Invocations, mi, pr.Invocations[j])
			}
			if bs.Invocations == 0 {
				continue
			}
			pr.TimeUS[j][mi] = bs.TimeUS / float64(bs.Invocations)
			pr.EnergyUJ[j][mi] = bs.EnergyUJ / float64(bs.Invocations)
		}
	}
	return pr, nil
}

// BestSingleMode returns the index of the slowest mode whose fixed-mode run
// meets the deadline, and that run's energy; this is the paper's
// normalization baseline ("best single frequency that meets the deadline").
// It returns ok=false when even the fastest mode misses the deadline.
func (pr *Profile) BestSingleMode(deadlineUS float64) (mode int, energyUJ float64, ok bool) {
	idx := pr.Modes.SlowestMeeting(deadlineUS, func(i int) float64 { return pr.TotalTimeUS[i] })
	if idx < 0 {
		return 0, 0, false
	}
	return idx, pr.TotalEnergyUJ[idx], true
}

// EdgeEnergy returns the total energy attributable to edge e at mode m:
// G_ij · E_{j m} where j is the destination block. This drives the paper's
// 2 %-tail edge filtering (Section 5.2).
func (pr *Profile) EdgeEnergy(e int, m int) float64 {
	dst := pr.Graph.Edges[e].To
	return float64(pr.EdgeCounts[e]) * pr.EnergyUJ[dst][m]
}
