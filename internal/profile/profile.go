// Package profile runs a program once per DVS mode on the simulator and
// assembles the profiling data that drives both the analytic model and the
// MILP optimizer (paper Section 5.1):
//
//   - per-block, per-mode execution time T_jm and energy E_jm (averaged per
//     invocation, as the paper's formulation assumes);
//   - edge traversal counts G_ij and local-path counts D_hij (gathered once:
//     control flow is frequency-independent, paper assumption 1);
//   - whole-run time and energy per mode (Table 4's columns, and the
//     single-frequency baselines energy savings are normalized against);
//   - the aggregate analytic-model parameters (Table 7), measured at the
//     fastest mode.
package profile

import (
	"fmt"

	"ctdvs/internal/cfg"
	"ctdvs/internal/ir"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

// Profile is the complete profiling record of one program on one input
// across all modes of a mode set.
type Profile struct {
	Program *ir.Program
	Input   ir.Input
	Graph   *cfg.Graph
	Modes   *volt.ModeSet

	// TimeUS[j][m] / EnergyUJ[j][m]: per-invocation time/energy of block j
	// at mode m. Zero for blocks that never executed.
	TimeUS   [][]float64
	EnergyUJ [][]float64
	// Invocations[j]: times block j executed.
	Invocations []int64

	// EdgeCounts[e]: traversals of Graph.Edges[e] (G_ij; entry edge = 1).
	EdgeCounts []int64
	// PathCounts[p]: traversals of Graph.Paths[p] (D_hij).
	PathCounts []int64

	// TotalTimeUS[m] / TotalEnergyUJ[m]: whole-run figures at fixed mode m.
	TotalTimeUS   []float64
	TotalEnergyUJ []float64

	// Params are the analytic-model aggregates measured at the fastest mode.
	Params sim.Params
}

// Collect profiles the program at every mode of the set.
func Collect(m *sim.Machine, p *ir.Program, in ir.Input, modes *volt.ModeSet) (*Profile, error) {
	g, err := cfg.FromProgram(p)
	if err != nil {
		return nil, err
	}
	if err := g.CheckConnected(); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	nb := g.NumBlocks
	nm := modes.Len()
	pr := &Profile{
		Program:       p,
		Input:         in,
		Graph:         g,
		Modes:         modes,
		TimeUS:        make([][]float64, nb),
		EnergyUJ:      make([][]float64, nb),
		Invocations:   make([]int64, nb),
		EdgeCounts:    make([]int64, g.NumEdges()),
		PathCounts:    make([]int64, len(g.Paths)),
		TotalTimeUS:   make([]float64, nm),
		TotalEnergyUJ: make([]float64, nm),
	}
	for j := 0; j < nb; j++ {
		pr.TimeUS[j] = make([]float64, nm)
		pr.EnergyUJ[j] = make([]float64, nm)
	}

	for mi := 0; mi < nm; mi++ {
		res, err := m.Run(p, in, modes.Mode(mi))
		if err != nil {
			return nil, err
		}
		pr.TotalTimeUS[mi] = res.TimeUS
		pr.TotalEnergyUJ[mi] = res.EnergyUJ
		for j := 0; j < nb; j++ {
			bs := res.Blocks[j]
			if bs.Invocations == 0 {
				continue
			}
			pr.TimeUS[j][mi] = bs.TimeUS / float64(bs.Invocations)
			pr.EnergyUJ[j][mi] = bs.EnergyUJ / float64(bs.Invocations)
		}
		if mi == 0 {
			// First run fixes the control-flow facts: counts and
			// invocations.
			for j := 0; j < nb; j++ {
				pr.Invocations[j] = res.Blocks[j].Invocations
			}
			for e, c := range res.EdgeCounts {
				id := g.EdgeID(e)
				if id < 0 {
					return nil, fmt.Errorf("profile: run produced unknown edge %v", e)
				}
				pr.EdgeCounts[id] = c
			}
			pathIdx := pathIndexMap(g)
			for pt, c := range res.PathCounts {
				idx, ok := pathIdx[pt]
				if !ok {
					return nil, fmt.Errorf("profile: run produced unknown path %v", pt)
				}
				pr.PathCounts[idx] = c
			}
		} else {
			// Control flow must be identical at every mode (paper
			// assumption 1).
			for j := 0; j < nb; j++ {
				if res.Blocks[j].Invocations != pr.Invocations[j] {
					return nil, fmt.Errorf("profile: block %d executed %d times at mode %d but %d at mode 0",
						j, res.Blocks[j].Invocations, mi, pr.Invocations[j])
				}
			}
		}
		if mi == nm-1 {
			// Analytic parameters from the fastest mode (the reference the
			// paper profiles at).
			pr.Params = res.Params
		}
	}
	return pr, nil
}

// pathIndexMap maps each path of the graph's path list to its dense index,
// replacing a per-lookup linear scan that was quadratic in the number of
// local paths across a run's PathCounts.
func pathIndexMap(g *cfg.Graph) map[cfg.Path]int {
	idx := make(map[cfg.Path]int, len(g.Paths))
	for i, q := range g.Paths {
		idx[q] = i
	}
	return idx
}

// BestSingleMode returns the index of the slowest mode whose fixed-mode run
// meets the deadline, and that run's energy; this is the paper's
// normalization baseline ("best single frequency that meets the deadline").
// It returns ok=false when even the fastest mode misses the deadline.
func (pr *Profile) BestSingleMode(deadlineUS float64) (mode int, energyUJ float64, ok bool) {
	idx := pr.Modes.SlowestMeeting(deadlineUS, func(i int) float64 { return pr.TotalTimeUS[i] })
	if idx < 0 {
		return 0, 0, false
	}
	return idx, pr.TotalEnergyUJ[idx], true
}

// EdgeEnergy returns the total energy attributable to edge e at mode m:
// G_ij · E_{j m} where j is the destination block. This drives the paper's
// 2 %-tail edge filtering (Section 5.2).
func (pr *Profile) EdgeEnergy(e int, m int) float64 {
	dst := pr.Graph.Edges[e].To
	return float64(pr.EdgeCounts[e]) * pr.EnergyUJ[dst][m]
}
