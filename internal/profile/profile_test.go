package profile

import (
	"math"
	"testing"

	"ctdvs/internal/cfg"
	"ctdvs/internal/ir"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

// branchyLoop: a loop whose body conditionally executes a heavy block.
func branchyLoop(trips int) *ir.Program {
	b := ir.NewBuilder("branchy")
	s := b.SequentialStream(1 << 16)
	head := b.Block("head")
	heavy := b.Block("heavy")
	light := b.Block("light")
	latch := b.Block("latch")
	exit := b.Block("exit")
	head.Compute(5).Load(s)
	b.ProbBranch(head, heavy, light, 0.3)
	heavy.Compute(200).DependentCompute(20)
	heavy.Jump(latch)
	light.Compute(10)
	light.Jump(latch)
	latch.Compute(2)
	b.LoopBranch(latch, head, exit, trips)
	exit.Compute(1)
	exit.Exit()
	return b.MustFinish()
}

func collect(t testing.TB) *Profile {
	t.Helper()
	m := sim.MustNew(sim.DefaultConfig())
	pr, err := Collect(m, branchyLoop(500), ir.Input{Name: "in", Seed: 11}, volt.XScale3())
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestCollectShapes(t *testing.T) {
	pr := collect(t)
	if len(pr.TimeUS) != 5 || len(pr.TimeUS[0]) != 3 {
		t.Fatalf("TimeUS shape %dx%d", len(pr.TimeUS), len(pr.TimeUS[0]))
	}
	if len(pr.EdgeCounts) != pr.Graph.NumEdges() {
		t.Errorf("edge counts size %d != %d", len(pr.EdgeCounts), pr.Graph.NumEdges())
	}
	if len(pr.PathCounts) != len(pr.Graph.Paths) {
		t.Errorf("path counts size %d != %d", len(pr.PathCounts), len(pr.Graph.Paths))
	}
}

func TestPerModeMonotonicity(t *testing.T) {
	pr := collect(t)
	// Whole-run times decrease with mode index (faster modes), energies
	// increase.
	for m := 1; m < pr.Modes.Len(); m++ {
		if pr.TotalTimeUS[m] >= pr.TotalTimeUS[m-1] {
			t.Errorf("time not decreasing: mode %d %v >= mode %d %v",
				m, pr.TotalTimeUS[m], m-1, pr.TotalTimeUS[m-1])
		}
		if pr.TotalEnergyUJ[m] <= pr.TotalEnergyUJ[m-1] {
			t.Errorf("energy not increasing: mode %d %v <= mode %d %v",
				m, pr.TotalEnergyUJ[m], m-1, pr.TotalEnergyUJ[m-1])
		}
	}
}

func TestBlockAveragesConsistent(t *testing.T) {
	pr := collect(t)
	// Per-invocation times × invocations must sum (approximately) to the
	// whole-run time at each mode.
	for m := 0; m < pr.Modes.Len(); m++ {
		sum := 0.0
		for j := range pr.TimeUS {
			sum += pr.TimeUS[j][m] * float64(pr.Invocations[j])
		}
		if math.Abs(sum-pr.TotalTimeUS[m]) > 1e-6*pr.TotalTimeUS[m] {
			t.Errorf("mode %d: block sum %v != total %v", m, sum, pr.TotalTimeUS[m])
		}
	}
}

func TestEdgeCountsConsistent(t *testing.T) {
	pr := collect(t)
	g := pr.Graph
	// Entry edge traversed once.
	if c := pr.EdgeCounts[g.EdgeID(cfg.Edge{From: cfg.Entry, To: 0})]; c != 1 {
		t.Errorf("entry edge count = %d", c)
	}
	// Flow conservation: for every non-exit block, in-count == out-count;
	// and in-count == invocations.
	for j := 0; j < g.NumBlocks; j++ {
		in := int64(0)
		for _, h := range g.Preds(j) {
			in += pr.EdgeCounts[g.EdgeID(cfg.Edge{From: h, To: j})]
		}
		if in != pr.Invocations[j] {
			t.Errorf("block %d: in-count %d != invocations %d", j, in, pr.Invocations[j])
		}
		out := int64(0)
		for _, s := range g.Succs(j) {
			out += pr.EdgeCounts[g.EdgeID(cfg.Edge{From: j, To: s})]
		}
		if len(g.Succs(j)) > 0 && out != in {
			t.Errorf("block %d: out-count %d != in-count %d", j, out, in)
		}
	}
	// Path counts refine edge counts: Σ_h D(h,i,j) = G(i,j).
	for ei, e := range g.Edges {
		if e.From == cfg.Entry {
			continue
		}
		sum := int64(0)
		for pi, p := range g.Paths {
			if p.Mid == e.From && p.Out == e.To {
				sum += pr.PathCounts[pi]
			}
		}
		if sum != pr.EdgeCounts[ei] {
			t.Errorf("edge %v: path sum %d != count %d", e, sum, pr.EdgeCounts[ei])
		}
	}
}

func TestBestSingleMode(t *testing.T) {
	pr := collect(t)
	// A deadline just above the slowest run selects mode 0.
	m0, e0, ok := pr.BestSingleMode(pr.TotalTimeUS[0] * 1.01)
	if !ok || m0 != 0 || e0 != pr.TotalEnergyUJ[0] {
		t.Errorf("lax deadline: mode %d ok=%v", m0, ok)
	}
	// A deadline between modes 1 and 0 selects mode 1.
	mid := (pr.TotalTimeUS[0] + pr.TotalTimeUS[1]) / 2
	m1, _, ok := pr.BestSingleMode(mid)
	if !ok || m1 != 1 {
		t.Errorf("mid deadline: mode %d ok=%v", m1, ok)
	}
	// An impossible deadline fails.
	if _, _, ok := pr.BestSingleMode(pr.TotalTimeUS[2] * 0.5); ok {
		t.Error("impossible deadline accepted")
	}
}

func TestEdgeEnergy(t *testing.T) {
	pr := collect(t)
	g := pr.Graph
	for ei := range g.Edges {
		got := pr.EdgeEnergy(ei, 1)
		dst := g.Edges[ei].To
		want := float64(pr.EdgeCounts[ei]) * pr.EnergyUJ[dst][1]
		if got != want {
			t.Errorf("edge %d energy = %v, want %v", ei, got, want)
		}
	}
}

func TestCollectRejectsDisconnected(t *testing.T) {
	b := ir.NewBuilder("dead")
	x := b.Block("x")
	dead := b.Block("dead")
	x.Compute(1)
	x.Exit()
	dead.Compute(1)
	dead.Exit()
	m := sim.MustNew(sim.DefaultConfig())
	if _, err := Collect(m, b.MustFinish(), ir.Input{Seed: 1}, volt.XScale3()); err == nil {
		t.Error("disconnected program accepted")
	}
}

func TestParamsPopulated(t *testing.T) {
	pr := collect(t)
	if pr.Params.NOverlap == 0 || pr.Params.NDependent == 0 || pr.Params.NCache == 0 {
		t.Errorf("params not populated: %+v", pr.Params)
	}
}
