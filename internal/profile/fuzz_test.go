package profile

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the profile decoder and holds it to
// the same contract as the other artifact codecs: errors for garbage, no
// panics, and deterministic re-encoding of anything accepted.
func FuzzDecode(f *testing.F) {
	pr := collect(f)
	valid, err := Encode(pr)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(valid))
	f.Add(strings.Replace(string(valid), `"version":`, `"version":9`, 1))
	f.Add(strings.Replace(string(valid), `"program":"branchy"`, `"program":"other"`, 1))
	f.Add(`{}`)
	f.Add(`{"version":1}`)
	f.Add(`not json`)
	f.Add(`[]`)

	f.Fuzz(func(t *testing.T, data string) {
		got, err := Decode([]byte(data), pr.Program, pr.Input, pr.Modes)
		if err != nil {
			return
		}
		enc, err := Encode(got)
		if err != nil {
			t.Fatalf("accepted profile failed to encode: %v", err)
		}
		got2, err := Decode(enc, pr.Program, pr.Input, pr.Modes)
		if err != nil {
			t.Fatalf("re-decode of accepted profile failed: %v", err)
		}
		if !reflect.DeepEqual(got.TimeUS, got2.TimeUS) ||
			!reflect.DeepEqual(got.EnergyUJ, got2.EnergyUJ) ||
			!reflect.DeepEqual(got.EdgeCounts, got2.EdgeCounts) {
			t.Fatal("encode/decode round trip changed the profile")
		}
	})
}
