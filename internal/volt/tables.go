package volt

// Mode tables for the software-controlled DVS processors the paper names as
// deployment targets (Section 1: "Intel XScale, StrongArm SA-2 and AMD
// mobile K6 Plus"). XScale3 (volt.go) is the paper's evaluation set; the
// tables below let users study how the optimization behaves on other
// contemporary parts' operating points.

// AMDK6Mobile returns an AMD Mobile K6-2+ (PowerNow!)-style table: seven
// operating points from 200 MHz at 1.4 V to 550 MHz at 2.0 V.
func AMDK6Mobile() *ModeSet {
	return MustModeSet([]Mode{
		{V: 1.4, F: 200},
		{V: 1.5, F: 300},
		{V: 1.6, F: 350},
		{V: 1.7, F: 400},
		{V: 1.8, F: 450},
		{V: 1.9, F: 500},
		{V: 2.0, F: 550},
	})
}

// CrusoeTM5400 returns a Transmeta Crusoe TM5400 (LongRun)-style table: six
// operating points from 200 MHz at 1.10 V to 700 MHz at 1.65 V.
func CrusoeTM5400() *ModeSet {
	return MustModeSet([]Mode{
		{V: 1.10, F: 200},
		{V: 1.23, F: 300},
		{V: 1.35, F: 400},
		{V: 1.48, F: 500},
		{V: 1.60, F: 600},
		{V: 1.65, F: 700},
	})
}

// StrongARM1100 returns a StrongARM SA-1100-style two-point table (the
// simplest DVS-capable part: a core-clock divider with a voltage step).
func StrongARM1100() *ModeSet {
	return MustModeSet([]Mode{
		{V: 1.23, F: 133},
		{V: 1.50, F: 206},
	})
}
