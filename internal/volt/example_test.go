package volt_test

import (
	"fmt"

	"ctdvs/internal/volt"
)

func ExampleScaling_Freq() {
	sc := volt.DefaultScaling()
	fmt.Printf("f(1.65V) = %.0f MHz\n", sc.Freq(1.65))
	fmt.Printf("f(1.30V) = %.0f MHz\n", sc.Freq(1.30))
	// Output:
	// f(1.65V) = 800 MHz
	// f(1.30V) = 605 MHz
}

func ExampleRegulator() {
	reg := volt.DefaultRegulator()
	// The paper's calibration point: a 600 MHz/1.3 V → 200 MHz/0.7 V switch.
	fmt.Printf("ST = %.0f µs, SE = %.1f µJ\n",
		reg.TransitionTime(1.3, 0.7), reg.TransitionEnergy(1.3, 0.7))
	// Output:
	// ST = 12 µs, SE = 1.2 µJ
}

func ExampleModeSet_Neighbors() {
	ms := volt.XScale3()
	lo, hi := ms.Neighbors(450)
	fmt.Printf("450 MHz sits between %v and %v\n", ms.Mode(lo), ms.Mode(hi))
	// Output:
	// 450 MHz sits between 200MHz@0.70V and 600MHz@1.30V
}
