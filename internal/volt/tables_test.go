package volt

import "testing"

func TestProcessorTables(t *testing.T) {
	cases := []struct {
		name   string
		ms     *ModeSet
		levels int
		minF   float64
		maxF   float64
	}{
		{"AMD K6 Mobile", AMDK6Mobile(), 7, 200, 550},
		{"Crusoe TM5400", CrusoeTM5400(), 6, 200, 700},
		{"StrongARM 1100", StrongARM1100(), 2, 133, 206},
	}
	for _, c := range cases {
		if c.ms.Len() != c.levels {
			t.Errorf("%s: levels = %d, want %d", c.name, c.ms.Len(), c.levels)
		}
		if c.ms.Min().F != c.minF || c.ms.Max().F != c.maxF {
			t.Errorf("%s: range [%v, %v], want [%v, %v]",
				c.name, c.ms.Min().F, c.ms.Max().F, c.minF, c.maxF)
		}
		// Invariants enforced by MustModeSet: strictly increasing voltage
		// with frequency.
		for i := 1; i < c.ms.Len(); i++ {
			if c.ms.Mode(i).V <= c.ms.Mode(i-1).V {
				t.Errorf("%s: voltage not increasing at %d", c.name, i)
			}
		}
	}
}
