package volt

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDefaultScalingCalibration(t *testing.T) {
	s := DefaultScaling()
	// The calibration anchor: 1.65 V must give exactly 800 MHz.
	if f := s.Freq(1.65); !almostEqual(f, 800, 1e-9) {
		t.Errorf("Freq(1.65) = %v, want 800", f)
	}
	// The paper's other two XScale points should be approximated within a
	// few percent (the paper rounds to 600 and 200 MHz).
	if f := s.Freq(1.30); math.Abs(f-600)/600 > 0.03 {
		t.Errorf("Freq(1.30) = %v, want within 3%% of 600", f)
	}
	if f := s.Freq(0.70); math.Abs(f-200)/200 > 0.15 {
		t.Errorf("Freq(0.70) = %v, want within 15%% of 200", f)
	}
}

func TestFreqMonotone(t *testing.T) {
	s := DefaultScaling()
	prev := 0.0
	for v := 0.5; v <= 3.0; v += 0.01 {
		f := s.Freq(v)
		if f < prev {
			t.Fatalf("Freq not monotone at v=%v: %v < %v", v, f, prev)
		}
		prev = f
	}
}

func TestFreqBelowThreshold(t *testing.T) {
	s := DefaultScaling()
	if f := s.Freq(VThreshold); f != 0 {
		t.Errorf("Freq(vt) = %v, want 0", f)
	}
	if f := s.Freq(0.1); f != 0 {
		t.Errorf("Freq(0.1) = %v, want 0", f)
	}
}

func TestVoltageInvertsFreq(t *testing.T) {
	s := DefaultScaling()
	err := quick.Check(func(raw float64) bool {
		f := math.Abs(math.Mod(raw, 2000)) // frequencies up to 2 GHz
		if f < 1 {
			f = 1
		}
		v := s.Voltage(f)
		return almostEqual(s.Freq(v), f, 1e-6*f+1e-9)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestVoltageZeroAndPanic(t *testing.T) {
	s := DefaultScaling()
	if v := s.Voltage(0); v != s.Vt {
		t.Errorf("Voltage(0) = %v, want threshold %v", v, s.Vt)
	}
	defer func() {
		if recover() == nil {
			t.Error("Voltage(-1) did not panic")
		}
	}()
	s.Voltage(-1)
}

func TestXScale3(t *testing.T) {
	ms := XScale3()
	if ms.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ms.Len())
	}
	want := []Mode{{0.70, 200}, {1.30, 600}, {1.65, 800}}
	for i, m := range ms.Modes() {
		if m != want[i] {
			t.Errorf("mode %d = %v, want %v", i, m, want[i])
		}
	}
	if ms.Max().F != 800 || ms.Min().F != 200 {
		t.Errorf("Max/Min wrong: %v %v", ms.Max(), ms.Min())
	}
}

func TestNewModeSetErrors(t *testing.T) {
	cases := []struct {
		name  string
		modes []Mode
	}{
		{"empty", nil},
		{"nonpositive freq", []Mode{{V: 1, F: 0}}},
		{"nonpositive volt", []Mode{{V: 0, F: 100}}},
		{"duplicate freq", []Mode{{V: 1, F: 100}, {V: 1.2, F: 100}}},
		{"voltage not increasing", []Mode{{V: 1.2, F: 100}, {V: 1.0, F: 200}}},
	}
	for _, c := range cases {
		if _, err := NewModeSet(c.modes); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestNewModeSetSorts(t *testing.T) {
	ms, err := NewModeSet([]Mode{{V: 1.65, F: 800}, {V: 0.7, F: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if ms.Mode(0).F != 200 || ms.Mode(1).F != 800 {
		t.Errorf("modes not sorted: %v", ms.Modes())
	}
}

func TestUniformLevels(t *testing.T) {
	for _, n := range []int{7, 13} {
		ms, err := Levels(n)
		if err != nil {
			t.Fatal(err)
		}
		if ms.Len() != n {
			t.Fatalf("Levels(%d).Len = %d", n, ms.Len())
		}
		if !almostEqual(ms.Min().V, 0.7, 1e-12) || !almostEqual(ms.Max().V, 1.65, 1e-12) {
			t.Errorf("Levels(%d) voltage range [%v, %v], want [0.7, 1.65]",
				n, ms.Min().V, ms.Max().V)
		}
		// Voltage steps must be uniform.
		step := ms.Mode(1).V - ms.Mode(0).V
		for i := 1; i < n; i++ {
			if !almostEqual(ms.Mode(i).V-ms.Mode(i-1).V, step, 1e-9) {
				t.Errorf("Levels(%d): non-uniform step at %d", n, i)
			}
		}
	}
	if _, err := Levels(5); err == nil {
		t.Error("Levels(5) should fail")
	}
}

func TestUniformErrors(t *testing.T) {
	s := DefaultScaling()
	if _, err := Uniform(1, 0.7, 1.65, s); err == nil {
		t.Error("Uniform(1,...) should fail")
	}
	if _, err := Uniform(3, 0.4, 1.65, s); err == nil {
		t.Error("Uniform below threshold should fail")
	}
	if _, err := Uniform(3, 1.65, 0.7, s); err == nil {
		t.Error("Uniform with inverted range should fail")
	}
}

func TestNeighbors(t *testing.T) {
	ms := XScale3()
	cases := []struct {
		f      float64
		lo, hi int
	}{
		{100, 0, 0},
		{200, 0, 0},
		{300, 0, 1},
		{600, 1, 1},
		{700, 1, 2},
		{800, 2, 2},
		{900, 2, 2},
	}
	for _, c := range cases {
		lo, hi := ms.Neighbors(c.f)
		if lo != c.lo || hi != c.hi {
			t.Errorf("Neighbors(%v) = (%d,%d), want (%d,%d)", c.f, lo, hi, c.lo, c.hi)
		}
	}
}

func TestNeighborsProperty(t *testing.T) {
	ms, _ := Levels(13)
	err := quick.Check(func(raw float64) bool {
		f := math.Abs(math.Mod(raw, 1200))
		lo, hi := ms.Neighbors(f)
		if lo > hi || lo < 0 || hi >= ms.Len() {
			return false
		}
		// Bracketing property, respecting clamping at the ends.
		if f >= ms.Min().F && ms.Mode(lo).F > f {
			return false
		}
		if f <= ms.Max().F && ms.Mode(hi).F < f {
			return false
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestIndex(t *testing.T) {
	ms := XScale3()
	if i := ms.Index(600); i != 1 {
		t.Errorf("Index(600) = %d, want 1", i)
	}
	if i := ms.Index(555); i != -1 {
		t.Errorf("Index(555) = %d, want -1", i)
	}
}

func TestSlowestMeeting(t *testing.T) {
	ms := XScale3()
	// Execution takes 1000/f seconds at mode i.
	timeAt := func(i int) float64 { return 100000 / ms.Mode(i).F }
	// At deadline 500 only the 800 MHz mode (125) and 600 MHz (166) meet it;
	// the slowest is 200 MHz with 500 exactly.
	if i := ms.SlowestMeeting(500, timeAt); i != 0 {
		t.Errorf("SlowestMeeting(500) = %d, want 0", i)
	}
	if i := ms.SlowestMeeting(200, timeAt); i != 1 {
		t.Errorf("SlowestMeeting(200) = %d, want 1", i)
	}
	if i := ms.SlowestMeeting(100, timeAt); i != -1 {
		t.Errorf("SlowestMeeting(100) = %d, want -1", i)
	}
}

func TestModeString(t *testing.T) {
	m := Mode{V: 1.3, F: 600}
	if got := m.String(); got != "600MHz@1.30V" {
		t.Errorf("String = %q", got)
	}
}

func TestEnergyPerCycle(t *testing.T) {
	m := Mode{V: 1.3, F: 600}
	if !almostEqual(m.EnergyPerCycle(), 1.69, 1e-12) {
		t.Errorf("EnergyPerCycle = %v", m.EnergyPerCycle())
	}
}

func TestDefaultRegulatorCalibration(t *testing.T) {
	r := DefaultRegulator()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper Section 6.2: 600 MHz/1.3 V → 200 MHz/0.7 V at c = 10 µF costs
	// 12 µs and 1.2 µJ.
	if st := r.TransitionTime(1.3, 0.7); !almostEqual(st, 12, 1e-9) {
		t.Errorf("TransitionTime(1.3,0.7) = %v µs, want 12", st)
	}
	if se := r.TransitionEnergy(1.3, 0.7); !almostEqual(se, 1.2, 1e-9) {
		t.Errorf("TransitionEnergy(1.3,0.7) = %v µJ, want 1.2", se)
	}
}

func TestTransitionSymmetryAndZero(t *testing.T) {
	r := DefaultRegulator()
	err := quick.Check(func(a, b float64) bool {
		va := 0.5 + math.Abs(math.Mod(a, 2))
		vb := 0.5 + math.Abs(math.Mod(b, 2))
		return almostEqual(r.TransitionEnergy(va, vb), r.TransitionEnergy(vb, va), 1e-12) &&
			almostEqual(r.TransitionTime(va, vb), r.TransitionTime(vb, va), 1e-12) &&
			r.TransitionEnergy(va, va) == 0 && r.TransitionTime(va, va) == 0
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestCapacitanceScalesCosts(t *testing.T) {
	r := DefaultRegulator()
	r2 := r.WithCapacitance(r.C / 10)
	if !almostEqual(r2.TransitionTime(1.3, 0.7)*10, r.TransitionTime(1.3, 0.7), 1e-9) {
		t.Error("TransitionTime not linear in capacitance")
	}
	if !almostEqual(r2.TransitionEnergy(1.3, 0.7)*10, r.TransitionEnergy(1.3, 0.7), 1e-9) {
		t.Error("TransitionEnergy not linear in capacitance")
	}
}

func TestCECTMatchCostFunctions(t *testing.T) {
	r := DefaultRegulator()
	vi, vj := 1.65, 0.7
	if se := r.CE() * math.Abs(vi*vi-vj*vj); !almostEqual(se, r.TransitionEnergy(vi, vj), 1e-9) {
		t.Errorf("CE-based SE = %v, want %v", se, r.TransitionEnergy(vi, vj))
	}
	if st := r.CT() * math.Abs(vi-vj); !almostEqual(st, r.TransitionTime(vi, vj), 1e-9) {
		t.Errorf("CT-based ST = %v, want %v", st, r.TransitionTime(vi, vj))
	}
}

func TestRegulatorValidate(t *testing.T) {
	bad := []Regulator{
		{C: 0, U: 0.9, IMax: 1},
		{C: 1e-6, U: 1.0, IMax: 1},
		{C: 1e-6, U: -0.1, IMax: 1},
		{C: 1e-6, U: 0.9, IMax: 0},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}
