package volt

import (
	"fmt"
	"math"
)

// Regulator models the DC-DC voltage regulator that implements DVS mode
// switches, following Burd and Brodersen's cost model as used in paper
// Section 4.2:
//
//	SE(vi, vj) = (1 − u) · c · |vi² − vj²|   (energy cost, joules)
//	ST(vi, vj) = (2c / IMAX) · |vi − vj|     (time cost, seconds)
//
// where c is the regulator capacitance, u its energy efficiency, and IMAX the
// maximum allowed current. The repository-wide units are µJ and µs, so the
// accessors below scale accordingly.
type Regulator struct {
	C    float64 // regulator capacitance, farads
	U    float64 // energy efficiency of the regulator, in [0, 1)
	IMax float64 // maximum allowed current, amperes
}

// DefaultRegulator returns the paper's typical regulator: c = 10 µF, and
// u, IMAX calibrated so a 600 MHz/1.3 V → 200 MHz/0.7 V switch costs 12 µs
// and 1.2 µJ (paper Section 6.2). That calibration gives u = 0.9, IMAX = 1 A.
func DefaultRegulator() Regulator {
	return Regulator{C: 10e-6, U: 0.9, IMax: 1.0}
}

// WithCapacitance returns a copy of r with capacitance c (farads). The
// paper's Figure 15 sweeps c over 100 µF … 0.01 µF with u and IMAX fixed.
func (r Regulator) WithCapacitance(c float64) Regulator {
	r.C = c
	return r
}

// TransitionEnergy returns SE(vi, vj) in microjoules.
func (r Regulator) TransitionEnergy(vi, vj float64) float64 {
	return (1 - r.U) * r.C * math.Abs(vi*vi-vj*vj) * 1e6
}

// TransitionTime returns ST(vi, vj) in microseconds.
func (r Regulator) TransitionTime(vi, vj float64) float64 {
	return 2 * r.C / r.IMax * math.Abs(vi-vj) * 1e6
}

// CE returns the constant c·(1−u) from the linearized MILP formulation, in
// microjoules per squared volt, such that SE = CE·|vi² − vj²|.
func (r Regulator) CE() float64 { return r.C * (1 - r.U) * 1e6 }

// CT returns the constant 2c/IMAX from the linearized MILP formulation, in
// microseconds per volt, such that ST = CT·|vi − vj|.
func (r Regulator) CT() float64 { return 2 * r.C / r.IMax * 1e6 }

// Validate reports whether the regulator parameters are physically sensible.
func (r Regulator) Validate() error {
	if r.C <= 0 {
		return fmt.Errorf("volt: regulator capacitance must be positive, got %v", r.C)
	}
	if r.U < 0 || r.U >= 1 {
		return fmt.Errorf("volt: regulator efficiency must be in [0,1), got %v", r.U)
	}
	if r.IMax <= 0 {
		return fmt.Errorf("volt: regulator IMAX must be positive, got %v", r.IMax)
	}
	return nil
}
