// Package volt models the voltage/frequency/energy physics used throughout
// the reproduction of Xie, Martonosi and Malik, "Compile-Time Dynamic Voltage
// Scaling Settings: Opportunities and Limits" (PLDI 2003).
//
// The package provides:
//
//   - the alpha-power delay model relating supply voltage and clock frequency,
//     f = k·(v − vt)^a / v (Sakurai–Newton), with the paper's constants
//     a = 1.5 and vt = 0.45 V, calibrated so that the XScale-like operating
//     points 0.7 V → 200 MHz, 1.3 V → 600 MHz and 1.65 V → 800 MHz hold;
//   - DVS mode tables (discrete (V, f) sets) including the paper's 3-level
//     XScale-like set and evenly spaced 7- and 13-level sets;
//   - the voltage-regulator transition cost model of Burd and Brodersen,
//     SE = (1 − u)·c·|vi² − vj²| and ST = (2c/IMAX)·|vi − vj|, with defaults
//     calibrated to the paper's 12 µs / 1.2 µJ for a 600 MHz → 200 MHz switch
//     at c = 10 µF.
//
// Units are consistent across the repository: volts, MHz (cycles per
// microsecond), microseconds, and microjoules.
package volt

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Physical constants used by the paper (Section 3.1 and Section 5.1).
const (
	// Alpha is the technology-dependent velocity-saturation exponent in the
	// alpha-power model ("currently around 1.5" per the paper).
	Alpha = 1.5

	// VThreshold is the device threshold voltage in volts (paper: 0.45 V).
	VThreshold = 0.45
)

// Scaling captures an alpha-power voltage/frequency relationship
// f = K·(v − Vt)^A / v, with f in MHz and v in volts.
type Scaling struct {
	K  float64 // technology constant, MHz·V/(V^A)
	A  float64 // velocity-saturation exponent
	Vt float64 // threshold voltage, volts
}

// DefaultScaling returns the scaling law calibrated so that 1.65 V maps to
// 800 MHz with a = 1.5 and vt = 0.45 V. Under this calibration the paper's
// other two XScale-like points fall out naturally: 1.3 V → ~605 MHz and
// 0.7 V → ~179 MHz (the paper rounds these to 600 and 200 MHz).
func DefaultScaling() Scaling {
	s := Scaling{A: Alpha, Vt: VThreshold, K: 1}
	// Solve K from f(1.65 V) = 800 MHz.
	s.K = 800 / s.freqUnit(1.65)
	return s
}

// freqUnit evaluates (v − vt)^A / v, the voltage-dependent factor of f.
func (s Scaling) freqUnit(v float64) float64 {
	if v <= s.Vt {
		return 0
	}
	return math.Pow(v-s.Vt, s.A) / v
}

// Freq returns the clock frequency in MHz sustainable at supply voltage v.
// Voltages at or below the threshold yield 0.
func (s Scaling) Freq(v float64) float64 {
	return s.K * s.freqUnit(v)
}

// Voltage returns the minimum supply voltage (in volts) at which the device
// can run at frequency f MHz. It inverts Freq numerically by bisection.
// Voltage panics if f is negative and returns the threshold voltage for f = 0.
func (s Scaling) Voltage(f float64) float64 {
	if f < 0 {
		panic(fmt.Sprintf("volt: negative frequency %v", f))
	}
	if f == 0 {
		return s.Vt
	}
	lo, hi := s.Vt, s.Vt+1
	for s.Freq(hi) < f {
		hi *= 2
		if hi > 1e6 {
			panic(fmt.Sprintf("volt: frequency %v MHz unattainable", f))
		}
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if s.Freq(mid) < f {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Mode is one discrete DVS operating point: a supply voltage paired with the
// clock frequency the hardware runs at that voltage.
type Mode struct {
	V float64 // supply voltage, volts
	F float64 // clock frequency, MHz
}

// String formats the mode as e.g. "600MHz@1.30V".
func (m Mode) String() string {
	return fmt.Sprintf("%.0fMHz@%.2fV", m.F, m.V)
}

// EnergyPerCycle returns the dynamic energy of one active clock cycle at this
// mode, in the normalized unit V² used by the paper's analytic model.
// Multiply by an effective switched capacitance to obtain joules.
func (m Mode) EnergyPerCycle() float64 { return m.V * m.V }

// ModeSet is an ordered set of DVS modes, sorted ascending by frequency.
type ModeSet struct {
	modes []Mode
}

// NewModeSet builds a mode set from explicit (V, f) points. It sorts the
// modes by frequency and rejects empty input, non-positive values, and
// duplicate frequencies.
func NewModeSet(modes []Mode) (*ModeSet, error) {
	if len(modes) == 0 {
		return nil, errors.New("volt: empty mode set")
	}
	ms := make([]Mode, len(modes))
	copy(ms, modes)
	sort.Slice(ms, func(i, j int) bool { return ms[i].F < ms[j].F })
	for i, m := range ms {
		if m.V <= 0 || m.F <= 0 {
			return nil, fmt.Errorf("volt: mode %d has non-positive V or F: %v", i, m)
		}
		if i > 0 {
			if ms[i-1].F == m.F {
				return nil, fmt.Errorf("volt: duplicate frequency %v MHz", m.F)
			}
			if ms[i-1].V >= m.V {
				return nil, fmt.Errorf("volt: voltage not increasing with frequency at %v", m)
			}
		}
	}
	return &ModeSet{modes: ms}, nil
}

// MustModeSet is NewModeSet but panics on error; for package-level tables.
func MustModeSet(modes []Mode) *ModeSet {
	ms, err := NewModeSet(modes)
	if err != nil {
		panic(err)
	}
	return ms
}

// XScale3 returns the paper's 3-level XScale-like mode set (Section 5.1):
// 200 MHz @ 0.70 V, 600 MHz @ 1.30 V, 800 MHz @ 1.65 V.
func XScale3() *ModeSet {
	return MustModeSet([]Mode{
		{V: 0.70, F: 200},
		{V: 1.30, F: 600},
		{V: 1.65, F: 800},
	})
}

// Uniform returns a mode set with n voltage levels evenly spaced over
// [vLow, vHigh], with frequencies derived from the scaling law s. The paper's
// 7- and 13-level experiments use Uniform(7, 0.7, 1.65, s) etc.
func Uniform(n int, vLow, vHigh float64, s Scaling) (*ModeSet, error) {
	if n < 2 {
		return nil, fmt.Errorf("volt: need at least 2 levels, got %d", n)
	}
	if vLow <= s.Vt || vHigh <= vLow {
		return nil, fmt.Errorf("volt: invalid voltage range [%v, %v]", vLow, vHigh)
	}
	modes := make([]Mode, n)
	for i := range modes {
		v := vLow + (vHigh-vLow)*float64(i)/float64(n-1)
		modes[i] = Mode{V: v, F: s.Freq(v)}
	}
	return NewModeSet(modes)
}

// Levels returns standard mode sets for the paper's 3-, 7- and 13-level
// experiments. Level 3 is the XScale-like set; 7 and 13 are uniform over
// [0.7 V, 1.65 V] with DefaultScaling.
func Levels(n int) (*ModeSet, error) {
	switch n {
	case 3:
		return XScale3(), nil
	case 7, 13:
		return Uniform(n, 0.7, 1.65, DefaultScaling())
	default:
		return nil, fmt.Errorf("volt: no standard %d-level mode set", n)
	}
}

// Len returns the number of modes.
func (ms *ModeSet) Len() int { return len(ms.modes) }

// Mode returns the i-th mode in ascending frequency order.
func (ms *ModeSet) Mode(i int) Mode { return ms.modes[i] }

// Modes returns a copy of all modes in ascending frequency order.
func (ms *ModeSet) Modes() []Mode {
	out := make([]Mode, len(ms.modes))
	copy(out, ms.modes)
	return out
}

// Max returns the highest-frequency mode.
func (ms *ModeSet) Max() Mode { return ms.modes[len(ms.modes)-1] }

// Min returns the lowest-frequency mode.
func (ms *ModeSet) Min() Mode { return ms.modes[0] }

// Index returns the index of the mode with frequency f, or -1 if absent.
func (ms *ModeSet) Index(f float64) int {
	for i, m := range ms.modes {
		if m.F == f {
			return i
		}
	}
	return -1
}

// Neighbors returns the indices (lo, hi) of the modes bracketing frequency f:
// the fastest mode with F ≤ f and the slowest with F ≥ f. If f lies below the
// slowest mode both return 0; above the fastest, both return Len()-1. If f
// matches a mode exactly, lo == hi.
func (ms *ModeSet) Neighbors(f float64) (lo, hi int) {
	n := len(ms.modes)
	if f <= ms.modes[0].F {
		return 0, 0
	}
	if f >= ms.modes[n-1].F {
		return n - 1, n - 1
	}
	// First mode with F >= f.
	hi = sort.Search(n, func(i int) bool { return ms.modes[i].F >= f })
	if ms.modes[hi].F == f {
		return hi, hi
	}
	return hi - 1, hi
}

// SlowestMeeting returns the index of the slowest mode m such that
// timeAt(m) ≤ deadline, where timeAt gives the execution time at mode index i.
// It returns -1 if no mode meets the deadline. timeAt must be non-increasing
// in i (faster modes never take longer), which holds for all models in this
// repository.
func (ms *ModeSet) SlowestMeeting(deadline float64, timeAt func(i int) float64) int {
	for i := range ms.modes {
		if timeAt(i) <= deadline {
			return i
		}
	}
	return -1
}
