package core

import (
	"reflect"
	"testing"
)

// TestStagedAPIMatchesOptimize pins the refactor invariant: composing the
// staged API by hand produces exactly what Optimize returns.
func TestStagedAPIMatchesOptimize(t *testing.T) {
	_, pr := collectTwoPhase(t)
	dl := midDeadline(pr)
	cats := []Category{{Profile: pr, Weight: 1, DeadlineUS: dl}}

	whole, err := Optimize(cats, nil)
	if err != nil {
		t.Fatal(err)
	}

	prep, err := Prepare(cats, nil)
	if err != nil {
		t.Fatal(err)
	}
	grouping := prep.Filter()
	staged, err := prep.Formulate(grouping).Solve()
	if err != nil {
		t.Fatal(err)
	}

	if staged.PredictedEnergyUJ != whole.PredictedEnergyUJ {
		t.Errorf("energy: staged %g, whole %g", staged.PredictedEnergyUJ, whole.PredictedEnergyUJ)
	}
	if !reflect.DeepEqual(staged.PredictedTimeUS, whole.PredictedTimeUS) {
		t.Errorf("times: staged %v, whole %v", staged.PredictedTimeUS, whole.PredictedTimeUS)
	}
	if staged.IndependentEdges != whole.IndependentEdges || staged.TotalEdges != whole.TotalEdges {
		t.Errorf("edges: staged %d/%d, whole %d/%d",
			staged.IndependentEdges, staged.TotalEdges, whole.IndependentEdges, whole.TotalEdges)
	}
	if !reflect.DeepEqual(staged.Schedule.Assignment, whole.Schedule.Assignment) {
		t.Error("schedules differ between staged and whole-call API")
	}
	if grouping.IndependentEdges != whole.IndependentEdges {
		t.Errorf("grouping reports %d independent edges, result %d",
			grouping.IndependentEdges, whole.IndependentEdges)
	}
}

// TestPrepareCanonicalizes checks the canonicalization contract cache keys
// rely on: defaults are filled in and weights are normalized, without
// mutating the caller's slice.
func TestPrepareCanonicalizes(t *testing.T) {
	_, pr := collectTwoPhase(t)
	dl := midDeadline(pr)
	cats := []Category{
		{Profile: pr, Weight: 3, DeadlineUS: dl},
		{Profile: pr, Weight: 1, DeadlineUS: dl * 2},
	}
	prep, err := Prepare(cats, nil)
	if err != nil {
		t.Fatal(err)
	}
	if prep.Opts.FilterTail != 0.02 {
		t.Errorf("FilterTail = %g, want 0.02", prep.Opts.FilterTail)
	}
	if err := prep.Opts.Regulator.Validate(); err != nil {
		t.Errorf("regulator not defaulted: %v", err)
	}
	if prep.Cats[0].Weight != 0.75 || prep.Cats[1].Weight != 0.25 {
		t.Errorf("weights = %g, %g; want 0.75, 0.25", prep.Cats[0].Weight, prep.Cats[1].Weight)
	}
	if cats[0].Weight != 3 {
		t.Error("Prepare mutated the caller's categories")
	}

	if _, err := Prepare(nil, nil); err == nil {
		t.Error("Prepare accepted empty categories")
	}
	if _, err := Prepare([]Category{{Profile: pr, Weight: -1, DeadlineUS: dl}}, nil); err == nil {
		t.Error("Prepare accepted negative weight")
	}
}
