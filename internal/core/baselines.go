package core

import (
	"fmt"

	"ctdvs/internal/cfg"
	"ctdvs/internal/profile"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

// SingleModeSchedule returns the trivial schedule that pins every edge to
// one mode — the "best single frequency" baseline when the mode is chosen
// with profile.BestSingleMode.
func SingleModeSchedule(pr *profile.Profile, mode int, reg volt.Regulator) *sim.Schedule {
	assign := make(map[cfg.Edge]int, pr.Graph.NumEdges())
	for _, e := range pr.Graph.Edges {
		assign[e] = mode
	}
	return &sim.Schedule{
		Modes:      pr.Modes,
		Assignment: assign,
		Initial:    mode,
		Regulator:  reg,
	}
}

// HeuristicMemoryBound builds a schedule in the spirit of Hsu and Kremer's
// compiler heuristic: slow down the memory-bound code regions — those whose
// execution time is least sensitive to clock frequency — while the rest of
// the program runs at the best single mode meeting the deadline.
//
// The region is grown greedily at block granularity: starting from the
// all-base schedule, the block whose move to the slowest mode gives the
// largest estimated energy reduction is added while the estimated time stays
// within the deadline. Estimates are block-profile sums plus regulator
// switching costs on edges crossing the region boundary, so the heuristic
// does not ping-pong modes inside hot loops; it remains weaker than the MILP
// because it considers one region at one target mode and never revisits
// choices.
func HeuristicMemoryBound(pr *profile.Profile, deadlineUS float64, reg volt.Regulator) (*sim.Schedule, error) {
	base, _, ok := pr.BestSingleMode(deadlineUS)
	if !ok {
		return nil, ErrInfeasible
	}
	nm := pr.Modes.Len()
	slow := 0
	g := pr.Graph

	blockMode := make([]int, g.NumBlocks)
	for j := range blockMode {
		blockMode[j] = base
	}

	// estimate returns the predicted time and energy of a block-granular
	// mode assignment, charging ST/SE on every edge whose endpoints differ.
	estimate := func(modes []int) (timeUS, energyUJ float64) {
		for j := 0; j < g.NumBlocks; j++ {
			inv := float64(pr.Invocations[j])
			timeUS += inv * pr.TimeUS[j][modes[j]]
			energyUJ += inv * pr.EnergyUJ[j][modes[j]]
		}
		for ei, e := range g.Edges {
			if e.From == cfg.Entry {
				continue
			}
			va := pr.Modes.Mode(modes[e.From]).V
			vb := pr.Modes.Mode(modes[e.To]).V
			if va != vb {
				cnt := float64(pr.EdgeCounts[ei])
				timeUS += cnt * reg.TransitionTime(va, vb)
				energyUJ += cnt * reg.TransitionEnergy(va, vb)
			}
		}
		return timeUS, energyUJ
	}

	_, bestE := estimate(blockMode)
	if base != slow && nm > 1 {
		for {
			bestBlock := -1
			var bestBlockE float64
			for j := 0; j < g.NumBlocks; j++ {
				if blockMode[j] == slow || pr.Invocations[j] == 0 {
					continue
				}
				saved := blockMode[j]
				blockMode[j] = slow
				t, e := estimate(blockMode)
				blockMode[j] = saved
				if t <= deadlineUS && e < bestE-1e-12 && (bestBlock < 0 || e < bestBlockE) {
					bestBlock, bestBlockE = j, e
				}
			}
			if bestBlock < 0 {
				break
			}
			blockMode[bestBlock] = slow
			bestE = bestBlockE
		}
	}

	assign := make(map[cfg.Edge]int, g.NumEdges())
	for _, e := range g.Edges {
		assign[e] = blockMode[e.To]
	}
	return &sim.Schedule{
		Modes:      pr.Modes,
		Assignment: assign,
		Initial:    assign[cfg.Edge{From: cfg.Entry, To: 0}],
		Regulator:  reg,
	}, nil
}

// Evaluation is the measured outcome of running a schedule on the simulator.
type Evaluation struct {
	Run           *sim.Result
	DeadlineUS    float64
	MeetsDeadline bool
	// SlackUS is deadline − measured time (negative when missed).
	SlackUS float64
}

// Evaluate executes the schedule on the machine and checks it against the
// deadline.
func Evaluate(m *sim.Machine, pr *profile.Profile, sched *sim.Schedule, deadlineUS float64) (*Evaluation, error) {
	res, err := m.RunDVS(pr.Program, pr.Input, sched)
	if err != nil {
		return nil, err
	}
	return &Evaluation{
		Run:           res,
		DeadlineUS:    deadlineUS,
		MeetsDeadline: res.TimeUS <= deadlineUS*(1+1e-9),
		SlackUS:       deadlineUS - res.TimeUS,
	}, nil
}

// SavingsVsBestSingle runs both the optimized schedule and the best
// single-mode baseline and returns the measured energy-saving ratio
// 1 − E_dvs/E_single (the quantity in the paper's Table 6 and Figure 17).
func SavingsVsBestSingle(m *sim.Machine, pr *profile.Profile, sched *sim.Schedule, deadlineUS float64, reg volt.Regulator) (float64, error) {
	mode, _, ok := pr.BestSingleMode(deadlineUS)
	if !ok {
		return 0, fmt.Errorf("core: no single mode meets deadline %v µs", deadlineUS)
	}
	baseRun, err := m.RunDVS(pr.Program, pr.Input, SingleModeSchedule(pr, mode, reg))
	if err != nil {
		return 0, err
	}
	dvsRun, err := m.RunDVS(pr.Program, pr.Input, sched)
	if err != nil {
		return 0, err
	}
	if baseRun.EnergyUJ <= 0 {
		return 0, nil
	}
	return 1 - dvsRun.EnergyUJ/baseRun.EnergyUJ, nil
}
