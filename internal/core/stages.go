package core

import (
	"context"
	"errors"
	"fmt"

	"ctdvs/internal/milp"
	"ctdvs/internal/volt"
)

// This file exposes Optimize's phases as explicit pipeline stages —
// Prepare → Filter → Formulate → Solve — so the pipeline layer can time and
// cache them independently: package exp keys solve artifacts off a Prepared
// value (canonical options, profile fingerprints) and records Filter/Formulate
// in the run manifest, while Optimize below remains the one-call composition.

// Prepared is the validated, canonical input of one optimization run: weights
// normalized to probabilities, the regulator and filter tail defaulted. Two
// Optimize calls with the same Prepared value produce the same schedule, which
// is what makes Prepared the right basis for cache keys.
type Prepared struct {
	Cats []Category
	Opts Options
}

// Prepare validates categories and options and canonicalizes them.
func Prepare(cats []Category, opts *Options) (*Prepared, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.Regulator == (volt.Regulator{}) {
		o.Regulator = volt.DefaultRegulator()
	}
	if err := o.Regulator.Validate(); err != nil {
		return nil, err
	}
	if o.FilterTail == 0 {
		o.FilterTail = 0.02
	}
	if len(cats) == 0 {
		return nil, errors.New("core: no categories")
	}
	for i, c := range cats {
		if c.Profile == nil {
			return nil, fmt.Errorf("core: category %d has nil profile", i)
		}
	}
	g := cats[0].Profile.Graph
	modes := cats[0].Profile.Modes
	wsum := 0.0
	for i, c := range cats {
		if c.Profile.Graph.NumEdges() != g.NumEdges() || c.Profile.Graph.NumBlocks != g.NumBlocks {
			return nil, fmt.Errorf("core: category %d profiles a different program", i)
		}
		if c.Profile.Modes.Len() != modes.Len() {
			return nil, fmt.Errorf("core: category %d uses a different mode set", i)
		}
		if c.Weight <= 0 {
			return nil, fmt.Errorf("core: category %d has non-positive weight", i)
		}
		if c.DeadlineUS <= 0 {
			return nil, fmt.Errorf("core: category %d has non-positive deadline", i)
		}
		wsum += c.Weight
	}
	norm := make([]Category, len(cats))
	copy(norm, cats)
	for i := range norm {
		norm[i].Weight /= wsum
	}
	return &Prepared{Cats: norm, Opts: o}, nil
}

// Grouping is the output of the filter stage: the union-find partition of
// edges into independent mode-decision groups (paper Section 5.2).
type Grouping struct {
	uf *unionFind
	// IndependentEdges is the number of groups with their own mode variables;
	// TotalEdges counts all control-flow edges (incl. the virtual entry).
	IndependentEdges int
	TotalEdges       int
}

// Filter runs the edge-filtering stage selected by the options: block-based
// grouping, an explicit keep-set, or the cumulative-energy tail filter.
func (p *Prepared) Filter() *Grouping {
	var uf *unionFind
	switch {
	case p.Opts.BlockBased:
		uf = blockBasedGroups(p.Cats[0].Profile)
	case p.Opts.KeepIndependent != nil:
		uf = filterKeep(p.Cats, p.Opts.KeepIndependent)
	default:
		uf = filterEdges(p.Cats, p.Opts.FilterTail)
	}
	return &Grouping{
		uf:               uf,
		IndependentEdges: uf.groups(),
		TotalEdges:       p.Cats[0].Profile.Graph.NumEdges(),
	}
}

// Formulation is the output of the formulate stage: the MILP ready to solve.
type Formulation struct {
	prep *Prepared
	f    *formulation
}

// Formulate builds the MILP over the given edge grouping.
func (p *Prepared) Formulate(g *Grouping) *Formulation {
	return &Formulation{
		prep: p,
		f:    buildFormulation(p.Cats, p.Cats[0].Profile.Modes, g.uf, p.Opts),
	}
}

// Solve runs branch-and-bound and extracts the schedule and predictions.
func (fm *Formulation) Solve() (*Result, error) {
	return fm.SolveContext(context.Background())
}

// SolveContext is Solve under a context: a cancelled context aborts the
// branch-and-bound search and surfaces ctx's error (never a partial result),
// so a disconnected client stops burning solver time.
func (fm *Formulation) SolveContext(ctx context.Context) (*Result, error) {
	// Hand the search the formulation's analytic dual bound (a copy of the
	// caller's options, so shared Options values are never mutated);
	// milp.Options.DisableAnalyticBound switches it off from there.
	mo := milp.Options{}
	if fm.prep.Opts.MILP != nil {
		mo = *fm.prep.Opts.MILP
	}
	if mo.AnalyticBound == nil {
		mo.AnalyticBound = fm.f.bounder.Bound
	}
	res, err := milp.SolveContext(ctx, fm.f.problem, &mo)
	if err != nil {
		return nil, err
	}
	switch res.Status {
	case milp.Optimal, milp.Feasible:
	case milp.Infeasible:
		return nil, ErrInfeasible
	default:
		return nil, fmt.Errorf("core: solver stopped with status %v and no incumbent", res.Status)
	}
	return fm.f.extract(res, fm.prep.Cats, fm.prep.Opts)
}
