package core

import (
	"sort"

	"ctdvs/internal/cfg"
	"ctdvs/internal/profile"
)

// unionFind tracks which control-flow edges share a single set of mode
// variables. Filtering (paper Section 5.2) and the block-based ablation both
// work by aliasing edges into groups.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// union merges the groups of a and b, keeping b's root. It is a no-op when
// they already share a group.
func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// groups returns the number of distinct roots.
func (u *unionFind) groups() int {
	n := 0
	for i := range u.parent {
		if u.find(i) == i {
			n++
		}
	}
	return n
}

// filterEdges applies the paper's 2 %-tail rule: edges whose cumulative
// destination energy falls in the tail comprising less than `tail` of the
// total energy lose their independent mode variables; each such edge (i, j)
// is aliased to the incoming edge (k, i) of its source block with the
// largest traversal count, so the mode never changes along (i, j) when block
// i was entered along its hottest edge. Energies and counts are weighted
// across categories. The virtual entry edge cannot be aliased (its source
// has no incoming edges).
//
// Filtering only affects which energy terms can be optimized independently;
// the timing constraints keep every edge, so deadlines are still met.
func filterEdges(cats []Category, tail float64) *unionFind {
	g := cats[0].Profile.Graph
	uf := newUnionFind(g.NumEdges())
	if tail <= 0 {
		return uf
	}
	refMode := cats[0].Profile.Modes.Len() - 1 // "an arbitrarily selected mode"

	energy := make([]float64, g.NumEdges())
	total := 0.0
	for e := range energy {
		for _, c := range cats {
			energy[e] += c.Weight * c.Profile.EdgeEnergy(e, refMode)
		}
		total += energy[e]
	}
	order := make([]int, len(energy))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return energy[order[a]] < energy[order[b]] })

	cum := 0.0
	for _, e := range order {
		cum += energy[e]
		if cum >= tail*total {
			break
		}
		src := g.Edges[e].From
		if src == cfg.Entry {
			continue
		}
		hot := hottestIncoming(cats, src)
		if hot < 0 || hot == e {
			continue
		}
		uf.union(e, hot)
	}
	return uf
}

// hottestIncoming returns the incoming edge of block i with the largest
// (weighted) traversal count, or -1 if the block has none.
func hottestIncoming(cats []Category, i int) int {
	g := cats[0].Profile.Graph
	best, bestCount := -1, -1.0
	for _, h := range g.Preds(i) {
		id := g.EdgeID(cfg.Edge{From: h, To: i})
		count := 0.0
		for _, c := range cats {
			count += c.Weight * float64(c.Profile.EdgeCounts[id])
		}
		if count > bestCount {
			best, bestCount = id, count
		}
	}
	return best
}

// filterKeep aliases every edge NOT in keep to its source block's hottest
// incoming edge, giving independent mode variables only to the kept set
// (plus whatever the aliasing chains terminate at). This generalizes the
// paper's 2 %-tail rule to arbitrary keep-policies — package exp uses it
// with Ball–Larus hot-path coverage, a concrete step of the paper's
// Section 7 plan to move the formulation from edges to paths.
func filterKeep(cats []Category, keep map[cfg.Edge]bool) *unionFind {
	g := cats[0].Profile.Graph
	uf := newUnionFind(g.NumEdges())
	for ei, e := range g.Edges {
		if keep[e] || e.From == cfg.Entry {
			continue
		}
		hot := hottestIncoming(cats, e.From)
		if hot < 0 || hot == ei {
			continue
		}
		uf.union(ei, hot)
	}
	return uf
}

// blockBasedGroups aliases every incoming edge of a block together, reducing
// the edge-based formulation to the block-based one of earlier work (one
// mode decision per region regardless of entry path). Used by the
// block-vs-edge ablation.
func blockBasedGroups(pr *profile.Profile) *unionFind {
	g := pr.Graph
	uf := newUnionFind(g.NumEdges())
	for j := 0; j < g.NumBlocks; j++ {
		first := -1
		for _, h := range g.Preds(j) {
			id := g.EdgeID(cfg.Edge{From: h, To: j})
			if first < 0 {
				first = id
			} else {
				uf.union(id, first)
			}
		}
	}
	return uf
}
