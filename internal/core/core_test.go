package core

import (
	"errors"
	"math"
	"testing"

	"ctdvs/internal/cfg"
	"ctdvs/internal/ir"
	"ctdvs/internal/milp"
	"ctdvs/internal/profile"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

// twoPhase builds a program with a memory-bound phase (loads from a large
// random working set, little compute) followed by a compute-bound phase.
// Compile-time DVS should slow the first phase and hurry the second.
func twoPhase(tripsA, tripsB int) *ir.Program {
	b := ir.NewBuilder("two-phase")
	mem := b.RandomStream(64 << 20)
	phaseA := b.Block("memory-bound")
	phaseB := b.Block("compute-bound")
	exit := b.Block("exit")
	phaseA.Load(mem).Compute(30).DependentCompute(5)
	b.LoopBranch(phaseA, phaseA, phaseB, tripsA)
	phaseB.Compute(120)
	b.LoopBranch(phaseB, phaseB, exit, tripsB)
	exit.Compute(1)
	exit.Exit()
	return b.MustFinish()
}

func collectTwoPhase(t *testing.T) (*sim.Machine, *profile.Profile) {
	t.Helper()
	m := sim.MustNew(sim.DefaultConfig())
	pr, err := profile.Collect(m, twoPhase(3000, 3000), ir.Input{Name: "in", Seed: 7}, volt.XScale3())
	if err != nil {
		t.Fatal(err)
	}
	return m, pr
}

func midDeadline(pr *profile.Profile) float64 {
	// Between the fastest and slowest single-mode runs.
	n := pr.Modes.Len()
	return (pr.TotalTimeUS[n-1] + pr.TotalTimeUS[0]) / 2
}

func TestOptimizeMeetsDeadline(t *testing.T) {
	t.Parallel()
	m, pr := collectTwoPhase(t)
	dl := midDeadline(pr)
	res, err := OptimizeSingle(pr, dl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule == nil {
		t.Fatal("nil schedule")
	}
	ev, err := Evaluate(m, pr, res.Schedule, dl)
	if err != nil {
		t.Fatal(err)
	}
	// The MILP plans with per-invocation averages; allow 2% tolerance on
	// the measured run.
	if ev.Run.TimeUS > dl*1.02 {
		t.Errorf("measured time %v overshoots deadline %v", ev.Run.TimeUS, dl)
	}
	if math.Abs(res.PredictedTimeUS[0]-ev.Run.TimeUS) > 0.05*ev.Run.TimeUS {
		t.Errorf("predicted time %v far from measured %v", res.PredictedTimeUS[0], ev.Run.TimeUS)
	}
	if math.Abs(res.PredictedEnergyUJ-ev.Run.EnergyUJ) > 0.05*ev.Run.EnergyUJ {
		t.Errorf("predicted energy %v far from measured %v", res.PredictedEnergyUJ, ev.Run.EnergyUJ)
	}
}

func TestOptimizeBeatsBestSingleMode(t *testing.T) {
	t.Parallel()
	m, pr := collectTwoPhase(t)
	dl := midDeadline(pr)
	res, err := OptimizeSingle(pr, dl, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SavingsVsBestSingle(m, pr, res.Schedule, dl, volt.DefaultRegulator())
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.02 {
		t.Errorf("savings vs best single mode = %v, want noticeably positive "+
			"(two-phase program at a mid deadline)", s)
	}
}

func TestLaxDeadlineUsesSlowestMode(t *testing.T) {
	t.Parallel()
	_, pr := collectTwoPhase(t)
	dl := pr.TotalTimeUS[0] * 1.5
	res, err := OptimizeSingle(pr, dl, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Everything should sit at mode 0; predicted energy ≈ slowest run.
	if math.Abs(res.PredictedEnergyUJ-pr.TotalEnergyUJ[0]) > 0.02*pr.TotalEnergyUJ[0] {
		t.Errorf("lax-deadline energy %v, want ≈ %v", res.PredictedEnergyUJ, pr.TotalEnergyUJ[0])
	}
	if res.Schedule.Assignment[cfg.Edge{From: cfg.Entry, To: 0}] != 0 {
		t.Error("entry edge not at slowest mode under lax deadline")
	}
}

func TestTightDeadlineUsesFastestMode(t *testing.T) {
	t.Parallel()
	_, pr := collectTwoPhase(t)
	n := pr.Modes.Len()
	dl := pr.TotalTimeUS[n-1] * 1.001
	res, err := OptimizeSingle(pr, dl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PredictedEnergyUJ-pr.TotalEnergyUJ[n-1]) > 0.03*pr.TotalEnergyUJ[n-1] {
		t.Errorf("tight-deadline energy %v, want ≈ %v", res.PredictedEnergyUJ, pr.TotalEnergyUJ[n-1])
	}
}

func TestInfeasibleDeadline(t *testing.T) {
	t.Parallel()
	_, pr := collectTwoPhase(t)
	n := pr.Modes.Len()
	_, err := OptimizeSingle(pr, pr.TotalTimeUS[n-1]*0.5, nil)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestFilteringReducesVariablesKeepsEnergy(t *testing.T) {
	t.Parallel()
	m, pr := collectTwoPhase(t)
	dl := midDeadline(pr)
	full, err := OptimizeSingle(pr, dl, &Options{FilterTail: -1})
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := OptimizeSingle(pr, dl, &Options{FilterTail: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if filtered.IndependentEdges > full.IndependentEdges {
		t.Errorf("filtering increased independent edges: %d > %d",
			filtered.IndependentEdges, full.IndependentEdges)
	}
	if full.IndependentEdges != full.TotalEdges {
		t.Errorf("unfiltered run grouped edges: %d != %d", full.IndependentEdges, full.TotalEdges)
	}
	// Paper Table 3: the filtered optimum is essentially unchanged.
	if filtered.PredictedEnergyUJ > full.PredictedEnergyUJ*1.01 {
		t.Errorf("filtered energy %v much worse than full %v",
			filtered.PredictedEnergyUJ, full.PredictedEnergyUJ)
	}
	// And the filtered schedule must still meet the deadline when run.
	ev, err := Evaluate(m, pr, filtered.Schedule, dl)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Run.TimeUS > dl*1.02 {
		t.Errorf("filtered schedule misses deadline: %v > %v", ev.Run.TimeUS, dl)
	}
}

func TestTransitionCostAwareness(t *testing.T) {
	t.Parallel()
	// With an enormous regulator capacitance, transitions are ruinous: the
	// transition-aware optimizer should schedule (nearly) none, while the
	// transition-blind (Saputra-style) one switches freely and pays for it
	// at run time.
	m, pr := collectTwoPhase(t)
	dl := midDeadline(pr)
	reg := volt.DefaultRegulator().WithCapacitance(100e-6)

	aware, err := OptimizeSingle(pr, dl, &Options{Regulator: reg})
	if err != nil {
		t.Fatal(err)
	}
	blind, err := OptimizeSingle(pr, dl, &Options{Regulator: reg, NoTransitionCosts: true})
	if err != nil {
		t.Fatal(err)
	}
	awareEv, err := Evaluate(m, pr, aware.Schedule, dl)
	if err != nil {
		t.Fatal(err)
	}
	blindEv, err := Evaluate(m, pr, blind.Schedule, dl)
	if err != nil {
		t.Fatal(err)
	}
	if awareEv.Run.Transitions > 4 {
		t.Errorf("aware schedule has %d transitions despite huge cost", awareEv.Run.Transitions)
	}
	if blindEv.Run.Transitions > 0 &&
		awareEv.Run.EnergyUJ > blindEv.Run.EnergyUJ*(1+1e-9) {
		t.Errorf("transition-aware energy %v worse than blind %v",
			awareEv.Run.EnergyUJ, blindEv.Run.EnergyUJ)
	}
}

func TestBlockBasedAblation(t *testing.T) {
	t.Parallel()
	m, pr := collectTwoPhase(t)
	dl := midDeadline(pr)
	blk, err := OptimizeSingle(pr, dl, &Options{BlockBased: true})
	if err != nil {
		t.Fatal(err)
	}
	edge, err := OptimizeSingle(pr, dl, &Options{FilterTail: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Block-based is a restriction of edge-based: its optimum can't be
	// better.
	if blk.PredictedEnergyUJ < edge.PredictedEnergyUJ*(1-1e-6) {
		t.Errorf("block-based %v beats edge-based %v", blk.PredictedEnergyUJ, edge.PredictedEnergyUJ)
	}
	if blk.IndependentEdges > edge.IndependentEdges {
		t.Errorf("block-based has more groups (%d) than edges (%d)",
			blk.IndependentEdges, edge.IndependentEdges)
	}
	ev, err := Evaluate(m, pr, blk.Schedule, dl)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Run.TimeUS > dl*1.02 {
		t.Errorf("block-based schedule misses deadline")
	}
}

func TestHeuristicBaseline(t *testing.T) {
	t.Parallel()
	m, pr := collectTwoPhase(t)
	dl := midDeadline(pr)
	sched, err := HeuristicMemoryBound(pr, dl, volt.DefaultRegulator())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(m, pr, sched, dl)
	if err != nil {
		t.Fatal(err)
	}
	// The heuristic ignores transition costs, so give it more slack.
	if ev.Run.TimeUS > dl*1.05 {
		t.Errorf("heuristic misses deadline badly: %v > %v", ev.Run.TimeUS, dl)
	}
	// MILP should be at least as good as the heuristic.
	res, err := OptimizeSingle(pr, dl, nil)
	if err != nil {
		t.Fatal(err)
	}
	resEv, err := Evaluate(m, pr, res.Schedule, dl)
	if err != nil {
		t.Fatal(err)
	}
	if resEv.Run.EnergyUJ > ev.Run.EnergyUJ*1.02 {
		t.Errorf("MILP energy %v worse than heuristic %v", resEv.Run.EnergyUJ, ev.Run.EnergyUJ)
	}
	// Infeasible deadline rejected.
	if _, err := HeuristicMemoryBound(pr, 1, volt.DefaultRegulator()); !errors.Is(err, ErrInfeasible) {
		t.Errorf("heuristic accepted impossible deadline: %v", err)
	}
}

func TestMultiCategoryOptimization(t *testing.T) {
	t.Parallel()
	// Two inputs steering different fractions of work through the heavy
	// phase; the averaged optimization must meet both deadlines.
	b := ir.NewBuilder("multi")
	mem := b.RandomStream(64 << 20)
	head := b.Block("head")
	heavy := b.Block("heavy")
	light := b.Block("light")
	latch := b.Block("latch")
	exit := b.Block("exit")
	head.Compute(5)
	pid := b.ProbBranch(head, heavy, light, 0.5)
	heavy.Load(mem).Compute(50).DependentCompute(10)
	heavy.Jump(latch)
	light.Compute(40)
	light.Jump(latch)
	latch.Compute(2)
	b.LoopBranch(latch, head, exit, 4000)
	exit.Compute(1)
	exit.Exit()
	prog := b.MustFinish()

	m := sim.MustNew(sim.DefaultConfig())
	inA := ir.Input{Name: "heavy-mix", Seed: 3, Probs: map[int]float64{pid: 0.9}}
	inB := ir.Input{Name: "light-mix", Seed: 4, Probs: map[int]float64{pid: 0.1}}
	prA, err := profile.Collect(m, prog, inA, volt.XScale3())
	if err != nil {
		t.Fatal(err)
	}
	prB, err := profile.Collect(m, prog, inB, volt.XScale3())
	if err != nil {
		t.Fatal(err)
	}
	dlA := (prA.TotalTimeUS[2] + prA.TotalTimeUS[0]) / 2
	dlB := (prB.TotalTimeUS[2] + prB.TotalTimeUS[0]) / 2
	res, err := Optimize([]Category{
		{Profile: prA, Weight: 1, DeadlineUS: dlA},
		{Profile: prB, Weight: 1, DeadlineUS: dlB},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PredictedTimeUS) != 2 {
		t.Fatalf("predicted times = %v", res.PredictedTimeUS)
	}
	evA, err := Evaluate(m, prA, res.Schedule, dlA)
	if err != nil {
		t.Fatal(err)
	}
	evB, err := Evaluate(m, prB, res.Schedule, dlB)
	if err != nil {
		t.Fatal(err)
	}
	if evA.Run.TimeUS > dlA*1.03 {
		t.Errorf("category A misses deadline: %v > %v", evA.Run.TimeUS, dlA)
	}
	if evB.Run.TimeUS > dlB*1.03 {
		t.Errorf("category B misses deadline: %v > %v", evB.Run.TimeUS, dlB)
	}
}

func TestOptionValidation(t *testing.T) {
	t.Parallel()
	_, pr := collectTwoPhase(t)
	if _, err := Optimize(nil, nil); err == nil {
		t.Error("empty categories accepted")
	}
	if _, err := Optimize([]Category{{Profile: pr, Weight: 0, DeadlineUS: 1}}, nil); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := Optimize([]Category{{Profile: pr, Weight: 1, DeadlineUS: 0}}, nil); err == nil {
		t.Error("zero deadline accepted")
	}
	if _, err := Optimize([]Category{{Profile: nil, Weight: 1, DeadlineUS: 1}}, nil); err == nil {
		t.Error("nil profile accepted")
	}
	bad := volt.Regulator{C: -1, U: 0.5, IMax: 1}
	if _, err := OptimizeSingle(pr, midDeadline(pr), &Options{Regulator: bad}); err == nil {
		t.Error("invalid regulator accepted")
	}
}

func TestSolverStatsReported(t *testing.T) {
	t.Parallel()
	_, pr := collectTwoPhase(t)
	res, err := OptimizeSingle(pr, midDeadline(pr), &Options{MILP: &milp.Options{MaxNodes: 100000}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver == nil || res.Solver.Nodes < 1 {
		t.Fatal("solver stats missing")
	}
	if res.TotalEdges != pr.Graph.NumEdges() {
		t.Errorf("TotalEdges = %d", res.TotalEdges)
	}
	s := res.Solver
	if got := s.WarmSolves + s.ColdSolves + s.WarmFallbacks; got != s.LPIters {
		t.Errorf("warm+cold+fallback = %d, want LPIters = %d", got, s.LPIters)
	}
	if s.LPPivots < 1 {
		t.Errorf("LPPivots = %d, want ≥ 1", s.LPPivots)
	}
	if s.LPTime <= 0 {
		t.Errorf("LPTime = %v, want > 0", s.LPTime)
	}
	if hr := s.WarmHitRate(); hr < 0 || hr > 1 {
		t.Errorf("WarmHitRate = %v", hr)
	}
}

func TestUnionFind(t *testing.T) {
	t.Parallel()
	uf := newUnionFind(5)
	if uf.groups() != 5 {
		t.Errorf("groups = %d", uf.groups())
	}
	uf.union(0, 1)
	uf.union(1, 2)
	uf.union(3, 4)
	if uf.groups() != 2 {
		t.Errorf("groups = %d", uf.groups())
	}
	if uf.find(0) != uf.find(2) {
		t.Error("0 and 2 not joined")
	}
	if uf.find(0) == uf.find(3) {
		t.Error("0 and 3 joined")
	}
	uf.union(2, 0) // same group: no-op, must not loop
	if uf.groups() != 2 {
		t.Errorf("groups after self-union = %d", uf.groups())
	}
}

func TestSingleModeScheduleMatchesFixedRun(t *testing.T) {
	t.Parallel()
	m, pr := collectTwoPhase(t)
	sched := SingleModeSchedule(pr, 1, volt.DefaultRegulator())
	res, err := m.RunDVS(pr.Program, pr.Input, sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transitions != 0 {
		t.Errorf("transitions = %d", res.Transitions)
	}
	if math.Abs(res.TimeUS-pr.TotalTimeUS[1]) > 1e-9 {
		t.Errorf("time %v != profiled %v", res.TimeUS, pr.TotalTimeUS[1])
	}
}
