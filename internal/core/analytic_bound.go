package core

import (
	"math"
	"sort"

	"ctdvs/internal/lp"
)

// This file builds the analytic dual bound the MILP search consults before
// paying for dual-simplex node solves (milp.Options.AnalyticBound). It is
// the discrete-mode counterpart of the Li–Yao–Yuan continuous optimum in
// internal/analytic: where the continuous backend minimizes over a smooth
// convex power curve, the bound here minimizes over the lower convex hull
// of each group's actual (time, energy) mode points — the continuous bound
// plus the discrete quantization gap, evaluated in closed form.
//
// The relaxation keeps, per deadline constraint, only the mode variables:
//
//	minimize   Σ_g e_g(m_g)         (the k-variable objective terms)
//	subject to Σ_g t_g(m_g) ≤ B     (one budget per category/core)
//
// with each group's choice relaxed onto the convex hull of its allowed
// (t, e) points. That separable convex program is solved by the classic
// fractional multiple-choice-knapsack greedy: start every group at its
// cheapest-energy point and buy back time along hull segments in order of
// increasing energy-per-microsecond until the budget holds. Transition
// objective terms are non-negative, so dropping them keeps the bound
// valid; for node boxes that force two adjacent groups onto disjoint mode
// sets, the minimum |ΔV²| transition cost over the allowed product is
// added back. Branch-and-bound overrides only ever touch mode binaries,
// so a node's box maps exactly onto per-group allowed-mode sets — and the
// bound holds for every integer point of the subtree, which is what lets
// the search discard a child before solving its LP.
//
// Categories either share every group (the multi-category single-program
// formulation: the bound is the max over per-category values) or partition
// them (the task-graph formulation, one budget per core: the per-core
// repairs add). Bound is a pure function of the override map and is called
// only from the branch-and-bound coordinator, so its scratch state needs
// no locking and solves stay bit-for-bit reproducible.

// abSeg is one hull segment: spending seg.dt more microseconds in group
// seg.group saves seg.rate energy per microsecond less — walked in
// increasing rate order by the repair greedy.
type abSeg struct {
	group int
	dt    float64
	rate  float64
}

// abHull summarizes one group's lower convex hull for one budget: the
// fastest allowed time (feasibility floor), the time at the cheapest-energy
// point, that cheapest energy, and the buy-time-back segments in ascending
// rate order.
type abHull struct {
	minT, t0, eMin float64
	segs           []abSeg
}

// abCat is one budget constraint: scaled per-group per-mode times (nil for
// groups absent from the constraint) with the root-box hulls precomputed.
type abCat struct {
	budget   float64
	t        [][]float64
	root     []abHull
	rootSegs []abSeg // all groups' segments merged, ascending (rate, group)
	rootT0   float64
	rootMinT float64
}

// abPair is a transition-priced adjacency: groups a and b are coupled by an
// |ΔV²| objective term with weight w (scaled objective units).
type abPair struct {
	a, b int
	w    float64
}

// analyticBounder evaluates the dual bound for arbitrary node boxes.
type analyticBounder struct {
	nm      int
	groups  int
	e       [][]float64 // per group per mode, scaled objective units
	eMin    []float64   // per group, min over all modes
	vsq     []float64   // per mode, V²
	cats    []abCat
	sumCats bool // disjoint per-core budgets add; shared-category budgets max
	pairs   []abPair
	pairsOf [][]int32

	base float64 // Σ_g eMin[g]

	// Per-call scratch. Bound is coordinator-only, so one set suffices.
	keys       []int
	restricted []int
	forced     []int
	masks      [][]bool
	slotOf     []int32 // group → index into restricted, -1 otherwise
	newSegs    []abSeg
}

// abCatSpec is a constructor input: one budget with its per-group times.
type abCatSpec struct {
	budget float64
	t      [][]float64
}

func newAnalyticBounder(nm int, e [][]float64, vsq []float64, cats []abCatSpec, pairs []abPair, sumCats bool) *analyticBounder {
	ab := &analyticBounder{
		nm:      nm,
		groups:  len(e),
		e:       e,
		eMin:    make([]float64, len(e)),
		vsq:     vsq,
		sumCats: sumCats,
		pairs:   pairs,
		pairsOf: make([][]int32, len(e)),
		slotOf:  make([]int32, len(e)),
	}
	fullMask := make([]bool, nm)
	for m := range fullMask {
		fullMask[m] = true
	}
	for g := range e {
		ab.slotOf[g] = -1
		m := math.Inf(1)
		for _, v := range e[g] {
			m = math.Min(m, v)
		}
		ab.eMin[g] = m
		ab.base += m
	}
	for i, pr := range pairs {
		ab.pairsOf[pr.a] = append(ab.pairsOf[pr.a], int32(i))
		ab.pairsOf[pr.b] = append(ab.pairsOf[pr.b], int32(i))
	}
	for _, spec := range cats {
		cat := abCat{budget: spec.budget, t: spec.t, root: make([]abHull, len(e))}
		for g := range e {
			if spec.t[g] == nil {
				continue
			}
			h, ok := computeHull(g, spec.t[g], e[g], fullMask)
			if !ok {
				continue // unreachable: the full mask is never empty
			}
			cat.root[g] = h
			cat.rootT0 += h.t0
			cat.rootMinT += h.minT
			cat.rootSegs = append(cat.rootSegs, h.segs...)
		}
		sortSegs(cat.rootSegs)
		ab.cats = append(ab.cats, cat)
	}
	return ab
}

// sortSegs orders segments by (rate, group). Rates are strictly increasing
// within a group (hull convexity), so per-group order — which the repair
// walk relies on — survives the sort.
func sortSegs(segs []abSeg) {
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].rate != segs[j].rate {
			return segs[i].rate < segs[j].rate
		}
		return segs[i].group < segs[j].group
	})
}

// computeHull builds the lower convex hull of a group's allowed (t, e)
// points. ok is false when no mode is allowed.
func computeHull(group int, t, e []float64, allowed []bool) (abHull, bool) {
	type pt struct{ t, e float64 }
	var pts [13]pt // volt.ModeSet tops out at 13 levels
	n := 0
	for m := range t {
		if allowed[m] {
			pts[n] = pt{t[m], e[m]}
			n++
		}
	}
	if n == 0 {
		return abHull{}, false
	}
	sub := pts[:n]
	sort.Slice(sub, func(i, j int) bool {
		if sub[i].t != sub[j].t {
			return sub[i].t < sub[j].t
		}
		return sub[i].e < sub[j].e
	})
	// Pareto staircase: keep strictly cheaper points as t grows …
	k := 0
	bestE := math.Inf(1)
	for _, p := range sub {
		if p.e < bestE {
			sub[k] = p
			k++
			bestE = p.e
		}
	}
	sub = sub[:k]
	// … then the convex lower hull: pop the middle point whenever slopes
	// stop increasing (collinear points pop too — same hull, fewer segs).
	h := 0
	for _, p := range sub {
		for h >= 2 {
			a, b := sub[h-2], sub[h-1]
			if (b.e-a.e)*(p.t-b.t) >= (p.e-b.e)*(b.t-a.t) {
				h--
			} else {
				break
			}
		}
		sub[h] = p
		h++
	}
	sub = sub[:h]

	out := abHull{minT: sub[0].t, t0: sub[h-1].t, eMin: sub[h-1].e}
	for k := h - 1; k >= 1; k-- {
		dt := sub[k].t - sub[k-1].t
		out.segs = append(out.segs, abSeg{
			group: group,
			dt:    dt,
			rate:  (sub[k-1].e - sub[k].e) / dt,
		})
	}
	return out, true
}

// Bound is the milp.Options.AnalyticBound callback: a proven lower bound on
// the integer optimum of the subproblem whose boxes are the root bounds
// composed with ov (nil = the root box). +Inf means the box is provably
// integer-infeasible. The second return is always true: the bound exists
// for every box this formulation can produce.
func (ab *analyticBounder) Bound(ov map[int]lp.Bound) (float64, bool) {
	// Decode the override box into per-group allowed-mode masks. Only mode
	// binaries matter; overrides on continuous variables (none today) are
	// ignored, which can only loosen the bound, never invalidate it.
	ab.restricted = ab.restricted[:0]
	ab.forced = ab.forced[:0]
	nk := ab.groups * ab.nm
	infeasible := false
	// Map iteration order is randomized; sort the keys so every float sum
	// below happens in one fixed order and the bound is bit-reproducible.
	ab.keys = ab.keys[:0]
	for v := range ov {
		if v >= 0 && v < nk {
			ab.keys = append(ab.keys, v)
		}
	}
	sort.Ints(ab.keys)
	for _, v := range ab.keys {
		b := ov[v]
		g, m := v/ab.nm, v%ab.nm
		slot := ab.slotOf[g]
		if slot < 0 {
			slot = int32(len(ab.restricted))
			ab.slotOf[g] = slot
			ab.restricted = append(ab.restricted, g)
			ab.forced = append(ab.forced, -1)
			if int(slot) == len(ab.masks) {
				ab.masks = append(ab.masks, make([]bool, ab.nm))
			}
			for i := range ab.masks[slot] {
				ab.masks[slot][i] = true
			}
		}
		if b.Hi < 0.5 {
			ab.masks[slot][m] = false
		}
		if b.Lo > 0.5 {
			if f := ab.forced[slot]; f >= 0 && f != m {
				infeasible = true
			}
			ab.forced[slot] = m
		}
	}
	defer func() {
		for _, g := range ab.restricted {
			ab.slotOf[g] = -1
		}
	}()

	// Finalize masks: a forced mode excludes its siblings (the SOS1 row);
	// an empty mask means no mode fits the box.
	for slot := range ab.restricted {
		mask := ab.masks[slot]
		if f := ab.forced[slot]; f >= 0 {
			if !mask[f] {
				infeasible = true
			}
			for m := range mask {
				mask[m] = m == f
			}
		}
		any := false
		for m := range mask {
			any = any || mask[m]
		}
		if !any {
			infeasible = true
		}
	}
	if infeasible {
		return math.Inf(1), true
	}

	// Base energy: every group at its cheapest allowed mode.
	base := ab.base
	for slot, g := range ab.restricted {
		m := math.Inf(1)
		for mi, v := range ab.e[g] {
			if ab.masks[slot][mi] {
				m = math.Min(m, v)
			}
		}
		base += m - ab.eMin[g]
	}

	// Deadline repairs: per budget, buy time back along the cheapest hull
	// segments until the fastest feasible total fits.
	repairTotal := 0.0
	for ci := range ab.cats {
		cat := &ab.cats[ci]
		t0, minT := cat.rootT0, cat.rootMinT
		ab.newSegs = ab.newSegs[:0]
		for slot, g := range ab.restricted {
			if cat.t[g] == nil {
				continue
			}
			h, ok := computeHull(g, cat.t[g], ab.e[g], ab.masks[slot])
			if !ok {
				return math.Inf(1), true
			}
			t0 += h.t0 - cat.root[g].t0
			minT += h.minT - cat.root[g].minT
			ab.newSegs = append(ab.newSegs, h.segs...)
		}
		if minT > cat.budget*(1+1e-9)+1e-12 {
			return math.Inf(1), true
		}
		repair := 0.0
		if need := t0 - cat.budget; need > 0 {
			sortSegs(ab.newSegs)
			repair = ab.walkRepair(cat.rootSegs, ab.newSegs, need)
		}
		if ab.sumCats {
			repairTotal += repair
		} else {
			repairTotal = math.Max(repairTotal, repair)
		}
	}

	// Transition floor: a pair of groups forced onto mode sets that share
	// no V² value must pay at least the cheapest |ΔV²| over the product.
	// Pairs with an unrestricted endpoint can always match voltages for
	// free, so only pairs with both endpoints restricted contribute.
	trans := 0.0
	for slot, g := range ab.restricted {
		for _, pi := range ab.pairsOf[g] {
			pr := ab.pairs[pi]
			if pr.a != g {
				continue // count each pair once, from its first endpoint
			}
			other := ab.slotOf[pr.b]
			if other < 0 {
				continue
			}
			best := math.Inf(1)
			for ma, okA := range ab.masks[slot] {
				if !okA {
					continue
				}
				for mb, okB := range ab.masks[other] {
					if okB {
						best = math.Min(best, math.Abs(ab.vsq[ma]-ab.vsq[mb]))
					}
				}
			}
			trans += pr.w * best
		}
	}

	return base + repairTotal + trans, true
}

// walkRepair consumes hull segments in ascending rate order — the root-box
// stream minus restricted groups, merged with the restricted groups' fresh
// segments — until need microseconds of time have been bought back, and
// returns the energy that cost. Running out of segments can only happen by
// float noise once minT fits the budget; the partial sum is still a valid
// lower bound.
func (ab *analyticBounder) walkRepair(rootSegs, extra []abSeg, need float64) float64 {
	cost := 0.0
	i, j := 0, 0
	for need > 1e-15 {
		for i < len(rootSegs) && ab.slotOf[rootSegs[i].group] >= 0 {
			i++
		}
		var s abSeg
		switch {
		case i < len(rootSegs) && (j >= len(extra) ||
			rootSegs[i].rate < extra[j].rate ||
			(rootSegs[i].rate == extra[j].rate && rootSegs[i].group <= extra[j].group)):
			s = rootSegs[i]
			i++
		case j < len(extra):
			s = extra[j]
			j++
		default:
			return cost
		}
		take := math.Min(s.dt, need)
		cost += take * s.rate
		need -= take
	}
	return cost
}
