package core

import (
	"context"
	"fmt"
	"math"

	"ctdvs/internal/ir"
	"ctdvs/internal/lp"
	"ctdvs/internal/milp"
	"ctdvs/internal/profile"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

// This file extends the MILP optimizer from one program on one core to a task
// graph on N cores, following the two-stage decomposition of Aupy et al.:
// a deterministic list scheduler fixes placement and per-core order (upward
// ranks over fastest-mode durations, earliest-finish-time core selection),
// then a MILP chooses one DVS mode per task to minimize total energy —
// including inter-task transition costs on each core, linearized with the
// same absolute-value trick as the single-program formulation — subject to
// release times, precedence, per-core serialization and deadlines. The
// 1-task/1-core graph bypasses all of this and delegates to OptimizeSingle,
// keeping the degenerate case bit-identical to the pre-task-graph path.

// GraphResult is the outcome of a task-graph optimization.
type GraphResult struct {
	// Schedule is the executable multi-core schedule (placement, per-core
	// order, per-task modes; the degenerate case carries an intra-task
	// edge-grained schedule instead of a fixed mode).
	Schedule *sim.GraphSchedule
	// PredictedEnergyUJ / PredictedMakespanUS are exact timeline predictions
	// for the chosen modes (assembled by sim.PlanGraph from profile numbers,
	// which are bit-identical to simulation — so prediction equals
	// measurement).
	PredictedEnergyUJ   float64
	PredictedMakespanUS float64
	// Plan is the predicted timeline (nil for the degenerate delegation).
	Plan *sim.GraphResult
	// Solver reports branch-and-bound statistics.
	Solver *milp.Result
	// Degenerate reports that the graph was solved by the single-program
	// optimizer (1 task, 1 core).
	Degenerate bool
}

// Degenerate reports whether the graph collapses to the single-program case:
// one task on one core with no release offset.
func degenerateGraph(g *ir.TaskGraph, cores int) bool {
	return len(g.Tasks) == 1 && cores == 1 && g.Tasks[0].ReleaseUS == 0
}

// effectiveDeadline returns task t's finish bound: the graph deadline,
// tightened by the task's own deadline when set.
func effectiveDeadline(t *ir.Task, deadlineUS float64) float64 {
	if t.DeadlineUS > 0 && t.DeadlineUS < deadlineUS {
		return t.DeadlineUS
	}
	return deadlineUS
}

// WrapSingleGraph lifts a single-program optimization result into the
// 1-task/1-core graph schedule. The intra-task schedule is the single-program
// schedule itself, so executing the graph is bit-identical to executing the
// original result.
func WrapSingleGraph(res *Result) *GraphResult {
	return &GraphResult{
		Schedule: &sim.GraphSchedule{
			Modes:     res.Schedule.Modes,
			Regulator: res.Schedule.Regulator,
			Cores:     1,
			Placement: []sim.TaskPlacement{{Core: 0, Mode: res.Schedule.Initial}},
			Order:     [][]int{{0}},
			Intra:     []*sim.Schedule{res.Schedule},
		},
		PredictedEnergyUJ:   res.PredictedEnergyUJ,
		PredictedMakespanUS: res.PredictedTimeUS[0],
		Solver:              res.Solver,
		Degenerate:          true,
	}
}

// OptimizeGraph chooses per-task DVS modes for a list-scheduled task graph on
// the given core count, minimizing predicted energy subject to the makespan
// deadline (µs), per-task deadlines and release times. profiles[t] must
// profile task t's program/input over a common mode set. The degenerate
// 1-task/1-core graph delegates to OptimizeSingle.
func OptimizeGraph(g *ir.TaskGraph, profiles []*profile.Profile, cores int, deadlineUS float64, opts *Options) (*GraphResult, error) {
	return OptimizeGraphContext(context.Background(), g, profiles, cores, deadlineUS, opts)
}

// OptimizeGraphContext is OptimizeGraph under a context: cancellation aborts
// the branch-and-bound search.
func OptimizeGraphContext(ctx context.Context, g *ir.TaskGraph, profiles []*profile.Profile, cores int, deadlineUS float64, opts *Options) (*GraphResult, error) {
	if err := validateGraphInputs(g, profiles, cores, deadlineUS); err != nil {
		return nil, err
	}
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.Regulator == (volt.Regulator{}) {
		o.Regulator = volt.DefaultRegulator()
	}
	if err := o.Regulator.Validate(); err != nil {
		return nil, err
	}

	if degenerateGraph(g, cores) {
		dl := effectiveDeadline(g.Tasks[0], deadlineUS)
		res, err := Optimize([]Category{{Profile: profiles[0], Weight: 1, DeadlineUS: dl}}, &o)
		if err != nil {
			return nil, err
		}
		return WrapSingleGraph(res), nil
	}

	modes := profiles[0].Modes
	nm := modes.Len()
	n := len(g.Tasks)

	// Stage 1: fix placement and per-core order with fastest-mode durations.
	fast := make([]float64, n)
	for t := 0; t < n; t++ {
		fast[t] = profiles[t].TotalTimeUS[nm-1]
	}
	assign, order := ListPlacement(g, fast, cores)

	// Stage 2: the MILP. Variables: per task, nm mode binaries (SOS1) and one
	// continuous finish time; per consecutive same-core pair, |ΔV²| and |ΔV|
	// variables pricing the transition, exactly as in the single-program
	// formulation.
	p := &milp.Problem{LP: lp.NewProblem()}
	escale := 0.0
	for t := 0; t < n; t++ {
		escale += profiles[t].TotalEnergyUJ[nm-1]
	}
	if escale <= 0 {
		escale = 1
	}
	tscale := deadlineUS

	kbase := make([]int, n)
	var ints []int
	var sos [][]int
	for t := 0; t < n; t++ {
		row := make([]lp.Term, nm)
		group := make([]int, nm)
		for m := 0; m < nm; m++ {
			v := p.LP.AddVariable(profiles[t].TotalEnergyUJ[m]/escale, 0, 1)
			if m == 0 {
				kbase[t] = v
			}
			row[m] = lp.Term{Var: v, Coef: 1}
			group[m] = v
			ints = append(ints, v)
		}
		p.LP.MustAddConstraint(row, lp.EQ, 1)
		sos = append(sos, group)
	}
	p.Integers = ints
	p.SOS1 = sos

	fvar := make([]int, n)
	for t := 0; t < n; t++ {
		fvar[t] = p.LP.AddVariable(0, 0, effectiveDeadline(g.Tasks[t], deadlineUS)/tscale)
	}

	// Transition variables per consecutive same-core pair.
	vmax, vmin := modes.Max().V, modes.Min().V
	ct := o.Regulator.CT()
	ce := o.Regulator.CE()
	tvars := make(map[[2]int]int) // (a, b) consecutive on a core → tvar index
	if !o.NoTransitionCosts {
		for _, coreOrder := range order {
			for i := 1; i < len(coreOrder); i++ {
				a, b := coreOrder[i-1], coreOrder[i]
				ev := p.LP.AddVariable(ce/escale, 0, vmax*vmax-vmin*vmin)
				tv := p.LP.AddVariable(0, 0, vmax-vmin)
				tvars[[2]int{a, b}] = tv
				addAbs(p.LP, kbase[a], kbase[b], nm, func(m int) float64 {
					vm := modes.Mode(m).V
					return vm * vm
				}, ev)
				addAbs(p.LP, kbase[a], kbase[b], nm, func(m int) float64 {
					return modes.Mode(m).V
				}, tv)
			}
		}
	}

	// Timing constraints. execTerms(t) = f[t] − Σ_m D[t][m]·k[t][m] − the
	// transition entering t; each lower bound (release, DAG predecessors,
	// core predecessor) becomes one row.
	execTerms := func(t int, coreIdx int, coreOrder []int) []lp.Term {
		terms := []lp.Term{{Var: fvar[t], Coef: 1}}
		for m := 0; m < nm; m++ {
			terms = append(terms, lp.Term{Var: kbase[t] + m, Coef: -profiles[t].TotalTimeUS[m] / tscale})
		}
		if coreIdx > 0 {
			if tv, ok := tvars[[2]int{coreOrder[coreIdx-1], t}]; ok {
				terms = append(terms, lp.Term{Var: tv, Coef: -ct / tscale})
			}
		}
		return terms
	}
	preds := g.Preds()
	for _, coreOrder := range order {
		for i, t := range coreOrder {
			base := execTerms(t, i, coreOrder)
			p.LP.MustAddConstraint(base, lp.GE, g.Tasks[t].ReleaseUS/tscale)
			for _, u := range preds[t] {
				row := append(append([]lp.Term(nil), base...), lp.Term{Var: fvar[u], Coef: -1})
				p.LP.MustAddConstraint(row, lp.GE, 0)
			}
			if i > 0 {
				a := coreOrder[i-1]
				row := append(append([]lp.Term(nil), base...), lp.Term{Var: fvar[a], Coef: -1})
				p.LP.MustAddConstraint(row, lp.GE, 0)
			}
		}
	}

	// Analytic dual bound, per-task: each core's serial chain must fit its
	// release-to-deadline window, so one time budget per occupied core —
	// cores partition the tasks, so per-core repairs add. The search uses
	// it to discard nodes before their LP solves (Result.AnalyticPrunes).
	be := make([][]float64, n)
	for t := 0; t < n; t++ {
		em := make([]float64, nm)
		for m := 0; m < nm; m++ {
			em[m] = profiles[t].TotalEnergyUJ[m] / escale
		}
		be[t] = em
	}
	vsq := make([]float64, nm)
	for m := 0; m < nm; m++ {
		vm := modes.Mode(m).V
		vsq[m] = vm * vm
	}
	var specs []abCatSpec
	for _, coreOrder := range order {
		if len(coreOrder) == 0 {
			continue
		}
		minRel, maxDl := math.Inf(1), 0.0
		bt := make([][]float64, n)
		for _, t := range coreOrder {
			minRel = math.Min(minRel, g.Tasks[t].ReleaseUS)
			maxDl = math.Max(maxDl, effectiveDeadline(g.Tasks[t], deadlineUS))
			tm := make([]float64, nm)
			for m := 0; m < nm; m++ {
				tm[m] = profiles[t].TotalTimeUS[m] / tscale
			}
			bt[t] = tm
		}
		specs = append(specs, abCatSpec{budget: (maxDl - minRel) / tscale, t: bt})
	}
	var pairs []abPair
	if !o.NoTransitionCosts {
		for _, coreOrder := range order {
			for i := 1; i < len(coreOrder); i++ {
				pairs = append(pairs, abPair{a: coreOrder[i-1], b: coreOrder[i], w: ce / escale})
			}
		}
	}
	bounder := newAnalyticBounder(nm, be, vsq, specs, pairs, true)

	mo := milp.Options{}
	if o.MILP != nil {
		mo = *o.MILP
	}
	if mo.AnalyticBound == nil {
		mo.AnalyticBound = bounder.Bound
	}
	res, err := milp.SolveContext(ctx, p, &mo)
	if err != nil {
		return nil, err
	}
	switch res.Status {
	case milp.Optimal, milp.Feasible:
	case milp.Infeasible:
		return nil, ErrInfeasible
	default:
		return nil, fmt.Errorf("core: graph solver stopped with status %v and no incumbent", res.Status)
	}

	// Extract per-task modes and assemble the exact predicted timeline.
	sched := &sim.GraphSchedule{
		Modes:     modes,
		Regulator: o.Regulator,
		Cores:     cores,
		Placement: make([]sim.TaskPlacement, n),
		Order:     order,
	}
	durUS := make([]float64, n)
	energyUJ := make([]float64, n)
	for t := 0; t < n; t++ {
		best, bestV := 0, -1.0
		for m := 0; m < nm; m++ {
			if v := res.X[kbase[t]+m]; v > bestV {
				best, bestV = m, v
			}
		}
		sched.Placement[t] = sim.TaskPlacement{Core: assign[t], Mode: best}
		durUS[t] = profiles[t].TotalTimeUS[best]
		energyUJ[t] = profiles[t].TotalEnergyUJ[best]
	}
	plan, err := sim.PlanGraph(g, sched, durUS, energyUJ)
	if err != nil {
		return nil, err
	}
	return &GraphResult{
		Schedule:            sched,
		PredictedEnergyUJ:   plan.EnergyUJ,
		PredictedMakespanUS: plan.MakespanUS,
		Plan:                plan,
		Solver:              res,
	}, nil
}

func validateGraphInputs(g *ir.TaskGraph, profiles []*profile.Profile, cores int, deadlineUS float64) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if cores < 1 {
		return fmt.Errorf("core: %d cores", cores)
	}
	if deadlineUS <= 0 || math.IsInf(deadlineUS, 0) || math.IsNaN(deadlineUS) {
		return fmt.Errorf("core: graph deadline %v is not a positive duration", deadlineUS)
	}
	if len(profiles) != len(g.Tasks) {
		return fmt.Errorf("core: %d profiles for %d tasks", len(profiles), len(g.Tasks))
	}
	modes := profiles[0].Modes
	for t, pr := range profiles {
		if pr == nil {
			return fmt.Errorf("core: task %d has nil profile", t)
		}
		if pr.Program != g.Tasks[t].Program {
			return fmt.Errorf("core: profile %d is of program %q, task runs %q", t, pr.Program.Name, g.Tasks[t].Program.Name)
		}
		if pr.Modes.Len() != modes.Len() {
			return fmt.Errorf("core: profile %d uses a different mode set", t)
		}
		for m := 0; m < modes.Len(); m++ {
			if pr.Modes.Mode(m) != modes.Mode(m) {
				return fmt.Errorf("core: profile %d uses a different mode set", t)
			}
		}
	}
	return nil
}

// ListPlacement fixes task-to-core assignment and per-core execution order
// with a HEFT-style list scheduler: tasks are prioritized by upward rank
// (duration plus the longest downstream chain, computed over the given
// durations) and each is placed on the core where it finishes earliest.
// Ties break deterministically (smaller task index, then lower core), so the
// placement is a pure function of its inputs. The returned order is
// precedence-consistent: ranks strictly decrease along edges, so every
// predecessor is placed before its successors.
func ListPlacement(g *ir.TaskGraph, durUS []float64, cores int) (assign []int, order [][]int) {
	n := len(g.Tasks)
	succs := g.Succs()
	preds := g.Preds()
	topo, _ := g.TopoOrder() // graph already validated by callers
	rank := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		t := topo[i]
		best := 0.0
		for _, s := range succs[t] {
			if rank[s] > best {
				best = rank[s]
			}
		}
		rank[t] = durUS[t] + best
	}
	prio := make([]int, n)
	for i := range prio {
		prio[i] = i
	}
	// Stable selection sort by (rank desc, index asc) — n ≤ ir.MaxTasks.
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if rank[prio[j]] > rank[prio[best]] {
				best = j
			}
		}
		prio[i], prio[best] = prio[best], prio[i]
	}

	assign = make([]int, n)
	order = make([][]int, cores)
	finish := make([]float64, n)
	coreFree := make([]float64, cores)
	for _, t := range prio {
		est := g.Tasks[t].ReleaseUS
		for _, u := range preds[t] {
			if finish[u] > est {
				est = finish[u]
			}
		}
		bestCore, bestFinish := 0, math.Inf(1)
		for c := 0; c < cores; c++ {
			start := est
			if coreFree[c] > start {
				start = coreFree[c]
			}
			if f := start + durUS[t]; f < bestFinish {
				bestCore, bestFinish = c, f
			}
		}
		assign[t] = bestCore
		finish[t] = bestFinish
		coreFree[bestCore] = bestFinish
		order[bestCore] = append(order[bestCore], t)
	}
	return assign, order
}
