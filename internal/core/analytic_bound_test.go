package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"ctdvs/internal/lp"
	"ctdvs/internal/milp"
)

// formulateTwoPhase builds the MILP formulation (with its analytic bounder)
// for the standard two-phase program at the given deadline.
func formulateTwoPhase(t *testing.T, dl float64) *Formulation {
	t.Helper()
	_, pr := collectTwoPhase(t)
	prep, err := Prepare([]Category{{Profile: pr, Weight: 1, DeadlineUS: dl}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return prep.Formulate(prep.Filter())
}

// groupBases returns the first-variable index of every mode-binary group in
// ascending order.
func groupBases(fm *Formulation) []int {
	bases := make([]int, 0, len(fm.f.kvar))
	for _, base := range fm.f.kvar {
		bases = append(bases, base)
	}
	sort.Ints(bases)
	return bases
}

// TestAnalyticBoundBelowLPAndOptimum pins the dual-bound contract at the
// root box: the MCKP hull bound must lower-bound both the LP relaxation and
// the integer optimum.
func TestAnalyticBoundBelowLPAndOptimum(t *testing.T) {
	t.Parallel()
	_, pr := collectTwoPhase(t)
	fm := formulateTwoPhase(t, midDeadline(pr))
	b, ok := fm.f.bounder.Bound(nil)
	if !ok {
		t.Fatal("root bound unavailable")
	}
	if math.IsInf(b, 1) {
		t.Fatal("root bound infeasible for a feasible deadline")
	}
	sol, err := fm.f.problem.LP.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal {
		t.Fatalf("root LP status %v", sol.Status)
	}
	slack := 1e-9 * math.Abs(sol.Objective)
	if b > sol.Objective+slack {
		t.Errorf("analytic bound %v exceeds root LP objective %v", b, sol.Objective)
	}
	res, err := milp.Solve(fm.f.problem, &milp.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b > res.Objective+1e-9*math.Abs(res.Objective) {
		t.Errorf("analytic bound %v exceeds integer optimum %v", b, res.Objective)
	}
}

// TestAnalyticBoundRandomBoxes throws randomized branch-and-bound boxes —
// forced modes and excluded modes over the real formulation's mode binaries —
// at the bounder and checks each value against every integer completion of
// the box, computed exactly by forcing all groups and solving the LP. The
// bound may exceed the box's LP relaxation (the transition floor charges
// |ΔV²| pairs that fractional modes can dodge), but it must never exceed any
// feasible integer schedule, and +Inf must mean the LP is infeasible too —
// that is the contract that lets the search discard children unsolved.
func TestAnalyticBoundRandomBoxes(t *testing.T) {
	t.Parallel()
	_, pr := collectTwoPhase(t)
	fm := formulateTwoPhase(t, midDeadline(pr))
	bases := groupBases(fm)
	nm := fm.f.modes.Len()
	rng := rand.New(rand.NewSource(61))
	feasible, infeasible := 0, 0
	for i := 0; i < 60; i++ {
		ov := map[int]lp.Bound{}
		allowed := make([][]int, len(bases))
		for gi, base := range bases {
			forced := -1
			excluded := make([]bool, nm)
			switch rng.Intn(4) {
			case 0:
				forced = rng.Intn(nm)
				ov[base+forced] = lp.Bound{Lo: 1, Hi: 1}
			case 1:
				for m := 0; m < nm; m++ {
					if rng.Intn(2) == 0 {
						excluded[m] = true
						ov[base+m] = lp.Bound{Lo: 0, Hi: 0}
					}
				}
			default: // leave the group at the root box
			}
			for m := 0; m < nm; m++ {
				if (forced < 0 || m == forced) && !excluded[m] {
					allowed[gi] = append(allowed[gi], m)
				}
			}
		}
		b, ok := fm.f.bounder.Bound(ov)
		if !ok {
			t.Fatalf("box %d: bound unavailable", i)
		}
		if math.IsInf(b, 1) {
			infeasible++
			// The bound's infeasibility proof (per-group fastest times
			// overrun the budget, or an empty/contradictory mask breaks the
			// SOS1 row) holds for the LP relaxation as well.
			sol, err := fm.f.problem.LP.SolveBounded(nil, ov)
			if err != nil {
				t.Fatalf("box %d: %v", i, err)
			}
			if sol.Status != lp.Infeasible {
				t.Errorf("box %d (%v): bound says infeasible, LP status %v obj %v",
					i, ov, sol.Status, sol.Objective)
			}
			continue
		}
		feasible++
		// Enumerate the box's integer points; forcing every group pins the
		// mode binaries via the SOS1 rows, so the LP objective is the exact
		// schedule cost, transitions included.
		assign := make([]int, len(bases))
		var walk func(gi int)
		walk = func(gi int) {
			if gi == len(bases) {
				full := map[int]lp.Bound{}
				for gj, base := range bases {
					full[base+assign[gj]] = lp.Bound{Lo: 1, Hi: 1}
				}
				sol, err := fm.f.problem.LP.SolveBounded(nil, full)
				if err != nil {
					t.Fatalf("box %d assign %v: %v", i, assign, err)
				}
				if sol.Status != lp.Optimal {
					return // this completion misses the deadline
				}
				if b > sol.Objective+1e-9*math.Abs(sol.Objective)+1e-12 {
					t.Errorf("box %d (%v): bound %v exceeds integer schedule %v (assign %v)",
						i, ov, b, sol.Objective, assign)
				}
				return
			}
			for _, m := range allowed[gi] {
				assign[gi] = m
				walk(gi + 1)
			}
		}
		walk(0)
	}
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("want both verdicts exercised, got %d feasible / %d infeasible", feasible, infeasible)
	}
}

// TestAnalyticBoundDeterministic pins bit-reproducibility: the bound of a
// box must not depend on map iteration order or on call history.
func TestAnalyticBoundDeterministic(t *testing.T) {
	t.Parallel()
	_, pr := collectTwoPhase(t)
	fm := formulateTwoPhase(t, midDeadline(pr))
	bases := groupBases(fm)
	nm := fm.f.modes.Len()
	rng := rand.New(rand.NewSource(67))
	for i := 0; i < 20; i++ {
		var keys []int
		var vals []lp.Bound
		for _, base := range bases {
			if rng.Intn(2) == 0 {
				continue
			}
			m := rng.Intn(nm)
			keys = append(keys, base+m)
			if rng.Intn(2) == 0 {
				vals = append(vals, lp.Bound{Lo: 1, Hi: 1})
			} else {
				vals = append(vals, lp.Bound{Lo: 0, Hi: 0})
			}
		}
		fwd := map[int]lp.Bound{}
		rev := map[int]lp.Bound{}
		for j := range keys {
			fwd[keys[j]] = vals[j]
		}
		for j := len(keys) - 1; j >= 0; j-- {
			rev[keys[j]] = vals[j]
		}
		b1, _ := fm.f.bounder.Bound(fwd)
		b2, _ := fm.f.bounder.Bound(fwd)
		b3, _ := fm.f.bounder.Bound(rev)
		if b1 != b2 || b1 != b3 {
			t.Fatalf("box %d: bound not deterministic: %v %v %v", i, b1, b2, b3)
		}
	}
}

// TestAnalyticPruningDeterminism is the solver-level determinism contract:
// with the analytic bound active, a parallel solve must be bit-identical to
// the serial one, and disabling the bound (milp.Options.DisableAnalyticBound)
// must change node counts only — never the objective.
func TestAnalyticPruningDeterminism(t *testing.T) {
	t.Parallel()
	_, pr := collectTwoPhase(t)
	n := pr.Modes.Len()
	fast, slow := pr.TotalTimeUS[n-1], pr.TotalTimeUS[0]
	dl := fast + 0.15*(slow-fast) // tight: branching and pruning both happen

	solve := func(mo milp.Options) *Result {
		res, err := OptimizeSingle(pr, dl, &Options{MILP: &mo})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := solve(milp.Options{Workers: 1})
	parallel := solve(milp.Options{Workers: 4, ParallelThreshold: -1})
	disabled := solve(milp.Options{Workers: 1, DisableAnalyticBound: true})

	if serial.Solver.Objective != parallel.Solver.Objective {
		t.Errorf("parallel objective %v != serial %v",
			parallel.Solver.Objective, serial.Solver.Objective)
	}
	if serial.PredictedEnergyUJ != parallel.PredictedEnergyUJ {
		t.Errorf("parallel energy %v != serial %v",
			parallel.PredictedEnergyUJ, serial.PredictedEnergyUJ)
	}
	if serial.Solver.Objective != disabled.Solver.Objective {
		t.Errorf("bound-off objective %v != bound-on %v",
			disabled.Solver.Objective, serial.Solver.Objective)
	}
	if disabled.Solver.AnalyticPrunes != 0 {
		t.Errorf("DisableAnalyticBound left AnalyticPrunes = %d", disabled.Solver.AnalyticPrunes)
	}
	if serial.Solver.Nodes > disabled.Solver.Nodes {
		t.Errorf("bound-on committed %d nodes, bound-off only %d",
			serial.Solver.Nodes, disabled.Solver.Nodes)
	}
}

// TestGraphAnalyticBoundObjective extends the disable-vs-enable contract to
// the task-graph formulation: per-task bounds may shrink the tree but must
// not move the optimum.
func TestGraphAnalyticBoundObjective(t *testing.T) {
	t.Parallel()
	g, profiles := testGraph(t)
	lo, hi := graphSpan(t, g, profiles, 2)
	dl := lo + 0.4*(hi-lo)

	on, err := OptimizeGraph(g, profiles, 2, dl, &Options{MILP: &milp.Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	off, err := OptimizeGraph(g, profiles, 2, dl,
		&Options{MILP: &milp.Options{Workers: 1, DisableAnalyticBound: true}})
	if err != nil {
		t.Fatal(err)
	}
	if on.Solver.Objective != off.Solver.Objective {
		t.Errorf("graph objective moved: bound-on %v, bound-off %v",
			on.Solver.Objective, off.Solver.Objective)
	}
	if off.Solver.AnalyticPrunes != 0 {
		t.Errorf("DisableAnalyticBound left AnalyticPrunes = %d", off.Solver.AnalyticPrunes)
	}
	if on.Solver.Nodes > off.Solver.Nodes {
		t.Errorf("bound-on committed %d nodes, bound-off only %d",
			on.Solver.Nodes, off.Solver.Nodes)
	}
}
